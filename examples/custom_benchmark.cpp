//===- examples/custom_benchmark.cpp --------------------------------------==//
//
// Adding your own benchmark: implement harness::Benchmark over the
// instrumented substrates and register it next to the built-in suites —
// the workflow the Renaissance harness supports for new workloads (§2.2).
//
// The example workload is a work-queue system: producer threads publish
// jobs through the STM, consumers claim them transactionally, and results
// flow back through futures — exercising three substrates at once.
//
//===----------------------------------------------------------------------===//

#include "futures/PoolExecutor.h"
#include "harness/Harness.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <memory>
#include <thread>

using namespace ren;
using namespace ren::harness;

namespace {

/// A transactional work queue processed by future pipelines.
class StmWorkQueueBenchmark : public Benchmark {
  static constexpr int kJobs = 400;
  static constexpr int kSlots = 16;

public:
  BenchmarkInfo info() const override {
    return {"stm-work-queue", Suite::Renaissance,
            "Transactional work queue drained by future pipelines",
            "STM, futures, task-parallel", /*Warmup=*/1, /*Measured=*/2};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(2);
    Exec = std::make_unique<futures::PoolExecutor>(*Pool);
    for (int I = 0; I < kSlots; ++I)
      Slots.push_back(std::make_unique<stm::TVar<int>>(-1));
  }

  void runIteration() override {
    // Producer: publish jobs into free slots transactionally.
    std::thread Producer([this] {
      for (int Job = 0; Job < kJobs; ++Job) {
        stm::atomically([&](stm::Transaction &Txn) {
          for (auto &Slot : Slots)
            if (Slot->get(Txn) == -1) {
              Slot->set(Txn, Job);
              return;
            }
          stm::retry(Txn); // all slots full: block until a consumer commits
        });
      }
    });

    // Consumers: claim one job transactionally, process it on the pool.
    std::vector<futures::Future<int>> Results;
    for (int Claimed = 0; Claimed < kJobs; ++Claimed) {
      int Job = stm::atomically([&](stm::Transaction &Txn) {
        for (auto &Slot : Slots) {
          int J = Slot->get(Txn);
          if (J != -1) {
            Slot->set(Txn, -1);
            return J;
          }
        }
        stm::retry(Txn);
        return -1; // unreachable
      });
      Results.push_back(Exec->async([Job] { return Job * Job; }));
    }
    Producer.join();

    long Sum = 0;
    for (auto &F : Results)
      Sum += F.get();
    Total = static_cast<uint64_t>(Sum);
  }

  void tearDown() override {
    Exec.reset();
    Pool.reset();
    Slots.clear();
  }

  uint64_t checksum() const override { return Total; }

private:
  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::unique_ptr<futures::PoolExecutor> Exec;
  std::vector<std::unique_ptr<stm::TVar<int>>> Slots;
  uint64_t Total = 0;
};

} // namespace

int main() {
  Registry &Reg = Registry::get();
  workloads::registerAllBenchmarks(Reg);

  // Register the custom benchmark exactly like the built-in ones.
  Reg.add([] { return std::make_unique<StmWorkQueueBenchmark>(); });
  std::printf("registered %zu benchmarks (68 built-in + 1 custom)\n\n",
              Reg.size());

  Runner R;
  RunResult Result = R.runByName("stm-work-queue");
  std::printf("stm-work-queue: %.2f ms per operation, checksum %llu\n",
              Result.meanSteadyNanos() / 1e6,
              static_cast<unsigned long long>(Result.Checksum));
  std::printf("atomic ops in steady state: %llu (STM commits are CAS "
              "transitions)\n",
              static_cast<unsigned long long>(
                  Result.SteadyDelta.get(metrics::Metric::Atomic)));
  std::printf("wait/notify in steady state: %llu / %llu (retry blocking)\n",
              static_cast<unsigned long long>(
                  Result.SteadyDelta.get(metrics::Metric::Wait)),
              static_cast<unsigned long long>(
                  Result.SteadyDelta.get(metrics::Metric::Notify)));
  return 0;
}
