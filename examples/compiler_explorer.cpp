//===- examples/compiler_explorer.cpp -------------------------------------==//
//
// Exploring the mini JIT: build an IR kernel by hand, dump it, run the §5
// optimization passes one at a time, and watch the IR and the modelled
// cycle count change — the workflow behind the paper's §5 case studies.
//
//===----------------------------------------------------------------------===//

#include "jit/Compiler.h"
#include "jit/Interp.h"
#include "jit/IrBuilder.h"
#include "jit/Passes.h"

#include <cstdio>

using namespace ren::jit;

namespace {

uint64_t cyclesOf(const Module &M, const char *Fn,
                  std::vector<int64_t> Args) {
  Interpreter I(M);
  return I.run(*M.function(Fn), Args).Cycles;
}

} // namespace

int main() {
  // Build the §5.1 pattern by hand: a loop allocating a box, CASing its
  // field, and reading it back — the AtomicReference publish idiom.
  Module M;
  unsigned Box = M.addClass("Box", 1);
  Function *F = M.addFunction("publish", 1);
  {
    IrBuilder B(*F);
    BasicBlock *Entry = B.makeBlock("entry");
    BasicBlock *Header = B.makeBlock("header");
    BasicBlock *Body = B.makeBlock("body");
    BasicBlock *Exit = B.makeBlock("exit");

    B.setBlock(Entry);
    Instruction *N = B.param(0);
    Instruction *Zero = B.constant(0);
    B.jump(Header);

    B.setBlock(Header);
    Instruction *I = B.phi();
    Instruction *Acc = B.phi();
    B.branch(B.cmpLt(I, N), Body, Exit);

    B.setBlock(Body);
    Instruction *O = B.newObject(Box);
    B.putField(O, 0, I);
    Instruction *One = B.constant(1);
    Instruction *IPlus1 = B.add(I, One);
    B.cas(O, 0, I, IPlus1);
    Instruction *V = B.getField(O, 0);
    Instruction *Acc2 = B.add(Acc, V);
    Instruction *I2 = B.add(I, One);
    B.jump(Header);

    B.setBlock(Exit);
    B.ret(Acc);

    IrBuilder::addIncoming(I, Zero, Entry);
    IrBuilder::addIncoming(I, I2, Body);
    IrBuilder::addIncoming(Acc, Zero, Entry);
    IrBuilder::addIncoming(Acc, Acc2, Body);
    B.finish();
  }

  std::printf("=== IR before optimization ===\n%s\n", F->dump().c_str());
  uint64_t Before = cyclesOf(M, "publish", {1000});
  std::printf("modelled cycles for n=1000: %llu\n\n",
              static_cast<unsigned long long>(Before));

  // Baseline PEA (no atomics, the pre-paper state): bails on the CAS.
  auto Baseline = M.clone();
  bool BaselineChanged =
      runEscapeAnalysis(*Baseline->function("publish"),
                        /*HandleAtomics=*/false);
  std::printf("partial escape analysis WITHOUT atomics support: %s\n\n",
              BaselineChanged ? "transformed (unexpected!)"
                              : "bails out on the CAS (paper 5.1)");

  // EAWA: scalar-replaces the allocation, emulating the CAS.
  runEscapeAnalysis(*F, /*HandleAtomics=*/true);
  runConstantFolding(*F);
  std::printf("=== IR after escape analysis with atomics ===\n%s\n",
              F->dump().c_str());
  uint64_t After = cyclesOf(M, "publish", {1000});
  std::printf("modelled cycles for n=1000: %llu (%.1fx faster)\n\n",
              static_cast<unsigned long long>(After),
              static_cast<double>(Before) / static_cast<double>(After));

  // Full pipelines for comparison.
  for (const char *Config : {"graal", "c2"}) {
    auto Clone = M.clone();
    compileModule(*Clone, std::string(Config) == "graal"
                              ? OptConfig::graal()
                              : OptConfig::c2());
    std::printf("%s pipeline: %llu cycles, %u IR nodes\n", Config,
                static_cast<unsigned long long>(
                    cyclesOf(*Clone, "publish", {1000})),
                Clone->function("publish")->instructionCount());
  }
  return 0;
}
