//===- examples/metrics_pca.cpp -------------------------------------------==//
//
// Using the metrics + stats stack directly: profile a few workloads with
// the metric counters, build the Table 2 metric matrix, and run the §4
// PCA pipeline on it — a small-scale version of the diversity study.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "stats/Stats.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ren;
using namespace ren::harness;
using namespace ren::stats;

int main() {
  workloads::registerAllBenchmarks();

  // Profile a deliberately diverse slice of the suites (quick protocol).
  const char *Picks[] = {"philosophers", "scrabble",   "fj-kmeans",
                         "akka-uct",     "compress",   "scimark.sor.small",
                         "factorie",     "h2",         "page-rank"};
  Runner::Options Opts;
  Opts.WarmupOverride = 1;
  Opts.MeasuredOverride = 1;
  Runner R(Opts);

  std::vector<RunResult> Results;
  for (const char *Name : Picks) {
    std::printf("profiling %s...\n", Name);
    Results.push_back(R.runByName(Name));
  }

  // Metric matrix -> standardize -> PCA (the §4.2 methodology).
  Matrix X(Results.size(), 11);
  for (size_t Row = 0; Row < Results.size(); ++Row) {
    auto Vec = Results[Row].normalized().asVector();
    for (size_t Col = 0; Col < 11; ++Col)
      X.at(Row, Col) = Vec[Col];
  }
  PcaResult P = pca(standardize(X));

  std::printf("\nvariance explained: PC1 %.0f%%, PC1..2 %.0f%%, "
              "PC1..4 %.0f%%\n",
              P.varianceExplained(1) * 100, P.varianceExplained(2) * 100,
              P.varianceExplained(4) * 100);

  std::printf("\nscores (PC1, PC2):\n");
  for (size_t Row = 0; Row < Results.size(); ++Row)
    std::printf("  %-20s %7s %7s\n", Picks[Row],
                fixed(P.Scores.at(Row, 0), 2).c_str(),
                fixed(P.Scores.at(Row, 1), 2).c_str());

  std::printf("\ntop PC1 loadings (which metrics separate these "
              "workloads):\n");
  auto Names = metrics::NormalizedMetrics::vectorNames();
  for (size_t I = 0; I < Names.size(); ++I)
    if (std::abs(P.Loadings.at(I, 0)) > 0.3)
      std::printf("  %-10s %+0.2f\n", Names[I].c_str(),
                  P.Loadings.at(I, 0));
  return 0;
}
