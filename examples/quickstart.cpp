//===- examples/quickstart.cpp --------------------------------------------==//
//
// Quickstart: run one Renaissance benchmark through the harness, attach a
// plugin, and read its timing and Table 2 metrics.
//
// Build: cmake --build build --target example_quickstart
// Run:   ./build/examples/example_quickstart [benchmark-name]
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ren;
using namespace ren::harness;

namespace {

/// A minimal custom plugin: prints a line per iteration (the paper's §2.2
/// plugin interface "latches onto benchmark execution events").
class PrintingPlugin : public Plugin {
public:
  void afterIteration(const BenchmarkInfo &Info, unsigned Index,
                      bool Warmup, uint64_t Nanos) override {
    std::printf("  %s iteration %u (%s): %.2f ms\n", Info.Name.c_str(),
                Index, Warmup ? "warmup" : "steady",
                static_cast<double>(Nanos) / 1e6);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  // 1. Register the suites (68 benchmarks across four suites).
  workloads::registerAllBenchmarks();
  Registry &Reg = Registry::get();

  std::string Name = Argc > 1 ? Argv[1] : "scrabble";
  if (!Reg.contains(Name)) {
    std::printf("unknown benchmark '%s'; available:\n", Name.c_str());
    for (const std::string &N : Reg.names())
      std::printf("  %s\n", N.c_str());
    return 1;
  }

  // 2. Run it with the default warmup/steady-state protocol.
  std::printf("running %s...\n", Name.c_str());
  PrintingPlugin Plugin;
  Runner R;
  R.addPlugin(Plugin);
  RunResult Result = R.runByName(Name);

  // 3. Read the results.
  std::printf("\nmean steady-state operation time: %.2f ms\n",
              Result.meanSteadyNanos() / 1e6);
  std::printf("checksum: %llu\n",
              static_cast<unsigned long long>(Result.Checksum));

  std::printf("\nsteady-state metrics (paper Table 2):\n");
  auto MetricNames = metrics::NormalizedMetrics::vectorNames();
  auto Rates = Result.normalized().asVector();
  for (size_t I = 0; I < MetricNames.size(); ++I) {
    if (MetricNames[I] == "cpu") {
      std::printf("  %-10s %s%% average utilization\n",
                  MetricNames[I].c_str(),
                  fixed(Result.normalized().Cpu, 1).c_str());
      continue;
    }
    std::printf("  %-10s %s per 1e9 reference cycles\n",
                MetricNames[I].c_str(), fixed(Rates[I] * 1e9, 1).c_str());
  }
  return 0;
}
