//===- workloads/DataGen.cpp ----------------------------------------------==//

#include "workloads/DataGen.h"

#include <algorithm>
#include <cassert>

using namespace ren;
using namespace ren::workloads;

Dataset ren::workloads::makeClassificationDataset(size_t Rows, size_t Cols,
                                                  uint64_t Seed) {
  Xoshiro256StarStar Rng(Seed);
  Dataset D;
  D.Rows = Rows;
  D.Cols = Cols;
  D.Features.resize(Rows * Cols);
  D.Labels.resize(Rows);
  // Class centroids at +/- 0.7 on every axis with unit Gaussian noise.
  for (size_t R = 0; R < Rows; ++R) {
    int Label = Rng.nextBool() ? 1 : 0;
    D.Labels[R] = Label;
    double Center = Label == 1 ? 0.7 : -0.7;
    for (size_t C = 0; C < Cols; ++C)
      D.Features[R * Cols + C] = Center + Rng.nextGaussian();
  }
  return D;
}

std::vector<std::string> ren::workloads::makeDictionary(size_t Count,
                                                        uint64_t Seed) {
  Xoshiro256StarStar Rng(Seed);
  // Letter frequencies roughly follow English so Scrabble scoring has a
  // realistic distribution of rare letters.
  static const char Letters[] = "eeeeeeeeeeeetttttttttaaaaaaaaoooooooiiiiiii"
                                "nnnnnnnsssssshhhhhhrrrrrrddddllllcccuuummm"
                                "wwfffggyyppbbvkjxqz";
  const size_t NumLetters = sizeof(Letters) - 1;
  std::vector<std::string> Words;
  Words.reserve(Count);
  while (Words.size() < Count) {
    size_t Len = 2 + Rng.nextBounded(8); // 2..9 letters
    std::string W;
    W.reserve(Len);
    for (size_t I = 0; I < Len; ++I)
      W.push_back(Letters[Rng.nextBounded(NumLetters)]);
    Words.push_back(std::move(W));
  }
  std::sort(Words.begin(), Words.end());
  Words.erase(std::unique(Words.begin(), Words.end()), Words.end());
  // Re-fill after dedup to hit the requested count deterministically.
  while (Words.size() < Count) {
    std::string W = Words[Rng.nextBounded(Words.size())];
    W.push_back(Letters[Rng.nextBounded(NumLetters)]);
    if (!std::binary_search(Words.begin(), Words.end(), W))
      Words.insert(std::upper_bound(Words.begin(), Words.end(), W), W);
  }
  return Words;
}

std::vector<Rating> ren::workloads::makeRatings(uint32_t Users,
                                                uint32_t Items, size_t Count,
                                                uint64_t Seed) {
  assert(Users > 0 && Items > 0 && "need nonempty universe");
  Xoshiro256StarStar Rng(Seed);
  std::vector<Rating> Ratings;
  Ratings.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    uint32_t User = static_cast<uint32_t>(Rng.nextBounded(Users));
    // Popularity skew: square the uniform draw so low item ids dominate.
    double U = Rng.nextDouble();
    uint32_t Item = static_cast<uint32_t>(U * U * Items);
    if (Item >= Items)
      Item = Items - 1;
    float Score = static_cast<float>(1 + Rng.nextBounded(5));
    Ratings.push_back(Rating{User, Item, Score});
  }
  return Ratings;
}

std::vector<Document> ren::workloads::makeDocuments(size_t Count,
                                                    size_t WordsPerDoc,
                                                    uint32_t VocabSize,
                                                    unsigned NumClasses,
                                                    uint64_t Seed) {
  assert(NumClasses > 0 && VocabSize >= NumClasses && "bad vocabulary");
  Xoshiro256StarStar Rng(Seed);
  std::vector<Document> Docs;
  Docs.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    Document D;
    D.Label = static_cast<int>(Rng.nextBounded(NumClasses));
    D.Words.reserve(WordsPerDoc);
    // Each class prefers its own slice of the vocabulary 70% of the time.
    uint32_t SliceSize = VocabSize / NumClasses;
    uint32_t SliceBase = static_cast<uint32_t>(D.Label) * SliceSize;
    for (size_t W = 0; W < WordsPerDoc; ++W) {
      uint32_t Word =
          Rng.nextBool(0.7)
              ? SliceBase + static_cast<uint32_t>(Rng.nextBounded(SliceSize))
              : static_cast<uint32_t>(Rng.nextBounded(VocabSize));
      D.Words.push_back(Word);
    }
    Docs.push_back(std::move(D));
  }
  return Docs;
}

std::vector<std::vector<uint32_t>>
ren::workloads::makeScaleFreeGraph(uint32_t Nodes, unsigned EdgesPerNode,
                                   uint64_t Seed) {
  assert(Nodes >= 2 && "graph needs at least two nodes");
  Xoshiro256StarStar Rng(Seed);
  std::vector<std::vector<uint32_t>> Adj(Nodes);
  // Preferential attachment over a growing endpoint pool.
  std::vector<uint32_t> Pool;
  Pool.push_back(0);
  for (uint32_t N = 1; N < Nodes; ++N) {
    for (unsigned E = 0; E < EdgesPerNode; ++E) {
      uint32_t Target = Pool[Rng.nextBounded(Pool.size())];
      if (Target == N)
        Target = (N + 1) % Nodes == N ? 0 : N - 1;
      Adj[N].push_back(Target);
      Pool.push_back(Target);
    }
    Pool.push_back(N);
  }
  return Adj;
}

std::vector<std::string> ren::workloads::makeTextLines(size_t Lines,
                                                       size_t WordsPerLine,
                                                       uint64_t Seed) {
  std::vector<std::string> Dict = makeDictionary(512, Seed ^ 0xD1C7);
  Xoshiro256StarStar Rng(Seed);
  std::vector<std::string> Out;
  Out.reserve(Lines);
  for (size_t L = 0; L < Lines; ++L) {
    std::string Line;
    for (size_t W = 0; W < WordsPerLine; ++W) {
      if (W != 0)
        Line.push_back(' ');
      Line += Dict[Rng.nextBounded(Dict.size())];
    }
    Out.push_back(std::move(Line));
  }
  return Out;
}
