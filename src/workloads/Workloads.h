//===- workloads/Workloads.h - Benchmark registration -----------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration entry points for every workload in the four suites.
///
/// Registration is explicit (not static-initializer based) so that linking
/// the workloads as a static library cannot silently drop benchmarks: call
/// \c registerAllBenchmarks() once at program start.
///
//===----------------------------------------------------------------------===//

#ifndef REN_WORKLOADS_WORKLOADS_H
#define REN_WORKLOADS_WORKLOADS_H

#include "harness/Harness.h"

namespace ren {
namespace workloads {

/// Registers the 21 Renaissance benchmarks (paper Table 1).
void registerRenaissanceSuite(harness::Registry &R);

/// Registers the DaCapo-analogue suite (14 benchmarks, Table 6).
void registerDaCapoSuite(harness::Registry &R);

/// Registers the ScalaBench-analogue suite (12 benchmarks, Table 6).
void registerScalaBenchSuite(harness::Registry &R);

/// Registers the SPECjvm2008-analogue suite (21 benchmarks, Table 6).
void registerSpecJvmSuite(harness::Registry &R);

/// Registers all four suites into \p R (idempotence is the caller's
/// responsibility; call once).
void registerAllBenchmarks(harness::Registry &R = harness::Registry::get());

/// The benchmarks the paper excludes from PCA (supplemental §B).
bool isExcludedFromPca(const std::string &Name);

} // namespace workloads
} // namespace ren

#endif // REN_WORKLOADS_WORKLOADS_H
