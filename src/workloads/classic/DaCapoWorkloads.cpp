//===- workloads/classic/DaCapoWorkloads.cpp ------------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// DaCapo-analogue suite (Table 6): 14 object-oriented application
// workloads. The paper characterizes DaCapo as allocation- and
// dispatch-heavy complex applications with modest concurrency (Fig 1,
// Table 7: h2/tomcat/xalan synchronized-heavy, avrora wait/notify-heavy,
// sunflow/xalan CPU-parallel). Each analogue is a real miniature of the
// original application's domain, built on the instrumented runtime so the
// suite occupies the same metric-space region.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "kvstore/KvStore.h"
#include "netsim/NetSim.h"
#include "memsim/MemSim.h"
#include "runtime/Alloc.h"
#include "runtime/Monitor.h"
#include "support/Rng.h"
#include "workloads/DataGen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

BenchmarkInfo dacapoInfo(const std::string &Name,
                         const std::string &Description,
                         const std::string &Focus) {
  return {Name, Suite::DaCapo, Description, Focus, 2, 3};
}

//===----------------------------------------------------------------------===//
// avrora: discrete-event microcontroller simulation; producer/consumer
// threads synchronize with wait/notify (avrora is the one DaCapo workload
// with massive wait/notify counts in Table 7).
//===----------------------------------------------------------------------===//

class AvroraBenchmark : public Benchmark {
  static constexpr unsigned kDevices = 3;
  static constexpr unsigned kEventsPerDevice = 2500;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("avrora", "discrete-event device simulation",
                      "wait/notify synchronization");
  }

  void runIteration() override {
    // Devices exchange timed interrupts through a shared guarded queue.
    struct EventQueue {
      runtime::Monitor Lock;
      std::vector<std::pair<unsigned, uint64_t>> Events;
      bool Done = false;
    } Queue;

    std::atomic<uint64_t> Processed{0};
    std::thread Consumer([&] {
      for (;;) {
        std::pair<unsigned, uint64_t> Event;
        {
          runtime::Synchronized Sync(Queue.Lock);
          Queue.Lock.waitUntil(
              [&] { return !Queue.Events.empty() || Queue.Done; });
          if (Queue.Events.empty())
            return;
          Event = Queue.Events.back();
          Queue.Events.pop_back();
        }
        // "Execute" the device cycle.
        runtime::noteObjectAlloc();  // the event object
        runtime::noteVirtualCall(3); // device/monitor/clock dispatch
        volatile uint64_t Acc = 0;
        for (unsigned I = 0; I < 700; ++I)
          Acc = Acc + Event.second * I;
        Processed.fetch_add(1);
      }
    });

    std::vector<std::thread> Producers;
    for (unsigned D = 0; D < kDevices; ++D)
      Producers.emplace_back([&, D] {
        SplitMix64 Mix(D);
        for (unsigned E = 0; E < kEventsPerDevice; ++E) {
          runtime::Synchronized Sync(Queue.Lock);
          Queue.Events.push_back({D, Mix.next()});
          Queue.Lock.notifyAll();
        }
      });
    for (auto &P : Producers)
      P.join();
    {
      runtime::Synchronized Sync(Queue.Lock);
      Queue.Done = true;
      Queue.Lock.notifyAll();
    }
    Consumer.join();
    Count = Processed.load();
  }

  uint64_t checksum() const override { return Count; }

private:
  uint64_t Count = 0;
};

//===----------------------------------------------------------------------===//
// batik: vector-graphics rasterization (scanline polygon fill).
//===----------------------------------------------------------------------===//

class BatikBenchmark : public Benchmark {
  static constexpr int kCanvas = 192;
  static constexpr int kShapes = 150;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("batik", "vector graphics rasterizer",
                      "object allocation");
  }

  void runIteration() override {
    std::vector<uint8_t> Canvas(kCanvas * kCanvas, 0);
    Xoshiro256StarStar Rng(0xBA7);
    for (int S = 0; S < kShapes; ++S) {
      // Each shape is a counted heap object, as in a scene graph.
      auto Vertices = runtime::newArray<std::pair<int, int>>(5);
      for (auto &V : Vertices)
        V = {static_cast<int>(Rng.nextBounded(kCanvas)),
             static_cast<int>(Rng.nextBounded(kCanvas))};
      runtime::noteVirtualCall(kCanvas); // per-scanline renderer dispatch
      fillPolygon(Canvas, Vertices, static_cast<uint8_t>(S % 255 + 1));
    }
    memsim::traceBuffer(Canvas.data(), Canvas.size());
    uint64_t Sum = 0;
    for (uint8_t P : Canvas)
      Sum += P;
    Coverage = Sum;
  }

  uint64_t checksum() const override { return Coverage; }

private:
  static void fillPolygon(std::vector<uint8_t> &Canvas,
                          const runtime::Array<std::pair<int, int>> &Poly,
                          uint8_t Color) {
    for (int Y = 0; Y < kCanvas; ++Y) {
      // Even-odd rule scanline fill.
      std::vector<int> Crossings;
      for (size_t I = 0; I < Poly.size(); ++I) {
        auto [X1, Y1] = Poly[I];
        auto [X2, Y2] = Poly[(I + 1) % Poly.size()];
        if ((Y1 <= Y && Y2 > Y) || (Y2 <= Y && Y1 > Y)) {
          double T = static_cast<double>(Y - Y1) / (Y2 - Y1);
          Crossings.push_back(X1 + static_cast<int>(T * (X2 - X1)));
        }
      }
      std::sort(Crossings.begin(), Crossings.end());
      for (size_t C = 0; C + 1 < Crossings.size(); C += 2)
        for (int X = std::max(0, Crossings[C]);
             X < std::min(kCanvas, Crossings[C + 1]); ++X)
          Canvas[Y * kCanvas + X] = Color;
    }
  }

  uint64_t Coverage = 0;
};

//===----------------------------------------------------------------------===//
// eclipse: incremental build over a module dependency graph (topological
// scheduling, dirty propagation) — big object graph, dispatch-heavy.
//===----------------------------------------------------------------------===//

class EclipseBenchmark : public Benchmark {
  static constexpr uint32_t kModules = 1200;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("eclipse", "incremental build scheduler",
                      "object graph traversal");
  }

  void setUp() override {
    Deps = makeScaleFreeGraph(kModules, 3, 0xEC11);
    // Invert to get dependents.
    Dependents.assign(kModules, {});
    for (uint32_t M = 0; M < kModules; ++M)
      for (uint32_t D : Deps[M])
        Dependents[D].push_back(M);
  }

  void runIteration() override {
    // Mark 5% of modules dirty, propagate, then "rebuild" in topo order.
    Xoshiro256StarStar Rng(0x1DE);
    std::vector<bool> Dirty(kModules, false);
    std::vector<uint32_t> Stack;
    for (uint32_t M = 0; M < kModules / 20; ++M) {
      uint32_t Seed = static_cast<uint32_t>(Rng.nextBounded(kModules));
      Stack.push_back(Seed);
    }
    uint64_t Rebuilt = 0;
    while (!Stack.empty()) {
      uint32_t M = Stack.back();
      Stack.pop_back();
      if (Dirty[M])
        continue;
      Dirty[M] = true;
      ++Rebuilt;
      runtime::noteObjectAlloc(4); // compilation unit, AST, problems...
      runtime::noteVirtualCall(8 + Deps[M].size());
      // "Compile": hash the module's dependency closure fingerprint.
      uint64_t H = M;
      for (uint32_t D : Deps[M])
        H = H * 31 + D;
      Fingerprint ^= H;
      for (uint32_t D : Dependents[M])
        Stack.push_back(D);
    }
    RebuildCount = Rebuilt;
  }

  uint64_t checksum() const override { return RebuildCount; }

private:
  std::vector<std::vector<uint32_t>> Deps, Dependents;
  uint64_t Fingerprint = 0;
  uint64_t RebuildCount = 0;
};

//===----------------------------------------------------------------------===//
// fop: document layout — paragraph line breaking + box tree metrics.
//===----------------------------------------------------------------------===//

class FopBenchmark : public Benchmark {
public:
  BenchmarkInfo info() const override {
    return dacapoInfo("fop", "document line-breaking and layout",
                      "tree building");
  }

  void setUp() override { Paragraphs = makeTextLines(250, 40, 0xF0B); }

  void runIteration() override {
    constexpr int LineWidth = 60;
    uint64_t Lines = 0, Badness = 0;
    for (const std::string &Para : Paragraphs) {
      memsim::traceBuffer(Para.data(), Para.size());
      // Greedy line breaking with quadratic raggedness badness.
      int Col = 0;
      size_t Pos = 0;
      while (Pos < Para.size()) {
        size_t SpacePos = Para.find(' ', Pos);
        size_t WordLen = (SpacePos == std::string::npos ? Para.size()
                                                        : SpacePos) - Pos;
        runtime::noteVirtualCall(); // layout-manager dispatch per word
        if (Col > 0 && Col + 1 + static_cast<int>(WordLen) > LineWidth) {
          int Slack = LineWidth - Col;
          Badness += static_cast<uint64_t>(Slack) * Slack;
          ++Lines;
          runtime::noteObjectAlloc(); // the line box
          Col = 0;
        }
        Col += (Col > 0 ? 1 : 0) + static_cast<int>(WordLen);
        Pos += WordLen + 1;
      }
      ++Lines;
    }
    Result = Lines * 1000 + Badness % 1000;
  }

  uint64_t checksum() const override { return Result; }

private:
  std::vector<std::string> Paragraphs;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// h2: SQL-ish table operations under table-level synchronization — the
// most synchronized-heavy DaCapo workload in Table 7.
//===----------------------------------------------------------------------===//

class H2Benchmark : public Benchmark {
  static constexpr unsigned kThreads = 3;
  static constexpr unsigned kOpsPerThread = 2500;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("h2", "relational operations under coarse locks",
                      "synchronization-heavy database");
  }

  void runIteration() override {
    kvstore::Table Accounts(2); // very coarse striping, like h2's locks
    for (uint64_t K = 0; K < 2000; ++K)
      Accounts.put(K, std::to_string(K % 97));
    std::vector<std::thread> Workers;
    std::atomic<uint64_t> Sum{0};
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([&, T] {
        Xoshiro256StarStar Rng(0x42 + T);
        uint64_t Local = 0;
        for (unsigned Op = 0; Op < kOpsPerThread; ++Op) {
          uint64_t K = Rng.nextBounded(2000);
          if (Rng.nextBool(0.3)) {
            Accounts.put(K, std::to_string(Op % 97));
          } else {
            auto V = Accounts.get(K);
            Local += V ? V->size() : 0;
          }
        }
        Sum.fetch_add(Local);
      });
    for (auto &W : Workers)
      W.join();
    // Read/write interleaving makes the sum schedule-dependent; the table
    // cardinality is the deterministic validated quantity.
    (void)Sum.load();
    Result = Accounts.size();
  }

  uint64_t checksum() const override { return Result; }

private:
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// jython: a bytecode interpreter loop (dispatch-heavy dynamic language).
//===----------------------------------------------------------------------===//

class JythonBenchmark : public Benchmark {
public:
  BenchmarkInfo info() const override {
    return dacapoInfo("jython", "dynamic-language bytecode interpreter",
                      "dispatch-heavy interpretation");
  }

  void setUp() override {
    // A fixed "program": computes a recurrence with dict-style variable
    // lookups, as a dynamic language interpreter would.
    Xoshiro256StarStar Rng(0x97);
    for (int I = 0; I < 400; ++I)
      Code.push_back(static_cast<uint8_t>(Rng.nextBounded(5)));
  }

  void runIteration() override {
    std::unordered_map<std::string, long> Globals{{"a", 1},
                                                  {"b", 2},
                                                  {"c", 3}};
    uint64_t Dispatches = 0;
    for (int Rep = 0; Rep < 300; ++Rep) {
      for (uint8_t Op : Code) {
        ++Dispatches;
        runtime::noteVirtualCall(); // interpreter op handler dispatch
        runtime::noteObjectAlloc(); // the boxed result value
        switch (Op) {
        case 0:
          Globals["a"] = Globals["a"] + Globals["b"];
          break;
        case 1:
          Globals["b"] = Globals["b"] * 3 % 1000003;
          break;
        case 2:
          Globals["c"] = Globals["a"] ^ Globals["c"];
          break;
        case 3:
          Globals["a"] = Globals["c"] % 997;
          break;
        case 4:
          Globals["b"] = Globals["a"] + 7;
          break;
        }
      }
    }
    Result = static_cast<uint64_t>(Globals["a"] + Globals["b"] +
                                   Globals["c"]) +
             Dispatches % 7;
  }

  uint64_t checksum() const override { return Result; }

private:
  std::vector<uint8_t> Code;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// luindex / lusearch-fix: inverted-index build and query.
//===----------------------------------------------------------------------===//

class LuIndexBenchmark : public Benchmark {
public:
  BenchmarkInfo info() const override {
    return dacapoInfo("luindex", "inverted-index construction",
                      "text indexing");
  }

  void setUp() override { Docs = makeTextLines(1200, 20, 0x10D); }

  void runIteration() override {
    std::unordered_map<std::string, std::vector<uint32_t>> Index;
    for (uint32_t D = 0; D < Docs.size(); ++D) {
      size_t Pos = 0;
      const std::string &Doc = Docs[D];
      while (Pos < Doc.size()) {
        size_t End = Doc.find(' ', Pos);
        if (End == std::string::npos)
          End = Doc.size();
        runtime::noteObjectAlloc(); // the token string
        runtime::noteVirtualCall(2); // analyzer + writer dispatch
        Index[Doc.substr(Pos, End - Pos)].push_back(D);
        Pos = End + 1;
      }
    }
    Terms = Index.size();
  }

  uint64_t checksum() const override { return Terms; }

private:
  std::vector<std::string> Docs;
  uint64_t Terms = 0;
};

class LuSearchBenchmark : public Benchmark {
  static constexpr unsigned kThreads = 4;
  static constexpr unsigned kQueries = 400;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("lusearch-fix", "parallel index search",
                      "parallel text query");
  }

  void setUp() override {
    Docs = makeTextLines(1200, 20, 0x10D);
    for (uint32_t D = 0; D < Docs.size(); ++D) {
      size_t Pos = 0;
      const std::string &Doc = Docs[D];
      while (Pos < Doc.size()) {
        size_t End = Doc.find(' ', Pos);
        if (End == std::string::npos)
          End = Doc.size();
        Index[Doc.substr(Pos, End - Pos)].push_back(D);
        Pos = End + 1;
      }
    }
    for (const auto &[Term, Posting] : Index)
      Terms.push_back(Term);
    std::sort(Terms.begin(), Terms.end());
  }

  void runIteration() override {
    std::vector<std::thread> Workers;
    std::atomic<uint64_t> Hits{0};
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([&, T] {
        Xoshiro256StarStar Rng(0x5EA + T);
        uint64_t Local = 0;
        for (unsigned Q = 0; Q < kQueries; ++Q) {
          // Conjunctive two-term query: intersect posting lists.
          runtime::noteVirtualCall(4); // parser/scorer dispatch
          runtime::noteObjectAlloc(2); // query + collector objects
          const auto &A = Index.at(Terms[Rng.nextBounded(Terms.size())]);
          const auto &B = Index.at(Terms[Rng.nextBounded(Terms.size())]);
          memsim::traceBuffer(A.data(), A.size() * sizeof(uint32_t));
          memsim::traceBuffer(B.data(), B.size() * sizeof(uint32_t));
          size_t I = 0, J = 0;
          while (I < A.size() && J < B.size()) {
            if (A[I] == B[J]) {
              ++Local;
              ++I;
              ++J;
            } else if (A[I] < B[J]) {
              ++I;
            } else {
              ++J;
            }
          }
        }
        Hits.fetch_add(Local);
      });
    for (auto &W : Workers)
      W.join();
    Result = Hits.load();
  }

  uint64_t checksum() const override { return Result; }

private:
  std::vector<std::string> Docs;
  std::unordered_map<std::string, std::vector<uint32_t>> Index;
  std::vector<std::string> Terms;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// pmd: rule-based analysis over ASTs (reuses the graph as a syntax tree).
//===----------------------------------------------------------------------===//

class PmdBenchmark : public Benchmark {
public:
  BenchmarkInfo info() const override {
    return dacapoInfo("pmd", "static analysis rules over syntax trees",
                      "tree traversal, dispatch");
  }

  struct Node {
    virtual ~Node() = default;
    virtual uint64_t weight() const = 0;
    std::vector<runtime::Ref<Node>> Children;
  };

  struct StmtNode : Node {
    uint64_t weight() const override { return 1; }
  };
  struct ExprNode : Node {
    uint64_t weight() const override { return 2; }
  };
  struct DeclNode : Node {
    uint64_t weight() const override { return 3; }
  };

  void setUp() override {
    Xoshiro256StarStar Rng(0xBD);
    for (int T = 0; T < 60; ++T)
      Roots.push_back(buildTree(Rng, 0));
  }

  void runIteration() override {
    uint64_t Violations = 0;
    for (const auto &Root : Roots)
      Violations += analyze(*Root, 0);
    Result = Violations;
  }

  uint64_t checksum() const override { return Result; }

private:
  runtime::Ref<Node> buildTree(Xoshiro256StarStar &Rng, int Depth) {
    runtime::Ref<Node> N;
    switch (Rng.nextBounded(3)) {
    case 0:
      N = runtime::newObject<StmtNode>();
      break;
    case 1:
      N = runtime::newObject<ExprNode>();
      break;
    default:
      N = runtime::newObject<DeclNode>();
      break;
    }
    if (Depth < 7) {
      uint64_t Fanout = Rng.nextBounded(4);
      for (uint64_t C = 0; C < Fanout; ++C)
        N->Children.push_back(buildTree(Rng, Depth + 1));
    }
    return N;
  }

  uint64_t analyze(const Node &N, int Depth) {
    // "Rules": deep nesting, heavy subtrees — dispatched virtually.
    uint64_t Violations = 0;
    runtime::noteObjectAlloc(); // the rule context per visited node
    uint64_t W = runtime::virtualCall(&N, &Node::weight);
    if (Depth > 5)
      ++Violations;
    if (W == 3 && N.Children.size() > 2)
      ++Violations;
    for (const auto &C : N.Children)
      Violations += analyze(*C, Depth + 1);
    return Violations;
  }

  std::vector<runtime::Ref<Node>> Roots;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// sunflow (DaCapo flavour): the ray tracer, but multi-threaded.
//===----------------------------------------------------------------------===//

class SunflowDcBenchmark : public Benchmark {
  static constexpr int kSize = 128;
  static constexpr unsigned kThreads = 4;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("sunflow", "multi-threaded sphere ray tracer",
                      "CPU-parallel rendering");
  }

  void runIteration() override {
    std::vector<std::thread> Workers;
    std::atomic<uint64_t> Image{0};
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([&, T] {
        uint64_t Local = 0;
        for (int Y = T; Y < kSize; Y += kThreads)
          for (int X = 0; X < kSize; ++X) {
            runtime::noteVirtualCall(); // primitive-intersection dispatch
            double Dx = (X - kSize / 2) / static_cast<double>(kSize);
            double Dy = (Y - kSize / 2) / static_cast<double>(kSize);
            // Implicit sphere at z=4, r=1.5.
            double B = 4.0;
            double Det = B * B - (Dx * Dx + Dy * Dy + 16.0) + 2.25;
            Local = Local * 31 +
                    (Det >= 0 ? static_cast<uint64_t>(std::sqrt(Det) * 50)
                              : 7);
          }
        Image ^= Local;
      });
    for (auto &W : Workers)
      W.join();
    Result = Image.load();
  }

  uint64_t checksum() const override { return Result; }

private:
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// tomcat: request routing through servlet-ish handlers under session locks.
//===----------------------------------------------------------------------===//

class TomcatBenchmark : public Benchmark {
  static constexpr unsigned kThreads = 4;
  static constexpr unsigned kRequests = 1200;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("tomcat", "servlet container request routing",
                      "synchronized sessions");
  }

  void runIteration() override {
    struct Session {
      runtime::Monitor Lock;
      std::map<std::string, long> Attributes;
    };
    std::vector<runtime::Ref<Session>> Sessions;
    for (int S = 0; S < 32; ++S)
      Sessions.push_back(runtime::newObject<Session>());

    std::vector<std::thread> Workers;
    std::atomic<uint64_t> Served{0};
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([&, T] {
        Xoshiro256StarStar Rng(0x70C + T);
        for (unsigned R = 0; R < kRequests; ++R) {
          runtime::noteObjectAlloc(2); // request + response objects
          runtime::noteVirtualCall(5); // valve/servlet chain dispatch
          Session &S = *Sessions[Rng.nextBounded(Sessions.size())];
          {
            runtime::Synchronized Sync(S.Lock);
            S.Attributes["hits"] += 1;
            S.Attributes["user" + std::to_string(R % 8)] = R;
          }
          // Render the response body outside the session lock.
          std::string Body = "<html><body>";
          for (int Part = 0; Part < 12; ++Part)
            Body += "<div>" + std::to_string(R * Part) + "</div>";
          Body += "</body></html>";
          memsim::traceBuffer(Body.data(), Body.size());
          Served.fetch_add(1);
        }
      });
    for (auto &W : Workers)
      W.join();
    Result = Served.load();
  }

  uint64_t checksum() const override { return Result; }

private:
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// tradebeans / tradesoap: order-matching day trader over the kv store;
// the soap flavour adds serialization on every operation.
//===----------------------------------------------------------------------===//

class TradeBenchmark : public Benchmark {
public:
  TradeBenchmark(std::string Name, bool WithSerialization)
      : Name(std::move(Name)), WithSerialization(WithSerialization) {}

  BenchmarkInfo info() const override {
    return dacapoInfo(Name, "order matching over the kv store",
                      WithSerialization ? "transactions + serialization"
                                        : "transactions");
  }

  void runIteration() override;

  uint64_t checksum() const override { return Result; }

private:
  std::string Name;
  bool WithSerialization;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// xalan: multi-threaded XML-ish transformation.
//===----------------------------------------------------------------------===//

class XalanBenchmark : public Benchmark {
  static constexpr unsigned kThreads = 4;

public:
  BenchmarkInfo info() const override {
    return dacapoInfo("xalan", "parallel XSLT-style transforms",
                      "CPU-parallel text transformation");
  }

  void setUp() override { Docs = makeTextLines(800, 30, 0xA1A); }

  void runIteration() override {
    std::atomic<size_t> Next{0};
    std::atomic<uint64_t> Bytes{0};
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([&] {
        uint64_t Local = 0;
        for (;;) {
          size_t D = Next.fetch_add(1);
          if (D >= Docs.size())
            break;
          // "Transform": tag each word, then strip tags again.
          const std::string &Doc = Docs[D];
          memsim::traceBuffer(Doc.data(), Doc.size());
          runtime::noteVirtualCall(Doc.size() / 8);
          runtime::noteObjectAlloc(Doc.size() / 32); // node objects
          std::string Tagged;
          size_t Pos = 0;
          while (Pos < Doc.size()) {
            size_t End = Doc.find(' ', Pos);
            if (End == std::string::npos)
              End = Doc.size();
            Tagged += "<w>" + Doc.substr(Pos, End - Pos) + "</w>";
            Pos = End + 1;
          }
          std::string Stripped;
          bool InTag = false;
          for (char C : Tagged) {
            if (C == '<')
              InTag = true;
            else if (C == '>')
              InTag = false;
            else if (!InTag)
              Stripped.push_back(C);
          }
          Local += Stripped.size();
        }
        Bytes.fetch_add(Local);
      });
    for (auto &W : Workers)
      W.join();
    Result = Bytes.load();
  }

  uint64_t checksum() const override { return Result; }

private:
  std::vector<std::string> Docs;
  uint64_t Result = 0;
};

void TradeBenchmark::runIteration() {
  kvstore::Database Db;
  Xoshiro256StarStar Rng(0x7ADE);
  uint64_t Matched = 0;
  for (int Order = 0; Order < 4000; ++Order) {
    uint64_t Stock = Rng.nextBounded(64);
    long Price = static_cast<long>(90 + Rng.nextBounded(20));
    if (WithSerialization) {
      // Round-trip the order through the wire codec ("soap").
      netsim::ByteBuffer Enc;
      Enc.writeU64(Stock);
      Enc.writeU64(static_cast<uint64_t>(Price));
      netsim::ByteBuffer Dec(Enc.takeBytes());
      Stock = Dec.readU64();
      Price = static_cast<long>(Dec.readU64());
    }
    auto Prev = Db.transact({
        {kvstore::Database::Op::Kind::Get, "book", Stock, ""},
        {kvstore::Database::Op::Kind::Put, "book", Stock,
         std::to_string(Price)},
    });
    if (Prev.Reads[0] && std::stol(*Prev.Reads[0]) >= Price)
      ++Matched;
    // Portfolio valuation between orders.
    volatile long Value = 0;
    for (int H = 0; H < 400; ++H)
      Value = Value + Price * H;
  }
  Result = Matched;
}

} // namespace

void ren::workloads::registerDaCapoSuite(harness::Registry &R) {
  R.add([] { return std::make_unique<AvroraBenchmark>(); });
  R.add([] { return std::make_unique<BatikBenchmark>(); });
  R.add([] { return std::make_unique<EclipseBenchmark>(); });
  R.add([] { return std::make_unique<FopBenchmark>(); });
  R.add([] { return std::make_unique<H2Benchmark>(); });
  R.add([] { return std::make_unique<JythonBenchmark>(); });
  R.add([] { return std::make_unique<LuIndexBenchmark>(); });
  R.add([] { return std::make_unique<LuSearchBenchmark>(); });
  R.add([] { return std::make_unique<PmdBenchmark>(); });
  R.add([] { return std::make_unique<SunflowDcBenchmark>(); });
  R.add([] { return std::make_unique<TomcatBenchmark>(); });
  R.add([] { return std::make_unique<TradeBenchmark>("tradebeans",
                                                     false); });
  R.add([] { return std::make_unique<TradeBenchmark>("tradesoap", true); });
  R.add([] { return std::make_unique<XalanBenchmark>(); });
}
