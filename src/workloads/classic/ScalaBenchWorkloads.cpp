//===- workloads/classic/ScalaBenchWorkloads.cpp --------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// ScalaBench-analogue suite (Table 6): 12 workloads in the functional/
// object-hybrid style the ScalaBench paper documents — very high
// allocation rates (small immutable objects, closures), deep call chains,
// pattern-matching-style dispatch, and little concurrency. factorie and
// tmt are the paper's allocation-rate extremes (Table 7), actors is its
// lone message-passing workload (excluded from PCA, still implemented).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "actors/ActorSystem.h"
#include "memsim/MemSim.h"
#include "runtime/Alloc.h"
#include "support/Rng.h"
#include "workloads/DataGen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

BenchmarkInfo scalaInfo(const std::string &Name,
                        const std::string &Description,
                        const std::string &Focus) {
  return {Name, Suite::ScalaBench, Description, Focus, 2, 3};
}

/// An immutable cons list — the canonical Scala-style allocation engine.
struct ConsCell {
  long Head;
  std::shared_ptr<ConsCell> Tail;
};
using ConsList = std::shared_ptr<ConsCell>;

ConsList cons(long Head, ConsList Tail) {
  runtime::noteVirtualCall(); // List.::(...) dispatch
  // newShared notes the Object metric and draws the cell (payload +
  // control block, one allocate_shared block) from the managed heap.
  auto Cell = runtime::newShared<ConsCell>();
  Cell->Head = Head;
  Cell->Tail = std::move(Tail);
  return Cell;
}

/// Builds [0, N) as a cons list (freshly allocated).
ConsList listOfRange(long N) {
  ConsList L;
  for (long I = N - 1; I >= 0; --I)
    L = cons(I, L);
  return L;
}

/// map over a cons list, allocating the result list (like Scala's List).
template <typename FnT> ConsList mapList(const ConsList &L, FnT Fn) {
  if (!L)
    return nullptr;
  return cons(Fn(L->Head), mapList(L->Tail, Fn));
}

long sumList(const ConsList &L) {
  long Sum = 0;
  for (const ConsCell *C = L.get(); C; C = C->Tail.get()) {
    memsim::traceData(C, sizeof(*C)); // pointer-chasing list walk
    Sum += C->Head;
  }
  return Sum;
}

/// A generic allocation-heavy functional workload: repeated build / map /
/// filter-ish passes over immutable lists, parameterized per benchmark so
/// the suite members differ in scale and mix.
class FunctionalChurnBenchmark : public Benchmark {
public:
  FunctionalChurnBenchmark(std::string Name, std::string Description,
                           long ListLength, unsigned Passes)
      : Name(std::move(Name)), Description(std::move(Description)),
        ListLength(ListLength), Passes(Passes) {}

  BenchmarkInfo info() const override {
    return scalaInfo(Name, Description, "functional allocation churn");
  }

  void runIteration() override {
    long Acc = 0;
    for (unsigned P = 0; P < Passes; ++P) {
      ConsList L = listOfRange(ListLength);
      ConsList Doubled = mapList(L, [](long X) { return 2 * X + 1; });
      ConsList Squares = mapList(Doubled, [P](long X) {
        return X * X % (1000003 + static_cast<long>(P));
      });
      Acc ^= sumList(Squares);
    }
    Result = static_cast<uint64_t>(Acc);
  }

  uint64_t checksum() const override { return Result; }

private:
  std::string Name;
  std::string Description;
  long ListLength;
  unsigned Passes;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// actors: Scala-actors message throughput (paper excludes it from PCA).
//===----------------------------------------------------------------------===//

class ScalaActorsBenchmark : public Benchmark {
public:
  BenchmarkInfo info() const override {
    return scalaInfo("actors", "Scala-actors message throughput",
                     "message passing");
  }

  void runIteration() override {
    struct Counter : actors::Actor<int> {
      explicit Counter(std::atomic<long> &Sum) : Sum(Sum) {}
      void receive(int M) override { Sum.fetch_add(M); }
      std::atomic<long> &Sum;
    };
    std::atomic<long> Sum{0};
    {
      actors::ActorSystem System(2);
      auto Ref = System.spawn<Counter>(Sum);
      for (int I = 0; I < 4000; ++I)
        Ref.tell(1);
      System.awaitQuiescence();
    }
    Result = static_cast<uint64_t>(Sum.load());
  }

  uint64_t checksum() const override { return Result; }

private:
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// scalac / scaladoc / scalap: compiler-shaped passes — parse-ish
// tokenization, symbol interning and tree rewriting over text corpora.
//===----------------------------------------------------------------------===//

class ScalacLikeBenchmark : public Benchmark {
public:
  ScalacLikeBenchmark(std::string Name, std::string Description,
                      size_t CorpusLines, unsigned RewritePasses)
      : Name(std::move(Name)), Description(std::move(Description)),
        CorpusLines(CorpusLines), RewritePasses(RewritePasses) {}

  BenchmarkInfo info() const override {
    return scalaInfo(Name, Description, "compiler-shaped symbol tables");
  }

  void setUp() override {
    Corpus = makeTextLines(CorpusLines, 16, 0x5CA1A);
  }

  void runIteration() override {
    // Intern all symbols, then run rewrite passes remapping symbols.
    std::unordered_map<std::string, uint32_t> Interned;
    std::vector<std::vector<uint32_t>> Trees;
    for (const std::string &Line : Corpus) {
      std::vector<uint32_t> Tokens;
      size_t Pos = 0;
      while (Pos < Line.size()) {
        size_t End = Line.find(' ', Pos);
        if (End == std::string::npos)
          End = Line.size();
        std::string Sym = Line.substr(Pos, End - Pos);
        auto [It, Inserted] =
            Interned.emplace(Sym, static_cast<uint32_t>(Interned.size()));
        Tokens.push_back(It->second);
        runtime::noteObjectAlloc(); // tree node per token
        runtime::noteVirtualCall(2); // parser + symbol-table dispatch
        Pos = End + 1;
      }
      Trees.push_back(std::move(Tokens));
    }
    uint64_t Hash = 0;
    for (unsigned Pass = 0; Pass < RewritePasses; ++Pass)
      for (auto &Tree : Trees) {
        memsim::traceBuffer(Tree.data(), Tree.size() * sizeof(uint32_t));
        for (uint32_t &Tok : Tree) {
          runtime::noteVirtualCall(); // transform dispatch
          Tok = (Tok * 2654435761u + Pass) % Interned.size();
          Hash = Hash * 31 + Tok;
        }
      }
    Result = Interned.size() * 1000003 + Hash % 1000003;
  }

  uint64_t checksum() const override { return Result; }

private:
  std::string Name;
  std::string Description;
  size_t CorpusLines;
  unsigned RewritePasses;
  std::vector<std::string> Corpus;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// kiama: attribute-grammar-style tree rewriting to a fixpoint.
//===----------------------------------------------------------------------===//

class KiamaBenchmark : public Benchmark {
public:
  BenchmarkInfo info() const override {
    return scalaInfo("kiama", "rewriting arithmetic trees to normal form",
                     "tree rewriting");
  }

  struct Node {
    char Op; // '+', '*', or 'n' for leaf
    long Value = 0;
    runtime::Ref<Node> Lhs, Rhs;
  };

  void runIteration() override {
    Xoshiro256StarStar Rng(0x1A3A);
    uint64_t Folded = 0;
    for (int T = 0; T < 150; ++T) {
      auto Tree = buildTree(Rng, 0);
      // Rewrite to fixpoint: constant-fold leaves upward.
      Folded += fold(*Tree);
    }
    Result = Folded;
  }

  uint64_t checksum() const override { return Result; }

private:
  runtime::Ref<Node> buildTree(Xoshiro256StarStar &Rng, int Depth) {
    auto N = runtime::newObject<Node>();
    if (Depth >= 8 || Rng.nextBool(0.3)) {
      N->Op = 'n';
      N->Value = static_cast<long>(Rng.nextBounded(100));
      return N;
    }
    N->Op = Rng.nextBool() ? '+' : '*';
    N->Lhs = buildTree(Rng, Depth + 1);
    N->Rhs = buildTree(Rng, Depth + 1);
    return N;
  }

  static long fold(const Node &N) {
    runtime::noteVirtualCall(); // strategy dispatch per node
    memsim::traceData(&N, sizeof(N));
    if (N.Op == 'n')
      return N.Value;
    long L = fold(*N.Lhs);
    long R = fold(*N.Rhs);
    return N.Op == '+' ? (L + R) % 1000003 : (L * R) % 1000003;
  }

  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// factorie / tmt: machine-learning workloads with extreme allocation rates
// (topic-model-style sampling where every step allocates small objects).
//===----------------------------------------------------------------------===//

class TopicModelBenchmark : public Benchmark {
public:
  TopicModelBenchmark(std::string Name, size_t Docs, unsigned Sweeps)
      : Name(std::move(Name)), Docs(Docs), Sweeps(Sweeps) {}

  BenchmarkInfo info() const override {
    return scalaInfo(Name, "Gibbs-style topic sampling",
                     "extreme allocation rate");
  }

  void setUp() override {
    Corpus = makeDocuments(Docs, 30, 512, 4, 0xFAC70);
  }

  void runIteration() override {
    constexpr unsigned kTopics = 8;
    Xoshiro256StarStar Rng(0x731);
    // Topic assignment per token, re-sampled per sweep; each sampling step
    // allocates a fresh distribution object (the factorie/tmt behaviour).
    std::vector<std::vector<uint8_t>> Assignments;
    for (const Document &D : Corpus)
      Assignments.emplace_back(D.Words.size(), 0);
    std::vector<double> TopicCounts(kTopics, 1.0);
    uint64_t Moves = 0;
    for (unsigned S = 0; S < Sweeps; ++S) {
      for (size_t D = 0; D < Corpus.size(); ++D)
        for (size_t W = 0; W < Corpus[D].Words.size(); ++W) {
          // Allocate the proposal distribution object and its backing
          // array (both counted, as on the JVM).
          runtime::noteObjectAlloc();
          runtime::noteVirtualCall(2); // factor/variable dispatch
          auto Proposal = runtime::newArray<double>(kTopics);
          double Total = 0;
          for (unsigned T = 0; T < kTopics; ++T) {
            Proposal[T] = TopicCounts[T] *
                          (1.0 + ((Corpus[D].Words[W] + T) % 7));
            Total += Proposal[T];
          }
          double Pick = Rng.nextDouble() * Total;
          uint8_t NewTopic = 0;
          for (unsigned T = 0; T < kTopics; ++T) {
            Pick -= Proposal[T];
            if (Pick <= 0) {
              NewTopic = static_cast<uint8_t>(T);
              break;
            }
          }
          if (NewTopic != Assignments[D][W]) {
            TopicCounts[Assignments[D][W]] =
                std::max(1.0, TopicCounts[Assignments[D][W]] - 1.0);
            TopicCounts[NewTopic] += 1.0;
            Assignments[D][W] = NewTopic;
            ++Moves;
          }
        }
    }
    Result = Moves;
  }

  uint64_t checksum() const override { return Result; }

private:
  std::string Name;
  size_t Docs;
  unsigned Sweeps;
  std::vector<Document> Corpus;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// scalatest / specs: test-framework-shaped workloads — build and run many
// tiny assertion closures.
//===----------------------------------------------------------------------===//

class TestFrameworkBenchmark : public Benchmark {
public:
  TestFrameworkBenchmark(std::string Name, unsigned Suites,
                         unsigned TestsPerSuite)
      : Name(std::move(Name)), Suites(Suites),
        TestsPerSuite(TestsPerSuite) {}

  BenchmarkInfo info() const override {
    return scalaInfo(Name, "assertion-closure execution",
                     "closure-heavy test running");
  }

  void runIteration() override {
    uint64_t Passed = 0;
    for (unsigned S = 0; S < Suites; ++S) {
      // Each suite registers closures, then runs them.
      std::vector<std::function<bool()>> Tests;
      for (unsigned T = 0; T < TestsPerSuite; ++T) {
        runtime::noteObjectAlloc(); // the closure object
        Tests.push_back([S, T] {
          long X = static_cast<long>(S) * 31 + T;
          return (X * X) % 7 == (X % 7) * (X % 7) % 7;
        });
      }
      for (auto &Test : Tests) {
        runtime::noteVirtualCall(3); // reporter/suite/test dispatch
        Passed += Test() ? 1 : 0;
      }
    }
    Result = Passed;
  }

  uint64_t checksum() const override { return Result; }

private:
  std::string Name;
  unsigned Suites;
  unsigned TestsPerSuite;
  uint64_t Result = 0;
};

} // namespace

void ren::workloads::registerScalaBenchSuite(harness::Registry &R) {
  R.add([] { return std::make_unique<ScalaActorsBenchmark>(); });
  R.add([] { return std::make_unique<FunctionalChurnBenchmark>(
                 "apparat", "bytecode-manipulation-style list passes", 900,
                 40); });
  R.add([] { return std::make_unique<TopicModelBenchmark>("factorie", 260,
                                                          4); });
  R.add([] { return std::make_unique<KiamaBenchmark>(); });
  R.add([] { return std::make_unique<ScalacLikeBenchmark>(
                 "scalac", "compiles a synthetic corpus", 700, 8); });
  R.add([] { return std::make_unique<ScalacLikeBenchmark>(
                 "scaladoc", "documents a synthetic corpus", 550, 6); });
  R.add([] { return std::make_unique<ScalacLikeBenchmark>(
                 "scalap", "decompiles class signatures", 260, 4); });
  R.add([] { return std::make_unique<FunctionalChurnBenchmark>(
                 "scalariform", "pretty-printer-style list churn", 600,
                 30); });
  R.add([] { return std::make_unique<TestFrameworkBenchmark>("scalatest",
                                                             120, 60); });
  R.add([] { return std::make_unique<FunctionalChurnBenchmark>(
                 "scalaxb", "schema-binding-style list churn", 800, 35); });
  R.add([] { return std::make_unique<TestFrameworkBenchmark>("specs", 100,
                                                             50); });
  R.add([] { return std::make_unique<TopicModelBenchmark>("tmt", 380, 5); });
}
