//===- workloads/classic/SpecJvmWorkloads.cpp -----------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// SPECjvm2008-analogue suite (Table 6): 21 computationally intensive
// kernels. The paper characterizes these workloads as small, CPU-saturating
// and light on object-oriented abstraction and concurrency (§8, Fig 1);
// these analogues reproduce that metric profile with real kernels: FFT,
// LU, SOR, sparse matmul, Monte Carlo, compression, ciphers, a tiny
// expression compiler, serialization, a ray tracer and XML-ish transforms.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "kvstore/KvStore.h"
#include "runtime/Alloc.h"
#include "memsim/MemSim.h"
#include "netsim/NetSim.h"
#include "support/Rng.h"
#include "workloads/DataGen.h"

#include <cmath>
#include <complex>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

/// Base class for the scimark-style kernels: a single hot loop nest over
/// preallocated arrays, CPU-bound, negligible allocation.
class KernelBenchmark : public Benchmark {
public:
  KernelBenchmark(std::string Name, std::string Description)
      : Name(std::move(Name)), Description(std::move(Description)) {}

  BenchmarkInfo info() const override {
    return {Name, Suite::SpecJvm2008, Description, "compute kernel", 2, 3};
  }

  uint64_t checksum() const override { return Checksum; }

protected:
  std::string Name;
  std::string Description;
  uint64_t Checksum = 0;
};

//===----------------------------------------------------------------------===//
// scimark.fft
//===----------------------------------------------------------------------===//

class FftBenchmark : public KernelBenchmark {
public:
  FftBenchmark(std::string Name, size_t N, unsigned Repeats)
      : KernelBenchmark(std::move(Name), "radix-2 FFT kernel"), N(N),
        Repeats(Repeats) {}

  void setUp() override {
    Xoshiro256StarStar Rng(0xFF7);
    Data.assign(N, {});
    for (auto &C : Data)
      C = {Rng.nextDouble() - 0.5, Rng.nextDouble() - 0.5};
  }

  void runIteration() override {
    std::vector<std::complex<double>> Work = Data;
    for (unsigned R = 0; R < Repeats; ++R) {
      fft(Work, false);
      fft(Work, true);
      // Expose the working set to the cache simulator and account the
      // virtual calls the Java kernel makes per transform pass.
      memsim::traceBuffer(Work.data(), Work.size() * sizeof(Work[0]));
      runtime::noteVirtualCall(2 * N);
    }
    double Sum = 0;
    for (auto &C : Work)
      Sum += std::abs(C);
    Checksum = static_cast<uint64_t>(Sum * 1e3);
  }

private:
  static void fft(std::vector<std::complex<double>> &A, bool Invert) {
    size_t N = A.size();
    for (size_t I = 1, J = 0; I < N; ++I) {
      size_t Bit = N >> 1;
      for (; J & Bit; Bit >>= 1)
        J ^= Bit;
      J ^= Bit;
      if (I < J)
        std::swap(A[I], A[J]);
    }
    for (size_t Len = 2; Len <= N; Len <<= 1) {
      double Angle = 2 * 3.14159265358979323846 / static_cast<double>(Len) *
                     (Invert ? -1 : 1);
      std::complex<double> WLen(std::cos(Angle), std::sin(Angle));
      for (size_t I = 0; I < N; I += Len) {
        std::complex<double> W(1);
        for (size_t K = 0; K < Len / 2; ++K) {
          std::complex<double> U = A[I + K];
          std::complex<double> V = A[I + K + Len / 2] * W;
          A[I + K] = U + V;
          A[I + K + Len / 2] = U - V;
          W *= WLen;
        }
      }
    }
    if (Invert)
      for (auto &X : A)
        X /= static_cast<double>(N);
  }

  size_t N;
  unsigned Repeats;
  std::vector<std::complex<double>> Data;
};

//===----------------------------------------------------------------------===//
// scimark.lu
//===----------------------------------------------------------------------===//

class LuBenchmark : public KernelBenchmark {
public:
  LuBenchmark(std::string Name, size_t N, unsigned Repeats)
      : KernelBenchmark(std::move(Name), "LU factorization kernel"), N(N),
        Repeats(Repeats) {}

  void setUp() override {
    Xoshiro256StarStar Rng(0x10);
    Matrix.assign(N * N, 0.0);
    for (double &V : Matrix)
      V = Rng.nextDouble() * 2.0 - 1.0;
    for (size_t I = 0; I < N; ++I)
      Matrix[I * N + I] += N; // diagonally dominant: no pivoting needed
  }

  void runIteration() override {
    double Sum = 0;
    for (unsigned R = 0; R < Repeats; ++R) {
      std::vector<double> A = Matrix;
      memsim::traceBuffer(A.data(), A.size() * sizeof(double));
      runtime::noteVirtualCall(N);
      for (size_t K = 0; K < N; ++K)
        for (size_t I = K + 1; I < N; ++I) {
          double F = A[I * N + K] / A[K * N + K];
          for (size_t J = K; J < N; ++J)
            A[I * N + J] -= F * A[K * N + J];
        }
      for (size_t I = 0; I < N; ++I)
        Sum += A[I * N + I];
    }
    Checksum = static_cast<uint64_t>(std::fabs(Sum));
  }

private:
  size_t N;
  unsigned Repeats;
  std::vector<double> Matrix;
};

//===----------------------------------------------------------------------===//
// scimark.sor
//===----------------------------------------------------------------------===//

class SorBenchmark : public KernelBenchmark {
public:
  SorBenchmark(std::string Name, size_t N, unsigned Sweeps)
      : KernelBenchmark(std::move(Name), "successive over-relaxation"),
        N(N), Sweeps(Sweeps) {}

  void setUp() override {
    Xoshiro256StarStar Rng(0x50F);
    Grid.assign(N * N, 0.0);
    for (double &V : Grid)
      V = Rng.nextDouble();
  }

  void runIteration() override {
    std::vector<double> G = Grid;
    constexpr double Omega = 1.25;
    memsim::traceBuffer(G.data(), G.size() * sizeof(double));
    runtime::noteVirtualCall(Sweeps * N);
    for (unsigned S = 0; S < Sweeps; ++S)
      for (size_t I = 1; I < N - 1; ++I)
        for (size_t J = 1; J < N - 1; ++J)
          G[I * N + J] =
              Omega * 0.25 *
                  (G[(I - 1) * N + J] + G[(I + 1) * N + J] +
                   G[I * N + J - 1] + G[I * N + J + 1]) +
              (1.0 - Omega) * G[I * N + J];
    double Sum = 0;
    for (double V : G)
      Sum += V;
    Checksum = static_cast<uint64_t>(Sum * 1e3);
  }

private:
  size_t N;
  unsigned Sweeps;
  std::vector<double> Grid;
};

//===----------------------------------------------------------------------===//
// scimark.sparse
//===----------------------------------------------------------------------===//

class SparseBenchmark : public KernelBenchmark {
public:
  SparseBenchmark(std::string Name, size_t N, size_t Nnz, unsigned Repeats)
      : KernelBenchmark(std::move(Name), "sparse mat-vec multiply"), N(N),
        Nnz(Nnz), Repeats(Repeats) {}

  void setUp() override {
    Xoshiro256StarStar Rng(0x5BA);
    Values.assign(Nnz, 0.0);
    Columns.assign(Nnz, 0);
    RowStart.assign(N + 1, 0);
    size_t PerRow = Nnz / N;
    size_t Pos = 0;
    for (size_t R = 0; R < N; ++R) {
      RowStart[R] = Pos;
      for (size_t E = 0; E < PerRow && Pos < Nnz; ++E, ++Pos) {
        Values[Pos] = Rng.nextDouble();
        Columns[Pos] = Rng.nextBounded(N);
      }
    }
    RowStart[N] = Pos;
    X.assign(N, 1.0);
  }

  void runIteration() override {
    std::vector<double> Y(N, 0.0);
    memsim::traceBuffer(Values.data(), Values.size() * sizeof(double));
    memsim::traceBuffer(X.data(), X.size() * sizeof(double));
    runtime::noteVirtualCall(Repeats * N);
    for (unsigned Rep = 0; Rep < Repeats; ++Rep)
      for (size_t R = 0; R < N; ++R) {
        double Sum = 0;
        for (size_t E = RowStart[R]; E < RowStart[R + 1]; ++E)
          Sum += Values[E] * X[Columns[E]];
        Y[R] = Sum;
      }
    double Total = 0;
    for (double V : Y)
      Total += V;
    Checksum = static_cast<uint64_t>(Total * 1e3);
  }

private:
  size_t N, Nnz;
  unsigned Repeats;
  std::vector<double> Values, X;
  std::vector<size_t> Columns, RowStart;
};

//===----------------------------------------------------------------------===//
// scimark.monte_carlo
//===----------------------------------------------------------------------===//

class MonteCarloBenchmark : public KernelBenchmark {
public:
  MonteCarloBenchmark()
      : KernelBenchmark("scimark.monte_carlo", "pi by rejection sampling") {}

  void runIteration() override {
    Xoshiro256StarStar Rng(0x3C);
    constexpr size_t Samples = 3000000;
    size_t Inside = 0;
    for (size_t I = 0; I < Samples; ++I) {
      double X = Rng.nextDouble();
      double Y = Rng.nextDouble();
      Inside += X * X + Y * Y <= 1.0 ? 1 : 0;
    }
    Checksum = static_cast<uint64_t>(4.0e6 * Inside / Samples);
  }
};

//===----------------------------------------------------------------------===//
// compress: run-length + move-to-front + order-0 entropy coding pass.
//===----------------------------------------------------------------------===//

class CompressBenchmark : public KernelBenchmark {
public:
  CompressBenchmark()
      : KernelBenchmark("compress", "LZ-style window compressor") {}

  void setUp() override {
    auto Lines = makeTextLines(3000, 12, 0xC0);
    for (const std::string &L : Lines) {
      Input.insert(Input.end(), L.begin(), L.end());
      Input.push_back('\n');
    }
  }

  void runIteration() override {
    // LZ77-style greedy window compression.
    std::vector<uint8_t> Out;
    Out.reserve(Input.size() / 2);
    runtime::noteArrayAlloc();
    memsim::traceBuffer(Input.data(), Input.size());
    runtime::noteVirtualCall(Input.size() / 16);
    constexpr size_t WindowBytes = 4096;
    size_t Pos = 0;
    while (Pos < Input.size()) {
      size_t BestLen = 0, BestOffset = 0;
      size_t WindowBegin = Pos > WindowBytes ? Pos - WindowBytes : 0;
      for (size_t Cand = WindowBegin; Cand < Pos; ++Cand) {
        size_t Len = 0;
        while (Pos + Len < Input.size() && Len < 255 &&
               Input[Cand + Len] == Input[Pos + Len])
          ++Len;
        if (Len > BestLen) {
          BestLen = Len;
          BestOffset = Pos - Cand;
        }
        // Greedy cutoff to bound the O(window * len) scan.
        if (BestLen >= 32)
          break;
      }
      if (BestLen >= 4) {
        Out.push_back(0xFF);
        Out.push_back(static_cast<uint8_t>(BestOffset & 0xFF));
        Out.push_back(static_cast<uint8_t>(BestOffset >> 8));
        Out.push_back(static_cast<uint8_t>(BestLen));
        Pos += BestLen;
      } else {
        Out.push_back(Input[Pos]);
        ++Pos;
      }
    }
    Checksum = Out.size();
  }

private:
  std::vector<uint8_t> Input;
};

//===----------------------------------------------------------------------===//
// crypto.*: XTEA block cipher, RSA-style modular exponentiation, and a
// sign/verify loop combining a rolling hash with modexp.
//===----------------------------------------------------------------------===//

uint64_t modmul(uint64_t A, uint64_t B, uint64_t Mod) {
  return static_cast<uint64_t>(
      static_cast<unsigned __int128>(A) * B % Mod);
}

uint64_t modpow(uint64_t Base, uint64_t Exp, uint64_t Mod) {
  uint64_t Result = 1 % Mod;
  Base %= Mod;
  while (Exp) {
    if (Exp & 1)
      Result = modmul(Result, Base, Mod);
    Base = modmul(Base, Base, Mod);
    Exp >>= 1;
  }
  return Result;
}

class CryptoAesBenchmark : public KernelBenchmark {
public:
  CryptoAesBenchmark()
      : KernelBenchmark("crypto.aes", "XTEA block encryption loop") {}

  void setUp() override {
    auto Lines = makeTextLines(2000, 10, 0xAE5);
    for (const std::string &L : Lines)
      for (char C : L)
        Data.push_back(static_cast<uint8_t>(C));
    Data.resize(Data.size() & ~size_t(7)); // whole 8-byte blocks
  }

  void runIteration() override {
    const uint32_t Key[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                             0x76543210};
    uint64_t Sum = 0;
    memsim::traceBuffer(Data.data(), Data.size());
    runtime::noteVirtualCall(Data.size() / 8);
    for (size_t B = 0; B + 8 <= Data.size(); B += 8) {
      uint32_t V0, V1;
      std::memcpy(&V0, &Data[B], 4);
      std::memcpy(&V1, &Data[B + 4], 4);
      uint32_t S = 0;
      for (int Round = 0; Round < 32; ++Round) {
        V0 += (((V1 << 4) ^ (V1 >> 5)) + V1) ^ (S + Key[S & 3]);
        S += 0x9E3779B9;
        V1 += (((V0 << 4) ^ (V0 >> 5)) + V0) ^ (S + Key[(S >> 11) & 3]);
      }
      Sum += V0 ^ V1;
    }
    Checksum = Sum;
  }

private:
  std::vector<uint8_t> Data;
};

class CryptoRsaBenchmark : public KernelBenchmark {
public:
  CryptoRsaBenchmark()
      : KernelBenchmark("crypto.rsa", "modular exponentiation loop") {}

  void runIteration() override {
    constexpr uint64_t Mod = 0xFFFFFFFFFFFFFFC5ULL; // large prime
    constexpr uint64_t E = 65537;
    uint64_t Sum = 0;
    for (uint64_t M = 1; M <= 1500; ++M)
      Sum ^= modpow(M * 0x9E3779B97F4A7C15ULL % Mod, E, Mod);
    Checksum = Sum;
  }
};

class CryptoSignVerifyBenchmark : public KernelBenchmark {
public:
  CryptoSignVerifyBenchmark()
      : KernelBenchmark("crypto.signverify", "hash + modexp sign/verify") {}

  void setUp() override { Lines = makeTextLines(600, 10, 0x516); }

  void runIteration() override {
    constexpr uint64_t Mod = 0xFFFFFFFFFFFFFFC5ULL;
    constexpr uint64_t D = 0x10001;
    uint64_t Ok = 0;
    for (const std::string &L : Lines) {
      uint64_t H = 1469598103934665603ULL;
      for (char C : L)
        H = (H ^ static_cast<uint8_t>(C)) * 1099511628211ULL;
      uint64_t Sig = modpow(H % Mod, D, Mod);
      Ok += modpow(Sig, D, Mod) != 0 ? 1 : 0;
    }
    Checksum = Ok;
  }

private:
  std::vector<std::string> Lines;
};

//===----------------------------------------------------------------------===//
// compiler.compiler / compiler.sunflow: compile synthetic expression
// sources with a small shunting-yard compiler to a stack machine, then
// execute the bytecode (the "compiler compiles itself/sunflow" shape).
//===----------------------------------------------------------------------===//

class MiniCompilerBenchmark : public KernelBenchmark {
public:
  MiniCompilerBenchmark(std::string Name, uint64_t Seed, size_t Exprs)
      : KernelBenchmark(std::move(Name),
                        "expression compiler + stack machine"),
        Seed(Seed), Exprs(Exprs) {}

  void setUp() override {
    Xoshiro256StarStar Rng(Seed);
    Sources.clear();
    for (size_t I = 0; I < Exprs; ++I) {
      std::string E = std::to_string(Rng.nextBounded(100));
      size_t Terms = 4 + Rng.nextBounded(24);
      for (size_t T = 0; T < Terms; ++T) {
        const char *Ops[] = {"+", "-", "*"};
        E += Ops[Rng.nextBounded(3)];
        E += std::to_string(1 + Rng.nextBounded(99));
      }
      Sources.push_back(std::move(E));
    }
  }

  void runIteration() override {
    uint64_t Sum = 0;
    for (const std::string &Src : Sources) {
      memsim::traceBuffer(Src.data(), Src.size());
      runtime::noteObjectAlloc(2); // code + constant pool objects
      runtime::noteVirtualCall(Src.size() / 4);
      Sum += static_cast<uint64_t>(compileAndRun(Src));
    }
    Checksum = Sum;
  }

private:
  enum Op : uint8_t { OpPush, OpAdd, OpSub, OpMul };

  static long compileAndRun(const std::string &Src) {
    // Compile: shunting-yard to postfix bytecode.
    std::vector<uint8_t> Code;
    std::vector<long> Consts;
    std::vector<char> OpStack;
    auto precedence = [](char C) { return C == '*' ? 2 : 1; };
    size_t Pos = 0;
    while (Pos < Src.size()) {
      if (std::isdigit(Src[Pos])) {
        long V = 0;
        while (Pos < Src.size() && std::isdigit(Src[Pos]))
          V = V * 10 + (Src[Pos++] - '0');
        Code.push_back(OpPush);
        Code.push_back(static_cast<uint8_t>(Consts.size()));
        Consts.push_back(V);
        continue;
      }
      char C = Src[Pos++];
      while (!OpStack.empty() &&
             precedence(OpStack.back()) >= precedence(C)) {
        Code.push_back(opFor(OpStack.back()));
        OpStack.pop_back();
      }
      OpStack.push_back(C);
    }
    while (!OpStack.empty()) {
      Code.push_back(opFor(OpStack.back()));
      OpStack.pop_back();
    }
    // Execute on the stack machine.
    std::vector<long> Stack;
    for (size_t I = 0; I < Code.size(); ++I) {
      switch (Code[I]) {
      case OpPush:
        Stack.push_back(Consts[Code[++I]]);
        break;
      case OpAdd: {
        long B = Stack.back();
        Stack.pop_back();
        Stack.back() += B;
        break;
      }
      case OpSub: {
        long B = Stack.back();
        Stack.pop_back();
        Stack.back() -= B;
        break;
      }
      case OpMul: {
        long B = Stack.back();
        Stack.pop_back();
        Stack.back() *= B;
        break;
      }
      }
    }
    return Stack.empty() ? 0 : Stack.back();
  }

  static uint8_t opFor(char C) {
    return C == '+' ? OpAdd : C == '-' ? OpSub : OpMul;
  }

  uint64_t Seed;
  size_t Exprs;
  std::vector<std::string> Sources;
};

//===----------------------------------------------------------------------===//
// derby: a transactional order-processing mix over the kv tables (the one
// SPEC workload with heavy synchronization, matching Table 7).
//===----------------------------------------------------------------------===//

class DerbyBenchmark : public Benchmark {
  static constexpr unsigned kThreads = 4;
  static constexpr unsigned kOpsPerThread = 1500;

public:
  BenchmarkInfo info() const override {
    return {"derby", Suite::SpecJvm2008,
            "Transactional order processing over the kv store",
            "database, synchronization", 2, 3};
  }

  void runIteration() override;

  uint64_t checksum() const override { return Committed; }

private:
  uint64_t Committed = 0;
};

//===----------------------------------------------------------------------===//
// mpegaudio: a filter-bank-style signal-processing loop.
//===----------------------------------------------------------------------===//

class MpegAudioBenchmark : public KernelBenchmark {
public:
  MpegAudioBenchmark()
      : KernelBenchmark("mpegaudio", "polyphase filter-bank loop") {}

  void setUp() override {
    Xoshiro256StarStar Rng(0x3A6);
    Samples.assign(1 << 16, 0.0);
    for (double &S : Samples)
      S = Rng.nextDouble() * 2.0 - 1.0;
    for (int I = 0; I < 64; ++I)
      Window[I] = std::sin((I + 0.5) * 3.14159265358979 / 64.0);
  }

  void runIteration() override {
    double Energy = 0;
    memsim::traceBuffer(Samples.data(), Samples.size() * sizeof(double));
    runtime::noteVirtualCall(Samples.size() / 32);
    for (size_t Frame = 0; Frame + 64 <= Samples.size(); Frame += 32) {
      double Bands[32] = {};
      for (int B = 0; B < 32; ++B)
        for (int K = 0; K < 64; ++K)
          Bands[B] += Samples[Frame + (K % 64)] * Window[K] *
                      std::cos((2 * B + 1) * (K - 16) * 3.14159265358979 /
                               64.0);
      for (double Band : Bands)
        Energy += Band * Band;
    }
    Checksum = static_cast<uint64_t>(Energy);
  }

private:
  std::vector<double> Samples;
  double Window[64] = {};
};

//===----------------------------------------------------------------------===//
// serial: serialize/deserialize record trees through the byte codec.
//===----------------------------------------------------------------------===//

class SerialBenchmark : public KernelBenchmark {
public:
  SerialBenchmark()
      : KernelBenchmark("serial", "record serialization round trips") {}

  void setUp() override { Lines = makeTextLines(1500, 8, 0x5E1A); }

  void runIteration() override;

private:
  std::vector<std::string> Lines;
};

//===----------------------------------------------------------------------===//
// sunflow (and the core of compiler.sunflow's payload): a tiny sphere
// ray tracer.
//===----------------------------------------------------------------------===//

struct Vec3 {
  double X = 0, Y = 0, Z = 0;
  Vec3 operator+(const Vec3 &O) const { return {X + O.X, Y + O.Y, Z + O.Z}; }
  Vec3 operator-(const Vec3 &O) const { return {X - O.X, Y - O.Y, Z - O.Z}; }
  Vec3 operator*(double S) const { return {X * S, Y * S, Z * S}; }
  double dot(const Vec3 &O) const { return X * O.X + Y * O.Y + Z * O.Z; }
};

class SunflowBenchmark : public KernelBenchmark {
  static constexpr int kWidth = 96;
  static constexpr int kHeight = 96;

public:
  explicit SunflowBenchmark(std::string Name)
      : KernelBenchmark(std::move(Name), "sphere ray tracer") {}

  void setUp() override {
    Xoshiro256StarStar Rng(0x5F);
    for (int I = 0; I < 24; ++I) {
      Spheres.push_back({{Rng.nextDouble() * 8 - 4, Rng.nextDouble() * 8 - 4,
                          4 + Rng.nextDouble() * 8},
                         0.3 + Rng.nextDouble()});
    }
  }

  void runIteration() override {
    uint64_t Image = 0;
    runtime::noteVirtualCall(static_cast<uint64_t>(kWidth) * kHeight);
    for (int Y = 0; Y < kHeight; ++Y)
      for (int X = 0; X < kWidth; ++X) {
        Vec3 Dir = {(X - kWidth / 2) / static_cast<double>(kWidth),
                    (Y - kHeight / 2) / static_cast<double>(kHeight), 1.0};
        double Norm = std::sqrt(Dir.dot(Dir));
        Dir = Dir * (1.0 / Norm);
        Image = Image * 31 + tracePixel({{0, 0, 0}}, Dir, 0);
      }
    Checksum = Image;
  }

private:
  struct Sphere {
    Vec3 Center;
    double Radius;
  };
  struct Ray {
    Vec3 Origin;
  };

  unsigned tracePixel(Ray R, Vec3 Dir, int Depth) const {
    double Nearest = 1e300;
    const Sphere *Hit = nullptr;
    for (const Sphere &S : Spheres) {
      Vec3 Oc = S.Center - R.Origin;
      double B = Oc.dot(Dir);
      double Det = B * B - Oc.dot(Oc) + S.Radius * S.Radius;
      if (Det < 0)
        continue;
      double T = B - std::sqrt(Det);
      if (T > 1e-6 && T < Nearest) {
        Nearest = T;
        Hit = &S;
      }
    }
    if (!Hit)
      return 16; // sky
    // One diffuse bounce toward the fixed light.
    Vec3 Point = R.Origin + Dir * Nearest;
    Vec3 Normal = (Point - Hit->Center) * (1.0 / Hit->Radius);
    Vec3 Light = {0.5, -1.0, -0.3};
    double Shade = std::max(0.0, -Normal.dot(Light));
    unsigned Color = static_cast<unsigned>(Shade * 200) + 16;
    if (Depth < 1) {
      Vec3 Reflect = Dir - Normal * (2.0 * Dir.dot(Normal));
      Color = (Color + tracePixel({Point}, Reflect, Depth + 1)) / 2;
    }
    return Color;
  }

  std::vector<Sphere> Spheres;
};

//===----------------------------------------------------------------------===//
// xml.transform / xml.validation: parse an XML-ish document into a tree,
// transform it (rename + reorder) or validate it against a depth/format
// schema.
//===----------------------------------------------------------------------===//

class XmlBenchmark : public KernelBenchmark {
public:
  XmlBenchmark(std::string Name, bool Validate)
      : KernelBenchmark(std::move(Name), Validate ? "XML-ish validation"
                                                  : "XML-ish transform"),
        Validate(Validate) {}

  void setUp() override {
    // Build a nested document deterministically.
    Xoshiro256StarStar Rng(0x3317);
    Doc = buildElement(Rng, 0);
  }

  void runIteration() override {
    uint64_t Acc = 0;
    memsim::traceBuffer(Doc.data(), Doc.size());
    runtime::noteVirtualCall(40 * (Doc.size() / 16));
    runtime::noteObjectAlloc(Doc.size() / 64); // element nodes
    for (int Rep = 0; Rep < 40; ++Rep) {
      size_t Pos = 0;
      Acc += Validate ? validate(Doc, Pos, 0)
                      : transform(Doc, Pos).size();
    }
    Checksum = Acc;
  }

private:
  static std::string buildElement(Xoshiro256StarStar &Rng, int Depth) {
    static const char *Tags[] = {"record", "item", "name", "value", "list"};
    std::string Tag = Tags[Rng.nextBounded(5)];
    std::string Out = "<" + Tag + ">";
    if (Depth >= 5 || Rng.nextBool(0.3)) {
      Out += "text" + std::to_string(Rng.nextBounded(1000));
    } else {
      unsigned Children = 1 + Rng.nextBounded(4);
      for (unsigned C = 0; C < Children; ++C)
        Out += buildElement(Rng, Depth + 1);
    }
    Out += "</" + Tag + ">";
    return Out;
  }

  /// Streaming validation: balanced tags, depth limit, text format.
  static uint64_t validate(const std::string &Doc, size_t &Pos, int Depth) {
    uint64_t Nodes = 0;
    while (Pos < Doc.size()) {
      if (Doc[Pos] != '<') { // text content
        while (Pos < Doc.size() && Doc[Pos] != '<')
          ++Pos;
        continue;
      }
      if (Doc[Pos + 1] == '/') { // closing tag
        while (Pos < Doc.size() && Doc[Pos] != '>')
          ++Pos;
        ++Pos;
        return Nodes;
      }
      size_t End = Doc.find('>', Pos);
      ++Nodes;
      Pos = End + 1;
      Nodes += validate(Doc, Pos, Depth + 1);
    }
    return Nodes;
  }

  /// Transform: uppercase tag names, preserving structure.
  static std::string transform(const std::string &Doc, size_t &Pos) {
    std::string Out;
    Out.reserve(Doc.size());
    bool InTag = false;
    for (char C : Doc) {
      if (C == '<')
        InTag = true;
      if (C == '>')
        InTag = false;
      Out.push_back(InTag && C >= 'a' && C <= 'z'
                        ? static_cast<char>(C - 'a' + 'A')
                        : C);
    }
    Pos = Doc.size();
    return Out;
  }

  bool Validate;
  std::string Doc;
};

void DerbyBenchmark::runIteration() {
  kvstore::Database Db;
  // Seed accounts.
  for (uint64_t K = 0; K < 400; ++K)
    Db.table("orders").put(K, "0");
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < kThreads; ++T)
    Workers.emplace_back([&, T] {
      Xoshiro256StarStar Rng(0xDE4B + T);
      volatile uint64_t Work = 0;
      for (unsigned Op = 0; Op < kOpsPerThread; ++Op) {
        uint64_t A = Rng.nextBounded(400);
        uint64_t B = Rng.nextBounded(400);
        auto R = Db.transact({
            {kvstore::Database::Op::Kind::Get, "orders", A, ""},
            {kvstore::Database::Op::Kind::Put, "orders", B,
             std::to_string(Op)},
        });
        // Query planning + row formatting between transactions.
        uint64_t H = R.Reads[0] ? R.Reads[0]->size() : 1;
        for (int W = 0; W < 500; ++W)
          Work = Work + H * W;
      }
    });
  for (auto &W : Workers)
    W.join();
  Committed = Db.commits();
}

void SerialBenchmark::runIteration() {
  uint64_t Bytes = 0;
  runtime::noteVirtualCall(Lines.size() * 3); // writeObject/readObject
  runtime::noteObjectAlloc(Lines.size());     // deserialized records
  for (const std::string &L : Lines) {
    memsim::traceBuffer(L.data(), L.size());
    netsim::ByteBuffer Out;
    Out.writeU32(static_cast<uint32_t>(L.size()));
    Out.writeString(L);
    Out.writeU64(0xFEEDULL);
    netsim::ByteBuffer In(Out.takeBytes());
    uint32_t Len = In.readU32();
    std::string Round = In.readString();
    uint64_t Tag = In.readU64();
    Bytes += Len + Round.size() + (Tag == 0xFEEDULL ? 1 : 0);
  }
  Checksum = Bytes;
}

} // namespace

void ren::workloads::registerSpecJvmSuite(harness::Registry &R) {
  R.add([] { return std::make_unique<MiniCompilerBenchmark>(
                 "compiler.compiler", 0xCC, 400); });
  R.add([] { return std::make_unique<MiniCompilerBenchmark>(
                 "compiler.sunflow", 0xC5, 500); });
  R.add([] { return std::make_unique<CompressBenchmark>(); });
  R.add([] { return std::make_unique<CryptoAesBenchmark>(); });
  R.add([] { return std::make_unique<CryptoRsaBenchmark>(); });
  R.add([] { return std::make_unique<CryptoSignVerifyBenchmark>(); });
  R.add([] { return std::make_unique<DerbyBenchmark>(); });
  R.add([] { return std::make_unique<MpegAudioBenchmark>(); });
  R.add([] { return std::make_unique<FftBenchmark>("scimark.fft.large",
                                                   1 << 14, 2); });
  R.add([] { return std::make_unique<FftBenchmark>("scimark.fft.small",
                                                   1 << 10, 24); });
  R.add([] { return std::make_unique<LuBenchmark>("scimark.lu.large", 160,
                                                  1); });
  R.add([] { return std::make_unique<LuBenchmark>("scimark.lu.small", 64,
                                                  12); });
  R.add([] { return std::make_unique<MonteCarloBenchmark>(); });
  R.add([] { return std::make_unique<SorBenchmark>("scimark.sor.large", 192,
                                                   4); });
  R.add([] { return std::make_unique<SorBenchmark>("scimark.sor.small", 64,
                                                   32); });
  R.add([] { return std::make_unique<SparseBenchmark>(
                 "scimark.sparse.large", 8192, 65536, 4); });
  R.add([] { return std::make_unique<SparseBenchmark>(
                 "scimark.sparse.small", 1024, 8192, 32); });
  R.add([] { return std::make_unique<SerialBenchmark>(); });
  R.add([] { return std::make_unique<SunflowBenchmark>("sunflow"); });
  R.add([] { return std::make_unique<XmlBenchmark>("xml.transform",
                                                   false); });
  R.add([] { return std::make_unique<XmlBenchmark>("xml.validation",
                                                   true); });
}
