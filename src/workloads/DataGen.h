//===- workloads/DataGen.h - Deterministic synthetic datasets ---*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded synthetic data generators shared by the workloads: feature
/// matrices for the ML benchmarks, a word dictionary for the Scrabble
/// family, rating triples for the recommender benchmarks, documents for
/// text workloads, and scale-free graphs for page-rank/neo4j.
///
/// Everything is generated from fixed seeds (paper §2.1, "Deterministic
/// Execution"): no time-based entropy anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef REN_WORKLOADS_DATAGEN_H
#define REN_WORKLOADS_DATAGEN_H

#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ren {
namespace workloads {

/// A dense row-major feature matrix with per-row labels.
struct Dataset {
  size_t Rows = 0;
  size_t Cols = 0;
  std::vector<double> Features; ///< Rows x Cols, row-major.
  std::vector<int> Labels;      ///< one label per row.

  double at(size_t Row, size_t Col) const {
    return Features[Row * Cols + Col];
  }
};

/// Generates a two-class Gaussian-mixture dataset (labels correlate with
/// features, so learners have something to find).
Dataset makeClassificationDataset(size_t Rows, size_t Cols, uint64_t Seed);

/// Generates a deterministic pseudo-English dictionary of \p Count distinct
/// lowercase words with Scrabble-like length distribution.
std::vector<std::string> makeDictionary(size_t Count, uint64_t Seed);

/// A user-item-rating triple.
struct Rating {
  uint32_t User;
  uint32_t Item;
  float Score;
};

/// Generates ratings with popularity-skewed items (MovieLens-like shape).
std::vector<Rating> makeRatings(uint32_t Users, uint32_t Items, size_t Count,
                                uint64_t Seed);

/// Generates \p Count documents, each a bag of word indices drawn from a
/// class-dependent distribution over \p VocabSize words.
struct Document {
  int Label;
  std::vector<uint32_t> Words;
};
std::vector<Document> makeDocuments(size_t Count, size_t WordsPerDoc,
                                    uint32_t VocabSize, unsigned NumClasses,
                                    uint64_t Seed);

/// Generates a scale-free directed graph (preferential attachment) as
/// adjacency lists.
std::vector<std::vector<uint32_t>> makeScaleFreeGraph(uint32_t Nodes,
                                                      unsigned EdgesPerNode,
                                                      uint64_t Seed);

/// Deterministic sentence-like text lines for the indexing workloads.
std::vector<std::string> makeTextLines(size_t Lines, size_t WordsPerLine,
                                       uint64_t Seed);

} // namespace workloads
} // namespace ren

#endif // REN_WORKLOADS_DATAGEN_H
