//===- workloads/RegisterAll.cpp ------------------------------------------==//

#include "workloads/Workloads.h"

#include "workloads/renaissance/RenaissanceBenchmarks.h"

using namespace ren;
using namespace ren::harness;

void ren::workloads::registerRenaissanceSuite(Registry &R) {
  R.add(makeAkkaUct);
  R.add(makeAls);
  R.add(makeChiSquare);
  R.add(makeDbShootout);
  R.add(makeDecTree);
  R.add(makeDotty);
  R.add(makeFinagleChirper);
  R.add(makeFinagleHttp);
  R.add(makeFjKmeans);
  R.add(makeFutureGenetic);
  R.add(makeLogRegression);
  R.add(makeMovieLens);
  R.add(makeNaiveBayes);
  R.add(makeNeo4jAnalytics);
  R.add(makePageRank);
  R.add(makePhilosophers);
  R.add(makeReactors);
  R.add(makeRxScrabble);
  R.add(makeScrabble);
  R.add(makeStmBench7);
  R.add(makeStreamsMnemonics);
}

void ren::workloads::registerAllBenchmarks(Registry &R) {
  registerRenaissanceSuite(R);
  registerDaCapoSuite(R);
  registerScalaBenchSuite(R);
  registerSpecJvmSuite(R);
}

bool ren::workloads::isExcludedFromPca(const std::string &Name) {
  // Supplemental §B: tradebeans and actors time out under instrumentation;
  // scimark.monte_carlo takes too long to profile.
  return Name == "tradebeans" || Name == "actors" ||
         Name == "scimark.monte_carlo";
}
