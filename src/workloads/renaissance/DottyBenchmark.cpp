//===- workloads/renaissance/DottyBenchmark.cpp ---------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// dotty: "Compiles a Scala codebase using the Dotty compiler" — focus
// "data structures, synchronization" (Table 1). The Dotty compiler itself
// is substituted by a small from-scratch compiler frontend for an
// expression language: lexer, recursive-descent parser, AST, and a type
// checker resolving names through a *shared, monitor-synchronized symbol
// table* while multiple worker threads compile different source files — the
// data-structure- and synchronization-heavy shape the paper documents.
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "runtime/Alloc.h"
#include "runtime/Monitor.h"
#include "support/Rng.h"

#include <atomic>
#include <cctype>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

//===----------------------------------------------------------------------===//
// A tiny language:  fn name(params) = expr ;  with integer/double types.
//===----------------------------------------------------------------------===//

enum class TokKind {
  Identifier,
  Number,
  KwFn,
  LParen,
  RParen,
  Comma,
  Equals,
  Plus,
  Minus,
  Star,
  Slash,
  Semicolon,
  End
};

struct Token {
  TokKind Kind;
  std::string Text;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Source(Source) {}

  Token next() {
    while (Pos < Source.size() && std::isspace(Source[Pos]))
      ++Pos;
    if (Pos >= Source.size())
      return {TokKind::End, ""};
    char C = Source[Pos];
    if (std::isalpha(C)) {
      size_t Begin = Pos;
      while (Pos < Source.size() && std::isalnum(Source[Pos]))
        ++Pos;
      std::string Text = Source.substr(Begin, Pos - Begin);
      return {Text == "fn" ? TokKind::KwFn : TokKind::Identifier, Text};
    }
    if (std::isdigit(C)) {
      size_t Begin = Pos;
      while (Pos < Source.size() &&
             (std::isdigit(Source[Pos]) || Source[Pos] == '.'))
        ++Pos;
      return {TokKind::Number, Source.substr(Begin, Pos - Begin)};
    }
    ++Pos;
    switch (C) {
    case '(':
      return {TokKind::LParen, "("};
    case ')':
      return {TokKind::RParen, ")"};
    case ',':
      return {TokKind::Comma, ","};
    case '=':
      return {TokKind::Equals, "="};
    case '+':
      return {TokKind::Plus, "+"};
    case '-':
      return {TokKind::Minus, "-"};
    case '*':
      return {TokKind::Star, "*"};
    case '/':
      return {TokKind::Slash, "/"};
    case ';':
      return {TokKind::Semicolon, ";"};
    default:
      return {TokKind::End, ""};
    }
  }

private:
  const std::string &Source;
  size_t Pos = 0;
};

/// AST nodes (counted allocations: compilers are object-churn-heavy).
/// Discriminated with an explicit kind tag, LLVM-style, instead of RTTI.
enum class ExprKind { Number, Var, Call, Binary };

struct Expr {
  explicit Expr(ExprKind K) : Kind(K) {}
  virtual ~Expr() = default;
  const ExprKind Kind;
};

struct NumberExpr : Expr {
  double Value;
  explicit NumberExpr(double V) : Expr(ExprKind::Number), Value(V) {}
};

struct VarExpr : Expr {
  std::string Name;
  explicit VarExpr(std::string N)
      : Expr(ExprKind::Var), Name(std::move(N)) {}
};

struct CallExpr : Expr {
  CallExpr() : Expr(ExprKind::Call) {}
  std::string Callee;
  std::vector<runtime::Ref<Expr>> Args;
};

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(ExprKind::Binary) {}
  char Op = '+';
  runtime::Ref<Expr> Lhs, Rhs;
};

struct FunctionDef {
  std::string Name;
  std::vector<std::string> Params;
  runtime::Ref<Expr> Body;
};

/// The shared symbol table: function arities resolved across files, every
/// access under one global monitor (the "synchronization" focus).
class SymbolTable {
public:
  void define(const std::string &Name, unsigned Arity) {
    runtime::Synchronized Sync(Lock);
    Arities[Name] = Arity;
  }

  int lookup(const std::string &Name) {
    runtime::Synchronized Sync(Lock);
    auto It = Arities.find(Name);
    return It == Arities.end() ? -1 : static_cast<int>(It->second);
  }

private:
  runtime::Monitor Lock;
  std::unordered_map<std::string, unsigned> Arities;
};

class Parser {
public:
  Parser(const std::string &Source) : Lex(Source) { advance(); }

  std::vector<FunctionDef> parseFile() {
    std::vector<FunctionDef> Defs;
    while (Current.Kind == TokKind::KwFn)
      Defs.push_back(parseFunction());
    return Defs;
  }

private:
  void advance() { Current = Lex.next(); }

  bool expect(TokKind K) {
    if (Current.Kind != K)
      return false;
    advance();
    return true;
  }

  FunctionDef parseFunction() {
    FunctionDef Def;
    expect(TokKind::KwFn);
    Def.Name = Current.Text;
    expect(TokKind::Identifier);
    expect(TokKind::LParen);
    while (Current.Kind == TokKind::Identifier) {
      Def.Params.push_back(Current.Text);
      advance();
      if (!expect(TokKind::Comma))
        break;
    }
    expect(TokKind::RParen);
    expect(TokKind::Equals);
    Def.Body = parseExpr();
    expect(TokKind::Semicolon);
    return Def;
  }

  runtime::Ref<Expr> parseExpr() {
    auto Lhs = parseTerm();
    while (Current.Kind == TokKind::Plus ||
           Current.Kind == TokKind::Minus) {
      char Op = Current.Text[0];
      advance();
      auto Node = runtime::newObject<BinaryExpr>();
      Node->Op = Op;
      Node->Lhs = std::move(Lhs);
      Node->Rhs = parseTerm();
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  runtime::Ref<Expr> parseTerm() {
    auto Lhs = parsePrimary();
    while (Current.Kind == TokKind::Star ||
           Current.Kind == TokKind::Slash) {
      char Op = Current.Text[0];
      advance();
      auto Node = runtime::newObject<BinaryExpr>();
      Node->Op = Op;
      Node->Lhs = std::move(Lhs);
      Node->Rhs = parsePrimary();
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  runtime::Ref<Expr> parsePrimary() {
    if (Current.Kind == TokKind::Number) {
      double V = std::stod(Current.Text);
      advance();
      return runtime::newObject<NumberExpr>(V);
    }
    if (Current.Kind == TokKind::Identifier) {
      std::string Name = Current.Text;
      advance();
      if (Current.Kind != TokKind::LParen)
        return runtime::newObject<VarExpr>(std::move(Name));
      advance();
      auto Call = runtime::newObject<CallExpr>();
      Call->Callee = std::move(Name);
      while (Current.Kind != TokKind::RParen &&
             Current.Kind != TokKind::End) {
        Call->Args.push_back(parseExpr());
        if (!expect(TokKind::Comma))
          break;
      }
      expect(TokKind::RParen);
      return Call;
    }
    if (Current.Kind == TokKind::LParen) {
      advance();
      auto Inner = parseExpr();
      expect(TokKind::RParen);
      return Inner;
    }
    advance();
    return runtime::newObject<NumberExpr>(0.0);
  }

  Lexer Lex;
  Token Current;
};

/// Name/arity checking against the shared symbol table.
class TypeChecker {
public:
  TypeChecker(SymbolTable &Symbols) : Symbols(Symbols) {}

  unsigned checkFunction(const FunctionDef &Def) {
    Params = &Def.Params;
    Errors = 0;
    checkExpr(*Def.Body);
    return Errors;
  }

private:
  void checkExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Number:
      return;
    case ExprKind::Call: {
      const auto &Call = static_cast<const CallExpr &>(E);
      int Arity = Symbols.lookup(Call.Callee);
      if (Arity < 0 || static_cast<size_t>(Arity) != Call.Args.size())
        ++Errors;
      for (const auto &Arg : Call.Args)
        checkExpr(*Arg);
      return;
    }
    case ExprKind::Binary: {
      const auto &Bin = static_cast<const BinaryExpr &>(E);
      checkExpr(*Bin.Lhs);
      checkExpr(*Bin.Rhs);
      return;
    }
    case ExprKind::Var: {
      const auto &Var = static_cast<const VarExpr &>(E);
      bool Known = false;
      for (const std::string &P : *Params)
        Known |= P == Var.Name;
      if (!Known && Symbols.lookup(Var.Name) < 0)
        ++Errors;
      return;
    }
    }
  }

  SymbolTable &Symbols;
  const std::vector<std::string> *Params = nullptr;
  unsigned Errors = 0;
};

//===----------------------------------------------------------------------===//
// The benchmark: generate a corpus of source files, compile with threads.
//===----------------------------------------------------------------------===//

class DottyBenchmark : public Benchmark {
  static constexpr unsigned kFiles = 24;
  static constexpr unsigned kFunctionsPerFile = 40;
  static constexpr unsigned kThreads = 4;

public:
  BenchmarkInfo info() const override {
    return {"dotty", Suite::Renaissance,
            "Compiles a synthetic codebase with the mini frontend",
            "data structures, synchronization", 2, 3};
  }

  void setUp() override {
    Xoshiro256StarStar Rng(0xD077);
    Corpus.clear();
    for (unsigned F = 0; F < kFiles; ++F) {
      std::string Source;
      for (unsigned Fn = 0; Fn < kFunctionsPerFile; ++Fn) {
        unsigned Id = F * kFunctionsPerFile + Fn;
        Source += "fn f" + std::to_string(Id) + "(a, b) = a * " +
                  std::to_string(Rng.nextBounded(100)) + " + b";
        if (Id > 0)
          Source += " + f" + std::to_string(Rng.nextBounded(Id)) + "(a, b)";
        Source += ";\n";
      }
      Corpus.push_back(std::move(Source));
    }
  }

  void runIteration() override {
    SymbolTable Symbols;
    std::vector<std::vector<FunctionDef>> Parsed(Corpus.size());

    // Pass 1: parse all files and publish function signatures.
    runCompilePass([&](size_t File) {
      Parser P(Corpus[File]);
      Parsed[File] = P.parseFile();
      for (const FunctionDef &Def : Parsed[File])
        Symbols.define(Def.Name,
                       static_cast<unsigned>(Def.Params.size()));
    });

    // Pass 2: type-check every function against the shared table.
    std::atomic<unsigned> TotalErrors{0};
    runCompilePass([&](size_t File) {
      TypeChecker Checker(Symbols);
      unsigned Errors = 0;
      for (const FunctionDef &Def : Parsed[File])
        Errors += Checker.checkFunction(Def);
      TotalErrors.fetch_add(Errors);
    });
    ErrorCount = TotalErrors.load();
    FunctionCount = 0;
    for (const auto &File : Parsed)
      FunctionCount += File.size();
  }

  uint64_t checksum() const override {
    return FunctionCount * 1000 + ErrorCount;
  }

private:
  template <typename FnT> void runCompilePass(FnT PerFile) {
    std::atomic<size_t> NextFile{0};
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([&] {
        for (;;) {
          size_t File = NextFile.fetch_add(1);
          if (File >= Corpus.size())
            return;
          PerFile(File);
        }
      });
    for (auto &W : Workers)
      W.join();
  }

  std::vector<std::string> Corpus;
  uint64_t FunctionCount = 0;
  unsigned ErrorCount = 0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makeDotty() {
  return std::make_unique<DottyBenchmark>();
}
