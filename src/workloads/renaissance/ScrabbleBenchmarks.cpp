//===- workloads/renaissance/ScrabbleBenchmarks.cpp -----------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// The lambda-heavy streaming benchmarks of Table 1: scrabble (J. Paumard's
// "Shakespeare plays Scrabble" over parallel streams), rx-scrabble (the
// same puzzle over the Rx framework) and streams-mnemonics (Odersky's
// phone-mnemonics over streams).
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "forkjoin/ForkJoinPool.h"
#include "rx/Observable.h"
#include "streams/Stream.h"
#include "workloads/DataGen.h"

#include <array>
#include <string>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

/// Scrabble letter scores (English edition).
int letterScore(char C) {
  static const int Scores[26] = {1, 3, 3, 2,  1, 4, 2, 4, 1, 8, 5, 1, 3,
                                 1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10};
  return Scores[C - 'a'];
}

/// Letter histogram of a word.
std::array<int, 26> histogramOf(const std::string &Word) {
  std::array<int, 26> H = {};
  for (char C : Word)
    ++H[C - 'a'];
  return H;
}

/// True if \p Word can be built from the available letter histogram.
bool playable(const std::array<int, 26> &Word,
              const std::array<int, 26> &Available) {
  for (int I = 0; I < 26; ++I)
    if (Word[I] > Available[I])
      return false;
  return true;
}

int wordScore(const std::string &Word) {
  int S = 0;
  for (char C : Word)
    S += letterScore(C);
  return S;
}

/// The available letters shared by the scrabble benchmarks: the letters of
/// a fixed "rack" replicated so mid-size dictionary words are playable.
std::array<int, 26> availableLetters() {
  std::array<int, 26> H = {};
  const std::string Rack = "etaoinshrdlucmfwypvbgkjqxz"
                           "etaoinshrdlu"
                           "etaoinshr";
  for (char C : Rack)
    ++H[C - 'a'];
  return H;
}

//===----------------------------------------------------------------------===//
// scrabble (Java 8 Streams flavour)
//===----------------------------------------------------------------------===//

class ScrabbleBenchmark : public Benchmark {
  static constexpr size_t kWords = 12000;

public:
  BenchmarkInfo info() const override {
    return {"scrabble", Suite::Renaissance,
            "Scrabble puzzle over parallel streams",
            "data-parallel, memory-bound, lambdas", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(4);
    Dictionary = makeDictionary(kWords, 0x5C7A);
    Available = availableLetters();
  }

  void runIteration() override {
    // The Paumard pipeline shape: histogram each word (lambda), filter the
    // playable ones (lambda), score them (lambda), group by score, and
    // find the best bucket. The stages fuse: the groupBy terminal drives
    // each word through filter+map in one pass per source chunk, with no
    // per-stage intermediate arrays.
    auto Scored =
        streams::Stream<std::string>::of(Dictionary)
            .parallel(*Pool)
            .filter([this](const std::string &W) {
              return playable(histogramOf(W), Available);
            })
            .map([](const std::string &W) {
              return std::make_pair(wordScore(W), W);
            });
    auto Groups = Scored.groupBy(
        [](const std::pair<int, std::string> &P) { return P.first; });
    BestScore = 0;
    BestBucket = 0;
    for (const auto &[Score, Words] : Groups) {
      if (Score > BestScore) {
        BestScore = Score;
        BestBucket = Words.size();
      }
    }
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override {
    return static_cast<uint64_t>(BestScore) * 1000 + BestBucket;
  }

private:
  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::vector<std::string> Dictionary;
  std::array<int, 26> Available = {};
  int BestScore = 0;
  uint64_t BestBucket = 0;
};

//===----------------------------------------------------------------------===//
// rx-scrabble (Reactive Extensions flavour)
//===----------------------------------------------------------------------===//

class RxScrabbleBenchmark : public Benchmark {
  static constexpr size_t kWords = 12000;

public:
  BenchmarkInfo info() const override {
    return {"rx-scrabble", Suite::Renaissance,
            "Scrabble puzzle over the Rx framework", "streaming", 2, 3};
  }

  void setUp() override {
    Dictionary = makeDictionary(kWords, 0x5C7A);
    Available = availableLetters();
  }

  void runIteration() override {
    auto Best =
        rx::Observable<std::string>::fromVector(Dictionary)
            .filter([this](const std::string &W) {
              return playable(histogramOf(W), Available);
            })
            .map([](const std::string &W) { return wordScore(W); })
            .reduce(0, [](int Acc, const int &S) {
              return S > Acc ? S : Acc;
            });
    BestScore = Best.blockingLast();
  }

  uint64_t checksum() const override {
    return static_cast<uint64_t>(BestScore);
  }

private:
  std::vector<std::string> Dictionary;
  std::array<int, 26> Available = {};
  int BestScore = 0;
};

//===----------------------------------------------------------------------===//
// streams-mnemonics (phone mnemonics over streams)
//===----------------------------------------------------------------------===//

class StreamsMnemonicsBenchmark : public Benchmark {
  static constexpr size_t kWords = 6000;
  static constexpr size_t kNumbers = 60;

public:
  BenchmarkInfo info() const override {
    return {"streams-mnemonics", Suite::Renaissance,
            "Phone mnemonics over streams", "data-parallel, memory-bound",
            2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(4);
    Dictionary = makeDictionary(kWords, 0x3E30);
    // Phone numbers to decode: digit images of dictionary words pairs, so
    // at least some numbers have encodings.
    Xoshiro256StarStar Rng(0x909);
    for (size_t I = 0; I < kNumbers; ++I) {
      const std::string &A = Dictionary[Rng.nextBounded(Dictionary.size())];
      const std::string &B = Dictionary[Rng.nextBounded(Dictionary.size())];
      Numbers.push_back(digitsOf(A) + digitsOf(B));
    }
  }

  void runIteration() override {
    // Index words by digit image (a stream groupBy), then count the
    // two-word decompositions of each phone number with a flatMap.
    auto Index = streams::Stream<std::string>::of(Dictionary)
                     .groupBy([](const std::string &W) {
                       return digitsOf(W);
                     });
    Encodings = 0;
    auto Counts =
        streams::Stream<std::string>::of(Numbers)
            .parallel(*Pool)
            .map([&Index](const std::string &Number) {
              uint64_t Count = 0;
              // Split into every prefix/suffix pair present in the index.
              for (size_t Cut = 1; Cut < Number.size(); ++Cut) {
                auto Prefix = Index.find(Number.substr(0, Cut));
                if (Prefix == Index.end())
                  continue;
                auto Suffix = Index.find(Number.substr(Cut));
                if (Suffix == Index.end())
                  continue;
                Count += Prefix->second.size() * Suffix->second.size();
              }
              return Count;
            });
    Encodings = Counts.template reduce<uint64_t>(
        0, [](uint64_t Acc, const uint64_t &C) { return Acc + C; },
        [](uint64_t A, uint64_t B) { return A + B; });
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override { return Encodings; }

private:
  static std::string digitsOf(const std::string &Word) {
    // The classic phone keypad mapping.
    static const char Map[26] = {'2', '2', '2', '3', '3', '3', '4', '4',
                                 '4', '5', '5', '5', '6', '6', '6', '7',
                                 '7', '7', '7', '8', '8', '8', '9', '9',
                                 '9', '9'};
    std::string D;
    D.reserve(Word.size());
    for (char C : Word)
      D.push_back(Map[C - 'a']);
    return D;
  }

  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::vector<std::string> Dictionary;
  std::vector<std::string> Numbers;
  uint64_t Encodings = 0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makeScrabble() {
  return std::make_unique<ScrabbleBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeRxScrabble() {
  return std::make_unique<RxScrabbleBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeStreamsMnemonics() {
  return std::make_unique<StreamsMnemonicsBenchmark>();
}
