//===- workloads/renaissance/MlBenchmarks.cpp -----------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// The Spark-ML-style data-parallel machine-learning benchmarks of Table 1:
// als, chi-square, dec-tree, log-regression, naive-bayes and movie-lens.
// Apache Spark itself is replaced (per the substitution rule) by our
// fork/join pool and data-parallel streams; the algorithms are implemented
// from scratch with the paper's documented focus ("data-parallel,
// machine learning / compute-bound").
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "forkjoin/ForkJoinPool.h"
#include "runtime/MethodHandle.h"
#include "memsim/MemSim.h"
#include "streams/Stream.h"
#include "workloads/DataGen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

/// Worker threads used by the data-parallel benchmarks.
constexpr unsigned kMlThreads = 4;

//===----------------------------------------------------------------------===//
// als: alternating least squares matrix factorization.
//===----------------------------------------------------------------------===//

class AlsBenchmark : public Benchmark {
  static constexpr uint32_t kUsers = 300;
  static constexpr uint32_t kItems = 200;
  static constexpr size_t kRatings = 6000;
  static constexpr unsigned kRank = 8;
  static constexpr double kLambda = 0.1;

public:
  BenchmarkInfo info() const override {
    return {"als", Suite::Renaissance,
            "Alternating least squares matrix factorization",
            "data-parallel, compute-bound", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(kMlThreads);
    Ratings = makeRatings(kUsers, kItems, kRatings, 0xA15A15);
    ByUser.assign(kUsers, {});
    ByItem.assign(kItems, {});
    for (const Rating &R : Ratings) {
      ByUser[R.User].push_back(R);
      ByItem[R.Item].push_back(R);
    }
    UserFactors.resize(kUsers * kRank);
    ItemFactors.resize(kItems * kRank);
    Xoshiro256StarStar Rng(7);
    for (size_t I = 0; I < UserFactors.size(); ++I)
      UserFactors.raw(I) = Rng.nextDouble() * 0.1;
    for (size_t I = 0; I < ItemFactors.size(); ++I)
      ItemFactors.raw(I) = Rng.nextDouble() * 0.1;
  }

  void runIteration() override {
    solveSide(/*Users=*/true);
    solveSide(/*Users=*/false);
    Rmse = computeRmse();
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override {
    return static_cast<uint64_t>(Rmse * 1e6);
  }

private:
  /// Solves the normal equations (A^T A + lambda I) x = A^T b per entity
  /// with Gaussian elimination on the kRank x kRank system.
  void solveSide(bool Users) {
    size_t Count = Users ? kUsers : kItems;
    Pool->parallelFor(0, Count, 8, [&](size_t Lo, size_t Hi) {
      for (size_t E = Lo; E < Hi; ++E)
        solveEntity(Users, E);
    });
  }

  void solveEntity(bool Users, size_t Entity) {
    const auto &Rs = Users ? ByUser[Entity] : ByItem[Entity];
    if (Rs.empty())
      return;
    double A[kRank][kRank] = {};
    double B[kRank] = {};
    memsim::TracedArray<double> &Other = Users ? ItemFactors : UserFactors;
    for (const Rating &R : Rs) {
      size_t Base = static_cast<size_t>(Users ? R.Item : R.User) * kRank;
      double V[kRank];
      for (unsigned K = 0; K < kRank; ++K)
        V[K] = Other.read(Base + K);
      for (unsigned I = 0; I < kRank; ++I) {
        for (unsigned J = 0; J < kRank; ++J)
          A[I][J] += V[I] * V[J];
        B[I] += V[I] * R.Score;
      }
    }
    for (unsigned I = 0; I < kRank; ++I)
      A[I][I] += kLambda * Rs.size();
    // Gaussian elimination with partial pivoting.
    for (unsigned Col = 0; Col < kRank; ++Col) {
      unsigned Pivot = Col;
      for (unsigned R = Col + 1; R < kRank; ++R)
        if (std::fabs(A[R][Col]) > std::fabs(A[Pivot][Col]))
          Pivot = R;
      std::swap(A[Col], A[Pivot]);
      std::swap(B[Col], B[Pivot]);
      double Diag = A[Col][Col];
      if (std::fabs(Diag) < 1e-12)
        continue;
      for (unsigned R = Col + 1; R < kRank; ++R) {
        double F = A[R][Col] / Diag;
        for (unsigned C = Col; C < kRank; ++C)
          A[R][C] -= F * A[Col][C];
        B[R] -= F * B[Col];
      }
    }
    double X[kRank] = {};
    for (int R = kRank - 1; R >= 0; --R) {
      double Sum = B[R];
      for (unsigned C = R + 1; C < kRank; ++C)
        Sum -= A[R][C] * X[C];
      X[R] = std::fabs(A[R][R]) < 1e-12 ? 0.0 : Sum / A[R][R];
    }
    memsim::TracedArray<double> &Mine = Users ? UserFactors : ItemFactors;
    size_t Base = Entity * kRank;
    for (unsigned K = 0; K < kRank; ++K)
      Mine.write(Base + K, X[K]);
  }

  double computeRmse() {
    // The prediction is a lambda dispatched per rating, as Spark's
    // DataFrame code would stage it (exercises invokedynamic).
    auto Predict = runtime::bindLambda<double(const Rating &)>(
        [this](const Rating &R) {
          double Dot = 0;
          for (unsigned K = 0; K < kRank; ++K)
            Dot += UserFactors.read(R.User * kRank + K) *
                   ItemFactors.read(R.Item * kRank + K);
          return Dot;
        });
    double Sse = Pool->parallelReduce<double>(
        0, Ratings.size(), 256,
        [&](size_t Lo, size_t Hi) {
          double Sum = 0;
          for (size_t I = Lo; I < Hi; ++I) {
            const Rating &R = Ratings[I];
            double Err = Predict.invoke(R) - R.Score;
            Sum += Err * Err;
          }
          return Sum;
        },
        [](double A, double B) { return A + B; });
    return std::sqrt(Sse / Ratings.size());
  }

  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::vector<Rating> Ratings;
  std::vector<std::vector<Rating>> ByUser, ByItem;
  memsim::TracedArray<double> UserFactors, ItemFactors;
  double Rmse = 0.0;
};

//===----------------------------------------------------------------------===//
// chi-square: per-feature chi-square statistic, data-parallel.
//===----------------------------------------------------------------------===//

class ChiSquareBenchmark : public Benchmark {
  static constexpr size_t kRows = 4000;
  static constexpr size_t kCols = 24;
  static constexpr unsigned kBuckets = 8;

public:
  BenchmarkInfo info() const override {
    return {"chi-square", Suite::Renaissance,
            "Parallel chi-square feature test", "data-parallel, ML", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(kMlThreads);
    Data = makeClassificationDataset(kRows, kCols, 0xC417);
  }

  void runIteration() override {
    std::vector<int> Cols(kCols);
    std::iota(Cols.begin(), Cols.end(), 0);
    auto Stats =
        streams::Stream<int>::of(Cols).parallel(*Pool).map(
            [this](const int &Col) { return chiSquareOf(Col); });
    Result = Stats.template reduce<double>(
        0.0, [](double Acc, const double &S) { return Acc + S; },
        [](double A, double B) { return A + B; });
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override {
    return static_cast<uint64_t>(Result * 1e3);
  }

private:
  double chiSquareOf(int Col) const {
    // Bucketize the feature, then chi-square over bucket x label counts.
    double Counts[kBuckets][2] = {};
    double BucketTotals[kBuckets] = {};
    double LabelTotals[2] = {};
    for (size_t R = 0; R < kRows; ++R) {
      double V = Data.at(R, static_cast<size_t>(Col));
      int Bucket = static_cast<int>((V + 4.0) / 8.0 * kBuckets);
      Bucket = std::clamp(Bucket, 0, static_cast<int>(kBuckets) - 1);
      int Label = Data.Labels[R];
      Counts[Bucket][Label] += 1.0;
      BucketTotals[Bucket] += 1.0;
      LabelTotals[Label] += 1.0;
    }
    double Chi = 0.0;
    for (unsigned B = 0; B < kBuckets; ++B)
      for (int L = 0; L < 2; ++L) {
        double Expected = BucketTotals[B] * LabelTotals[L] / kRows;
        if (Expected <= 0.0)
          continue;
        double Diff = Counts[B][L] - Expected;
        Chi += Diff * Diff / Expected;
      }
    return Chi;
  }

  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  Dataset Data;
  double Result = 0.0;
};

//===----------------------------------------------------------------------===//
// dec-tree: CART-style decision tree with variance splitting.
//===----------------------------------------------------------------------===//

class DecTreeBenchmark : public Benchmark {
  static constexpr size_t kRows = 2500;
  static constexpr size_t kCols = 12;
  static constexpr unsigned kMaxDepth = 6;
  static constexpr size_t kMinLeaf = 8;

public:
  BenchmarkInfo info() const override {
    return {"dec-tree", Suite::Renaissance,
            "Classification decision tree (CART)", "data-parallel, ML", 2,
            3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(kMlThreads);
    Data = makeClassificationDataset(kRows, kCols, 0xDEC7);
  }

  void runIteration() override {
    std::vector<size_t> All(kRows);
    std::iota(All.begin(), All.end(), 0);
    NodesBuilt = 0;
    CorrectPredictions = 0;
    buildNode(All, 0);
    // Self-evaluation: re-predict the training rows via the split path.
    for (size_t R = 0; R < kRows; ++R)
      CorrectPredictions += predict(R) == Data.Labels[R] ? 1 : 0;
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override {
    return NodesBuilt * 100000 + CorrectPredictions;
  }

private:
  struct Split {
    int Col = -1;
    double Threshold = 0.0;
    double Score = -1.0;
  };

  /// Stored flat: decisions re-evaluated through a tiny recorded tree.
  struct NodeRec {
    Split S;
    int Leaf = -1; // majority label when this is a leaf
    int LeftChild = -1, RightChild = -1;
  };

  int buildNode(const std::vector<size_t> &Rows, unsigned Depth) {
    int NodeIndex = static_cast<int>(Nodes.size());
    Nodes.push_back(NodeRec());
    ++NodesBuilt;

    int Majority = majorityLabel(Rows);
    if (Depth >= kMaxDepth || Rows.size() <= kMinLeaf) {
      Nodes[NodeIndex].Leaf = Majority;
      return NodeIndex;
    }

    // Parallel best-split search over features.
    std::vector<int> Cols(kCols);
    std::iota(Cols.begin(), Cols.end(), 0);
    Split Best = Pool->parallelReduce<Split>(
        0, kCols, 1,
        [&](size_t Lo, size_t Hi) {
          Split S;
          for (size_t C = Lo; C < Hi; ++C) {
            Split Candidate = bestSplitFor(Rows, static_cast<int>(C));
            if (Candidate.Score > S.Score)
              S = Candidate;
          }
          return S;
        },
        [](Split A, Split B) { return A.Score >= B.Score ? A : B; });

    if (Best.Col < 0) {
      Nodes[NodeIndex].Leaf = Majority;
      return NodeIndex;
    }
    std::vector<size_t> Left, Right;
    for (size_t R : Rows)
      (Data.at(R, Best.Col) <= Best.Threshold ? Left : Right).push_back(R);
    if (Left.empty() || Right.empty()) {
      Nodes[NodeIndex].Leaf = Majority;
      return NodeIndex;
    }
    Nodes[NodeIndex].S = Best;
    int L = buildNode(Left, Depth + 1);
    int R = buildNode(Right, Depth + 1);
    Nodes[NodeIndex].LeftChild = L;
    Nodes[NodeIndex].RightChild = R;
    return NodeIndex;
  }

  Split bestSplitFor(const std::vector<size_t> &Rows, int Col) const {
    // Scan 8 candidate thresholds between the observed min and max.
    double Min = 1e300, Max = -1e300;
    for (size_t R : Rows) {
      Min = std::min(Min, Data.at(R, Col));
      Max = std::max(Max, Data.at(R, Col));
    }
    Split Best;
    for (int T = 1; T < 8; ++T) {
      double Threshold = Min + (Max - Min) * T / 8.0;
      // Gini impurity reduction.
      double N[2] = {}, NPos[2] = {};
      for (size_t R : Rows) {
        int Side = Data.at(R, Col) <= Threshold ? 0 : 1;
        N[Side] += 1.0;
        NPos[Side] += Data.Labels[R];
      }
      if (N[0] == 0.0 || N[1] == 0.0)
        continue;
      auto gini = [](double Count, double Pos) {
        double P = Pos / Count;
        return 2.0 * P * (1.0 - P);
      };
      double Total = N[0] + N[1];
      double Score = gini(Total, NPos[0] + NPos[1]) -
                     (N[0] / Total) * gini(N[0], NPos[0]) -
                     (N[1] / Total) * gini(N[1], NPos[1]);
      if (Score > Best.Score)
        Best = Split{Col, Threshold, Score};
    }
    return Best;
  }

  int majorityLabel(const std::vector<size_t> &Rows) const {
    long Pos = 0;
    for (size_t R : Rows)
      Pos += Data.Labels[R];
    return 2 * Pos >= static_cast<long>(Rows.size()) ? 1 : 0;
  }

  int predict(size_t Row) const {
    int Node = 0;
    for (;;) {
      const NodeRec &N = Nodes[Node];
      if (N.Leaf >= 0)
        return N.Leaf;
      Node = Data.at(Row, N.S.Col) <= N.S.Threshold ? N.LeftChild
                                                    : N.RightChild;
    }
  }

  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  Dataset Data;
  std::vector<NodeRec> Nodes;
  uint64_t NodesBuilt = 0;
  uint64_t CorrectPredictions = 0;
};

//===----------------------------------------------------------------------===//
// log-regression: batch-gradient logistic regression.
//===----------------------------------------------------------------------===//

class LogRegressionBenchmark : public Benchmark {
  static constexpr size_t kRows = 6000;
  static constexpr size_t kCols = 16;
  static constexpr unsigned kEpochs = 4;
  static constexpr double kLearnRate = 0.2;

public:
  BenchmarkInfo info() const override {
    return {"log-regression", Suite::Renaissance,
            "Batch-gradient logistic regression", "data-parallel, ML", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(kMlThreads);
    Data = makeClassificationDataset(kRows, kCols, 0x106E);
    Features.resize(kRows * kCols);
    for (size_t I = 0; I < Data.Features.size(); ++I)
      Features.raw(I) = Data.Features[I];
  }

  void runIteration() override {
    std::vector<double> W(kCols, 0.0);
    auto Sigmoid = runtime::bindLambda<double(double)>(
        [](double X) { return 1.0 / (1.0 + std::exp(-X)); });
    for (unsigned Epoch = 0; Epoch < kEpochs; ++Epoch) {
      std::vector<double> Grad = Pool->parallelReduce<std::vector<double>>(
          0, kRows, 256,
          [&](size_t Lo, size_t Hi) {
            std::vector<double> G(kCols, 0.0);
            for (size_t R = Lo; R < Hi; ++R) {
              double Dot = 0;
              for (size_t C = 0; C < kCols; ++C)
                Dot += W[C] * Features.read(R * kCols + C);
              double Pred = Sigmoid.invoke(Dot);
              double Err = Pred - Data.Labels[R];
              for (size_t C = 0; C < kCols; ++C)
                G[C] += Err * Features.read(R * kCols + C);
            }
            return G;
          },
          [](std::vector<double> A, std::vector<double> B) {
            for (size_t I = 0; I < A.size(); ++I)
              A[I] += B[I];
            return A;
          });
      for (size_t C = 0; C < kCols; ++C)
        W[C] -= kLearnRate * Grad[C] / kRows;
    }
    // Training accuracy as the validated result.
    Correct = 0;
    for (size_t R = 0; R < kRows; ++R) {
      double Dot = 0;
      for (size_t C = 0; C < kCols; ++C)
        Dot += W[C] * Features.read(R * kCols + C);
      Correct += (Dot > 0 ? 1 : 0) == Data.Labels[R] ? 1 : 0;
    }
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override { return Correct; }

private:
  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  Dataset Data;
  memsim::TracedArray<double> Features;
  uint64_t Correct = 0;
};

//===----------------------------------------------------------------------===//
// naive-bayes: multinomial naive Bayes over synthetic documents.
//===----------------------------------------------------------------------===//

class NaiveBayesBenchmark : public Benchmark {
  static constexpr size_t kDocs = 1500;
  static constexpr size_t kWordsPerDoc = 60;
  static constexpr uint32_t kVocab = 4096;
  static constexpr unsigned kClasses = 4;

public:
  BenchmarkInfo info() const override {
    return {"naive-bayes", Suite::Renaissance,
            "Multinomial naive Bayes classifier", "data-parallel, ML", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(kMlThreads);
    Docs = makeDocuments(kDocs, kWordsPerDoc, kVocab, kClasses, 0xBA7E5);
  }

  void runIteration() override {
    // Train: per-class word counts, merged from per-chunk partials.
    using CountTable = std::vector<double>; // kClasses * kVocab
    CountTable Counts = Pool->parallelReduce<CountTable>(
        0, Docs.size(), 64,
        [&](size_t Lo, size_t Hi) {
          CountTable Local(kClasses * kVocab, 0.0);
          for (size_t D = Lo; D < Hi; ++D)
            for (uint32_t W : Docs[D].Words)
              Local[static_cast<size_t>(Docs[D].Label) * kVocab + W] += 1.0;
          return Local;
        },
        [](CountTable A, CountTable B) {
          for (size_t I = 0; I < A.size(); ++I)
            A[I] += B[I];
          return A;
        });

    std::vector<double> ClassTotals(kClasses, 0.0);
    for (unsigned C = 0; C < kClasses; ++C)
      for (uint32_t W = 0; W < kVocab; ++W)
        ClassTotals[C] += Counts[C * kVocab + W];

    // Classify the corpus back (Laplace-smoothed log-likelihood); the
    // per-word scorer is a staged lambda, as in Spark ML.
    auto WordScore = runtime::bindLambda<double(unsigned, uint32_t)>(
        [&](unsigned C, uint32_t W) {
          return std::log((Counts[C * kVocab + W] + 1.0) /
                          (ClassTotals[C] + kVocab));
        });
    Correct = Pool->parallelReduce<uint64_t>(
        0, Docs.size(), 64,
        [&](size_t Lo, size_t Hi) {
          uint64_t Good = 0;
          for (size_t D = Lo; D < Hi; ++D) {
            double BestScore = -1e300;
            int BestClass = -1;
            for (unsigned C = 0; C < kClasses; ++C) {
              double Score = 0;
              for (uint32_t W : Docs[D].Words)
                Score += WordScore.invoke(C, W);
              if (Score > BestScore) {
                BestScore = Score;
                BestClass = static_cast<int>(C);
              }
            }
            Good += BestClass == Docs[D].Label ? 1 : 0;
          }
          return Good;
        },
        [](uint64_t A, uint64_t B) { return A + B; });
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override { return Correct; }

private:
  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::vector<Document> Docs;
  uint64_t Correct = 0;
};

//===----------------------------------------------------------------------===//
// movie-lens: user-based collaborative-filtering recommender.
//===----------------------------------------------------------------------===//

class MovieLensBenchmark : public Benchmark {
  static constexpr uint32_t kUsers = 250;
  static constexpr uint32_t kItems = 400;
  static constexpr size_t kRatings = 8000;
  static constexpr unsigned kNeighbours = 10;

public:
  BenchmarkInfo info() const override {
    return {"movie-lens", Suite::Renaissance,
            "User-based collaborative-filtering recommender",
            "data-parallel, compute-bound", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(kMlThreads);
    auto Ratings = makeRatings(kUsers, kItems, kRatings, 0x304153);
    UserVectors.assign(kUsers, std::vector<float>(kItems, 0.0f));
    for (const Rating &R : Ratings)
      UserVectors[R.User][R.Item] = R.Score;
  }

  void runIteration() override {
    // For every user: cosine similarity against all others, take top-K,
    // recommend the best unseen item.
    Similarity = runtime::bindLambda<double(uint32_t, uint32_t)>(
        [this](uint32_t A, uint32_t B) { return cosine(A, B); });
    RecommendationHash = Pool->parallelReduce<uint64_t>(
        0, kUsers, 8,
        [&](size_t Lo, size_t Hi) {
          uint64_t H = 0;
          for (size_t U = Lo; U < Hi; ++U)
            H = H * 31 + recommendFor(static_cast<uint32_t>(U));
          return H;
        },
        [](uint64_t A, uint64_t B) { return A ^ (B * 0x9E3779B97F4A7C15ULL); });
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override { return RecommendationHash; }

private:
  uint32_t recommendFor(uint32_t User) const {
    const auto &Mine = UserVectors[User];
    (void)Mine;
    // Top-K most similar users.
    std::vector<std::pair<double, uint32_t>> Similar;
    Similar.reserve(kUsers);
    for (uint32_t Other = 0; Other < kUsers; ++Other) {
      if (Other == User)
        continue;
      Similar.push_back({Similarity.invoke(User, Other), Other});
    }
    std::partial_sort(Similar.begin(),
                      Similar.begin() + std::min<size_t>(kNeighbours,
                                                         Similar.size()),
                      Similar.end(), std::greater<>());
    // Score unseen items by neighbour ratings.
    double BestScore = -1.0;
    uint32_t BestItem = 0;
    for (uint32_t I = 0; I < kItems; ++I) {
      if (Mine[I] != 0.0f)
        continue;
      double Score = 0;
      for (unsigned K = 0; K < kNeighbours && K < Similar.size(); ++K)
        Score += Similar[K].first * UserVectors[Similar[K].second][I];
      if (Score > BestScore) {
        BestScore = Score;
        BestItem = I;
      }
    }
    return BestItem;
  }

  double cosine(uint32_t A, uint32_t B) const {
    const auto &Va = UserVectors[A];
    const auto &Vb = UserVectors[B];
    double Dot = 0, NormA = 0, NormB = 0;
    for (uint32_t I = 0; I < kItems; ++I) {
      Dot += Va[I] * Vb[I];
      NormA += Va[I] * Va[I];
      NormB += Vb[I] * Vb[I];
    }
    return NormA > 0 && NormB > 0 ? Dot / std::sqrt(NormA * NormB) : 0.0;
  }

  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::vector<std::vector<float>> UserVectors;
  runtime::MethodHandle<double(uint32_t, uint32_t)> Similarity;
  uint64_t RecommendationHash = 0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makeAls() {
  return std::make_unique<AlsBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeChiSquare() {
  return std::make_unique<ChiSquareBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeDecTree() {
  return std::make_unique<DecTreeBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeLogRegression() {
  return std::make_unique<LogRegressionBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeNaiveBayes() {
  return std::make_unique<NaiveBayesBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeMovieLens() {
  return std::make_unique<MovieLensBenchmark>();
}
