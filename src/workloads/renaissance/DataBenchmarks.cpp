//===- workloads/renaissance/DataBenchmarks.cpp ---------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// Query-processing and graph benchmarks of Table 1: db-shootout (parallel
// in-memory database shootout), neo4j-analytics (analytical queries and
// transactions over the property graph) and page-rank (data-parallel rank
// iteration with atomic accumulation).
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "forkjoin/ForkJoinPool.h"
#include "kvstore/KvStore.h"
#include "memsim/MemSim.h"
#include "runtime/Atomic.h"
#include "workloads/DataGen.h"

#include <cmath>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

//===----------------------------------------------------------------------===//
// db-shootout
//===----------------------------------------------------------------------===//

class DbShootoutBenchmark : public Benchmark {
  static constexpr unsigned kThreads = 4;
  static constexpr uint64_t kKeys = 20000;
  static constexpr unsigned kOpsPerThread = 6000;

public:
  BenchmarkInfo info() const override {
    return {"db-shootout", Suite::Renaissance,
            "Parallel shootout over the in-memory key-value store",
            "query processing, data structures", 2, 3};
  }

  void setUp() override {
    Store = std::make_unique<kvstore::Table>(64);
    for (uint64_t K = 0; K < kKeys; ++K)
      Store->put(K, "v" + std::to_string(K));
  }

  void runIteration() override {
    forkjoin::ForkJoinPool Pool(kThreads);
    runtime::Atomic<uint64_t> Hits{0};
    Pool.parallelFor(0, kThreads, 1, [&](size_t Lo, size_t Hi) {
      for (size_t T = Lo; T < Hi; ++T) {
        Xoshiro256StarStar Rng(0xD8 + T);
        uint64_t LocalHits = 0;
        for (unsigned Op = 0; Op < kOpsPerThread; ++Op) {
          double Dice = Rng.nextDouble();
          uint64_t Key = Rng.nextBounded(kKeys);
          if (Dice < 0.70) {
            LocalHits += Store->get(Key).has_value() ? 1 : 0;
          } else if (Dice < 0.95) {
            Store->put(Key, "u" + std::to_string(Op));
          } else {
            Store->remove(Key);
            Store->put(Key, "r" + std::to_string(Op));
          }
        }
        Hits.getAndAdd(LocalHits);
      }
    });
    TotalHits = Hits.load();
    FinalSize = Store->size();
  }

  void tearDown() override { Store.reset(); }

  uint64_t checksum() const override { return FinalSize; }

private:
  std::unique_ptr<kvstore::Table> Store;
  uint64_t TotalHits = 0;
  uint64_t FinalSize = 0;
};

//===----------------------------------------------------------------------===//
// neo4j-analytics
//===----------------------------------------------------------------------===//

class Neo4jAnalyticsBenchmark : public Benchmark {
  static constexpr uint32_t kNodes = 3000;
  static constexpr unsigned kEdgesPerNode = 4;
  static constexpr unsigned kThreads = 4;
  static constexpr unsigned kQueriesPerThread = 120;

public:
  BenchmarkInfo info() const override {
    return {"neo4j-analytics", Suite::Renaissance,
            "Analytical queries and transactions on the property graph",
            "query processing, transactions", 2, 3};
  }

  void setUp() override {
    Db = std::make_unique<kvstore::Graph>(64);
    auto Adj = makeScaleFreeGraph(kNodes, kEdgesPerNode, 0x4E04);
    for (uint32_t N = 0; N < kNodes; ++N) {
      uint64_t Id = Db->addNode(N % 5 == 0 ? "Celebrity" : "Person");
      Db->setProperty(Id, "score", 0);
    }
    for (uint32_t N = 0; N < kNodes; ++N)
      for (uint32_t To : Adj[N])
        Db->addEdge(N, To);
  }

  void runIteration() override {
    std::vector<std::thread> Workers;
    runtime::Atomic<uint64_t> QuerySum{0};
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([&, T] {
        Xoshiro256StarStar Rng(0x4E + T);
        uint64_t Local = 0;
        for (unsigned Q = 0; Q < kQueriesPerThread; ++Q) {
          double Dice = Rng.nextDouble();
          uint64_t Node = Rng.nextBounded(kNodes);
          if (Dice < 0.4) {
            // Analytical: bounded reachability.
            Local += Db->reachableWithin(Node, 2);
          } else if (Dice < 0.6) {
            // Analytical: shortest path between two random nodes.
            auto Path = Db->shortestPath(Node, Rng.nextBounded(kNodes));
            Local += Path ? *Path : 0;
          } else {
            // Transactional: bump the score of a node's neighbourhood.
            for (uint64_t Peer : Db->neighbours(Node)) {
              auto Score = Db->getProperty(Peer, "score");
              Db->setProperty(Peer, "score", (Score ? *Score : 0) + 1);
            }
          }
        }
        QuerySum.getAndAdd(Local);
      });
    for (auto &W : Workers)
      W.join();
    Result = QuerySum.load();
  }

  void tearDown() override { Db.reset(); }

  uint64_t checksum() const override { return Db ? Db->nodeCount() : kNodes; }

private:
  std::unique_ptr<kvstore::Graph> Db;
  uint64_t Result = 0;
};

//===----------------------------------------------------------------------===//
// page-rank
//===----------------------------------------------------------------------===//

class PageRankBenchmark : public Benchmark {
  static constexpr uint32_t kNodes = 8000;
  static constexpr unsigned kEdgesPerNode = 6;
  static constexpr unsigned kIterations = 6;
  static constexpr double kDamping = 0.85;

public:
  BenchmarkInfo info() const override {
    return {"page-rank", Suite::Renaissance,
            "PageRank with atomic rank accumulation",
            "data-parallel, atomics", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(4);
    Adj = makeScaleFreeGraph(kNodes, kEdgesPerNode, 0x9A6E);
    // Flatten to CSR for the traced arrays.
    Offsets.resize(kNodes + 1);
    size_t Total = 0;
    for (uint32_t N = 0; N < kNodes; ++N) {
      Offsets.raw(N) = Total;
      Total += Adj[N].size();
    }
    Offsets.raw(kNodes) = Total;
    Edges.resize(Total);
    size_t Pos = 0;
    for (uint32_t N = 0; N < kNodes; ++N)
      for (uint32_t To : Adj[N])
        Edges.raw(Pos++) = To;
  }

  void runIteration() override {
    std::vector<double> Ranks(kNodes, 1.0 / kNodes);
    for (unsigned It = 0; It < kIterations; ++It) {
      // Fixed-point accumulation through counted atomics: the "atomics"
      // focus of the benchmark (Table 1).
      std::vector<runtime::Atomic<long>> Incoming(kNodes);
      Pool->parallelFor(0, kNodes, 256, [&](size_t Lo, size_t Hi) {
        for (size_t N = Lo; N < Hi; ++N) {
          size_t Begin = Offsets.read(N);
          size_t End = Offsets.read(N + 1);
          size_t Degree = End - Begin;
          if (Degree == 0)
            continue;
          long Share = static_cast<long>(Ranks[N] / Degree * 1e12);
          for (size_t E = Begin; E < End; ++E)
            Incoming[Edges.read(E)].getAndAdd(Share);
        }
      });
      for (uint32_t N = 0; N < kNodes; ++N)
        Ranks[N] = (1.0 - kDamping) / kNodes +
                   kDamping * static_cast<double>(Incoming[N].load()) / 1e12;
    }
    double Sum = 0;
    for (double R : Ranks)
      Sum += R;
    RankSum = static_cast<uint64_t>(Sum * 1e9);
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override { return RankSum; }

private:
  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::vector<std::vector<uint32_t>> Adj;
  memsim::TracedArray<size_t> Offsets;
  memsim::TracedArray<uint32_t> Edges;
  uint64_t RankSum = 0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makeDbShootout() {
  return std::make_unique<DbShootoutBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeNeo4jAnalytics() {
  return std::make_unique<Neo4jAnalyticsBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makePageRank() {
  return std::make_unique<PageRankBenchmark>();
}
