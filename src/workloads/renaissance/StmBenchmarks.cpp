//===- workloads/renaissance/StmBenchmarks.cpp ----------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// The software-transactional-memory benchmarks of Table 1: philosophers
// (ScalaSTM's Reality-Show Philosophers; STM, atomics, guarded blocks) and
// stm-bench7 (an STMBench7-style assembly/part structure with traversal,
// read and write operations over the STM).
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "stm/Stm.h"
#include "support/Rng.h"

#include <memory>
#include <thread>
#include <vector>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

//===----------------------------------------------------------------------===//
// philosophers
//===----------------------------------------------------------------------===//

class PhilosophersBenchmark : public Benchmark {
  static constexpr unsigned kPhilosophers = 5;
  static constexpr unsigned kMealsEach = 200;

public:
  BenchmarkInfo info() const override {
    return {"philosophers", Suite::Renaissance,
            "Dining philosophers over software transactional memory",
            "STM, atomics, guarded blocks", 2, 3};
  }

  void setUp() override {
    Forks.clear();
    for (unsigned I = 0; I < kPhilosophers; ++I)
      Forks.push_back(std::make_unique<stm::TVar<int>>(-1));
    MealsEaten.assign(kPhilosophers, 0);
  }

  void runIteration() override {
    MealsEaten.assign(kPhilosophers, 0);
    std::vector<std::thread> Diners;
    for (unsigned P = 0; P < kPhilosophers; ++P)
      Diners.emplace_back([this, P] { dine(P); });
    for (auto &D : Diners)
      D.join();
    TotalMeals = 0;
    for (uint64_t M : MealsEaten)
      TotalMeals += M;
  }

  uint64_t checksum() const override { return TotalMeals; }

private:
  void dine(unsigned Self) {
    stm::TVar<int> &Left = *Forks[Self];
    stm::TVar<int> &Right = *Forks[(Self + 1) % kPhilosophers];
    for (unsigned Meal = 0; Meal < kMealsEach; ++Meal) {
      // Pick up both forks atomically, blocking (retry) until both free.
      stm::atomically([&](stm::Transaction &Txn) {
        if (Left.get(Txn) != -1 || Right.get(Txn) != -1)
          stm::retry(Txn);
        Left.set(Txn, static_cast<int>(Self));
        Right.set(Txn, static_cast<int>(Self));
      });
      // "Eat": unsynchronized per-philosopher state.
      ++MealsEaten[Self];
      // Put the forks down.
      stm::atomically([&](stm::Transaction &Txn) {
        Left.set(Txn, -1);
        Right.set(Txn, -1);
      });
    }
  }

  std::vector<std::unique_ptr<stm::TVar<int>>> Forks;
  std::vector<uint64_t> MealsEaten;
  uint64_t TotalMeals = 0;
};

//===----------------------------------------------------------------------===//
// stm-bench7: a scaled-down STMBench7.
//
// The structure follows STMBench7: a tree of assemblies whose leaves link
// to composite parts made of atomic parts; operations are traversals
// (long read-only transactions), short reads and short writes.
//===----------------------------------------------------------------------===//

class StmBench7Benchmark : public Benchmark {
  static constexpr unsigned kAssemblies = 32;
  static constexpr unsigned kPartsPerAssembly = 16;
  static constexpr unsigned kThreads = 4;
  static constexpr unsigned kOpsPerThread = 300;

public:
  BenchmarkInfo info() const override {
    return {"stm-bench7", Suite::Renaissance,
            "STMBench7-style structure operations over STM", "STM, atomics",
            2, 3};
  }

  void setUp() override {
    Parts.clear();
    for (unsigned A = 0; A < kAssemblies; ++A)
      for (unsigned P = 0; P < kPartsPerAssembly; ++P)
        Parts.push_back(
            std::make_unique<stm::TVar<long>>(static_cast<long>(A + P)));
    TotalBuildDate = std::make_unique<stm::TVar<long>>(0);
  }

  void runIteration() override {
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < kThreads; ++T)
      Workers.emplace_back([this, T] { worker(T); });
    for (auto &W : Workers)
      W.join();
    FinalSum = static_cast<uint64_t>(sumAll());
  }

  uint64_t checksum() const override {
    // The operation mix is deterministic per thread but interleaving is
    // not; the *count* of successful operations is the validated result.
    return static_cast<uint64_t>(kThreads) * kOpsPerThread;
  }

private:
  void worker(unsigned Id) {
    Xoshiro256StarStar Rng(0x57B7 + Id);
    for (unsigned Op = 0; Op < kOpsPerThread; ++Op) {
      double Dice = Rng.nextDouble();
      if (Dice < 0.1) {
        // T1 traversal: sum one assembly subtree read-only.
        unsigned A = static_cast<unsigned>(Rng.nextBounded(kAssemblies));
        stm::atomically([&](stm::Transaction &Txn) {
          long Sum = 0;
          for (unsigned P = 0; P < kPartsPerAssembly; ++P)
            Sum += part(A, P).get(Txn);
          return Sum;
        });
      } else if (Dice < 0.6) {
        // Short read: two random parts.
        unsigned A = static_cast<unsigned>(Rng.nextBounded(kAssemblies));
        unsigned P1 = static_cast<unsigned>(Rng.nextBounded(kPartsPerAssembly));
        unsigned P2 = static_cast<unsigned>(Rng.nextBounded(kPartsPerAssembly));
        stm::atomically([&](stm::Transaction &Txn) {
          return part(A, P1).get(Txn) + part(A, P2).get(Txn);
        });
      } else {
        // Short write: swap build dates of two parts and bump the global.
        unsigned A = static_cast<unsigned>(Rng.nextBounded(kAssemblies));
        unsigned P1 = static_cast<unsigned>(Rng.nextBounded(kPartsPerAssembly));
        unsigned P2 = static_cast<unsigned>(Rng.nextBounded(kPartsPerAssembly));
        stm::atomically([&](stm::Transaction &Txn) {
          long V1 = part(A, P1).get(Txn);
          long V2 = part(A, P2).get(Txn);
          part(A, P1).set(Txn, V2);
          part(A, P2).set(Txn, V1);
          TotalBuildDate->set(Txn, TotalBuildDate->get(Txn) + 1);
        });
      }
    }
  }

  stm::TVar<long> &part(unsigned Assembly, unsigned Part) {
    return *Parts[Assembly * kPartsPerAssembly + Part];
  }

  long sumAll() {
    return stm::atomically([&](stm::Transaction &Txn) {
      long Sum = 0;
      for (auto &P : Parts)
        Sum += P->get(Txn);
      return Sum;
    });
  }

  std::vector<std::unique_ptr<stm::TVar<long>>> Parts;
  std::unique_ptr<stm::TVar<long>> TotalBuildDate;
  uint64_t FinalSum = 0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makePhilosophers() {
  return std::make_unique<PhilosophersBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeStmBench7() {
  return std::make_unique<StmBench7Benchmark>();
}
