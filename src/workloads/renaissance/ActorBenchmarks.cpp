//===- workloads/renaissance/ActorBenchmarks.cpp --------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// The message-passing benchmarks of Table 1: akka-uct (Unbalanced Cobwebbed
// Tree over the actor framework) and reactors (a set of message-passing
// workloads with critical sections, after the Reactors/Savina benchmarks).
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "actors/ActorSystem.h"
#include "runtime/Monitor.h"
#include "support/Rng.h"

#include <atomic>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

//===----------------------------------------------------------------------===//
// akka-uct: Unbalanced Cobwebbed Tree.
//
// Each node actor receives an Expand message, performs a deterministic
// amount of "search" work that depends on its position (the imbalance),
// spawns its children and reports its subtree size to its parent. The
// geometry follows the UCT benchmark: node fanout and depth vary wildly
// across the tree, stressing the actor scheduler's load balancing.
//===----------------------------------------------------------------------===//

struct UctMsg {
  enum class Kind { Expand, Report };
  Kind MsgKind;
  uint64_t Value;    // Expand: node id; Report: subtree size
  uint64_t Budget;   // Expand: remaining node budget for this subtree
  unsigned Depth;
};

class UctNodeActor;

struct UctShared {
  actors::ActorSystem *System = nullptr;
  std::atomic<uint64_t> NodesExpanded{0};
  std::atomic<uint64_t> WorkDone{0};
};

class UctNodeActor : public actors::Actor<UctMsg> {
public:
  UctNodeActor(UctShared &Shared, actors::ActorRef<UctMsg> Parent)
      : Shared(Shared), Parent(Parent) {}

  void receive(UctMsg M) override {
    if (M.MsgKind == UctMsg::Kind::Report) {
      SubtreeSize += M.Value;
      if (--PendingChildren == 0)
        finish();
      return;
    }

    Shared.NodesExpanded.fetch_add(1);
    SubtreeSize = 1;

    // Imbalanced busy work: nodes whose id hashes low do much more work.
    SplitMix64 Mix(M.Value);
    uint64_t H = Mix.next();
    unsigned WorkUnits = 60 + static_cast<unsigned>(H % 997);
    if (H % 16 == 0)
      WorkUnits *= 12; // the "cobweb" hot spots
    volatile uint64_t Acc = 0;
    for (unsigned I = 0; I < WorkUnits * 12; ++I)
      Acc = Acc + I * H;
    Shared.WorkDone.fetch_add(WorkUnits);

    // Imbalanced fanout: 0..4 children, biased by the hash, bounded by the
    // node budget so the tree size is fixed per run. Shallow nodes always
    // branch so the cobweb actually grows.
    unsigned Fanout = static_cast<unsigned>((H >> 32) % 5);
    if (M.Depth < 2)
      Fanout = 2 + static_cast<unsigned>((H >> 32) % 3);
    if (M.Depth >= 9)
      Fanout = 0;
    uint64_t Budget = M.Budget;
    if (Budget == 0 || Fanout == 0) {
      finish();
      return;
    }
    Fanout = static_cast<unsigned>(
        std::min<uint64_t>(Fanout, Budget));
    PendingChildren = static_cast<int>(Fanout);
    uint64_t PerChild = (Budget - Fanout) / Fanout;
    uint64_t Extra = (Budget - Fanout) % Fanout;
    for (unsigned C = 0; C < Fanout; ++C) {
      auto Child = Shared.System->spawn<UctNodeActor>(Shared, self());
      uint64_t ChildBudget = PerChild + (C == 0 ? Extra : 0);
      Child.tell(UctMsg{UctMsg::Kind::Expand, Mix.next(), ChildBudget,
                        M.Depth + 1});
    }
  }

private:
  void finish() {
    if (Parent.valid())
      Parent.tell(UctMsg{UctMsg::Kind::Report, SubtreeSize, 0, 0});
    else
      Shared.NodesExpanded.fetch_add(0); // root: nothing to report
  }

  UctShared &Shared;
  actors::ActorRef<UctMsg> Parent;
  uint64_t SubtreeSize = 0;
  int PendingChildren = 0;
};

class AkkaUctBenchmark : public Benchmark {
  static constexpr uint64_t kNodeBudget = 1500;

public:
  BenchmarkInfo info() const override {
    return {"akka-uct", Suite::Renaissance,
            "Unbalanced Cobwebbed Tree computation over actors",
            "actors, message-passing", 2, 3};
  }

  void runIteration() override {
    actors::ActorSystem System(4);
    UctShared Shared;
    Shared.System = &System;
    auto Root = System.spawn<UctNodeActor>(Shared,
                                           actors::ActorRef<UctMsg>());
    Root.tell(UctMsg{UctMsg::Kind::Expand, 0x5EED, kNodeBudget, 0});
    System.awaitQuiescence();
    Expanded = Shared.NodesExpanded.load();
  }

  uint64_t checksum() const override { return Expanded; }

private:
  uint64_t Expanded = 0;
};

//===----------------------------------------------------------------------===//
// reactors: ping-pong, ring and fan-in counting workloads with critical
// sections (the paper's reactors benchmark mixes message passing with
// guarded critical sections).
//===----------------------------------------------------------------------===//

struct ReactorMsg {
  int Round;
};

class ReactorsBenchmark : public Benchmark {
  static constexpr int kPingPongRounds = 3000;
  static constexpr int kRingActors = 32;
  static constexpr int kRingLaps = 60;
  static constexpr int kFanInSenders = 8;
  static constexpr int kFanInMessages = 500;

public:
  BenchmarkInfo info() const override {
    return {"reactors", Suite::Renaissance,
            "Message-passing ping-pong/ring/fan-in workloads",
            "actors, message-passing, critical sections", 2, 3};
  }

  void runIteration() override {
    Total = 0;
    runPingPong();
    runRing();
    runFanIn();
  }

  uint64_t checksum() const override { return Total; }

private:
  void runPingPong() {
    struct PongActor : actors::Actor<ReactorMsg> {
      explicit PongActor(actors::ActorRef<ReactorMsg> *PingSlot)
          : PingSlot(PingSlot) {}
      void receive(ReactorMsg M) override {
        if (M.Round > 0)
          PingSlot->tell(ReactorMsg{M.Round - 1});
      }
      actors::ActorRef<ReactorMsg> *PingSlot;
    };
    struct PingActor : actors::Actor<ReactorMsg> {
      PingActor(std::atomic<long> &Count, actors::ActorRef<ReactorMsg> *Pong)
          : Count(Count), Pong(Pong) {}
      void receive(ReactorMsg M) override {
        Count.fetch_add(1);
        Pong->tell(M);
      }
      std::atomic<long> &Count;
      actors::ActorRef<ReactorMsg> *Pong;
    };
    actors::ActorSystem System(2);
    std::atomic<long> Count{0};
    actors::ActorRef<ReactorMsg> PingRef, PongRef;
    PongRef = System.spawn<PongActor>(&PingRef);
    PingRef = System.spawn<PingActor>(Count, &PongRef);
    PingRef.tell(ReactorMsg{kPingPongRounds});
    System.awaitQuiescence();
    Total += static_cast<uint64_t>(Count.load());
  }

  void runRing() {
    struct RingActor : actors::Actor<ReactorMsg> {
      RingActor(std::vector<actors::ActorRef<ReactorMsg>> &Ring, int Index)
          : Ring(Ring), Index(Index) {}
      void receive(ReactorMsg M) override {
        if (M.Round > 0)
          Ring[(Index + 1) % Ring.size()].tell(ReactorMsg{M.Round - 1});
      }
      std::vector<actors::ActorRef<ReactorMsg>> &Ring;
      int Index;
    };
    actors::ActorSystem System(2);
    std::vector<actors::ActorRef<ReactorMsg>> Ring(kRingActors);
    for (int I = 0; I < kRingActors; ++I)
      Ring[I] = System.spawn<RingActor>(Ring, I);
    Ring[0].tell(ReactorMsg{kRingActors * kRingLaps});
    System.awaitQuiescence();
    Total += static_cast<uint64_t>(kRingActors) * kRingLaps;
  }

  void runFanIn() {
    // Many senders, one counting actor updating shared state under a
    // critical section (the "critical sections" part of the focus).
    struct CounterActor : actors::Actor<ReactorMsg> {
      CounterActor(runtime::Monitor &Lock, long &Shared)
          : Lock(Lock), Shared(Shared) {}
      void receive(ReactorMsg M) override {
        runtime::Synchronized Sync(Lock);
        Shared += M.Round;
      }
      runtime::Monitor &Lock;
      long &Shared;
    };
    actors::ActorSystem System(4);
    runtime::Monitor Lock;
    long Shared = 0;
    auto Counter = System.spawn<CounterActor>(Lock, Shared);
    std::vector<std::thread> Senders;
    for (int S = 0; S < kFanInSenders; ++S)
      Senders.emplace_back([&] {
        for (int I = 0; I < kFanInMessages; ++I)
          Counter.tell(ReactorMsg{1});
      });
    for (auto &S : Senders)
      S.join();
    System.awaitQuiescence();
    Total += static_cast<uint64_t>(Shared);
  }

  uint64_t Total = 0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makeAkkaUct() {
  return std::make_unique<AkkaUctBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeReactors() {
  return std::make_unique<ReactorsBenchmark>();
}
