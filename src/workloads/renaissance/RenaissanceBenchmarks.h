//===- workloads/renaissance/RenaissanceBenchmarks.h ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory declarations for the 21 Renaissance benchmarks (paper Table 1).
/// Internal to the workloads library.
///
//===----------------------------------------------------------------------===//

#ifndef REN_WORKLOADS_RENAISSANCE_RENAISSANCEBENCHMARKS_H
#define REN_WORKLOADS_RENAISSANCE_RENAISSANCEBENCHMARKS_H

#include "harness/Harness.h"

#include <memory>

namespace ren {
namespace workloads {

std::unique_ptr<harness::Benchmark> makeAkkaUct();
std::unique_ptr<harness::Benchmark> makeAls();
std::unique_ptr<harness::Benchmark> makeChiSquare();
std::unique_ptr<harness::Benchmark> makeDbShootout();
std::unique_ptr<harness::Benchmark> makeDecTree();
std::unique_ptr<harness::Benchmark> makeDotty();
std::unique_ptr<harness::Benchmark> makeFinagleChirper();
std::unique_ptr<harness::Benchmark> makeFinagleHttp();
std::unique_ptr<harness::Benchmark> makeFjKmeans();
std::unique_ptr<harness::Benchmark> makeFutureGenetic();
std::unique_ptr<harness::Benchmark> makeLogRegression();
std::unique_ptr<harness::Benchmark> makeMovieLens();
std::unique_ptr<harness::Benchmark> makeNaiveBayes();
std::unique_ptr<harness::Benchmark> makeNeo4jAnalytics();
std::unique_ptr<harness::Benchmark> makePageRank();
std::unique_ptr<harness::Benchmark> makePhilosophers();
std::unique_ptr<harness::Benchmark> makeReactors();
std::unique_ptr<harness::Benchmark> makeRxScrabble();
std::unique_ptr<harness::Benchmark> makeScrabble();
std::unique_ptr<harness::Benchmark> makeStmBench7();
std::unique_ptr<harness::Benchmark> makeStreamsMnemonics();

} // namespace workloads
} // namespace ren

#endif // REN_WORKLOADS_RENAISSANCE_RENAISSANCEBENCHMARKS_H
