//===- workloads/renaissance/TaskParallelBenchmarks.cpp -------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// Task-parallel benchmarks of Table 1: fj-kmeans (fork/join k-means with
// synchronized accumulation — the paper's most synchronized-heavy workload
// and the loop-wide-lock-coarsening case study) and future-genetic (a
// genetic optimizer pipelined over futures with a shared CAS-based random
// generator — the atomic-operation-coalescing case study).
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "forkjoin/ForkJoinPool.h"
#include "futures/PoolExecutor.h"
#include "memsim/MemSim.h"
#include "runtime/Atomic.h"
#include "runtime/Monitor.h"
#include "workloads/DataGen.h"

#include <cmath>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;

namespace {

//===----------------------------------------------------------------------===//
// fj-kmeans
//===----------------------------------------------------------------------===//

class FjKmeansBenchmark : public Benchmark {
  static constexpr size_t kPoints = 6000;
  static constexpr size_t kDims = 8;
  static constexpr unsigned kClusters = 5;
  static constexpr unsigned kRounds = 4;

public:
  BenchmarkInfo info() const override {
    return {"fj-kmeans", Suite::Renaissance,
            "K-means over the fork/join framework",
            "task-parallel, synchronized aggregation", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(4);
    Xoshiro256StarStar Rng(0x43EA);
    Points.resize(kPoints * kDims);
    for (size_t I = 0; I < Points.size(); ++I)
      Points.raw(I) = Rng.nextGaussian() * 3.0;
    Centroids.assign(kClusters * kDims, 0.0);
    for (unsigned C = 0; C < kClusters; ++C)
      for (size_t D = 0; D < kDims; ++D)
        Centroids[C * kDims + D] = Points.raw(C * 37 % kPoints * kDims + D);
  }

  void runIteration() override {
    for (unsigned Round = 0; Round < kRounds; ++Round)
      kmeansRound();
  }

  void tearDown() override { Pool.reset(); }

  uint64_t checksum() const override {
    double Sum = 0;
    for (double C : Centroids)
      Sum += C;
    return static_cast<uint64_t>(std::llround(Sum * 1e3)) + Assigned;
  }

private:
  void kmeansRound() {
    // Shared accumulation cells, each protected by a monitor. Leaf tasks
    // update the shared cells *per point* inside a loop — exactly the
    // synchronized-in-a-loop pattern that loop-wide lock coarsening (§5.2)
    // targets, and the reason fj-kmeans dominates Figure 3.
    // Fixed-point (1e-6) integer sums: integer addition is associative,
    // so the result is deterministic under any thread interleaving while
    // the per-point synchronized update pattern is preserved.
    std::vector<long long> Sums(kClusters * kDims, 0);
    std::vector<uint64_t> Counts(kClusters, 0);
    runtime::Monitor CellLock;

    Pool->parallelFor(0, kPoints, 128, [&](size_t Lo, size_t Hi) {
      for (size_t P = Lo; P < Hi; ++P) {
        unsigned Best = nearestCluster(P);
        // One synchronized section per coordinate, like the Java
        // original's per-cell synchronized accumulators — the reason
        // fj-kmeans tops Figure 3.
        for (size_t D = 0; D < kDims; ++D) {
          runtime::Synchronized Sync(CellLock);
          Sums[Best * kDims + D] +=
              static_cast<long long>(Points.read(P * kDims + D) * 1e6);
        }
        runtime::Synchronized Sync(CellLock);
        ++Counts[Best];
      }
    });

    Assigned = 0;
    for (unsigned C = 0; C < kClusters; ++C) {
      Assigned += Counts[C];
      if (Counts[C] == 0)
        continue;
      for (size_t D = 0; D < kDims; ++D)
        Centroids[C * kDims + D] =
            static_cast<double>(Sums[C * kDims + D]) / 1e6 /
            static_cast<double>(Counts[C]);
    }
  }

  unsigned nearestCluster(size_t Point) const {
    unsigned Best = 0;
    double BestDist = 1e300;
    for (unsigned C = 0; C < kClusters; ++C) {
      double Dist = 0;
      for (size_t D = 0; D < kDims; ++D) {
        // Untraced reads: the distance loop re-reads the same point per
        // cluster, which stays L1-resident on real hardware; the traced
        // access happens once per point in the accumulation loop below.
        double Diff =
            Points.raw(Point * kDims + D) - Centroids[C * kDims + D];
        Dist += Diff * Diff;
      }
      if (Dist < BestDist) {
        BestDist = Dist;
        Best = C;
      }
    }
    return Best;
  }

  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  memsim::TracedArray<double> Points;
  std::vector<double> Centroids;
  uint64_t Assigned = 0;
};

//===----------------------------------------------------------------------===//
// future-genetic
//===----------------------------------------------------------------------===//

class FutureGeneticBenchmark : public Benchmark {
  static constexpr unsigned kPopulation = 48;
  static constexpr unsigned kGenes = 24;
  static constexpr unsigned kGenerations = 12;
  static constexpr unsigned kTournament = 4;

public:
  BenchmarkInfo info() const override {
    return {"future-genetic", Suite::Renaissance,
            "Genetic-algorithm function optimization over futures",
            "task-parallel, contention (shared CAS random)", 2, 3};
  }

  void setUp() override {
    Pool = std::make_unique<forkjoin::ForkJoinPool>(4);
    Exec = std::make_unique<futures::PoolExecutor>(*Pool);
    Rng = std::make_unique<runtime::SharedRandom>(0x6E7E);
    Population.assign(kPopulation, std::vector<double>(kGenes));
    for (auto &Ind : Population)
      for (double &G : Ind)
        G = Rng->nextDouble() * 10.0 - 5.0;
  }

  void runIteration() override {
    for (unsigned Gen = 0; Gen < kGenerations; ++Gen)
      evolveGeneration();
    BestFitness = 1e300;
    for (const auto &Ind : Population)
      BestFitness = std::min(BestFitness, fitness(Ind));
  }

  void tearDown() override {
    Exec.reset();
    Pool.reset();
  }

  uint64_t checksum() const override {
    return static_cast<uint64_t>(BestFitness * 1e6);
  }

private:
  /// Rastrigin-like multimodal objective (minimize).
  static double fitness(const std::vector<double> &Genes) {
    double Sum = 10.0 * Genes.size();
    for (double G : Genes)
      Sum += G * G - 10.0 * std::cos(2.0 * 3.14159265358979 * G);
    return Sum;
  }

  void evolveGeneration() {
    // Pipeline per offspring: select -> crossover -> mutate -> evaluate,
    // each stage a future continuation on the pool; the shared random
    // generator makes every stage hit the double-CAS nextDouble path.
    std::vector<futures::Future<std::vector<double>>> Offspring;
    Offspring.reserve(kPopulation);
    for (unsigned I = 0; I < kPopulation; ++I) {
      auto F =
          Exec->async([this] { return selectParents(); })
              .map([this](const std::pair<std::vector<double>,
                                          std::vector<double>> &Parents) {
                return crossover(Parents.first, Parents.second);
              })
              .map([this](const std::vector<double> &Child) {
                return mutate(Child);
              });
      Offspring.push_back(std::move(F));
    }
    auto All = futures::collectAll(Offspring);
    std::vector<std::vector<double>> Next = All.get();
    // Elitism: keep the single best of the old generation.
    size_t BestIndex = 0;
    double Best = 1e300;
    for (size_t I = 0; I < Population.size(); ++I) {
      double F = fitness(Population[I]);
      if (F < Best) {
        Best = F;
        BestIndex = I;
      }
    }
    Next[0] = Population[BestIndex];
    Population = std::move(Next);
  }

  std::pair<std::vector<double>, std::vector<double>> selectParents() {
    auto tournament = [this] {
      size_t Best = Rng->nextInt(kPopulation);
      double BestF = fitness(Population[Best]);
      for (unsigned T = 1; T < kTournament; ++T) {
        size_t C = Rng->nextInt(kPopulation);
        double F = fitness(Population[C]);
        if (F < BestF) {
          BestF = F;
          Best = C;
        }
      }
      return Population[Best];
    };
    return {tournament(), tournament()};
  }

  std::vector<double> crossover(const std::vector<double> &A,
                                const std::vector<double> &B) {
    std::vector<double> Child(kGenes);
    for (unsigned G = 0; G < kGenes; ++G)
      Child[G] = Rng->nextDouble() < 0.5 ? A[G] : B[G];
    return Child;
  }

  std::vector<double> mutate(std::vector<double> Child) {
    for (unsigned G = 0; G < kGenes; ++G)
      if (Rng->nextDouble() < 0.1)
        Child[G] += Rng->nextDouble() * 2.0 - 1.0;
    return Child;
  }

  std::unique_ptr<forkjoin::ForkJoinPool> Pool;
  std::unique_ptr<futures::PoolExecutor> Exec;
  std::unique_ptr<runtime::SharedRandom> Rng;
  std::vector<std::vector<double>> Population;
  double BestFitness = 0.0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makeFjKmeans() {
  return std::make_unique<FjKmeansBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeFutureGenetic() {
  return std::make_unique<FutureGeneticBenchmark>();
}
