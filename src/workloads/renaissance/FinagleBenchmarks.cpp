//===- workloads/renaissance/FinagleBenchmarks.cpp ------------------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// The network benchmarks of Table 1: finagle-http ("simulates a high
// server load"; network stack + message passing) and finagle-chirper ("a
// microblogging service"; network stack, futures, atomics — the paper's
// escape-analysis-with-atomics case study, and the most atomic-heavy
// benchmark in Figure 2).
//
//===----------------------------------------------------------------------===//

#include "workloads/renaissance/RenaissanceBenchmarks.h"

#include "netsim/LoadGen.h"
#include "netsim/NetSim.h"
#include "runtime/Atomic.h"
#include "support/Rng.h"

#include <memory>
#include <mutex>
#include <thread>

using namespace ren;
using namespace ren::harness;
using namespace ren::workloads;
using netsim::ByteBuffer;
using netsim::Bytes;

namespace {

//===----------------------------------------------------------------------===//
// finagle-http
//===----------------------------------------------------------------------===//

class FinagleHttpBenchmark : public Benchmark {
  // The reactor carries connections without per-connection threads, so
  // "high server load" can mean a realistic fan-in: many connections, an
  // in-flight window, an open-loop (unpaced) generator.
  static constexpr unsigned kConnections = 64;
  static constexpr unsigned kRequests = 2400;
  static constexpr unsigned kServerShards = 2;
  static constexpr unsigned kMaxInFlight = 64;

public:
  BenchmarkInfo info() const override {
    return {"finagle-http", Suite::Renaissance,
            "High-load HTTP-style request flood over the loopback network",
            "network stack, message passing", 2, 3};
  }

  void runIteration() override {
    // An HTTP-ish service: parse a path, dispatch, render a body.
    netsim::Server Srv("http", [](const Bytes &Request) {
      ByteBuffer In(Request);
      std::string Path = In.readString();
      ByteBuffer Out;
      Out.writeU32(200);
      Out.writeString("<html>" + Path + "</html>");
      return Out.takeBytes();
    }, kServerShards);

    netsim::LoadGenOptions Opts;
    Opts.Requests = kRequests;
    Opts.Connections = kConnections;
    Opts.MaxInFlight = kMaxInFlight;
    Opts.MakeRequest = [](uint64_t Seq) {
      ByteBuffer Req;
      Req.writeString("/user/" + std::to_string(Seq % kConnections) +
                      "/item/" + std::to_string(Seq));
      return Req.takeBytes();
    };
    Opts.Validate = [](const Bytes &Resp) {
      ByteBuffer In(Resp);
      if (In.readU32() != 200)
        return false;
      std::string Body = In.readString();
      return Body.rfind("<html>/user/", 0) == 0 &&
             Body.size() > sizeof("<html></html>");
    };

    // run() publishes the report; the harness's NetLatencyPlugin picks up
    // p50/p99/p999 and sustained rps for this iteration.
    netsim::LoadGen Gen(Srv, Opts);
    Succeeded = Gen.run().Valid;
  }

  uint64_t checksum() const override { return Succeeded; }

private:
  uint64_t Succeeded = 0;
};

//===----------------------------------------------------------------------===//
// finagle-chirper: a microblog (post / follow / feed) with future
// composition on the client and atomic statistics on the server.
//===----------------------------------------------------------------------===//

class FinagleChirperBenchmark : public Benchmark {
  static constexpr unsigned kUsers = 48;
  static constexpr unsigned kClients = 4;
  static constexpr unsigned kConnsPerClient = 8;
  static constexpr unsigned kOpsPerClient = 300;
  static constexpr unsigned kServerShards = 3;

  enum Command : uint32_t { CmdPost = 1, CmdFollow = 2, CmdFeed = 3 };

public:
  BenchmarkInfo info() const override {
    return {"finagle-chirper", Suite::Renaissance,
            "Microblogging service over the loopback network",
            "network stack, futures, atomics", 2, 3};
  }

  void setUp() override {
    Posts.assign(kUsers, {});
    Follows.assign(kUsers, {});
    for (unsigned U = 0; U < kUsers; ++U)
      PostCounter.push_back(std::make_unique<runtime::Atomic<uint64_t>>(0));
  }

  void runIteration() override {
    // Server state lock: coarse per-user striping via the posts vectors.
    std::vector<std::mutex> UserLocks(kUsers);

    netsim::Server Srv("chirper", [&](const Bytes &Request) {
      ByteBuffer In(Request);
      uint32_t Cmd = In.readU32();
      uint32_t User = In.readU32();
      ByteBuffer Out;
      switch (Cmd) {
      case CmdPost: {
        std::string Message = In.readString();
        {
          std::lock_guard<std::mutex> Guard(UserLocks[User]);
          Posts[User].push_back(Message);
        }
        // The java.util.Random/AtomicLong-style CAS statistics path.
        PostCounter[User]->getAndAdd(1);
        TotalPosts.getAndAdd(1);
        Out.writeU32(1);
        break;
      }
      case CmdFollow: {
        uint32_t Target = In.readU32();
        std::lock_guard<std::mutex> Guard(UserLocks[User]);
        Follows[User].push_back(Target);
        Out.writeU32(1);
        break;
      }
      case CmdFeed: {
        // Feed: latest post of every followee.
        std::vector<uint32_t> Sources;
        {
          std::lock_guard<std::mutex> Guard(UserLocks[User]);
          Sources = Follows[User];
        }
        std::string Feed;
        for (uint32_t S : Sources) {
          std::lock_guard<std::mutex> Guard(UserLocks[S]);
          if (!Posts[S].empty())
            Feed += Posts[S].back() + "|";
        }
        FeedsServed.getAndAdd(1);
        Out.writeU32(static_cast<uint32_t>(Feed.size()));
        Out.writeString(Feed);
        break;
      }
      default:
        Out.writeU32(0);
      }
      return Out.takeBytes();
    }, kServerShards);

    std::vector<std::thread> Clients;
    runtime::Atomic<uint64_t> FeedBytes{0};
    for (unsigned C = 0; C < kClients; ++C)
      Clients.emplace_back([&, C] {
        // Several connections per client, rotated per op: the reactor
        // makes connections cheap, and the same op stream is identical
        // regardless of which connection carries each request, so the
        // checksum stays deterministic.
        std::vector<std::unique_ptr<netsim::ClientConnection>> Pool;
        for (unsigned P = 0; P < kConnsPerClient; ++P)
          Pool.push_back(Srv.connect());
        runtime::SharedRandom Rng(0xC41B + C);
        uint64_t LocalFeedBytes = 0;
        for (unsigned Op = 0; Op < kOpsPerClient; ++Op) {
          auto &Conn = Pool[Op % kConnsPerClient];
          uint32_t User = Rng.nextInt(kUsers);
          double Dice = Rng.nextDouble();
          if (Dice < 0.4) {
            ByteBuffer Req;
            Req.writeU32(CmdPost);
            Req.writeU32(User);
            Req.writeString("chirp " + std::to_string(Op) + " from " +
                            std::to_string(C));
            Conn->call(Req.takeBytes()).get();
          } else if (Dice < 0.6) {
            ByteBuffer Req;
            Req.writeU32(CmdFollow);
            Req.writeU32(User);
            Req.writeU32(Rng.nextInt(kUsers));
            Conn->call(Req.takeBytes()).get();
          } else {
            ByteBuffer Req;
            Req.writeU32(CmdFeed);
            Req.writeU32(User);
            // Future composition: parse the feed length via map.
            auto Size = Conn->call(Req.takeBytes())
                            .map([](const Bytes &Resp) {
                              ByteBuffer In(Resp);
                              return In.readU32();
                            });
            LocalFeedBytes += Size.get();
          }
        }
        FeedBytes.getAndAdd(LocalFeedBytes);
        for (auto &Conn : Pool)
          Conn->close();
      });
    for (auto &C : Clients)
      C.join();
    ServedFeeds = FeedsServed.load();
    PostsMade = TotalPosts.load();
  }

  void tearDown() override {
    Posts.clear();
    Follows.clear();
    PostCounter.clear();
  }

  uint64_t checksum() const override { return PostsMade + ServedFeeds; }

private:
  std::vector<std::vector<std::string>> Posts;
  std::vector<std::vector<uint32_t>> Follows;
  std::vector<std::unique_ptr<runtime::Atomic<uint64_t>>> PostCounter;
  runtime::Atomic<uint64_t> TotalPosts{0};
  runtime::Atomic<uint64_t> FeedsServed{0};
  uint64_t ServedFeeds = 0;
  uint64_t PostsMade = 0;
};

} // namespace

std::unique_ptr<Benchmark> ren::workloads::makeFinagleHttp() {
  return std::make_unique<FinagleHttpBenchmark>();
}
std::unique_ptr<Benchmark> ren::workloads::makeFinagleChirper() {
  return std::make_unique<FinagleChirperBenchmark>();
}
