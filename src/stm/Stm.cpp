//===- stm/Stm.cpp - TL2 commit protocol ----------------------------------==//

#include "stm/Stm.h"

#include <algorithm>

using namespace ren;
using namespace ren::stm;

StmRuntime &StmRuntime::get() {
  static StmRuntime *Rt = new StmRuntime();
  return *Rt;
}

bool StmRuntime::commit(Transaction &Txn) {
  // Read-only transactions are already consistent: every read validated
  // against ReadVersion and nothing moved underneath them.
  if (Txn.WriteOrder.empty()) {
    CommitCount.getAndAdd(1);
    return true;
  }

  // Phase 1: lock the write set in address order (global order, so two
  // committers cannot deadlock).
  std::vector<TVarBase *> Locked;
  Locked.reserve(Txn.WriteOrder.size());
  std::vector<TVarBase *> Ordered = Txn.WriteOrder;
  std::sort(Ordered.begin(), Ordered.end());

  auto unlockAll = [&Locked](uint64_t RestoreShift) {
    for (TVarBase *Var : Locked) {
      uint64_t Word = Var->LockWord.load(std::memory_order_relaxed);
      Var->LockWord.store((TVarBase::versionOf(Word) + RestoreShift) << 1,
                          std::memory_order_release);
    }
  };

  for (TVarBase *Var : Ordered) {
    uint64_t Word = Var->LockWord.load(std::memory_order_acquire);
    if (TVarBase::isLocked(Word) ||
        TVarBase::versionOf(Word) > Txn.ReadVersion ||
        !Var->LockWord.compareAndSet(Word, Word | 1)) {
      unlockAll(/*RestoreShift=*/0);
      return false;
    }
    Locked.push_back(Var);
  }

  // Phase 2: advance the global clock.
  uint64_t WriteVersion = Clock.incrementAndGet();

  // Phase 3: validate the read set (unless it is covered by our own locks).
  for (const TVarBase *Var : Txn.ReadSet) {
    uint64_t Word = Var->LockWord.load(std::memory_order_acquire);
    bool LockedByUs =
        std::binary_search(Ordered.begin(), Ordered.end(),
                           const_cast<TVarBase *>(Var));
    if (TVarBase::versionOf(Word) > Txn.ReadVersion ||
        (TVarBase::isLocked(Word) && !LockedByUs)) {
      unlockAll(/*RestoreShift=*/0);
      return false;
    }
  }

  // Phase 4: publish the writes and release the locks at WriteVersion.
  for (TVarBase *Var : Txn.WriteOrder) {
    Transaction::WriteEntry &Entry = Txn.Writes[Var];
    Entry.Apply(Var, Entry.Pending.get());
  }
  for (TVarBase *Var : Locked)
    Var->LockWord.store(WriteVersion << 1, std::memory_order_release);

  CommitCount.getAndAdd(1);
  {
    runtime::Synchronized Sync(CommitMonitor);
    CommitMonitor.notifyAll();
  }
  return true;
}

void StmRuntime::awaitCommit() {
  uint64_t Seen = CommitCount.load(std::memory_order_acquire);
  runtime::Synchronized Sync(CommitMonitor);
  // Bounded wait: a commit may land between the count read and the wait,
  // so never block unboundedly on the notification alone.
  while (CommitCount.load(std::memory_order_acquire) == Seen)
    CommitMonitor.waitFor(/*Millis=*/1);
}
