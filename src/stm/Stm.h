//===- stm/Stm.h - Software transactional memory ----------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TL2-flavoured software transactional memory modelling ScalaSTM/CCSTM
/// (Bronson et al.), the substrate of the philosophers and stm-bench7
/// benchmarks.
///
/// Design, following TL2:
///  - a global version clock, advanced by a counted CAS per writing commit;
///  - per-TVar versioned lock words (version << 1 | locked), acquired with
///    counted CAS during commit;
///  - speculative reads validate against the transaction's read version and
///    are re-validated at commit;
///  - \c retry blocks the transaction on a guarded block until some other
///    transaction commits (Monitor wait/notify — the philosophers profile).
///
/// Control flow for aborts uses C++ exceptions *internally to this module
/// only* (TxnAbort/TxnRetry are thrown by reads and caught by
/// \c atomically); this is the one sanctioned deviation from the
/// no-exceptions rule, documented in DESIGN.md, because an aborted
/// speculative execution must unwind arbitrary user code.
///
//===----------------------------------------------------------------------===//

#ifndef REN_STM_STM_H
#define REN_STM_STM_H

#include "runtime/Atomic.h"
#include "runtime/Monitor.h"

#include <cassert>
#include <atomic>
#include <cstdint>
#include <type_traits>
#include <memory>
#include <unordered_map>
#include <vector>

namespace ren {
namespace stm {

/// Thrown internally when a transaction observes an inconsistency.
struct TxnAbort {};

/// Thrown internally by stm::retry.
struct TxnRetry {};

class Transaction;

/// Untyped per-TVar metadata: the TL2 versioned lock word.
class TVarBase {
public:
  virtual ~TVarBase() = default;

protected:
  friend class Transaction;
  friend class StmRuntime;

  /// Lock word: (version << 1) | lockedBit.
  mutable runtime::Atomic<uint64_t> LockWord{0};

  static bool isLocked(uint64_t Word) { return Word & 1; }
  static uint64_t versionOf(uint64_t Word) { return Word >> 1; }
};

/// A transactional variable holding a value of type \p T.
///
/// \p T must be trivially copyable and at most word-sized: TL2 reads
/// speculatively while committers write, so the storage must be atomic
/// for the race to be defined behaviour (the version validation then
/// rejects any torn observation, exactly as in the original algorithm).
template <typename T> class TVar : public TVarBase {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "TVar values must be word-sized and trivially copyable");

public:
  TVar() : Value(T()) {}
  explicit TVar(T Initial) : Value(Initial) {}

  /// Transactional read (speculative, validated).
  T get(Transaction &Txn) const;

  /// Transactional write (buffered until commit).
  void set(Transaction &Txn, T NewValue);

  /// Non-transactional consistent read: spins past locked states.
  T readAtomic() const {
    for (;;) {
      uint64_t V1 = LockWord.load(std::memory_order_acquire);
      if (isLocked(V1))
        continue;
      T Result = Value.load(std::memory_order_relaxed);
      uint64_t V2 = LockWord.load(std::memory_order_acquire);
      if (V1 == V2)
        return Result;
    }
  }

private:
  friend class Transaction;
  std::atomic<T> Value;
};

/// The per-attempt transaction descriptor.
class Transaction {
public:
  /// Number of TVars read so far (for tests/stats).
  size_t readSetSize() const { return ReadSet.size(); }

  /// Number of TVars written so far.
  size_t writeSetSize() const { return WriteOrder.size(); }

private:
  template <typename T> friend class TVar;
  friend class StmRuntime;
  template <typename FnT> friend auto atomically(FnT Body);
  friend void retry(Transaction &);

  explicit Transaction(uint64_t ReadVersion) : ReadVersion(ReadVersion) {}

  struct WriteEntry {
    std::shared_ptr<void> Pending;
    void (*Apply)(TVarBase *, void *);
  };

  /// Pre-read validation + read-set registration.
  void onRead(const TVarBase *Var, uint64_t PreWord) {
    if (TVarBase::isLocked(PreWord) ||
        TVarBase::versionOf(PreWord) > ReadVersion)
      throw TxnAbort();
    ReadSet.push_back(Var);
  }

  WriteEntry *findWrite(TVarBase *Var) {
    auto It = Writes.find(Var);
    return It == Writes.end() ? nullptr : &It->second;
  }

  void addWrite(TVarBase *Var, WriteEntry Entry) {
    // Look up first: emplace may consume the moved-from entry even when
    // insertion fails, which would leave a null pending value behind.
    auto It = Writes.find(Var);
    if (It != Writes.end()) {
      It->second = std::move(Entry);
      return;
    }
    Writes.emplace(Var, std::move(Entry));
    WriteOrder.push_back(Var);
  }

  uint64_t ReadVersion;
  std::vector<const TVarBase *> ReadSet;
  std::unordered_map<TVarBase *, WriteEntry> Writes;
  std::vector<TVarBase *> WriteOrder;
};

/// Blocks the transaction until another transaction commits, then retries
/// (ScalaSTM's \c retry; the philosophers' "wait for fork" idiom).
inline void retry(Transaction &) { throw TxnRetry(); }

/// Module-internal runtime shared by all transactions.
class StmRuntime {
public:
  static StmRuntime &get();

  uint64_t clockValue() { return Clock.load(std::memory_order_acquire); }

  /// Runs the TL2 commit protocol. \returns false when validation fails.
  bool commit(Transaction &Txn);

  /// Blocks until some transaction commits (for retry support).
  void awaitCommit();

  /// Statistics counters (monotonic, for tests and reporting).
  uint64_t commits() const { return CommitCount.load(); }
  uint64_t aborts() const { return AbortCount.load(); }
  void noteAbort() { AbortCount.getAndAdd(1); }

private:
  StmRuntime() = default;

  runtime::Atomic<uint64_t> Clock{0};
  runtime::Monitor CommitMonitor;
  runtime::Atomic<uint64_t> CommitCount{0};
  runtime::Atomic<uint64_t> AbortCount{0};
};

template <typename T> T TVar<T>::get(Transaction &Txn) const {
  // Read-your-writes: a pending write shadows the committed value.
  if (Transaction::WriteEntry *W =
          Txn.findWrite(const_cast<TVar<T> *>(this)))
    return *static_cast<T *>(W->Pending.get());
  uint64_t Pre = LockWord.load(std::memory_order_acquire);
  T Result = Value.load(std::memory_order_relaxed);
  uint64_t Post = LockWord.load(std::memory_order_acquire);
  if (Pre != Post)
    throw TxnAbort();
  Txn.onRead(this, Pre);
  return Result;
}

template <typename T> void TVar<T>::set(Transaction &Txn, T NewValue) {
  Transaction::WriteEntry Entry;
  Entry.Pending = std::make_shared<T>(std::move(NewValue));
  Entry.Apply = [](TVarBase *Var, void *Pending) {
    static_cast<TVar<T> *>(Var)->Value.store(*static_cast<T *>(Pending),
                                             std::memory_order_relaxed);
  };
  Txn.addWrite(this, std::move(Entry));
}

/// Runs \p Body transactionally until it commits. \p Body receives the
/// Transaction and may call retry() to block for a consistent state change.
template <typename FnT> auto atomically(FnT Body) {
  StmRuntime &Rt = StmRuntime::get();
  for (;;) {
    Transaction Txn(Rt.clockValue());
    try {
      if constexpr (std::is_void_v<decltype(Body(Txn))>) {
        Body(Txn);
        if (Rt.commit(Txn))
          return;
      } else {
        auto Result = Body(Txn);
        if (Rt.commit(Txn))
          return Result;
      }
      Rt.noteAbort();
    } catch (const TxnAbort &) {
      Rt.noteAbort();
    } catch (const TxnRetry &) {
      Rt.awaitCommit();
    }
  }
}

} // namespace stm
} // namespace ren

#endif // REN_STM_STM_H
