//===- jit/Ir.h - Graph IR for the mini JIT ---------------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation of the mini JIT compiler used for the
/// paper's optimization experiments (§5, §6).
///
/// The paper implements its optimizations in Graal, a graph-based
/// speculative compiler. We use an SSA CFG of basic blocks — structurally
/// simpler than Graal's sea of nodes, but carrying the node kinds the seven
/// optimizations operate on: object allocation and field access, CAS,
/// monitor enter/exit, speculative guards (with the §5.5 guard taxonomy),
/// direct and method-handle invocations, instanceof checks, vectorizable
/// arithmetic, and phi-based loops.
///
/// Functions execute under a deterministic cost-model interpreter
/// (Interp.h); an optimization's "impact" is the change in modelled cycles
/// when the pass is disabled, mirroring the paper's §6 methodology.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_IR_H
#define REN_JIT_IR_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ren {
namespace jit {

class BasicBlock;
class Function;
class Module;

/// Instruction opcodes.
enum class Opcode {
  // Values.
  Const, ///< Imm = the constant.
  Param, ///< Imm = parameter index; entry block only.
  Phi,   ///< Operands paired with PhiBlocks (incoming block per value).
  // Arithmetic / logic (vectorizable).
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Min,
  Max,
  // Comparisons (produce 0/1).
  CmpLt,
  CmpLe,
  CmpEq,
  CmpNe,
  // Global-array memory (Imm = array id in the module).
  Load,  ///< Operands: [index].
  Store, ///< Operands: [index, value].
  // Objects (field count fixed per class; Imm = class id / field index).
  NewObject, ///< Imm = class id.
  GetField,  ///< Operands: [object]; Imm = field index.
  PutField,  ///< Operands: [object, value]; Imm = field index.
  Cas,       ///< Operands: [object, expected, newValue]; Imm = field index.
             ///< Result: 1 if swapped (always, single-threaded model).
  // Synchronization.
  MonitorEnter, ///< Operands: [object].
  MonitorExit,  ///< Operands: [object].
  // Vector lane extraction (LV reductions): Operands [vector]; Imm = lane.
  Extract,
  // Checks.
  Guard,      ///< Operands: [condition]; GuardInfo says which kind.
  InstanceOf, ///< Operands: [object]; Imm = class id; result 0/1.
  // Calls.
  Invoke,             ///< Imm = function id; Operands = args.
  MethodHandleInvoke, ///< Imm = method-handle id; Operands = args.
  VirtualInvoke,      ///< Operands: [receiver, args...]; Imm = method slot.
                      ///< Dispatches on the receiver's dynamic class via
                      ///< the module's virtual-method table.
  // Control flow (block terminators).
  Branch, ///< Operands: [condition]; targets TrueTarget/FalseTarget.
  Jump,   ///< Target TrueTarget.
  Return  ///< Operands: [value].
};

/// Returns a printable mnemonic.
const char *opcodeName(Opcode Op);

/// True for Branch/Jump/Return.
bool isTerminator(Opcode Op);

/// True for the arithmetic/comparison opcodes eligible for vectorization.
bool isVectorizable(Opcode Op);

/// The §5.5 guard taxonomy.
enum class GuardKind {
  BoundsCheck,
  NullCheck,
  TypeCheck,
  UnreachedCode,
  Other
};

/// Number of GuardKind values. Counter tables (the §5.5 per-kind table in
/// GuardCounts) are sized by this so a new guard kind cannot silently
/// misindex them.
inline constexpr size_t GuardKindCount =
    static_cast<size_t>(GuardKind::Other) + 1;

const char *guardKindName(GuardKind K);

/// One SSA instruction. Owned by its basic block; referenced by pointer.
class Instruction {
public:
  Instruction(Opcode Op, std::vector<Instruction *> Operands = {},
              int64_t Imm = 0)
      : Op(Op), Operands(std::move(Operands)), Imm(Imm) {}

  Opcode Op;
  std::vector<Instruction *> Operands;
  int64_t Imm = 0;

  /// For phis: the incoming block of each operand (parallel to Operands).
  /// Phis are therefore robust to predecessor-list reordering.
  std::vector<BasicBlock *> PhiBlocks;

  /// Guard metadata (Op == Guard).
  GuardKind Kind = GuardKind::Other;
  /// True once a guard has been hoisted by speculative guard motion.
  bool Speculative = false;

  /// Non-zero on guards inserted by the profile-driven speculation passes:
  /// the id of the assumption the guard checks. When such a guard fails
  /// under a deopt-enabled execution, the interpreter requests
  /// deoptimization instead of asserting (see Interp / Tiered).
  uint32_t AssumptionId = 0;

  /// >= 0 on instructions that implement a polymorphic-inline-cache test
  /// for a virtual call site: the profile site index the cache belongs
  /// to. A passing guard / taken branch with a PicSite counts as a PIC
  /// hit; a deopt on such a guard counts as a miss.
  int32_t PicSite = -1;

  /// Lanes > 1 marks a vectorized instruction (set by loop vectorization).
  unsigned Lanes = 1;

  /// Copies the per-instruction metadata that every cloning site must
  /// preserve (Imm, guard info, speculation ids, lanes). Operands, phi
  /// blocks and branch targets still need site-specific remapping.
  void copyMetaFrom(const Instruction &O) {
    Imm = O.Imm;
    Kind = O.Kind;
    Speculative = O.Speculative;
    AssumptionId = O.AssumptionId;
    PicSite = O.PicSite;
    Lanes = O.Lanes;
  }

  /// Branch targets (terminators).
  BasicBlock *TrueTarget = nullptr;
  BasicBlock *FalseTarget = nullptr;

  /// Dense value index assigned by Function::renumber().
  unsigned Index = 0;

  /// The owning block (maintained by BasicBlock::append/insert).
  BasicBlock *Parent = nullptr;

  bool isTerm() const { return isTerminator(Op); }
};

/// A basic block: straight-line instructions ending in one terminator.
class BasicBlock {
public:
  explicit BasicBlock(unsigned Id, std::string Label)
      : Id(Id), Label(std::move(Label)) {}

  unsigned Id;
  std::string Label;
  std::vector<std::unique_ptr<Instruction>> Insts;

  /// Predecessors in phi-operand order (maintained by the builder and by
  /// Function::recomputePreds).
  std::vector<BasicBlock *> Preds;

  /// Appends an instruction (terminator must come last).
  Instruction *append(std::unique_ptr<Instruction> Inst);

  /// Inserts before the instruction at position \p Pos.
  Instruction *insertAt(size_t Pos, std::unique_ptr<Instruction> Inst);

  /// The terminator, or nullptr while under construction.
  Instruction *terminator() const {
    if (Insts.empty() || !Insts.back()->isTerm())
      return nullptr;
    return Insts.back().get();
  }

  /// Successor blocks (0, 1 or 2).
  std::vector<BasicBlock *> successors() const;
};

/// A function: entry block first, SSA values, parameter count.
class Function {
public:
  Function(std::string Name, unsigned NumParams)
      : Name(std::move(Name)), NumParams(NumParams) {}

  std::string Name;
  unsigned NumParams;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Creates and appends a block.
  BasicBlock *addBlock(const std::string &Label);

  /// Recomputes predecessor lists from terminators. Invalidates phi
  /// operand order only if the CFG actually changed shape; passes that
  /// restructure control flow must fix phis themselves.
  void recomputePreds();

  /// Assigns dense instruction indices; returns the value count.
  unsigned renumber();

  /// Total instruction count (the "IR node" count of §5.4).
  unsigned instructionCount() const;

  /// Human-readable dump.
  std::string dump() const;

  /// Checks SSA/CFG invariants; returns an empty string on success or a
  /// description of the first violation.
  std::string verify() const;

private:
  unsigned NextBlockId = 0;
};

/// A class layout: number of fields.
struct ClassInfo {
  std::string Name;
  unsigned NumFields = 1;
};

/// A module: functions, classes, global arrays, method-handle table.
class Module {
public:
  /// Creates a function and returns it.
  Function *addFunction(const std::string &Name, unsigned NumParams);

  Function *function(const std::string &Name) const;
  Function *functionById(size_t Id) const {
    assert(Id < Functions.size() && "bad function id");
    return Functions[Id].get();
  }
  size_t functionId(const Function *F) const;

  /// Registers a class; returns its id.
  unsigned addClass(const std::string &Name, unsigned NumFields);
  const ClassInfo &classInfo(unsigned Id) const { return Classes[Id]; }

  /// Registers a global array with initial contents; returns its id.
  unsigned addArray(std::vector<int64_t> Initial);
  const std::vector<int64_t> &arrayInit(unsigned Id) const {
    return Arrays[Id];
  }
  size_t numArrays() const { return Arrays.size(); }

  /// Registers a method handle bound to \p Target; returns the handle id.
  unsigned addMethodHandle(Function *Target);
  Function *handleTarget(unsigned HandleId) const {
    assert(HandleId < Handles.size() && "bad handle id");
    return Handles[HandleId];
  }

  /// Binds virtual method \p Slot of class \p ClassId to \p Target.
  /// VirtualInvoke dispatches through this table on the receiver's
  /// dynamic class.
  void setVirtualTarget(unsigned ClassId, unsigned Slot, Function *Target);

  /// The bound target, or nullptr if the (class, slot) pair is unbound.
  Function *virtualTarget(unsigned ClassId, unsigned Slot) const;

  /// All classes with a binding for \p Slot (the possible receivers a
  /// compiler must consider for a megamorphic site).
  std::vector<unsigned> classesImplementing(unsigned Slot) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Deep-copies the whole module (used to compile under different
  /// configurations without mutating the source).
  std::unique_ptr<Module> clone() const;

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<ClassInfo> Classes;
  std::vector<std::vector<int64_t>> Arrays;
  std::vector<Function *> Handles;
  /// (ClassId << 32 | Slot) -> target function.
  std::unordered_map<uint64_t, Function *> VTable;
};

/// Deep-copies \p Source into \p Dest (an empty function shell with the
/// same arity). Returns the instruction mapping used for the copy.
std::unordered_map<const Instruction *, Instruction *>
cloneFunctionInto(const Function &Source, Function &Dest);

} // namespace jit
} // namespace ren

#endif // REN_JIT_IR_H
