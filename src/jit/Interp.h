//===- jit/Interp.h - Deterministic cost-model interpreter ------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes mini-JIT IR under a deterministic cycle cost model.
///
/// This is the measurement substrate for the §5/§6 experiments: a kernel is
/// compiled under some optimization configuration and then *executed* here;
/// the modelled cycle count is the quantity the impact studies compare.
/// Costs approximate the relative expense of the modelled operations on the
/// paper's hardware: a CAS is tens of cycles, monitor enter/exit more,
/// guards a couple of cycles, a polymorphic method-handle dispatch is an
/// uninlinable call, and a vector operation amortizes its lanes.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_INTERP_H
#define REN_JIT_INTERP_H

#include "jit/Ir.h"
#include "jit/Profile.h"

#include <array>
#include <string>
#include <unordered_map>

namespace ren {
namespace jit {

/// Cycle costs per modelled operation.
struct CostModel {
  uint64_t Arith = 1;
  uint64_t Compare = 1;
  uint64_t Branch = 1;
  uint64_t PhiMove = 0;
  uint64_t Load = 3;
  uint64_t Store = 3;
  uint64_t AllocBase = 24;
  uint64_t FieldAccess = 2;
  uint64_t CasOp = 30;
  uint64_t MonitorEnterOp = 40;
  uint64_t MonitorExitOp = 20;
  uint64_t GuardOp = 2;
  uint64_t InstanceOfOp = 4;
  uint64_t CallOverhead = 15;
  /// Polymorphic method-handle dispatch: lookup + uninlinable call.
  uint64_t MhDispatch = 45;
  /// A vectorized op costs one scalar op plus this per extra lane bundle.
  uint64_t VectorOverhead = 1;
  /// Per-instruction decode/dispatch overhead charged on top of the op
  /// cost when executing in the profiling interpreter tier.
  uint64_t InterpDispatch = 3;
  /// Uncached virtual dispatch: vtable load + uninlinable call (charged
  /// instead of CallOverhead, like MhDispatch).
  uint64_t VirtualDispatch = 40;
  /// Virtual dispatch through a warm inline cache: one compare + call
  /// for the monomorphic case, a short chain for the bimorphic one.
  uint64_t PicMonoHit = 8;
  uint64_t PicPolyHit = 14;
};

/// Per-guard-kind execution counters (the §5.5 table), split by whether
/// the guard was a hoisted speculative variant.
struct GuardCounts {
  std::array<uint64_t, GuardKindCount> Normal = {};      // by GuardKind
  std::array<uint64_t, GuardKindCount> Speculative = {}; // by GuardKind

  uint64_t total() const {
    uint64_t T = 0;
    for (uint64_t N : Normal)
      T += N;
    for (uint64_t N : Speculative)
      T += N;
    return T;
  }
};

/// Which execution regime an entry function runs under.
enum class ExecTier {
  /// Compiled-code cost model (the pre-tiering default): op costs only.
  Direct,
  /// The profiling interpreter: every instruction additionally pays
  /// InterpDispatch, and counters/profiles are recorded.
  Profiling,
  /// Installed optimized code: op costs like Direct, plus deoptimization
  /// on failing speculative guards and inline-cache dispatch.
  Compiled
};

/// Per-run execution options (the defaults reproduce the pre-tiering
/// behaviour exactly).
struct ExecOptions {
  ExecTier Tier = ExecTier::Direct;
  /// The module whose code runs; callees, handles and vtables resolve
  /// here. Null = the interpreter's heap module. Clones share ids, so a
  /// compiled clone can execute against the original heap.
  const Module *Code = nullptr;
  /// Profile to record into (Profiling tier only).
  ProfileData *Profile = nullptr;
  /// Runtime inline caches for VirtualInvoke sites; null = every virtual
  /// dispatch pays the full VirtualDispatch cost.
  PicSet *Pics = nullptr;
  /// When true, a failing guard carrying an AssumptionId requests
  /// deoptimization (ExecResult::Deopted) instead of asserting.
  bool AllowDeopt = false;
};

/// The outcome of executing one entry function.
struct ExecResult {
  int64_t ReturnValue = 0;
  uint64_t Cycles = 0;
  uint64_t InstructionsExecuted = 0;
  GuardCounts Guards;
  uint64_t CasExecuted = 0;
  uint64_t MonitorOps = 0;
  uint64_t Allocations = 0;
  uint64_t CallsExecuted = 0;
  uint64_t MhDispatches = 0;
  uint64_t VirtualDispatches = 0;
  /// Inline-cache dispatch outcomes (interpreter-cache hits plus
  /// devirtualized guard/branch sites in compiled code).
  uint64_t PicHits = 0;
  uint64_t PicMisses = 0;
  /// Set when a speculative guard failed under AllowDeopt. ReturnValue
  /// is meaningless; the caller must roll back and re-execute.
  bool Deopted = false;
  uint32_t DeoptAssumption = 0;
  int32_t DeoptSite = -1;
  /// Modelled cycles attributed to each function (inclusive of callees'
  /// own attribution; call overhead attributed to the caller).
  std::unordered_map<std::string, uint64_t> CyclesByFunction;
};

/// Executes IR functions of one module against fresh heap state.
class Interpreter {
public:
  explicit Interpreter(const Module &M, CostModel Costs = CostModel())
      : M(M), Costs(Costs) {}

  /// Runs \p F with \p Args. Array state persists across calls within
  /// this interpreter (module arrays are copied on construction).
  ExecResult run(const Function &F, const std::vector<int64_t> &Args);

  /// Runs \p F under explicit execution options (tier, code module,
  /// profile recording, inline caches, deopt).
  ExecResult run(const Function &F, const std::vector<int64_t> &Args,
                 const ExecOptions &Opts);

  /// Read access to a module array's current contents (for tests).
  const std::vector<int64_t> &arrayState(unsigned ArrayId);

  /// A copy of the mutable heap (arrays + objects), taken before a
  /// speculative compiled invocation so a deopt can roll back any side
  /// effects and replay the invocation in the profiling tier.
  struct HeapSnapshot {
    std::vector<std::vector<int64_t>> Arrays;
    bool ArraysInitialized = false;
    std::vector<std::vector<int64_t>> Objects;
    std::vector<unsigned> ObjectClasses;
  };
  HeapSnapshot snapshotHeap() const {
    return {Arrays, ArraysInitialized, Objects, ObjectClasses};
  }
  void restoreHeap(HeapSnapshot S) {
    Arrays = std::move(S.Arrays);
    ArraysInitialized = S.ArraysInitialized;
    Objects = std::move(S.Objects);
    ObjectClasses = std::move(S.ObjectClasses);
  }

private:
  struct Frame;

  int64_t execFunction(const Module &Code, const Function &F,
                       const std::vector<int64_t> &Args, ExecResult &Result,
                       const ExecOptions &Opts, unsigned Depth);

  const Module &M;
  CostModel Costs;
  // Heap: arrays initialized lazily from the module; objects are rows of
  // fields, ref = index + 1 (0 is null).
  std::vector<std::vector<int64_t>> Arrays;
  bool ArraysInitialized = false;
  std::vector<std::vector<int64_t>> Objects;
  std::vector<unsigned> ObjectClasses; // dynamic class of each object
};

} // namespace jit
} // namespace ren

#endif // REN_JIT_INTERP_H
