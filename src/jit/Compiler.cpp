//===- jit/Compiler.cpp ----------------------------------------------------==//

#include "jit/Compiler.h"

#include "jit/Passes.h"
#include "support/Clock.h"

using namespace ren;
using namespace ren::jit;

OptConfig OptConfig::graal() { return OptConfig(); }

OptConfig OptConfig::c2() {
  OptConfig C;
  C.Eawa = false; // no atomics support in its escape analysis
  C.BasePea = true;
  C.Llc = false;
  C.Ac = false;
  C.Mhs = false;
  C.Dbds = false;
  C.Gm = true;
  C.Lv = true;
  C.Unroll = true;
  C.InlineThreshold = 12; // conservative inlining, unlike Graal
  return C;
}

OptConfig OptConfig::graalWithout(const std::string &PassShortName) {
  OptConfig C;
  if (PassShortName == "AC")
    C.Ac = false;
  else if (PassShortName == "DS")
    C.Dbds = false;
  else if (PassShortName == "EAWA")
    C.Eawa = false; // BasePea stays on: §6 disables only the atomics part
  else if (PassShortName == "GM")
    C.Gm = false;
  else if (PassShortName == "LV")
    C.Lv = false;
  else if (PassShortName == "LLC")
    C.Llc = false;
  else if (PassShortName == "MHS")
    C.Mhs = false;
  else
    assert(false && "unknown pass short name");
  return C;
}

const std::vector<std::string> &OptConfig::passShortNames() {
  static const std::vector<std::string> Names = {"AC", "DS",  "EAWA", "GM",
                                                 "LV", "LLC", "MHS"};
  return Names;
}

uint64_t ren::jit::estimateCodeBytes(const Function &F) {
  // A frame prologue/epilogue plus ~14 bytes of machine code per IR node,
  // in the ballpark of compiled bytecode expansion on x86-64.
  return 64 + 14ull * F.instructionCount();
}

CompileStats ren::jit::compileFunction(Module &M, Function &F,
                                       const OptConfig &Config) {
  CompileStats Stats;
  Stats.FunctionName = F.Name;
  Stats.NodesBefore = F.instructionCount();

  auto runPass = [&](const char *Name, auto Body) {
    uint64_t Begin = wallNanos();
    bool Changed = Body();
    PassStat P;
    P.PassName = Name;
    P.WallNanos = wallNanos() - Begin;
    P.ChangedIr = Changed;
    Stats.Passes.push_back(P);
    if (Changed) {
      [[maybe_unused]] std::string Error = F.verify();
      assert(Error.empty() && "pass produced malformed IR");
    }
  };

  // Pipeline order mirrors the paper's description: abstraction-lowering
  // passes first (MHS + inlining + PEA), then the concurrency and loop
  // optimizations, with folding as the connective cleanup.
  runPass("ConstantFolding", [&] { return runConstantFolding(F); });
  if (Config.Mhs)
    runPass("MethodHandleSimplification",
            [&] { return runMethodHandleSimplification(M, F); });
  if (Config.Inline)
    runPass("Inlining",
            [&] { return runInliner(M, F, Config.InlineThreshold); });
  if (Config.Eawa)
    runPass("EscapeAnalysisWithAtomics",
            [&] { return runEscapeAnalysis(F, /*HandleAtomics=*/true); });
  else if (Config.BasePea)
    runPass("PartialEscapeAnalysis",
            [&] { return runEscapeAnalysis(F, /*HandleAtomics=*/false); });
  if (Config.Ac)
    runPass("AtomicCoalescing", [&] { return runAtomicCoalescing(F); });
  if (Config.Llc)
    runPass("LockCoarsening",
            [&] { return runLockCoarsening(F, Config.LlcChunk); });
  if (Config.Dbds)
    runPass("Duplication", [&] { return runDuplication(F); });
  if (Config.Gm)
    runPass("GuardMotion", [&] { return runGuardMotion(F); });
  if (Config.Lv)
    runPass("LoopVectorization",
            [&] { return runLoopVectorization(F); });
  if (Config.Unroll)
    runPass("LoopUnrolling", [&] { return runLoopUnrolling(F); });
  runPass("ConstantFolding", [&] { return runConstantFolding(F); });

  Stats.NodesAfter = F.instructionCount();
  return Stats;
}

std::vector<CompileStats> ren::jit::compileModule(Module &M,
                                                  const OptConfig &Config) {
  std::vector<CompileStats> AllStats;
  for (const auto &FPtr : M.functions())
    AllStats.push_back(compileFunction(M, *FPtr, Config));
  return AllStats;
}

std::vector<CompileStats>
ren::jit::compileFunctions(Module &M, const std::vector<std::string> &Names,
                           const OptConfig &Config) {
  std::vector<CompileStats> AllStats;
  for (const auto &FPtr : M.functions())
    for (const std::string &Name : Names)
      if (FPtr->Name == Name) {
        AllStats.push_back(compileFunction(M, *FPtr, Config));
        break;
      }
  return AllStats;
}

std::vector<std::string> ren::jit::transitiveCallees(const Module &M,
                                                     const Function &Entry) {
  std::vector<const Function *> Work{&Entry};
  std::vector<std::string> Names;
  auto push = [&](const Function *F) {
    if (!F)
      return;
    for (const std::string &N : Names)
      if (N == F->Name)
        return;
    Names.push_back(F->Name);
    Work.push_back(F);
  };
  Names.push_back(Entry.Name);
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (const auto &B : F->Blocks)
      for (const auto &I : B->Insts) {
        if (I->Op == Opcode::Invoke)
          push(M.functionById(static_cast<size_t>(I->Imm)));
        else if (I->Op == Opcode::MethodHandleInvoke)
          push(M.handleTarget(static_cast<unsigned>(I->Imm)));
        else if (I->Op == Opcode::VirtualInvoke)
          for (unsigned Cls :
               M.classesImplementing(static_cast<unsigned>(I->Imm)))
            push(M.virtualTarget(Cls, static_cast<unsigned>(I->Imm)));
      }
  }
  return Names;
}
