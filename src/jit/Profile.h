//===- jit/Profile.h - Execution profiles for tiered compilation -*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data the profiling interpreter tier records and the speculative
/// passes consume, plus the runtime polymorphic-inline-cache state used
/// when executing VirtualInvoke sites.
///
/// Profile sites are keyed by the instruction's renumber() index in the
/// *unoptimized* function. That key survives module cloning because
/// clone() preserves block and instruction order, and the speculation
/// passes renumber a fresh clone of the profiled IR before rewriting it.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_PROFILE_H
#define REN_JIT_PROFILE_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ren {
namespace jit {

class Function;

/// Taken/not-taken counts for one Branch site.
struct BranchProfile {
  uint64_t Taken = 0;
  uint64_t NotTaken = 0;
  uint64_t total() const { return Taken + NotTaken; }
};

/// Receiver classes observed at one VirtualInvoke site.
struct ReceiverProfile {
  std::unordered_map<unsigned, uint64_t> Counts; ///< class id -> times seen
  uint64_t total() const;
  /// (class id, count) pairs sorted by descending count with class-id
  /// tie-break — a deterministic input for the devirtualization pass.
  std::vector<std::pair<unsigned, uint64_t>> sorted() const;
};

/// Everything the profiling tier records about one function.
struct FunctionProfile {
  uint64_t Invocations = 0;
  /// Loop-edge executions summed over all loops in the function — the
  /// "hot loop in a cold method" tier-up trigger.
  uint64_t Backedges = 0;
  std::unordered_map<unsigned, BranchProfile> Branches;
  std::unordered_map<unsigned, ReceiverProfile> VirtualSites;
};

/// Profiles for the functions of one module, keyed by function name
/// (names are stable across module clones).
class ProfileData {
public:
  FunctionProfile &forFunction(const std::string &Name) {
    return Functions[Name];
  }
  const FunctionProfile *lookup(const std::string &Name) const;
  void clear() { Functions.clear(); }

private:
  std::unordered_map<std::string, FunctionProfile> Functions;
};

/// One polymorphic inline cache: up to two cached (receiver class ->
/// target) entries. More distinct receivers than entries = megamorphic;
/// the cache stops filling and every further miss pays the full vtable
/// dispatch.
struct PicState {
  struct Entry {
    unsigned ClassId = 0;
    const Function *Target = nullptr;
    bool Valid = false;
  };
  std::array<Entry, 2> Entries;
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  unsigned numValid() const;
  const Function *lookup(unsigned ClassId) const;
  /// Installs a mapping if a slot is free; returns false when the cache
  /// is already full (megamorphic).
  bool install(unsigned ClassId, const Function *Target);
};

/// Inline caches for all (function, site) pairs of one installed code
/// version. Must be cleared whenever new code is installed: cached
/// targets point into the module they were filled from.
class PicSet {
public:
  PicState &site(const std::string &FunctionName, unsigned SiteIndex) {
    return Sites[FunctionName][SiteIndex];
  }
  const PicState *lookup(const std::string &FunctionName,
                         unsigned SiteIndex) const;
  uint64_t totalHits() const;
  uint64_t totalMisses() const;
  void clear() { Sites.clear(); }

private:
  std::unordered_map<std::string, std::unordered_map<unsigned, PicState>>
      Sites;
};

} // namespace jit
} // namespace ren

#endif // REN_JIT_PROFILE_H
