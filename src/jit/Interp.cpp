//===- jit/Interp.cpp ------------------------------------------------------==//

#include "jit/Interp.h"

#include <algorithm>
#include <array>

using namespace ren;
using namespace ren::jit;

namespace {

constexpr unsigned kMaxCallDepth = 64;

/// Two's-complement wrapping arithmetic (Java long semantics).
int64_t wrapAdd(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) +
                              static_cast<uint64_t>(R));
}
int64_t wrapSub(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) -
                              static_cast<uint64_t>(R));
}
int64_t wrapMul(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) *
                              static_cast<uint64_t>(R));
}

int64_t evalBinary(Opcode Op, int64_t L, int64_t R) {
  switch (Op) {
  case Opcode::Add:
    return wrapAdd(L, R);
  case Opcode::Sub:
    return wrapSub(L, R);
  case Opcode::Mul:
    return wrapMul(L, R);
  case Opcode::Div:
    return R == 0 ? 0 : L / R;
  case Opcode::And:
    return L & R;
  case Opcode::Or:
    return L | R;
  case Opcode::Xor:
    return L ^ R;
  case Opcode::Shl:
    return L << (R & 63);
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(L) >> (R & 63));
  case Opcode::Min:
    return std::min(L, R);
  case Opcode::Max:
    return std::max(L, R);
  case Opcode::CmpLt:
    return L < R ? 1 : 0;
  case Opcode::CmpLe:
    return L <= R ? 1 : 0;
  case Opcode::CmpEq:
    return L == R ? 1 : 0;
  case Opcode::CmpNe:
    return L != R ? 1 : 0;
  default:
    assert(false && "not a binary op");
    return 0;
  }
}

} // namespace

const std::vector<int64_t> &Interpreter::arrayState(unsigned ArrayId) {
  if (!ArraysInitialized) {
    for (size_t I = 0; I < M.numArrays(); ++I)
      Arrays.push_back(M.arrayInit(static_cast<unsigned>(I)));
    ArraysInitialized = true;
  }
  assert(ArrayId < Arrays.size() && "bad array id");
  return Arrays[ArrayId];
}

ExecResult Interpreter::run(const Function &F,
                            const std::vector<int64_t> &Args) {
  return run(F, Args, ExecOptions());
}

ExecResult Interpreter::run(const Function &F,
                            const std::vector<int64_t> &Args,
                            const ExecOptions &Opts) {
  if (!ArraysInitialized) {
    for (size_t I = 0; I < M.numArrays(); ++I)
      Arrays.push_back(M.arrayInit(static_cast<unsigned>(I)));
    ArraysInitialized = true;
  }
  const Module &Code = Opts.Code ? *Opts.Code : M;
  ExecResult Result;
  Result.ReturnValue = execFunction(Code, F, Args, Result, Opts, 0);
  return Result;
}

int64_t Interpreter::execFunction(const Module &Code, const Function &F,
                                  const std::vector<int64_t> &Args,
                                  ExecResult &Result,
                                  const ExecOptions &Opts, unsigned Depth) {
  assert(Depth < kMaxCallDepth && "call depth exceeded");
  assert(Args.size() == F.NumParams && "argument count mismatch");

  // Register file indexed by instruction renumbering. The const_cast is
  // confined to renumber(): executing does not mutate the IR otherwise.
  unsigned NumValues = const_cast<Function &>(F).renumber();
  std::vector<int64_t> Regs(NumValues, 0);
  // Lane storage for vectorized instructions (Lanes == 4). Scalar
  // consumers of a vector value see lane 0 via Regs.
  std::vector<std::array<int64_t, 4>> VRegs(NumValues, {0, 0, 0, 0});
  uint64_t &FnCycles = Result.CyclesByFunction[F.Name];

  auto readLane = [&](const Instruction *Operand, unsigned Lane) {
    return Operand->Lanes > 1 ? VRegs[Operand->Index][Lane]
                              : Regs[Operand->Index];
  };

  auto charge = [&](uint64_t Cycles) {
    Result.Cycles += Cycles;
    FnCycles += Cycles;
  };

  // Profiling-tier bookkeeping: record into the profile (if any) and pay
  // the per-instruction interpreter dispatch overhead.
  const bool Interpreted = Opts.Tier == ExecTier::Profiling;
  FunctionProfile *Prof =
      Interpreted && Opts.Profile ? &Opts.Profile->forFunction(F.Name)
                                  : nullptr;
  if (Prof)
    ++Prof->Invocations;

  // Inline-cache crediting for devirtualized sites in compiled code: a
  // guard or branch carrying a PicSite counts dispatch outcomes.
  auto creditPicHit = [&](const Instruction *I) {
    ++Result.PicHits;
    if (Opts.Pics)
      ++Opts.Pics->site(F.Name, static_cast<unsigned>(I->PicSite)).Hits;
  };
  auto creditPicMiss = [&](const Instruction *I) {
    ++Result.PicMisses;
    if (Opts.Pics)
      ++Opts.Pics->site(F.Name, static_cast<unsigned>(I->PicSite)).Misses;
  };

  const BasicBlock *Block = F.entry();
  const BasicBlock *PrevBlock = nullptr;

  for (;;) {
    // Phase 1: evaluate all phis in parallel against PrevBlock.
    size_t FirstNonPhi = 0;
    {
      std::vector<std::tuple<unsigned, int64_t, std::array<int64_t, 4>>>
          PhiWrites;
      for (const auto &I : Block->Insts) {
        if (I->Op != Opcode::Phi)
          break;
        ++FirstNonPhi;
        assert(PrevBlock && "phi in entry block");
        const Instruction *Incoming = nullptr;
        for (size_t K = 0; K < I->PhiBlocks.size(); ++K) {
          if (I->PhiBlocks[K] == PrevBlock) {
            Incoming = I->Operands[K];
            break;
          }
        }
        assert(Incoming && "phi has no incoming value for predecessor");
        std::array<int64_t, 4> Vec = {0, 0, 0, 0};
        if (I->Lanes > 1)
          for (unsigned L = 0; L < 4; ++L)
            Vec[L] = readLane(Incoming, L);
        PhiWrites.push_back({I->Index, Regs[Incoming->Index], Vec});
        charge(Costs.PhiMove);
        if (Interpreted)
          charge(Costs.InterpDispatch);
        ++Result.InstructionsExecuted;
      }
      for (auto &[Index, Value, Vec] : PhiWrites) {
        Regs[Index] = Value;
        VRegs[Index] = Vec;
      }
    }

    // Phase 2: straight-line execution.
    for (size_t Pos = FirstNonPhi; Pos < Block->Insts.size(); ++Pos) {
      const Instruction *I = Block->Insts[Pos].get();
      ++Result.InstructionsExecuted;
      if (Interpreted)
        charge(Costs.InterpDispatch);
      switch (I->Op) {
      case Opcode::Const:
        Regs[I->Index] = I->Imm;
        break;
      case Opcode::Param:
        Regs[I->Index] = Args[static_cast<size_t>(I->Imm)];
        break;
      case Opcode::Phi:
        assert(false && "phi after non-phi");
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Min:
      case Opcode::Max: {
        if (I->Lanes > 1) {
          for (unsigned L = 0; L < 4; ++L)
            VRegs[I->Index][L] = evalBinary(I->Op, readLane(I->Operands[0], L),
                                            readLane(I->Operands[1], L));
          Regs[I->Index] = VRegs[I->Index][0];
          charge(Costs.Arith + Costs.VectorOverhead);
        } else {
          Regs[I->Index] = evalBinary(I->Op, Regs[I->Operands[0]->Index],
                                      Regs[I->Operands[1]->Index]);
          charge(Costs.Arith);
        }
        break;
      }
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
        Regs[I->Index] = evalBinary(I->Op, Regs[I->Operands[0]->Index],
                                    Regs[I->Operands[1]->Index]);
        charge(Costs.Compare);
        break;
      case Opcode::Load: {
        auto &Array = Arrays[static_cast<size_t>(I->Imm)];
        uint64_t Index =
            static_cast<uint64_t>(Regs[I->Operands[0]->Index]);
        if (I->Lanes > 1) {
          assert(Index + 3 < Array.size() && "vector load out of bounds");
          for (unsigned L = 0; L < 4; ++L)
            VRegs[I->Index][L] = Array[Index + L];
          Regs[I->Index] = VRegs[I->Index][0];
          charge(Costs.Load + Costs.VectorOverhead);
        } else {
          assert(Index < Array.size() && "load out of bounds");
          Regs[I->Index] = Array[Index];
          charge(Costs.Load);
        }
        break;
      }
      case Opcode::Store: {
        auto &Array = Arrays[static_cast<size_t>(I->Imm)];
        uint64_t Index =
            static_cast<uint64_t>(Regs[I->Operands[0]->Index]);
        if (I->Lanes > 1) {
          assert(Index + 3 < Array.size() && "vector store out of bounds");
          for (unsigned L = 0; L < 4; ++L)
            Array[Index + L] = readLane(I->Operands[1], L);
          charge(Costs.Store + Costs.VectorOverhead);
        } else {
          assert(Index < Array.size() && "store out of bounds");
          Array[Index] = Regs[I->Operands[1]->Index];
          charge(Costs.Store);
        }
        break;
      }
      case Opcode::NewObject: {
        const ClassInfo &C = M.classInfo(static_cast<unsigned>(I->Imm));
        Objects.emplace_back(C.NumFields, 0);
        ObjectClasses.push_back(static_cast<unsigned>(I->Imm));
        Regs[I->Index] = static_cast<int64_t>(Objects.size());
        charge(Costs.AllocBase + C.NumFields * Costs.FieldAccess);
        ++Result.Allocations;
        break;
      }
      case Opcode::GetField: {
        int64_t Ref = Regs[I->Operands[0]->Index];
        assert(Ref > 0 && "null dereference");
        Regs[I->Index] =
            Objects[static_cast<size_t>(Ref - 1)]
                   [static_cast<size_t>(I->Imm)];
        charge(Costs.FieldAccess);
        break;
      }
      case Opcode::PutField: {
        int64_t Ref = Regs[I->Operands[0]->Index];
        assert(Ref > 0 && "null dereference");
        Objects[static_cast<size_t>(Ref - 1)][static_cast<size_t>(I->Imm)] =
            Regs[I->Operands[1]->Index];
        charge(Costs.FieldAccess);
        break;
      }
      case Opcode::Cas: {
        int64_t Ref = Regs[I->Operands[0]->Index];
        assert(Ref > 0 && "null dereference");
        auto &Field =
            Objects[static_cast<size_t>(Ref - 1)]
                   [static_cast<size_t>(I->Imm)];
        int64_t Expected = Regs[I->Operands[1]->Index];
        int64_t NewValue = Regs[I->Operands[2]->Index];
        if (Field == Expected) {
          Field = NewValue;
          Regs[I->Index] = 1;
        } else {
          Regs[I->Index] = 0;
        }
        charge(Costs.CasOp);
        ++Result.CasExecuted;
        break;
      }
      case Opcode::Extract: {
        const Instruction *Src = I->Operands[0];
        Regs[I->Index] = Src->Lanes > 1
                             ? VRegs[Src->Index][static_cast<size_t>(I->Imm)]
                             : Regs[Src->Index];
        charge(Costs.Arith);
        break;
      }
      case Opcode::MonitorEnter:
        charge(Costs.MonitorEnterOp);
        ++Result.MonitorOps;
        break;
      case Opcode::MonitorExit:
        charge(Costs.MonitorExitOp);
        ++Result.MonitorOps;
        break;
      case Opcode::Guard: {
        int64_t Cond = Regs[I->Operands[0]->Index];
        if (Cond == 0) {
          // Only profile-driven speculative guards may fail, and only
          // under an execution that is prepared to deoptimize.
          assert(Opts.AllowDeopt && I->AssumptionId != 0 &&
                 "guard failed (non-speculative guards never deoptimize)");
          charge(Costs.GuardOp);
          Result.Deopted = true;
          Result.DeoptAssumption = I->AssumptionId;
          Result.DeoptSite = I->PicSite;
          if (I->PicSite >= 0)
            creditPicMiss(I);
          return 0;
        }
        auto &Slot = I->Speculative
                         ? Result.Guards.Speculative
                         : Result.Guards.Normal;
        ++Slot[static_cast<size_t>(I->Kind)];
        charge(Costs.GuardOp);
        if (I->PicSite >= 0)
          creditPicHit(I);
        Regs[I->Index] = 1;
        break;
      }
      case Opcode::InstanceOf: {
        // Objects carry the class id recorded at allocation.
        int64_t Ref = Regs[I->Operands[0]->Index];
        Regs[I->Index] =
            Ref > 0 && ObjectClasses[static_cast<size_t>(Ref - 1)] ==
                           static_cast<unsigned>(I->Imm)
                ? 1
                : 0;
        charge(Costs.InstanceOfOp);
        break;
      }
      case Opcode::Invoke: {
        const Function *Callee =
            Code.functionById(static_cast<size_t>(I->Imm));
        std::vector<int64_t> CallArgs;
        CallArgs.reserve(I->Operands.size());
        for (const Instruction *A : I->Operands)
          CallArgs.push_back(Regs[A->Index]);
        charge(Costs.CallOverhead);
        ++Result.CallsExecuted;
        Regs[I->Index] =
            execFunction(Code, *Callee, CallArgs, Result, Opts, Depth + 1);
        if (Result.Deopted)
          return 0;
        break;
      }
      case Opcode::MethodHandleInvoke: {
        const Function *Callee =
            Code.handleTarget(static_cast<unsigned>(I->Imm));
        std::vector<int64_t> CallArgs;
        CallArgs.reserve(I->Operands.size());
        for (const Instruction *A : I->Operands)
          CallArgs.push_back(Regs[A->Index]);
        charge(Costs.MhDispatch);
        ++Result.MhDispatches;
        Regs[I->Index] =
            execFunction(Code, *Callee, CallArgs, Result, Opts, Depth + 1);
        if (Result.Deopted)
          return 0;
        break;
      }
      case Opcode::VirtualInvoke: {
        int64_t Ref = Regs[I->Operands[0]->Index];
        assert(Ref > 0 && "virtual dispatch on null receiver");
        unsigned Cls = ObjectClasses[static_cast<size_t>(Ref - 1)];
        if (Prof)
          ++Prof->VirtualSites[I->Index].Counts[Cls];
        const Function *Callee = nullptr;
        if (Opts.Pics) {
          // Dispatch through the site's runtime inline cache, keyed by
          // the stable profile site id when the compiler tagged one.
          unsigned SiteKey = I->PicSite >= 0
                                 ? static_cast<unsigned>(I->PicSite)
                                 : I->Index;
          PicState &P = Opts.Pics->site(F.Name, SiteKey);
          Callee = P.lookup(Cls);
          if (Callee) {
            charge(P.numValid() <= 1 ? Costs.PicMonoHit : Costs.PicPolyHit);
            ++P.Hits;
            ++Result.PicHits;
          } else {
            Callee = Code.virtualTarget(Cls, static_cast<unsigned>(I->Imm));
            assert(Callee && "no virtual target for receiver class");
            charge(Costs.VirtualDispatch);
            ++P.Misses;
            ++Result.PicMisses;
            P.install(Cls, Callee); // no-op once megamorphic
          }
        } else {
          Callee = Code.virtualTarget(Cls, static_cast<unsigned>(I->Imm));
          assert(Callee && "no virtual target for receiver class");
          charge(Costs.VirtualDispatch);
        }
        std::vector<int64_t> CallArgs;
        CallArgs.reserve(I->Operands.size());
        for (const Instruction *A : I->Operands)
          CallArgs.push_back(Regs[A->Index]);
        ++Result.CallsExecuted;
        ++Result.VirtualDispatches;
        Regs[I->Index] =
            execFunction(Code, *Callee, CallArgs, Result, Opts, Depth + 1);
        if (Result.Deopted)
          return 0;
        break;
      }
      case Opcode::Branch: {
        charge(Costs.Branch);
        bool Taken = Regs[I->Operands[0]->Index] != 0;
        if (Prof) {
          auto &BP = Prof->Branches[I->Index];
          ++(Taken ? BP.Taken : BP.NotTaken);
        }
        if (Taken && I->PicSite >= 0)
          creditPicHit(I);
        PrevBlock = Block;
        Block = Taken ? I->TrueTarget : I->FalseTarget;
        // Block ids follow creation order and loop headers precede their
        // bodies, so an edge to an earlier (or same) block is a backedge.
        if (Prof && Block->Id <= PrevBlock->Id)
          ++Prof->Backedges;
        goto nextBlock;
      }
      case Opcode::Jump:
        charge(Costs.Branch);
        PrevBlock = Block;
        Block = I->TrueTarget;
        if (Prof && Block->Id <= PrevBlock->Id)
          ++Prof->Backedges;
        goto nextBlock;
      case Opcode::Return:
        return Regs[I->Operands[0]->Index];
      }
    }
    assert(false && "fell off the end of a block");
  nextBlock:;
  }
}
