//===- jit/Passes.cpp - Implementations of the §5 optimizations -----------==//

#include "jit/Passes.h"

#include "jit/Analysis.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace ren;
using namespace ren::jit;

//===----------------------------------------------------------------------===//
// Shared utilities
//===----------------------------------------------------------------------===//

namespace {

/// Replaces every use of \p Old with \p New across the function.
void replaceAllUses(Function &F, Instruction *Old, Instruction *New) {
  for (auto &B : F.Blocks)
    for (auto &I : B->Insts)
      for (Instruction *&Operand : I->Operands)
        if (Operand == Old)
          Operand = New;
}

/// True if the instruction has no side effects and its value can be
/// recomputed freely.
bool isPure(const Instruction *I) {
  switch (I->Op) {
  case Opcode::Const:
  case Opcode::Param:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::InstanceOf:
  case Opcode::Extract:
  case Opcode::Phi:
    return true;
  default:
    return false;
  }
}

/// Collects the set of instructions that are used as an operand anywhere.
std::unordered_set<const Instruction *> collectUsed(const Function &F) {
  std::unordered_set<const Instruction *> Used;
  for (const auto &B : F.Blocks)
    for (const auto &I : B->Insts)
      for (const Instruction *Operand : I->Operands)
        Used.insert(Operand);
  return Used;
}

/// Removes blocks unreachable from the entry; fixes phis of survivors.
bool removeUnreachableBlocks(Function &F) {
  std::unordered_set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work = {F.entry()};
  Reachable.insert(F.entry());
  while (!Work.empty()) {
    BasicBlock *B = Work.back();
    Work.pop_back();
    for (BasicBlock *S : B->successors())
      if (Reachable.insert(S).second)
        Work.push_back(S);
  }
  if (Reachable.size() == F.Blocks.size())
    return false;
  // Drop phi incomings that reference dying blocks.
  for (auto &B : F.Blocks) {
    if (!Reachable.count(B.get()))
      continue;
    for (auto &I : B->Insts) {
      if (I->Op != Opcode::Phi)
        break;
      for (size_t K = I->PhiBlocks.size(); K-- > 0;) {
        if (!Reachable.count(I->PhiBlocks[K])) {
          I->PhiBlocks.erase(I->PhiBlocks.begin() +
                             static_cast<ptrdiff_t>(K));
          I->Operands.erase(I->Operands.begin() +
                            static_cast<ptrdiff_t>(K));
        }
      }
    }
  }
  F.Blocks.erase(std::remove_if(F.Blocks.begin(), F.Blocks.end(),
                                [&](const std::unique_ptr<BasicBlock> &B) {
                                  return !Reachable.count(B.get());
                                }),
                 F.Blocks.end());
  F.recomputePreds();
  return true;
}

/// Replaces single-incoming phis with their value and erases them.
bool simplifyTrivialPhis(Function &F) {
  bool Changed = false;
  for (auto &B : F.Blocks) {
    for (auto It = B->Insts.begin(); It != B->Insts.end();) {
      Instruction *I = It->get();
      if (I->Op != Opcode::Phi || I->Operands.size() != 1) {
        ++It;
        continue;
      }
      replaceAllUses(F, I, I->Operands[0]);
      It = B->Insts.erase(It);
      Changed = true;
    }
  }
  return Changed;
}

/// Erases pure instructions with no uses.
bool eraseDeadInstructions(Function &F) {
  bool Changed = false;
  for (;;) {
    auto Used = collectUsed(F);
    bool Round = false;
    for (auto &B : F.Blocks) {
      for (auto It = B->Insts.begin(); It != B->Insts.end();) {
        Instruction *I = It->get();
        if (!I->isTerm() && isPure(I) && !Used.count(I)) {
          It = B->Insts.erase(It);
          Round = true;
        } else {
          ++It;
        }
      }
    }
    Changed |= Round;
    if (!Round)
      return Changed;
  }
}

/// Two's-complement wrapping arithmetic, matching the interpreter's
/// Java-long semantics exactly (folding must not change results).
int64_t wrapAdd(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) +
                              static_cast<uint64_t>(R));
}
int64_t wrapSub(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) -
                              static_cast<uint64_t>(R));
}
int64_t wrapMul(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) *
                              static_cast<uint64_t>(R));
}

int64_t foldBinary(Opcode Op, int64_t L, int64_t R) {
  switch (Op) {
  case Opcode::Add:
    return wrapAdd(L, R);
  case Opcode::Sub:
    return wrapSub(L, R);
  case Opcode::Mul:
    return wrapMul(L, R);
  case Opcode::Div:
    return R == 0 ? 0 : L / R;
  case Opcode::And:
    return L & R;
  case Opcode::Or:
    return L | R;
  case Opcode::Xor:
    return L ^ R;
  case Opcode::Shl:
    return L << (R & 63);
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(L) >> (R & 63));
  case Opcode::Min:
    return std::min(L, R);
  case Opcode::Max:
    return std::max(L, R);
  case Opcode::CmpLt:
    return L < R ? 1 : 0;
  case Opcode::CmpLe:
    return L <= R ? 1 : 0;
  case Opcode::CmpEq:
    return L == R ? 1 : 0;
  case Opcode::CmpNe:
    return L != R ? 1 : 0;
  default:
    assert(false && "not foldable");
    return 0;
  }
}

bool isBinaryArith(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
    return true;
  default:
    return false;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Constant folding + branch folding
//===----------------------------------------------------------------------===//

bool ren::jit::runConstantFolding(Function &F) {
  bool ChangedAny = false;
  for (;;) {
    bool Changed = false;
    for (auto &B : F.Blocks) {
      for (auto &IPtr : B->Insts) {
        Instruction *I = IPtr.get();
        if (!isBinaryArith(I->Op) || I->Lanes > 1)
          continue;
        Instruction *L = I->Operands[0];
        Instruction *R = I->Operands[1];
        bool Fold = false;
        int64_t Value = 0;
        if (L->Op == Opcode::Const && R->Op == Opcode::Const) {
          Value = foldBinary(I->Op, L->Imm, R->Imm);
          Fold = true;
        } else if (L == R && I->Op == Opcode::CmpEq) {
          Value = 1;
          Fold = true;
        } else if (L == R && I->Op == Opcode::CmpNe) {
          Value = 0;
          Fold = true;
        } else if (I->Op == Opcode::Add && R->Op == Opcode::Const &&
                   R->Imm == 0) {
          // x + 0 -> x (reuse as identity rewrite rather than constant).
          replaceAllUses(F, I, L);
          Changed = true;
          continue;
        } else if (I->Op == Opcode::Mul && R->Op == Opcode::Const &&
                   R->Imm == 1) {
          replaceAllUses(F, I, L);
          Changed = true;
          continue;
        }
        if (Fold) {
          I->Op = Opcode::Const;
          I->Operands.clear();
          I->Imm = Value;
          Changed = true;
        }
      }
      // Branch on constant -> jump.
      Instruction *Term = B->terminator();
      if (Term && Term->Op == Opcode::Branch &&
          Term->Operands[0]->Op == Opcode::Const) {
        BasicBlock *Target = Term->Operands[0]->Imm != 0 ? Term->TrueTarget
                                                         : Term->FalseTarget;
        BasicBlock *Dropped = Term->Operands[0]->Imm != 0
                                  ? Term->FalseTarget
                                  : Term->TrueTarget;
        Term->Op = Opcode::Jump;
        Term->Operands.clear();
        Term->TrueTarget = Target;
        Term->FalseTarget = nullptr;
        // The dropped edge disappears: fix the target's phis if it
        // remains reachable through other edges.
        for (auto &I : Dropped->Insts) {
          if (I->Op != Opcode::Phi)
            break;
          for (size_t K = I->PhiBlocks.size(); K-- > 0;)
            if (I->PhiBlocks[K] == B.get()) {
              I->PhiBlocks.erase(I->PhiBlocks.begin() +
                                 static_cast<ptrdiff_t>(K));
              I->Operands.erase(I->Operands.begin() +
                                static_cast<ptrdiff_t>(K));
            }
        }
        Changed = true;
      }
    }
    if (Changed)
      F.recomputePreds();
    Changed |= removeUnreachableBlocks(F);
    Changed |= simplifyTrivialPhis(F);
    Changed |= eraseDeadInstructions(F);
    ChangedAny |= Changed;
    if (!Changed)
      return ChangedAny;
  }
}

//===----------------------------------------------------------------------===//
// Inliner
//===----------------------------------------------------------------------===//

namespace {

/// Splits \p B after position \p Pos; returns the continuation block
/// containing the instructions after \p Pos. Successor phis are retargeted
/// to the continuation.
BasicBlock *splitBlockAfter(Function &F, BasicBlock *B, size_t Pos) {
  BasicBlock *Cont = F.addBlock(B->Label + ".cont");
  for (size_t I = Pos + 1; I < B->Insts.size(); ++I) {
    B->Insts[I]->Parent = Cont;
    Cont->Insts.push_back(std::move(B->Insts[I]));
  }
  B->Insts.resize(Pos + 1);
  // Successor phis that referenced B now see Cont.
  for (BasicBlock *S : Cont->successors())
    for (auto &I : S->Insts) {
      if (I->Op != Opcode::Phi)
        break;
      for (BasicBlock *&In : I->PhiBlocks)
        if (In == B)
          In = Cont;
    }
  return Cont;
}

} // namespace

bool ren::jit::runInliner(Module &M, Function &F,
                          unsigned MaxCalleeInsts) {
  bool Changed = false;
  // Restart the scan whenever we inline (the block list mutates).
  for (bool Progress = true; Progress;) {
    Progress = false;
    for (auto &BPtr : F.Blocks) {
      BasicBlock *B = BPtr.get();
      for (size_t Pos = 0; Pos < B->Insts.size(); ++Pos) {
        Instruction *Call = B->Insts[Pos].get();
        if (Call->Op != Opcode::Invoke)
          continue;
        Function *Callee = M.functionById(static_cast<size_t>(Call->Imm));
        if (Callee == &F || Callee->instructionCount() > MaxCalleeInsts)
          continue;

        // 1. Split the call block; the call stays last in B for now.
        BasicBlock *Cont = splitBlockAfter(F, B, Pos);

        // 2. Clone the callee body into this function.
        Function Temp("inlined." + Callee->Name, Callee->NumParams);
        std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
        std::unordered_map<const Instruction *, Instruction *> InstMap;
        for (const auto &CB : Callee->Blocks)
          BlockMap[CB.get()] =
              F.addBlock(Callee->Name + "." + CB->Label);
        for (const auto &CB : Callee->Blocks) {
          BasicBlock *NB = BlockMap[CB.get()];
          for (const auto &CI : CB->Insts) {
            auto NI = std::make_unique<Instruction>(CI->Op);
            NI->copyMetaFrom(*CI);
            if (CI->TrueTarget)
              NI->TrueTarget = BlockMap[CI->TrueTarget];
            if (CI->FalseTarget)
              NI->FalseTarget = BlockMap[CI->FalseTarget];
            for (BasicBlock *In : CI->PhiBlocks)
              NI->PhiBlocks.push_back(BlockMap.at(In));
            InstMap[CI.get()] = NB->append(std::move(NI));
          }
        }
        for (const auto &CB : Callee->Blocks)
          for (const auto &CI : CB->Insts)
            for (Instruction *Operand : CI->Operands)
              InstMap.at(CI.get())->Operands.push_back(InstMap.at(Operand));

        // 3. Rewrite cloned params to the call arguments and returns to
        // jumps into the continuation, collecting return values.
        std::vector<std::pair<BasicBlock *, Instruction *>> Returns;
        for (const auto &CB : Callee->Blocks) {
          BasicBlock *NB = BlockMap[CB.get()];
          for (auto &NI : NB->Insts) {
            if (NI->Op == Opcode::Param) {
              replaceAllUses(F, NI.get(),
                             Call->Operands[static_cast<size_t>(NI->Imm)]);
              NI->Op = Opcode::Const; // neutralized; DCE removes it
              NI->Imm = 0;
              NI->Operands.clear();
            } else if (NI->Op == Opcode::Return) {
              Returns.push_back({NB, NI->Operands[0]});
              NI->Op = Opcode::Jump;
              NI->Operands.clear();
              NI->TrueTarget = Cont;
            }
          }
        }
        assert(!Returns.empty() && "callee had no return");

        // 4. Merge the return value: single return feeds directly, multiple
        // returns go through a phi at the continuation head.
        Instruction *ResultValue = nullptr;
        if (Returns.size() == 1) {
          ResultValue = Returns[0].second;
        } else {
          auto Phi = std::make_unique<Instruction>(Opcode::Phi);
          for (auto &[RB, RV] : Returns) {
            Phi->Operands.push_back(RV);
            Phi->PhiBlocks.push_back(RB);
          }
          ResultValue = Cont->insertAt(0, std::move(Phi));
        }
        replaceAllUses(F, Call, ResultValue);

        // 5. Replace the call with a jump into the inlined entry.
        Call->Op = Opcode::Jump;
        Call->Operands.clear();
        Call->Imm = 0;
        Call->TrueTarget = BlockMap[Callee->entry()];

        F.recomputePreds();
        Progress = true;
        Changed = true;
        break;
      }
      if (Progress)
        break;
    }
  }
  if (Changed)
    runConstantFolding(F);
  return Changed;
}

//===----------------------------------------------------------------------===//
// §5.4 Method-handle simplification
//===----------------------------------------------------------------------===//

bool ren::jit::runMethodHandleSimplification(Module &M, Function &F) {
  bool Changed = false;
  for (auto &B : F.Blocks)
    for (auto &I : B->Insts) {
      if (I->Op != Opcode::MethodHandleInvoke)
        continue;
      // The handle id is a compile-time constant: resolve it through the
      // JVMCI-style handle table to the target method and devirtualize.
      Function *Target = M.handleTarget(static_cast<unsigned>(I->Imm));
      I->Op = Opcode::Invoke;
      I->Imm = static_cast<int64_t>(M.functionId(Target));
      Changed = true;
    }
  return Changed;
}

//===----------------------------------------------------------------------===//
// §5.1 Escape analysis with atomic operations
//===----------------------------------------------------------------------===//

bool ren::jit::runEscapeAnalysis(Function &F, bool HandleAtomics) {
  bool Changed = false;
  for (auto &BPtr : F.Blocks) {
    BasicBlock *B = BPtr.get();
    // Find allocations in this block whose every use is a same-block field
    // operation on the allocated object itself.
    for (size_t Pos = 0; Pos < B->Insts.size(); ++Pos) {
      Instruction *Alloc = B->Insts[Pos].get();
      if (Alloc->Op != Opcode::NewObject)
        continue;
      bool Escapes = false;
      bool HasCas = false;
      for (auto &OB : F.Blocks)
        for (auto &U : OB->Insts) {
          for (size_t OperandIdx = 0; OperandIdx < U->Operands.size();
               ++OperandIdx) {
            if (U->Operands[OperandIdx] != Alloc)
              continue;
            bool SameBlock = U->Parent == B;
            switch (U->Op) {
            case Opcode::GetField:
              Escapes |= !SameBlock;
              break;
            case Opcode::PutField:
              // Storing the object *into* another object escapes it.
              Escapes |= !SameBlock || OperandIdx == 1;
              break;
            case Opcode::Cas:
              HasCas = true;
              // As the CASed location's holder it can be scalarized; as a
              // value operand it escapes.
              Escapes |= !SameBlock || OperandIdx != 0;
              break;
            case Opcode::InstanceOf:
              break; // folds away; treated as non-escaping use
            default:
              Escapes = true; // calls, stores elsewhere, returns, phis...
            }
          }
        }
      if (Escapes || (HasCas && !HandleAtomics))
        continue;

      // Scalar replacement: walk the block tracking per-field SSA values.
      unsigned NumFields = 4; // conservative upper bound; fields tracked
                              // lazily below
      std::vector<Instruction *> FieldValues(NumFields, nullptr);
      auto fieldValue = [&](size_t FieldIdx, size_t AtPos) -> Instruction * {
        if (FieldValues[FieldIdx])
          return FieldValues[FieldIdx];
        // Unwritten field reads as 0: materialize a constant before use.
        auto Zero = std::make_unique<Instruction>(Opcode::Const);
        Zero->Imm = 0;
        Instruction *Z = B->insertAt(AtPos, std::move(Zero));
        FieldValues[FieldIdx] = Z;
        return Z;
      };

      std::vector<Instruction *> ToErase;
      ToErase.push_back(Alloc);
      for (size_t UPos = 0; UPos < B->Insts.size(); ++UPos) {
        Instruction *U = B->Insts[UPos].get();
        if (std::find(U->Operands.begin(), U->Operands.end(), Alloc) ==
            U->Operands.end())
          continue;
        // Replacement instructions are inserted before U; track how many
        // so UPos keeps pointing at U afterwards.
        size_t InsertedHere = 0;
        size_t FieldIdx = static_cast<size_t>(U->Imm);
        switch (U->Op) {
        case Opcode::GetField: {
          size_t Before = B->Insts.size();
          replaceAllUses(F, U, fieldValue(FieldIdx, UPos));
          InsertedHere = B->Insts.size() - Before;
          ToErase.push_back(U);
          break;
        }
        case Opcode::PutField:
          FieldValues[FieldIdx] = U->Operands[1];
          ToErase.push_back(U);
          break;
        case Opcode::Cas: {
          // Emulate the CAS on the scalarized field (§5.1): the paper's
          // transformation updates the virtual object's state directly.
          //   success  = (field == expected)
          //   field'   = field + success * (new - field)
          size_t SizeBefore = B->Insts.size();
          Instruction *Cur = fieldValue(FieldIdx, UPos);
          size_t At = UPos + (B->Insts.size() - SizeBefore);
          auto emitAt = [&](Opcode Op, std::vector<Instruction *> Ops) {
            auto NI = std::make_unique<Instruction>(Op, std::move(Ops));
            return B->insertAt(At++, std::move(NI));
          };
          Instruction *Expected = U->Operands[1];
          Instruction *NewValue = U->Operands[2];
          Instruction *Success = emitAt(Opcode::CmpEq, {Cur, Expected});
          Instruction *Delta = emitAt(Opcode::Sub, {NewValue, Cur});
          Instruction *Scaled = emitAt(Opcode::Mul, {Success, Delta});
          Instruction *Updated = emitAt(Opcode::Add, {Cur, Scaled});
          FieldValues[FieldIdx] = Updated;
          replaceAllUses(F, U, Success);
          ToErase.push_back(U);
          InsertedHere = B->Insts.size() - SizeBefore;
          break;
        }
        case Opcode::InstanceOf: {
          // The object exists and has the allocation's class: fold.
          U->Op = Opcode::Const;
          U->Imm = U->Operands[0] == Alloc ? 1 : 0;
          U->Operands.clear();
          break;
        }
        default:
          assert(false && "escape analysis missed an escaping use");
        }
        UPos += InsertedHere;
      }
      for (Instruction *Dead : ToErase) {
        for (auto It = B->Insts.begin(); It != B->Insts.end(); ++It)
          if (It->get() == Dead) {
            B->Insts.erase(It);
            break;
          }
      }
      Changed = true;
      // Block contents shifted; restart scanning this block.
      Pos = 0;
    }
  }
  if (Changed)
    runConstantFolding(F);
  return Changed;
}

//===----------------------------------------------------------------------===//
// §5.5 Speculative guard motion
//===----------------------------------------------------------------------===//

bool ren::jit::runGuardMotion(Function &F) {
  bool Changed = false;
  DominatorTree Dom(F);
  std::vector<Loop> Loops = findLoops(F, Dom);
  for (Loop &L : Loops) {
    if (!L.Preheader)
      continue;
    CountedLoop Counted;
    bool IsCounted = matchCountedLoop(L, Counted);

    for (BasicBlock *B : std::vector<BasicBlock *>(L.Blocks.begin(),
                                                   L.Blocks.end())) {
      for (size_t Pos = 0; Pos < B->Insts.size(); ++Pos) {
        Instruction *G = B->Insts[Pos].get();
        if (G->Op != Opcode::Guard)
          continue;
        Instruction *Cond = G->Operands[0];
        BasicBlock *Pre = L.Preheader;
        size_t PreInsert = Pre->Insts.size() - 1; // before terminator

        // Case 1: loop-invariant guard condition — either defined outside
        // the loop, or a pure in-loop computation whose operands are all
        // invariant (hoist the computation together with the guard).
        bool CondInvariant = isLoopInvariant(L, Cond);
        bool CondHoistable = false;
        if (!CondInvariant && isPure(Cond) && Cond->Op != Opcode::Phi &&
            L.contains(Cond)) {
          CondHoistable = true;
          for (Instruction *Operand : Cond->Operands)
            CondHoistable &= isLoopInvariant(L, Operand);
        }
        if (CondInvariant || CondHoistable) {
          if (CondHoistable) {
            // Move the condition computation to the preheader.
            BasicBlock *CondBlock = Cond->Parent;
            for (auto It = CondBlock->Insts.begin();
                 It != CondBlock->Insts.end(); ++It) {
              if (It->get() != Cond)
                continue;
              std::unique_ptr<Instruction> Taken = std::move(*It);
              CondBlock->Insts.erase(It);
              if (CondBlock == B) {
                // Keep Pos pointing at the guard after the removal.
                --Pos;
              }
              Taken->Parent = Pre;
              Pre->Insts.insert(Pre->Insts.begin() +
                                    static_cast<ptrdiff_t>(PreInsert),
                                std::move(Taken));
              ++PreInsert;
              break;
            }
          }
          auto NewGuard = std::make_unique<Instruction>(
              Opcode::Guard, std::vector<Instruction *>{Cond});
          NewGuard->Kind = G->Kind;
          NewGuard->Speculative = true;
          Instruction *Hoisted = Pre->insertAt(PreInsert,
                                               std::move(NewGuard));
          replaceAllUses(F, G, Hoisted);
          for (auto It = B->Insts.begin(); It != B->Insts.end(); ++It)
            if (It->get() == G) {
              B->Insts.erase(It);
              break;
            }
          --Pos;
          Changed = true;
          continue;
        }

        // Case 2: induction-variable inequality i < len with invariant
        // len: the induction variable increases monotonically, so the
        // guard holds across the whole range iff bound <= len.
        if (!IsCounted || Cond->Op != Opcode::CmpLt || Cond->Parent == nullptr)
          continue;
        if (Cond->Operands[0] != Counted.Induction)
          continue;
        Instruction *Len = Cond->Operands[1];
        if (!isLoopInvariant(L, Len))
          continue;
        auto NewCmp = std::make_unique<Instruction>(
            Opcode::CmpLe,
            std::vector<Instruction *>{Counted.Bound, Len});
        Instruction *CmpInst = Pre->insertAt(PreInsert++,
                                             std::move(NewCmp));
        auto NewGuard = std::make_unique<Instruction>(
            Opcode::Guard, std::vector<Instruction *>{CmpInst});
        NewGuard->Kind = G->Kind;
        NewGuard->Speculative = true;
        Instruction *Hoisted = Pre->insertAt(PreInsert, std::move(NewGuard));
        replaceAllUses(F, G, Hoisted);
        B->Insts.erase(B->Insts.begin() + static_cast<ptrdiff_t>(Pos));
        --Pos;
        Changed = true;
      }
    }
  }
  if (Changed)
    runConstantFolding(F);
  return Changed;
}

//===----------------------------------------------------------------------===//
// §5.2 Loop-wide lock coarsening
//===----------------------------------------------------------------------===//

bool ren::jit::runLockCoarsening(Function &F, unsigned Chunk) {
  assert(Chunk >= 1 && "chunk must be positive");
  DominatorTree Dom(F);
  std::vector<Loop> Loops = findLoops(F, Dom);
  bool Changed = false;

  for (Loop &L : Loops) {
    CountedLoop C;
    if (!matchCountedLoop(L, C))
      continue;
    // Shape: loop is exactly {header H, body B}; B starts with
    // MonitorEnter(x), ends with MonitorExit(x) immediately before the
    // back-edge jump; x is loop-invariant; C.StepValue == 1.
    if (L.Blocks.size() != 2 || C.StepValue != 1)
      continue;
    BasicBlock *H = L.Header;
    BasicBlock *B = L.Latch;
    if (B == H || B->Insts.size() < 3)
      continue;
    Instruction *Enter = B->Insts.front().get();
    Instruction *BackJump = B->terminator();
    if (Enter->Op != Opcode::MonitorEnter || BackJump->Op != Opcode::Jump ||
        BackJump->TrueTarget != H)
      continue;
    // Exactly one matching exit somewhere in the body (instructions after
    // it, e.g. the induction step, are simply kept under the coarsened
    // lock — holding it slightly longer is what coarsening does anyway).
    Instruction *Exit = nullptr;
    bool MonitorShapeOk = true;
    for (auto &I : B->Insts) {
      if (I->Op == Opcode::MonitorExit) {
        MonitorShapeOk &= Exit == nullptr;
        Exit = I.get();
      } else if (I->Op == Opcode::MonitorEnter && I.get() != Enter) {
        MonitorShapeOk = false;
      }
    }
    if (!Exit || !MonitorShapeOk)
      continue;
    if (Enter->Operands[0] != Exit->Operands[0] ||
        !isLoopInvariant(L, Enter->Operands[0]))
      continue;
    // The loop condition must not take another lock: our conditions are
    // pure compares by construction (matchCountedLoop checked the shape).

    // --- Restructure ---
    // H keeps its phis and compare; its true edge now enters OB.
    BasicBlock *OB = F.addBlock(B->Label + ".chunk");
    BasicBlock *IH = F.addBlock(H->Label + ".inner");
    BasicBlock *IX = F.addBlock(B->Label + ".unlock");

    // Collect header phis.
    std::vector<Instruction *> HeaderPhis;
    for (auto &I : H->Insts) {
      if (I->Op != Opcode::Phi)
        break;
      HeaderPhis.push_back(I.get());
    }

    // OB: monitorEnter; limit = min(i + Chunk, bound); jmp IH.
    Instruction *Lock = Enter->Operands[0];
    {
      auto ME = std::make_unique<Instruction>(
          Opcode::MonitorEnter, std::vector<Instruction *>{Lock});
      OB->append(std::move(ME));
      auto CConst = std::make_unique<Instruction>(Opcode::Const);
      CConst->Imm = static_cast<int64_t>(Chunk);
      Instruction *ChunkConst = OB->append(std::move(CConst));
      auto AddI = std::make_unique<Instruction>(
          Opcode::Add,
          std::vector<Instruction *>{C.Induction, ChunkConst});
      Instruction *IPlusC = OB->append(std::move(AddI));
      auto MinI = std::make_unique<Instruction>(
          Opcode::Min, std::vector<Instruction *>{IPlusC, C.Bound});
      Instruction *Limit = OB->append(std::move(MinI));
      auto J = std::make_unique<Instruction>(Opcode::Jump);
      J->TrueTarget = IH;
      OB->append(std::move(J));

      // IH: inner phis mirroring every header phi.
      std::unordered_map<Instruction *, Instruction *> InnerPhi;
      for (Instruction *P : HeaderPhis) {
        auto Q = std::make_unique<Instruction>(Opcode::Phi);
        Q->Operands.push_back(P);
        Q->PhiBlocks.push_back(OB);
        // Latch value: the value this phi receives along the back edge.
        Instruction *LatchValue = nullptr;
        for (size_t K = 0; K < P->PhiBlocks.size(); ++K)
          if (P->PhiBlocks[K] == B)
            LatchValue = P->Operands[K];
        assert(LatchValue && "header phi lacks a latch value");
        Q->Operands.push_back(LatchValue);
        Q->PhiBlocks.push_back(B);
        InnerPhi[P] = IH->append(std::move(Q));
      }
      Instruction *InnerInd = InnerPhi.at(C.Induction);
      auto InnerCmp = std::make_unique<Instruction>(
          Opcode::CmpLt, std::vector<Instruction *>{InnerInd, Limit});
      Instruction *IC = IH->append(std::move(InnerCmp));
      auto IBr = std::make_unique<Instruction>(
          Opcode::Branch, std::vector<Instruction *>{IC});
      IBr->TrueTarget = B;
      IBr->FalseTarget = IX;
      IH->append(std::move(IBr));

      // B: strip monitor ops; retarget back edge to IH; uses of header
      // phis inside B become uses of the inner phis.
      B->Insts.erase(B->Insts.begin()); // MonitorEnter
      // MonitorExit is now at size-2 relative to new layout:
      for (auto It = B->Insts.begin(); It != B->Insts.end(); ++It)
        if (It->get() == Exit) {
          B->Insts.erase(It);
          break;
        }
      B->terminator()->TrueTarget = IH;
      for (auto &I : B->Insts)
        for (Instruction *&Operand : I->Operands) {
          auto It = InnerPhi.find(Operand);
          if (It != InnerPhi.end())
            Operand = It->second;
        }

      // IX: monitorExit; jmp H.
      auto MX = std::make_unique<Instruction>(
          Opcode::MonitorExit, std::vector<Instruction *>{Lock});
      IX->append(std::move(MX));
      auto JX = std::make_unique<Instruction>(Opcode::Jump);
      JX->TrueTarget = H;
      IX->append(std::move(JX));

      // Header phis: the back edge now comes from IX carrying the inner
      // phi values.
      for (Instruction *P : HeaderPhis)
        for (size_t K = 0; K < P->PhiBlocks.size(); ++K)
          if (P->PhiBlocks[K] == B) {
            P->PhiBlocks[K] = IX;
            P->Operands[K] = InnerPhi.at(P);
          }

      // H's true edge enters the chunked body.
      H->terminator()->TrueTarget = OB;
    }
    F.recomputePreds();
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// §5.3 Atomic-operation coalescing
//===----------------------------------------------------------------------===//

namespace {

/// A recognized CAS retry loop: a single-block self-loop of the form
///   L: v = getfield x.f; <pure computation nv>; ok = cas x.f v nv;
///      br ok -> Next, L
struct CasRetryLoop {
  BasicBlock *Block = nullptr;
  Instruction *Read = nullptr;
  Instruction *Cas = nullptr;
  BasicBlock *Next = nullptr;
};

bool matchCasRetryLoop(BasicBlock *B, CasRetryLoop &Out) {
  Instruction *Term = B->terminator();
  if (!Term || Term->Op != Opcode::Branch || Term->FalseTarget != B)
    return false;
  if (B->Insts.size() < 3)
    return false;
  Instruction *Read = B->Insts.front().get();
  Instruction *Cas = B->Insts[B->Insts.size() - 2].get();
  if (Read->Op != Opcode::GetField || Cas->Op != Opcode::Cas)
    return false;
  if (Term->Operands[0] != Cas)
    return false;
  // Same object and field, and the CAS expects exactly the read value.
  if (Cas->Operands[0] != Read->Operands[0] || Cas->Imm != Read->Imm ||
      Cas->Operands[1] != Read)
    return false;
  // Everything between must be pure computation.
  for (size_t I = 1; I + 2 < B->Insts.size(); ++I)
    if (!isPure(B->Insts[I].get()) ||
        B->Insts[I]->Op == Opcode::Phi)
      return false;
  Out.Block = B;
  Out.Read = Read;
  Out.Cas = Cas;
  Out.Next = Term->TrueTarget;
  return true;
}

} // namespace

bool ren::jit::runAtomicCoalescing(Function &F) {
  bool Changed = false;
  for (bool Progress = true; Progress;) {
    Progress = false;
    for (auto &BPtr : F.Blocks) {
      CasRetryLoop First;
      if (!matchCasRetryLoop(BPtr.get(), First))
        continue;
      CasRetryLoop Second;
      if (!matchCasRetryLoop(First.Next, Second))
        continue;
      if (Second.Block == First.Block)
        continue;
      // Both loops must target the same location, and the second loop's
      // block must have no other predecessors than the first loop.
      if (Second.Read->Operands[0] != First.Read->Operands[0] ||
          Second.Read->Imm != First.Read->Imm)
        continue;
      bool OnlyPred = true;
      for (BasicBlock *P : Second.Block->Preds)
        OnlyPred &= P == First.Block || P == Second.Block;
      if (!OnlyPred)
        continue;

      // Fuse: clone the second loop's pure computation into the first
      // loop with v2 := nv1, make the first CAS install f2(f1(v)), and
      // bypass the second loop entirely.
      BasicBlock *B = First.Block;
      Instruction *Nv1 = First.Cas->Operands[2];
      std::unordered_map<Instruction *, Instruction *> Map;
      Map[Second.Read] = Nv1;
      size_t InsertPos = 0;
      for (size_t I = 0; I < B->Insts.size(); ++I)
        if (B->Insts[I].get() == First.Cas) {
          InsertPos = I;
          break;
        }
      for (size_t I = 1; I + 2 < Second.Block->Insts.size(); ++I) {
        Instruction *Orig = Second.Block->Insts[I].get();
        auto Clone = std::make_unique<Instruction>(Orig->Op);
        Clone->Imm = Orig->Imm;
        for (Instruction *Operand : Orig->Operands) {
          auto It = Map.find(Operand);
          Clone->Operands.push_back(It != Map.end() ? It->second : Operand);
        }
        Map[Orig] = B->insertAt(InsertPos++, std::move(Clone));
      }
      Instruction *Nv2 = Second.Cas->Operands[2];
      auto MappedNv2It = Map.find(Nv2);
      Instruction *FusedNew =
          MappedNv2It != Map.end() ? MappedNv2It->second : Nv2;
      First.Cas->Operands[2] = FusedNew;
      B->terminator()->TrueTarget = Second.Next;

      // External uses of the second loop's values: the read observed nv1,
      // the installed value is the fused result, the CAS succeeded.
      replaceAllUses(F, Second.Read, Nv1);
      replaceAllUses(F, Second.Cas, First.Cas);
      for (size_t I = 1; I + 2 < Second.Block->Insts.size(); ++I)
        replaceAllUses(F, Second.Block->Insts[I].get(),
                       Map.at(Second.Block->Insts[I].get()));

      F.recomputePreds();
      removeUnreachableBlocks(F);
      Changed = true;
      Progress = true;
      break;
    }
  }
  if (Changed)
    runConstantFolding(F);
  return Changed;
}

//===----------------------------------------------------------------------===//
// Profile-driven speculation (tiered tier-up)
//===----------------------------------------------------------------------===//

bool ren::jit::runBranchSpeculation(Function &F, const FunctionProfile &Prof,
                                    const SpecBlacklist &Blacklist,
                                    uint32_t &NextAssumptionId,
                                    std::vector<SpecAssumption> &Assumptions,
                                    uint64_t MinSamples) {
  // Site keys are instruction indices in the unoptimized IR; this pass
  // must therefore run on a fresh clone before any other transformation.
  F.renumber();

  // A speculative guard costs more per execution than the branch it
  // replaces (the branch folds to a jump, not away), so straightening a
  // loop-resident branch only pays when guard motion can then hoist the
  // guard to the preheader. Mirror GM's hoistability test: the condition
  // must be loop-invariant, or a pure in-loop computation over invariant
  // operands. Branches outside any loop run at most once per entry, where
  // the guard is noise and the straightened CFG feeds later passes.
  DominatorTree Dom(F);
  std::vector<Loop> Loops = findLoops(F, Dom);
  auto guardWouldHoist = [&](const Instruction *Term) {
    for (const Loop &L : Loops) {
      if (!L.contains(Term))
        continue;
      const Instruction *Cond = Term->Operands[0];
      if (isLoopInvariant(L, Cond))
        continue;
      if (!isPure(Cond) || Cond->Op == Opcode::Phi)
        return false;
      for (const Instruction *Operand : Cond->Operands)
        if (!isLoopInvariant(L, Operand))
          return false;
    }
    return true;
  };

  // Collect candidates first: rewriting inserts instructions, which would
  // otherwise shift the indices of later candidates.
  struct Candidate {
    Instruction *Term;
    bool AlwaysTaken;
  };
  std::vector<Candidate> Candidates;
  for (auto &B : F.Blocks) {
    Instruction *Term = B->terminator();
    if (Term->Op != Opcode::Branch || Term->TrueTarget == Term->FalseTarget)
      continue;
    if (Term->Operands[0]->Op == Opcode::Const)
      continue; // constant folding will handle it without speculation
    auto It = Prof.Branches.find(Term->Index);
    if (It == Prof.Branches.end() || It->second.total() < MinSamples)
      continue;
    const BranchProfile &BP = It->second;
    if (BP.Taken != 0 && BP.NotTaken != 0)
      continue; // both sides observed: nothing to assume
    if (Blacklist.contains(F.Name, Term->Index, SpecDegree::BranchSpec))
      continue;
    if (!guardWouldHoist(Term))
      continue; // in-loop guard would outprice the branch it replaces
    Candidates.push_back({Term, BP.NotTaken == 0});
  }

  bool Changed = false;
  for (const Candidate &C : Candidates) {
    Instruction *Term = C.Term;
    BasicBlock *B = Term->Parent;
    Instruction *Cond = Term->Operands[0];
    size_t TPos = B->Insts.size() - 1;
    assert(B->Insts[TPos].get() == Term && "terminator not last");

    SpecAssumption A;
    A.Id = NextAssumptionId++;
    A.FunctionName = F.Name;
    A.Site = Term->Index;
    A.Degree = SpecDegree::BranchSpec;
    Assumptions.push_back(A);

    if (C.AlwaysTaken) {
      // Assume the condition holds: guard on it, branch on constant 1.
      auto G = std::make_unique<Instruction>(
          Opcode::Guard, std::vector<Instruction *>{Cond});
      G->Kind = GuardKind::UnreachedCode;
      G->Speculative = true;
      G->AssumptionId = A.Id;
      B->insertAt(TPos++, std::move(G));
      auto One = std::make_unique<Instruction>(Opcode::Const);
      One->Imm = 1;
      Term->Operands[0] = B->insertAt(TPos++, std::move(One));
    } else {
      // Assume the condition never holds: guard on its negation, branch
      // on constant 0.
      auto Zero = std::make_unique<Instruction>(Opcode::Const);
      Zero->Imm = 0;
      Instruction *Z = B->insertAt(TPos++, std::move(Zero));
      auto Eq = std::make_unique<Instruction>(
          Opcode::CmpEq, std::vector<Instruction *>{Cond, Z});
      Instruction *EqI = B->insertAt(TPos++, std::move(Eq));
      auto G = std::make_unique<Instruction>(
          Opcode::Guard, std::vector<Instruction *>{EqI});
      G->Kind = GuardKind::UnreachedCode;
      G->Speculative = true;
      G->AssumptionId = A.Id;
      B->insertAt(TPos++, std::move(G));
      Term->Operands[0] = Z;
    }
    Changed = true;
  }
  // The now-constant branches are left for the pipeline's constant
  // folding, which also deletes the assumed-dead paths and fixes phis.
  return Changed;
}

namespace {

/// Builds the direct call that replaces a devirtualized dispatch.
std::unique_ptr<Instruction> makeDirectCall(Module &M, const Function *Target,
                                            const Instruction *Site) {
  auto Call = std::make_unique<Instruction>(Opcode::Invoke);
  Call->Imm = static_cast<int64_t>(M.functionId(Target));
  Call->Operands = Site->Operands;
  return Call;
}

} // namespace

bool ren::jit::runSpeculativeDevirtualization(
    Module &M, Function &F, const FunctionProfile &Prof,
    const SpecBlacklist &Blacklist, uint32_t &NextAssumptionId,
    std::vector<SpecAssumption> &Assumptions, uint64_t MinSamples) {
  F.renumber();

  std::vector<Instruction *> Sites;
  for (auto &B : F.Blocks)
    for (auto &I : B->Insts)
      if (I->Op == Opcode::VirtualInvoke &&
          Prof.VirtualSites.count(I->Index) != 0)
        Sites.push_back(I.get());

  bool Changed = false;
  for (Instruction *I : Sites) {
    const unsigned Site = I->Index;
    const ReceiverProfile &RP = Prof.VirtualSites.at(Site);
    if (RP.total() < MinSamples)
      continue;
    auto Sorted = RP.sorted();
    const unsigned Slot = static_cast<unsigned>(I->Imm);
    const bool MonoOk =
        Sorted.size() == 1 &&
        !Blacklist.contains(F.Name, Site, SpecDegree::DevirtMono);
    const bool BiOk =
        Sorted.size() <= 2 &&
        !Blacklist.contains(F.Name, Site, SpecDegree::DevirtBi);

    BasicBlock *B = I->Parent;
    size_t Pos = 0;
    while (B->Insts[Pos].get() != I)
      ++Pos;
    Instruction *Recv = I->Operands[0];

    if (MonoOk) {
      // Monomorphic: assume the single observed receiver class, call its
      // target directly (the inliner can then inline it).
      const Function *Target = M.virtualTarget(Sorted[0].first, Slot);
      assert(Target && "profiled receiver has no vtable binding");
      SpecAssumption A{NextAssumptionId++, F.Name, Site,
                       SpecDegree::DevirtMono};
      Assumptions.push_back(A);

      auto Test = std::make_unique<Instruction>(
          Opcode::InstanceOf, std::vector<Instruction *>{Recv});
      Test->Imm = Sorted[0].first;
      Instruction *TestI = B->insertAt(Pos++, std::move(Test));
      auto G = std::make_unique<Instruction>(
          Opcode::Guard, std::vector<Instruction *>{TestI});
      G->Kind = GuardKind::TypeCheck;
      G->Speculative = true;
      G->AssumptionId = A.Id;
      G->PicSite = static_cast<int32_t>(Site);
      B->insertAt(Pos++, std::move(G));
      Instruction *Call =
          B->insertAt(Pos++, makeDirectCall(M, Target, I));
      replaceAllUses(F, I, Call);
      assert(B->Insts[Pos].get() == I && "site moved during rewrite");
      B->Insts.erase(B->Insts.begin() + static_cast<ptrdiff_t>(Pos));
      Changed = true;
      continue;
    }

    if (BiOk && Sorted.size() == 2) {
      // Bimorphic: dispatch diamond — test the majority class, guard the
      // minority one; a third class fails the guard and deopts.
      const Function *TargetA = M.virtualTarget(Sorted[0].first, Slot);
      const Function *TargetB = M.virtualTarget(Sorted[1].first, Slot);
      assert(TargetA && TargetB && "profiled receiver has no vtable binding");
      SpecAssumption A{NextAssumptionId++, F.Name, Site,
                       SpecDegree::DevirtBi};
      Assumptions.push_back(A);

      BasicBlock *Tail = splitBlockAfter(F, B, Pos);
      BasicBlock *ArmA = F.addBlock(B->Label + ".pic0");
      BasicBlock *ArmB = F.addBlock(B->Label + ".pic1");

      // B currently ends with the VirtualInvoke; replace it with the
      // class test and a counted dispatch branch.
      auto Test = std::make_unique<Instruction>(
          Opcode::InstanceOf, std::vector<Instruction *>{Recv});
      Test->Imm = Sorted[0].first;
      Instruction *TestI = B->insertAt(Pos, std::move(Test));

      Instruction *CallA = ArmA->append(makeDirectCall(M, TargetA, I));
      auto JumpA = std::make_unique<Instruction>(Opcode::Jump);
      JumpA->TrueTarget = Tail;
      ArmA->append(std::move(JumpA));

      auto TestB = std::make_unique<Instruction>(
          Opcode::InstanceOf, std::vector<Instruction *>{Recv});
      TestB->Imm = Sorted[1].first;
      Instruction *TestBI = ArmB->append(std::move(TestB));
      auto G = std::make_unique<Instruction>(
          Opcode::Guard, std::vector<Instruction *>{TestBI});
      G->Kind = GuardKind::TypeCheck;
      G->Speculative = true;
      G->AssumptionId = A.Id;
      G->PicSite = static_cast<int32_t>(Site);
      ArmB->append(std::move(G));
      Instruction *CallB = ArmB->append(makeDirectCall(M, TargetB, I));
      auto JumpB = std::make_unique<Instruction>(Opcode::Jump);
      JumpB->TrueTarget = Tail;
      ArmB->append(std::move(JumpB));

      auto Phi = std::make_unique<Instruction>(Opcode::Phi);
      Phi->Operands = {CallA, CallB};
      Phi->PhiBlocks = {ArmA, ArmB};
      Instruction *Merge = Tail->insertAt(0, std::move(Phi));
      replaceAllUses(F, I, Merge);

      // Drop the VirtualInvoke (now last in B) and terminate B with the
      // dispatch branch. The majority arm counts its hits on the branch,
      // the minority arm on the guard — exactly one credit per dispatch.
      assert(B->Insts.back().get() == I && "site not at block end");
      B->Insts.pop_back();
      auto Br = std::make_unique<Instruction>(
          Opcode::Branch, std::vector<Instruction *>{TestI});
      Br->TrueTarget = ArmA;
      Br->FalseTarget = ArmB;
      Br->PicSite = static_cast<int32_t>(Site);
      B->append(std::move(Br));

      F.recomputePreds();
      Changed = true;
      continue;
    }

    // Megamorphic (or speculation exhausted): keep the VirtualInvoke and
    // tag it so its runtime inline cache reports under the profile site.
    I->PicSite = static_cast<int32_t>(Site);
  }
  return Changed;
}
