//===- jit/Ir.cpp ----------------------------------------------------------==//

#include "jit/Ir.h"

#include <algorithm>

using namespace ren;
using namespace ren::jit;

const char *ren::jit::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Param:
    return "param";
  case Opcode::Phi:
    return "phi";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::NewObject:
    return "new";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::Cas:
    return "cas";
  case Opcode::MonitorEnter:
    return "monitorenter";
  case Opcode::MonitorExit:
    return "monitorexit";
  case Opcode::Extract:
    return "extract";
  case Opcode::Guard:
    return "guard";
  case Opcode::InstanceOf:
    return "instanceof";
  case Opcode::Invoke:
    return "invoke";
  case Opcode::MethodHandleInvoke:
    return "mhinvoke";
  case Opcode::VirtualInvoke:
    return "virtinvoke";
  case Opcode::Branch:
    return "br";
  case Opcode::Jump:
    return "jmp";
  case Opcode::Return:
    return "ret";
  }
  assert(false && "unknown opcode");
  return "?";
}

bool ren::jit::isTerminator(Opcode Op) {
  return Op == Opcode::Branch || Op == Opcode::Jump || Op == Opcode::Return;
}

bool ren::jit::isVectorizable(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Load:
  case Opcode::Store:
    return true;
  default:
    return false;
  }
}

const char *ren::jit::guardKindName(GuardKind K) {
  switch (K) {
  case GuardKind::BoundsCheck:
    return "BoundsCheckException";
  case GuardKind::NullCheck:
    return "NullCheckException";
  case GuardKind::TypeCheck:
    return "TypeCheckException";
  case GuardKind::UnreachedCode:
    return "UnreachedCode";
  case GuardKind::Other:
    return "Others";
  }
  assert(false && "unknown guard kind");
  return "?";
}

Instruction *BasicBlock::append(std::unique_ptr<Instruction> Inst) {
  assert(!terminator() && "appending past a terminator");
  Inst->Parent = this;
  Insts.push_back(std::move(Inst));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAt(size_t Pos,
                                  std::unique_ptr<Instruction> Inst) {
  assert(Pos <= Insts.size() && "insert position out of range");
  Inst->Parent = this;
  auto It = Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Pos),
                         std::move(Inst));
  return It->get();
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *Term = terminator();
  if (!Term)
    return {};
  switch (Term->Op) {
  case Opcode::Jump:
    return {Term->TrueTarget};
  case Opcode::Branch:
    return {Term->TrueTarget, Term->FalseTarget};
  default:
    return {};
  }
}

BasicBlock *Function::addBlock(const std::string &Label) {
  Blocks.push_back(std::make_unique<BasicBlock>(NextBlockId++, Label));
  return Blocks.back().get();
}

void Function::recomputePreds() {
  for (auto &B : Blocks)
    B->Preds.clear();
  for (auto &B : Blocks)
    for (BasicBlock *Succ : B->successors())
      Succ->Preds.push_back(B.get());
}

unsigned Function::renumber() {
  unsigned Index = 0;
  for (auto &B : Blocks)
    for (auto &I : B->Insts)
      I->Index = Index++;
  return Index;
}

unsigned Function::instructionCount() const {
  unsigned N = 0;
  for (const auto &B : Blocks)
    N += static_cast<unsigned>(B->Insts.size());
  return N;
}

std::string Function::dump() const {
  std::string Out = "function " + Name + "(" + std::to_string(NumParams) +
                    " params)\n";
  // Value names are vN by renumber order; compute on a copy of indices.
  std::unordered_map<const Instruction *, unsigned> Ids;
  unsigned Next = 0;
  for (const auto &B : Blocks)
    for (const auto &I : B->Insts)
      Ids[I.get()] = Next++;
  for (const auto &B : Blocks) {
    Out += B->Label + ":  ; preds:";
    for (BasicBlock *P : B->Preds)
      Out += " " + P->Label;
    Out += "\n";
    for (const auto &I : B->Insts) {
      Out += "  v" + std::to_string(Ids[I.get()]) + " = ";
      Out += opcodeName(I->Op);
      if (I->Lanes > 1)
        Out += "<x" + std::to_string(I->Lanes) + ">";
      if (I->Op == Opcode::Guard) {
        Out += std::string(" [") + guardKindName(I->Kind) +
               (I->Speculative ? ", speculative" : "") +
               (I->AssumptionId ? ", assume#" + std::to_string(I->AssumptionId)
                                : "") +
               "]";
      }
      if (I->PicSite >= 0)
        Out += " pic@" + std::to_string(I->PicSite);
      for (const Instruction *Operand : I->Operands)
        Out += " v" + std::to_string(Ids[Operand]);
      if (I->Op == Opcode::Const || I->Op == Opcode::Param ||
          I->Op == Opcode::Load || I->Op == Opcode::Store ||
          I->Op == Opcode::NewObject || I->Op == Opcode::GetField ||
          I->Op == Opcode::PutField || I->Op == Opcode::Cas ||
          I->Op == Opcode::InstanceOf || I->Op == Opcode::Invoke ||
          I->Op == Opcode::MethodHandleInvoke ||
          I->Op == Opcode::VirtualInvoke)
        Out += " #" + std::to_string(I->Imm);
      if (I->TrueTarget)
        Out += " -> " + I->TrueTarget->Label;
      if (I->FalseTarget)
        Out += " / " + I->FalseTarget->Label;
      Out += "\n";
    }
  }
  return Out;
}

std::string Function::verify() const {
  if (Blocks.empty())
    return Name + ": function has no blocks";
  // Every block must end with exactly one terminator and contain no
  // interior terminators.
  for (const auto &B : Blocks) {
    if (B->Insts.empty() || !B->Insts.back()->isTerm())
      return Name + "/" + B->Label + ": missing terminator";
    for (size_t I = 0; I + 1 < B->Insts.size(); ++I)
      if (B->Insts[I]->isTerm())
        return Name + "/" + B->Label + ": interior terminator";
    for (const auto &I : B->Insts)
      if (I->Parent != B.get())
        return Name + "/" + B->Label + ": bad parent link";
  }
  // Phi arity must match predecessor count; phis only at block start.
  for (const auto &B : Blocks) {
    bool SeenNonPhi = false;
    for (const auto &I : B->Insts) {
      if (I->Op == Opcode::Phi) {
        if (SeenNonPhi)
          return Name + "/" + B->Label + ": phi after non-phi";
        if (I->Operands.size() != I->PhiBlocks.size())
          return Name + "/" + B->Label + ": phi operand/block mismatch";
        if (I->Operands.size() != B->Preds.size())
          return Name + "/" + B->Label + ": phi arity " +
                 std::to_string(I->Operands.size()) + " != preds " +
                 std::to_string(B->Preds.size());
        for (BasicBlock *In : I->PhiBlocks) {
          bool Found = false;
          for (BasicBlock *P : B->Preds)
            Found |= P == In;
          if (!Found)
            return Name + "/" + B->Label + ": phi incoming block '" +
                   In->Label + "' is not a predecessor";
        }
      } else {
        SeenNonPhi = true;
      }
    }
  }
  // Params in entry block only.
  for (size_t BI = 1; BI < Blocks.size(); ++BI)
    for (const auto &I : Blocks[BI]->Insts)
      if (I->Op == Opcode::Param)
        return Name + ": param outside entry block";
  // Virtual invocations need a receiver operand.
  for (const auto &B : Blocks)
    for (const auto &I : B->Insts)
      if (I->Op == Opcode::VirtualInvoke && I->Operands.empty())
        return Name + "/" + B->Label + ": virtinvoke without receiver";
  return "";
}

Function *Module::addFunction(const std::string &Name, unsigned NumParams) {
  Functions.push_back(std::make_unique<Function>(Name, NumParams));
  return Functions.back().get();
}

Function *Module::function(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

size_t Module::functionId(const Function *F) const {
  for (size_t I = 0; I < Functions.size(); ++I)
    if (Functions[I].get() == F)
      return I;
  assert(false && "function not in module");
  return 0;
}

unsigned Module::addClass(const std::string &Name, unsigned NumFields) {
  Classes.push_back(ClassInfo{Name, NumFields});
  return static_cast<unsigned>(Classes.size() - 1);
}

unsigned Module::addArray(std::vector<int64_t> Initial) {
  Arrays.push_back(std::move(Initial));
  return static_cast<unsigned>(Arrays.size() - 1);
}

unsigned Module::addMethodHandle(Function *Target) {
  Handles.push_back(Target);
  return static_cast<unsigned>(Handles.size() - 1);
}

static uint64_t vtableKey(unsigned ClassId, unsigned Slot) {
  return (static_cast<uint64_t>(ClassId) << 32) | Slot;
}

void Module::setVirtualTarget(unsigned ClassId, unsigned Slot,
                              Function *Target) {
  assert(ClassId < Classes.size() && "bad class id");
  VTable[vtableKey(ClassId, Slot)] = Target;
}

Function *Module::virtualTarget(unsigned ClassId, unsigned Slot) const {
  auto It = VTable.find(vtableKey(ClassId, Slot));
  return It == VTable.end() ? nullptr : It->second;
}

std::vector<unsigned> Module::classesImplementing(unsigned Slot) const {
  std::vector<unsigned> Out;
  for (const auto &[Key, Target] : VTable)
    if (static_cast<unsigned>(Key & 0xffffffffu) == Slot && Target)
      Out.push_back(static_cast<unsigned>(Key >> 32));
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::unordered_map<const Instruction *, Instruction *>
ren::jit::cloneFunctionInto(const Function &Source, Function &Dest) {
  assert(Dest.Blocks.empty() && "destination must be empty");
  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  std::unordered_map<const Instruction *, Instruction *> InstMap;
  for (const auto &B : Source.Blocks)
    BlockMap[B.get()] = Dest.addBlock(B->Label);
  for (const auto &B : Source.Blocks) {
    BasicBlock *NewB = BlockMap[B.get()];
    for (const auto &I : B->Insts) {
      auto NewI = std::make_unique<Instruction>(I->Op);
      NewI->copyMetaFrom(*I);
      if (I->TrueTarget)
        NewI->TrueTarget = BlockMap[I->TrueTarget];
      if (I->FalseTarget)
        NewI->FalseTarget = BlockMap[I->FalseTarget];
      for (BasicBlock *In : I->PhiBlocks)
        NewI->PhiBlocks.push_back(BlockMap.at(In));
      InstMap[I.get()] = NewB->append(std::move(NewI));
    }
  }
  // Second pass: remap operands (forward references via phis).
  for (const auto &B : Source.Blocks)
    for (const auto &I : B->Insts) {
      Instruction *NewI = InstMap[I.get()];
      for (Instruction *Operand : I->Operands)
        NewI->Operands.push_back(InstMap.at(Operand));
    }
  Dest.recomputePreds();
  return InstMap;
}

std::unique_ptr<Module> Module::clone() const {
  auto New = std::make_unique<Module>();
  New->Classes = Classes;
  New->Arrays = Arrays;
  std::unordered_map<const Function *, Function *> FuncMap;
  for (const auto &F : Functions) {
    Function *NewF = New->addFunction(F->Name, F->NumParams);
    cloneFunctionInto(*F, *NewF);
    FuncMap[F.get()] = NewF;
  }
  for (Function *H : Handles)
    New->Handles.push_back(FuncMap.at(H));
  for (const auto &[Key, Target] : VTable)
    New->VTable[Key] = Target ? FuncMap.at(Target) : nullptr;
  return New;
}
