//===- jit/IrBuilder.h - Convenience IR construction ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder for constructing IR functions, used by tests and by the
/// per-benchmark kernel generators.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_IRBUILDER_H
#define REN_JIT_IRBUILDER_H

#include "jit/Ir.h"

namespace ren {
namespace jit {

/// Appends instructions to a chosen insertion block.
class IrBuilder {
public:
  explicit IrBuilder(Function &F) : F(F) {}

  /// Switches the insertion point.
  void setBlock(BasicBlock *B) { Block = B; }
  BasicBlock *block() const { return Block; }

  /// Creates a new block (does not switch to it).
  BasicBlock *makeBlock(const std::string &Label) {
    return F.addBlock(Label);
  }

  Instruction *constant(int64_t Value) {
    return emit(Opcode::Const, {}, Value);
  }

  Instruction *param(unsigned Index) {
    return emit(Opcode::Param, {}, static_cast<int64_t>(Index));
  }

  Instruction *binary(Opcode Op, Instruction *Lhs, Instruction *Rhs) {
    return emit(Op, {Lhs, Rhs});
  }

  Instruction *add(Instruction *L, Instruction *R) {
    return binary(Opcode::Add, L, R);
  }
  Instruction *sub(Instruction *L, Instruction *R) {
    return binary(Opcode::Sub, L, R);
  }
  Instruction *mul(Instruction *L, Instruction *R) {
    return binary(Opcode::Mul, L, R);
  }
  Instruction *cmpLt(Instruction *L, Instruction *R) {
    return binary(Opcode::CmpLt, L, R);
  }
  Instruction *cmpLe(Instruction *L, Instruction *R) {
    return binary(Opcode::CmpLe, L, R);
  }
  Instruction *cmpEq(Instruction *L, Instruction *R) {
    return binary(Opcode::CmpEq, L, R);
  }

  /// Creates an empty phi; incoming values are added with addIncoming.
  Instruction *phi() { return emit(Opcode::Phi, {}); }

  static void addIncoming(Instruction *Phi, Instruction *Value,
                          BasicBlock *From) {
    assert(Phi->Op == Opcode::Phi && "not a phi");
    Phi->Operands.push_back(Value);
    Phi->PhiBlocks.push_back(From);
  }

  Instruction *load(unsigned ArrayId, Instruction *Index) {
    return emit(Opcode::Load, {Index}, ArrayId);
  }

  Instruction *store(unsigned ArrayId, Instruction *Index,
                     Instruction *Value) {
    return emit(Opcode::Store, {Index, Value}, ArrayId);
  }

  Instruction *newObject(unsigned ClassId) {
    return emit(Opcode::NewObject, {}, ClassId);
  }

  Instruction *getField(Instruction *Obj, unsigned FieldIndex) {
    return emit(Opcode::GetField, {Obj}, FieldIndex);
  }

  Instruction *putField(Instruction *Obj, unsigned FieldIndex,
                        Instruction *Value) {
    return emit(Opcode::PutField, {Obj, Value}, FieldIndex);
  }

  Instruction *cas(Instruction *Obj, unsigned FieldIndex,
                   Instruction *Expected, Instruction *NewValue) {
    return emit(Opcode::Cas, {Obj, Expected, NewValue}, FieldIndex);
  }

  Instruction *monitorEnter(Instruction *Obj) {
    return emit(Opcode::MonitorEnter, {Obj});
  }

  Instruction *monitorExit(Instruction *Obj) {
    return emit(Opcode::MonitorExit, {Obj});
  }

  Instruction *guard(Instruction *Cond, GuardKind Kind) {
    Instruction *G = emit(Opcode::Guard, {Cond});
    G->Kind = Kind;
    return G;
  }

  Instruction *instanceOf(Instruction *Obj, unsigned ClassId) {
    return emit(Opcode::InstanceOf, {Obj}, ClassId);
  }

  Instruction *invoke(size_t FunctionId,
                      std::vector<Instruction *> Args) {
    return emit(Opcode::Invoke, std::move(Args),
                static_cast<int64_t>(FunctionId));
  }

  Instruction *mhInvoke(unsigned HandleId,
                        std::vector<Instruction *> Args) {
    return emit(Opcode::MethodHandleInvoke, std::move(Args), HandleId);
  }

  /// Virtual dispatch on \p Receiver's dynamic class through vtable slot
  /// \p Slot; the receiver is passed to the target as its first argument.
  Instruction *virtualInvoke(unsigned Slot, Instruction *Receiver,
                             std::vector<Instruction *> Args) {
    Args.insert(Args.begin(), Receiver);
    return emit(Opcode::VirtualInvoke, std::move(Args), Slot);
  }

  Instruction *branch(Instruction *Cond, BasicBlock *IfTrue,
                      BasicBlock *IfFalse) {
    Instruction *B = emit(Opcode::Branch, {Cond});
    B->TrueTarget = IfTrue;
    B->FalseTarget = IfFalse;
    return B;
  }

  Instruction *jump(BasicBlock *Target) {
    Instruction *J = emit(Opcode::Jump, {});
    J->TrueTarget = Target;
    return J;
  }

  Instruction *ret(Instruction *Value) {
    return emit(Opcode::Return, {Value});
  }

  /// Finalizes construction: recomputes predecessors and verifies.
  /// Asserts on malformed IR.
  void finish() {
    F.recomputePreds();
    [[maybe_unused]] std::string Error = F.verify();
    assert(Error.empty() && "built malformed IR");
  }

private:
  Instruction *emit(Opcode Op, std::vector<Instruction *> Operands,
                    int64_t Imm = 0) {
    assert(Block && "no insertion block set");
    return Block->append(
        std::make_unique<Instruction>(Op, std::move(Operands), Imm));
  }

  Function &F;
  BasicBlock *Block = nullptr;
};

} // namespace jit
} // namespace ren

#endif // REN_JIT_IRBUILDER_H
