//===- jit/Kernels.cpp - Pattern builders and benchmark mixes -------------==//

#include "jit/Kernels.h"

#include "jit/IrBuilder.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace ren;
using namespace ren::jit;
using namespace ren::jit::kernels;

namespace {

/// Emits \p Work extra multiply-add pairs folding \p Seed, returning the
/// final value (models benchmark-specific per-iteration computation).
Instruction *emitWork(IrBuilder &B, Instruction *Seed, unsigned Work) {
  Instruction *V = Seed;
  for (unsigned W = 0; W < Work; ++W) {
    Instruction *C = B.constant(2654435761 + W);
    Instruction *Mul = B.mul(V, C);
    Instruction *C2 = B.constant(11 + W);
    V = B.add(Mul, C2);
  }
  return V;
}

/// Standard counted-loop scaffold: entry/header/body/exit with induction
/// phi I and accumulator phi Acc. The caller fills the body via \p
/// EmitBody(builder, I, Acc) returning the new accumulator value, then the
/// scaffold wires the latch and return.
template <typename BodyFnT>
Function *buildCountedLoop(Module &M, const std::string &Name,
                           BodyFnT EmitBody) {
  Function *F = M.addFunction(Name, 1);
  IrBuilder B(*F);
  BasicBlock *Entry = B.makeBlock("entry");
  BasicBlock *Header = B.makeBlock("header");
  BasicBlock *Body = B.makeBlock("body");
  BasicBlock *Exit = B.makeBlock("exit");

  B.setBlock(Entry);
  Instruction *N = B.param(0);
  Instruction *Zero = B.constant(0);
  B.jump(Header);

  B.setBlock(Header);
  Instruction *I = B.phi();
  Instruction *Acc = B.phi();
  Instruction *Cond = B.cmpLt(I, N);
  B.branch(Cond, Body, Exit);

  B.setBlock(Body);
  Instruction *Acc2 = EmitBody(B, I, Acc);
  Instruction *One = B.constant(1);
  Instruction *I2 = B.add(I, One);
  B.jump(Header);

  B.setBlock(Exit);
  B.ret(Acc);

  IrBuilder::addIncoming(I, Zero, Entry);
  IrBuilder::addIncoming(I, I2, Body);
  IrBuilder::addIncoming(Acc, Zero, Entry);
  IrBuilder::addIncoming(Acc, Acc2, Body);
  B.finish();
  return F;
}

} // namespace

Function *kernels::buildBoundsCheckedLoop(Module &M, const std::string &Name,
                                          unsigned ArrayId, unsigned Work) {
  Function *F = M.addFunction(Name, 2); // (n, ref)
  IrBuilder B(*F);
  BasicBlock *Entry = B.makeBlock("entry");
  BasicBlock *Header = B.makeBlock("header");
  BasicBlock *Body = B.makeBlock("body");
  BasicBlock *Exit = B.makeBlock("exit");

  B.setBlock(Entry);
  Instruction *N = B.param(0);
  Instruction *Ref = B.param(1); // models the array reference (non-null)
  Instruction *Zero = B.constant(0);
  Instruction *Len = B.constant(
      static_cast<int64_t>(M.arrayInit(ArrayId).size()));
  B.jump(Header);

  B.setBlock(Header);
  Instruction *I = B.phi();
  Instruction *Acc = B.phi();
  Instruction *Cond = B.cmpLt(I, N);
  B.branch(Cond, Body, Exit);

  B.setBlock(Body);
  // The JVM's per-access checks: null check on the reference, bounds
  // check on the index (§5.5's dominant guard kinds).
  Instruction *NonNull = B.binary(Opcode::CmpNe, Ref, Zero);
  B.guard(NonNull, GuardKind::NullCheck);
  Instruction *InRange = B.cmpLt(I, Len);
  B.guard(InRange, GuardKind::BoundsCheck);
  Instruction *V = B.load(ArrayId, I);
  Instruction *Worked = emitWork(B, V, Work);
  Instruction *Acc2 = B.add(Acc, Worked);
  Instruction *One = B.constant(1);
  Instruction *I2 = B.add(I, One);
  B.jump(Header);

  B.setBlock(Exit);
  B.ret(Acc);

  IrBuilder::addIncoming(I, Zero, Entry);
  IrBuilder::addIncoming(I, I2, Body);
  IrBuilder::addIncoming(Acc, Zero, Entry);
  IrBuilder::addIncoming(Acc, Acc2, Body);
  B.finish();
  return F;
}

Function *kernels::buildSyncLoop(Module &M, const std::string &Name,
                                 unsigned ArrayId, unsigned LockClass,
                                 unsigned Work) {
  Function *F = M.addFunction(Name, 1);
  IrBuilder B(*F);
  BasicBlock *Entry = B.makeBlock("entry");
  BasicBlock *Header = B.makeBlock("header");
  BasicBlock *Body = B.makeBlock("body");
  BasicBlock *Exit = B.makeBlock("exit");

  B.setBlock(Entry);
  Instruction *N = B.param(0);
  Instruction *Zero = B.constant(0);
  Instruction *Lock = B.newObject(LockClass);
  Instruction *Mask = B.constant(
      static_cast<int64_t>(M.arrayInit(ArrayId).size() - 1));
  B.jump(Header);

  B.setBlock(Header);
  Instruction *I = B.phi();
  Instruction *Acc = B.phi();
  Instruction *Cond = B.cmpLt(I, N);
  B.branch(Cond, Body, Exit);

  B.setBlock(Body);
  B.monitorEnter(Lock);
  Instruction *Index = B.binary(Opcode::And, I, Mask);
  Instruction *V = B.load(ArrayId, Index);
  Instruction *Worked = emitWork(B, V, Work);
  Instruction *Acc2 = B.add(Acc, Worked);
  B.monitorExit(Lock);
  Instruction *One = B.constant(1);
  Instruction *I2 = B.add(I, One);
  B.jump(Header);

  B.setBlock(Exit);
  B.ret(Acc);

  IrBuilder::addIncoming(I, Zero, Entry);
  IrBuilder::addIncoming(I, I2, Body);
  IrBuilder::addIncoming(Acc, Zero, Entry);
  IrBuilder::addIncoming(Acc, Acc2, Body);
  B.finish();
  return F;
}

namespace {

/// Shared scaffold for the CAS kernels: outer counted loop whose body runs
/// one or two CAS retry loops against a heap cell.
Function *buildCasKernel(Module &M, const std::string &Name,
                         unsigned CellClass, bool TwoLoops) {
  Function *F = M.addFunction(Name, 1);
  IrBuilder B(*F);
  BasicBlock *Entry = B.makeBlock("entry");
  BasicBlock *Header = B.makeBlock("header");
  BasicBlock *Retry1 = B.makeBlock("retry1");
  BasicBlock *Retry2 = TwoLoops ? B.makeBlock("retry2") : nullptr;
  BasicBlock *Latch = B.makeBlock("latch");
  BasicBlock *Exit = B.makeBlock("exit");

  B.setBlock(Entry);
  Instruction *N = B.param(0);
  Instruction *Zero = B.constant(0);
  Instruction *Cell = B.newObject(CellClass);
  B.putField(Cell, 0, B.constant(0x5EED));
  B.jump(Header);

  B.setBlock(Header);
  Instruction *I = B.phi();
  Instruction *Acc = B.phi();
  Instruction *Cond = B.cmpLt(I, N);
  B.branch(Cond, Retry1, Exit);

  // First retry loop: the java.util.Random next() shape.
  B.setBlock(Retry1);
  Instruction *V1 = B.getField(Cell, 0);
  Instruction *M1 = B.constant(0x5DEECE66D);
  Instruction *Mul1 = B.mul(V1, M1);
  Instruction *A1 = B.constant(0xB);
  Instruction *Nv1 = B.add(Mul1, A1);
  Instruction *Ok1 = B.cas(Cell, 0, V1, Nv1);
  B.branch(Ok1, TwoLoops ? Retry2 : Latch, Retry1);

  Instruction *Final = Nv1;
  if (TwoLoops) {
    B.setBlock(Retry2);
    Instruction *V2 = B.getField(Cell, 0);
    Instruction *M2 = B.constant(0x5DEECE66D);
    Instruction *Mul2 = B.mul(V2, M2);
    Instruction *A2 = B.constant(0xD);
    Instruction *Nv2 = B.add(Mul2, A2);
    Instruction *Ok2 = B.cas(Cell, 0, V2, Nv2);
    B.branch(Ok2, Latch, Retry2);
    Final = Nv2;
  }

  B.setBlock(Latch);
  Instruction *Acc2 = B.add(Acc, Final);
  Instruction *One = B.constant(1);
  Instruction *I2 = B.add(I, One);
  B.jump(Header);

  B.setBlock(Exit);
  B.ret(Acc);

  IrBuilder::addIncoming(I, Zero, Entry);
  IrBuilder::addIncoming(I, I2, Latch);
  IrBuilder::addIncoming(Acc, Zero, Entry);
  IrBuilder::addIncoming(Acc, Acc2, Latch);
  B.finish();
  return F;
}

} // namespace

Function *kernels::buildCasRetryPair(Module &M, const std::string &Name,
                                     unsigned CellClass) {
  return buildCasKernel(M, Name, CellClass, /*TwoLoops=*/true);
}

Function *kernels::buildSingleCasLoop(Module &M, const std::string &Name,
                                      unsigned CellClass) {
  return buildCasKernel(M, Name, CellClass, /*TwoLoops=*/false);
}

Function *kernels::buildAtomicPublish(Module &M, const std::string &Name,
                                      unsigned BoxClass) {
  return buildCountedLoop(M, Name, [&](IrBuilder &B, Instruction *I,
                                       Instruction *Acc) {
    // A short-lived box mutated once via CAS before being read and
    // discarded — the Random/Promise/AtomicReference shape of §5.1.
    Instruction *Box = B.newObject(BoxClass);
    B.putField(Box, 0, I);
    Instruction *One = B.constant(1);
    Instruction *IPlus1 = B.add(I, One);
    B.cas(Box, 0, I, IPlus1);
    Instruction *V = B.getField(Box, 0);
    return B.add(Acc, V);
  });
}

Function *kernels::buildMhPipeline(Module &M, const std::string &Name,
                                   unsigned Work) {
  // The lambda body: a small pure function, as produced by a stream stage.
  Function *Lambda = M.addFunction(Name + ".lambda", 1);
  {
    IrBuilder LB(*Lambda);
    BasicBlock *E = LB.makeBlock("entry");
    LB.setBlock(E);
    Instruction *X = LB.param(0);
    Instruction *V = emitWork(LB, X, Work + 1);
    LB.ret(V);
    LB.finish();
  }
  unsigned Handle = M.addMethodHandle(Lambda);

  return buildCountedLoop(M, Name, [&](IrBuilder &B, Instruction *I,
                                       Instruction *Acc) {
    Instruction *R = B.mhInvoke(Handle, {I});
    return B.add(Acc, R);
  });
}

Function *kernels::buildTypeCheckMerge(Module &M, const std::string &Name,
                                       unsigned ClassA, unsigned ClassB) {
  Function *F = M.addFunction(Name, 1);
  IrBuilder B(*F);
  BasicBlock *Entry = B.makeBlock("entry");
  BasicBlock *Header = B.makeBlock("header");
  BasicBlock *PickA = B.makeBlock("picka");
  BasicBlock *PickB = B.makeBlock("pickb");
  BasicBlock *Sel = B.makeBlock("sel");
  BasicBlock *ArmT = B.makeBlock("armt");
  BasicBlock *ArmF = B.makeBlock("armf");
  BasicBlock *Merge = B.makeBlock("merge");
  BasicBlock *Exit = B.makeBlock("exit");

  B.setBlock(Entry);
  Instruction *N = B.param(0);
  Instruction *Zero = B.constant(0);
  Instruction *ObjA = B.newObject(ClassA);
  Instruction *ObjB = B.newObject(ClassB);
  B.jump(Header);

  B.setBlock(Header);
  Instruction *I = B.phi();
  Instruction *Acc = B.phi();
  Instruction *Cond = B.cmpLt(I, N);
  B.branch(Cond, PickA, Exit);

  // Alternate the dynamic type per iteration (megamorphic dispatch).
  B.setBlock(PickA);
  Instruction *One0 = B.constant(1);
  Instruction *Parity = B.binary(Opcode::And, I, One0);
  Instruction *IsEven = B.cmpEq(Parity, Zero);
  B.branch(IsEven, PickB, Sel);

  B.setBlock(PickB);
  B.jump(Sel);

  B.setBlock(Sel);
  Instruction *X = B.phi();
  Instruction *Check1 = B.instanceOf(X, ClassA);
  B.branch(Check1, ArmT, ArmF);

  B.setBlock(ArmT);
  Instruction *C1 = B.constant(1);
  Instruction *T = B.add(Acc, C1);
  B.jump(Merge);

  B.setBlock(ArmF);
  Instruction *C2 = B.constant(2);
  Instruction *Fv = B.add(Acc, C2);
  B.jump(Merge);

  // The §5.7 pattern: the merge re-checks the same instanceof.
  B.setBlock(Merge);
  Instruction *Mphi = B.phi();
  Instruction *Check2 = B.instanceOf(X, ClassA);
  Instruction *Ten = B.constant(10);
  Instruction *Bonus = B.mul(Check2, Ten);
  Instruction *Acc2 = B.add(Mphi, Bonus);
  Instruction *One = B.constant(1);
  Instruction *I2 = B.add(I, One);
  B.jump(Header);

  B.setBlock(Exit);
  B.ret(Acc);

  IrBuilder::addIncoming(I, Zero, Entry);
  IrBuilder::addIncoming(I, I2, Merge);
  IrBuilder::addIncoming(Acc, Zero, Entry);
  IrBuilder::addIncoming(Acc, Acc2, Merge);
  IrBuilder::addIncoming(X, ObjB, PickB);
  IrBuilder::addIncoming(X, ObjA, PickA);
  IrBuilder::addIncoming(Mphi, T, ArmT);
  IrBuilder::addIncoming(Mphi, Fv, ArmF);
  B.finish();
  return F;
}

Function *kernels::buildPlainArrayLoop(Module &M, const std::string &Name,
                                       unsigned ArrayId, unsigned Work) {
  return buildCountedLoop(M, Name, [&](IrBuilder &B, Instruction *I,
                                       Instruction *Acc) {
    Instruction *V = B.load(ArrayId, I);
    Instruction *Worked = emitWork(B, V, Work);
    return B.add(Acc, Worked);
  });
}

Function *kernels::buildHashedLoop(Module &M, const std::string &Name,
                                   unsigned ArrayId, unsigned Work) {
  return buildCountedLoop(M, Name, [&](IrBuilder &B, Instruction *I,
                                       Instruction *Acc) {
    // Index = (i * K) & mask: breaks the affine-index precondition of
    // every loop pass, leaving a realistic pointer-chasing access.
    Instruction *K = B.constant(40503);
    Instruction *Hash = B.mul(I, K);
    Instruction *Mask = B.constant(
        static_cast<int64_t>(M.arrayInit(ArrayId).size() - 1));
    Instruction *Index = B.binary(Opcode::And, Hash, Mask);
    Instruction *V = B.load(ArrayId, Index);
    Instruction *Worked = emitWork(B, V, Work);
    return B.add(Acc, Worked);
  });
}

Function *kernels::buildGuardedHashLoop(Module &M, const std::string &Name,
                                        unsigned ArrayId,
                                        unsigned GuardPairs) {
  Function *F = M.addFunction(Name, 2); // (n, ref)
  IrBuilder B(*F);
  BasicBlock *Entry = B.makeBlock("entry");
  BasicBlock *Header = B.makeBlock("header");
  BasicBlock *Body = B.makeBlock("body");
  BasicBlock *Exit = B.makeBlock("exit");

  B.setBlock(Entry);
  Instruction *N = B.param(0);
  Instruction *Ref = B.param(1);
  Instruction *Zero = B.constant(0);
  // The modelled logical array length: large enough for any trip count
  // (the physical accesses go through the masked hash anyway).
  Instruction *Len = B.constant(int64_t(1) << 40);
  Instruction *Mask = B.constant(
      static_cast<int64_t>(M.arrayInit(ArrayId).size() - 1));
  B.jump(Header);

  B.setBlock(Header);
  Instruction *I = B.phi();
  Instruction *Acc = B.phi();
  Instruction *Cond = B.cmpLt(I, N);
  B.branch(Cond, Body, Exit);

  B.setBlock(Body);
  // GuardPairs x (null check on the reference + bounds check on i): the
  // multi-dimensional-array indexing shape whose guards dominate the
  // lu/sor kernels (§5.5, Table 15).
  for (unsigned G = 0; G < GuardPairs; ++G) {
    Instruction *NonNull = B.binary(Opcode::CmpNe, Ref, Zero);
    B.guard(NonNull, GuardKind::NullCheck);
    Instruction *InRange = B.cmpLt(I, Len);
    B.guard(InRange, GuardKind::BoundsCheck);
  }
  Instruction *K = B.constant(40503);
  Instruction *Hash = B.mul(I, K);
  Instruction *Index = B.binary(Opcode::And, Hash, Mask);
  Instruction *V = B.load(ArrayId, Index);
  // One data-dependent unreached-code guard per iteration: GM cannot
  // hoist it, so it remains after guard motion — matching the paper's
  // §5.5 distribution where UnreachedCode dominates the residue.
  Instruction *MinusOne = B.constant(-1);
  Instruction *Live = B.binary(Opcode::CmpNe, V, MinusOne);
  B.guard(Live, GuardKind::UnreachedCode);
  Instruction *Acc2 = B.add(Acc, V);
  Instruction *One = B.constant(1);
  Instruction *I2 = B.add(I, One);
  B.jump(Header);

  B.setBlock(Exit);
  B.ret(Acc);

  IrBuilder::addIncoming(I, Zero, Entry);
  IrBuilder::addIncoming(I, I2, Body);
  IrBuilder::addIncoming(Acc, Zero, Entry);
  IrBuilder::addIncoming(Acc, Acc2, Body);
  B.finish();
  return F;
}

Function *kernels::buildCallLoop(Module &M, const std::string &Name) {
  // A helper sized between the C2-like (12) and Graal-like (48) inline
  // thresholds: ~20 instructions of mixing arithmetic.
  Function *Helper = M.addFunction(Name + ".helper", 1);
  {
    IrBuilder HB(*Helper);
    HB.setBlock(HB.makeBlock("entry"));
    Instruction *X = HB.param(0);
    Instruction *V = emitWork(HB, X, 5); // 5 mul/add pairs + consts ~ 21
    HB.ret(V);
    HB.finish();
  }
  size_t HelperId = M.functionId(Helper);
  return buildCountedLoop(M, Name, [&](IrBuilder &B, Instruction *I,
                                       Instruction *Acc) {
    Instruction *R = B.invoke(HelperId, {I});
    return B.add(Acc, R);
  });
}

Function *kernels::buildDataGuardLoop(Module &M, const std::string &Name,
                                      unsigned ArrayId, unsigned Work) {
  return buildCountedLoop(M, Name, [&](IrBuilder &B, Instruction *I,
                                       Instruction *Acc) {
    Instruction *V = B.load(ArrayId, I);
    // Data-dependent check (e.g. a division/format guard): cannot be
    // hoisted, so vectorization never fires; only unrolling helps.
    Instruction *MinusOne = B.constant(-1);
    Instruction *Valid = B.binary(Opcode::CmpNe, V, MinusOne);
    B.guard(Valid, GuardKind::Other);
    Instruction *Worked = emitWork(B, V, Work);
    return B.add(Acc, Worked);
  });
}

Function *kernels::buildEscapingAllocLoop(Module &M, const std::string &Name,
                                          unsigned BoxClass,
                                          unsigned RefArrayId) {
  return buildCountedLoop(M, Name, [&](IrBuilder &B, Instruction *I,
                                       Instruction *Acc) {
    Instruction *Box = B.newObject(BoxClass);
    B.putField(Box, 0, I);
    Instruction *Mask = B.constant(
        static_cast<int64_t>(M.arrayInit(RefArrayId).size() - 1));
    Instruction *Slot = B.binary(Opcode::And, I, Mask);
    B.store(RefArrayId, Slot, Box); // escapes: published to the heap
    Instruction *V = B.getField(Box, 0);
    return B.add(Acc, V);
  });
}

Function *kernels::buildVirtualDispatchLoop(Module &M, const std::string &Name,
                                            unsigned NumClasses,
                                            unsigned Slot) {
  assert(NumClasses >= 1 && NumClasses <= 8 && "receiver set out of range");
  // One class per receiver shape, each implementing the vtable slot with
  // its own leaf: read the receiver's field, fold the argument with a
  // per-class multiplier. Results therefore distinguish dispatch targets.
  std::vector<unsigned> Classes;
  for (unsigned C = 0; C < NumClasses; ++C) {
    unsigned ClassId = M.addClass(Name + ".C" + std::to_string(C), 1);
    Function *Target =
        M.addFunction(Name + ".target" + std::to_string(C), 2);
    IrBuilder TB(*Target);
    TB.setBlock(TB.makeBlock("entry"));
    Instruction *Recv = TB.param(0);
    Instruction *X = TB.param(1);
    Instruction *Field = TB.getField(Recv, 0);
    Instruction *Scale = TB.constant(3 + C);
    Instruction *Scaled = TB.mul(X, Scale);
    TB.ret(TB.add(Field, Scaled));
    TB.finish();
    M.setVirtualTarget(ClassId, Slot, Target);
    Classes.push_back(ClassId);
  }
  unsigned RefArray = M.addArray(std::vector<int64_t>(NumClasses, 0));

  // (n, mask, base): iteration i dispatches on receiver (i & mask) + base,
  // so the invocation schedule controls the site's observed polymorphism
  // degree — and can shift it mid-run — without rebuilding the module.
  Function *F = M.addFunction(Name, 3);
  IrBuilder B(*F);
  BasicBlock *Entry = B.makeBlock("entry");
  BasicBlock *Header = B.makeBlock("header");
  BasicBlock *Body = B.makeBlock("body");
  BasicBlock *Exit = B.makeBlock("exit");

  B.setBlock(Entry);
  Instruction *N = B.param(0);
  Instruction *Mask = B.param(1);
  Instruction *Base = B.param(2);
  Instruction *Zero = B.constant(0);
  for (unsigned C = 0; C < NumClasses; ++C) {
    Instruction *Obj = B.newObject(Classes[C]);
    B.putField(Obj, 0, B.constant(17 * C + 5));
    B.store(RefArray, B.constant(C), Obj);
  }
  B.jump(Header);

  B.setBlock(Header);
  Instruction *I = B.phi();
  Instruction *Acc = B.phi();
  Instruction *Cond = B.cmpLt(I, N);
  B.branch(Cond, Body, Exit);

  B.setBlock(Body);
  Instruction *Sel = B.binary(Opcode::And, I, Mask);
  Instruction *Idx = B.add(Sel, Base);
  Instruction *Recv = B.load(RefArray, Idx);
  Instruction *R = B.virtualInvoke(Slot, Recv, {I});
  Instruction *Acc2 = B.add(Acc, R);
  Instruction *One = B.constant(1);
  Instruction *I2 = B.add(I, One);
  B.jump(Header);

  B.setBlock(Exit);
  B.ret(Acc);

  IrBuilder::addIncoming(I, Zero, Entry);
  IrBuilder::addIncoming(I, I2, Body);
  IrBuilder::addIncoming(Acc, Zero, Entry);
  IrBuilder::addIncoming(Acc, Acc2, Body);
  B.finish();
  return F;
}

Kernel kernels::virtualDispatchKernel(unsigned Modes, unsigned Invocations,
                                      int64_t Trips) {
  assert(Modes >= 1 && (Modes & (Modes - 1)) == 0 &&
         "modes must be a power of two for mask selection");
  Kernel K;
  K.M = std::make_unique<Module>();
  buildVirtualDispatchLoop(*K.M, "vdispatch", Modes);
  for (unsigned Inv = 0; Inv < Invocations; ++Inv)
    K.Invocations.push_back(
        Invocation{"vdispatch", {Trips, static_cast<int64_t>(Modes) - 1, 0}});
  return K;
}

Kernel kernels::virtualDispatchShiftKernel(unsigned PerPhase, int64_t Trips) {
  Kernel K;
  K.M = std::make_unique<Module>();
  buildVirtualDispatchLoop(*K.M, "vshift", 4);
  // Three phases, each monomorphic on a class the previous phases never
  // dispatched: the tiered runtime speculates monomorphically, deopts on
  // the first shift and recompiles bimorphically, then deopts again on
  // the second shift and falls back to the megamorphic inline cache.
  for (int64_t Base = 0; Base < 3; ++Base)
    for (unsigned Inv = 0; Inv < PerPhase; ++Inv)
      K.Invocations.push_back(Invocation{"vshift", {Trips, 0, Base}});
  return K;
}

Kernel kernels::tieredWarmupKernel(unsigned HotInvocations, int64_t Trips) {
  Kernel K;
  K.M = std::make_unique<Module>();
  Module &M = *K.M;
  assert(Trips <= 1024 && "hot loop trips exceed its array bound");
  unsigned DataArray = M.addArray(std::vector<int64_t>(1024, 7));
  buildBoundsCheckedLoop(M, "hot", DataArray, 2);
  // Cold ballast: straight-line functions of ~60 IR nodes, each invoked
  // exactly once. An ahead-of-time compile pays their modelled compile
  // cost up front; the tiered runtime never promotes them.
  const unsigned kBallast = 16;
  for (unsigned C = 0; C < kBallast; ++C) {
    Function *F = M.addFunction("cold" + std::to_string(C), 1);
    IrBuilder B(*F);
    B.setBlock(B.makeBlock("entry"));
    Instruction *X = B.param(0);
    B.ret(emitWork(B, X, 14));
    B.finish();
  }
  for (unsigned C = 0; C < kBallast; ++C)
    K.Invocations.push_back(
        Invocation{"cold" + std::to_string(C), {static_cast<int64_t>(C) + 3}});
  for (unsigned Inv = 0; Inv < HotInvocations; ++Inv)
    K.Invocations.push_back(Invocation{"hot", {Trips, 1}});
  return K;
}

//===----------------------------------------------------------------------===//
// Per-benchmark kernel mixes
//===----------------------------------------------------------------------===//

namespace {

/// Target impact profile of one benchmark, in percent of its baseline
/// cycles. The seven pass columns follow the paper's Tables 12-15
/// (significant positive entries; noise-level entries dropped); C2Adv
/// models the benchmarks where C2's classic unrolling beats Graal and
/// InlineAdv models Graal's generally stronger inlining (both feed Fig 6
/// only — neither affects the leave-one-out impact study, where every
/// configuration shares the Graal inliner).
struct TargetProfile {
  double Ac = 0, Ds = 0, Eawa = 0, Gm = 0, Lv = 0, Llc = 0, Mhs = 0;
  double C2Adv = 0, InlineAdv = 0;
};

constexpr PatternCalibration kCasPair = {42.0, 33.0};      // AC
constexpr PatternCalibration kTypeCheck = {15.0, 5.5};     // DS
constexpr PatternCalibration kPublish = {9.0, 57.0};       // EAWA
constexpr PatternCalibration kGuardHash2 = {13.0, 12.0};   // GM (2 pairs)
constexpr PatternCalibration kVecLoop = {4.5, 7.5};        // LV (work=2)
constexpr PatternCalibration kSync = {13.13, 57.87};       // LLC (work=1)
constexpr PatternCalibration kMh = {11.0, 43.0};           // MHS (work=1)
constexpr PatternCalibration kDataGuard = {13.0, 2.25};    // C2 advantage
constexpr PatternCalibration kCallLoop = {17.0, 13.0};     // inline adv.
constexpr PatternCalibration kHashed = {14.0, 0.0};        // filler (w=2)

/// Nominal baseline budget per benchmark kernel, in modelled cycles.
constexpr double kBudget = 400000.0;

const std::unordered_map<std::string, TargetProfile> &targetTable() {
  static const std::unordered_map<std::string, TargetProfile> Table = {
      // suite/name          {AC, DS, EAWA, GM, LV, LLC, MHS, C2Adv, Inline}
      // ---- Renaissance (Table 12) ----
      {"renaissance/akka-uct", {1, 2, 5, 1, 4, 0, 3, 0, 18}},
      {"renaissance/als", {0, 1, 0, 11, 10, 0, 0, 0, 15}},
      {"renaissance/chi-square", {4, 4, 5, 5, 3, 0, 4, 0, 15}},
      {"renaissance/db-shootout", {0, 0, 0, 5, 0, 0, 0, 0, 12}},
      {"renaissance/dec-tree", {0, 1, 0, 8, 3, 0, 0, 0, 15}},
      {"renaissance/dotty", {0.4, 2, 0, 3, 1, 0.4, 8, 0, 20}},
      {"renaissance/finagle-chirper", {0, 0, 24, 0, 0, 3, 4, 0, 18}},
      {"renaissance/finagle-http", {0, 4, 0, 0, 0, 0, 0, 0, 15}},
      {"renaissance/fj-kmeans", {0, 0, 0, 2, 0, 71, 0, 0, 10}},
      {"renaissance/future-genetic", {24, 0, 2, 2, 1, 1, 25, 0, 12}},
      {"renaissance/log-regression", {0, 1, 0, 15, 2, 2, 1, 0, 15}},
      {"renaissance/movie-lens", {0, 0, 1, 1, 0, 0, 1, 0, 15}},
      {"renaissance/naive-bayes", {1, 0, 1, 13, 1, 1, 0, 0, 12}},
      {"renaissance/neo4j-analytics", {0, 0, 0, 5, 0, 0, 0, 0, 15}},
      {"renaissance/page-rank", {0, 0, 0, 2, 0, 0, 0, 0, 12}},
      {"renaissance/philosophers", {0, 0, 0, 2, 2, 0, 0, 0, 12}},
      {"renaissance/reactors", {0, 0, 0, 0, 0, 0, 0, 0, 10}},
      {"renaissance/rx-scrabble", {0, 1, 0, 0, 0, 0, 1, 0, 15}},
      {"renaissance/scrabble", {1, 1, 0, 3, 0, 0, 22, 0, 15}},
      {"renaissance/stm-bench7", {1, 3, 1, 1, 0.4, 1, 0, 0, 12}},
      {"renaissance/streams-mnemonics", {0.4, 22, 1, 1, 2, 0.4, 7, 0, 15}},

      // ---- DaCapo (Table 13) ----
      {"dacapo/avrora", {0, 0.4, 0, 0.4, 0.4, 0.4, 0.4, 0, 12}},
      {"dacapo/batik", {0, 0, 0, 1, 0.4, 0, 0, 1.5, 1.5}},
      {"dacapo/eclipse", {0, 5, 0, 1, 1, 0, 0, 0, 15}},
      {"dacapo/fop", {0, 1, 0, 0, 1, 0, 0, 4, 1}},
      {"dacapo/h2", {0, 2, 0, 1, 0.4, 0, 1, 0, 15}},
      {"dacapo/jython", {0, 5, 1, 2, 0, 1, 0, 0, 18}},
      {"dacapo/luindex", {0, 3, 0, 2, 0.4, 0, 0, 0, 12}},
      {"dacapo/lusearch-fix", {0, 1, 0, 0, 0, 0, 0, 0, 10}},
      {"dacapo/pmd", {0, 0, 0.4, 0, 0, 0.4, 0.4, 3, 1}},
      {"dacapo/sunflow", {1, 4, 0.4, 0.4, 2, 2, 2, 0, 15}},
      {"dacapo/tomcat", {0.4, 0, 0.4, 0, 0.4, 0, 0, 1, 1}},
      {"dacapo/tradebeans", {0.4, 7, 0.4, 0, 1, 0.4, 0.4, 0, 15}},
      {"dacapo/tradesoap", {3, 0, 0, 0, 1, 0.4, 0, 0, 8}},
      {"dacapo/xalan", {1, 1, 0.4, 0.4, 0.4, 0.4, 0.4, 0, 12}},

      // ---- ScalaBench (Table 14) ----
      {"scalabench/actors", {0.4, 1, 1, 0.4, 0.4, 0, 0.4, 0, 12}},
      {"scalabench/apparat", {1, 0, 0, 0.4, 1, 0, 0, 0, 14}},
      {"scalabench/factorie", {2, 7, 1, 0, 1, 1, 1, 0, 15}},
      {"scalabench/kiama", {0, 4, 0, 1, 1, 0.4, 0.4, 0, 13}},
      {"scalabench/scalac", {0, 1, 0.4, 0, 0.4, 0, 0, 0, 14}},
      {"scalabench/scaladoc", {0, 0.4, 0, 0, 0, 0, 0, 1, 1}},
      {"scalabench/scalap", {0, 1, 0, 9, 2, 0, 0, 0, 12}},
      {"scalabench/scalariform", {0.4, 1, 0, 0.4, 0.4, 0.4, 0, 0, 12}},
      {"scalabench/scalatest", {0, 0, 0, 0.4, 1, 1, 0.4, 0, 11}},
      {"scalabench/scalaxb", {1, 4, 1, 4, 4, 4, 2, 0, 13}},
      {"scalabench/specs", {0, 0.4, 0, 0.4, 0.4, 0, 0, 0, 11}},
      {"scalabench/tmt", {0.4, 1, 0.4, 13, 1, 0.4, 0.4, 0, 13}},

      // ---- SPECjvm2008 (Table 15) ----
      {"specjvm2008/compiler.compiler", {0.4, 1, 0, 3, 1, 0, 0, 0, 8}},
      {"specjvm2008/compiler.sunflow", {0, 1, 0.4, 2, 1, 0, 0.4, 0, 8}},
      {"specjvm2008/compress", {0, 0, 0.4, 2, 4, 0, 0, 4, 1}},
      {"specjvm2008/crypto.aes", {0, 0, 0, 1, 1, 0, 0, 4, 1}},
      {"specjvm2008/crypto.rsa", {0, 0.4, 0, 0.4, 0, 0, 0, 3, 1}},
      {"specjvm2008/crypto.signverify", {0, 0.4, 0, 9, 0, 0, 0.4, 0, 4}},
      {"specjvm2008/derby", {0.4, 0.4, 0, 0, 0, 0.4, 0.4, 0, 8}},
      {"specjvm2008/mpegaudio", {0, 0, 0.4, 5, 0.4, 0.4, 0.4, 5, 1}},
      {"specjvm2008/scimark.fft.large", {0, 0, 0, 0, 0, 0, 0, 4, 1}},
      {"specjvm2008/scimark.fft.small", {0, 0, 0, 0, 0, 0, 0, 4, 1}},
      {"specjvm2008/scimark.lu.large", {0, 0, 0, 69, 29, 0, 0.4, 0, 2}},
      {"specjvm2008/scimark.lu.small", {0.4, 1, 0.4, 137, 58, 0.4, 0.4, 0, 2}},
      {"specjvm2008/scimark.monte_carlo", {2, 7, 0, 0, 0, 1, 1, 0, 4}},
      {"specjvm2008/scimark.sor.large", {0.4, 0, 0.4, 34, 0, 0.4, 0, 0, 2}},
      {"specjvm2008/scimark.sor.small", {0, 0, 0.4, 36, 0.4, 0, 0.4, 0, 2}},
      {"specjvm2008/scimark.sparse.large", {0.4, 1, 0.4, 16, 0.4, 0.4, 0.4, 0, 3}},
      {"specjvm2008/scimark.sparse.small", {0, 0, 0, 2, 0.4, 0.4, 0, 3, 1}},
      {"specjvm2008/serial", {0.4, 2, 1, 4, 1, 0, 0.4, 0, 6}},
      {"specjvm2008/sunflow", {1, 2, 1, 1, 2, 1, 1, 0, 7}},
      {"specjvm2008/xml.transform", {0.4, 2, 0, 3, 0.4, 0.4, 0.4, 0, 6}},
      {"specjvm2008/xml.validation", {0, 1, 0, 0, 1, 0, 0, 2, 2}},
  };
  return Table;
}

/// Trips needed so that a pattern contributes \p TargetPercent of the
/// nominal budget as removable cycles.
int64_t tripsFor(double TargetPercent, const PatternCalibration &Cal) {
  if (TargetPercent <= 0)
    return 0;
  return static_cast<int64_t>(TargetPercent / 100.0 * kBudget /
                              Cal.DeltaPerTrip);
}

} // namespace

const PatternCalibration &
kernels::calibrationFor(const std::string &Key) {
  static const std::unordered_map<std::string, PatternCalibration> Table = {
      {"AC", kCasPair},     {"DS", kTypeCheck}, {"EAWA", kPublish},
      {"GM", kGuardHash2},  {"LV", kVecLoop},   {"LLC", kSync},
      {"MHS", kMh},         {"C2ADV", kDataGuard},
      {"INLINE", kCallLoop}, {"FILLER", kHashed},
  };
  auto It = Table.find(Key);
  assert(It != Table.end() && "unknown calibration key");
  return It->second;
}

bool kernels::hasKernel(const std::string &SuiteName,
                        const std::string &Name) {
  return targetTable().count(SuiteName + "/" + Name) != 0;
}

std::vector<std::pair<std::string, std::string>> kernels::allBenchmarks() {
  std::vector<std::pair<std::string, std::string>> Out;
  for (const auto &[Key, Profile] : targetTable()) {
    (void)Profile;
    size_t Slash = Key.find('/');
    Out.emplace_back(Key.substr(0, Slash), Key.substr(Slash + 1));
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

Kernel kernels::kernelFor(const std::string &SuiteName,
                          const std::string &Name) {
  auto It = targetTable().find(SuiteName + "/" + Name);
  assert(It != targetTable().end() && "no kernel profile for benchmark");
  const TargetProfile &T = It->second;

  Kernel K;
  K.M = std::make_unique<Module>();
  Module &M = *K.M;
  unsigned BoxClass = M.addClass("Box", 1);
  unsigned LockClass = M.addClass("Lock", 1);
  unsigned CellClass = M.addClass("Cell", 1);
  unsigned ClassA = M.addClass("A", 1);
  unsigned ClassB = M.addClass("B", 1);
  // Data array: positive pseudo-random contents (never -1, so data guards
  // always pass), power-of-two size for mask indexing.
  std::vector<int64_t> Data(16384);
  uint64_t State = 0x9E3779B97F4A7C15ULL;
  for (auto &V : Data) {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    V = static_cast<int64_t>(State % 100003);
  }
  unsigned DataArray = M.addArray(Data);

  double UsedBudget = 0.0;
  unsigned Counter = 0;
  auto emit = [&](double TargetPercent, const PatternCalibration &Cal,
                  auto Build, bool ExtraRefArg = false) {
    int64_t Trips = tripsFor(TargetPercent, Cal);
    if (Trips <= 0)
      return;
    std::string FnName = "k" + std::to_string(Counter++);
    Function *F = Build(FnName);
    (void)F;
    std::vector<int64_t> Args = {Trips};
    if (ExtraRefArg)
      Args.push_back(1);
    K.Invocations.push_back(Invocation{FnName, Args});
    UsedBudget += static_cast<double>(Trips) * Cal.GraalPerTrip;
  };

  emit(T.Ac, kCasPair, [&](const std::string &N) {
    return buildCasRetryPair(M, N, CellClass);
  });
  emit(T.Ds, kTypeCheck, [&](const std::string &N) {
    return buildTypeCheckMerge(M, N, ClassA, ClassB);
  });
  emit(T.Eawa, kPublish, [&](const std::string &N) {
    return buildAtomicPublish(M, N, BoxClass);
  });
  emit(T.Gm, kGuardHash2, [&](const std::string &N) {
    return buildGuardedHashLoop(M, N, DataArray, 2);
  }, /*ExtraRefArg=*/true);
  emit(T.Lv, kVecLoop, [&](const std::string &N) {
    // The vector loop streams the array linearly, so it needs its own
    // array covering the whole trip count.
    size_t Needed =
        static_cast<size_t>(tripsFor(T.Lv, kVecLoop)) + 8;
    unsigned VecArray = M.addArray(std::vector<int64_t>(Needed, 5));
    return buildPlainArrayLoop(M, N, VecArray, 2);
  });
  emit(T.Llc, kSync, [&](const std::string &N) {
    return buildSyncLoop(M, N, DataArray, LockClass, 1);
  });
  emit(T.Mhs, kMh, [&](const std::string &N) {
    return buildMhPipeline(M, N, 1);
  });
  emit(T.C2Adv, kDataGuard, [&](const std::string &N) {
    return buildDataGuardLoop(M, N, DataArray, 1);
  });
  emit(T.InlineAdv, kCallLoop, [&](const std::string &N) {
    return buildCallLoop(M, N);
  });

  // Filler: neutral hashed-access computation topping the kernel up to
  // the nominal budget (skipped when the targets already exceed it, e.g.
  // scimark.lu.small's >100% guard impact).
  double Remaining = kBudget - UsedBudget;
  if (Remaining > kHashed.GraalPerTrip) {
    int64_t Trips =
        static_cast<int64_t>(Remaining / kHashed.GraalPerTrip);
    std::string FnName = "k" + std::to_string(Counter++);
    buildHashedLoop(M, FnName, DataArray, 2);
    K.Invocations.push_back(Invocation{FnName, {Trips}});
  }
  return K;
}
