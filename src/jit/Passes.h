//===- jit/Passes.h - The paper's optimization passes -----------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR-to-IR implementations of the seven optimizations the paper studies
/// (§5), plus the supporting scalar cleanups they enable:
///
///  - Escape Analysis with Atomic operations (EAWA, §5.1): scalar-replaces
///    non-escaping allocations; with atomics enabled, CAS effects are
///    emulated with compare+select arithmetic on the scalarized field.
///  - Loop-Wide Lock Coarsening (LLC, §5.2): tiles a synchronized loop
///    into monitor-held chunks of C iterations.
///  - Atomic-operation Coalescing (AC, §5.3): fuses two consecutive CAS
///    retry loops on the same location into one.
///  - Method-Handle Simplification (MHS, §5.4): devirtualizes constant
///    method-handle invocations into direct calls (which the inliner then
///    inlines, enabling the downstream optimizations).
///  - Speculative Guard Motion (GM, §5.5): hoists loop-invariant guards
///    and rewrites induction-variable bounds checks to loop-invariant
///    speculative variants in the preheader.
///  - Loop Vectorization (LV, §5.6): rewrites guard-free counted loops to
///    4-lane vector form with a scalar remainder loop; requires GM to have
///    removed in-loop guards first (the paper's observed dependency).
///  - Dominance-Based Duplication Simulation (DBDS, §5.7): duplicates a
///    merge block into its predecessors when that makes a type check
///    dominated by an identical check, then folds it.
///
/// Support passes: constant folding (with branch folding and unreachable-
/// block elimination), a bottom-up inliner, and 4x loop unrolling (used by
/// the "C2" configuration as its distinguishing strength).
///
/// Every pass returns true if it changed the IR. Passes keep the IR
/// verifiable: Function::verify() must hold before and after.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_PASSES_H
#define REN_JIT_PASSES_H

#include "jit/Ir.h"
#include "jit/Profile.h"

#include <unordered_set>

namespace ren {
namespace jit {

/// Folds constant arithmetic/compares, cmpeq(x,x), branches on constants;
/// removes unreachable blocks (fixing phis) and trivially dead pure
/// instructions. Iterates to a fixpoint.
bool runConstantFolding(Function &F);

/// Inlines direct calls to callees with at most \p MaxCalleeInsts
/// instructions (non-recursive).
bool runInliner(Module &M, Function &F, unsigned MaxCalleeInsts = 48);

/// §5.4: MethodHandleInvoke -> Invoke through the module's handle table.
bool runMethodHandleSimplification(Module &M, Function &F);

/// §5.1: partial escape analysis / scalar replacement for allocations used
/// only by field operations in their defining block. When
/// \p HandleAtomics is false (the pre-paper baseline), any CAS use
/// disqualifies the allocation.
bool runEscapeAnalysis(Function &F, bool HandleAtomics);

/// §5.2: loop-wide lock coarsening with chunk size \p Chunk.
bool runLockCoarsening(Function &F, unsigned Chunk = 32);

/// §5.3: coalesces consecutive CAS retry loops on the same field.
bool runAtomicCoalescing(Function &F);

/// §5.5: speculative guard motion.
bool runGuardMotion(Function &F);

/// §5.6: 4-lane loop vectorization (emits a scalar remainder loop).
bool runLoopVectorization(Function &F);

/// §5.7: dominance-based duplication of merge blocks to eliminate
/// dominated instanceof checks.
bool runDuplication(Function &F);

/// 4x unrolling of tight counted loops (the "C2" configuration's
/// distinguishing classic loop optimization).
bool runLoopUnrolling(Function &F);

//===----------------------------------------------------------------------===//
// Profile-driven speculation (the tiered tier-up; see Tiered.h)
//===----------------------------------------------------------------------===//

/// The degree of speculation applied at a site. A deoptimization
/// blacklists the failed (function, site, degree); the next compile then
/// picks the strongest remaining degree — virtual sites step down
/// monomorphic -> bimorphic -> megamorphic inline cache, biased branches
/// step down to the plain branch.
enum class SpecDegree { BranchSpec = 0, DevirtMono = 1, DevirtBi = 2 };

/// One assumption baked into compiled code, identified by the id carried
/// on its guard (Instruction::AssumptionId).
struct SpecAssumption {
  uint32_t Id = 0;
  std::string FunctionName;
  unsigned Site = 0; ///< instruction index in the unoptimized function
  SpecDegree Degree = SpecDegree::BranchSpec;
};

/// (site, degree) pairs that already failed, per function. Speculation
/// passes never re-apply a blacklisted degree, which bounds the
/// deopt/recompile cycle at each site.
struct SpecBlacklist {
  static uint64_t key(unsigned Site, SpecDegree Degree) {
    return (static_cast<uint64_t>(Site) << 2) | static_cast<uint64_t>(Degree);
  }
  bool contains(const std::string &Fn, unsigned Site,
                SpecDegree Degree) const {
    auto It = Failed.find(Fn);
    return It != Failed.end() && It->second.count(key(Site, Degree)) != 0;
  }
  void add(const std::string &Fn, unsigned Site, SpecDegree Degree) {
    Failed[Fn].insert(key(Site, Degree));
  }
  size_t size() const {
    size_t N = 0;
    for (const auto &[Fn, Keys] : Failed)
      N += Keys.size();
    return N;
  }

  std::unordered_map<std::string, std::unordered_set<uint64_t>> Failed;
};

/// Profile-driven branch straightening: a branch whose profile shows one
/// side never taken (with at least \p MinSamples observations) gets a
/// speculative guard on its condition and a constant branch condition;
/// the pipeline's constant folding then deletes the assumed-dead path.
/// Appends one SpecAssumption per inserted guard. \p F must be a fresh
/// clone of the profiled IR (sites are keyed by instruction index).
bool runBranchSpeculation(Function &F, const FunctionProfile &Prof,
                          const SpecBlacklist &Blacklist,
                          uint32_t &NextAssumptionId,
                          std::vector<SpecAssumption> &Assumptions,
                          uint64_t MinSamples = 16);

/// Profile-driven devirtualization of VirtualInvoke sites: monomorphic
/// sites become a speculative type check plus a direct (inlinable) call,
/// bimorphic sites a two-way dispatch diamond whose minority arm is
/// guarded, and megamorphic (or blacklisted-down) sites keep the
/// VirtualInvoke and dispatch through the runtime inline cache.
bool runSpeculativeDevirtualization(Module &M, Function &F,
                                    const FunctionProfile &Prof,
                                    const SpecBlacklist &Blacklist,
                                    uint32_t &NextAssumptionId,
                                    std::vector<SpecAssumption> &Assumptions,
                                    uint64_t MinSamples = 16);

} // namespace jit
} // namespace ren

#endif // REN_JIT_PASSES_H
