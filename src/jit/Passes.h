//===- jit/Passes.h - The paper's optimization passes -----------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR-to-IR implementations of the seven optimizations the paper studies
/// (§5), plus the supporting scalar cleanups they enable:
///
///  - Escape Analysis with Atomic operations (EAWA, §5.1): scalar-replaces
///    non-escaping allocations; with atomics enabled, CAS effects are
///    emulated with compare+select arithmetic on the scalarized field.
///  - Loop-Wide Lock Coarsening (LLC, §5.2): tiles a synchronized loop
///    into monitor-held chunks of C iterations.
///  - Atomic-operation Coalescing (AC, §5.3): fuses two consecutive CAS
///    retry loops on the same location into one.
///  - Method-Handle Simplification (MHS, §5.4): devirtualizes constant
///    method-handle invocations into direct calls (which the inliner then
///    inlines, enabling the downstream optimizations).
///  - Speculative Guard Motion (GM, §5.5): hoists loop-invariant guards
///    and rewrites induction-variable bounds checks to loop-invariant
///    speculative variants in the preheader.
///  - Loop Vectorization (LV, §5.6): rewrites guard-free counted loops to
///    4-lane vector form with a scalar remainder loop; requires GM to have
///    removed in-loop guards first (the paper's observed dependency).
///  - Dominance-Based Duplication Simulation (DBDS, §5.7): duplicates a
///    merge block into its predecessors when that makes a type check
///    dominated by an identical check, then folds it.
///
/// Support passes: constant folding (with branch folding and unreachable-
/// block elimination), a bottom-up inliner, and 4x loop unrolling (used by
/// the "C2" configuration as its distinguishing strength).
///
/// Every pass returns true if it changed the IR. Passes keep the IR
/// verifiable: Function::verify() must hold before and after.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_PASSES_H
#define REN_JIT_PASSES_H

#include "jit/Ir.h"

namespace ren {
namespace jit {

/// Folds constant arithmetic/compares, cmpeq(x,x), branches on constants;
/// removes unreachable blocks (fixing phis) and trivially dead pure
/// instructions. Iterates to a fixpoint.
bool runConstantFolding(Function &F);

/// Inlines direct calls to callees with at most \p MaxCalleeInsts
/// instructions (non-recursive).
bool runInliner(Module &M, Function &F, unsigned MaxCalleeInsts = 48);

/// §5.4: MethodHandleInvoke -> Invoke through the module's handle table.
bool runMethodHandleSimplification(Module &M, Function &F);

/// §5.1: partial escape analysis / scalar replacement for allocations used
/// only by field operations in their defining block. When
/// \p HandleAtomics is false (the pre-paper baseline), any CAS use
/// disqualifies the allocation.
bool runEscapeAnalysis(Function &F, bool HandleAtomics);

/// §5.2: loop-wide lock coarsening with chunk size \p Chunk.
bool runLockCoarsening(Function &F, unsigned Chunk = 32);

/// §5.3: coalesces consecutive CAS retry loops on the same field.
bool runAtomicCoalescing(Function &F);

/// §5.5: speculative guard motion.
bool runGuardMotion(Function &F);

/// §5.6: 4-lane loop vectorization (emits a scalar remainder loop).
bool runLoopVectorization(Function &F);

/// §5.7: dominance-based duplication of merge blocks to eliminate
/// dominated instanceof checks.
bool runDuplication(Function &F);

/// 4x unrolling of tight counted loops (the "C2" configuration's
/// distinguishing classic loop optimization).
bool runLoopUnrolling(Function &F);

} // namespace jit
} // namespace ren

#endif // REN_JIT_PASSES_H
