//===- jit/Experiment.h - Kernel execution under a config -------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue for the §5/§6 experiments: compile a benchmark kernel under an
/// optimization configuration and execute it, collecting modelled cycles,
/// guard counters and compilation statistics.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_EXPERIMENT_H
#define REN_JIT_EXPERIMENT_H

#include "jit/Compiler.h"
#include "jit/Interp.h"
#include "jit/Kernels.h"
#include "jit/Tiered.h"

namespace ren {
namespace jit {

/// The outcome of one kernel execution under one configuration.
struct KernelRun {
  uint64_t Cycles = 0;
  int64_t ResultHash = 0; ///< order-sensitive hash of invocation results
  GuardCounts Guards;
  uint64_t CasExecuted = 0;
  uint64_t CallsExecuted = 0;
  uint64_t MonitorOps = 0;
  uint64_t Allocations = 0;
  uint64_t MhDispatches = 0;
  uint64_t VirtualDispatches = 0;
  uint64_t PicHits = 0;
  uint64_t PicMisses = 0;
  /// Per-function cycle attribution (for the §5.4 hot-method table).
  std::unordered_map<std::string, uint64_t> CyclesByFunction;
  /// Compilation statistics of the configured pipeline.
  std::vector<CompileStats> Compilation;
  /// Total optimized IR nodes across the module (Fig 7 ingredient).
  unsigned TotalNodesAfter = 0;
  unsigned TotalNodesBefore = 0;
  /// Modelled cycles per invocation in schedule order — the warmup
  /// curve. For tiered runs, tier-up invocations include the modelled
  /// compile cost; for ahead-of-time runs the whole modelled compile
  /// cost is charged to the first invocation.
  std::vector<uint64_t> InvocationCycles;
  uint64_t ModelledCompileCycles = 0;
  /// Tier transition counters (all zero for non-tiered runs).
  TierCounters Tiers;
};

/// Clones the kernel module, compiles it under \p Config, runs the
/// invocation schedule \p Rounds times in order and aggregates the
/// results. \p CompileCostModel, when set, prices the ahead-of-time
/// compile (charged to the first invocation's cycle series entry) using
/// the same base/per-node constants as the tiered runtime.
KernelRun runKernel(const kernels::Kernel &K, const OptConfig &Config,
                    unsigned Rounds = 1,
                    const TieredConfig *CompileCostModel = nullptr);

/// Runs the schedule entirely in the profiling interpreter tier — the
/// "interpreter-only" warmup baseline. Never compiles.
KernelRun runKernelInterpOnly(const kernels::Kernel &K, unsigned Rounds = 1);

/// Runs the schedule under the tiered runtime: profiling tier, counter
/// tier-up, speculative compiles, deopt/recompile, inline caches.
KernelRun runKernelTiered(const kernels::Kernel &K, const TieredConfig &Config,
                          unsigned Rounds = 1);

} // namespace jit
} // namespace ren

#endif // REN_JIT_EXPERIMENT_H
