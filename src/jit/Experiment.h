//===- jit/Experiment.h - Kernel execution under a config -------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue for the §5/§6 experiments: compile a benchmark kernel under an
/// optimization configuration and execute it, collecting modelled cycles,
/// guard counters and compilation statistics.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_EXPERIMENT_H
#define REN_JIT_EXPERIMENT_H

#include "jit/Compiler.h"
#include "jit/Interp.h"
#include "jit/Kernels.h"

namespace ren {
namespace jit {

/// The outcome of one kernel execution under one configuration.
struct KernelRun {
  uint64_t Cycles = 0;
  int64_t ResultHash = 0; ///< order-sensitive hash of invocation results
  GuardCounts Guards;
  uint64_t CasExecuted = 0;
  uint64_t CallsExecuted = 0;
  uint64_t MonitorOps = 0;
  uint64_t Allocations = 0;
  uint64_t MhDispatches = 0;
  /// Per-function cycle attribution (for the §5.4 hot-method table).
  std::unordered_map<std::string, uint64_t> CyclesByFunction;
  /// Compilation statistics of the configured pipeline.
  std::vector<CompileStats> Compilation;
  /// Total optimized IR nodes across the module (Fig 7 ingredient).
  unsigned TotalNodesAfter = 0;
  unsigned TotalNodesBefore = 0;
};

/// Clones the kernel module, compiles it under \p Config, runs every
/// invocation in order and aggregates the results.
KernelRun runKernel(const kernels::Kernel &K, const OptConfig &Config);

} // namespace jit
} // namespace ren

#endif // REN_JIT_EXPERIMENT_H
