//===- jit/Kernels.h - Per-benchmark hot-code kernels -----------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR kernels capturing each benchmark's hot code patterns, used by the §5
/// and §6 experiments.
///
/// The paper measures optimization impact on the real JVM workloads; our
/// substitution executes, for every benchmark, a small IR module whose
/// code patterns mirror what the benchmark's hot loops do on the JVM
/// (after inlining): CAS retry loops for the Random/AtomicLong users,
/// synchronized loops for fj-kmeans-style aggregation, bounds-checked
/// array loops for the Spark ML kernels, method-handle pipelines for the
/// lambda-heavy streams code, duplicated type checks for megamorphic
/// dispatch code, allocation loops for the Scala workloads, and plain
/// arithmetic for the SPEC kernels. Per-benchmark pattern *mixes* (which
/// patterns and how many iterations) encode what fraction of the
/// benchmark's time the paper attributes to each opportunity.
///
/// Pattern builders are exposed individually for tests and ablations.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_KERNELS_H
#define REN_JIT_KERNELS_H

#include "jit/Ir.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ren {
namespace jit {
namespace kernels {

/// Pattern builders. Every function takes the trip count as parameter 0
/// and returns an accumulator (so results can validate optimizations).
/// \p Work scales extra per-iteration arithmetic.

/// Bounds+null-checked array reduction (GM/LV target).
Function *buildBoundsCheckedLoop(Module &M, const std::string &Name,
                                 unsigned ArrayId, unsigned Work);

/// Monitor-protected loop body (LLC target).
Function *buildSyncLoop(Module &M, const std::string &Name,
                        unsigned ArrayId, unsigned LockClass, unsigned Work);

/// Two consecutive CAS retry loops per iteration (AC target).
Function *buildCasRetryPair(Module &M, const std::string &Name,
                            unsigned CellClass);

/// A single CAS retry loop per iteration (atomic-heavy, not coalescible).
Function *buildSingleCasLoop(Module &M, const std::string &Name,
                             unsigned CellClass);

/// Allocate + initialize + CAS + read on a non-escaping object (EAWA).
Function *buildAtomicPublish(Module &M, const std::string &Name,
                             unsigned BoxClass);

/// Loop invoking a small lambda through a method handle (MHS target).
/// The callee is created alongside and registered in the handle table.
Function *buildMhPipeline(Module &M, const std::string &Name,
                          unsigned Work);

/// Branch on instanceof followed by a merge re-checking it (DBDS target).
Function *buildTypeCheckMerge(Module &M, const std::string &Name,
                              unsigned ClassA, unsigned ClassB);

/// Tight scalar array loop with no guards (LV and unroll both apply).
Function *buildPlainArrayLoop(Module &M, const std::string &Name,
                              unsigned ArrayId, unsigned Work);

/// Hash-indexed array loop: the load index is a hash of the induction
/// variable, so no loop pass applies — the neutral "filler" computation.
Function *buildHashedLoop(Module &M, const std::string &Name,
                          unsigned ArrayId, unsigned Work);

/// Hash-indexed loop with \p GuardPairs (null check + bounds check) per
/// iteration. Guard motion hoists all checks, but the hashed access keeps
/// the loop unvectorizable: a pure-GM opportunity.
Function *buildGuardedHashLoop(Module &M, const std::string &Name,
                               unsigned ArrayId, unsigned GuardPairs);

/// Loop calling a mid-size helper through a direct call. Inlined by an
/// aggressive (Graal-like) inliner, left out-of-line by a conservative
/// (C2-like) one — the generic inlining advantage of Fig 6.
Function *buildCallLoop(Module &M, const std::string &Name);

/// Array loop guarded by a data-dependent check (GM cannot hoist it, so
/// LV bails; only classic unrolling helps — the "C2 wins" shape).
Function *buildDataGuardLoop(Module &M, const std::string &Name,
                             unsigned ArrayId, unsigned Work);

/// Loop allocating objects that escape into an array (allocation-rate
/// profile of the Scala workloads; PEA cannot remove it).
Function *buildEscapingAllocLoop(Module &M, const std::string &Name,
                                 unsigned BoxClass, unsigned RefArrayId);

/// Loop dispatching through a vtable slot on a receiver picked per
/// iteration from \p NumClasses singleton receivers, each of a distinct
/// class implementing the slot with its own leaf (devirtualization / PIC
/// target). Unlike the other builders this one takes three parameters,
/// (n, mask, base): iteration i calls through receiver (i & mask) + base,
/// so the invocation schedule controls — and can shift mid-run — the
/// site's observed polymorphism degree.
Function *buildVirtualDispatchLoop(Module &M, const std::string &Name,
                                   unsigned NumClasses, unsigned Slot = 0);

/// One entry-point invocation of a kernel module.
struct Invocation {
  std::string FunctionName;
  std::vector<int64_t> Args;
};

/// A benchmark's kernel: the module plus its invocation schedule.
struct Kernel {
  std::unique_ptr<Module> M;
  std::vector<Invocation> Invocations;
};

/// Builds the kernel for the benchmark \p Name of \p SuiteName
/// ("renaissance", "dacapo", "scalabench", "specjvm2008"). Asserts the
/// benchmark is known.
Kernel kernelFor(const std::string &SuiteName, const std::string &Name);

/// True if a kernel mix is defined for the benchmark.
bool hasKernel(const std::string &SuiteName, const std::string &Name);

/// Every (suite, benchmark) pair with a kernel mix, deterministically
/// ordered — the sweep domain for exhaustive differential tests.
std::vector<std::pair<std::string, std::string>> allBenchmarks();

/// Virtual-dispatch kernel cycling every iteration over \p Modes receiver
/// classes (1 = monomorphic, 2 = bimorphic, 4 = megamorphic). \p Modes
/// must be a power of two (mask selection).
Kernel virtualDispatchKernel(unsigned Modes, unsigned Invocations = 24,
                             int64_t Trips = 256);

/// Virtual-dispatch kernel whose receiver distribution shifts mid-run:
/// three phases of \p PerPhase invocations, each monomorphic on a class
/// the earlier phases never dispatched. Drives the tiered runtime through
/// the full deopt chain: monomorphic speculation, deopt + bimorphic
/// recompile, deopt + megamorphic inline-cache fallback.
Kernel virtualDispatchShiftKernel(unsigned PerPhase = 12,
                                  int64_t Trips = 256);

/// Warmup-curve kernel: 16 cold straight-line ballast functions invoked
/// once each, then a hot bounds-checked loop invoked \p HotInvocations
/// times. Ahead-of-time compilation pays the ballast's modelled compile
/// cost before the first result; the tiered runtime only ever compiles
/// the hot entry. \p Trips must stay within the hot loop's 1024-element
/// array.
Kernel tieredWarmupKernel(unsigned HotInvocations = 120, int64_t Trips = 200);

/// Calibrated per-trip cycle cost of a pattern under the graal pipeline
/// and the per-trip cycle delta its targeted pass removes. Kernel trip
/// counts are derived from these; KernelCalibrationTest verifies they
/// match the implementation.
struct PatternCalibration {
  double GraalPerTrip;
  double DeltaPerTrip;
};

/// Calibration constants by pass short name ("AC", "DS", "EAWA", "GM",
/// "LV", "LLC", "MHS") plus "C2ADV" (data-guard loop, where the delta is
/// the c2-config advantage) and "INLINE" (call loop, where the delta is
/// the graal-inliner advantage over c2).
const PatternCalibration &calibrationFor(const std::string &Key);

} // namespace kernels
} // namespace jit
} // namespace ren

#endif // REN_JIT_KERNELS_H
