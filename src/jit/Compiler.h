//===- jit/Compiler.h - Optimization pipeline and configs -------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation pipeline: an optimization configuration (which of the
/// §5 passes run), per-pass timing (Table 16), and compiled-code-size
/// accounting (Fig 7).
///
/// Two named configurations mirror the paper's §6 compiler comparison:
///  - "graal": all seven studied optimizations plus inlining;
///  - "c2": the classic HotSpot-server-style set — basic escape analysis
///    (without atomics), guard motion, vectorization, inlining and 4x
///    unrolling (its distinguishing classic loop optimization), but none
///    of the four newly proposed passes.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_COMPILER_H
#define REN_JIT_COMPILER_H

#include "jit/Ir.h"

#include <string>
#include <vector>

namespace ren {
namespace jit {

/// Which optimizations the pipeline runs.
struct OptConfig {
  bool Inline = true;
  bool Eawa = true;  ///< §5.1 escape analysis *with atomics*
  bool BasePea = true; ///< baseline PEA (no atomics) when Eawa is off
  bool Llc = true;   ///< §5.2 loop-wide lock coarsening
  bool Ac = true;    ///< §5.3 atomic-operation coalescing
  bool Mhs = true;   ///< §5.4 method-handle simplification
  bool Gm = true;    ///< §5.5 speculative guard motion
  bool Lv = true;    ///< §5.6 loop vectorization
  bool Dbds = true;  ///< §5.7 duplication simulation
  bool Unroll = false; ///< classic 4x unrolling (C2 flavour)
  unsigned LlcChunk = 32;
  /// Maximum callee size the inliner accepts. Graal's inliner is markedly
  /// more aggressive than C2's — a large part of its general advantage.
  unsigned InlineThreshold = 48;

  /// All §5 optimizations enabled (the paper's experimental baseline).
  static OptConfig graal();

  /// The HotSpot-C2-style configuration.
  static OptConfig c2();

  /// graal() with exactly one §5 pass disabled, by short name:
  /// "AC", "DS", "EAWA", "GM", "LV", "LLC", "MHS".
  static OptConfig graalWithout(const std::string &PassShortName);

  /// The seven short names in the paper's column order.
  static const std::vector<std::string> &passShortNames();
};

/// Wall-time and size effect of one pass over one function.
struct PassStat {
  std::string PassName;
  uint64_t WallNanos = 0;
  bool ChangedIr = false;
};

/// The result of compiling one function.
struct CompileStats {
  std::string FunctionName;
  unsigned NodesBefore = 0;
  unsigned NodesAfter = 0;
  std::vector<PassStat> Passes;

  uint64_t totalCompileNanos() const {
    uint64_t T = 0;
    for (const PassStat &P : Passes)
      T += P.WallNanos;
    return T;
  }
};

/// Modelled machine-code bytes for a compiled function: a fixed frame cost
/// plus a per-IR-node expansion factor (Fig 7's "code size").
uint64_t estimateCodeBytes(const Function &F);

/// Runs the configured pipeline over one function of \p M in place.
CompileStats compileFunction(Module &M, Function &F, const OptConfig &Config);

/// Runs the configured pipeline over every function of \p M in place.
/// \returns per-function statistics.
std::vector<CompileStats> compileModule(Module &M, const OptConfig &Config);

/// Runs the pipeline over just the named functions, in module order —
/// what a tier-up compiles: an entry function's hot closure rather than
/// the whole module.
std::vector<CompileStats> compileFunctions(Module &M,
                                           const std::vector<std::string> &Names,
                                           const OptConfig &Config);

/// The names of \p Entry plus every function transitively reachable from
/// it through direct calls, method handles and vtable bindings — the
/// closure a tier-up must compile so compiled code never calls back into
/// unoptimized IR.
std::vector<std::string> transitiveCallees(const Module &M,
                                           const Function &Entry);

} // namespace jit
} // namespace ren

#endif // REN_JIT_COMPILER_H
