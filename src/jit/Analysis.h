//===- jit/Analysis.h - CFG analyses: dominators and loops ------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-tree and natural-loop analyses over the mini-JIT CFG, used by
/// the optimization passes (guard motion, lock coarsening, vectorization,
/// dominance-based duplication).
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_ANALYSIS_H
#define REN_JIT_ANALYSIS_H

#include "jit/Ir.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ren {
namespace jit {

/// Immediate-dominator tree (Cooper-Harvey-Kennedy iteration).
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  /// Immediate dominator of \p B (nullptr for the entry block).
  BasicBlock *idom(const BasicBlock *B) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Reverse post-order of reachable blocks.
  const std::vector<BasicBlock *> &reversePostOrder() const { return Rpo; }

private:
  std::vector<BasicBlock *> Rpo;
  std::unordered_map<const BasicBlock *, unsigned> RpoIndex;
  std::unordered_map<const BasicBlock *, BasicBlock *> Idom;
};

/// A natural loop discovered from a back edge Latch -> Header.
struct Loop {
  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr;
  /// All blocks of the loop body (including header and latch).
  std::unordered_set<BasicBlock *> Blocks;
  /// The unique out-of-loop predecessor of the header, if there is exactly
  /// one (the preheader); nullptr otherwise.
  BasicBlock *Preheader = nullptr;

  bool contains(const BasicBlock *B) const {
    return Blocks.count(const_cast<BasicBlock *>(B)) != 0;
  }

  bool contains(const Instruction *I) const { return contains(I->Parent); }
};

/// Finds all natural loops of \p F.
std::vector<Loop> findLoops(const Function &F, const DominatorTree &Dom);

/// A recognized counted loop:
///   header: i = phi(init from preheader, step from latch)
///           cond = cmplt(i, bound); br cond body, exit
/// with i incremented by a constant in the loop.
struct CountedLoop {
  Loop TheLoop;
  Instruction *Induction = nullptr; ///< the phi
  Instruction *Init = nullptr;      ///< initial value (from preheader)
  Instruction *Step = nullptr;      ///< the add producing the next value
  int64_t StepValue = 0;            ///< constant increment
  Instruction *Bound = nullptr;     ///< loop bound operand of the compare
  Instruction *Compare = nullptr;   ///< the cmplt
  BasicBlock *Exit = nullptr;       ///< the false target of the branch
};

/// Attempts to match \p L as a counted loop. \returns true on success.
bool matchCountedLoop(const Loop &L, CountedLoop &Out);

/// True if \p I is invariant in \p L: all of its operands are defined
/// outside the loop or are constants (one level; no recursion).
bool isLoopInvariant(const Loop &L, const Instruction *I);

} // namespace jit
} // namespace ren

#endif // REN_JIT_ANALYSIS_H
