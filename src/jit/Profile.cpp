//===- jit/Profile.cpp -----------------------------------------------------==//

#include "jit/Profile.h"

#include <algorithm>

using namespace ren;
using namespace ren::jit;

uint64_t ReceiverProfile::total() const {
  uint64_t T = 0;
  for (const auto &[Cls, N] : Counts)
    T += N;
  return T;
}

std::vector<std::pair<unsigned, uint64_t>> ReceiverProfile::sorted() const {
  std::vector<std::pair<unsigned, uint64_t>> Out(Counts.begin(), Counts.end());
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  return Out;
}

const FunctionProfile *ProfileData::lookup(const std::string &Name) const {
  auto It = Functions.find(Name);
  return It == Functions.end() ? nullptr : &It->second;
}

unsigned PicState::numValid() const {
  unsigned N = 0;
  for (const Entry &E : Entries)
    N += E.Valid ? 1 : 0;
  return N;
}

const Function *PicState::lookup(unsigned ClassId) const {
  for (const Entry &E : Entries)
    if (E.Valid && E.ClassId == ClassId)
      return E.Target;
  return nullptr;
}

bool PicState::install(unsigned ClassId, const Function *Target) {
  for (Entry &E : Entries) {
    if (!E.Valid) {
      E = Entry{ClassId, Target, true};
      return true;
    }
  }
  return false;
}

const PicState *PicSet::lookup(const std::string &FunctionName,
                               unsigned SiteIndex) const {
  auto FIt = Sites.find(FunctionName);
  if (FIt == Sites.end())
    return nullptr;
  auto SIt = FIt->second.find(SiteIndex);
  return SIt == FIt->second.end() ? nullptr : &SIt->second;
}

uint64_t PicSet::totalHits() const {
  uint64_t T = 0;
  for (const auto &[Fn, Map] : Sites)
    for (const auto &[Site, P] : Map)
      T += P.Hits;
  return T;
}

uint64_t PicSet::totalMisses() const {
  uint64_t T = 0;
  for (const auto &[Fn, Map] : Sites)
    for (const auto &[Site, P] : Map)
      T += P.Misses;
  return T;
}
