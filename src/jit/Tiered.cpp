//===- jit/Tiered.cpp ------------------------------------------------------==//

#include "jit/Tiered.h"

#include <optional>

using namespace ren;
using namespace ren::jit;

TieredRuntime::TieredRuntime(const Module &Source, TieredConfig Config)
    : Source(Source), Config(std::move(Config)), Interp(Source) {}

bool TieredRuntime::isCompiled(const std::string &FunctionName) const {
  auto It = Entries.find(FunctionName);
  return It != Entries.end() && It->second.Code != nullptr;
}

void TieredRuntime::compileEntry(EntryState &E, const std::string &Name) {
  E.Code = Source.clone();
  E.LiveAssumptions = 0;
  Function *Entry = E.Code->function(Name);
  assert(Entry && "tier-up of unknown function");
  std::vector<std::string> Closure = transitiveCallees(*E.Code, *Entry);

  if (Config.Speculate && !E.SpecDisabled) {
    for (const std::string &FN : Closure) {
      const FunctionProfile *P = Profile.lookup(FN);
      if (!P)
        continue;
      Function *F = E.Code->function(FN);
      std::vector<SpecAssumption> Fresh;
      runBranchSpeculation(*F, *P, Blacklist, NextAssumptionId, Fresh,
                           Config.MinProfileSamples);
      runSpeculativeDevirtualization(*E.Code, *F, *P, Blacklist,
                                     NextAssumptionId, Fresh,
                                     Config.MinProfileSamples);
      [[maybe_unused]] std::string Error = F->verify();
      assert(Error.empty() && "speculation produced malformed IR");
      for (const SpecAssumption &A : Fresh)
        Assumptions[A.Id] = A;
      E.LiveAssumptions += Fresh.size();
    }
  }

  std::vector<CompileStats> Stats =
      compileFunctions(*E.Code, Closure, Config.Opt);
  uint64_t Cost = 0;
  for (const CompileStats &S : Stats)
    Cost += Config.CompileBaseCycles +
            static_cast<uint64_t>(S.NodesBefore) * Config.CompileCyclesPerNode;
  for (CompileStats &S : Stats)
    AllCompiles.push_back(std::move(S));

  ++Counters.Compiles;
  Counters.ModelledCompileCycles += Cost;
  E.PendingCompileCycles += Cost;
  // New code invalidates inline caches: cached targets point into the
  // module they were filled from.
  Pics.clear();
}

ExecResult TieredRuntime::invoke(const std::string &FunctionName,
                                 const std::vector<int64_t> &Args) {
  EntryState &E = Entries[FunctionName];
  const Function *SrcF = Source.function(FunctionName);
  assert(SrcF && "invocation of unknown function");

  // Tier-up check before execution: counters from earlier invocations
  // (or a hot loop's backedges) trigger a compile for this one.
  if (!E.Code) {
    const FunctionProfile *P = Profile.lookup(FunctionName);
    if (P && (P->Invocations >= Config.InvocationThreshold ||
              P->Backedges >= Config.BackedgeThreshold))
      compileEntry(E, FunctionName);
  }

  // Compile cost is charged to the invocation that triggered it, so the
  // per-invocation cycle series shows the warmup spike.
  uint64_t ExtraCycles = E.PendingCompileCycles;
  E.PendingCompileCycles = 0;

  if (!E.Code) {
    ExecOptions O;
    O.Tier = ExecTier::Profiling;
    O.Profile = &Profile;
    ExecResult R = Interp.run(*SrcF, Args, O);
    ++Counters.ProfiledInvocations;
    R.Cycles += ExtraCycles;
    return R;
  }

  const Function *CF = E.Code->function(FunctionName);
  ExecOptions O;
  O.Tier = ExecTier::Compiled;
  O.Code = E.Code.get();
  O.Pics = &Pics;
  O.AllowDeopt = E.LiveAssumptions != 0;
  // Speculative code can fail mid-invocation after side effects; snapshot
  // the heap so a deopt can replay the invocation from a clean state.
  std::optional<Interpreter::HeapSnapshot> Snapshot;
  if (O.AllowDeopt)
    Snapshot = Interp.snapshotHeap();
  ExecResult R = Interp.run(*CF, Args, O);
  if (!R.Deopted) {
    ++Counters.CompiledInvocations;
    R.Cycles += ExtraCycles;
    return R;
  }

  // Deoptimization: roll back, blacklist the failed assumption, replay in
  // the profiling tier (the replay teaches the profile the violating
  // behaviour), then recompile without the assumption.
  ++Counters.Deopts;
  ExtraCycles += R.Cycles; // the discarded speculative work still cost us
  Interp.restoreHeap(std::move(*Snapshot));
  auto It = Assumptions.find(R.DeoptAssumption);
  assert(It != Assumptions.end() && "deopt names unknown assumption");
  Blacklist.add(It->second.FunctionName, It->second.Site, It->second.Degree);

  ExecOptions PO;
  PO.Tier = ExecTier::Profiling;
  PO.Profile = &Profile;
  ExecResult Replay = Interp.run(*SrcF, Args, PO);
  ++Counters.ProfiledInvocations;

  ++E.Recompiles;
  ++Counters.Recompiles;
  if (E.Recompiles >= Config.MaxRecompiles)
    E.SpecDisabled = true;
  compileEntry(E, FunctionName);
  ExtraCycles += E.PendingCompileCycles;
  E.PendingCompileCycles = 0;

  Replay.Cycles += ExtraCycles;
  return Replay;
}
