//===- jit/Experiment.cpp --------------------------------------------------==//

#include "jit/Experiment.h"

using namespace ren;
using namespace ren::jit;

KernelRun ren::jit::runKernel(const kernels::Kernel &K,
                              const OptConfig &Config) {
  KernelRun Out;
  std::unique_ptr<Module> M = K.M->clone();
  Out.Compilation = compileModule(*M, Config);
  for (const CompileStats &S : Out.Compilation) {
    Out.TotalNodesBefore += S.NodesBefore;
    Out.TotalNodesAfter += S.NodesAfter;
  }

  Interpreter Interp(*M);
  for (const kernels::Invocation &Inv : K.Invocations) {
    Function *F = M->function(Inv.FunctionName);
    assert(F && "kernel invocation names unknown function");
    ExecResult R = Interp.run(*F, Inv.Args);
    Out.Cycles += R.Cycles;
    Out.ResultHash = static_cast<int64_t>(
        static_cast<uint64_t>(Out.ResultHash) * 1000003u +
        static_cast<uint64_t>(R.ReturnValue));
    for (size_t G = 0; G < R.Guards.Normal.size(); ++G) {
      Out.Guards.Normal[G] += R.Guards.Normal[G];
      Out.Guards.Speculative[G] += R.Guards.Speculative[G];
    }
    Out.CasExecuted += R.CasExecuted;
    Out.CallsExecuted += R.CallsExecuted;
    Out.MonitorOps += R.MonitorOps;
    Out.Allocations += R.Allocations;
    Out.MhDispatches += R.MhDispatches;
    for (const auto &[Name, Cycles] : R.CyclesByFunction)
      Out.CyclesByFunction[Name] += Cycles;
  }
  return Out;
}
