//===- jit/Experiment.cpp --------------------------------------------------==//

#include "jit/Experiment.h"

using namespace ren;
using namespace ren::jit;

namespace {

/// Folds one invocation's ExecResult into the aggregate run.
void accumulate(KernelRun &Out, const ExecResult &R) {
  Out.Cycles += R.Cycles;
  Out.InvocationCycles.push_back(R.Cycles);
  Out.ResultHash = static_cast<int64_t>(
      static_cast<uint64_t>(Out.ResultHash) * 1000003u +
      static_cast<uint64_t>(R.ReturnValue));
  for (size_t G = 0; G < R.Guards.Normal.size(); ++G) {
    Out.Guards.Normal[G] += R.Guards.Normal[G];
    Out.Guards.Speculative[G] += R.Guards.Speculative[G];
  }
  Out.CasExecuted += R.CasExecuted;
  Out.CallsExecuted += R.CallsExecuted;
  Out.MonitorOps += R.MonitorOps;
  Out.Allocations += R.Allocations;
  Out.MhDispatches += R.MhDispatches;
  Out.VirtualDispatches += R.VirtualDispatches;
  Out.PicHits += R.PicHits;
  Out.PicMisses += R.PicMisses;
  for (const auto &[Name, Cycles] : R.CyclesByFunction)
    Out.CyclesByFunction[Name] += Cycles;
}

} // namespace

KernelRun ren::jit::runKernel(const kernels::Kernel &K,
                              const OptConfig &Config, unsigned Rounds,
                              const TieredConfig *CompileCostModel) {
  KernelRun Out;
  std::unique_ptr<Module> M = K.M->clone();
  Out.Compilation = compileModule(*M, Config);
  for (const CompileStats &S : Out.Compilation) {
    Out.TotalNodesBefore += S.NodesBefore;
    Out.TotalNodesAfter += S.NodesAfter;
    if (CompileCostModel)
      Out.ModelledCompileCycles +=
          CompileCostModel->CompileBaseCycles +
          static_cast<uint64_t>(S.NodesBefore) *
              CompileCostModel->CompileCyclesPerNode;
  }

  Interpreter Interp(*M);
  bool First = true;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    for (const kernels::Invocation &Inv : K.Invocations) {
      Function *F = M->function(Inv.FunctionName);
      assert(F && "kernel invocation names unknown function");
      ExecResult R = Interp.run(*F, Inv.Args);
      if (First) {
        // Compile-everything-first: the whole ahead-of-time compile cost
        // lands on the first point of the warmup curve.
        R.Cycles += Out.ModelledCompileCycles;
        First = false;
      }
      accumulate(Out, R);
    }
  }
  return Out;
}

KernelRun ren::jit::runKernelInterpOnly(const kernels::Kernel &K,
                                        unsigned Rounds) {
  KernelRun Out;
  std::unique_ptr<Module> M = K.M->clone();
  Interpreter Interp(*M);
  ProfileData Profile;
  ExecOptions O;
  O.Tier = ExecTier::Profiling;
  O.Profile = &Profile;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    for (const kernels::Invocation &Inv : K.Invocations) {
      Function *F = M->function(Inv.FunctionName);
      assert(F && "kernel invocation names unknown function");
      accumulate(Out, Interp.run(*F, Inv.Args, O));
      ++Out.Tiers.ProfiledInvocations;
    }
  }
  return Out;
}

KernelRun ren::jit::runKernelTiered(const kernels::Kernel &K,
                                    const TieredConfig &Config,
                                    unsigned Rounds) {
  KernelRun Out;
  TieredRuntime Runtime(*K.M, Config);
  for (unsigned Round = 0; Round < Rounds; ++Round)
    for (const kernels::Invocation &Inv : K.Invocations)
      accumulate(Out, Runtime.invoke(Inv.FunctionName, Inv.Args));

  Out.Compilation = Runtime.compiles();
  for (const CompileStats &S : Out.Compilation) {
    Out.TotalNodesBefore += S.NodesBefore;
    Out.TotalNodesAfter += S.NodesAfter;
  }
  Out.Tiers = Runtime.counters();
  Out.ModelledCompileCycles = Out.Tiers.ModelledCompileCycles;
  return Out;
}
