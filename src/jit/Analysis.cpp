//===- jit/Analysis.cpp ----------------------------------------------------==//

#include "jit/Analysis.h"

#include <algorithm>

using namespace ren;
using namespace ren::jit;

//===----------------------------------------------------------------------===//
// DominatorTree
//===----------------------------------------------------------------------===//

DominatorTree::DominatorTree(const Function &F) {
  // Depth-first post-order from the entry.
  std::unordered_set<const BasicBlock *> Visited;
  std::vector<BasicBlock *> PostOrder;
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  Stack.push_back({F.entry(), 0});
  Visited.insert(F.entry());
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    auto Succs = Block->successors();
    if (NextSucc < Succs.size()) {
      BasicBlock *S = Succs[NextSucc++];
      if (Visited.insert(S).second)
        Stack.push_back({S, 0});
      continue;
    }
    PostOrder.push_back(Block);
    Stack.pop_back();
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  // Cooper-Harvey-Kennedy iterative algorithm.
  Idom[F.entry()] = F.entry();
  bool Changed = true;
  auto intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RpoIndex.at(A) > RpoIndex.at(B))
        A = Idom.at(A);
      while (RpoIndex.at(B) > RpoIndex.at(A))
        B = Idom.at(B);
    }
    return A;
  };
  while (Changed) {
    Changed = false;
    for (BasicBlock *B : Rpo) {
      if (B == F.entry())
        continue;
      BasicBlock *NewIdom = nullptr;
      for (BasicBlock *P : B->Preds) {
        if (!Idom.count(P))
          continue; // not yet processed / unreachable
        NewIdom = NewIdom ? intersect(NewIdom, P) : P;
      }
      if (!NewIdom)
        continue;
      auto It = Idom.find(B);
      if (It == Idom.end() || It->second != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *B) const {
  auto It = Idom.find(B);
  if (It == Idom.end() || It->second == B)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  const BasicBlock *Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    auto It = Idom.find(Cur);
    if (It == Idom.end() || It->second == Cur)
      return false;
    Cur = It->second;
  }
}

//===----------------------------------------------------------------------===//
// Loops
//===----------------------------------------------------------------------===//

std::vector<Loop> ren::jit::findLoops(const Function &F,
                                      const DominatorTree &Dom) {
  std::vector<Loop> Loops;
  for (const auto &B : F.Blocks) {
    for (BasicBlock *Succ : B->successors()) {
      if (!Dom.dominates(Succ, B.get()))
        continue;
      // Back edge B -> Succ: collect the natural loop.
      Loop L;
      L.Header = Succ;
      L.Latch = B.get();
      L.Blocks.insert(Succ);
      std::vector<BasicBlock *> Work;
      if (B.get() != Succ) {
        L.Blocks.insert(B.get());
        Work.push_back(B.get());
      }
      while (!Work.empty()) {
        BasicBlock *Cur = Work.back();
        Work.pop_back();
        for (BasicBlock *P : Cur->Preds)
          if (L.Blocks.insert(P).second)
            Work.push_back(P);
      }
      // Preheader: the unique out-of-loop predecessor of the header.
      BasicBlock *Pre = nullptr;
      bool Unique = true;
      for (BasicBlock *P : L.Header->Preds) {
        if (L.contains(P))
          continue;
        if (Pre)
          Unique = false;
        Pre = P;
      }
      L.Preheader = Unique ? Pre : nullptr;
      Loops.push_back(std::move(L));
    }
  }
  return Loops;
}

bool ren::jit::matchCountedLoop(const Loop &L, CountedLoop &Out) {
  if (!L.Preheader)
    return false;
  BasicBlock *H = L.Header;
  Instruction *Term = H->terminator();
  if (!Term || Term->Op != Opcode::Branch)
    return false;
  // The branch must stay in the loop on true and exit on false.
  if (!L.contains(Term->TrueTarget) || L.contains(Term->FalseTarget))
    return false;
  Instruction *Cmp = Term->Operands[0];
  if (Cmp->Op != Opcode::CmpLt || Cmp->Parent != H)
    return false;
  Instruction *IndVar = Cmp->Operands[0];
  Instruction *Bound = Cmp->Operands[1];
  if (IndVar->Op != Opcode::Phi || IndVar->Parent != H)
    return false;
  if (!isLoopInvariant(L, Bound) && Bound->Op != Opcode::Const)
    return false;
  // Phi: one incoming from the preheader (init), one from the latch (step).
  if (IndVar->Operands.size() != 2)
    return false;
  Instruction *Init = nullptr, *Step = nullptr;
  for (size_t I = 0; I < 2; ++I) {
    if (IndVar->PhiBlocks[I] == L.Preheader)
      Init = IndVar->Operands[I];
    else if (L.contains(IndVar->PhiBlocks[I]))
      Step = IndVar->Operands[I];
  }
  if (!Init || !Step)
    return false;
  if (Step->Op != Opcode::Add || !L.contains(Step))
    return false;
  Instruction *StepConst = nullptr;
  if (Step->Operands[0] == IndVar &&
      Step->Operands[1]->Op == Opcode::Const)
    StepConst = Step->Operands[1];
  else if (Step->Operands[1] == IndVar &&
           Step->Operands[0]->Op == Opcode::Const)
    StepConst = Step->Operands[0];
  if (!StepConst || StepConst->Imm <= 0)
    return false;

  Out.TheLoop = L;
  Out.Induction = IndVar;
  Out.Init = Init;
  Out.Step = Step;
  Out.StepValue = StepConst->Imm;
  Out.Bound = Bound;
  Out.Compare = Cmp;
  Out.Exit = Term->FalseTarget;
  return true;
}

bool ren::jit::isLoopInvariant(const Loop &L, const Instruction *I) {
  if (I->Op == Opcode::Const || I->Op == Opcode::Param)
    return true;
  if (L.contains(I))
    return false;
  return true;
}
