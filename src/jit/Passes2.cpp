//===- jit/Passes2.cpp - DBDS, loop vectorization, unrolling --------------==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
// The loop-restructuring passes: dominance-based duplication simulation
// (§5.7), 4-lane loop vectorization with a scalar remainder loop (§5.6),
// and the classic 4x unroller used by the "C2" configuration.
//
//===----------------------------------------------------------------------===//

#include "jit/Analysis.h"
#include "jit/Passes.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace ren;
using namespace ren::jit;

namespace {

/// True if the instruction has no side effects (local copy; Passes.cpp
/// keeps its own static equivalent).
bool isPure(const Instruction *I) {
  switch (I->Op) {
  case Opcode::Const:
  case Opcode::Param:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::InstanceOf:
  case Opcode::Extract:
    return true;
  default:
    return false;
  }
}

/// Replaces uses of \p Old with \p New in every block NOT contained in
/// \p Excluded.
void replaceUsesOutside(Function &F, Instruction *Old, Instruction *New,
                        const std::unordered_set<BasicBlock *> &Excluded) {
  for (auto &B : F.Blocks) {
    if (Excluded.count(B.get()))
      continue;
    for (auto &I : B->Insts)
      for (Instruction *&Operand : I->Operands)
        if (Operand == Old)
          Operand = New;
  }
}

/// Clones instruction \p Orig without operands/targets (copied by caller).
std::unique_ptr<Instruction> shallowClone(const Instruction *Orig) {
  auto NI = std::make_unique<Instruction>(Orig->Op);
  NI->copyMetaFrom(*Orig);
  return NI;
}

/// Information about the remainder loop produced by cloneLoopAsRemainder.
struct RemainderLoop {
  BasicBlock *Header = nullptr;
  BasicBlock *Body = nullptr;
  /// Original header phi -> remainder header phi.
  std::unordered_map<Instruction *, Instruction *> PhiMap;
};

/// Clones the two-block counted loop \p C (header H, body B) into a scalar
/// remainder loop entered from \p EntryFrom. For each header phi P, the
/// remainder phi starts from \p EntryValues[P] on entry and continues with
/// the cloned latch value. The original exit block's phis and all external
/// users are retargeted to the remainder loop's results.
RemainderLoop cloneLoopAsRemainder(
    Function &F, const CountedLoop &C, BasicBlock *EntryFrom,
    const std::unordered_map<Instruction *, Instruction *> &EntryValues) {
  BasicBlock *H = C.TheLoop.Header;
  BasicBlock *B = C.TheLoop.Latch;

  RemainderLoop Out;
  Out.Header = F.addBlock(H->Label + ".rem");
  Out.Body = F.addBlock(B->Label + ".rem");

  std::unordered_map<const Instruction *, Instruction *> Map;
  // First pass: clone instructions.
  for (BasicBlock *Src : {H, B}) {
    BasicBlock *Dst = Src == H ? Out.Header : Out.Body;
    for (const auto &I : Src->Insts)
      Map[I.get()] = Dst->append(shallowClone(I.get()));
  }
  // Second pass: operands and targets.
  for (BasicBlock *Src : {H, B}) {
    for (const auto &I : Src->Insts) {
      Instruction *NI = Map.at(I.get());
      NI->Lanes = 1; // the remainder is scalar even if the main loop
                     // becomes vectorized afterwards
      for (Instruction *Operand : I->Operands) {
        auto It = Map.find(Operand);
        NI->Operands.push_back(It != Map.end() ? It->second : Operand);
      }
      if (I->TrueTarget)
        NI->TrueTarget = I->TrueTarget == H   ? Out.Header
                         : I->TrueTarget == B ? Out.Body
                                              : I->TrueTarget;
      if (I->FalseTarget)
        NI->FalseTarget = I->FalseTarget == H   ? Out.Header
                          : I->FalseTarget == B ? Out.Body
                                                : I->FalseTarget;
    }
  }
  // Remainder phis: entry edge comes from EntryFrom with the provided
  // values; latch edge from the cloned body.
  for (const auto &I : H->Insts) {
    if (I->Op != Opcode::Phi)
      break;
    Instruction *P2 = Map.at(I.get());
    P2->PhiBlocks.clear();
    std::vector<Instruction *> OldOperands = P2->Operands;
    P2->Operands.clear();
    // Entry value.
    P2->Operands.push_back(EntryValues.at(I.get()));
    P2->PhiBlocks.push_back(EntryFrom);
    // Latch value: the clone of the original latch value.
    for (size_t K = 0; K < I->PhiBlocks.size(); ++K) {
      if (I->PhiBlocks[K] != B)
        continue;
      auto It = Map.find(I->Operands[K]);
      P2->Operands.push_back(It != Map.end() ? It->second
                                             : I->Operands[K]);
      P2->PhiBlocks.push_back(Out.Body);
    }
    Out.PhiMap[I.get()] = P2;
  }

  // The original exit block now receives control from the remainder
  // header instead of the main header: fix its phis.
  for (auto &I : C.Exit->Insts) {
    if (I->Op != Opcode::Phi)
      break;
    for (size_t K = 0; K < I->PhiBlocks.size(); ++K)
      if (I->PhiBlocks[K] == H) {
        I->PhiBlocks[K] = Out.Header;
        auto It = Out.PhiMap.find(I->Operands[K]);
        if (It != Out.PhiMap.end())
          I->Operands[K] = It->second;
      }
  }

  // External users of the original header phis see the remainder results.
  std::unordered_set<BasicBlock *> Internal = {H, B, Out.Header, Out.Body,
                                               EntryFrom};
  for (auto &[P, P2] : Out.PhiMap)
    replaceUsesOutside(F, P, P2, Internal);
  return Out;
}

/// The common shape both LV and unrolling require: a two-block counted
/// loop {H, B} with unit step, whose body is side-effect-restricted.
struct TightLoop {
  CountedLoop C;
  std::vector<Instruction *> HeaderPhis;       // includes the induction
  std::vector<Instruction *> ReductionPhis;    // header phis that reduce
  std::unordered_map<Instruction *, Instruction *> LatchValue;
};

bool matchTightLoop(const Loop &L, TightLoop &Out, bool AllowGuards) {
  CountedLoop C;
  if (!matchCountedLoop(L, C) || C.StepValue != 1)
    return false;
  if (L.Blocks.size() != 2)
    return false;
  BasicBlock *H = L.Header;
  BasicBlock *B = L.Latch;
  if (B == H)
    return false;
  // Header: phis, the compare, the branch — nothing else.
  for (const auto &I : H->Insts) {
    if (I->Op == Opcode::Phi || I.get() == C.Compare ||
        I.get() == H->terminator())
      continue;
    return false;
  }
  // Body: pure computation, loads/stores indexed by the induction
  // variable, the step add, optionally guards; one Jump back.
  for (const auto &I : B->Insts) {
    switch (I->Op) {
    case Opcode::Load:
      if (I->Operands[0] != C.Induction)
        return false;
      break;
    case Opcode::Store:
      if (I->Operands[0] != C.Induction)
        return false;
      break;
    case Opcode::Guard:
      if (!AllowGuards)
        return false;
      break;
    case Opcode::Jump:
      if (I->TrueTarget != H)
        return false;
      break;
    default:
      if (!isPure(I.get()) || I->Op == Opcode::Phi)
        return false;
    }
  }
  Out.C = C;
  for (const auto &I : H->Insts) {
    if (I->Op != Opcode::Phi)
      break;
    Out.HeaderPhis.push_back(I.get());
    for (size_t K = 0; K < I->PhiBlocks.size(); ++K)
      if (I->PhiBlocks[K] == B)
        Out.LatchValue[I.get()] = I->Operands[K];
    if (I.get() != C.Induction)
      Out.ReductionPhis.push_back(I.get());
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// §5.7 Dominance-based duplication simulation
//===----------------------------------------------------------------------===//

bool ren::jit::runDuplication(Function &F) {
  bool Changed = false;
  for (bool Progress = true; Progress;) {
    Progress = false;
    F.recomputePreds();
    for (auto &MPtr : F.Blocks) {
      BasicBlock *M = MPtr.get();
      // Merge block with exactly two Jump predecessors.
      if (M->Preds.size() != 2)
        continue;
      BasicBlock *T = M->Preds[0];
      BasicBlock *Fb = M->Preds[1];
      if (T == Fb || !T->terminator() || !Fb->terminator())
        continue;
      if (T->terminator()->Op != Opcode::Jump ||
          Fb->terminator()->Op != Opcode::Jump)
        continue;
      // The predecessors must be the two arms of one branch on an
      // instanceof, with a matching instanceof re-checked inside M.
      BasicBlock *CondBlock = nullptr;
      if (T->Preds.size() == 1 && Fb->Preds.size() == 1 &&
          T->Preds[0] == Fb->Preds[0])
        CondBlock = T->Preds[0];
      if (!CondBlock)
        continue;
      Instruction *OuterBranch = CondBlock->terminator();
      if (!OuterBranch || OuterBranch->Op != Opcode::Branch)
        continue;
      Instruction *OuterCheck = OuterBranch->Operands[0];
      if (OuterCheck->Op != Opcode::InstanceOf)
        continue;
      bool TIsTrueArm = OuterBranch->TrueTarget == T;
      if (!TIsTrueArm && OuterBranch->TrueTarget != Fb)
        continue;

      // M re-checks the same instanceof and branches on it.
      Instruction *InnerCheck = nullptr;
      for (auto &I : M->Insts)
        if (I->Op == Opcode::InstanceOf &&
            I->Operands[0] == OuterCheck->Operands[0] &&
            I->Imm == OuterCheck->Imm)
          InnerCheck = I.get();
      if (!InnerCheck)
        continue;
      // Duplication safety: values defined in M may only be used inside M
      // or as phi inputs of M's successors.
      bool Safe = true;
      for (auto &I : M->Insts)
        for (auto &OB : F.Blocks) {
          if (OB.get() == M)
            continue;
          for (auto &U : OB->Insts) {
            bool UsesIt = std::find(U->Operands.begin(), U->Operands.end(),
                                    I.get()) != U->Operands.end();
            if (UsesIt && U->Op != Opcode::Phi)
              Safe = false;
          }
        }
      if (!Safe)
        continue;

      // Duplicate M into each predecessor path.
      auto duplicateInto = [&](BasicBlock *Pred, bool CheckValue) {
        BasicBlock *Clone = F.addBlock(M->Label + (CheckValue ? ".t" : ".f"));
        std::unordered_map<const Instruction *, Instruction *> Map;
        for (auto &I : M->Insts) {
          if (I->Op == Opcode::Phi) {
            // Resolve the phi to the value flowing in from Pred.
            for (size_t K = 0; K < I->PhiBlocks.size(); ++K)
              if (I->PhiBlocks[K] == Pred)
                Map[I.get()] = I->Operands[K];
            continue;
          }
          Instruction *NI = Clone->append(shallowClone(I.get()));
          NI->TrueTarget = I->TrueTarget;
          NI->FalseTarget = I->FalseTarget;
          for (Instruction *Operand : I->Operands) {
            auto It = Map.find(Operand);
            NI->Operands.push_back(It != Map.end() ? It->second : Operand);
          }
          Map[I.get()] = NI;
          // This is the dominance simulation payoff: the duplicated check
          // is dominated by the identical outer check, so it folds.
          if (I.get() == InnerCheck) {
            NI->Op = Opcode::Const;
            NI->Imm = CheckValue ? 1 : 0;
            NI->Operands.clear();
          }
        }
        Pred->terminator()->TrueTarget = Clone;
        // Successor phis referencing M gain an entry for the clone.
        for (BasicBlock *S : Clone->successors())
          for (auto &I : S->Insts) {
            if (I->Op != Opcode::Phi)
              break;
            for (size_t K = 0; K < I->PhiBlocks.size(); ++K)
              if (I->PhiBlocks[K] == M) {
                auto It = Map.find(I->Operands[K]);
                I->Operands.push_back(It != Map.end() ? It->second
                                                      : I->Operands[K]);
                I->PhiBlocks.push_back(Clone);
              }
          }
        return Clone;
      };

      duplicateInto(T, TIsTrueArm);
      duplicateInto(Fb, !TIsTrueArm);

      // M is now unreachable; drop the stale phi entries in successors.
      for (BasicBlock *S : M->successors())
        for (auto &I : S->Insts) {
          if (I->Op != Opcode::Phi)
            break;
          for (size_t K = I->PhiBlocks.size(); K-- > 0;)
            if (I->PhiBlocks[K] == M) {
              I->PhiBlocks.erase(I->PhiBlocks.begin() +
                                 static_cast<ptrdiff_t>(K));
              I->Operands.erase(I->Operands.begin() +
                                static_cast<ptrdiff_t>(K));
            }
        }
      F.recomputePreds();
      runConstantFolding(F);
      Changed = true;
      Progress = true;
      break;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// §5.6 Loop vectorization
//===----------------------------------------------------------------------===//

bool ren::jit::runLoopVectorization(Function &F) {
  bool Changed = false;
  DominatorTree Dom(F);
  std::vector<Loop> Loops = findLoops(F, Dom);
  for (Loop &L : Loops) {
    TightLoop TL;
    // Guards in the loop prevent vectorization — this is the paper's
    // observed dependency on speculative guard motion (§5.6).
    if (!matchTightLoop(L, TL, /*AllowGuards=*/false))
      continue;
    BasicBlock *H = L.Header;
    BasicBlock *B = L.Latch;

    // The induction variable may only feed memory addressing, its own
    // step, and the loop compare (lane-invariant uses).
    bool UsesOk = true;
    for (auto &Blk : F.Blocks)
      for (auto &U : Blk->Insts) {
        if (U.get() == TL.C.Step || U.get() == TL.C.Compare)
          continue;
        for (size_t K = 0; K < U->Operands.size(); ++K) {
          if (U->Operands[K] != TL.C.Induction)
            continue;
          bool IsAddress = (U->Op == Opcode::Load && K == 0) ||
                           (U->Op == Opcode::Store && K == 0);
          if (!IsAddress && L.contains(U.get()))
            UsesOk = false;
        }
      }
    if (!UsesOk)
      continue;
    // Reductions must be additive so a zero-initialized vector
    // accumulator plus a post-loop horizontal sum is exact.
    bool ReductionsOk = true;
    for (Instruction *P : TL.ReductionPhis) {
      Instruction *Latch = TL.LatchValue.at(P);
      bool Additive = Latch->Op == Opcode::Add &&
                      (Latch->Operands[0] == P || Latch->Operands[1] == P);
      ReductionsOk &= Additive;
    }
    if (!ReductionsOk)
      continue;

    // --- Build the scalar remainder loop first (clone of the original).
    BasicBlock *VecExit = F.addBlock(H->Label + ".vexit");
    std::unordered_map<Instruction *, Instruction *> EntryValues;
    // Remainder entry values: filled below (induction: phi itself;
    // reductions: horizontal sums computed in VecExit).
    EntryValues[TL.C.Induction] = TL.C.Induction;

    // Horizontal sums in VecExit; the reduction phi's scalar init is
    // added back here because the vector accumulator starts at zero.
    std::unordered_map<Instruction *, Instruction *> InitOfPhi;
    for (Instruction *P : TL.ReductionPhis) {
      for (size_t K = 0; K < P->PhiBlocks.size(); ++K)
        if (P->PhiBlocks[K] == L.Preheader)
          InitOfPhi[P] = P->Operands[K];
      Instruction *Sum = nullptr;
      for (unsigned Lane = 0; Lane < 4; ++Lane) {
        auto Ext = std::make_unique<Instruction>(
            Opcode::Extract, std::vector<Instruction *>{P},
            static_cast<int64_t>(Lane));
        Instruction *E = VecExit->append(std::move(Ext));
        if (!Sum) {
          Sum = E;
        } else {
          auto AddI = std::make_unique<Instruction>(
              Opcode::Add, std::vector<Instruction *>{Sum, E});
          Sum = VecExit->append(std::move(AddI));
        }
      }
      auto AddInit = std::make_unique<Instruction>(
          Opcode::Add, std::vector<Instruction *>{Sum, InitOfPhi.at(P)});
      Sum = VecExit->append(std::move(AddInit));
      EntryValues[P] = Sum;
    }

    RemainderLoop Rem = cloneLoopAsRemainder(F, TL.C, VecExit, EntryValues);
    auto JumpRem = std::make_unique<Instruction>(Opcode::Jump);
    JumpRem->TrueTarget = Rem.Header;
    VecExit->append(std::move(JumpRem));

    // --- Vectorize the main loop.
    // Bound becomes bound-3 so lanes i..i+3 stay in range.
    BasicBlock *Pre = L.Preheader;
    auto Three = std::make_unique<Instruction>(Opcode::Const);
    Three->Imm = 3;
    Instruction *C3 = Pre->insertAt(Pre->Insts.size() - 1, std::move(Three));
    auto VB = std::make_unique<Instruction>(
        Opcode::Sub, std::vector<Instruction *>{TL.C.Bound, C3});
    Instruction *VecBound =
        Pre->insertAt(Pre->Insts.size() - 1, std::move(VB));
    TL.C.Compare->Operands[1] = VecBound;
    // Exit edge goes to the horizontal-sum block.
    H->terminator()->FalseTarget = VecExit;
    // Step 1 -> 4.
    Instruction *StepConst = TL.C.Step->Operands[0] == TL.C.Induction
                                 ? TL.C.Step->Operands[1]
                                 : TL.C.Step->Operands[0];
    // The step constant may be shared; give the step its own constant.
    auto Four = std::make_unique<Instruction>(Opcode::Const);
    Four->Imm = 4;
    Instruction *C4 = Pre->insertAt(Pre->Insts.size() - 1, std::move(Four));
    for (Instruction *&Operand : TL.C.Step->Operands)
      if (Operand == StepConst)
        Operand = C4;
    // Zero the vector accumulators' init and widen them.
    for (Instruction *P : TL.ReductionPhis) {
      auto Zero = std::make_unique<Instruction>(Opcode::Const);
      Zero->Imm = 0;
      Instruction *Z = Pre->insertAt(Pre->Insts.size() - 1, std::move(Zero));
      for (size_t K = 0; K < P->PhiBlocks.size(); ++K)
        if (P->PhiBlocks[K] == Pre)
          P->Operands[K] = Z;
      P->Lanes = 4;
    }
    // Widen the body.
    for (auto &I : B->Insts) {
      if (I.get() == TL.C.Step || I->isTerm())
        continue;
      if (isVectorizable(I->Op))
        I->Lanes = 4;
    }

    F.recomputePreds();
    Changed = true;
    break; // one loop per invocation keeps analyses simple
  }
  if (Changed)
    runConstantFolding(F);
  return Changed;
}

//===----------------------------------------------------------------------===//
// 4x loop unrolling (the "C2" configuration's classic strength)
//===----------------------------------------------------------------------===//

bool ren::jit::runLoopUnrolling(Function &F) {
  bool Changed = false;
  DominatorTree Dom(F);
  std::vector<Loop> Loops = findLoops(F, Dom);
  for (Loop &L : Loops) {
    TightLoop TL;
    if (!matchTightLoop(L, TL, /*AllowGuards=*/true))
      continue;
    BasicBlock *H = L.Header;
    BasicBlock *B = L.Latch;
    if (B->Insts.size() > 24)
      continue; // only tight bodies benefit
    // Never unroll an already-vectorized loop: replicating lane-4 loads
    // with a stride-4 step would read overlapping elements.
    bool HasVector = false;
    for (auto &I : B->Insts)
      HasVector |= I->Lanes > 1;
    for (auto &I : H->Insts)
      HasVector |= I->Lanes > 1;
    if (HasVector)
      continue;

    // Remainder loop: entered straight from the header with the current
    // phi values.
    std::unordered_map<Instruction *, Instruction *> EntryValues;
    for (Instruction *P : TL.HeaderPhis)
      EntryValues[P] = P;
    RemainderLoop Rem = cloneLoopAsRemainder(F, TL.C, H, EntryValues);
    H->terminator()->FalseTarget = Rem.Header;

    // Main loop bound becomes bound-3.
    BasicBlock *Pre = L.Preheader;
    auto Three = std::make_unique<Instruction>(Opcode::Const);
    Three->Imm = 3;
    Instruction *C3 = Pre->insertAt(Pre->Insts.size() - 1, std::move(Three));
    auto UB = std::make_unique<Instruction>(
        Opcode::Sub, std::vector<Instruction *>{TL.C.Bound, C3});
    Instruction *UnrollBound =
        Pre->insertAt(Pre->Insts.size() - 1, std::move(UB));
    TL.C.Compare->Operands[1] = UnrollBound;

    // Replicate the body three more times, chaining loop-carried values.
    // CurrentValue maps each header phi to its value at the end of the
    // copies emitted so far.
    std::unordered_map<Instruction *, Instruction *> CurrentValue;
    for (Instruction *P : TL.HeaderPhis)
      CurrentValue[P] = TL.LatchValue.at(P);
    // Original body instructions (excluding the terminator and step).
    std::vector<Instruction *> BodyInsts;
    for (auto &I : B->Insts)
      if (!I->isTerm())
        BodyInsts.push_back(I.get());

    size_t InsertPos = B->Insts.size() - 1; // before the jump
    for (unsigned Copy = 1; Copy < 4; ++Copy) {
      std::unordered_map<Instruction *, Instruction *> Map;
      // The induction value for this copy is i + Copy.
      auto CConst = std::make_unique<Instruction>(Opcode::Const);
      CConst->Imm = static_cast<int64_t>(Copy);
      Instruction *K = B->insertAt(InsertPos++, std::move(CConst));
      auto AddK = std::make_unique<Instruction>(
          Opcode::Add, std::vector<Instruction *>{TL.C.Induction, K});
      Instruction *IK = B->insertAt(InsertPos++, std::move(AddK));
      Map[TL.C.Induction] = IK;
      for (Instruction *P : TL.ReductionPhis)
        Map[P] = CurrentValue.at(P);

      std::unordered_map<Instruction *, Instruction *> CopyClones;
      for (Instruction *Orig : BodyInsts) {
        if (Orig == TL.C.Step) {
          // The step itself is replicated implicitly through Map; the
          // original step becomes i+4 below.
          CopyClones[Orig] = IK;
          continue;
        }
        Instruction *NI = B->insertAt(InsertPos++, shallowClone(Orig));
        for (Instruction *Operand : Orig->Operands) {
          Instruction *Mapped = Operand;
          auto ItPhi = Map.find(Operand);
          if (ItPhi != Map.end())
            Mapped = ItPhi->second;
          auto ItClone = CopyClones.find(Operand);
          if (ItClone != CopyClones.end())
            Mapped = ItClone->second;
          NI->Operands.push_back(Mapped);
        }
        CopyClones[Orig] = NI;
      }
      // New loop-carried values after this copy.
      for (Instruction *P : TL.ReductionPhis) {
        Instruction *Latch = TL.LatchValue.at(P);
        auto It = CopyClones.find(Latch);
        if (It != CopyClones.end())
          CurrentValue[P] = It->second;
      }
    }
    // Header phis' latch operands come from the final copy; step i+1->i+4.
    for (Instruction *P : TL.ReductionPhis)
      for (size_t K = 0; K < P->PhiBlocks.size(); ++K)
        if (P->PhiBlocks[K] == B)
          P->Operands[K] = CurrentValue.at(P);
    Instruction *StepConst = TL.C.Step->Operands[0] == TL.C.Induction
                                 ? TL.C.Step->Operands[1]
                                 : TL.C.Step->Operands[0];
    auto Four = std::make_unique<Instruction>(Opcode::Const);
    Four->Imm = 4;
    Instruction *C4 = Pre->insertAt(Pre->Insts.size() - 1, std::move(Four));
    for (Instruction *&Operand : TL.C.Step->Operands)
      if (Operand == StepConst)
        Operand = C4;

    F.recomputePreds();
    Changed = true;
    break;
  }
  if (Changed)
    runConstantFolding(F);
  return Changed;
}
