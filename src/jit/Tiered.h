//===- jit/Tiered.h - Tiered execution runtime ------------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter -> optimizing-compiler tier-up machinery (DESIGN §14):
///
///  1. Entry functions start in the profiling interpreter tier, which
///     pays a per-instruction dispatch overhead and records invocation /
///     backedge counters, branch biases and receiver classes.
///  2. Once a counter crosses its threshold, the entry's hot closure
///     (itself plus transitive callees) is cloned, speculated on
///     (profile-driven branch straightening and devirtualization with
///     assumption-carrying guards), optimized by the configured pipeline,
///     and installed. The compile charges a modelled cycle cost to the
///     triggering invocation, which is what makes warmup curves show the
///     interpret / compile / steady phases.
///  3. A failing speculative guard deoptimizes: the heap rolls back to
///     the pre-invocation snapshot, the assumption is blacklisted, the
///     invocation replays in the profiling tier (teaching the profile the
///     violating behaviour), and the entry recompiles without the failed
///     assumption. Recompiles are bounded; past the bound the entry
///     recompiles conservatively with speculation disabled.
///
/// Virtual-call sites that stay megamorphic dispatch through runtime
/// polymorphic inline caches (PicSet) instead of the flat vtable cost.
///
//===----------------------------------------------------------------------===//

#ifndef REN_JIT_TIERED_H
#define REN_JIT_TIERED_H

#include "jit/Compiler.h"
#include "jit/Interp.h"
#include "jit/Passes.h"
#include "jit/Profile.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ren {
namespace jit {

/// Tier-up policy and modelled compile-cost parameters.
struct TieredConfig {
  /// The optimizing pipeline used at tier-up.
  OptConfig Opt = OptConfig::graal();
  /// Entry invocations in the profiling tier before tier-up.
  uint64_t InvocationThreshold = 8;
  /// Loop backedges before tier-up (catches hot loops in cold methods).
  uint64_t BackedgeThreshold = 4096;
  /// Deopt-triggered recompiles per entry before speculation is disabled
  /// and the entry compiles conservatively.
  unsigned MaxRecompiles = 3;
  /// Modelled compile cost: base cycles per compiled function...
  uint64_t CompileBaseCycles = 3000;
  /// ...plus this per pre-optimization IR node.
  uint64_t CompileCyclesPerNode = 1000;
  /// Master switch for the speculative passes.
  bool Speculate = true;
  /// Minimum profile observations before a site is worth speculating on.
  uint64_t MinProfileSamples = 16;
};

/// Counters describing a tiered execution (surfaced in KernelRun).
struct TierCounters {
  uint64_t ProfiledInvocations = 0;
  uint64_t CompiledInvocations = 0;
  uint64_t Compiles = 0;   ///< tier-up compiles, including recompiles
  uint64_t Recompiles = 0; ///< compiles triggered by a deopt
  uint64_t Deopts = 0;
  uint64_t ModelledCompileCycles = 0;
};

/// Executes entry-function invocations against one heap, moving each
/// entry from the profiling tier to speculatively optimized code and back
/// (on deopt) per the configured policy.
class TieredRuntime {
public:
  explicit TieredRuntime(const Module &Source, TieredConfig Config = {});

  /// Runs one invocation of the named entry function under the current
  /// tier. The returned Cycles include any modelled compile cost and
  /// deopt-discarded work this invocation triggered.
  ExecResult invoke(const std::string &FunctionName,
                    const std::vector<int64_t> &Args);

  /// True once the named entry runs compiled code.
  bool isCompiled(const std::string &FunctionName) const;

  const TierCounters &counters() const { return Counters; }
  const ProfileData &profile() const { return Profile; }
  const SpecBlacklist &blacklist() const { return Blacklist; }
  const PicSet &pics() const { return Pics; }
  /// Pipeline statistics of every compile performed, in order.
  const std::vector<CompileStats> &compiles() const { return AllCompiles; }

private:
  struct EntryState {
    std::unique_ptr<Module> Code; ///< installed code, null while profiling
    unsigned Recompiles = 0;
    bool SpecDisabled = false;
    size_t LiveAssumptions = 0;
    uint64_t PendingCompileCycles = 0;
  };

  void compileEntry(EntryState &E, const std::string &Name);

  const Module &Source;
  TieredConfig Config;
  Interpreter Interp; ///< owns the heap; executes all tiers against it
  ProfileData Profile;
  PicSet Pics;
  SpecBlacklist Blacklist;
  std::unordered_map<uint32_t, SpecAssumption> Assumptions;
  uint32_t NextAssumptionId = 1;
  std::unordered_map<std::string, EntryState> Entries;
  std::vector<CompileStats> AllCompiles;
  TierCounters Counters;
};

} // namespace jit
} // namespace ren

#endif // REN_JIT_TIERED_H
