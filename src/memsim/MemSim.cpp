//===- memsim/MemSim.cpp --------------------------------------------------==//

#include "memsim/MemSim.h"

#include "metrics/Metrics.h"

#include <atomic>
#include <memory>

using namespace ren;
using namespace ren::memsim;

static bool isPowerOfTwo(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

CacheLevel::CacheLevel(const CacheConfig &Config)
    : LineBytes(Config.LineBytes), Ways(Config.Ways),
      NumSets(Config.SizeBytes / (Config.LineBytes * Config.Ways)) {
  assert(isPowerOfTwo(LineBytes) && "line size must be a power of two");
  assert(NumSets > 0 && "cache must hold at least one set");
  assert(isPowerOfTwo(NumSets) && "set count must be a power of two");
  Lines.resize(NumSets * Ways);
}

bool CacheLevel::access(uint64_t Address) {
  uint64_t LineAddr = Address / LineBytes;
  uint64_t Set = LineAddr & (NumSets - 1);
  uint64_t Tag = LineAddr; // Full line address; avoids aliasing for any
                           // set count (a tag comparison is cheap here).
  Line *SetBase = &Lines[Set * Ways];
  ++Clock;

  Line *Victim = SetBase;
  for (unsigned Way = 0; Way < Ways; ++Way) {
    Line &L = SetBase[Way];
    if (L.Valid && L.Tag == Tag) {
      L.LastUse = Clock;
      ++Hits;
      return true;
    }
    if (!L.Valid) {
      Victim = &L;
    } else if (Victim->Valid && L.LastUse < Victim->LastUse) {
      Victim = &L;
    }
  }

  ++Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = Clock;
  return false;
}

void CacheLevel::reset() {
  for (Line &L : Lines)
    L = Line();
  Clock = Hits = Misses = 0;
}

Tlb::Tlb(unsigned NumEntries, uint64_t PageSize)
    : PageBytes(PageSize), Entries(NumEntries) {
  assert(isPowerOfTwo(PageBytes) && "page size must be a power of two");
  assert(NumEntries > 0 && "TLB needs at least one entry");
}

bool Tlb::access(uint64_t Address) {
  uint64_t Page = Address / PageBytes;
  ++Clock;

  Entry *Victim = &Entries[0];
  for (Entry &E : Entries) {
    if (E.Valid && E.Page == Page) {
      E.LastUse = Clock;
      ++Hits;
      return true;
    }
    if (!E.Valid) {
      Victim = &E;
    } else if (Victim->Valid && E.LastUse < Victim->LastUse) {
      Victim = &E;
    }
  }

  ++Misses;
  Victim->Valid = true;
  Victim->Page = Page;
  Victim->LastUse = Clock;
  return false;
}

void Tlb::reset() {
  for (Entry &E : Entries)
    E = Entry();
  Clock = Hits = Misses = 0;
}

MemorySystem::MemorySystem(const MemorySystemConfig &Config)
    : L1D(Config.L1D), L1I(Config.L1I), Llc(Config.Llc),
      DTlb(Config.DTlbEntries, Config.PageBytes),
      ITlb(Config.ITlbEntries, Config.PageBytes) {}

void MemorySystem::access(uint64_t Address, uint64_t Bytes, AccessKind Kind) {
  if (Bytes == 0)
    return;
  CacheLevel &L1 = Kind == AccessKind::Data ? L1D : L1I;
  Tlb &T = Kind == AccessKind::Data ? DTlb : ITlb;
  uint64_t Line = L1.lineBytes();
  uint64_t First = Address / Line;
  uint64_t Last = (Address + Bytes - 1) / Line;
  uint64_t NewMisses = 0;
  for (uint64_t LineIndex = First; LineIndex <= Last; ++LineIndex) {
    uint64_t LineAddr = LineIndex * Line;
    if (!T.access(LineAddr))
      ++NewMisses;
    if (!L1.access(LineAddr)) {
      ++NewMisses;
      if (!Llc.access(LineAddr)) // Only L1 misses reach the LLC.
        ++NewMisses;
    }
  }
  if (NewMisses != 0)
    metrics::count(metrics::Metric::CacheMiss, NewMisses);
}

uint64_t MemorySystem::totalMisses() const {
  return L1D.misses() + L1I.misses() + Llc.misses() + DTlb.misses() +
         ITlb.misses();
}

void MemorySystem::reset() {
  L1D.reset();
  L1I.reset();
  Llc.reset();
  DTlb.reset();
  ITlb.reset();
}

namespace {
thread_local MemorySystem *ActiveSystem = nullptr;
std::atomic<bool> GlobalTracing{false};

/// Per-thread lazily-created system used under global tracing; owned by the
/// thread so it is reclaimed at thread exit.
thread_local std::unique_ptr<MemorySystem> GlobalThreadSystem;
} // namespace

void ren::memsim::setGlobalTracing(bool Enabled) {
  GlobalTracing.store(Enabled, std::memory_order_release);
}

bool ren::memsim::globalTracingEnabled() {
  return GlobalTracing.load(std::memory_order_acquire);
}

MemorySystem *ren::memsim::activeMemorySystem() {
  if (ActiveSystem)
    return ActiveSystem;
  if (!globalTracingEnabled())
    return nullptr;
  if (!GlobalThreadSystem)
    GlobalThreadSystem = std::make_unique<MemorySystem>();
  return GlobalThreadSystem.get();
}

ScopedMemTrace::ScopedMemTrace() : Previous(ActiveSystem), Owned(false) {
  if (!ActiveSystem) {
    ActiveSystem = new MemorySystem();
    Owned = true;
  }
}

ScopedMemTrace::~ScopedMemTrace() {
  if (!Owned) {
    ActiveSystem = Previous;
    return;
  }
  delete ActiveSystem;
  ActiveSystem = Previous;
}
