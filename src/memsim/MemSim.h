//===- memsim/MemSim.h - Memory-hierarchy simulator -------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, multi-level cache and TLB simulator.
///
/// The paper collects its \c cachemiss metric ("cache misses, including L1
/// cache (instruction and data), last-layer cache (LLC), and translation
/// lookaside buffer (TLB; instruction and data)") via perf hardware
/// counters. Hardware PMUs are unavailable/non-deterministic here, so this
/// module simulates the same hierarchy: per-thread L1I/L1D/iTLB/dTLB plus a
/// per-thread LLC slice, fed by explicit traces of each workload's hot data
/// structures (see TracedArray). Miss totals are flushed into the
/// Metric::CacheMiss counter.
///
/// Modelling note: real LLCs are shared; modelling a coherent shared LLC
/// would serialize all threads through one lock and perturb the very
/// concurrency behaviour we measure, so each thread simulates a private LLC
/// slice (capacity / hardware threads). DESIGN.md documents this deviation.
///
//===----------------------------------------------------------------------===//

#ifndef REN_MEMSIM_MEMSIM_H
#define REN_MEMSIM_MEMSIM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ren {
namespace memsim {

/// Whether an access is a data or an instruction reference.
enum class AccessKind { Data, Instruction };

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t SizeBytes;
  uint64_t LineBytes;
  unsigned Ways;
};

/// One set-associative cache level with true-LRU replacement.
class CacheLevel {
public:
  explicit CacheLevel(const CacheConfig &Config);

  /// Looks up the line containing \p Address, filling it on miss.
  /// \returns true on hit.
  bool access(uint64_t Address);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t lineBytes() const { return LineBytes; }

  /// Invalidates all lines and zeroes the statistics.
  void reset();

private:
  struct Line {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  uint64_t LineBytes;
  unsigned Ways;
  uint64_t NumSets;
  std::vector<Line> Lines; // NumSets x Ways, row-major.
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// A fully-associative TLB with LRU replacement.
class Tlb {
public:
  Tlb(unsigned Entries, uint64_t PageBytes);

  /// Translates the page containing \p Address. \returns true on hit.
  bool access(uint64_t Address);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

  /// Invalidates all entries and zeroes the statistics.
  void reset();

private:
  struct Entry {
    uint64_t Page = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  uint64_t PageBytes;
  std::vector<Entry> Entries;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Geometry of the simulated hierarchy. Defaults approximate the paper's
/// Xeon E5-2680 (32KB L1, 20MB LLC shared over 8 cores, 4KB pages).
struct MemorySystemConfig {
  CacheConfig L1D = {32 * 1024, 64, 8};
  CacheConfig L1I = {32 * 1024, 64, 8};
  // Private LLC slice: ~20MB/8 cores, rounded down to a power-of-two set
  // count (2MB, 16-way).
  CacheConfig Llc = {2 * 1024 * 1024, 64, 16};
  unsigned DTlbEntries = 64;
  unsigned ITlbEntries = 64;
  uint64_t PageBytes = 4096;
};

/// The full simulated hierarchy for one thread.
class MemorySystem {
public:
  explicit MemorySystem(const MemorySystemConfig &Config = {});

  /// Simulates an access of \p Bytes starting at \p Address. Accesses that
  /// span cache lines touch every covered line. Misses are counted into
  /// Metric::CacheMiss as they occur.
  void access(uint64_t Address, uint64_t Bytes, AccessKind Kind);

  /// Total misses across L1I, L1D, LLC, iTLB and dTLB (the paper's
  /// \c cachemiss aggregation).
  uint64_t totalMisses() const;

  const CacheLevel &l1d() const { return L1D; }
  const CacheLevel &l1i() const { return L1I; }
  const CacheLevel &llc() const { return Llc; }
  const Tlb &dtlb() const { return DTlb; }
  const Tlb &itlb() const { return ITlb; }

  /// Invalidates all state and statistics.
  void reset();

private:
  CacheLevel L1D;
  CacheLevel L1I;
  CacheLevel Llc;
  Tlb DTlb;
  Tlb ITlb;
};

/// Enables memory tracing *process-wide*: any thread that performs a traced
/// access lazily receives its own thread-local MemorySystem. Used by the
/// harness metrics plugin so that worker threads of the fork/join pool and
/// friends are traced too. Misses are counted into Metric::CacheMiss as
/// they occur.
void setGlobalTracing(bool Enabled);

/// True if process-wide tracing is on.
bool globalTracingEnabled();

/// Enables memory tracing on the calling thread for the guard's lifetime.
/// Guards nest; inner guards reuse the outer system.
class ScopedMemTrace {
public:
  ScopedMemTrace();
  ~ScopedMemTrace();

  ScopedMemTrace(const ScopedMemTrace &) = delete;
  ScopedMemTrace &operator=(const ScopedMemTrace &) = delete;

private:
  MemorySystem *Previous;
  bool Owned;
};

/// Returns the calling thread's active trace target, or nullptr when
/// tracing is disabled. Under global tracing a thread-local system is
/// created on first use.
MemorySystem *activeMemorySystem();

/// Records a data access if tracing is enabled on this thread.
inline void traceData(const void *Pointer, uint64_t Bytes) {
  if (MemorySystem *MS = activeMemorySystem())
    MS->access(reinterpret_cast<uint64_t>(Pointer), Bytes, AccessKind::Data);
}

/// Streams a traced read over \p Bytes of memory at cache-line stride —
/// the cheap way for a workload to expose a data structure's footprint to
/// the cache simulator once per pass.
inline void traceBuffer(const void *Pointer, uint64_t Bytes) {
  const char *Base = static_cast<const char *>(Pointer);
  for (uint64_t Offset = 0; Offset < Bytes; Offset += 64)
    traceData(Base + Offset, 8);
}

/// Records an instruction-side access if tracing is enabled on this thread.
inline void traceInstruction(uint64_t Pc, uint64_t Bytes) {
  if (MemorySystem *MS = activeMemorySystem())
    MS->access(Pc, Bytes, AccessKind::Instruction);
}

/// A contiguous array whose element accesses are routed through the memory
/// simulator. Workloads use this for their hot data structures so the
/// cachemiss metric reflects their actual access patterns.
template <typename T> class TracedArray {
public:
  TracedArray() = default;
  explicit TracedArray(size_t Count, T Fill = T()) : Data(Count, Fill) {}

  T read(size_t Index) const {
    assert(Index < Data.size() && "TracedArray read out of range");
    traceData(&Data[Index], sizeof(T));
    return Data[Index];
  }

  void write(size_t Index, const T &Value) {
    assert(Index < Data.size() && "TracedArray write out of range");
    traceData(&Data[Index], sizeof(T));
    Data[Index] = Value;
  }

  size_t size() const { return Data.size(); }
  void resize(size_t Count, T Fill = T()) { Data.resize(Count, Fill); }

  /// Untraced raw access for initialization code.
  T &raw(size_t Index) { return Data[Index]; }
  const T &raw(size_t Index) const { return Data[Index]; }

private:
  std::vector<T> Data;
};

} // namespace memsim
} // namespace ren

#endif // REN_MEMSIM_MEMSIM_H
