//===- runtime/Atomic.cpp -------------------------------------------------==//

#include "runtime/Atomic.h"

using namespace ren;
using namespace ren::runtime;

uint32_t SharedRandom::next(unsigned Bits) {
  uint64_t Old = Seed_.load(std::memory_order_relaxed);
  uint64_t New;
  do {
    New = (Old * kMultiplier + kAddend) & kMask;
  } while (!Seed_.compareAndSwap(Old, New));
  return static_cast<uint32_t>(New >> (48 - Bits));
}

uint32_t SharedRandom::nextInt(uint32_t Bound) {
  // Power-of-two fast path, then rejection sampling, as in the JDK.
  if ((Bound & (Bound - 1)) == 0)
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(Bound) * next(31)) >> 31);
  uint32_t Bits, Val;
  do {
    Bits = next(31);
    Val = Bits % Bound;
  } while (Bits - Val + (Bound - 1) > 0x7fffffffu);
  return Val;
}

double SharedRandom::nextDouble() {
  // Two consecutive CAS retry loops, exactly like java.util.Random:
  // (next(26) << 27 + next(27)) * 2^-53.
  uint64_t Hi = next(26);
  uint64_t Lo = next(27);
  return static_cast<double>((Hi << 27) + Lo) * 0x1.0p-53;
}
