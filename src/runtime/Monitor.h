//===- runtime/Monitor.h - Reentrant monitors and guarded blocks -*- C++ -*-==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Java-monitor analogues: reentrant mutual exclusion plus the wait/notify
/// ("guarded block") protocol, with metric instrumentation.
///
/// Every successful \c enter / \c tryEnter acquisition bumps Metric::Synch
/// (the paper's "synchronized methods and blocks executed"), every \c wait
/// bumps Metric::Wait, and every \c notifyOne / \c notifyAll bumps
/// Metric::Notify — mirroring the DiSL instrumentation the paper deploys on
/// monitorenter and Object.wait/notify/notifyAll.
///
/// The implementation is a thin-lock monitor in the style of HotSpot's lock
/// words and *Compact Java Monitors* (Dice & Kogan): a single atomic lock
/// word whose uncontended enter/exit is at most one CAS each, reentrancy is
/// a lock-free owner-token check with an inline recursion count, and
/// contention *inflates* to a fat path — bounded adaptive spinning, then a
/// CAS-registered entry queue of stack-allocated wait nodes parked on the
/// per-thread \c runtime::Parker. notify requeues wait-set nodes onto the
/// entry queue instead of waking them (no thundering herd); the eventual
/// \c exit hands the wakeup over.
///
/// On top of the thin lock sits HotSpot-style *biased locking*: the first
/// thread to enter a monitor stamps its token into the lock word, and its
/// subsequent enter/exit pairs run with no atomic RMW at all — plain loads
/// and stores on the owner's side of an asymmetric Dekker duel. The first
/// *other* thread to touch the monitor revokes the bias once, paying a
/// membarrier() to force the owner's CPU through a fence, after which the
/// monitor permanently runs the thin/fat word protocol. There is no
/// std::mutex or std::condition_variable anywhere in the monitor; the state
/// machine and its memory-ordering argument are documented in DESIGN.md §10.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_MONITOR_H
#define REN_RUNTIME_MONITOR_H

#include "metrics/Metrics.h"
#include "runtime/Park.h"
#include "trace/Trace.h"

#include <atomic>
#include <cassert>
#include <cstdint>

namespace ren {
namespace runtime {

namespace detail {
/// Tri-state biased-locking support flag: 0 unprobed, 1 enabled, -1
/// unavailable (no membarrier(PRIVATE_EXPEDITED) on this kernel — bias is
/// never granted and monitors run the pure word protocol).
extern std::atomic<int> BiasMode;
int initBiasMode();
inline bool biasEnabled() {
  int Mode = BiasMode.load(std::memory_order_relaxed);
  if (Mode == 0)
    Mode = initBiasMode();
  return Mode > 0;
}
} // namespace detail

/// A reentrant monitor with an associated wait set, like a Java object
/// monitor. Waiting releases the full recursion depth and restores it after
/// wakeup; spurious wakeups are permitted (as in Java), so callers must
/// re-check their condition — or use \c waitUntil.
class Monitor {
public:
  Monitor() = default;
  Monitor(const Monitor &) = delete;
  Monitor &operator=(const Monitor &) = delete;

  /// Enters the monitor, blocking until available. Reentrant.
  ///
  /// The fast paths are inlined. A monitor biased to the calling thread is
  /// entered with no atomic RMW at all — plain loads and stores plus a
  /// compiler fence, the owner's half of the asymmetric Dekker duel (the
  /// revoker's membarrier supplies the hardware ordering; see DESIGN.md
  /// §10). A neutral monitor is entered with one CAS, which also grants
  /// the bias on first touch. Reentrancy and contention take the
  /// out-of-line cold path.
  void enter() {
    const uint64_t Self = currentThreadToken();
    const uint64_t Biased = (Self << kTokenShift) | kBiasedBit;
    uint64_t W = Word.load(std::memory_order_relaxed);
    if (W == Biased && Depth > 0) {
      // Biased reentrant: we are mid-critical-section (Depth > 0 implies
      // InCs == 1, so no revocation can have completed and the word read
      // is decisive). Zero RMW.
      ++Depth;
      metrics::count(metrics::Metric::Synch);
      trace::instant(trace::EventKind::MonitorAcquire, "monitor.acquire",
                     trace::objectId(this), Depth);
      return;
    }
    if (W == 0 && detail::biasEnabled() &&
        !BiasDisabled.load(std::memory_order_relaxed)) {
      // First touch of a neutral monitor: grant ourselves the bias. On
      // CAS failure W is refreshed and we fall through to the other paths.
      if (Word.compare_exchange_strong(W, Biased, std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
        W = Biased;
    }
    if (W == Biased) {
      // Claim the biased critical section: announce our token in InCs,
      // then confirm the bias still stands. The signal fence only stops
      // the compiler; a concurrent revoker's membarrier() makes this
      // store/load pair totally ordered against its CAS/load pair on real
      // hardware.
      InCs.store(Self, std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_seq_cst);
      if (Word.load(std::memory_order_relaxed) == Biased) {
        Owner.store(Self, std::memory_order_relaxed);
        Depth = 1;
        metrics::count(metrics::Metric::Synch);
        trace::instant(trace::EventKind::MonitorAcquire, "monitor.acquire",
                       trace::objectId(this), Depth);
        return;
      }
      // A revoker beat us: retract the claim and contend normally. The
      // CAS (not a plain store) means a claim left over from a *previous*
      // bias epoch can never erase the current owner's token.
      uint64_t Mine = Self;
      InCs.compare_exchange_strong(Mine, 0, std::memory_order_release,
                                   std::memory_order_relaxed);
    } else if (W == 0 &&
               Word.compare_exchange_strong(W, kLockedBit,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      // Thin uncontended acquire: the CAS above is the entire lock.
      Owner.store(Self, std::memory_order_relaxed);
      Depth = 1;
      metrics::count(metrics::Metric::Synch);
      trace::instant(trace::EventKind::MonitorAcquire, "monitor.acquire",
                     trace::objectId(this), Depth);
      return;
    }
    enterCold(Self);
  }

  /// Attempts to enter without blocking (never spins, parks, or revokes a
  /// bias). \returns true on success.
  ///
  /// A monitor biased to another thread reads as held — even between that
  /// thread's critical sections — because acquiring it would require a
  /// blocking bias revocation. The first contended \c enter revokes the
  /// bias for good, after which tryEnter sees the plain word protocol.
  bool tryEnter() {
    const uint64_t Self = currentThreadToken();
    uint64_t W = Word.load(std::memory_order_relaxed);
    if (Owner.load(std::memory_order_relaxed) == Self) {
      // Reentrant (thin, fat, or biased): only this thread can have stored
      // Self, so the relaxed load is decisive.
      ++Depth;
      metrics::count(metrics::Metric::Synch);
      return true;
    }
    if (W == ((Self << kTokenShift) | kBiasedBit)) {
      // Biased to us but not in a critical section: the usual claim duel.
      InCs.store(Self, std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_seq_cst);
      if (Word.load(std::memory_order_relaxed) ==
          ((Self << kTokenShift) | kBiasedBit)) {
        Owner.store(Self, std::memory_order_relaxed);
        Depth = 1;
        metrics::count(metrics::Metric::Synch);
        return true;
      }
      uint64_t Mine = Self; // revocation in flight: retract the claim
      InCs.compare_exchange_strong(Mine, 0, std::memory_order_release,
                                   std::memory_order_relaxed);
      return false;
    }
    if (!(W & (kLockedBit | kBiasedBit)) &&
        Word.compare_exchange_strong(W, W | kLockedBit,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      Owner.store(Self, std::memory_order_relaxed);
      Depth = 1;
      metrics::count(metrics::Metric::Synch);
      return true;
    }
    // Metric rule: Synch counts successful acquisitions only, so a failed
    // tryEnter leaves the counter untouched (pinned by MonitorTest).
    return false;
  }

  /// Exits the monitor. Must be called by the owner.
  ///
  /// A biased critical section (InCs set — only the bias owner ever sets
  /// it, and the holder is unique, so a relaxed read is decisive) exits
  /// with plain stores: the release store of InCs == 0 is what a revoker
  /// synchronizes with. The thin release is one CAS that proves the entry
  /// queue was empty at release time; a queued node diverts to the
  /// out-of-line pop and handoff (a push can only land while the locked
  /// bit is set, so this CAS cannot race one in — see Monitor.cpp rule 3).
  void exit() {
    const uint64_t Self = currentThreadToken();
    assert(Owner.load(std::memory_order_relaxed) == Self &&
           "monitor exited by non-owner");
    assert(Depth > 0 && "monitor exit without enter");
    if (InCs.load(std::memory_order_relaxed) == Self) {
      // Biased exit: zero RMW. Only we can have stored our token, so the
      // relaxed read is decisive. Owner clears before InCs so a revoker
      // that acquire-reads InCs != us sees a fully released monitor.
      if (--Depth == 0) {
        Owner.store(0, std::memory_order_relaxed);
        InCs.store(0, std::memory_order_release);
      }
      return;
    }
    if (--Depth > 0)
      return;
    Owner.store(0, std::memory_order_relaxed);
    uint64_t Expected = kLockedBit;
    if (Word.compare_exchange_strong(Expected, 0, std::memory_order_release,
                                     std::memory_order_relaxed))
      return;
    releaseOwnership();
  }

  /// Returns true if the calling thread owns the monitor. Lock-free: one
  /// relaxed load of the owner token, so assertion-heavy call sites never
  /// serialize against the monitor itself.
  bool heldByCurrentThread() const {
    return Owner.load(std::memory_order_relaxed) == currentThreadToken();
  }

  /// Number of threads currently inside the contended slow path (revoking
  /// a bias, spinning, or queued). Lock-free read. Lets tests and
  /// profilers build deterministic contention scenarios: spin until a
  /// victim is provably committed to the contended path before releasing.
  unsigned contendedAcquirers() const {
    return Queued.load(std::memory_order_acquire);
  }

  /// Releases the monitor and blocks until notified, then reacquires it at
  /// the previous depth. Caller must own the monitor.
  void wait();

  /// Like \c wait, but with a wall-clock timeout in milliseconds.
  /// \returns false if the timeout elapsed before a notification.
  bool waitFor(uint64_t Millis);

  /// Waits until \p Pred() holds, re-checking after every wakeup.
  template <typename PredT> void waitUntil(PredT Pred) {
    while (!Pred())
      wait();
  }

  /// Wakes one waiter (by moving it to the entry queue; it runs once the
  /// monitor is released). Caller must own the monitor.
  void notifyOne();

  /// Wakes all waiters. Caller must own the monitor.
  void notifyAll();

private:
  /// One blocked thread, stack-allocated in the blocking call's frame. The
  /// same node serves as an entry-queue link (Treiber stack threaded
  /// through the lock word) and as a wait-set link (owner-protected FIFO).
  struct QueueNode;

  /// The lock word. Bit 0 is the locked bit, bit 1 the biased bit, and the
  /// remaining bits are either the entry-queue head pointer (QueueNodes
  /// are ≥8-aligned, so bits 0–2 of a node address are zero) or, in the
  /// biased states, the bias owner's thread token:
  ///
  ///   0                     unlocked, no queue (thin, free)
  ///   kLockedBit            locked, no queue   (thin, held)
  ///   node | kLockedBit     locked, queued     (fat, held)
  ///   node                  unlocked, queued   (fat, free — wakeup race
  ///                                             window; queuers re-check)
  ///   tok<<2 | kBiasedBit   biased to thread tok (held iff InCs == 1)
  ///   kBiasedBit            bias revocation in progress (the revoker owns
  ///                         the word until it CASes to 0; everyone else
  ///                         waits for the transition)
  static constexpr uint64_t kLockedBit = 1;
  static constexpr uint64_t kBiasedBit = 2;
  static constexpr unsigned kTokenShift = 2;

  std::atomic<uint64_t> Word{0};
  /// The bias owner's token while it is inside (or claiming) a biased
  /// critical section, 0 otherwise; the revoker's wait target. Holding the
  /// claimant's *token* (not a flag) plus CAS-retraction means a stale
  /// claim from a previous bias epoch can neither fake the current owner
  /// being in a critical section nor erase its genuine claim. Read with
  /// acquire by revokers, whose membarrier makes the owner's relaxed
  /// claim-protocol accesses ordered against theirs.
  std::atomic<uint64_t> InCs{0};
  /// Sticky per-monitor bias kill switch, set by the first revocation so a
  /// contended monitor never re-enters the grant/revoke cycle.
  std::atomic<bool> BiasDisabled{false};
  /// Owner thread token (currentThreadToken()), 0 when free. Written only
  /// by the thread that just won/held the lock word; read lock-free by
  /// heldByCurrentThread and the reentrancy fast path.
  std::atomic<uint64_t> Owner{0};
  /// Recursion depth; accessed only while owning the lock word.
  uint32_t Depth = 0;
  /// Threads currently in a queued (inflated) acquire.
  std::atomic<unsigned> Queued{0};
  /// Wait set: FIFO of QueueNodes, mutated only while owning the monitor.
  QueueNode *WaitHead = nullptr;
  QueueNode *WaitTail = nullptr;

  void enterCold(uint64_t Self);
  void enterSlow(uint64_t Self);
  void acquireQueued(QueueNode &N, uint64_t Self);
  uint64_t revokeBias(uint64_t W);
  void unbiasSelf(uint64_t Self);
  void releaseOwnership();
  void requeueToEntry(QueueNode *N);
  void appendWaiter(QueueNode *N);
  void unlinkWaiter(QueueNode *N);
};

/// RAII synchronized block: \c Synchronized Sync(M); models
/// \c synchronized(m) { ... }.
class Synchronized {
public:
  explicit Synchronized(Monitor &M) : Mon(M) { Mon.enter(); }
  ~Synchronized() { Mon.exit(); }

  Synchronized(const Synchronized &) = delete;
  Synchronized &operator=(const Synchronized &) = delete;

private:
  Monitor &Mon;
};

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_MONITOR_H
