//===- runtime/Monitor.h - Reentrant monitors and guarded blocks -*- C++ -*-==//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Java-monitor analogues: reentrant mutual exclusion plus the wait/notify
/// ("guarded block") protocol, with metric instrumentation.
///
/// Every \c enter bumps Metric::Synch (the paper's "synchronized methods and
/// blocks executed"), every \c wait bumps Metric::Wait, and every
/// \c notifyOne / \c notifyAll bumps Metric::Notify — mirroring the DiSL
/// instrumentation the paper deploys on monitorenter and
/// Object.wait/notify/notifyAll.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_MONITOR_H
#define REN_RUNTIME_MONITOR_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace ren {
namespace runtime {

/// A reentrant monitor with an associated wait set, like a Java object
/// monitor. Waiting releases the full recursion depth and restores it after
/// wakeup; spurious wakeups are permitted (as in Java), so callers must
/// re-check their condition — or use \c waitUntil.
class Monitor {
public:
  Monitor() = default;
  Monitor(const Monitor &) = delete;
  Monitor &operator=(const Monitor &) = delete;

  /// Enters the monitor, blocking until available. Reentrant.
  void enter();

  /// Attempts to enter without blocking. \returns true on success.
  bool tryEnter();

  /// Exits the monitor. Must be called by the owner.
  void exit();

  /// Returns true if the calling thread owns the monitor.
  bool heldByCurrentThread() const;

  /// Number of threads currently blocked in a contended acquire. Lets
  /// tests and profilers build deterministic contention scenarios: spin
  /// until a victim is provably blocked before releasing.
  unsigned contendedAcquirers() const;

  /// Releases the monitor and blocks until notified (or spuriously woken),
  /// then reacquires it at the previous depth. Caller must own the monitor.
  void wait();

  /// Like \c wait, but with a wall-clock timeout in milliseconds.
  /// \returns false if the timeout elapsed before a notification.
  bool waitFor(uint64_t Millis);

  /// Waits until \p Pred() holds, re-checking after every wakeup.
  template <typename PredT> void waitUntil(PredT Pred) {
    while (!Pred())
      wait();
  }

  /// Wakes one waiter. Caller must own the monitor.
  void notifyOne();

  /// Wakes all waiters. Caller must own the monitor.
  void notifyAll();

private:
  mutable std::mutex Lock;
  std::condition_variable EntryCv;
  std::condition_variable WaitCv;
  std::thread::id Owner;
  unsigned Depth = 0;
  unsigned Waiting = 0; ///< Threads blocked in a contended acquire.

  void acquireSlow(std::unique_lock<std::mutex> &Guard, bool Contended);
};

/// RAII synchronized block: \c Synchronized Sync(M); models
/// \c synchronized(m) { ... }.
class Synchronized {
public:
  explicit Synchronized(Monitor &M) : Mon(M) { Mon.enter(); }
  ~Synchronized() { Mon.exit(); }

  Synchronized(const Synchronized &) = delete;
  Synchronized &operator=(const Synchronized &) = delete;

private:
  Monitor &Mon;
};

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_MONITOR_H
