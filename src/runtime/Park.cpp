//===- runtime/Park.cpp ---------------------------------------------------==//

#include "runtime/Park.h"

#include "metrics/Metrics.h"
#include "trace/Trace.h"

#include <chrono>

using namespace ren;
using namespace ren::runtime;
using metrics::Metric;

namespace {

inline uint64_t parkerId(const Parker *P) {
  return reinterpret_cast<uint64_t>(reinterpret_cast<uintptr_t>(P));
}

} // namespace

void Parker::park() {
  metrics::count(Metric::Park);
  // Tracing guard: one relaxed load when disabled.
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  std::unique_lock<std::mutex> Guard(Lock);
  Cv.wait(Guard, [this] { return Permit; });
  Permit = false;
  if (TraceT0)
    trace::span(trace::EventKind::Park, "park", TraceT0,
                trace::nowNanos() - TraceT0, parkerId(this), 1);
}

bool Parker::parkFor(uint64_t Millis) {
  metrics::count(Metric::Park);
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  std::unique_lock<std::mutex> Guard(Lock);
  bool Got = Cv.wait_for(Guard, std::chrono::milliseconds(Millis),
                         [this] { return Permit; });
  if (Got)
    Permit = false;
  if (TraceT0)
    trace::span(trace::EventKind::Park, "park", TraceT0,
                trace::nowNanos() - TraceT0, parkerId(this), Got);
  return Got;
}

void Parker::unpark() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Permit = true;
  }
  trace::instant(trace::EventKind::Unpark, "unpark", parkerId(this));
  Cv.notify_one();
}

Parker &ren::runtime::currentParker() {
  thread_local Parker P;
  return P;
}
