//===- runtime/Park.cpp ---------------------------------------------------==//

#include "runtime/Park.h"

#include "metrics/Metrics.h"

#include <chrono>

using namespace ren;
using namespace ren::runtime;
using metrics::Metric;

void Parker::park() {
  metrics::count(Metric::Park);
  std::unique_lock<std::mutex> Guard(Lock);
  Cv.wait(Guard, [this] { return Permit; });
  Permit = false;
}

bool Parker::parkFor(uint64_t Millis) {
  metrics::count(Metric::Park);
  std::unique_lock<std::mutex> Guard(Lock);
  bool Got = Cv.wait_for(Guard, std::chrono::milliseconds(Millis),
                         [this] { return Permit; });
  if (Got)
    Permit = false;
  return Got;
}

void Parker::unpark() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Permit = true;
  }
  Cv.notify_one();
}

Parker &ren::runtime::currentParker() {
  thread_local Parker P;
  return P;
}
