//===- runtime/Park.cpp ---------------------------------------------------==//

#include "runtime/Park.h"

#include "metrics/Metrics.h"
#include "trace/Trace.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

using namespace ren;
using namespace ren::runtime;
using metrics::Metric;

namespace {

inline uint64_t parkerId(const Parker *P) { return trace::objectId(P); }

/// Process-lifetime parker pool. Parkers are handed out one per live thread
/// and recycled on thread exit, but never destroyed: an unparker may still
/// be inside notify_one on a parker after its owner finished the wakeup
/// handshake (or exited), so destruction would be a use-after-free. The
/// pool itself is leaked for the same reason — thread-exit releases can run
/// after static destructors. The mutex here is off every hot path; it is
/// taken once per thread lifetime on each side.
class ParkerPool {
public:
  Parker *acquire() {
    {
      std::lock_guard<std::mutex> Guard(Lock);
      if (!Free.empty()) {
        Parker *P = Free.back();
        Free.pop_back();
        return P;
      }
    }
    return new Parker;
  }

  void release(Parker *P) {
    std::lock_guard<std::mutex> Guard(Lock);
    Free.push_back(P);
  }

private:
  std::mutex Lock;
  std::vector<Parker *> Free;
};

ParkerPool &pool() {
  static ParkerPool *Pool = new ParkerPool; // intentionally leaked
  return *Pool;
}

/// Thread-lifetime lease on a pooled parker.
struct ParkerLease {
  Parker *P = pool().acquire();
  ~ParkerLease() { pool().release(P); }
};

} // namespace

void Parker::park() {
  metrics::count(Metric::Park);
  // Tracing guard: one relaxed load when disabled.
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  std::unique_lock<std::mutex> Guard(Lock);
  Cv.wait(Guard, [this] { return Permit; });
  Permit = false;
  if (TraceT0)
    trace::span(trace::EventKind::Park, "park", TraceT0,
                trace::nowNanos() - TraceT0, parkerId(this), 1);
}

bool Parker::parkFor(uint64_t Millis) {
  metrics::count(Metric::Park);
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  std::unique_lock<std::mutex> Guard(Lock);
  bool Got = Cv.wait_for(Guard, std::chrono::milliseconds(Millis),
                         [this] { return Permit; });
  if (Got)
    Permit = false;
  if (TraceT0)
    trace::span(trace::EventKind::Park, "park", TraceT0,
                trace::nowNanos() - TraceT0, parkerId(this), Got);
  return Got;
}

void Parker::unpark() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Permit = true;
  }
  trace::instant(trace::EventKind::Unpark, "unpark", parkerId(this));
  Cv.notify_one();
}

Parker &ren::runtime::currentParker() {
  thread_local ParkerLease Lease;
  return *Lease.P;
}

uint64_t ren::runtime::detail::assignThreadToken() {
  static std::atomic<uint64_t> NextToken{1};
  uint64_t Token = NextToken.fetch_add(1, std::memory_order_relaxed);
  ThreadTokenCache = Token;
  return Token;
}
