//===- runtime/Atomic.h - Counted atomic operations -------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic wrappers whose read-modify-write operations bump Metric::Atomic.
///
/// The paper counts "atomic operations executed" by intercepting
/// sun.misc.Unsafe's CAS/getAndAdd family. Plain (volatile-style) loads and
/// stores are intentionally *not* counted, matching that instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_ATOMIC_H
#define REN_RUNTIME_ATOMIC_H

#include "metrics/Metrics.h"
#include "trace/Trace.h"

#include <atomic>

namespace ren {
namespace runtime {

namespace detail {

/// Traces one failed CAS (one retry-loop iteration). Out of line of the
/// success path; guarded by a single relaxed load when tracing is off.
inline void traceCasFailure(const void *Cell) {
  trace::instant(trace::EventKind::CasFail, "cas.fail",
                 trace::objectId(Cell));
}

} // namespace detail

/// An instrumented atomic cell, analogous to
/// java.util.concurrent.atomic.Atomic{Integer,Long,Reference}.
template <typename T> class Atomic {
public:
  Atomic() : Value(T()) {}
  explicit Atomic(T Initial) : Value(Initial) {}

  /// Plain atomic load (uncounted, like a volatile read).
  T load(std::memory_order Order = std::memory_order_seq_cst) const {
    return Value.load(Order);
  }

  /// Plain atomic store (uncounted, like a volatile write).
  void store(T Desired, std::memory_order Order = std::memory_order_seq_cst) {
    Value.store(Desired, Order);
  }

  /// Counted compare-and-swap. \returns true if the swap succeeded; on
  /// failure \p Expected is updated with the observed value.
  bool compareAndSwap(T &Expected, T Desired) {
    metrics::count(metrics::Metric::Atomic);
    bool Ok = Value.compare_exchange_strong(Expected, Desired);
    if (!Ok)
      detail::traceCasFailure(this);
    return Ok;
  }

  /// Counted CAS with value semantics, like AtomicReference.compareAndSet.
  bool compareAndSet(T Expected, T Desired) {
    metrics::count(metrics::Metric::Atomic);
    bool Ok = Value.compare_exchange_strong(Expected, Desired);
    if (!Ok)
      detail::traceCasFailure(this);
    return Ok;
  }

  /// Counted atomic exchange.
  T getAndSet(T Desired) {
    metrics::count(metrics::Metric::Atomic);
    return Value.exchange(Desired);
  }

  /// Counted fetch-add (integral T only).
  T getAndAdd(T Delta) {
    metrics::count(metrics::Metric::Atomic);
    return Value.fetch_add(Delta);
  }

  /// Counted increment returning the new value.
  T incrementAndGet() { return getAndAdd(T(1)) + T(1); }

  /// Counted decrement returning the new value.
  T decrementAndGet() { return getAndAdd(T(-1)) - T(1); }

private:
  std::atomic<T> Value;
};

/// An instrumented shared counter updated with a CAS retry loop, modelling
/// the java.util.Random / concurrent-counter pattern the paper's
/// atomic-operation-coalescing optimization (§5.3) targets: each update
/// performs READ + CAS, retrying under contention.
class CasCounter {
public:
  explicit CasCounter(uint64_t Initial = 0) : Value(Initial) {}

  /// Applies \p F to the current value with a CAS retry loop and returns
  /// the new value.
  template <typename FnT> uint64_t updateAndGet(FnT F) {
    uint64_t Old = Value.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t New = F(Old);
      if (Value.compareAndSwap(Old, New))
        return New;
    }
  }

  /// Adds \p Delta via CAS retry and returns the new value.
  uint64_t addAndGet(uint64_t Delta) {
    return updateAndGet([Delta](uint64_t V) { return V + Delta; });
  }

  uint64_t get() const { return Value.load(); }

private:
  Atomic<uint64_t> Value;
};

/// A deterministic java.util.Random analogue whose state is advanced with a
/// CAS retry loop, exactly like the JDK implementation. Calling nextDouble
/// performs *two* consecutive CAS retry loops (the JDK builds a double from
/// two next(26)/next(27) calls) — the pattern that makes future-genetic
/// atomic-heavy and that atomic-operation coalescing (§5.3) optimizes.
class SharedRandom {
public:
  explicit SharedRandom(uint64_t Seed)
      : Seed_((Seed ^ kMultiplier) & kMask) {}

  /// Returns the next \p Bits (<= 48) pseudo-random bits; one CAS loop.
  uint32_t next(unsigned Bits);

  /// Uniform in [0, Bound); one CAS loop per retry.
  uint32_t nextInt(uint32_t Bound);

  /// Uniform in [0, 1); two consecutive CAS loops, as in the JDK.
  double nextDouble();

private:
  static constexpr uint64_t kMultiplier = 0x5DEECE66DULL;
  static constexpr uint64_t kAddend = 0xBULL;
  static constexpr uint64_t kMask = (1ULL << 48) - 1;

  Atomic<uint64_t> Seed_;
};

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_ATOMIC_H
