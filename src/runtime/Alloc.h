//===- runtime/Alloc.h - Instrumented allocation & dispatch ----*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation and dynamic-dispatch instrumentation.
///
/// The paper counts objects allocated, arrays allocated, and methods
/// invoked via invokevirtual/invokeinterface/invokedynamic. The frameworks
/// and workloads in this repository route their allocation sites through
/// \c newObject / \c newArray and their polymorphic call sites through
/// \c virtualCall so the same dynamic counts are produced.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_ALLOC_H
#define REN_RUNTIME_ALLOC_H

#include "metrics/Metrics.h"

#include <memory>
#include <utility>
#include <vector>

namespace ren {
namespace runtime {

/// Notes \p N object allocations (for code that allocates in bulk).
inline void noteObjectAlloc(uint64_t N = 1) {
  metrics::count(metrics::Metric::Object, N);
}

/// Notes \p N array allocations.
inline void noteArrayAlloc(uint64_t N = 1) {
  metrics::count(metrics::Metric::Array, N);
}

/// Notes \p N dynamic-dispatch method invocations.
inline void noteVirtualCall(uint64_t N = 1) {
  metrics::count(metrics::Metric::Method, N);
}

/// Allocates a counted object: the analogue of Java \c new.
template <typename T, typename... ArgTs>
std::unique_ptr<T> newObject(ArgTs &&...Args) {
  noteObjectAlloc();
  return std::make_unique<T>(std::forward<ArgTs>(Args)...);
}

/// Allocates a counted shared object.
template <typename T, typename... ArgTs>
std::shared_ptr<T> newShared(ArgTs &&...Args) {
  noteObjectAlloc();
  return std::make_shared<T>(std::forward<ArgTs>(Args)...);
}

/// Allocates a counted array (the analogue of Java \c new T[n]).
template <typename T> std::vector<T> newArray(size_t Count, T Fill = T()) {
  noteArrayAlloc();
  return std::vector<T>(Count, Fill);
}

/// Invokes a virtual member function through an object pointer while
/// counting the dispatch: \c virtualCall(Shape, &Shape::area).
template <typename ObjT, typename FnT, typename... ArgTs>
decltype(auto) virtualCall(ObjT &&Obj, FnT Member, ArgTs &&...Args) {
  noteVirtualCall();
  return (std::forward<ObjT>(Obj)->*Member)(std::forward<ArgTs>(Args)...);
}

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_ALLOC_H
