//===- runtime/Alloc.h - Instrumented allocation & dispatch ----*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation and dynamic-dispatch instrumentation.
///
/// The paper counts objects allocated, arrays allocated, and methods
/// invoked via invokevirtual/invokeinterface/invokedynamic. The frameworks
/// and workloads in this repository route their allocation sites through
/// \c newObject / \c newShared / \c newArray and their polymorphic call
/// sites through \c virtualCall so the same dynamic counts are produced.
///
/// Since the managed-heap rework the seam does more than count: every
/// allocation draws from the slab substrate in runtime/Heap.h (the memory
/// manager the benchmarks actually measure, instead of glibc malloc), and
/// allocation sites feed the memsim cache model real heap addresses when a
/// simulation is active. `newObject` returns `Ref<T>` — a unique_ptr whose
/// deleter frees into the substrate — `newShared` keeps its
/// `std::shared_ptr` shape (control block and payload both
/// substrate-backed via allocate_shared), and `newArray` returns
/// `Array<T>`, a vector drawing from the heap, while noting the array's
/// element count and byte size for HeapStats attribution.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_ALLOC_H
#define REN_RUNTIME_ALLOC_H

#include "memsim/MemSim.h"
#include "metrics/Metrics.h"
#include "runtime/Heap.h"

#include <memory>
#include <utility>
#include <vector>

namespace ren {
namespace runtime {

/// Notes \p N object allocations (for code that allocates in bulk).
inline void noteObjectAlloc(uint64_t N = 1) {
  metrics::count(metrics::Metric::Object, N);
}

/// Notes \p N array allocations.
inline void noteArrayAlloc(uint64_t N = 1) {
  metrics::count(metrics::Metric::Array, N);
}

/// Notes \p N dynamic-dispatch method invocations.
inline void noteVirtualCall(uint64_t N = 1) {
  metrics::count(metrics::Metric::Method, N);
}

/// Deleter for substrate-backed objects: destroys, then returns the block
/// to the managed heap. Deleting through a base-class pointer works for
/// virtual destructors the same way it does for std::default_delete —
/// the heap rounds interior pointers back to their block start.
struct HeapDelete {
  template <typename T> void operator()(T *Obj) const {
    if (Obj) {
      Obj->~T();
      heap::deallocate(Obj);
    }
  }
};

/// An owned reference to a counted object on the managed heap; the
/// substrate-backed analogue of the std::unique_ptr newObject used to
/// return.
template <typename T> using Ref = std::unique_ptr<T, HeapDelete>;

/// A counted array on the managed heap (the analogue of Java `new T[n]`).
template <typename T> using Array = std::vector<T, heap::StlAllocator<T>>;

/// Allocates a counted object: the analogue of Java \c new.
template <typename T, typename... ArgTs> Ref<T> newObject(ArgTs &&...Args) {
  noteObjectAlloc();
  void *Mem = alignof(T) <= 16
                  ? heap::allocate(sizeof(T))
                  : heap::allocateAligned(sizeof(T), alignof(T));
  T *Obj = ::new (Mem) T(std::forward<ArgTs>(Args)...);
  memsim::traceData(Obj, sizeof(T));
  return Ref<T>(Obj);
}

/// Allocates a counted shared object. The returned type is an ordinary
/// std::shared_ptr; allocate_shared places the control block and payload
/// in one substrate block.
template <typename T, typename... ArgTs>
std::shared_ptr<T> newShared(ArgTs &&...Args) {
  noteObjectAlloc();
  std::shared_ptr<T> Obj = std::allocate_shared<T>(
      heap::StlAllocator<T>(), std::forward<ArgTs>(Args)...);
  memsim::traceData(Obj.get(), sizeof(T));
  return Obj;
}

/// Allocates a counted array. One Array metric event per array regardless
/// of length (the Java `new T[n]` analogue — pinned by AllocTest); the
/// element count and byte size are attributed separately through
/// heap::noteArrayBytes, and the memsim cache model sees the payload's
/// real heap address range when a simulation is active.
template <typename T> Array<T> newArray(size_t Count, T Fill = T()) {
  noteArrayAlloc();
  heap::noteArrayBytes(Count * sizeof(T));
  Array<T> Arr(Count, Fill);
  if (Count > 0)
    memsim::traceBuffer(Arr.data(), Count * sizeof(T));
  return Arr;
}

/// Invokes a virtual member function through an object pointer while
/// counting the dispatch: \c virtualCall(Shape, &Shape::area).
template <typename ObjT, typename FnT, typename... ArgTs>
decltype(auto) virtualCall(ObjT &&Obj, FnT Member, ArgTs &&...Args) {
  noteVirtualCall();
  return (std::forward<ObjT>(Obj)->*Member)(std::forward<ArgTs>(Args)...);
}

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_ALLOC_H
