//===- runtime/Heap.h - Managed slab-allocation substrate ------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A managed allocation substrate for the instrumented runtime.
///
/// The paper's allocation-heavy workloads (the DaCapo/ScalaBench analogues,
/// dotty, kvstore) run against a JVM heap, not glibc malloc; this layer
/// gives `newObject`/`newShared`/`newArray` (runtime/Alloc.h) a memory
/// manager of their own with GC-like observability: per-thread size-class
/// slab allocation, epoch-based deferred reclamation for the blocks and
/// slabs of exited threads, an optional deferred-refcount mode for shared
/// objects (à la RTGC), and a `HeapStats` snapshot (bytes live/allocated,
/// slab occupancy, reclaim pauses) surfaced through the harness
/// GcPausePlugin.
///
/// Design constraints, in priority order:
///
///  1. *No lock on the hot path.* Allocation is a thread-local bump
///     pointer with a single compare (then a second branch for the
///     slab-local free list); same-thread free is two plain stores. Both
///     touch only memory the calling thread owns.
///  2. *Cross-thread free never blocks the owner.* A block freed by a
///     non-owning thread is CAS-pushed onto the slab's remote-free stack
///     (push-only Treiber stack, so there is no ABA window); the owner
///     harvests the whole stack with one `exchange` on its allocation
///     slow path.
///  3. *Memory of exited threads is reclaimed, but only epochs later.*
///     Thread exit orphans the thread's slabs (generalizing the
///     exited-thread buffer scheme `src/trace` uses): a reclaim pass
///     adopts orphans only once the global epoch has advanced past their
///     retirement epoch, harvests their remote-free stacks, and recycles
///     slabs whose every carved block has been freed. Empty-slab recycling
///     goes through a lock-free versioned index stack shared process-wide.
///  4. *Everything is observable.* Per-thread single-writer stat cells
///     (the `metrics::CounterCell` pattern) fold into `heap::stats()`;
///     reclaim passes are timed as GC pauses (max/total) and emit
///     `trace::EventKind::HeapReclaim` spans.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_HEAP_H
#define REN_RUNTIME_HEAP_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace ren {
namespace runtime {
namespace heap {

//===----------------------------------------------------------------------===//
// Size classes
//===----------------------------------------------------------------------===//

/// Slab granule: every slab (and every large-allocation header block) is
/// 64KB-aligned, so the owning header of any block is one mask away.
inline constexpr size_t kSlabBytes = size_t(1) << 16;

/// Bytes reserved at the front of each slab for its header; block 0
/// starts here. Two cache lines, so 64-byte-aligned classes stay aligned.
inline constexpr size_t kSlabHeaderBytes = 128;

/// Largest size served from size-class slabs; bigger requests get a
/// dedicated 64KB-aligned header block from the system allocator.
inline constexpr size_t kMaxSmallSize = 8192;

/// jemalloc-style size-class ladder: 16-byte steps up to 128, then four
/// classes per power of two. All classes are multiples of 16.
inline constexpr std::array<uint32_t, 32> kSizeClasses = {
    16,   32,   48,   64,   80,   96,   112,  128,  160,  192,  224,
    256,  320,  384,  448,  512,  640,  768,  896,  1024, 1280, 1536,
    1792, 2048, 2560, 3072, 3584, 4096, 5120, 6144, 7168, 8192};

inline constexpr unsigned kNumSizeClasses =
    static_cast<unsigned>(kSizeClasses.size());

/// ClassIdx value marking a large-allocation header (not a slab).
inline constexpr uint32_t kLargeClassIdx = 0xFFFFFFFFu;

namespace detail {

/// Size -> class lookup table, one entry per 16-byte granule.
constexpr auto makeClassTable() {
  std::array<uint8_t, (kMaxSmallSize >> 4) + 1> Table{};
  unsigned Cls = 0;
  for (size_t I = 0; I < Table.size(); ++I) {
    while (kSizeClasses[Cls] < (I << 4))
      ++Cls;
    Table[I] = static_cast<uint8_t>(Cls);
  }
  return Table;
}
inline constexpr auto kClassTable = makeClassTable();

/// Multiply-shift reciprocal for dividing a block offset by \p BlockBytes:
/// with Magic = ceil(2^32 / B), idx = (Off * Magic) >> 32 is exact for all
/// Off < 2^16 and B <= 8192 (error term e = Magic*B - 2^32 < B, and
/// Off*e/2^32 < 1/B, too small to carry the floor). HeapTest verifies this
/// exhaustively for every class.
constexpr uint64_t blockIndexMagic(uint32_t BlockBytes) {
  return ((uint64_t(1) << 32) + BlockBytes - 1) / BlockBytes;
}

} // namespace detail

/// The size class serving a request of \p Size bytes (Size must be
/// <= kMaxSmallSize). Class 0 also serves zero-byte requests.
constexpr unsigned sizeClassOf(size_t Size) {
  return detail::kClassTable[(Size + 15) >> 4];
}

/// The rounded block size a request of \p Size bytes actually occupies
/// (the size class's block size, or \p Size itself on the large path).
/// This is the unit `BytesAllocated`/`BytesFreed` account in.
constexpr size_t blockBytesFor(size_t Size) {
  return Size > kMaxSmallSize ? Size : kSizeClasses[sizeClassOf(Size)];
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

/// A point-in-time aggregate of the heap's counters: per-thread cells
/// (live and retired) folded with the global gauges. Monotonic counters
/// unless noted; see \c delta for interval semantics.
struct HeapStats {
  uint64_t BytesAllocated = 0; ///< Block bytes handed out (rounded).
  uint64_t BytesFreed = 0;     ///< Block bytes returned (rounded).
  uint64_t ArrayBytes = 0;     ///< Payload bytes noted by newArray.
  uint64_t SmallAllocs = 0;    ///< Slab-path allocations.
  uint64_t LargeAllocs = 0;    ///< Dedicated-block allocations.
  uint64_t RemoteFrees = 0;    ///< Frees routed cross-thread.
  uint64_t RegionsAllocated = 0; ///< 1MB regions carved from the system.
  uint64_t SlabsInUse = 0;     ///< Gauge: slabs currently owned/orphaned.
  uint64_t SlabsRecycled = 0;  ///< Empty slabs returned to the pool.
  uint64_t OrphanSlabsAdopted = 0; ///< Orphans recycled by reclaim passes.
  uint64_t ReclaimPasses = 0;
  uint64_t ReclaimTotalNanos = 0;
  uint64_t ReclaimMaxNanos = 0; ///< All-time max pause (see delta()).
  uint64_t RcDeferred = 0;     ///< Rc objects whose count hit zero.
  uint64_t RcDestroyed = 0;    ///< Rc objects destroyed by reclaim passes.
  uint64_t Epoch = 0;          ///< Gauge: current reclamation epoch.

  /// Bytes currently live (allocated minus freed, in rounded block bytes).
  uint64_t bytesLive() const { return BytesAllocated - BytesFreed; }

  /// Live bytes as a percentage of the slab space currently in use; 0
  /// when no slabs are held.
  double slabOccupancyPercent() const {
    if (SlabsInUse == 0)
      return 0.0;
    return 100.0 * static_cast<double>(bytesLive()) /
           static_cast<double>(SlabsInUse * kSlabBytes);
  }

  /// Interval stats between two snapshots: counters subtract; the gauges
  /// (SlabsInUse, Epoch) carry End's value. ReclaimMaxNanos is an
  /// all-time high-water mark, so the delta reports it only when the
  /// interval advanced it (else 0): a nonzero value means "the longest
  /// pause ever happened in this interval, and was this long".
  static HeapStats delta(const HeapStats &Begin, const HeapStats &End);
};

/// Snapshot of the heap counters. Takes the registry lock (cold).
HeapStats stats();

//===----------------------------------------------------------------------===//
// Internal structures (exposed for the inline fast paths, like
// metrics::detail)
//===----------------------------------------------------------------------===//

namespace detail {

inline constexpr uint32_t kSlabMagic = 0x52454E48u; // "RENH"

/// Per-thread stat counter indexes (single-writer cells).
enum class Cell : unsigned {
  BytesAllocated,
  BytesFreed,
  ArrayBytes,
  SmallAllocs,
  LargeAllocs,
  RemoteFrees,
  RcDeferred,
};
inline constexpr unsigned kNumCells = 7;

/// The header at the base of every 64KB slab (and of every large block).
/// Field ownership:
///  - owner-only plain fields (Bump, LocalFree, FreedLocal, NextOwned):
///    written by the owning thread while the slab is owned; after
///    orphaning, only by the reclaim pass (ownership handed over through
///    the registry mutex).
///  - atomics (Owner, RemoteFree): touched cross-thread.
struct alignas(kSlabHeaderBytes) Slab {
  uint32_t Magic = 0;        ///< kSlabMagic; guards deallocate().
  uint32_t ClassIdx = 0;     ///< Size class, or kLargeClassIdx.
  uint32_t BlockBytes = 0;   ///< Block size (class size).
  uint32_t Capacity = 0;     ///< Blocks this slab can carve.
  uint64_t BlockMagic = 0;   ///< Reciprocal of BlockBytes (interior ptrs).
  uint64_t LargeBytes = 0;   ///< Large path: accounted payload bytes.
  /// Owning thread-cache id; 0 = orphaned (or pool-resident). Ids are
  /// never reused, so a stale id can never falsely match a live thread.
  std::atomic<uint64_t> Owner{0};
  /// Blocks freed by non-owning threads: push-only Treiber stack, drained
  /// wholesale by the owner (exchange), so there is no ABA window.
  std::atomic<void *> RemoteFree{nullptr};
  uint32_t Bump = 0;         ///< Blocks carved so far (cursor write-back).
  /// Blocks currently on LocalFree (harvest folds remote frees in here,
  /// so `Bump == FreedLocal` means every carved block is free and no
  /// in-flight remote free can be holding a live pointer — in-flight
  /// frees are by definition not yet counted, keeping recycling safe).
  uint32_t FreedLocal = 0;
  uint32_t SlabIndex = 0;    ///< Index in the global slab table.
  void *LocalFree = nullptr; ///< Owner-side free list (plain).
  Slab *NextOwned = nullptr; ///< Owner's per-class slab list.
  uint64_t RetireEpoch = 0;  ///< Epoch when orphaned (registry lock).

  char *data() { return reinterpret_cast<char *>(this) + kSlabHeaderBytes; }

  /// Block index of (possibly interior) pointer \p Ptr via the
  /// multiply-shift reciprocal; exact for every in-slab offset.
  uint32_t blockIndexOf(const void *Ptr) const {
    auto Off = static_cast<uint32_t>(
        reinterpret_cast<const char *>(Ptr) -
        (reinterpret_cast<const char *>(this) + kSlabHeaderBytes));
    return static_cast<uint32_t>((Off * BlockMagic) >> 32);
  }
};
static_assert(sizeof(Slab) <= kSlabHeaderBytes,
              "slab header must fit in the reserved prefix");

/// One size class's thread-local allocation state. The bump window
/// (BumpPtr/BumpEnd) is the hot-path cursor over Current's unused tail;
/// Current's Bump field is only synced on the slow path.
struct Bin {
  char *BumpPtr = nullptr;
  char *BumpEnd = nullptr;
  Slab *Current = nullptr; ///< Slab the bump window points into.
  Slab *Owned = nullptr;   ///< All owned slabs of this class.
};

/// Per-thread allocation cache: bins plus the thread's stat cell. Stats
/// are single-writer relaxed atomics (plain load+store bumps, the
/// metrics::CounterCell pattern) so stats() can read them racily-but-
/// clean while the owner keeps counting.
struct ThreadCache {
  std::array<Bin, kNumSizeClasses> Bins{};
  std::array<std::atomic<uint64_t>, kNumCells> Cells{};
  uint64_t Id = 0;          ///< Never-reused owner id (1-based).
  unsigned SlowPaths = 0;   ///< Slow-path counter (reclaim pacing).

  void bump(Cell C, uint64_t N = 1) {
    auto &Slot = Cells[static_cast<unsigned>(C)];
    Slot.store(Slot.load(std::memory_order_relaxed) + N,
               std::memory_order_relaxed);
  }
};

/// The calling thread's cache, or nullptr before first registration /
/// after TLS retirement. Registration happens on the allocation slow
/// path; a retired thread falls back to the large-block path, which
/// needs no cache.
extern thread_local ThreadCache *TlsCache;
extern thread_local bool TlsRetired;

/// Out-of-line slow paths (Heap.cpp).
void *allocateSlow(unsigned ClassIdx);
void *allocateLarge(size_t Size);
void deallocateLarge(Slab *Header);
void deallocateRemote(Slab *Owner, void *Block);
[[noreturn]] void badFree(void *Ptr);

/// The slab whose header owns \p Ptr (valid for slab blocks and large
/// blocks alike: both live at a 64KB-aligned header).
inline Slab *slabOf(const void *Ptr) {
  return reinterpret_cast<Slab *>(reinterpret_cast<uintptr_t>(Ptr) &
                                  ~(kSlabBytes - 1));
}

/// Bumps a per-thread stat cell, or the global fallback cell when the
/// thread has no cache (TLS teardown).
void bumpUncached(Cell C, uint64_t N);
inline void statBump(Cell C, uint64_t N = 1) {
  if (ThreadCache *TC = TlsCache)
    TC->bump(C, N);
  else
    bumpUncached(C, N);
}

} // namespace detail

//===----------------------------------------------------------------------===//
// Allocation API
//===----------------------------------------------------------------------===//

/// Allocates \p Size bytes (16-byte aligned). The hot path is a TLS load,
/// a table lookup and one bump-pointer compare; refills, harvesting and
/// region carving happen out of line.
inline void *allocate(size_t Size) {
  if (Size > kMaxSmallSize)
    return detail::allocateLarge(Size);
  unsigned Cls = sizeClassOf(Size);
  if (detail::ThreadCache *TC = detail::TlsCache) {
    detail::Bin &B = TC->Bins[Cls];
    if (B.BumpPtr != B.BumpEnd) {
      void *Block = B.BumpPtr;
      B.BumpPtr += kSizeClasses[Cls];
      TC->bump(detail::Cell::SmallAllocs);
      TC->bump(detail::Cell::BytesAllocated, kSizeClasses[Cls]);
      return Block;
    }
    if (detail::Slab *S = B.Current; S && S->LocalFree) {
      void *Block = S->LocalFree;
      S->LocalFree = *static_cast<void **>(Block);
      --S->FreedLocal;
      TC->bump(detail::Cell::SmallAllocs);
      TC->bump(detail::Cell::BytesAllocated, kSizeClasses[Cls]);
      return Block;
    }
  }
  return detail::allocateSlow(Cls);
}

/// Allocates \p Size bytes aligned to \p Align (a power of two). For
/// Align <= 16 this is plain \c allocate; larger alignments pick the
/// smallest size class that is a multiple of Align, or fall back to the
/// large path (whose 64KB-aligned blocks can host any offset).
void *allocateAligned(size_t Size, size_t Align);

/// Returns a block obtained from \c allocate / \c allocateAligned.
/// Interior pointers (e.g. a base-class subobject at a nonzero offset)
/// are rounded down to their block start. Safe from any thread; the
/// non-owning path is one CAS push.
inline void deallocate(void *Ptr) {
  if (!Ptr)
    return;
  detail::Slab *S = detail::slabOf(Ptr);
  if (S->Magic != detail::kSlabMagic)
    detail::badFree(Ptr);
  if (S->ClassIdx == kLargeClassIdx)
    return detail::deallocateLarge(S);
  void *Block = S->data() + size_t(S->blockIndexOf(Ptr)) * S->BlockBytes;
  detail::ThreadCache *TC = detail::TlsCache;
  if (TC && S->Owner.load(std::memory_order_relaxed) == TC->Id) {
    *static_cast<void **>(Block) = S->LocalFree;
    S->LocalFree = Block;
    ++S->FreedLocal;
    TC->bump(detail::Cell::BytesFreed, S->BlockBytes);
    return;
  }
  detail::deallocateRemote(S, Block);
}

/// Constructs a \p T in heap storage (uncounted: callers note metrics
/// themselves, mirroring how intrusive nodes were counted before).
template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
  void *Mem = alignof(T) <= 16 ? allocate(sizeof(T))
                               : allocateAligned(sizeof(T), alignof(T));
  return ::new (Mem) T(std::forward<ArgTs>(Args)...);
}

/// Destroys and frees an object obtained from \c create.
template <typename T> void destroy(T *Obj) {
  if (!Obj)
    return;
  Obj->~T();
  deallocate(Obj);
}

/// Notes \p Bytes of array payload (newArray attribution; satellite 2).
inline void noteArrayBytes(uint64_t Bytes) {
  detail::statBump(detail::Cell::ArrayBytes, Bytes);
}

/// An std::allocator-compatible handle over the heap, so standard
/// containers (and allocate_shared control blocks) draw from the
/// substrate. Stateless; all instances are interchangeable.
template <typename T> struct StlAllocator {
  using value_type = T;

  StlAllocator() = default;
  template <typename U> StlAllocator(const StlAllocator<U> &) {}

  T *allocate(size_t N) {
    size_t Bytes = N * sizeof(T);
    void *Mem = alignof(T) <= 16 ? heap::allocate(Bytes)
                                 : heap::allocateAligned(Bytes, alignof(T));
    return static_cast<T *>(Mem);
  }
  void deallocate(T *Ptr, size_t) { heap::deallocate(Ptr); }

  friend bool operator==(const StlAllocator &, const StlAllocator &) {
    return true;
  }
  friend bool operator!=(const StlAllocator &, const StlAllocator &) {
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Reclamation
//===----------------------------------------------------------------------===//

/// Runs one reclaim pass ("GC pause"): destroys zombie Rc objects,
/// adopts orphan slabs whose retirement epoch has passed, harvests their
/// remote-free stacks, recycles empty slabs, and folds the stat cells of
/// exited threads. Advances the epoch. Serialized on a reclaim lock;
/// safe to call concurrently with allocation on every other thread.
/// \returns the pause duration in nanoseconds.
uint64_t reclaim();

/// The current reclamation epoch (bumped by every reclaim pass).
uint64_t epoch();

/// Number of thread caches currently registered (live + retired awaiting
/// reclaim). Test hook.
size_t threadCacheCount();

//===----------------------------------------------------------------------===//
// Deferred reference counting (RTGC-style optional mode)
//===----------------------------------------------------------------------===//

namespace detail {

/// Header preceding every Rc object. When the count hits zero the header
/// is pushed onto a global zombie stack; destruction and memory reuse
/// happen inside a later reclaim pass, off the mutator's critical path —
/// the RTGC bargain: drop is wait-free, destruction is batched into
/// pauses. Dtors therefore run on the reclaiming thread.
struct RcHeader {
  std::atomic<uint64_t> Refs{1};
  void (*Destroy)(RcHeader *) = nullptr;
  RcHeader *NextZombie = nullptr;
};
inline constexpr size_t kRcHeaderBytes = 32;
static_assert(sizeof(RcHeader) <= kRcHeaderBytes);

void enqueueZombie(RcHeader *H);

} // namespace detail

/// A shared handle with deferred destruction: copies bump an atomic
/// count; the drop that reaches zero enqueues the object for the next
/// reclaim pass instead of destroying it inline. Destruction order is
/// unspecified and happens on the reclaiming thread.
template <typename T> class Rc {
  static_assert(alignof(T) <= 16, "Rc payloads must be 16-byte alignable");

public:
  Rc() = default;
  explicit Rc(detail::RcHeader *Header) : H(Header) {}
  Rc(const Rc &O) : H(O.H) {
    if (H)
      H->Refs.fetch_add(1, std::memory_order_relaxed);
  }
  Rc(Rc &&O) noexcept : H(O.H) { O.H = nullptr; }
  Rc &operator=(Rc O) noexcept {
    std::swap(H, O.H);
    return *this;
  }
  ~Rc() { drop(); }

  T *get() const {
    return H ? reinterpret_cast<T *>(reinterpret_cast<char *>(H) +
                                     detail::kRcHeaderBytes)
             : nullptr;
  }
  T *operator->() const { return get(); }
  T &operator*() const { return *get(); }
  explicit operator bool() const { return H != nullptr; }

  /// Current reference count (racy; tests/diagnostics only).
  uint64_t useCount() const {
    return H ? H->Refs.load(std::memory_order_relaxed) : 0;
  }

  void reset() {
    drop();
    H = nullptr;
  }

private:
  void drop() {
    if (H && H->Refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      detail::enqueueZombie(H);
  }

  detail::RcHeader *H = nullptr;
};

/// Allocates a deferred-refcount object on the substrate.
template <typename T, typename... ArgTs> Rc<T> newRc(ArgTs &&...Args) {
  void *Mem = allocate(detail::kRcHeaderBytes + sizeof(T));
  auto *H = ::new (Mem) detail::RcHeader();
  H->Destroy = [](detail::RcHeader *Header) {
    reinterpret_cast<T *>(reinterpret_cast<char *>(Header) +
                          detail::kRcHeaderBytes)
        ->~T();
  };
  ::new (static_cast<char *>(Mem) + detail::kRcHeaderBytes)
      T(std::forward<ArgTs>(Args)...);
  return Rc<T>(H);
}

} // namespace heap
} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_HEAP_H
