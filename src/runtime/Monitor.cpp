//===- runtime/Monitor.cpp ------------------------------------------------==//
//
// The thin-lock monitor. The full state machine and memory-ordering
// argument live in DESIGN.md §10; the load-bearing rules are
//
//  (1) every transfer of ownership goes through a CAS on the lock word —
//      an acquiring CAS is acquire, a releasing CAS is release, and since
//      *every* write to the word is an RMW, the release sequence makes any
//      later acquiring CAS synchronize with every earlier releasing one.
//      Owner/Depth/wait-set accesses therefore always happen-before the
//      next owner's accesses, without being atomic RMWs themselves.
//  (2) a queued acquirer publishes its stack node with a release CAS on
//      the word (covering the node's fields), and the exiting owner pops
//      the node with an acquire read before dereferencing it. The popper
//      copies the node's parker out, *then* sets Released (release), then
//      unparks: once the waiter observes Released (acquire) its frame may
//      legally die — the flag, not the unpark, is the lifetime handshake
//      (the same protocol as the fork/join join nodes, DESIGN.md §9).
//  (3) a push can only land while the locked bit is set (the push CAS's
//      expected value carries the bit), so the lock holder cannot miss it:
//      its releasing CAS either pops a queued node and wakes it, or
//      proves the queue was empty at release time. An enter that loses
//      the push race against a release re-reads the word and acquires
//      instead of parking — no lost wakeups.
//  (4) the biased states sit outside rule (1): the bias owner's enter/exit
//      use no RMW at all, so the transfer out of a biased epoch is the
//      asymmetric Dekker duel instead. The owner announces its token in
//      InCs (relaxed store + compiler fence) and confirms the word; the
//      revoker CASes the word to the revoking state, calls
//      membarrier(PRIVATE_EXPEDITED) — forcing every CPU through a full
//      barrier — and then waits until InCs no longer carries the owner's
//      token. The membarrier makes it impossible for the owner to confirm
//      a stale biased word after the revoker has observed it absent from
//      InCs, and the owner's release-store of InCs == 0 on exit is the
//      edge the revoker's acquire-load synchronizes with. Everything the
//      C++ memory model cannot express here (the fence asymmetry) is
//      confined to this one duel; DESIGN.md §10 carries the full argument.
//
//===----------------------------------------------------------------------===//

#include "runtime/Monitor.h"

#include "metrics/Metrics.h"
#include "runtime/Park.h"
#include "trace/Trace.h"

#include <cassert>
#include <chrono>
#include <thread>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace ren;
using namespace ren::runtime;
using metrics::Metric;

//===----------------------------------------------------------------------===//
// Biased-locking support: membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)
// issues a full memory barrier on every CPU currently running a thread of
// this process. That is the revoker's half of the asymmetric Dekker duel
// (rule 4); without it bias is never granted and the monitor is a pure
// thin/fat word lock.
//===----------------------------------------------------------------------===//

namespace {

#if defined(__linux__)
// From <linux/membarrier.h>; spelled out so the build does not depend on
// kernel headers being installed.
constexpr int kMembarrierCmdQuery = 0;
constexpr int kMembarrierCmdPrivateExpedited = 1 << 3;
constexpr int kMembarrierCmdRegisterPrivateExpedited = 1 << 4;

inline int membarrier(int Cmd) {
  return static_cast<int>(syscall(__NR_membarrier, Cmd, 0, 0));
}
#endif

/// Full barrier on every CPU running this process (only called once bias
/// has been granted, which initBiasMode gates on support).
inline void expeditedBarrier() {
#if defined(__linux__)
  membarrier(kMembarrierCmdPrivateExpedited);
#endif
}

} // namespace

std::atomic<int> runtime::detail::BiasMode{0};

int runtime::detail::initBiasMode() {
  int Mode = -1;
#if defined(__linux__)
  int Supported = membarrier(kMembarrierCmdQuery);
  if (Supported > 0 && (Supported & kMembarrierCmdPrivateExpedited) &&
      membarrier(kMembarrierCmdRegisterPrivateExpedited) == 0)
    Mode = 1;
#endif
  // Racy double-init is fine: registration is idempotent and every racer
  // computes the same answer.
  BiasMode.store(Mode, std::memory_order_relaxed);
  return Mode;
}

/// Wait-node state (wait-set arbitration between notify and timeout).
namespace {

constexpr uint32_t kWaiting = 0;  ///< In the wait set, not yet notified.
constexpr uint32_t kNotified = 1; ///< Moved to the entry queue by notify.
constexpr uint32_t kTimedOut = 2; ///< Claimed by the waiter's own timeout.

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// One step of bounded exponential backoff between spin probes: pause
/// bursts first, yields after (so single-CPU hosts make progress while a
/// contender spins against the lock holder).
inline void backoffStep(unsigned Round) {
  if (Round < 4) {
    for (unsigned I = 0; I < (8u << Round); ++I)
      cpuRelax();
  } else {
    std::this_thread::yield();
  }
}

/// Adaptive spin bound before a contended enter inflates (queues and
/// parks). Spinning only pays when the lock holder can run concurrently,
/// so single-CPU hosts skip straight to the queue.
unsigned spinRounds() {
  static const unsigned Rounds =
      std::thread::hardware_concurrency() > 1 ? 8 : 0;
  return Rounds;
}

/// Lock-word encoding of a node pointer (bit 0 stays free for kLockedBit).
inline uint64_t nodeBits(const void *N) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(N));
}

} // namespace

struct Monitor::QueueNode {
  /// The blocked thread's parker; set once at construction, read by the
  /// popping owner after the publishing CAS (rule 2).
  Parker *P = nullptr;
  /// Entry-queue (Treiber stack) link. Written before the publishing push
  /// CAS; stable until popped (only the lock holder pops, so the stack has
  /// one consumer and no pop-side ABA).
  QueueNode *Next = nullptr;
  /// Wait-set FIFO link; accessed only while owning the monitor.
  QueueNode *NextWait = nullptr;
  /// kWaiting / kNotified / kTimedOut; the notify-vs-timeout CAS target.
  std::atomic<uint32_t> State{kWaiting};
  /// The pop handshake: set by the exiting owner after it has copied P
  /// out; once true, this frame may die (rule 2).
  std::atomic<bool> Released{false};
};


/// Takes a word in one of the biased states and returns a fresh word once
/// no bias remains (the caller re-examines it under the thin/fat rules).
/// At most one thread wins the revoker role per epoch; everyone else —
/// including a bias owner whose claim confirm failed — waits out the
/// kBiasedBit revoking state here.
uint64_t Monitor::revokeBias(uint64_t W) {
  for (unsigned Round = 0;; ++Round) {
    if (!(W & kBiasedBit))
      return W;
    if (W != kBiasedBit) {
      // Biased to some thread: try to become the revoker.
      const uint64_t OwnerToken = W >> kTokenShift;
      if (!Word.compare_exchange_weak(W, kBiasedBit,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed))
        continue; // W refreshed; re-examine.
      // Won the revoker role. Kill future grants first so the monitor
      // cannot bounce back into a bias epoch after we neutralize it.
      BiasDisabled.store(true, std::memory_order_relaxed);
      trace::instant(trace::EventKind::MonitorInflate, "monitor.inflate",
                     trace::objectId(this), 1);
      // The Dekker duel (rule 4): after this barrier the owner cannot
      // confirm a stale biased word, so InCs != OwnerToken proves the
      // owner is not (and can no longer get) inside a critical section.
      expeditedBarrier();
      for (unsigned Wait = 0; InCs.load(std::memory_order_acquire) ==
                              OwnerToken;
           ++Wait)
        backoffStep(Wait < 16 ? Wait : 16);
      // Neutralize. On failure the owner converted itself to thin-held
      // (kLockedBit) mid-revocation — either way the bias is gone.
      uint64_t Expected = kBiasedBit;
      Word.compare_exchange_strong(Expected, 0, std::memory_order_acq_rel,
                                   std::memory_order_relaxed);
      return Word.load(std::memory_order_relaxed);
    }
    // Somebody else is revoking: wait for the transition out.
    backoffStep(Round < 16 ? Round : 16);
    W = Word.load(std::memory_order_relaxed);
  }
}

/// Converts a biased-held monitor to thin-held so the word protocol
/// (queue pushes, releaseOwnership) applies. Called by the owner before
/// any wait-set operation; a no-op when the monitor was acquired through
/// the word protocol.
void Monitor::unbiasSelf(uint64_t Self) {
  if (InCs.load(std::memory_order_relaxed) != Self)
    return;
  // Inside a biased critical section the word is either our biased word
  // or kBiasedBit (a revoker waiting on us); a revoker cannot complete
  // while InCs carries our token, so this CAS loop only ever races the
  // biased -> revoking transition.
  uint64_t W = Word.load(std::memory_order_relaxed);
  do {
    assert((W & kBiasedBit) && "biased critical section without bias word");
  } while (!Word.compare_exchange_weak(W, kLockedBit,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed));
  InCs.store(0, std::memory_order_release);
}

void Monitor::enterCold(uint64_t Self) {
  // Tracing guard: one relaxed load when disabled; the timestamp is taken
  // only when a session is recording.
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  if (Owner.load(std::memory_order_relaxed) == Self) {
    // Reentrant: only this thread can have stored Self, so the relaxed
    // load is decisive and no CAS is needed at all.
    ++Depth;
    metrics::count(Metric::Synch);
    if (TraceT0)
      trace::instant(trace::EventKind::MonitorAcquire, "monitor.acquire",
                     trace::objectId(this), Depth);
    return;
  }
  enterSlow(Self);
  metrics::count(Metric::Synch);
  if (TraceT0)
    trace::span(trace::EventKind::MonitorContended, "monitor.contended",
                TraceT0, trace::nowNanos() - TraceT0, trace::objectId(this));
}

void Monitor::enterSlow(uint64_t Self) {
  // The contended-acquirer count covers the whole slow path, *including*
  // bias revocation: a revoker blocked on the owner's critical section
  // must already read as contended, or a holder polling
  // contendedAcquirers() before releasing would deadlock against it.
  Queued.fetch_add(1, std::memory_order_relaxed);

  // Phase 0 — a biased word means the lock's owner is not even using the
  // word protocol yet: revoke the bias (waiting out the owner's critical
  // section if it is in one), then compete under the thin/fat rules.
  uint64_t W = Word.load(std::memory_order_relaxed);
  if (W & kBiasedBit)
    W = revokeBias(W);

  // Phase 1 — bounded adaptive spin: worth it only while the lock is held
  // thin (somebody queued means the holder will wake *them* first, so a
  // spinner would cut the queue ahead of threads that already paid for a
  // park — give up immediately and join them).
  for (unsigned Round = 0, Bound = spinRounds(); Round < Bound; ++Round) {
    if (W & kBiasedBit) {
      // Re-granted under our feet (only possible before the first
      // revocation sets BiasDisabled): revoke again.
      W = revokeBias(W);
      continue;
    }
    if (!(W & kLockedBit)) {
      if (Word.compare_exchange_weak(W, W | kLockedBit,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        Owner.store(Self, std::memory_order_relaxed);
        Depth = 1;
        Queued.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
      continue; // CAS refreshed W; re-examine without burning backoff.
    }
    if (W & ~kLockedBit)
      break; // Already inflated; park behind the queue.
    backoffStep(Round);
    W = Word.load(std::memory_order_relaxed);
  }

  // Phase 2 — inflate: register a stack node on the entry queue and park.
  QueueNode N;
  N.P = &currentParker();
  acquireQueued(N, Self);
  Queued.fetch_sub(1, std::memory_order_relaxed);
}

void Monitor::acquireQueued(QueueNode &N, uint64_t Self) {
  static_assert(alignof(QueueNode) >= 4,
                "QueueNode addresses must leave bits 0-1 free for "
                "kLockedBit and kBiasedBit");
  for (;;) {
    uint64_t W = Word.load(std::memory_order_relaxed);
    if (W & kBiasedBit) {
      // The word can re-enter a bias epoch while we race (a grant from 0
      // before the first revocation disables it); nodes cannot be pushed
      // onto a biased word, so revoke and re-examine.
      revokeBias(W);
      continue;
    }
    if (!(W & kLockedBit)) {
      // Free (queue may be non-empty — barging is allowed, as in HotSpot;
      // fairness is traded for the release fast path).
      if (Word.compare_exchange_weak(W, W | kLockedBit,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        Owner.store(Self, std::memory_order_relaxed);
        Depth = 1;
        return;
      }
      continue;
    }
    // Held: push our node. The expected value carries the locked bit, so
    // the push can only land while the lock is held (rule 3) — if the
    // holder releases first, the CAS fails and we retry the acquire.
    N.Released.store(false, std::memory_order_relaxed);
    N.Next = reinterpret_cast<QueueNode *>(W & ~kLockedBit);
    if (!Word.compare_exchange_weak(W, nodeBits(&N) | kLockedBit,
                                    std::memory_order_release,
                                    std::memory_order_relaxed))
      continue;
    if (!N.Next)
      trace::instant(trace::EventKind::MonitorInflate, "monitor.inflate",
                     trace::objectId(this));
    // Parked wait for the release baton (rule 2). A stray permit from an
    // earlier unpark makes park return early; the flag re-check absorbs it.
    while (!N.Released.load(std::memory_order_acquire))
      N.P->park();
  }
}

void Monitor::releaseOwnership() {
  Owner.store(0, std::memory_order_relaxed);
  uint64_t W = Word.load(std::memory_order_acquire);
  for (;;) {
    assert((W & kLockedBit) && "releasing an unheld monitor");
    auto *Head = reinterpret_cast<QueueNode *>(W & ~kLockedBit);
    if (!Head) {
      // Thin release: one CAS. A push racing in flips the CAS into the
      // pop branch below instead — it cannot land after we succeed,
      // because its expected value carries the locked bit (rule 3).
      if (Word.compare_exchange_weak(W, 0, std::memory_order_release,
                                     std::memory_order_acquire))
        return;
      continue;
    }
    // Fat release: unlock and pop the most recent queuer in one CAS, then
    // hand it the baton. Only the lock holder pops, so Head->Next is
    // stable here even while new pushes retarget the word.
    if (Word.compare_exchange_weak(W, nodeBits(Head->Next),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      Parker *P = Head->P;
      // Copy everything out of the node *before* releasing it: once
      // Released is set the waiter may return and pop its stack frame.
      Head->Released.store(true, std::memory_order_release);
      P->unpark();
      return;
    }
  }
}

void Monitor::appendWaiter(QueueNode *N) {
  N->NextWait = nullptr;
  if (WaitTail)
    WaitTail->NextWait = N;
  else
    WaitHead = N;
  WaitTail = N;
}

void Monitor::unlinkWaiter(QueueNode *N) {
  QueueNode *Prev = nullptr;
  for (QueueNode *Cur = WaitHead; Cur; Prev = Cur, Cur = Cur->NextWait) {
    if (Cur != N)
      continue;
    if (Prev)
      Prev->NextWait = N->NextWait;
    else
      WaitHead = N->NextWait;
    if (WaitTail == N)
      WaitTail = Prev;
    return;
  }
  // Not found: a notifier unlinked the node after losing the timeout CAS;
  // nothing left to do.
}

void Monitor::requeueToEntry(QueueNode *N) {
  N->Released.store(false, std::memory_order_relaxed);
  uint64_t W = Word.load(std::memory_order_relaxed);
  for (;;) {
    assert((W & kLockedBit) && "requeue requires ownership");
    N->Next = reinterpret_cast<QueueNode *>(W & ~kLockedBit);
    if (Word.compare_exchange_weak(W, nodeBits(N) | kLockedBit,
                                   std::memory_order_release,
                                   std::memory_order_relaxed))
      break;
  }
  if (!N->Next)
    trace::instant(trace::EventKind::MonitorInflate, "monitor.inflate",
                   trace::objectId(this));
}

void Monitor::wait() {
  metrics::count(Metric::Wait);
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  const uint64_t Self = currentThreadToken();
  assert(Owner.load(std::memory_order_relaxed) == Self &&
         "wait requires ownership");
  unbiasSelf(Self); // wait-set machinery runs on the word protocol
  QueueNode N;
  N.P = &currentParker();
  appendWaiter(&N);
  const uint32_t SavedDepth = Depth;
  Depth = 0;
  releaseOwnership();
  // Block until a notifier requeues the node onto the entry queue and a
  // subsequent exit hands over the baton — notify alone never wakes a
  // waiter (requeue-to-entry: no thundering herd, no futile wakeups).
  while (!N.Released.load(std::memory_order_acquire))
    N.P->park();
  Queued.fetch_add(1, std::memory_order_relaxed);
  acquireQueued(N, Self);
  Queued.fetch_sub(1, std::memory_order_relaxed);
  Depth = SavedDepth;
  if (TraceT0)
    trace::span(trace::EventKind::MonitorWait, "monitor.wait", TraceT0,
                trace::nowNanos() - TraceT0, trace::objectId(this));
}

bool Monitor::waitFor(uint64_t Millis) {
  metrics::count(Metric::Wait);
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  const uint64_t Self = currentThreadToken();
  assert(Owner.load(std::memory_order_relaxed) == Self &&
         "wait requires ownership");
  unbiasSelf(Self); // wait-set machinery runs on the word protocol
  QueueNode N;
  N.P = &currentParker();
  appendWaiter(&N);
  const uint32_t SavedDepth = Depth;
  Depth = 0;
  releaseOwnership();

  // Timed phase: the deadline covers the *wait*; reacquisition afterwards
  // is unbounded, as in Object.wait(timeout). The notify-vs-timeout race
  // is arbitrated by one CAS on the node state.
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Millis);
  bool Notified = true;
  for (;;) {
    if (N.State.load(std::memory_order_acquire) != kWaiting)
      break; // Notified: the node is on (or headed to) the entry queue.
    const auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline) {
      uint32_t Expected = kWaiting;
      if (N.State.compare_exchange_strong(Expected, kTimedOut,
                                          std::memory_order_acq_rel))
        Notified = false;
      // On CAS failure a notifier claimed the node first: count it as a
      // notification delivered at the deadline.
      break;
    }
    const auto RemainMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count();
    N.P->parkFor(static_cast<uint64_t>(RemainMs) + 1);
  }

  Queued.fetch_add(1, std::memory_order_relaxed);
  if (Notified) {
    // Requeued by the notifier: wait for the exit baton like any queued
    // acquirer, then reacquire.
    while (!N.Released.load(std::memory_order_acquire))
      N.P->park();
    acquireQueued(N, Self);
  } else {
    // Timed out: reacquire through the normal entry protocol (the node's
    // entry fields are free — no notifier will touch a kTimedOut node),
    // then unlink ourselves from the wait set under ownership.
    acquireQueued(N, Self);
    unlinkWaiter(&N);
  }
  Queued.fetch_sub(1, std::memory_order_relaxed);
  Depth = SavedDepth;
  if (TraceT0)
    trace::span(trace::EventKind::MonitorWait, "monitor.wait", TraceT0,
                trace::nowNanos() - TraceT0, trace::objectId(this),
                Notified);
  return Notified;
}

void Monitor::notifyOne() {
  metrics::count(Metric::Notify);
  assert(Owner.load(std::memory_order_relaxed) == currentThreadToken() &&
         "notify requires ownership");
  unbiasSelf(currentThreadToken()); // requeue pushes need the locked bit
  trace::instant(trace::EventKind::MonitorNotify, "monitor.notify",
                 trace::objectId(this), 0);
  while (QueueNode *N = WaitHead) {
    WaitHead = N->NextWait;
    if (!WaitHead)
      WaitTail = nullptr;
    uint32_t Expected = kWaiting;
    if (N->State.compare_exchange_strong(Expected, kNotified,
                                         std::memory_order_acq_rel)) {
      requeueToEntry(N);
      return;
    }
    // The waiter timed out concurrently; its notification must not be
    // swallowed — fall through and wake the next waiter instead. (The
    // timed-out node stays alive until its owner reacquires the monitor,
    // which needs our release, so touching it here was safe.)
  }
}

void Monitor::notifyAll() {
  metrics::count(Metric::Notify);
  assert(Owner.load(std::memory_order_relaxed) == currentThreadToken() &&
         "notify requires ownership");
  unbiasSelf(currentThreadToken()); // requeue pushes need the locked bit
  trace::instant(trace::EventKind::MonitorNotify, "monitor.notify",
                 trace::objectId(this), 1);
  while (QueueNode *N = WaitHead) {
    WaitHead = N->NextWait;
    if (!WaitHead)
      WaitTail = nullptr;
    uint32_t Expected = kWaiting;
    if (N->State.compare_exchange_strong(Expected, kNotified,
                                         std::memory_order_acq_rel))
      requeueToEntry(N);
  }
}
