//===- runtime/Monitor.cpp ------------------------------------------------==//

#include "runtime/Monitor.h"

#include "metrics/Metrics.h"

#include <cassert>
#include <chrono>

using namespace ren;
using namespace ren::runtime;
using metrics::Metric;

void Monitor::enter() {
  metrics::count(Metric::Synch);
  std::unique_lock<std::mutex> Guard(Lock);
  std::thread::id Self = std::this_thread::get_id();
  if (Owner == Self) {
    ++Depth;
    return;
  }
  acquireSlow(Guard);
}

void Monitor::acquireSlow(std::unique_lock<std::mutex> &Guard) {
  EntryCv.wait(Guard, [this] { return Depth == 0; });
  Owner = std::this_thread::get_id();
  Depth = 1;
}

bool Monitor::tryEnter() {
  std::unique_lock<std::mutex> Guard(Lock);
  std::thread::id Self = std::this_thread::get_id();
  if (Owner == Self) {
    metrics::count(Metric::Synch);
    ++Depth;
    return true;
  }
  if (Depth != 0)
    return false;
  metrics::count(Metric::Synch);
  Owner = Self;
  Depth = 1;
  return true;
}

void Monitor::exit() {
  std::unique_lock<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() &&
         "monitor exited by non-owner");
  assert(Depth > 0 && "monitor exit without enter");
  if (--Depth == 0) {
    Owner = std::thread::id();
    Guard.unlock();
    EntryCv.notify_one();
  }
}

bool Monitor::heldByCurrentThread() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Depth > 0 && Owner == std::this_thread::get_id();
}

void Monitor::wait() {
  metrics::count(Metric::Wait);
  std::unique_lock<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "wait requires ownership");
  unsigned SavedDepth = Depth;
  Depth = 0;
  Owner = std::thread::id();
  EntryCv.notify_one();
  WaitCv.wait(Guard);
  // Reacquire at the saved depth.
  EntryCv.wait(Guard, [this] { return Depth == 0; });
  Owner = std::this_thread::get_id();
  Depth = SavedDepth;
}

bool Monitor::waitFor(uint64_t Millis) {
  metrics::count(Metric::Wait);
  std::unique_lock<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "wait requires ownership");
  unsigned SavedDepth = Depth;
  Depth = 0;
  Owner = std::thread::id();
  EntryCv.notify_one();
  bool Notified = WaitCv.wait_for(Guard, std::chrono::milliseconds(Millis)) ==
                  std::cv_status::no_timeout;
  EntryCv.wait(Guard, [this] { return Depth == 0; });
  Owner = std::this_thread::get_id();
  Depth = SavedDepth;
  return Notified;
}

void Monitor::notifyOne() {
  metrics::count(Metric::Notify);
  std::lock_guard<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "notify requires ownership");
  WaitCv.notify_one();
}

void Monitor::notifyAll() {
  metrics::count(Metric::Notify);
  std::lock_guard<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "notify requires ownership");
  WaitCv.notify_all();
}
