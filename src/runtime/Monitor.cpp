//===- runtime/Monitor.cpp ------------------------------------------------==//

#include "runtime/Monitor.h"

#include "metrics/Metrics.h"
#include "trace/Trace.h"

#include <cassert>
#include <chrono>

using namespace ren;
using namespace ren::runtime;
using metrics::Metric;

namespace {

inline uint64_t monitorId(const Monitor *M) {
  return reinterpret_cast<uint64_t>(reinterpret_cast<uintptr_t>(M));
}

} // namespace

void Monitor::enter() {
  metrics::count(Metric::Synch);
  // Tracing guard: one relaxed load when disabled; the timestamp is taken
  // only when a session is recording.
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  std::unique_lock<std::mutex> Guard(Lock);
  std::thread::id Self = std::this_thread::get_id();
  if (Owner == Self) {
    ++Depth;
    if (TraceT0)
      trace::instant(trace::EventKind::MonitorAcquire, "monitor.acquire",
                     monitorId(this), Depth);
    return;
  }
  bool Contended = Depth != 0;
  acquireSlow(Guard, Contended);
  if (TraceT0) {
    if (Contended)
      trace::span(trace::EventKind::MonitorContended, "monitor.contended",
                  TraceT0, trace::nowNanos() - TraceT0, monitorId(this));
    else
      trace::instant(trace::EventKind::MonitorAcquire, "monitor.acquire",
                     monitorId(this));
  }
}

void Monitor::acquireSlow(std::unique_lock<std::mutex> &Guard,
                          bool Contended) {
  if (Contended) {
    ++Waiting;
    EntryCv.wait(Guard, [this] { return Depth == 0; });
    --Waiting;
  } else {
    EntryCv.wait(Guard, [this] { return Depth == 0; });
  }
  Owner = std::this_thread::get_id();
  Depth = 1;
}

unsigned Monitor::contendedAcquirers() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Waiting;
}

bool Monitor::tryEnter() {
  std::unique_lock<std::mutex> Guard(Lock);
  std::thread::id Self = std::this_thread::get_id();
  if (Owner == Self) {
    metrics::count(Metric::Synch);
    ++Depth;
    return true;
  }
  if (Depth != 0)
    return false;
  metrics::count(Metric::Synch);
  Owner = Self;
  Depth = 1;
  return true;
}

void Monitor::exit() {
  std::unique_lock<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() &&
         "monitor exited by non-owner");
  assert(Depth > 0 && "monitor exit without enter");
  if (--Depth == 0) {
    Owner = std::thread::id();
    Guard.unlock();
    EntryCv.notify_one();
  }
}

bool Monitor::heldByCurrentThread() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Depth > 0 && Owner == std::this_thread::get_id();
}

void Monitor::wait() {
  metrics::count(Metric::Wait);
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  std::unique_lock<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "wait requires ownership");
  unsigned SavedDepth = Depth;
  Depth = 0;
  Owner = std::thread::id();
  EntryCv.notify_one();
  WaitCv.wait(Guard);
  // Reacquire at the saved depth.
  EntryCv.wait(Guard, [this] { return Depth == 0; });
  Owner = std::this_thread::get_id();
  Depth = SavedDepth;
  if (TraceT0)
    trace::span(trace::EventKind::MonitorWait, "monitor.wait", TraceT0,
                trace::nowNanos() - TraceT0, monitorId(this));
}

bool Monitor::waitFor(uint64_t Millis) {
  metrics::count(Metric::Wait);
  uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
  std::unique_lock<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "wait requires ownership");
  unsigned SavedDepth = Depth;
  Depth = 0;
  Owner = std::thread::id();
  EntryCv.notify_one();
  bool Notified = WaitCv.wait_for(Guard, std::chrono::milliseconds(Millis)) ==
                  std::cv_status::no_timeout;
  EntryCv.wait(Guard, [this] { return Depth == 0; });
  Owner = std::this_thread::get_id();
  Depth = SavedDepth;
  if (TraceT0)
    trace::span(trace::EventKind::MonitorWait, "monitor.wait", TraceT0,
                trace::nowNanos() - TraceT0, monitorId(this), Notified);
  return Notified;
}

void Monitor::notifyOne() {
  metrics::count(Metric::Notify);
  std::lock_guard<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "notify requires ownership");
  trace::instant(trace::EventKind::MonitorNotify, "monitor.notify",
                 monitorId(this), 0);
  WaitCv.notify_one();
}

void Monitor::notifyAll() {
  metrics::count(Metric::Notify);
  std::lock_guard<std::mutex> Guard(Lock);
  assert(Owner == std::this_thread::get_id() && "notify requires ownership");
  trace::instant(trace::EventKind::MonitorNotify, "monitor.notify",
                 monitorId(this), 1);
  WaitCv.notify_all();
}
