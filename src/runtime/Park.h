//===- runtime/Park.h - Thread parking (LockSupport analogue) ---*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Permit-based thread parking, modelling
/// java.util.concurrent.locks.LockSupport (the paper profiles park through
/// sun.misc.Unsafe interception; we bump Metric::Park on every park).
///
/// Semantics match LockSupport: \c unpark grants a single permit (permits do
/// not accumulate); \c park consumes the permit if available, otherwise
/// blocks until unparked. Spurious returns are permitted.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_PARK_H
#define REN_RUNTIME_PARK_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace ren {
namespace runtime {

/// The per-thread parking primitive. Obtain the current thread's parker via
/// \c currentParker and hand it to the thread that will unpark.
class Parker {
public:
  /// Blocks the calling thread until a permit is available, then consumes
  /// it. Counts Metric::Park. Must only be called by the owning thread.
  void park();

  /// Like \c park, but returns after \p Millis milliseconds even without a
  /// permit. \returns true if a permit was consumed.
  bool parkFor(uint64_t Millis);

  /// Makes a single permit available and wakes the parked thread (if any).
  /// Callable from any thread, at any time: parkers are pool-allocated and
  /// never destroyed (see \c currentParker), so an unpark racing the owning
  /// thread's exit signals a still-live object. The permit may then land on
  /// the parker's next owner, which observes it as a spurious return.
  void unpark();

private:
  std::mutex Lock;
  std::condition_variable Cv;
  bool Permit = false;
};

/// Returns the calling thread's parker, leased from a process-lifetime pool
/// for the duration of the thread. Pooling (rather than a plain
/// thread_local) is load-bearing: wakeup protocols publish a Parker* to
/// other threads, and the final unpark may still be signalling it after the
/// owning thread has moved on — or exited. A parker is therefore never
/// deallocated; at worst a recycled parker carries a stale permit, which
/// the next owner's park() reports as an allowed spurious return.
Parker &currentParker();

namespace detail {

/// Cached thread token; 0 means unassigned. Constant-initialized TLS so
/// the hot currentThreadToken() path is a plain TLS read with no guard.
inline thread_local uint64_t ThreadTokenCache = 0;

/// Assigns and caches the calling thread's token (out of line; runs once
/// per thread).
uint64_t assignThreadToken();

} // namespace detail

/// A small nonzero token identifying the calling thread, assigned from a
/// monotonic counter on first use and never reused (unlike pthread ids or
/// std::thread::id values, which recycle). The monitor's lock-free owner
/// checks compare these tokens on every enter/exit, so this is a TLS read
/// plus a predictable branch.
inline uint64_t currentThreadToken() {
  uint64_t Token = detail::ThreadTokenCache;
  if (Token == 0)
    Token = detail::assignThreadToken();
  return Token;
}

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_PARK_H
