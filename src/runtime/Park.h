//===- runtime/Park.h - Thread parking (LockSupport analogue) ---*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Permit-based thread parking, modelling
/// java.util.concurrent.locks.LockSupport (the paper profiles park through
/// sun.misc.Unsafe interception; we bump Metric::Park on every park).
///
/// Semantics match LockSupport: \c unpark grants a single permit (permits do
/// not accumulate); \c park consumes the permit if available, otherwise
/// blocks until unparked. Spurious returns are permitted.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_PARK_H
#define REN_RUNTIME_PARK_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace ren {
namespace runtime {

/// The per-thread parking primitive. Obtain the current thread's parker via
/// \c currentParker and hand it to the thread that will unpark.
class Parker {
public:
  /// Blocks the calling thread until a permit is available, then consumes
  /// it. Counts Metric::Park. Must only be called by the owning thread.
  void park();

  /// Like \c park, but returns after \p Millis milliseconds even without a
  /// permit. \returns true if a permit was consumed.
  bool parkFor(uint64_t Millis);

  /// Makes a single permit available and wakes the parked thread (if any).
  /// Callable from any thread, but — as with LockSupport.unpark(thread) —
  /// the parker's owning thread must not have terminated (thread-local
  /// parkers die with their thread).
  void unpark();

private:
  std::mutex Lock;
  std::condition_variable Cv;
  bool Permit = false;
};

/// Returns the calling thread's parker.
Parker &currentParker();

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_PARK_H
