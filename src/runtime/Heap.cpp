//===- runtime/Heap.cpp - Managed slab-allocation substrate ---------------===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "support/Check.h"
#include "support/Clock.h"
#include "trace/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

using namespace ren;
using namespace ren::runtime;
using namespace ren::runtime::heap;
using namespace ren::runtime::heap::detail;

namespace {

/// Slabs per carved region: 16 x 64KB = 1MB per system allocation.
constexpr size_t kRegionSlabs = 16;

/// Slab-table capacity: 64K slabs = a 4GB managed-heap ceiling, far above
/// anything the workloads reach. Fixed so the lock-free free-slab stack
/// can index into a never-reallocated table.
constexpr uint32_t kMaxSlabs = 1u << 16;

/// Index value marking the empty free-slab stack.
constexpr uint32_t kNilIdx = 0xFFFFFFFFu;

/// Zombie backlog that triggers an opportunistic reclaim pass.
constexpr uint64_t kRcPendingTrigger = 1024;

/// Orphan-slab backlog that triggers an opportunistic reclaim pass.
constexpr uint64_t kOrphanTrigger = 8;

/// One registered thread cache. The cache structure must outlive the
/// owning thread until a reclaim pass folds its stat cells, so entries
/// are shared between the registry and the thread's TLS holder
/// (mirroring how trace keeps retired buffers registered).
struct CacheEntry {
  ThreadCache TC;
  bool Retired = false;     ///< Registry-lock guarded.
  uint64_t RetireEpoch = 0; ///< Epoch at retirement (registry lock).
};

struct GlobalHeap {
  // -- Slab table + lock-free free stack -------------------------------
  Slab **SlabTable = new Slab *[kMaxSlabs]();
  std::atomic<uint32_t> *NextFree = new std::atomic<uint32_t>[kMaxSlabs]();
  std::atomic<uint32_t> SlabCount{0};
  /// Versioned head {version:32, index:32}: the version counter makes the
  /// Treiber pop immune to ABA (a recycled slab re-pushed between a
  /// popper's reads changes the version even if the index matches).
  std::atomic<uint64_t> FreeTop{(uint64_t(0) << 32) | kNilIdx};

  std::mutex RegionLock; ///< Serializes region carving (cold).

  // -- Registry --------------------------------------------------------
  std::mutex CachesLock;
  std::vector<std::shared_ptr<CacheEntry>> Caches;
  std::vector<Slab *> OrphanSlabs;
  std::atomic<uint64_t> OrphanCount{0};
  std::atomic<uint64_t> NextCacheId{0};
  /// Stat cells folded in from reclaimed (exited) caches; CachesLock.
  std::array<uint64_t, kNumCells> RetiredCells{};
  /// Fallback cells for threads without a cache (TLS teardown): real
  /// fetch_add, but only ever on cold paths.
  std::array<std::atomic<uint64_t>, kNumCells> UncachedCells{};

  // -- Reclamation -----------------------------------------------------
  std::mutex ReclaimLock;
  std::atomic<uint64_t> Epoch{0};
  std::atomic<detail::RcHeader *> ZombieHead{nullptr};
  std::atomic<uint64_t> RcPending{0};

  // -- Global counters -------------------------------------------------
  std::atomic<uint64_t> RegionsAllocated{0};
  std::atomic<uint64_t> SlabsInUse{0};
  std::atomic<uint64_t> SlabsRecycled{0};
  std::atomic<uint64_t> OrphanSlabsAdopted{0};
  std::atomic<uint64_t> ReclaimPasses{0};
  std::atomic<uint64_t> ReclaimTotalNanos{0};
  std::atomic<uint64_t> ReclaimMaxNanos{0};
  std::atomic<uint64_t> RcDestroyed{0};
};

/// The process-wide heap state, leaked deliberately (like the metrics and
/// trace registries) so TLS destructors of any ordering can still reach it.
GlobalHeap &global() {
  static GlobalHeap *G = new GlobalHeap();
  return *G;
}

/// Reentrancy guard: an Rc payload destructor running inside a reclaim
/// pass may itself drop references and trip the pending-zombie trigger;
/// the nested attempt must not re-enter (std::mutex try_lock on the
/// owning thread is UB).
thread_local bool TlsInReclaim = false;

void pushFreeSlab(GlobalHeap &G, uint32_t Idx) {
  uint64_t Old = G.FreeTop.load(std::memory_order_relaxed);
  for (;;) {
    G.NextFree[Idx].store(static_cast<uint32_t>(Old), // old head index
                          std::memory_order_relaxed);
    uint64_t New = (((Old >> 32) + 1) << 32) | Idx;
    if (G.FreeTop.compare_exchange_weak(Old, New, std::memory_order_release,
                                        std::memory_order_relaxed))
      return;
  }
}

Slab *popFreeSlab(GlobalHeap &G) {
  uint64_t Old = G.FreeTop.load(std::memory_order_acquire);
  for (;;) {
    auto Idx = static_cast<uint32_t>(Old);
    if (Idx == kNilIdx)
      return nullptr;
    uint32_t Next = G.NextFree[Idx].load(std::memory_order_relaxed);
    uint64_t New = (((Old >> 32) + 1) << 32) | Next;
    if (G.FreeTop.compare_exchange_weak(Old, New, std::memory_order_acquire,
                                        std::memory_order_acquire))
      return G.SlabTable[Idx];
  }
}

/// Carves one region (16 slabs) from the system allocator and feeds the
/// free stack. RegionLock serializes carvers; a racing thread that lost
/// the pop may find slabs available again after this returns.
void carveRegion(GlobalHeap &G) {
  std::lock_guard<std::mutex> Lock(G.RegionLock);
  uint32_t Base = G.SlabCount.load(std::memory_order_relaxed);
  REN_CHECK(Base + kRegionSlabs <= kMaxSlabs,
            "managed heap exhausted its slab table");
  void *Mem = ::operator new(kRegionSlabs * kSlabBytes,
                             std::align_val_t(kSlabBytes));
  for (size_t I = 0; I < kRegionSlabs; ++I) {
    auto *S = ::new (static_cast<char *>(Mem) + I * kSlabBytes) Slab();
    S->Magic = kSlabMagic;
    S->SlabIndex = Base + static_cast<uint32_t>(I);
    G.SlabTable[S->SlabIndex] = S;
  }
  // Publish the table entries before any index becomes poppable.
  G.SlabCount.store(Base + kRegionSlabs, std::memory_order_release);
  for (size_t I = 0; I < kRegionSlabs; ++I)
    pushFreeSlab(G, Base + static_cast<uint32_t>(I));
  G.RegionsAllocated.fetch_add(1, std::memory_order_relaxed);
}

/// Drains a slab's remote-free stack into its local free list. Caller
/// must own the slab (or hold it orphaned under the reclaim protocol).
void harvest(Slab *S) {
  void *Remote = S->RemoteFree.exchange(nullptr, std::memory_order_acquire);
  while (Remote) {
    void *Next = *static_cast<void **>(Remote);
    *static_cast<void **>(Remote) = S->LocalFree;
    S->LocalFree = Remote;
    ++S->FreedLocal;
    Remote = Next;
  }
}

/// Syncs the bin's bump window back into its slab's Bump field (the
/// emptiness checks read Bump, the hot path only moves the window).
void syncBump(Bin &B) {
  if (!B.Current || !B.BumpPtr)
    return;
  B.Current->Bump = static_cast<uint32_t>(
      (B.BumpPtr - B.Current->data()) / B.Current->BlockBytes);
  B.BumpPtr = nullptr;
  B.BumpEnd = nullptr;
}

/// Returns a fully-free slab to the global pool.
void releaseToPool(GlobalHeap &G, Slab *S) {
  REN_CHECK(S->RemoteFree.load(std::memory_order_acquire) == nullptr,
            "recycling a slab with un-harvested remote frees");
  S->Owner.store(0, std::memory_order_release);
  S->LocalFree = nullptr;
  S->NextOwned = nullptr;
  S->Bump = 0;
  S->FreedLocal = 0;
  G.SlabsInUse.fetch_sub(1, std::memory_order_relaxed);
  G.SlabsRecycled.fetch_add(1, std::memory_order_relaxed);
  pushFreeSlab(G, S->SlabIndex);
}

/// Pops a pool slab (carving a region if the pool is dry) and initializes
/// it for \p ClassIdx under \p OwnerId.
Slab *acquireSlab(GlobalHeap &G, uint64_t OwnerId, unsigned ClassIdx) {
  Slab *S = popFreeSlab(G);
  while (!S) {
    carveRegion(G);
    S = popFreeSlab(G);
  }
  uint32_t Block = kSizeClasses[ClassIdx];
  S->ClassIdx = ClassIdx;
  S->BlockBytes = Block;
  S->BlockMagic = blockIndexMagic(Block);
  S->Capacity = static_cast<uint32_t>((kSlabBytes - kSlabHeaderBytes) / Block);
  S->Bump = 0;
  S->FreedLocal = 0;
  S->LocalFree = nullptr;
  S->NextOwned = nullptr;
  S->Owner.store(OwnerId, std::memory_order_release);
  G.SlabsInUse.fetch_add(1, std::memory_order_relaxed);
  return S;
}

uint64_t reclaimLocked(GlobalHeap &G);

/// Opportunistic reclaim: runs a pass only if no other thread (or this
/// thread, reentrantly) is already in one.
void tryReclaim(GlobalHeap &G) {
  if (TlsInReclaim)
    return;
  std::unique_lock<std::mutex> Lock(G.ReclaimLock, std::try_to_lock);
  if (Lock.owns_lock())
    reclaimLocked(G);
}

/// TLS anchor: registers the thread cache on construction, retires it on
/// thread exit (orphaning its slabs into the reclaim pipeline).
struct CacheHolder {
  std::shared_ptr<CacheEntry> Entry;

  CacheHolder() {
    GlobalHeap &G = global();
    Entry = std::make_shared<CacheEntry>();
    Entry->TC.Id = G.NextCacheId.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> Lock(G.CachesLock);
    G.Caches.push_back(Entry);
    TlsCache = &Entry->TC;
  }

  ~CacheHolder() {
    GlobalHeap &G = global();
    ThreadCache &TC = Entry->TC;
    // Owner-side cursor write-back happens before the lock: these are the
    // thread's own plain fields, and the mutex release below is what
    // publishes them to future adopters.
    for (Bin &B : TC.Bins)
      syncBump(B);
    TlsCache = nullptr;
    TlsRetired = true;
    std::lock_guard<std::mutex> Lock(G.CachesLock);
    uint64_t E = G.Epoch.load(std::memory_order_relaxed);
    for (Bin &B : TC.Bins) {
      for (Slab *S = B.Owned; S;) {
        Slab *Next = S->NextOwned;
        S->NextOwned = nullptr;
        S->RetireEpoch = E;
        S->Owner.store(0, std::memory_order_release);
        G.OrphanSlabs.push_back(S);
        G.OrphanCount.fetch_add(1, std::memory_order_relaxed);
        S = Next;
      }
      B.Owned = nullptr;
      B.Current = nullptr;
    }
    Entry->Retired = true;
    Entry->RetireEpoch = E;
  }
};

ThreadCache *registerCache() {
  if (TlsRetired)
    return nullptr;
  static thread_local CacheHolder Holder;
  return TlsCache;
}

uint64_t reclaimLocked(GlobalHeap &G) {
  TlsInReclaim = true;
  uint64_t Start = wallNanos();
  uint64_t E = G.Epoch.fetch_add(1, std::memory_order_acq_rel) + 1;

  // 1. Zombie Rc objects: destroy outside the registry lock (payload
  // destructors are allowed to allocate, free, and drop further refs).
  uint64_t Destroyed = 0;
  RcHeader *Z = G.ZombieHead.exchange(nullptr, std::memory_order_acquire);
  while (Z) {
    RcHeader *Next = Z->NextZombie;
    Z->Destroy(Z);
    Z->~RcHeader();
    heap::deallocate(Z);
    ++Destroyed;
    Z = Next;
  }
  if (Destroyed) {
    G.RcPending.fetch_sub(Destroyed, std::memory_order_relaxed);
    G.RcDestroyed.fetch_add(Destroyed, std::memory_order_relaxed);
  }

  // 2. Orphan slabs and retired caches, one epoch after retirement (the
  // trace exited-buffer protocol, generalized).
  uint64_t Recycled = 0;
  {
    std::lock_guard<std::mutex> Lock(G.CachesLock);
    for (size_t I = 0; I < G.OrphanSlabs.size();) {
      Slab *S = G.OrphanSlabs[I];
      if (S->RetireEpoch >= E) {
        ++I;
        continue;
      }
      harvest(S);
      if (S->Bump == S->FreedLocal) {
        releaseToPool(G, S);
        G.OrphanSlabsAdopted.fetch_add(1, std::memory_order_relaxed);
        G.OrphanCount.fetch_sub(1, std::memory_order_relaxed);
        ++Recycled;
        G.OrphanSlabs[I] = G.OrphanSlabs.back();
        G.OrphanSlabs.pop_back();
      } else {
        ++I;
      }
    }
    for (size_t I = 0; I < G.Caches.size();) {
      CacheEntry &En = *G.Caches[I];
      if (En.Retired && En.RetireEpoch < E) {
        for (unsigned C = 0; C < kNumCells; ++C)
          G.RetiredCells[C] +=
              En.TC.Cells[C].load(std::memory_order_relaxed);
        G.Caches[I] = std::move(G.Caches.back());
        G.Caches.pop_back();
      } else {
        ++I;
      }
    }
  }

  uint64_t Pause = wallNanos() - Start;
  G.ReclaimPasses.fetch_add(1, std::memory_order_relaxed);
  G.ReclaimTotalNanos.fetch_add(Pause, std::memory_order_relaxed);
  uint64_t Max = G.ReclaimMaxNanos.load(std::memory_order_relaxed);
  while (Pause > Max &&
         !G.ReclaimMaxNanos.compare_exchange_weak(Max, Pause,
                                                  std::memory_order_relaxed))
    ;
  trace::span(trace::EventKind::HeapReclaim, "heap.reclaim", Start, Pause,
              /*A=*/Recycled, /*B=*/Destroyed);
  TlsInReclaim = false;
  return Pause;
}

} // namespace

//===----------------------------------------------------------------------===//
// detail entry points
//===----------------------------------------------------------------------===//

namespace ren {
namespace runtime {
namespace heap {
namespace detail {

thread_local ThreadCache *TlsCache = nullptr;
thread_local bool TlsRetired = false;

void bumpUncached(Cell C, uint64_t N) {
  global().UncachedCells[static_cast<unsigned>(C)].fetch_add(
      N, std::memory_order_relaxed);
}

void *allocateSlow(unsigned ClassIdx) {
  GlobalHeap &G = global();
  ThreadCache *TC = TlsCache;
  if (!TC) {
    TC = registerCache();
    if (!TC) // TLS teardown: headered large block, no cache needed.
      return allocateLarge(kSizeClasses[ClassIdx]);
  }
  if ((++TC->SlowPaths & 63u) == 0 &&
      (G.RcPending.load(std::memory_order_relaxed) >= kRcPendingTrigger ||
       G.OrphanCount.load(std::memory_order_relaxed) >= kOrphanTrigger))
    tryReclaim(G);

  Bin &B = TC->Bins[ClassIdx];
  syncBump(B);

  // Sweep this class's owned slabs: harvest remote frees, reset any slab
  // that became fully free, pick the first usable one, and return surplus
  // fully-free slabs to the global pool.
  Slab *Chosen = nullptr;
  Slab **Link = &B.Owned;
  while (Slab *S = *Link) {
    harvest(S);
    if (S->Bump != 0 && S->Bump == S->FreedLocal) {
      // Every carved block is back on the local list: forget the list
      // and restart the bump cursor — equivalent, and bump-serveable.
      S->Bump = 0;
      S->FreedLocal = 0;
      S->LocalFree = nullptr;
    }
    if (!Chosen && (S->LocalFree || S->Bump < S->Capacity)) {
      Chosen = S;
      Link = &S->NextOwned;
      continue;
    }
    if (Chosen && S->Bump == 0 && !S->LocalFree) {
      *Link = S->NextOwned; // unlink surplus empty slab, keep Link put
      releaseToPool(G, S);
      continue;
    }
    Link = &S->NextOwned;
  }
  if (!Chosen) {
    Chosen = acquireSlab(G, TC->Id, ClassIdx);
    Chosen->NextOwned = B.Owned;
    B.Owned = Chosen;
  }
  B.Current = Chosen;

  TC->bump(Cell::SmallAllocs);
  TC->bump(Cell::BytesAllocated, Chosen->BlockBytes);
  if (Chosen->LocalFree) {
    void *Block = Chosen->LocalFree;
    Chosen->LocalFree = *static_cast<void **>(Block);
    --Chosen->FreedLocal;
    return Block;
  }
  char *Base = Chosen->data() + size_t(Chosen->Bump) * Chosen->BlockBytes;
  B.BumpPtr = Base + Chosen->BlockBytes;
  B.BumpEnd = Chosen->data() + size_t(Chosen->Capacity) * Chosen->BlockBytes;
  return Base;
}

void *allocateLarge(size_t Size) {
  size_t Total = kSlabHeaderBytes + Size;
  void *Mem = ::operator new(Total, std::align_val_t(kSlabBytes));
  auto *S = ::new (Mem) Slab();
  S->Magic = kSlabMagic;
  S->ClassIdx = kLargeClassIdx;
  S->LargeBytes = Size;
  statBump(Cell::LargeAllocs);
  statBump(Cell::BytesAllocated, Size);
  return static_cast<char *>(Mem) + kSlabHeaderBytes;
}

void deallocateLarge(Slab *S) {
  statBump(Cell::BytesFreed, S->LargeBytes);
  S->Magic = 0; // poison: double frees trip badFree, not silent reuse
  S->~Slab();
  ::operator delete(S, std::align_val_t(kSlabBytes));
}

void deallocateRemote(Slab *S, void *Block) {
  statBump(Cell::RemoteFrees);
  statBump(Cell::BytesFreed, S->BlockBytes);
  void *Head = S->RemoteFree.load(std::memory_order_relaxed);
  do {
    *static_cast<void **>(Block) = Head;
  } while (!S->RemoteFree.compare_exchange_weak(Head, Block,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
}

void badFree(void *Ptr) {
  std::fprintf(stderr,
               "heap::deallocate: %p is not a live managed-heap block\n",
               Ptr);
  std::abort();
}

void enqueueZombie(RcHeader *H) {
  GlobalHeap &G = global();
  statBump(Cell::RcDeferred);
  RcHeader *Head = G.ZombieHead.load(std::memory_order_relaxed);
  do {
    H->NextZombie = Head;
  } while (!G.ZombieHead.compare_exchange_weak(Head, H,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  if (G.RcPending.fetch_add(1, std::memory_order_relaxed) + 1 >=
      kRcPendingTrigger)
    tryReclaim(G);
}

} // namespace detail

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

void *allocateAligned(size_t Size, size_t Align) {
  REN_CHECK((Align & (Align - 1)) == 0, "alignment must be a power of two");
  if (Align <= 16)
    return allocate(Size);
  // Blocks sit at kSlabHeaderBytes + idx*B from a 64KB-aligned base, so a
  // multiple-of-Align class only yields aligned blocks while Align also
  // divides the header offset (Align <= 128).
  if (Size <= kMaxSmallSize && Align <= kSlabHeaderBytes)
    for (unsigned C = sizeClassOf(Size); C < kNumSizeClasses; ++C)
      if (kSizeClasses[C] % Align == 0)
        return allocate(kSizeClasses[C]);
  // Large path: the payload sits kSlabHeaderBytes past a 64KB-aligned
  // base, which satisfies any Align <= 128; beyond that, pad the header.
  if (Align <= kSlabHeaderBytes)
    return detail::allocateLarge(Size);
  size_t Offset = (kSlabHeaderBytes + Align - 1) & ~(Align - 1);
  size_t Total = Offset + Size;
  void *Mem = ::operator new(Total, std::align_val_t(kSlabBytes));
  auto *S = ::new (Mem) detail::Slab();
  S->Magic = detail::kSlabMagic;
  S->ClassIdx = kLargeClassIdx;
  S->LargeBytes = Size;
  detail::statBump(detail::Cell::LargeAllocs);
  detail::statBump(detail::Cell::BytesAllocated, Size);
  return static_cast<char *>(Mem) + Offset;
}

uint64_t reclaim() {
  GlobalHeap &G = global();
  if (TlsInReclaim)
    return 0;
  std::lock_guard<std::mutex> Lock(G.ReclaimLock);
  return reclaimLocked(G);
}

uint64_t epoch() { return global().Epoch.load(std::memory_order_acquire); }

size_t threadCacheCount() {
  GlobalHeap &G = global();
  std::lock_guard<std::mutex> Lock(G.CachesLock);
  return G.Caches.size();
}

HeapStats stats() {
  GlobalHeap &G = global();
  std::array<uint64_t, detail::kNumCells> Cells{};
  {
    std::lock_guard<std::mutex> Lock(G.CachesLock);
    for (unsigned C = 0; C < detail::kNumCells; ++C)
      Cells[C] = G.RetiredCells[C] +
                 G.UncachedCells[C].load(std::memory_order_relaxed);
    for (const auto &Entry : G.Caches)
      for (unsigned C = 0; C < detail::kNumCells; ++C)
        Cells[C] += Entry->TC.Cells[C].load(std::memory_order_relaxed);
  }
  HeapStats S;
  auto Cell = [&Cells](detail::Cell C) {
    return Cells[static_cast<unsigned>(C)];
  };
  S.BytesAllocated = Cell(detail::Cell::BytesAllocated);
  S.BytesFreed = Cell(detail::Cell::BytesFreed);
  S.ArrayBytes = Cell(detail::Cell::ArrayBytes);
  S.SmallAllocs = Cell(detail::Cell::SmallAllocs);
  S.LargeAllocs = Cell(detail::Cell::LargeAllocs);
  S.RemoteFrees = Cell(detail::Cell::RemoteFrees);
  S.RcDeferred = Cell(detail::Cell::RcDeferred);
  S.RegionsAllocated = G.RegionsAllocated.load(std::memory_order_relaxed);
  S.SlabsInUse = G.SlabsInUse.load(std::memory_order_relaxed);
  S.SlabsRecycled = G.SlabsRecycled.load(std::memory_order_relaxed);
  S.OrphanSlabsAdopted = G.OrphanSlabsAdopted.load(std::memory_order_relaxed);
  S.ReclaimPasses = G.ReclaimPasses.load(std::memory_order_relaxed);
  S.ReclaimTotalNanos = G.ReclaimTotalNanos.load(std::memory_order_relaxed);
  S.ReclaimMaxNanos = G.ReclaimMaxNanos.load(std::memory_order_relaxed);
  S.RcDestroyed = G.RcDestroyed.load(std::memory_order_relaxed);
  S.Epoch = G.Epoch.load(std::memory_order_relaxed);
  return S;
}

HeapStats HeapStats::delta(const HeapStats &Begin, const HeapStats &End) {
  HeapStats D;
  D.BytesAllocated = End.BytesAllocated - Begin.BytesAllocated;
  D.BytesFreed = End.BytesFreed - Begin.BytesFreed;
  D.ArrayBytes = End.ArrayBytes - Begin.ArrayBytes;
  D.SmallAllocs = End.SmallAllocs - Begin.SmallAllocs;
  D.LargeAllocs = End.LargeAllocs - Begin.LargeAllocs;
  D.RemoteFrees = End.RemoteFrees - Begin.RemoteFrees;
  D.RegionsAllocated = End.RegionsAllocated - Begin.RegionsAllocated;
  D.SlabsInUse = End.SlabsInUse; // gauge
  D.SlabsRecycled = End.SlabsRecycled - Begin.SlabsRecycled;
  D.OrphanSlabsAdopted = End.OrphanSlabsAdopted - Begin.OrphanSlabsAdopted;
  D.ReclaimPasses = End.ReclaimPasses - Begin.ReclaimPasses;
  D.ReclaimTotalNanos = End.ReclaimTotalNanos - Begin.ReclaimTotalNanos;
  D.ReclaimMaxNanos =
      End.ReclaimMaxNanos != Begin.ReclaimMaxNanos ? End.ReclaimMaxNanos : 0;
  D.RcDeferred = End.RcDeferred - Begin.RcDeferred;
  D.RcDestroyed = End.RcDestroyed - Begin.RcDestroyed;
  D.Epoch = End.Epoch; // gauge
  return D;
}

} // namespace heap
} // namespace runtime
} // namespace ren
