//===- runtime/Runtime.h - Umbrella header for the runtime ------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for the instrumented runtime primitives.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_RUNTIME_H
#define REN_RUNTIME_RUNTIME_H

#include "runtime/Alloc.h"
#include "runtime/Atomic.h"
#include "runtime/MethodHandle.h"
#include "runtime/Monitor.h"
#include "runtime/Park.h"

#endif // REN_RUNTIME_RUNTIME_H
