//===- runtime/MethodHandle.h - invokedynamic analogue ----------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of the JVM's invokedynamic / method-handle machinery (JSR 292),
/// which underlies Java 8 lambdas (paper §5.4).
///
/// On the JVM, a lambda-creation site compiles to an \c invokedynamic
/// bytecode. Its first execution runs a *bootstrap method* that spins an
/// anonymous class and links the call site; every execution of the bytecode
/// then produces the lambda object, and invoking the lambda goes through
/// the method handle's polymorphic \c invoke. We model all three stages:
///
///  - \c InvokeDynamicSite — a static call-site object. \c makeHandle
///    counts Metric::IDynamic per execution and runs the bootstrap lambda
///    factory exactly once (first execution), caching the linkage.
///  - \c MethodHandle<Sig> — a polymorphic callable. \c invoke counts
///    Metric::Method (an invokevirtual-equivalent dispatch).
///
/// §5.4 also shows that a *method-handle-simplification* (MHS) JIT pass —
/// collapsing the polymorphic invoke chain into a direct call — is one of
/// the highest-impact optimizations on the suite. The handle models the
/// bootstrap-then-simplify lifecycle:
///
///  - storage is small-buffer-optimized: captureless and small trivially
///    copyable lambdas live inline in the handle (no heap allocation, no
///    shared_ptr double indirection); larger targets fall back to a shared
///    heap cell. Either way dispatch is ONE function-pointer call.
///  - \c invoke is the polymorphic path: it checks for the first
///    invocation, transitions the handle to the simplified state (emitting
///    a \c MhSimplify trace event), then dispatches.
///  - \c directInvoke is the monomorphic fast path a simplified call site
///    compiles to: dispatch + Metric::Method, no transition check. Fused
///    pipeline interpreters (streams/rx) call \c simplify() once when a
///    pipeline is linked and \c directInvoke per element.
///  - \c directCall is dispatch alone, for interpreters that batch their
///    Metric::Method accounting per index range (the counts are identical,
///    the per-element counter update is hoisted — exactly the distinction
///    between what MHS removes, dispatch overhead, and what it must
///    preserve, the dynamic invocation counts DiSL would observe).
///
/// The streams, rx and futures frameworks route user lambdas through these
/// types, which is what makes Renaissance workloads idynamic-heavy (Fig 4)
/// and creates the method-handle-simplification opportunity.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_METHODHANDLE_H
#define REN_RUNTIME_METHODHANDLE_H

#include "metrics/Metrics.h"
#include "runtime/Alloc.h"
#include "trace/Trace.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>

namespace ren {
namespace runtime {

/// A small-buffer-optimized type-erased callable: the uncounted dispatch
/// substrate under MethodHandle, and a cheaper std::function replacement
/// for framework plumbing (rx observers, future callbacks).
///
/// Calling convention: one load of the trampoline pointer plus one indirect
/// call. Trivially copyable targets up to three words live inline; anything
/// else is held in a shared heap cell (copies share the target, which is
/// the ownership model every callback site here already used via
/// shared_ptr-captured state).
template <typename SigT> class SmallFn;

template <typename RetT, typename... ArgTs> class SmallFn<RetT(ArgTs...)> {
public:
  SmallFn() = default;

  template <typename FnT,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<FnT>, SmallFn> &&
                std::is_invocable_r_v<RetT, std::decay_t<FnT> &, ArgTs...>>>
  SmallFn(FnT &&Target) {
    using F = std::decay_t<FnT>;
    Call = [](void *Ctx, ArgTs &&...Args) -> RetT {
      return (*static_cast<F *>(Ctx))(std::forward<ArgTs>(Args)...);
    };
    if constexpr (fitsInline<F>()) {
      OnHeap = false;
      ::new (static_cast<void *>(Buf)) F(std::forward<FnT>(Target));
      Ctx = Buf;
    } else {
      OnHeap = true;
      Heap = std::make_shared<F>(std::forward<FnT>(Target));
      Ctx = Heap.get();
    }
  }

  // Ctx always points at *this object's* target (its own Buf on the inline
  // path), so copies recompute it instead of copying it.
  SmallFn(const SmallFn &Other)
      : Call(Other.Call), OnHeap(Other.OnHeap), Heap(Other.Heap) {
    std::memcpy(Buf, Other.Buf, kInlineBytes);
    Ctx = OnHeap ? Heap.get() : static_cast<void *>(Buf);
  }

  SmallFn(SmallFn &&Other) noexcept
      : Call(Other.Call), OnHeap(Other.OnHeap), Heap(std::move(Other.Heap)) {
    std::memcpy(Buf, Other.Buf, kInlineBytes);
    Ctx = OnHeap ? Heap.get() : static_cast<void *>(Buf);
  }

  SmallFn &operator=(const SmallFn &Other) {
    Call = Other.Call;
    OnHeap = Other.OnHeap;
    Heap = Other.Heap;
    std::memcpy(Buf, Other.Buf, kInlineBytes);
    Ctx = OnHeap ? Heap.get() : static_cast<void *>(Buf);
    return *this;
  }

  SmallFn &operator=(SmallFn &&Other) noexcept {
    Call = Other.Call;
    OnHeap = Other.OnHeap;
    Heap = std::move(Other.Heap);
    std::memcpy(Buf, Other.Buf, kInlineBytes);
    Ctx = OnHeap ? Heap.get() : static_cast<void *>(Buf);
    return *this;
  }

  explicit operator bool() const { return Call != nullptr; }

  /// True if the target lives in the inline buffer (no heap cell).
  bool isInline() const { return Call != nullptr && !OnHeap; }

  /// Dispatch: one load of the precomputed context, one indirect call.
  RetT operator()(ArgTs... Args) const {
    assert(Call && "calling an empty SmallFn");
    return Call(Ctx, std::forward<ArgTs>(Args)...);
  }

private:
  static constexpr size_t kInlineBytes = 3 * sizeof(void *);

  template <typename F> static constexpr bool fitsInline() {
    return sizeof(F) <= kInlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<F> &&
           std::is_trivially_destructible_v<F>;
  }

  using Trampoline = RetT (*)(void *, ArgTs &&...);

  Trampoline Call = nullptr;
  void *Ctx = nullptr;
  bool OnHeap = false;
  std::shared_ptr<void> Heap;
  alignas(std::max_align_t) mutable unsigned char Buf[kInlineBytes] = {};
};

template <typename SigT> class MethodHandle;

/// A polymorphic method handle holding a target callable. Invocation is a
/// counted dynamic dispatch (the \c invoke on the JVM is polymorphic and
/// blocks inlining — exactly the cost MHS removes in the JIT experiments).
/// See the file comment for the bootstrap-then-simplify lifecycle.
template <typename RetT, typename... ArgTs> class MethodHandle<RetT(ArgTs...)> {
public:
  MethodHandle() = default;

  /// Links a handle to \p Target. Constrained so that copying a
  /// MethodHandle never routes through this greedy forwarding constructor.
  template <typename FnT,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<FnT>, MethodHandle> &&
                std::is_invocable_r_v<RetT, std::decay_t<FnT> &, ArgTs...>>>
  explicit MethodHandle(FnT &&Target)
      : Target(std::forward<FnT>(Target)) {}

  // The simplified flag is per handle *copy* (each copy is one call site
  // instance); copies inherit the current state so an already-simplified
  // handle does not re-announce itself when captured into a closure.
  MethodHandle(const MethodHandle &Other)
      : Target(Other.Target),
        Simplified(Other.Simplified.load(std::memory_order_relaxed)) {}

  MethodHandle(MethodHandle &&Other) noexcept
      : Target(std::move(Other.Target)),
        Simplified(Other.Simplified.load(std::memory_order_relaxed)) {}

  MethodHandle &operator=(const MethodHandle &Other) {
    Target = Other.Target;
    Simplified.store(Other.Simplified.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  MethodHandle &operator=(MethodHandle &&Other) noexcept {
    Target = std::move(Other.Target);
    Simplified.store(Other.Simplified.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  /// True if the handle is linked to a target.
  explicit operator bool() const { return static_cast<bool>(Target); }

  /// True if the target is stored inline (the SBO fast path).
  bool isInline() const { return Target.isInline(); }

  /// True once the handle has transitioned to the direct-invoke path.
  bool isSimplified() const {
    return Simplified.load(std::memory_order_relaxed);
  }

  /// Transitions this handle (copy) to the simplified state, emitting the
  /// MhSimplify trace event exactly once per transition. Idempotent; safe
  /// to race.
  ///
  /// Memory ordering: relaxed suffices throughout. The flag guards no
  /// data — the dispatch state (trampoline pointer and captured target) is
  /// immutable after construction and is published to other threads by
  /// whatever mechanism publishes the handle object itself (task
  /// submission, closure capture). The flag only dedups the one-shot trace
  /// event, and the trace ring has its own seqlock publication protocol.
  void simplify() const {
    if (Simplified.load(std::memory_order_relaxed))
      return;
    if (!Simplified.exchange(true, std::memory_order_relaxed))
      trace::instant(trace::EventKind::MhSimplify, "mh.simplify",
                     trace::objectId(this), Target.isInline() ? 1 : 0);
  }

  /// Polymorphic invocation; counts one dynamic dispatch. The first
  /// invocation transitions the handle to the simplified state (the
  /// bootstrap-then-simplify model).
  RetT invoke(ArgTs... Args) const {
    assert(Target && "invoking an unlinked method handle");
    simplify();
    noteVirtualCall();
    return Target(std::forward<ArgTs>(Args)...);
  }

  /// The monomorphic fast path a simplified call site compiles to: one
  /// counted direct dispatch, no transition check. Callers must have
  /// simplified the handle first (fused interpreters do this when the
  /// pipeline is linked).
  RetT directInvoke(ArgTs... Args) const {
    assert(Target && "invoking an unlinked method handle");
    noteVirtualCall();
    return Target(std::forward<ArgTs>(Args)...);
  }

  /// Dispatch alone — the caller owns the Metric::Method accounting (used
  /// by fused pipeline interpreters that batch counter updates per index
  /// range; the totals are identical to per-element counting).
  RetT directCall(ArgTs... Args) const {
    assert(Target && "invoking an unlinked method handle");
    return Target(std::forward<ArgTs>(Args)...);
  }

  /// Convenience call syntax.
  RetT operator()(ArgTs... Args) const {
    return invoke(std::forward<ArgTs>(Args)...);
  }

private:
  SmallFn<RetT(ArgTs...)> Target;
  mutable std::atomic<bool> Simplified{false};
};

/// The call-site object behind one textual lambda-creation site.
///
/// Declare one site per lambda occurrence (typically \c static inside the
/// enclosing function) and call \c makeHandle with the bootstrap factory:
///
/// \code
///   static InvokeDynamicSite<int(int)> Site;
///   auto Doubler = Site.makeHandle([] { // bootstrap: runs once
///     return MethodHandle<int(int)>([](int X) { return 2 * X; });
///   });
/// \endcode
template <typename SigT> class InvokeDynamicSite {
public:
  /// Executes the invokedynamic: counts Metric::IDynamic, bootstraps the
  /// anonymous lambda "class" on first execution, and returns a handle
  /// bound to the linked target. Object allocation for the lambda instance
  /// is counted (lambdas capture state, i.e. allocate, on the JVM too).
  template <typename BootstrapT>
  MethodHandle<SigT> makeHandle(BootstrapT Bootstrap) {
    metrics::count(metrics::Metric::IDynamic);
    if (!Linked.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> Guard(BootstrapLock);
      if (!Linked.load(std::memory_order_relaxed)) {
        // Bootstrap: "spin the anonymous class" — run the factory once.
        // First-execution linkage is the cost JIT warmup pays per lambda
        // site, so the tracer records its duration.
        uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
        Cached = Bootstrap();
        if (TraceT0)
          trace::span(trace::EventKind::Bootstrap, "idynamic.bootstrap",
                      TraceT0, trace::nowNanos() - TraceT0,
                      trace::objectId(this));
        // Relaxed is enough: the write is serialized by BootstrapLock and
        // readers only need an untorn value (they may racily read it
        // without the lock, see bootstrapCount).
        BootstrapRuns.store(BootstrapRuns.load(std::memory_order_relaxed) + 1,
                            std::memory_order_relaxed);
        Linked.store(true, std::memory_order_release);
      }
    }
    noteObjectAlloc(); // The lambda instance produced per execution.
    return Cached;
  }

  /// Number of times the bootstrap method actually ran (for tests). Safe
  /// to call concurrently with racing first executions.
  unsigned bootstrapCount() const {
    return BootstrapRuns.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Linked{false};
  std::mutex BootstrapLock;
  MethodHandle<SigT> Cached;
  std::atomic<unsigned> BootstrapRuns{0};
};

/// Wraps an arbitrary callable as a lambda routed through a (function-local)
/// invokedynamic site, counting IDynamic once per call of this function.
/// Framework entry points that accept user lambdas use this to model the
/// lambda creation the equivalent Java code would perform.
template <typename SigT, typename FnT>
MethodHandle<SigT> bindLambda(FnT &&Fn) {
  metrics::count(metrics::Metric::IDynamic);
  noteObjectAlloc();
  return MethodHandle<SigT>(std::forward<FnT>(Fn));
}

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_METHODHANDLE_H
