//===- runtime/MethodHandle.h - invokedynamic analogue ----------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of the JVM's invokedynamic / method-handle machinery (JSR 292),
/// which underlies Java 8 lambdas (paper §5.4).
///
/// On the JVM, a lambda-creation site compiles to an \c invokedynamic
/// bytecode. Its first execution runs a *bootstrap method* that spins an
/// anonymous class and links the call site; every execution of the bytecode
/// then produces the lambda object, and invoking the lambda goes through
/// the method handle's polymorphic \c invoke. We model all three stages:
///
///  - \c InvokeDynamicSite — a static call-site object. \c makeHandle
///    counts Metric::IDynamic per execution and runs the bootstrap lambda
///    factory exactly once (first execution), caching the linkage.
///  - \c MethodHandle<Sig> — a polymorphic callable. \c invoke counts
///    Metric::Method (an invokevirtual-equivalent dispatch).
///
/// The streams, rx and futures frameworks route user lambdas through these
/// types, which is what makes Renaissance workloads idynamic-heavy (Fig 4)
/// and creates the method-handle-simplification opportunity.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RUNTIME_METHODHANDLE_H
#define REN_RUNTIME_METHODHANDLE_H

#include "metrics/Metrics.h"
#include "runtime/Alloc.h"
#include "trace/Trace.h"

#include <atomic>
#include <cassert>
#include <type_traits>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

namespace ren {
namespace runtime {

template <typename SigT> class MethodHandle;

/// A polymorphic method handle holding a target callable. Invocation is a
/// counted dynamic dispatch (the \c invoke on the JVM is polymorphic and
/// blocks inlining — exactly the cost MHS removes in the JIT experiments).
template <typename RetT, typename... ArgTs> class MethodHandle<RetT(ArgTs...)> {
public:
  MethodHandle() = default;

  /// Links a handle to \p Target. Constrained so that copying a
  /// MethodHandle never routes through this greedy forwarding constructor.
  template <typename FnT,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<FnT>, MethodHandle> &&
                std::is_invocable_r_v<RetT, FnT &, ArgTs...>>>
  explicit MethodHandle(FnT &&Target)
      : Target(std::make_shared<std::function<RetT(ArgTs...)>>(
            std::forward<FnT>(Target))) {}

  /// True if the handle is linked to a target.
  explicit operator bool() const { return Target != nullptr; }

  /// Polymorphic invocation; counts one dynamic dispatch.
  RetT invoke(ArgTs... Args) const {
    assert(Target && "invoking an unlinked method handle");
    noteVirtualCall();
    return (*Target)(std::forward<ArgTs>(Args)...);
  }

  /// Convenience call syntax.
  RetT operator()(ArgTs... Args) const {
    return invoke(std::forward<ArgTs>(Args)...);
  }

private:
  std::shared_ptr<std::function<RetT(ArgTs...)>> Target;
};

/// The call-site object behind one textual lambda-creation site.
///
/// Declare one site per lambda occurrence (typically \c static inside the
/// enclosing function) and call \c makeHandle with the bootstrap factory:
///
/// \code
///   static InvokeDynamicSite<int(int)> Site;
///   auto Doubler = Site.makeHandle([] { // bootstrap: runs once
///     return MethodHandle<int(int)>([](int X) { return 2 * X; });
///   });
/// \endcode
template <typename SigT> class InvokeDynamicSite {
public:
  /// Executes the invokedynamic: counts Metric::IDynamic, bootstraps the
  /// anonymous lambda "class" on first execution, and returns a handle
  /// bound to the linked target. Object allocation for the lambda instance
  /// is counted (lambdas capture state, i.e. allocate, on the JVM too).
  template <typename BootstrapT>
  MethodHandle<SigT> makeHandle(BootstrapT Bootstrap) {
    metrics::count(metrics::Metric::IDynamic);
    if (!Linked.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> Guard(BootstrapLock);
      if (!Linked.load(std::memory_order_relaxed)) {
        // Bootstrap: "spin the anonymous class" — run the factory once.
        // First-execution linkage is the cost JIT warmup pays per lambda
        // site, so the tracer records its duration.
        uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
        Cached = Bootstrap();
        if (TraceT0)
          trace::span(trace::EventKind::Bootstrap, "idynamic.bootstrap",
                      TraceT0, trace::nowNanos() - TraceT0,
                      trace::objectId(this));
        ++BootstrapRuns;
        Linked.store(true, std::memory_order_release);
      }
    }
    noteObjectAlloc(); // The lambda instance produced per execution.
    return Cached;
  }

  /// Number of times the bootstrap method actually ran (for tests).
  unsigned bootstrapCount() const { return BootstrapRuns; }

private:
  std::atomic<bool> Linked{false};
  std::mutex BootstrapLock;
  MethodHandle<SigT> Cached;
  unsigned BootstrapRuns = 0;
};

/// Wraps an arbitrary callable as a lambda routed through a (function-local)
/// invokedynamic site, counting IDynamic once per call of this function.
/// Framework entry points that accept user lambdas use this to model the
/// lambda creation the equivalent Java code would perform.
template <typename SigT, typename FnT>
MethodHandle<SigT> bindLambda(FnT &&Fn) {
  metrics::count(metrics::Metric::IDynamic);
  noteObjectAlloc();
  return MethodHandle<SigT>(std::forward<FnT>(Fn));
}

} // namespace runtime
} // namespace ren

#endif // REN_RUNTIME_METHODHANDLE_H
