//===- netsim/Poller.h - Readiness pollers for the reactor ------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The readiness interface of the netsim reactor. A shard's event loop
/// blocks in Poller::poll waiting for connections whose inbound frame
/// queue transitioned empty -> non-empty; producers deliver that edge with
/// Poller::notify. The interface is the seam that gives the reactor its
/// two personalities:
///
///  - ThreadPoller: the real multi-shard reactor. An MPSC queue of
///    intrusive readiness nodes plus a Parker for the shard thread;
///    producers are wait-free except one exchange, the consumer spins
///    briefly and then parks. The sleep/wake handshake is the classic
///    Dekker store-fence-load: the consumer publishes Sleeping and
///    re-drains behind a seq_cst fence, the producer pushes and reads
///    Sleeping behind one, so the store-buffering outcome (lost wakeup)
///    is excluded.
///
///  - SimPoller: the deterministic-simulation backbone. No threads, no
///    blocking: readiness is a plain vector the simulation driver pops
///    from in seeded-random order under virtual time. Everything that
///    runs on a ThreadPoller runs on a SimPoller with identical
///    per-connection semantics, which is what the differential tests
///    exploit.
///
//===----------------------------------------------------------------------===//

#ifndef REN_NETSIM_POLLER_H
#define REN_NETSIM_POLLER_H

#include "forkjoin/MpscQueue.h"
#include "runtime/Park.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace ren {
namespace netsim {

class Connection;

/// One readiness event: "this connection's inbound queue became
/// non-empty". Embedded in the Connection it describes, so arming a
/// connection never allocates. The edge-trigger dedup flag on the
/// Connection guarantees the node is enqueued at most once at a time.
struct ReadyNode : forkjoin::MpscNode {
  Connection *Conn = nullptr;
};

/// The readiness source a reactor shard's event loop runs on.
class Poller {
public:
  virtual ~Poller();

  /// Delivers a readiness edge. Thread-safe; called by whichever thread
  /// enqueued the frame that made the connection readable.
  virtual void notify(ReadyNode *N) = 0;

  /// Appends pending readiness events to \p Out, waiting up to
  /// \p WaitNanos for the first one: 0 polls without blocking, UINT64_MAX
  /// blocks until an event or shutdown, anything else is a timed wait
  /// (the shard's next-timer bound) that may legitimately append nothing.
  /// \returns false once the poller is shut down *and* drained — the
  /// event loop's exit condition (events queued before shutdown are
  /// still delivered, so no armed connection is ever stranded).
  virtual bool poll(std::vector<ReadyNode *> &Out,
                    uint64_t WaitNanos = UINT64_MAX) = 0;

  /// Initiates shutdown: poll stops blocking, drains what is queued, and
  /// then reports exhaustion.
  virtual void shutdown() = 0;
};

/// The real poller: one per reactor shard thread.
class ThreadPoller final : public Poller {
public:
  void notify(ReadyNode *N) override;
  bool poll(std::vector<ReadyNode *> &Out,
            uint64_t WaitNanos = UINT64_MAX) override;
  void shutdown() override;

private:
  /// Drains every currently-linked node into \p Out. \returns true if
  /// anything was appended.
  bool drain(std::vector<ReadyNode *> &Out);

  forkjoin::MpscQueue Events;
  std::atomic<bool> Sleeping{false};
  std::atomic<bool> ShuttingDown{false};
  /// The shard thread's parker, published on first poll so any producer
  /// can wake it.
  std::atomic<runtime::Parker *> Waiter{nullptr};
};

/// The deterministic poller: single-threaded, non-blocking. The sim
/// driver owns event ordering, so poll simply hands over everything
/// queued; no parking, no fences needed (the mode contract is that all
/// producers and the pump run on one thread).
class SimPoller final : public Poller {
public:
  void notify(ReadyNode *N) override { Ready.push_back(N); }

  bool poll(std::vector<ReadyNode *> &Out,
            uint64_t WaitNanos = UINT64_MAX) override {
    (void)WaitNanos; // never blocks: the sim driver owns time
    Out.insert(Out.end(), Ready.begin(), Ready.end());
    Ready.clear();
    return !Down;
  }

  void shutdown() override { Down = true; }

  bool idle() const { return Ready.empty(); }

private:
  std::vector<ReadyNode *> Ready;
  bool Down = false;
};

} // namespace netsim
} // namespace ren

#endif // REN_NETSIM_POLLER_H
