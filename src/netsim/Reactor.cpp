//===- netsim/Reactor.cpp -------------------------------------------------==//

#include "netsim/Reactor.h"

#include "metrics/Metrics.h"
#include "runtime/Alloc.h"
#include "support/Clock.h"

#include <cassert>

using namespace ren;
using namespace ren::netsim;

namespace {

/// A pending request deadline: heap-owned because the request may outlive
/// its frame (offloaded, or queued in sim). The timer holds a promise
/// copy and fires tryFailure unconditionally — lazy cancellation: a
/// completed request makes the failure a no-op, so nobody ever needs to
/// cancel across threads. Freed when fired or at reactor teardown.
struct DeadlineTimer {
  TimerNode Node;
  futures::Promise<Bytes> Reply;
};

/// Move-only owner of an offloaded frame while it sits in the executor.
/// ForkJoinPool's destructor releases never-run tasks without executing
/// them; without this guard their promises would hang forever instead of
/// failing. (futures::Promise does not fail on abandonment by design.)
class OffloadGuard {
public:
  explicit OffloadGuard(FrameNode *F) : Frame(F) {}
  OffloadGuard(OffloadGuard &&O) noexcept : Frame(O.Frame) {
    O.Frame = nullptr;
  }
  OffloadGuard(const OffloadGuard &) = delete;
  OffloadGuard &operator=(const OffloadGuard &) = delete;
  OffloadGuard &operator=(OffloadGuard &&) = delete;

  ~OffloadGuard() {
    if (Frame) {
      Frame->Reply.tryFailure("server destroyed");
      runtime::heap::destroy(Frame);
    }
  }

  FrameNode *release() {
    FrameNode *F = Frame;
    Frame = nullptr;
    return F;
  }

private:
  FrameNode *Frame;
};

} // namespace

//===----------------------------------------------------------------------===//
// Poller
//===----------------------------------------------------------------------===//

Poller::~Poller() = default;

bool ThreadPoller::drain(std::vector<ReadyNode *> &Out) {
  bool Any = false;
  while (auto *N = static_cast<ReadyNode *>(Events.pop())) {
    Out.push_back(N);
    Any = true;
  }
  return Any;
}

void ThreadPoller::notify(ReadyNode *N) {
  Events.push(N);
  // Dekker handshake against poll(): the push above vs our Sleeping read,
  // the consumer's Sleeping publish vs its re-drain. Both sides fence
  // seq_cst, so "consumer misses the node AND producer misses Sleeping"
  // (the lost-wakeup store-buffering outcome) cannot happen.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (Sleeping.load(std::memory_order_relaxed) &&
      Sleeping.exchange(false, std::memory_order_acq_rel))
    if (runtime::Parker *P = Waiter.load(std::memory_order_acquire))
      P->unpark();
}

void ThreadPoller::shutdown() {
  ShuttingDown.store(true, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (Sleeping.exchange(false, std::memory_order_acq_rel))
    if (runtime::Parker *P = Waiter.load(std::memory_order_acquire))
      P->unpark();
}

bool ThreadPoller::poll(std::vector<ReadyNode *> &Out, uint64_t WaitNanos) {
  if (!Waiter.load(std::memory_order_relaxed))
    Waiter.store(&runtime::currentParker(), std::memory_order_release);
  if (drain(Out))
    return true;
  if (ShuttingDown.load(std::memory_order_acquire)) {
    // Deliver anything that raced in with the shutdown flag; exhausted
    // only when a post-flag drain finds nothing.
    return drain(Out);
  }
  if (WaitNanos == 0)
    return true; // non-blocking probe: empty is a valid answer
  const uint64_t Deadline =
      WaitNanos == UINT64_MAX ? UINT64_MAX : wallNanos() + WaitNanos;
  for (;;) {
    // Brief spin: readiness edges usually arrive in bursts.
    for (int I = 0; I < 64; ++I) {
      if (drain(Out))
        return true;
      std::this_thread::yield();
    }
    Sleeping.store(true, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (drain(Out)) {
      Sleeping.store(false, std::memory_order_relaxed);
      return true;
    }
    if (ShuttingDown.load(std::memory_order_acquire)) {
      Sleeping.store(false, std::memory_order_relaxed);
      return drain(Out);
    }
    if (Deadline == UINT64_MAX) {
      runtime::currentParker().park(); // spurious returns are fine: we loop
    } else {
      uint64_t Now = wallNanos();
      if (Now >= Deadline) {
        Sleeping.store(false, std::memory_order_relaxed);
        drain(Out);
        return true; // timed out: the caller advances its timers
      }
      // parkFor is millisecond-grained; round up so we never spin on a
      // sub-millisecond remainder, and re-check the deadline on wake.
      uint64_t Millis = (Deadline - Now + 999999) / 1000000;
      runtime::currentParker().parkFor(Millis ? Millis : 1);
    }
    Sleeping.store(false, std::memory_order_relaxed);
    if (drain(Out))
      return true;
    if (ShuttingDown.load(std::memory_order_acquire))
      return drain(Out);
    if (Deadline != UINT64_MAX && wallNanos() >= Deadline)
      return true;
  }
}

//===----------------------------------------------------------------------===//
// Connection: producer side
//===----------------------------------------------------------------------===//

Connection::Connection(Reactor &Owner, unsigned ShardIndex, uint32_t ConnId)
    : Owner(Owner), ShardIndex(ShardIndex), ConnId(ConnId) {
  Node.Conn = this;
  IdleTimer.What = TimerNode::Kind::IdleCull;
  IdleTimer.Payload = this;
}

Connection::~Connection() = default;

void Connection::submit(FrameNode *Frame) {
  Inbound.push(Frame);
  // The push's exchange is the lock-free-queue CAS the JVM Finagle stack
  // performs per write; count it as the paper's atomic metric does.
  metrics::count(metrics::Metric::Atomic);
  // Edge-trigger: only the false->true arming edge posts an event. The
  // fence pairs with the shard's disarm/re-check (see drainBudgeted).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!Armed.exchange(true, std::memory_order_acq_rel))
    Owner.Shards[ShardIndex]->Events->notify(&Node);
}

futures::Future<Bytes> Connection::call(Bytes Request) {
  return call(std::move(Request), 0);
}

futures::Future<Bytes> Connection::call(Bytes Request,
                                        uint64_t DeadlineAfterNanos) {
  if (!ClientOpen.load(std::memory_order_acquire))
    return futures::Future<Bytes>::failed("connection closed");
  if (!ServerOpen.load(std::memory_order_acquire))
    return futures::Future<Bytes>::failed("connection idle timeout");
  auto *Frame = runtime::heap::create<FrameNode>();
  uint64_t Id = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  Frame->Wire.reserve(Request.size() + 8);
  for (int Shift = 0; Shift < 64; Shift += 8)
    Frame->Wire.push_back(static_cast<uint8_t>(Id >> Shift));
  Frame->Wire.insert(Frame->Wire.end(), Request.begin(), Request.end());
  runtime::noteObjectAlloc(); // the wire envelope
  futures::Future<Bytes> Fut = Frame->Reply.future();
  if (DeadlineAfterNanos != 0) {
    if (Owner.deterministic()) {
      // Single-threaded mode: arm the deadline in the shard's wheel at
      // call time, as Finagle's client stack does. Expiry is driven by
      // the virtual clock, so firing order is seed-stable.
      Frame->DeadlineNanos = Owner.SimNanos + DeadlineAfterNanos;
      auto *D = runtime::heap::create<DeadlineTimer>();
      D->Node.What = TimerNode::Kind::RequestDeadline;
      D->Node.Payload = D;
      D->Reply = Frame->Reply;
      Owner.Shards[ShardIndex]->Wheel->schedule(&D->Node,
                                                Frame->DeadlineNanos);
    } else {
      // Real mode: the producer cannot touch the shard-private wheel;
      // the shard enforces the stamp at dequeue (and arms a wheel timer
      // for offloaded frames, where expiry must fire asynchronously).
      Frame->DeadlineNanos = wallNanos() + DeadlineAfterNanos;
    }
  }
  submit(Frame);
  return Fut;
}

void Connection::close() {
  if (!ClientOpen.exchange(false, std::memory_order_acq_rel))
    return; // idempotent
  auto *Marker = runtime::heap::create<FrameNode>();
  Marker->FrameKind = FrameNode::Kind::CloseMarker;
  futures::Future<Bytes> Ack = Marker->Reply.future();
  submit(Marker);
  if (Owner.deterministic()) {
    // Single-threaded mode: pump the simulation inline until the shard
    // acks the drain. FIFO guarantees every earlier frame was processed.
    while (!Ack.isCompleted()) {
      size_t Processed = Owner.pump(1);
      assert(Processed > 0 && "close marker queued but pump found nothing");
      (void)Processed;
    }
  } else {
    Ack.await();
  }
}

//===----------------------------------------------------------------------===//
// Reactor
//===----------------------------------------------------------------------===//

Reactor::Reactor(Handler HandleFn, ReactorOptions Options)
    : Handle(std::move(HandleFn)), Opts(Options), SimRng(Options.Seed) {
  assert(Opts.Shards > 0 && "reactor needs at least one shard");
  if (Opts.DrainBudget == 0)
    Opts.DrainBudget = 1;
  const uint64_t Anchor = Opts.Deterministic ? 0 : wallNanos();
  Shards.reserve(Opts.Shards);
  for (unsigned I = 0; I < Opts.Shards; ++I) {
    auto S = std::make_unique<Shard>();
    if (Opts.Deterministic)
      S->Events = std::make_unique<SimPoller>();
    else
      S->Events = std::make_unique<ThreadPoller>();
    S->Wheel = std::make_unique<TimerWheel>(Anchor);
    S->NowNanos = Anchor;
    if (!Opts.Deterministic && Opts.OffloadHandlers)
      S->Exec = std::make_unique<forkjoin::ForkJoinPool>(
          Opts.OffloadThreads ? Opts.OffloadThreads : 1);
    Shards.push_back(std::move(S));
  }
  if (!Opts.Deterministic)
    for (auto &S : Shards)
      S->Loop = std::thread([this, Raw = S.get()] { shardLoop(*Raw); });
}

Reactor::~Reactor() {
  for (auto &S : Shards)
    S->Events->shutdown();
  for (auto &S : Shards)
    if (S->Loop.joinable())
      S->Loop.join();
  // Executors next: joining them completes (or, for never-run tasks, the
  // OffloadGuard fails) every offloaded frame before connection memory
  // can go away below.
  for (auto &S : Shards)
    S->Exec.reset();
  // Drain the wheels: deadline timers own heap nodes and promise copies.
  for (auto &S : Shards) {
    std::vector<TimerNode *> Left;
    S->Wheel->drainAll(Left);
    for (TimerNode *T : Left)
      if (T->What == TimerNode::Kind::RequestDeadline) {
        auto *D = static_cast<DeadlineTimer *>(T->Payload);
        D->Reply.tryFailure("server destroyed");
        runtime::heap::destroy(D);
      }
  }
  // Defensive sweep: a connection left open holds frames nobody will
  // process now (the contract is to close connections first; this keeps
  // the failure mode "futures fail" rather than "futures hang").
  auto SweepFrames = [](Connection &C) {
    while (auto *F = static_cast<FrameNode *>(C.Inbound.pop())) {
      F->Reply.tryFailure("server destroyed");
      runtime::heap::destroy(F);
    }
  };
  std::lock_guard<std::mutex> Guard(ConnLock);
  for (auto &Entry : Registry)
    SweepFrames(*Entry.second);
  for (auto &S : Shards)
    for (auto &C : S->Graveyard)
      SweepFrames(*C);
}

std::shared_ptr<Connection> Reactor::open() {
  unsigned ShardIndex =
      NextShard.fetch_add(1, std::memory_order_relaxed) % Shards.size();
  uint32_t Id = NextConnId.fetch_add(1, std::memory_order_relaxed);
  // Placement-construct on the substrate; the deleter mirrors HeapDelete
  // but stays here because the ctor is only visible to this friend.
  void *Mem = runtime::heap::allocate(sizeof(Connection));
  std::shared_ptr<Connection> C(::new (Mem) Connection(*this, ShardIndex, Id),
                                [](Connection *P) {
                                  P->~Connection();
                                  runtime::heap::deallocate(P);
                                });
  runtime::noteObjectAlloc();
  {
    std::lock_guard<std::mutex> Guard(ConnLock);
    Registry.emplace(Id, C);
  }
  if (Opts.IdleTimeoutNanos > 0) {
    // Announce the connection to its shard so the idle timer gets armed
    // (the wheel is shard-private; the announcement rides the normal
    // readiness path).
    auto *Reg = runtime::heap::create<FrameNode>();
    Reg->FrameKind = FrameNode::Kind::Register;
    C->submit(Reg);
  }
  return C;
}

uint64_t Reactor::requestsHandled() const {
  uint64_t Total = 0;
  for (const auto &S : Shards)
    Total += S->Handled.load(std::memory_order_relaxed);
  return Total;
}

size_t Reactor::connectionsLive() const {
  std::lock_guard<std::mutex> Guard(ConnLock);
  return Registry.size();
}

//===----------------------------------------------------------------------===//
// Shard event loop (real mode)
//===----------------------------------------------------------------------===//

void Reactor::shardLoop(Shard &S) {
  std::vector<ReadyNode *> Batch;
  std::deque<Connection *> Run;
  for (;;) {
    // Block only when the run queue is dry; otherwise probe. The wait is
    // bounded by the wheel so due timers fire even with no traffic.
    uint64_t Wait = 0;
    if (Run.empty())
      Wait = S.Wheel->nanosToNext(wallNanos());
    bool Alive = S.Events->poll(Batch, Wait);
    for (ReadyNode *N : Batch)
      Run.push_back(N->Conn);
    Batch.clear();

    S.NowNanos = wallNanos();
    advanceTimers(S);

    // One bounded pass over the batch: a connection that exhausts its
    // drain budget is requeued *behind* this pass, so every ready
    // connection gets shard time before any chatty one gets more.
    size_t Pass = Run.size();
    for (size_t I = 0; I < Pass; ++I) {
      Connection *C = Run.front();
      Run.pop_front();
      if (drainBudgeted(S, *C))
        Run.push_back(C);
    }

    sweepGraveyard(S);
    if (!Alive && Run.empty())
      break;
  }
}

bool Reactor::drainBudgeted(Shard &S, Connection &C) {
  unsigned Budget = Opts.DrainBudget;
  for (;;) {
    while (Budget > 0) {
      auto *Frame = static_cast<FrameNode *>(C.Inbound.pop());
      if (!Frame)
        break;
      --Budget;
      if (shouldOffload(S, C, Frame)) {
        dispatchOffload(S, C, Frame);
        // Parked: the connection stays armed and off every queue until
        // the executor's completion re-notifies the poller, which keeps
        // per-connection FIFO with exactly one offloaded frame in flight.
        return false;
      }
      processFrame(S, C, Frame);
    }
    if (Budget == 0 && C.Inbound.consumerMaybeNonEmpty())
      return true; // budget spent, frames left: requeue, stay armed
    // Disarm, then re-check behind a seq_cst fence (pairs with the
    // producer's push+arm fence): either we see the racing frame here,
    // or the producer saw our disarm and posted a fresh event. Paid once
    // per drained connection, not once per budget slice.
    C.Armed.store(false, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!C.Inbound.consumerMaybeNonEmpty())
      return false;
    // Frames raced in: try to reclaim the processing role. Losing the
    // exchange means a producer re-armed and re-notified; the poller
    // will redeliver, so we must not keep consuming.
    if (C.Armed.exchange(true, std::memory_order_acq_rel))
      return false;
    if (Budget == 0)
      return true; // reclaimed the role but out of budget: requeue
  }
}

//===----------------------------------------------------------------------===//
// Frame processing
//===----------------------------------------------------------------------===//

void Reactor::processFrame(Shard &S, Connection &C, FrameNode *Frame) {
  runtime::Ref<FrameNode> Owned(Frame); // frees into the substrate

  if (Frame->FrameKind == FrameNode::Kind::Register) {
    // Connection announcement: arm the idle timer. No reply, no request
    // accounting, no virtual-time charge.
    C.LastActivityNanos = S.NowNanos;
    if (Opts.IdleTimeoutNanos > 0 && !C.Retired && !C.IdleTimer.scheduled())
      S.Wheel->schedule(&C.IdleTimer, S.NowNanos + Opts.IdleTimeoutNanos);
    return;
  }

  if (Frame->FrameKind == FrameNode::Kind::CloseMarker) {
    C.PeerClosed = true;
    C.State = Connection::RxState::Idle;
    // Everything queued before the marker was already processed (FIFO),
    // so the demux table is empty unless a response path was abandoned.
    for (auto &Entry : C.Pending)
      Entry.second.tryFailure("connection closed");
    C.Pending.clear();
    Frame->Reply.trySuccess({}); // drain-complete ack
    retire(S, C);
    return;
  }

  if (C.PeerClosed) {
    // A call raced close(): the frame landed behind the marker, as on a
    // real socket that was already shut down.
    Frame->Reply.tryFailure("connection closed");
    return;
  }

  if (C.Culled) {
    // The server culled this connection for idleness before the frame
    // was drained; the write fails, as on a remotely-closed socket.
    Frame->Reply.tryFailure("connection idle timeout");
    return;
  }

  if (Opts.IdleTimeoutNanos > 0)
    C.LastActivityNanos = S.NowNanos;

  if (Frame->DeadlineNanos != 0) {
    // Expired while queued: fail without burning handler time.
    uint64_t Now = Opts.Deterministic ? SimNanos : wallNanos();
    if (Now >= Frame->DeadlineNanos) {
      Frame->Reply.tryFailure("request deadline exceeded");
      return;
    }
  }

  // --- the per-connection state machine ---
  // ReadHeader: peel the 8-byte request id off the envelope.
  assert(Frame->Wire.size() >= 8 && "malformed wire frame");
  uint64_t Id = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    Id |= static_cast<uint64_t>(Frame->Wire[Shift / 8]) << Shift;
  Bytes Payload(Frame->Wire.begin() + 8, Frame->Wire.end());

  // Register the demux entry, exactly as the client-side dispatcher
  // would on write: id -> promise.
  C.Pending.emplace(Id, Frame->Reply);

  // Dispatch the handler, sampling its latency into the offload EWMA
  // when an executor exists to act on it.
  C.State = Connection::RxState::Dispatching;
  const bool Measure = S.Exec && (C.FramesHandled & 7) == 0;
  uint64_t Started = Measure ? wallNanos() : 0;
  Bytes Response = Handle(Payload);
  if (Measure)
    foldEwma(C, wallNanos() - Started);

  // Encode the response envelope (id + body) — the bytes a server would
  // put back on the wire.
  C.State = Connection::RxState::Responding;
  Bytes ReplyWire;
  ReplyWire.reserve(Response.size() + 8);
  for (int Shift = 0; Shift < 64; Shift += 8)
    ReplyWire.push_back(static_cast<uint8_t>(Id >> Shift));
  ReplyWire.insert(ReplyWire.end(), Response.begin(), Response.end());
  runtime::noteObjectAlloc(); // the reply envelope

  // Demux: parse the envelope id back out and complete the matching
  // future. (The id *must* round-trip; the assert pins the codec.)
  uint64_t ReplyId = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    ReplyId |= static_cast<uint64_t>(ReplyWire[Shift / 8]) << Shift;
  assert(ReplyId == Id && "response demux id mismatch");
  auto It = C.Pending.find(ReplyId);
  assert(It != C.Pending.end() && "response for unregistered request");
  futures::Promise<Bytes> P = It->second;
  C.Pending.erase(It);
  Bytes Body(ReplyWire.begin() + 8, ReplyWire.end());
  // A response completed past its deadline is a failure, not a late
  // success (real mode; in sim the pre-check and wheel govern expiry).
  if (Frame->DeadlineNanos != 0 && !Opts.Deterministic &&
      wallNanos() >= Frame->DeadlineNanos)
    P.tryFailure("request deadline exceeded");
  else
    P.trySuccess(std::move(Body));

  C.State = Connection::RxState::Idle;
  ++C.FramesHandled;
  S.Handled.fetch_add(1, std::memory_order_relaxed);

  if (Opts.Deterministic)
    SimNanos += kSimFrameNanos + kSimByteNanos * Frame->Wire.size();
}

//===----------------------------------------------------------------------===//
// Handler offload (real mode)
//===----------------------------------------------------------------------===//

bool Reactor::shouldOffload(const Shard &S, const Connection &C,
                            const FrameNode *Frame) const {
  return S.Exec && Frame->FrameKind == FrameNode::Kind::Request &&
         !C.PeerClosed && !C.Culled &&
         C.EwmaNanos.load(std::memory_order_relaxed) >
             Opts.OffloadThresholdNanos;
}

void Reactor::dispatchOffload(Shard &S, Connection &C, FrameNode *Frame) {
  if (Opts.IdleTimeoutNanos > 0)
    C.LastActivityNanos = S.NowNanos;
  if (Frame->DeadlineNanos != 0) {
    // The shard owns the wheel, so the deadline must be armed here, not
    // on the executor thread. Lazy cancellation (see DeadlineTimer).
    auto *D = runtime::heap::create<DeadlineTimer>();
    D->Node.What = TimerNode::Kind::RequestDeadline;
    D->Node.Payload = D;
    D->Reply = Frame->Reply;
    S.Wheel->schedule(&D->Node, Frame->DeadlineNanos);
  }
  S.Exec->forkDetached(
      [this, &S, &C, G = OffloadGuard(Frame)]() mutable {
        if (FrameNode *F = G.release())
          runOffloaded(S, C, F);
      });
}

void Reactor::runOffloaded(Shard &S, Connection &C, FrameNode *Frame) {
  runtime::Ref<FrameNode> Owned(Frame);

  assert(Frame->Wire.size() >= 8 && "malformed wire frame");
  uint64_t Id = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    Id |= static_cast<uint64_t>(Frame->Wire[Shift / 8]) << Shift;
  Bytes Payload(Frame->Wire.begin() + 8, Frame->Wire.end());

  // The demux table is shard-private, so offloaded frames bypass it: the
  // promise travels in the frame and completes from this thread.
  uint64_t Started = wallNanos();
  Bytes Response = Handle(Payload);
  uint64_t Finished = wallNanos();
  foldEwma(C, Finished - Started);

  Bytes ReplyWire;
  ReplyWire.reserve(Response.size() + 8);
  for (int Shift = 0; Shift < 64; Shift += 8)
    ReplyWire.push_back(static_cast<uint8_t>(Id >> Shift));
  ReplyWire.insert(ReplyWire.end(), Response.begin(), Response.end());
  runtime::noteObjectAlloc(); // the reply envelope
  Bytes Body(ReplyWire.begin() + 8, ReplyWire.end());

  if (Frame->DeadlineNanos != 0 && Finished >= Frame->DeadlineNanos)
    Frame->Reply.tryFailure("request deadline exceeded");
  else
    Frame->Reply.trySuccess(std::move(Body));

  // FramesHandled is shard-private by convention; this write is ordered
  // against the shard's next access by the notify below (queue push /
  // poll pop is a release/acquire edge), and the shard cannot touch the
  // connection before that edge — it is parked on this very completion.
  ++C.FramesHandled;
  S.Handled.fetch_add(1, std::memory_order_relaxed);

  // Resume the parked connection: it stayed armed, so producers did not
  // re-notify; this is the exactly-once wakeup.
  S.Events->notify(&C.Node);
}

void Reactor::foldEwma(Connection &C, uint64_t SampleNanos) {
  uint64_t Prev = C.EwmaNanos.load(std::memory_order_relaxed);
  uint64_t Next = Prev == 0 ? SampleNanos : (7 * Prev + SampleNanos) / 8;
  C.EwmaNanos.store(Next, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Timers: idle culling and request deadlines
//===----------------------------------------------------------------------===//

void Reactor::advanceTimers(Shard &S) {
  S.FiredScratch.clear();
  S.Wheel->advanceTo(S.NowNanos, S.FiredScratch);
  for (TimerNode *T : S.FiredScratch)
    fireTimer(S, T);
}

void Reactor::fireTimer(Shard &S, TimerNode *T) {
  switch (T->What) {
  case TimerNode::Kind::IdleCull: {
    auto *C = static_cast<Connection *>(T->Payload);
    if (C->Retired)
      return; // embedded node; the connection is already on its way out
    uint64_t Due = C->LastActivityNanos + Opts.IdleTimeoutNanos;
    if (S.NowNanos < Due) {
      // Activity since the arm: push the timer out instead of tracking
      // every frame (the lazy-reschedule idiom all timeout wheels use).
      S.Wheel->schedule(T, Due);
      return;
    }
    cull(S, *C);
    return;
  }
  case TimerNode::Kind::RequestDeadline: {
    auto *D = static_cast<DeadlineTimer *>(T->Payload);
    D->Reply.tryFailure("request deadline exceeded");
    runtime::heap::destroy(D);
    return;
  }
  case TimerNode::Kind::None:
    return;
  }
}

void Reactor::cull(Shard &S, Connection &C) {
  C.Culled = true;
  // Fail-fast for future calls; frames already queued fail at drain.
  C.ServerOpen.store(false, std::memory_order_release);
  for (auto &Entry : C.Pending)
    Entry.second.tryFailure("connection idle timeout");
  C.Pending.clear();
  retire(S, C);
}

void Reactor::retire(Shard &S, Connection &C) {
  if (C.Retired)
    return;
  C.Retired = true;
  S.Wheel->cancel(&C.IdleTimer);
  std::lock_guard<std::mutex> Guard(ConnLock);
  auto It = Registry.find(C.id());
  if (It != Registry.end()) {
    S.Graveyard.push_back(std::move(It->second));
    Registry.erase(It);
  }
}

void Reactor::sweepGraveyard(Shard &S) {
  // Bounded slice per pass, resumed at the shard's cursor: during a mass
  // teardown the graveyard holds every closed-but-still-referenced
  // connection, and a full scan per round made N closes cost O(N^2) —
  // the 10^6-connection tier spent minutes in this loop. Entries the
  // slice skips are revisited on later rounds; anything still pinned at
  // reactor destruction is freed by the Shards vector itself.
  constexpr size_t kSweepSlice = 64;
  size_t Budget = std::min(S.Graveyard.size(), kSweepSlice);
  size_t I = S.SweepCursor < S.Graveyard.size() ? S.SweepCursor : 0;
  while (Budget-- > 0 && !S.Graveyard.empty()) {
    if (I >= S.Graveyard.size())
      I = 0;
    Connection &C = *S.Graveyard[I];
    // Free only when unreachable: ours is the last reference (no client
    // handle, so no new producer can appear) and the connection is
    // disarmed (not in the poller, not requeued, not parked on an
    // offload, and — because producers arm before notifying — no notify
    // is in flight either).
    if (S.Graveyard[I].use_count() == 1 &&
        !C.Armed.load(std::memory_order_acquire)) {
      while (auto *F = static_cast<FrameNode *>(C.Inbound.pop())) {
        F->Reply.tryFailure("connection closed");
        runtime::heap::destroy(F);
      }
      if (I + 1 != S.Graveyard.size())
        S.Graveyard[I] = std::move(S.Graveyard.back());
      S.Graveyard.pop_back();
    } else {
      ++I;
    }
  }
  S.SweepCursor = I;
}

//===----------------------------------------------------------------------===//
// Deterministic-simulation pump
//===----------------------------------------------------------------------===//

void Reactor::gatherSimReady() {
  std::vector<ReadyNode *> Batch;
  for (auto &S : Shards)
    S->Events->poll(Batch, 0);
  for (ReadyNode *N : Batch)
    SimReady.push_back(N->Conn);
}

bool Reactor::idle() const {
  assert(Opts.Deterministic && "idle() is a sim-mode query");
  if (!SimReady.empty())
    return false;
  for (const auto &S : Shards)
    if (!static_cast<SimPoller *>(S->Events.get())->idle())
      return false;
  return true;
}

size_t Reactor::pump(size_t MaxFrames) {
  assert(Opts.Deterministic &&
         "pump() drives deterministic reactors; real shards self-drive");
  auto FireDueTimers = [this] {
    for (auto &S : Shards) {
      S->NowNanos = SimNanos;
      advanceTimers(*S);
    }
  };
  size_t Processed = 0;
  while (Processed < MaxFrames) {
    // Virtual time advanced by the previous frame: fire what came due
    // before picking the next event, as a real shard round would.
    FireDueTimers();
    gatherSimReady();
    if (SimReady.empty())
      break;
    // Seeded event ordering: pick the next ready connection uniformly.
    // One frame per step keeps the exploration fine-grained; FIFO within
    // a connection is preserved by the queue itself.
    size_t Pick = SimRng.nextBounded(SimReady.size());
    Connection *C = SimReady[Pick];
    auto *Frame = static_cast<FrameNode *>(C->Inbound.pop());
    if (Frame) {
      Shard &S = *Shards[C->ShardIndex];
      S.NowNanos = SimNanos;
      processFrame(S, *C, Frame);
      ++Processed;
    }
    // Single-threaded: the disarm/re-check protocol degenerates to a
    // plain emptiness test.
    if (!C->Inbound.consumerMaybeNonEmpty()) {
      C->Armed.store(false, std::memory_order_relaxed);
      SimReady[Pick] = SimReady.back();
      SimReady.pop_back();
    }
  }
  FireDueTimers();
  for (auto &S : Shards)
    sweepGraveyard(*S);
  return Processed;
}

void Reactor::advanceVirtualTime(uint64_t Nanos) {
  assert(Opts.Deterministic &&
         "advanceVirtualTime drives the sim clock; real time advances itself");
  SimNanos += Nanos;
  for (auto &S : Shards) {
    S->NowNanos = SimNanos;
    advanceTimers(*S);
  }
  for (auto &S : Shards)
    sweepGraveyard(*S);
}
