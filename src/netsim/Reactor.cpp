//===- netsim/Reactor.cpp -------------------------------------------------==//

#include "netsim/Reactor.h"

#include "metrics/Metrics.h"
#include "runtime/Alloc.h"

#include <cassert>

using namespace ren;
using namespace ren::netsim;

//===----------------------------------------------------------------------===//
// Poller
//===----------------------------------------------------------------------===//

Poller::~Poller() = default;

bool ThreadPoller::drain(std::vector<ReadyNode *> &Out) {
  bool Any = false;
  while (auto *N = static_cast<ReadyNode *>(Events.pop())) {
    Out.push_back(N);
    Any = true;
  }
  return Any;
}

void ThreadPoller::notify(ReadyNode *N) {
  Events.push(N);
  // Dekker handshake against poll(): the push above vs our Sleeping read,
  // the consumer's Sleeping publish vs its re-drain. Both sides fence
  // seq_cst, so "consumer misses the node AND producer misses Sleeping"
  // (the lost-wakeup store-buffering outcome) cannot happen.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (Sleeping.load(std::memory_order_relaxed) &&
      Sleeping.exchange(false, std::memory_order_acq_rel))
    if (runtime::Parker *P = Waiter.load(std::memory_order_acquire))
      P->unpark();
}

void ThreadPoller::shutdown() {
  ShuttingDown.store(true, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (Sleeping.exchange(false, std::memory_order_acq_rel))
    if (runtime::Parker *P = Waiter.load(std::memory_order_acquire))
      P->unpark();
}

bool ThreadPoller::poll(std::vector<ReadyNode *> &Out) {
  if (!Waiter.load(std::memory_order_relaxed))
    Waiter.store(&runtime::currentParker(), std::memory_order_release);
  for (;;) {
    if (drain(Out))
      return true;
    if (ShuttingDown.load(std::memory_order_acquire)) {
      // Deliver anything that raced in with the shutdown flag; exhausted
      // only when a post-flag drain finds nothing.
      return drain(Out);
    }
    // Brief spin: readiness edges usually arrive in bursts.
    for (int I = 0; I < 64; ++I) {
      if (drain(Out))
        return true;
      std::this_thread::yield();
    }
    Sleeping.store(true, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (drain(Out)) {
      Sleeping.store(false, std::memory_order_relaxed);
      return true;
    }
    if (ShuttingDown.load(std::memory_order_acquire)) {
      Sleeping.store(false, std::memory_order_relaxed);
      return drain(Out);
    }
    runtime::currentParker().park(); // spurious returns are fine: we loop
    Sleeping.store(false, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// Connection: producer side
//===----------------------------------------------------------------------===//

Connection::Connection(Reactor &Owner, unsigned ShardIndex, uint32_t ConnId)
    : Owner(Owner), ShardIndex(ShardIndex), ConnId(ConnId) {
  Node.Conn = this;
}

Connection::~Connection() = default;

void Connection::submit(FrameNode *Frame) {
  Inbound.push(Frame);
  // The push's exchange is the lock-free-queue CAS the JVM Finagle stack
  // performs per write; count it as the paper's atomic metric does.
  metrics::count(metrics::Metric::Atomic);
  // Edge-trigger: only the false->true arming edge posts an event. The
  // fence pairs with the shard's disarm/re-check (see drainConnection).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!Armed.exchange(true, std::memory_order_acq_rel))
    Owner.Shards[ShardIndex]->Events->notify(&Node);
}

futures::Future<Bytes> Connection::call(Bytes Request) {
  if (!ClientOpen.load(std::memory_order_acquire))
    return futures::Future<Bytes>::failed("connection closed");
  auto *Frame = runtime::heap::create<FrameNode>();
  uint64_t Id = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  Frame->Wire.reserve(Request.size() + 8);
  for (int Shift = 0; Shift < 64; Shift += 8)
    Frame->Wire.push_back(static_cast<uint8_t>(Id >> Shift));
  Frame->Wire.insert(Frame->Wire.end(), Request.begin(), Request.end());
  runtime::noteObjectAlloc(); // the wire envelope
  futures::Future<Bytes> Fut = Frame->Reply.future();
  submit(Frame);
  return Fut;
}

void Connection::close() {
  if (!ClientOpen.exchange(false, std::memory_order_acq_rel))
    return; // idempotent
  auto *Marker = runtime::heap::create<FrameNode>();
  Marker->FrameKind = FrameNode::Kind::CloseMarker;
  futures::Future<Bytes> Ack = Marker->Reply.future();
  submit(Marker);
  if (Owner.deterministic()) {
    // Single-threaded mode: pump the simulation inline until the shard
    // acks the drain. FIFO guarantees every earlier frame was processed.
    while (!Ack.isCompleted()) {
      size_t Processed = Owner.pump(1);
      assert(Processed > 0 && "close marker queued but pump found nothing");
      (void)Processed;
    }
  } else {
    Ack.await();
  }
}

//===----------------------------------------------------------------------===//
// Reactor
//===----------------------------------------------------------------------===//

Reactor::Reactor(Handler HandleFn, ReactorOptions Options)
    : Handle(std::move(HandleFn)), Opts(Options), SimRng(Options.Seed) {
  assert(Opts.Shards > 0 && "reactor needs at least one shard");
  Shards.reserve(Opts.Shards);
  for (unsigned I = 0; I < Opts.Shards; ++I) {
    auto S = std::make_unique<Shard>();
    if (Opts.Deterministic)
      S->Events = std::make_unique<SimPoller>();
    else
      S->Events = std::make_unique<ThreadPoller>();
    Shards.push_back(std::move(S));
  }
  if (!Opts.Deterministic)
    for (auto &S : Shards)
      S->Loop = std::thread([this, Raw = S.get()] { shardLoop(*Raw); });
}

Reactor::~Reactor() {
  for (auto &S : Shards)
    S->Events->shutdown();
  for (auto &S : Shards)
    if (S->Loop.joinable())
      S->Loop.join();
  // Defensive sweep: a connection left open holds frames nobody will
  // process now (the contract is to close connections first; this keeps
  // the failure mode "futures fail" rather than "futures hang").
  std::lock_guard<std::mutex> Guard(ConnLock);
  for (auto &C : Conns)
    while (auto *F = static_cast<FrameNode *>(C->Inbound.pop())) {
      F->Reply.tryFailure("server destroyed");
      runtime::heap::destroy(F);
    }
}

std::shared_ptr<Connection> Reactor::open() {
  unsigned ShardIndex =
      NextShard.fetch_add(1, std::memory_order_relaxed) % Shards.size();
  uint32_t Id = NextConnId.fetch_add(1, std::memory_order_relaxed);
  // Placement-construct on the substrate; the deleter mirrors HeapDelete
  // but stays here because the ctor is only visible to this friend.
  void *Mem = runtime::heap::allocate(sizeof(Connection));
  std::shared_ptr<Connection> C(::new (Mem) Connection(*this, ShardIndex, Id),
                                [](Connection *P) {
                                  P->~Connection();
                                  runtime::heap::deallocate(P);
                                });
  runtime::noteObjectAlloc();
  std::lock_guard<std::mutex> Guard(ConnLock);
  Conns.push_back(C);
  return C;
}

uint64_t Reactor::requestsHandled() const {
  uint64_t Total = 0;
  for (const auto &S : Shards)
    Total += S->Handled.load(std::memory_order_relaxed);
  return Total;
}

void Reactor::shardLoop(Shard &S) {
  std::vector<ReadyNode *> Batch;
  while (S.Events->poll(Batch)) {
    for (ReadyNode *N : Batch)
      drainConnection(S, *N->Conn);
    Batch.clear();
  }
  // Shutdown path: poll delivered every event queued before the flag, so
  // each armed connection got one final drain above.
}

void Reactor::drainConnection(Shard &S, Connection &C) {
  for (;;) {
    while (auto *Frame = static_cast<FrameNode *>(C.Inbound.pop()))
      processFrame(S, C, Frame);
    // Disarm, then re-check behind a seq_cst fence (pairs with the
    // producer's push+arm fence): either we see the racing frame here,
    // or the producer saw our disarm and posted a fresh event.
    C.Armed.store(false, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!C.Inbound.consumerMaybeNonEmpty())
      return;
    // Frames raced in: try to reclaim the processing role. Losing the
    // exchange means a producer re-armed and re-notified; the poller
    // will redeliver, so we must not keep consuming.
    if (C.Armed.exchange(true, std::memory_order_acq_rel))
      return;
  }
}

void Reactor::processFrame(Shard &S, Connection &C, FrameNode *Frame) {
  runtime::Ref<FrameNode> Owned(Frame); // frees into the substrate

  if (Frame->FrameKind == FrameNode::Kind::CloseMarker) {
    C.PeerClosed = true;
    C.State = Connection::RxState::Idle;
    // Everything queued before the marker was already processed (FIFO),
    // so the demux table is empty unless a response path was abandoned.
    for (auto &[Id, P] : C.Pending)
      P.tryFailure("connection closed");
    C.Pending.clear();
    Frame->Reply.trySuccess({}); // drain-complete ack
    return;
  }

  if (C.PeerClosed) {
    // A call raced close(): the frame landed behind the marker, as on a
    // real socket that was already shut down.
    Frame->Reply.tryFailure("connection closed");
    return;
  }

  // --- the per-connection state machine ---
  // ReadHeader: peel the 8-byte request id off the envelope.
  assert(Frame->Wire.size() >= 8 && "malformed wire frame");
  uint64_t Id = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    Id |= static_cast<uint64_t>(Frame->Wire[Shift / 8]) << Shift;
  Bytes Payload(Frame->Wire.begin() + 8, Frame->Wire.end());

  // Register the demux entry, exactly as the client-side dispatcher
  // would on write: id -> promise.
  C.Pending.emplace(Id, Frame->Reply);

  // Dispatch the handler.
  C.State = Connection::RxState::Dispatching;
  Bytes Response = Handle(Payload);

  // Encode the response envelope (id + body) — the bytes a server would
  // put back on the wire.
  C.State = Connection::RxState::Responding;
  Bytes ReplyWire;
  ReplyWire.reserve(Response.size() + 8);
  for (int Shift = 0; Shift < 64; Shift += 8)
    ReplyWire.push_back(static_cast<uint8_t>(Id >> Shift));
  ReplyWire.insert(ReplyWire.end(), Response.begin(), Response.end());
  runtime::noteObjectAlloc(); // the reply envelope

  // Demux: parse the envelope id back out and complete the matching
  // future. (The id *must* round-trip; the assert pins the codec.)
  uint64_t ReplyId = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    ReplyId |= static_cast<uint64_t>(ReplyWire[Shift / 8]) << Shift;
  assert(ReplyId == Id && "response demux id mismatch");
  auto It = C.Pending.find(ReplyId);
  assert(It != C.Pending.end() && "response for unregistered request");
  futures::Promise<Bytes> P = It->second;
  C.Pending.erase(It);
  Bytes Body(ReplyWire.begin() + 8, ReplyWire.end());
  P.trySuccess(std::move(Body));

  C.State = Connection::RxState::Idle;
  ++C.FramesHandled;
  S.Handled.fetch_add(1, std::memory_order_relaxed);

  if (Opts.Deterministic)
    SimNanos += kSimFrameNanos + kSimByteNanos * Frame->Wire.size();
}

//===----------------------------------------------------------------------===//
// Deterministic-simulation pump
//===----------------------------------------------------------------------===//

void Reactor::gatherSimReady() {
  std::vector<ReadyNode *> Batch;
  for (auto &S : Shards)
    S->Events->poll(Batch);
  for (ReadyNode *N : Batch)
    SimReady.push_back(N->Conn);
}

bool Reactor::idle() const {
  assert(Opts.Deterministic && "idle() is a sim-mode query");
  if (!SimReady.empty())
    return false;
  for (const auto &S : Shards)
    if (!static_cast<SimPoller *>(S->Events.get())->idle())
      return false;
  return true;
}

size_t Reactor::pump(size_t MaxFrames) {
  assert(Opts.Deterministic &&
         "pump() drives deterministic reactors; real shards self-drive");
  size_t Processed = 0;
  while (Processed < MaxFrames) {
    gatherSimReady();
    if (SimReady.empty())
      break;
    // Seeded event ordering: pick the next ready connection uniformly.
    // One frame per step keeps the exploration fine-grained; FIFO within
    // a connection is preserved by the queue itself.
    size_t Pick = SimRng.nextBounded(SimReady.size());
    Connection *C = SimReady[Pick];
    auto *Frame = static_cast<FrameNode *>(C->Inbound.pop());
    if (Frame) {
      processFrame(*Shards[C->ShardIndex], *C, Frame);
      ++Processed;
    }
    // Single-threaded: the disarm/re-check protocol degenerates to a
    // plain emptiness test.
    if (!C->Inbound.consumerMaybeNonEmpty()) {
      C->Armed.store(false, std::memory_order_relaxed);
      SimReady[Pick] = SimReady.back();
      SimReady.pop_back();
    }
  }
  return Processed;
}
