//===- netsim/LoadGen.h - Open-loop load generator --------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An open-loop, coordinated-omission-safe load generator for the netsim
/// reactor, plus the log-linear latency histogram it records into.
///
/// Open-loop: every request has a *scheduled* send time fixed up front
/// (arrival index / arrival rate), independent of how fast the server
/// answers. Coordinated-omission safety follows from intended-time
/// accounting: recorded latency is completion minus the **scheduled**
/// time, never minus the actual send time — if the generator falls behind
/// (server stall backing up the in-flight window), the queueing delay the
/// late requests suffered is part of their latency, exactly as a real
/// user would experience it. A closed-loop harness that measures service
/// time only would silently drop that wait; the unit test in
/// tests/netsim/LoadGenTest.cpp pins the difference.
///
/// Reports surface p50/p99/p999/max latency and sustained requests/sec;
/// publishLoadReport exposes the last report process-globally so the
/// harness's NetLatencyPlugin can attach the numbers to benchmark
/// iterations without plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef REN_NETSIM_LOADGEN_H
#define REN_NETSIM_LOADGEN_H

#include "netsim/NetSim.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ren {
namespace netsim {

/// A fixed-footprint log-linear latency histogram (HdrHistogram in
/// miniature): power-of-two majors split into 32 linear minors, ~3% value
/// precision, lock-free relaxed-atomic buckets so completion callbacks on
/// different reactor shards never contend. Values are nanoseconds.
class LatencyHistogram {
public:
  /// Linear up to 32ns, then 32 minors per power of two; 64-bit range.
  static constexpr unsigned kBuckets = 1920;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram &Other) { copyFrom(Other); }
  LatencyHistogram &operator=(const LatencyHistogram &Other) {
    if (this != &Other)
      copyFrom(Other);
    return *this;
  }

  /// Records one value. Thread-safe, wait-free.
  void record(uint64_t Nanos);

  /// Total recorded samples.
  uint64_t count() const;

  /// Largest value recorded (exact, not bucket-rounded).
  uint64_t maxValue() const { return Max.load(std::memory_order_relaxed); }

  /// Value at quantile \p Q in [0, 1]: the upper edge of the bucket the
  /// quantile falls in (<= ~3% above the true value). Returns 0 when
  /// empty; Q >= 1 returns maxValue().
  uint64_t valueAtQuantile(double Q) const;

  void reset();

  /// Maps a value to its bucket (exposed for the unit tests).
  static unsigned bucketIndex(uint64_t V);
  /// Inclusive upper value edge of bucket \p Index.
  static uint64_t bucketUpperBound(unsigned Index);

private:
  void copyFrom(const LatencyHistogram &Other);

  std::atomic<uint64_t> Buckets[kBuckets] = {};
  std::atomic<uint64_t> Max{0};
};

/// Load generator parameters.
struct LoadGenOptions {
  /// Total requests to schedule.
  uint64_t Requests = 10000;
  /// Open-loop arrival rate; 0 means unpaced (each request's intended
  /// time is its actual send time — a throughput run, no CO concept).
  double RatePerSec = 0.0;
  /// Connections to spread requests over, round-robin.
  unsigned Connections = 1;
  /// In-flight window: sends stall while this many are outstanding
  /// (0 = unbounded). The stall time is charged to the waiting requests'
  /// latencies via intended-time accounting.
  unsigned MaxInFlight = 1024;
  /// Default request payload size (MakeRequest overrides).
  size_t PayloadBytes = 32;
  /// Per-request deadline (ns after send, 0 = none): requests that miss
  /// it resolve as failures ("request deadline exceeded") and count into
  /// Failed — the open-loop schedule never blocks on a stuck server.
  uint64_t DeadlineNanos = 0;
  /// Optional request factory, called with the request sequence number.
  std::function<Bytes(uint64_t)> MakeRequest;
  /// Optional response validator; successes it accepts count as Valid.
  std::function<bool(const Bytes &)> Validate;
  /// Keep per-request (scheduled, sent, done) samples in the report.
  bool KeepSamples = false;
};

/// One per-request sample (KeepSamples mode).
struct LoadSample {
  uint64_t ScheduledNs = 0; ///< intended send time
  uint64_t SentNs = 0;      ///< actual send time (>= scheduled when the
                            ///< generator fell behind)
  uint64_t DoneNs = 0;      ///< completion time
  bool Ok = false;

  uint64_t intendedLatency() const { return DoneNs - ScheduledNs; }
  uint64_t sendDelay() const { return SentNs - ScheduledNs; }
};

/// The outcome of one load-generator run.
struct LoadReport {
  std::string Service;
  uint64_t Sent = 0;
  uint64_t Completed = 0; ///< futures that resolved successfully
  uint64_t Failed = 0;    ///< futures that resolved with an error
  uint64_t Valid = 0;     ///< successes the Validate hook accepted
  uint64_t ElapsedNanos = 0;

  /// Intended-time latency distribution.
  uint64_t P50 = 0, P99 = 0, P999 = 0, MaxNanos = 0;
  /// Worst scheduler lag (actual send - scheduled send): how far the
  /// generator fell behind its open-loop schedule.
  uint64_t MaxSendDelayNanos = 0;

  LatencyHistogram Histogram;
  std::vector<LoadSample> Samples; ///< KeepSamples mode only

  double sustainedRps() const {
    return ElapsedNanos == 0
               ? 0.0
               : static_cast<double>(Completed) * 1e9 /
                     static_cast<double>(ElapsedNanos);
  }
};

/// Drives an open-loop request schedule against a (real-mode) Server.
class LoadGen {
public:
  LoadGen(Server &Target, LoadGenOptions Opts);

  /// Runs the full schedule on the calling thread and returns the
  /// report. Also publishes the report via publishLoadReport.
  LoadReport run();

  /// Aborts an in-progress run (thread-safe): the generator stops
  /// sending, closes its connections, and every already-sent request
  /// still resolves (response or failure) before run() returns.
  void stop();

private:
  Server &Target;
  LoadGenOptions Opts;
  std::atomic<bool> StopFlag{false};
};

/// Publishes \p R as the process-global last load report and bumps the
/// publication counter. Thread-safe.
void publishLoadReport(const LoadReport &R);

/// Monotonic publication counter (0 = never published).
uint64_t loadReportVersion();

/// Snapshot of the last published report (sample vector omitted).
LoadReport lastLoadReport();

} // namespace netsim
} // namespace ren

#endif // REN_NETSIM_LOADGEN_H
