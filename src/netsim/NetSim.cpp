//===- netsim/NetSim.cpp --------------------------------------------------==//

#include "netsim/NetSim.h"

#include "netsim/Reactor.h"
#include "runtime/Alloc.h"

#include <cassert>

using namespace ren;
using namespace ren::netsim;

//===----------------------------------------------------------------------===//
// ByteBuffer
//===----------------------------------------------------------------------===//

void ByteBuffer::writeU32(uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Data.push_back(static_cast<uint8_t>(V >> Shift));
}

void ByteBuffer::writeU64(uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Data.push_back(static_cast<uint8_t>(V >> Shift));
}

void ByteBuffer::writeString(const std::string &S) {
  writeU32(static_cast<uint32_t>(S.size()));
  Data.insert(Data.end(), S.begin(), S.end());
}

uint32_t ByteBuffer::readU32() {
  assert(remaining() >= 4 && "buffer underflow");
  uint32_t V = 0;
  for (int Shift = 0; Shift < 32; Shift += 8)
    V |= static_cast<uint32_t>(Data[ReadPos++]) << Shift;
  return V;
}

uint64_t ByteBuffer::readU64() {
  assert(remaining() >= 8 && "buffer underflow");
  uint64_t V = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    V |= static_cast<uint64_t>(Data[ReadPos++]) << Shift;
  return V;
}

std::string ByteBuffer::readString() {
  uint32_t Len = readU32();
  assert(remaining() >= Len && "buffer underflow");
  std::string S(Data.begin() + static_cast<ptrdiff_t>(ReadPos),
                Data.begin() + static_cast<ptrdiff_t>(ReadPos + Len));
  ReadPos += Len;
  return S;
}

//===----------------------------------------------------------------------===//
// Channel
//===----------------------------------------------------------------------===//

void Channel::send(Bytes Frame) {
  runtime::Synchronized Sync(Lock);
  // A peer may legitimately race a send against close; the frame is
  // dropped, as on a real closed socket.
  if (Closed)
    return;
  Frames.push_back(std::move(Frame));
  Lock.notifyAll();
}

bool Channel::recv(Bytes &FrameOut) {
  runtime::Synchronized Sync(Lock);
  Lock.waitUntil([this] { return !Frames.empty() || Closed; });
  if (Frames.empty())
    return false;
  FrameOut = std::move(Frames.front());
  Frames.pop_front();
  return true;
}

void Channel::close() {
  runtime::Synchronized Sync(Lock);
  Closed = true;
  Lock.notifyAll();
}

size_t Channel::pending() {
  runtime::Synchronized Sync(Lock);
  return Frames.size();
}

//===----------------------------------------------------------------------===//
// ClientConnection
//===----------------------------------------------------------------------===//

ClientConnection::ClientConnection(std::shared_ptr<Connection> C)
    : Conn(std::move(C)) {}

ClientConnection::~ClientConnection() { close(); }

futures::Future<Bytes> ClientConnection::call(Bytes Request) {
  return Conn->call(std::move(Request));
}

futures::Future<Bytes> ClientConnection::call(Bytes Request,
                                              uint64_t DeadlineAfterNanos) {
  return Conn->call(std::move(Request), DeadlineAfterNanos);
}

bool ClientConnection::isServerOpen() const { return Conn->isServerOpen(); }

void ClientConnection::close() { Conn->close(); }

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(std::string Name, Handler Handle, unsigned Shards)
    : Server(std::move(Name), std::move(Handle),
             ServerOptions{Shards, false, 0x5eedc0de}) {}

Server::Server(std::string ServiceName, Handler Handle, ServerOptions Opts)
    : Name(std::move(ServiceName)) {
  assert(Opts.Shards > 0 && "server needs at least one shard");
  ReactorOptions ROpts;
  ROpts.Shards = Opts.Shards;
  ROpts.Deterministic = Opts.Deterministic;
  ROpts.Seed = Opts.Seed;
  ROpts.DrainBudget = Opts.DrainBudget;
  ROpts.OffloadHandlers = Opts.OffloadHandlers;
  ROpts.OffloadThreads = Opts.OffloadThreads;
  ROpts.OffloadThresholdNanos = Opts.OffloadThresholdNanos;
  ROpts.IdleTimeoutNanos = Opts.IdleTimeoutNanos;
  Core = std::make_unique<Reactor>(std::move(Handle), ROpts);
}

Server::~Server() = default;

std::unique_ptr<ClientConnection> Server::connect() {
  return std::unique_ptr<ClientConnection>(
      new ClientConnection(Core->open()));
}

uint64_t Server::requestsHandled() { return Core->requestsHandled(); }

size_t Server::connectionsLive() const { return Core->connectionsLive(); }

unsigned Server::shards() const { return Core->shards(); }

bool Server::deterministic() const { return Core->deterministic(); }

size_t Server::pump(size_t MaxFrames) { return Core->pump(MaxFrames); }

size_t Server::runUntilIdle() { return Core->runUntilIdle(); }

uint64_t Server::virtualNanos() const { return Core->virtualNanos(); }

void Server::advanceVirtualTime(uint64_t Nanos) {
  Core->advanceVirtualTime(Nanos);
}

bool Server::idle() const { return Core->idle(); }
