//===- netsim/NetSim.cpp --------------------------------------------------==//

#include "netsim/NetSim.h"

#include "runtime/Alloc.h"

#include <cassert>

using namespace ren;
using namespace ren::netsim;

//===----------------------------------------------------------------------===//
// ByteBuffer
//===----------------------------------------------------------------------===//

void ByteBuffer::writeU32(uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Data.push_back(static_cast<uint8_t>(V >> Shift));
}

void ByteBuffer::writeU64(uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Data.push_back(static_cast<uint8_t>(V >> Shift));
}

void ByteBuffer::writeString(const std::string &S) {
  writeU32(static_cast<uint32_t>(S.size()));
  Data.insert(Data.end(), S.begin(), S.end());
}

uint32_t ByteBuffer::readU32() {
  assert(remaining() >= 4 && "buffer underflow");
  uint32_t V = 0;
  for (int Shift = 0; Shift < 32; Shift += 8)
    V |= static_cast<uint32_t>(Data[ReadPos++]) << Shift;
  return V;
}

uint64_t ByteBuffer::readU64() {
  assert(remaining() >= 8 && "buffer underflow");
  uint64_t V = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    V |= static_cast<uint64_t>(Data[ReadPos++]) << Shift;
  return V;
}

std::string ByteBuffer::readString() {
  uint32_t Len = readU32();
  assert(remaining() >= Len && "buffer underflow");
  std::string S(Data.begin() + static_cast<ptrdiff_t>(ReadPos),
                Data.begin() + static_cast<ptrdiff_t>(ReadPos + Len));
  ReadPos += Len;
  return S;
}

//===----------------------------------------------------------------------===//
// Channel
//===----------------------------------------------------------------------===//

void Channel::send(Bytes Frame) {
  runtime::Synchronized Sync(Lock);
  // A peer may legitimately race a send against close (e.g. a server
  // worker replying to a connection the client just tore down); the frame
  // is dropped, as on a real closed socket.
  if (Closed)
    return;
  Frames.push_back(std::move(Frame));
  Lock.notifyAll();
}

bool Channel::recv(Bytes &FrameOut) {
  runtime::Synchronized Sync(Lock);
  Lock.waitUntil([this] { return !Frames.empty() || Closed; });
  if (Frames.empty())
    return false;
  FrameOut = std::move(Frames.front());
  Frames.pop_front();
  return true;
}

void Channel::close() {
  runtime::Synchronized Sync(Lock);
  Closed = true;
  Lock.notifyAll();
}

size_t Channel::pending() {
  runtime::Synchronized Sync(Lock);
  return Frames.size();
}

//===----------------------------------------------------------------------===//
// ClientConnection
//===----------------------------------------------------------------------===//

ClientConnection::ClientConnection(std::shared_ptr<Channel> ToServer)
    : ToServer(std::move(ToServer)),
      FromServer(std::make_shared<Channel>()) {
  Pump = std::thread([this] { pumpLoop(); });
}

ClientConnection::~ClientConnection() { close(); }

void ClientConnection::close() {
  {
    runtime::Synchronized Sync(PendingLock);
    if (!Open)
      return;
    Open = false;
  }
  ToServer->close(); // stops the server-side splice for this connection
  FromServer->close();
  Pump.join();
  // Fail any still-outstanding requests.
  runtime::Synchronized Sync(PendingLock);
  for (auto &[Id, P] : Pending)
    P.tryFailure("connection closed");
  Pending.clear();
}

futures::Future<Bytes> ClientConnection::call(Bytes Request) {
  futures::Promise<Bytes> P;
  uint64_t Id;
  {
    runtime::Synchronized Sync(PendingLock);
    if (!Open)
      return futures::Future<Bytes>::failed("connection closed");
    Id = NextRequestId++;
    Pending.emplace(Id, P);
  }
  ByteBuffer Out;
  Out.writeU64(Id);
  Bytes Frame = Out.takeBytes();
  Frame.insert(Frame.end(), Request.begin(), Request.end());
  runtime::noteObjectAlloc(); // the wire envelope
  ToServer->send(std::move(Frame));
  return P.future();
}

void ClientConnection::pumpLoop() {
  Bytes Frame;
  while (FromServer->recv(Frame)) {
    ByteBuffer In(std::move(Frame));
    uint64_t Id = In.readU64();
    Bytes Payload = In.takeBytes();
    Payload.erase(Payload.begin(), Payload.begin() + 8);
    futures::Promise<Bytes> P;
    bool Found = false;
    {
      runtime::Synchronized Sync(PendingLock);
      auto It = Pending.find(Id);
      if (It != Pending.end()) {
        P = It->second;
        Pending.erase(It);
        Found = true;
      }
    }
    if (Found)
      P.trySuccess(std::move(Payload));
  }
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(std::string Name, Handler Handle, unsigned NumWorkers)
    : Name(std::move(Name)), Handle(std::move(Handle)) {
  assert(NumWorkers > 0 && "server needs at least one worker");
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

Server::~Server() {
  {
    runtime::Synchronized Sync(QueueLock);
    ShuttingDown = true;
    QueueLock.notifyAll();
  }
  for (auto &W : Workers)
    W.join();
  for (auto &S : Splices)
    S.join();
}

std::unique_ptr<ClientConnection> Server::connect() {
  auto ToServer = std::make_shared<Channel>();
  auto *Conn = new ClientConnection(ToServer);
  // Splice: a per-connection forwarding thread moves frames from the
  // connection's outbound channel into the shared request queue, tagging
  // them with the reply channel. It exits when the connection closes its
  // outbound channel; the server joins it at destruction (connections must
  // therefore be closed before their server is destroyed).
  std::thread Splice([this, ToServer, Reply = Conn->FromServer] {
    Bytes Frame;
    while (ToServer->recv(Frame)) {
      runtime::Synchronized Sync(QueueLock);
      Queue.push_back(WireRequest{Reply, std::move(Frame)});
      QueueLock.notifyAll();
    }
  });
  {
    runtime::Synchronized Sync(QueueLock);
    Splices.push_back(std::move(Splice));
  }
  return std::unique_ptr<ClientConnection>(Conn);
}

uint64_t Server::requestsHandled() {
  runtime::Synchronized Sync(QueueLock);
  return Handled;
}

void Server::workerLoop() {
  for (;;) {
    WireRequest Req;
    {
      runtime::Synchronized Sync(QueueLock);
      QueueLock.waitUntil(
          [this] { return !Queue.empty() || ShuttingDown; });
      if (Queue.empty())
        return;
      Req = std::move(Queue.front());
      Queue.pop_front();
    }
    ByteBuffer In(std::move(Req.Frame));
    uint64_t Id = In.readU64();
    Bytes Whole = In.takeBytes();
    Bytes Payload(Whole.begin() + 8, Whole.end());
    Bytes Response = Handle(Payload);
    ByteBuffer Out;
    Out.writeU64(Id);
    Bytes Reply = Out.takeBytes();
    Reply.insert(Reply.end(), Response.begin(), Response.end());
    Req.ReplyTo->send(std::move(Reply));
    {
      runtime::Synchronized Sync(QueueLock);
      ++Handled;
    }
  }
}
