//===- netsim/TimerWheel.h - Hashed hierarchical timer wheel ----*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reactor's timing subsystem: a hashed, hierarchical timer wheel in
/// the Varghese/Lauck tradition (the same shape as Netty's
/// HashedWheelTimer and the Linux kernel's timer cascade). Each reactor
/// shard owns one wheel and is its only driver, so schedule and cancel
/// are plain pointer surgery — O(1), no locks, no allocation (timers are
/// intrusive nodes embedded in the object they time, or owned by the
/// party that scheduled them).
///
/// Shape: kLevels levels of kSlots slots each. Level 0 slots are one tick
/// wide (kTickNanos, ~1 ms); each higher level's slots are kSlots times
/// wider than the level below, so four 64-slot levels cover ~17 minutes
/// at millisecond granularity — far beyond any idle timeout or request
/// deadline the reactor schedules. Timers land in the coarsest level
/// whose slot width still distinguishes their deadline; when the wheel's
/// clock crosses a higher-level slot boundary, that slot's timers cascade
/// down a level, and level-0 slots fire in tick order (FIFO within a
/// slot). Firing order is therefore a pure function of (deadlines,
/// insertion order) — which is what makes the deterministic-simulation
/// timer tests seed-stable: same seed, same insertion order, same firing
/// order.
///
/// The wheel never invokes callbacks itself: advanceTo() unlinks expired
/// timers into a caller-provided vector and the driver dispatches them.
/// That keeps the wheel free of ownership policy (the reactor fires
/// embedded idle timers and heap-owned deadline timers differently) and
/// makes the data structure directly unit-testable.
///
//===----------------------------------------------------------------------===//

#ifndef REN_NETSIM_TIMERWHEEL_H
#define REN_NETSIM_TIMERWHEEL_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ren {
namespace netsim {

/// One pending timer: an intrusive doubly-linked node. Embed it in the
/// timed object (idle timers) or heap-allocate it (request deadlines);
/// the wheel only links and unlinks. \c What distinguishes the firing
/// paths; \c Payload carries the timed object.
struct TimerNode {
  enum class Kind : uint8_t { None, IdleCull, RequestDeadline };

  uint64_t DeadlineNanos = 0;
  TimerNode *Prev = nullptr;
  TimerNode *Next = nullptr;
  Kind What = Kind::None;
  void *Payload = nullptr;

  /// True while linked into a wheel (schedule sets it, fire/cancel clear
  /// it). Single-driver discipline: only the owning shard reads or
  /// writes this.
  bool scheduled() const { return Prev != nullptr; }
};

/// A hashed hierarchical timer wheel. Single-threaded by contract: the
/// owning shard schedules, cancels and advances; nobody else touches it.
class TimerWheel {
public:
  static constexpr unsigned kSlotBits = 6;
  static constexpr unsigned kSlots = 1u << kSlotBits; // 64
  static constexpr unsigned kLevels = 4;
  /// Level-0 tick width: ~1.05 ms. Four levels cover kTickNanos * 64^4
  /// ~= 4.9 hours; deadlines beyond that clamp into the top level (they
  /// fire late, never early — and nothing in the reactor schedules that
  /// far out).
  static constexpr uint64_t kTickNanos = 1u << 20;

  /// \p StartNanos anchors tick 0 (the reactor passes its notion of
  /// "now" at construction so the first tick is never a huge jump).
  explicit TimerWheel(uint64_t StartNanos = 0);

  TimerWheel(const TimerWheel &) = delete;
  TimerWheel &operator=(const TimerWheel &) = delete;

  /// Links \p T to fire at \p DeadlineNanos (absolute, same clock as
  /// advanceTo). A deadline at or before the wheel's current time lands
  /// in the next advanceTo call. \p T must not already be scheduled.
  void schedule(TimerNode *T, uint64_t DeadlineNanos);

  /// Unlinks \p T if scheduled; no-op otherwise. O(1).
  void cancel(TimerNode *T);

  /// Advances the wheel's clock to \p NowNanos, cascading higher levels
  /// across slot boundaries, and appends every expired timer to \p Fired
  /// in firing order (tick order, FIFO within a slot). Expired timers
  /// are unlinked (scheduled() turns false) before they are handed back.
  void advanceTo(uint64_t NowNanos, std::vector<TimerNode *> &Fired);

  /// Unlinks every pending timer into \p Out (teardown sweep; order is
  /// slot order, not deadline order).
  void drainAll(std::vector<TimerNode *> &Out);

  /// Pending timer count.
  size_t pending() const { return Count; }

  /// Nanoseconds from \p NowNanos until the next timer could fire, or
  /// UINT64_MAX when the wheel is empty. Conservative: never later than
  /// the true next deadline (a higher-level hit reports its cascade
  /// boundary), so a driver sleeping this long can only wake early.
  uint64_t nanosToNext(uint64_t NowNanos) const;

  /// The wheel's current time in ticks (exposed for the unit tests).
  uint64_t nowTicks() const { return NowTick; }

private:
  struct Slot {
    TimerNode Head; ///< circular sentinel
  };

  void link(Slot &S, TimerNode *T);
  static void unlink(TimerNode *T);

  /// Picks the (level, slot) for \p DeadlineTick given the current tick.
  Slot &slotFor(uint64_t DeadlineTick);

  /// Re-files every timer in \p S (cascade step).
  void cascade(Slot &S);

  uint64_t StartNanos;
  uint64_t NowTick; ///< ticks elapsed since StartNanos
  size_t Count = 0;
  Slot Wheel[kLevels][kSlots];
};

} // namespace netsim
} // namespace ren

#endif // REN_NETSIM_TIMERWHEEL_H
