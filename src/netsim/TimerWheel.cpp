//===- netsim/TimerWheel.cpp - Hashed hierarchical timer wheel ------------===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//

#include "netsim/TimerWheel.h"

namespace ren {
namespace netsim {

namespace {

constexpr uint64_t kMask = TimerWheel::kSlots - 1;

/// Ticks covered by one slot of level L: 64^L.
constexpr uint64_t levelSpan(unsigned L) {
  return uint64_t(1) << (TimerWheel::kSlotBits * (L + 1));
}

} // namespace

TimerWheel::TimerWheel(uint64_t StartNanos)
    : StartNanos(StartNanos), NowTick(0) {
  for (unsigned L = 0; L < kLevels; ++L)
    for (unsigned I = 0; I < kSlots; ++I) {
      TimerNode &H = Wheel[L][I].Head;
      H.Prev = H.Next = &H;
    }
}

void TimerWheel::link(Slot &S, TimerNode *T) {
  TimerNode &H = S.Head;
  T->Prev = H.Prev;
  T->Next = &H;
  H.Prev->Next = T;
  H.Prev = T;
}

void TimerWheel::unlink(TimerNode *T) {
  T->Prev->Next = T->Next;
  T->Next->Prev = T->Prev;
  T->Prev = T->Next = nullptr;
}

TimerWheel::Slot &TimerWheel::slotFor(uint64_t DeadlineTick) {
  // Callers guarantee DeadlineTick >= NowTick. Delta picks the level:
  // the coarsest slots still distinguish the deadline from "now".
  uint64_t Delta = DeadlineTick - NowTick;
  if (Delta < levelSpan(0))
    return Wheel[0][DeadlineTick & kMask];
  if (Delta < levelSpan(1))
    return Wheel[1][(DeadlineTick >> kSlotBits) & kMask];
  if (Delta < levelSpan(2))
    return Wheel[2][(DeadlineTick >> (2 * kSlotBits)) & kMask];
  // Beyond the wheel horizon: clamp into the top level's farthest slot.
  // Such a timer fires late (after repeated cascades), never early.
  if (Delta >= levelSpan(3))
    DeadlineTick = NowTick + levelSpan(3) - 1;
  return Wheel[3][(DeadlineTick >> (3 * kSlotBits)) & kMask];
}

void TimerWheel::schedule(TimerNode *T, uint64_t DeadlineNanos) {
  assert(!T->scheduled() && "timer already pending");
  T->DeadlineNanos = DeadlineNanos;
  // Ceil to a tick so a timer never fires before its deadline; an
  // already-due deadline goes to the very next tick (the current tick's
  // slot has already fired).
  uint64_t Rel = DeadlineNanos > StartNanos ? DeadlineNanos - StartNanos : 0;
  uint64_t DeadlineTick = (Rel + kTickNanos - 1) / kTickNanos;
  if (DeadlineTick <= NowTick)
    DeadlineTick = NowTick + 1;
  link(slotFor(DeadlineTick), T);
  ++Count;
}

void TimerWheel::cancel(TimerNode *T) {
  if (!T->scheduled())
    return;
  unlink(T);
  --Count;
}

void TimerWheel::cascade(Slot &S) {
  // Re-file every timer one level down (or straight into the current
  // level-0 slot when already due — advanceTo fires that slot right
  // after cascading, so due timers still fire on this tick).
  TimerNode &H = S.Head;
  TimerNode *T = H.Next;
  H.Prev = H.Next = &H;
  while (T != &H) {
    TimerNode *Next = T->Next;
    uint64_t Rel =
        T->DeadlineNanos > StartNanos ? T->DeadlineNanos - StartNanos : 0;
    uint64_t DeadlineTick = (Rel + kTickNanos - 1) / kTickNanos;
    if (DeadlineTick < NowTick)
      DeadlineTick = NowTick;
    link(slotFor(DeadlineTick), T);
    T = Next;
  }
}

void TimerWheel::advanceTo(uint64_t NowNanos, std::vector<TimerNode *> &Fired) {
  uint64_t Rel = NowNanos > StartNanos ? NowNanos - StartNanos : 0;
  uint64_t TargetTick = Rel / kTickNanos;
  while (NowTick < TargetTick) {
    // Empty wheel: jump straight to the target instead of walking ticks
    // (a shard waking from a long park must not replay hours of ticks).
    if (Count == 0) {
      NowTick = TargetTick;
      return;
    }
    ++NowTick;
    // Crossing a coarser slot boundary pulls that slot's timers down a
    // level. Top level first so a timer can ripple through several
    // levels on the same tick.
    if ((NowTick & (levelSpan(2) - 1)) == 0)
      cascade(Wheel[3][(NowTick >> (3 * kSlotBits)) & kMask]);
    if ((NowTick & (levelSpan(1) - 1)) == 0)
      cascade(Wheel[2][(NowTick >> (2 * kSlotBits)) & kMask]);
    if ((NowTick & (levelSpan(0) - 1)) == 0)
      cascade(Wheel[1][(NowTick >> kSlotBits) & kMask]);
    TimerNode &H = Wheel[0][NowTick & kMask].Head;
    TimerNode *T = H.Next;
    H.Prev = H.Next = &H;
    while (T != &H) {
      TimerNode *Next = T->Next;
      T->Prev = T->Next = nullptr;
      --Count;
      Fired.push_back(T);
      T = Next;
    }
  }
}

void TimerWheel::drainAll(std::vector<TimerNode *> &Out) {
  for (unsigned L = 0; L < kLevels; ++L)
    for (unsigned I = 0; I < kSlots; ++I) {
      TimerNode &H = Wheel[L][I].Head;
      TimerNode *T = H.Next;
      H.Prev = H.Next = &H;
      while (T != &H) {
        TimerNode *Next = T->Next;
        T->Prev = T->Next = nullptr;
        --Count;
        Out.push_back(T);
        T = Next;
      }
    }
}

uint64_t TimerWheel::nanosToNext(uint64_t NowNanos) const {
  if (Count == 0)
    return UINT64_MAX;
  // Scan the level-0 window for the nearest armed slot. Delta starts at
  // 1: the current tick's slot already fired.
  for (uint64_t Delta = 1; Delta < kSlots; ++Delta) {
    uint64_t Tick = NowTick + Delta;
    const TimerNode &H = Wheel[0][Tick & kMask].Head;
    if (H.Next != &H) {
      uint64_t FireNanos = StartNanos + Tick * kTickNanos;
      return FireNanos > NowNanos ? FireNanos - NowNanos : 0;
    }
  }
  // Everything pending sits above level 0; nothing can fire before the
  // next level-1 cascade boundary. Waking there is conservative (maybe
  // early, never late).
  uint64_t Boundary = (NowTick | (levelSpan(0) - 1)) + 1;
  uint64_t FireNanos = StartNanos + Boundary * kTickNanos;
  return FireNanos > NowNanos ? FireNanos - NowNanos : 0;
}

} // namespace netsim
} // namespace ren
