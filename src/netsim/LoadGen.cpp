//===- netsim/LoadGen.cpp -------------------------------------------------==//

#include "netsim/LoadGen.h"

#include "runtime/Monitor.h"
#include "support/Clock.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

using namespace ren;
using namespace ren::netsim;

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

unsigned LatencyHistogram::bucketIndex(uint64_t V) {
  if (V < 32)
    return static_cast<unsigned>(V);
  unsigned Bits = 64 - static_cast<unsigned>(__builtin_clzll(V));
  unsigned Exp = Bits - 6;
  unsigned Sub = static_cast<unsigned>(V >> Exp); // in [32, 64)
  return Exp * 32 + Sub;
}

uint64_t LatencyHistogram::bucketUpperBound(unsigned Index) {
  assert(Index < kBuckets && "bucket out of range");
  if (Index < 32)
    return Index;
  unsigned Exp = Index / 32 - 1;
  uint64_t Sub = Index - static_cast<uint64_t>(Exp) * 32; // in [32, 64)
  return ((Sub + 1) << Exp) - 1;
}

void LatencyHistogram::record(uint64_t Nanos) {
  Buckets[bucketIndex(Nanos)].fetch_add(1, std::memory_order_relaxed);
  uint64_t Seen = Max.load(std::memory_order_relaxed);
  while (Seen < Nanos &&
         !Max.compare_exchange_weak(Seen, Nanos, std::memory_order_relaxed))
    ;
}

uint64_t LatencyHistogram::count() const {
  uint64_t Total = 0;
  for (const auto &B : Buckets)
    Total += B.load(std::memory_order_relaxed);
  return Total;
}

uint64_t LatencyHistogram::valueAtQuantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  if (Q >= 1.0)
    return maxValue();
  if (Q < 0.0)
    Q = 0.0;
  // 1-based rank of the sample at quantile Q.
  uint64_t Target = static_cast<uint64_t>(Q * static_cast<double>(Total)) + 1;
  Target = std::min(Target, Total);
  uint64_t Cum = 0;
  for (unsigned I = 0; I < kBuckets; ++I) {
    Cum += Buckets[I].load(std::memory_order_relaxed);
    if (Cum >= Target)
      return std::min(bucketUpperBound(I), maxValue());
  }
  return maxValue();
}

void LatencyHistogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::copyFrom(const LatencyHistogram &Other) {
  for (unsigned I = 0; I < kBuckets; ++I)
    Buckets[I].store(Other.Buckets[I].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  Max.store(Other.Max.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// LoadGen
//===----------------------------------------------------------------------===//

namespace {

/// State shared between the generator thread and the completion callbacks
/// running on reactor shards. Heap-held via shared_ptr so a callback that
/// fires as run() is unwinding never dangles.
struct RunState {
  runtime::Monitor Window;
  std::atomic<uint64_t> InFlight{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Failed{0};
  std::atomic<uint64_t> Valid{0};
  LatencyHistogram Hist;
  bool KeepSamples = false;
  std::vector<LoadSample> Samples;
  std::function<bool(const Bytes &)> Validate;
};

Bytes defaultRequest(uint64_t Seq, size_t PayloadBytes) {
  Bytes Req(std::max<size_t>(PayloadBytes, 8), 0);
  for (int Shift = 0; Shift < 64; Shift += 8)
    Req[static_cast<size_t>(Shift / 8)] =
        static_cast<uint8_t>(Seq >> Shift);
  return Req;
}

} // namespace

// Out-of-line shared state handle: declared here rather than in the header
// so LoadGen.h stays free of the RunState type.
namespace {
std::mutex ActiveLock;
std::weak_ptr<RunState> *activeSlot(const LoadGen *G) {
  // One slot per generator address; generators are few and short-lived, a
  // tiny leaky map keeps the header clean.
  static std::mutex MapLock;
  static std::unordered_map<const LoadGen *, std::weak_ptr<RunState>> Map;
  std::lock_guard<std::mutex> Guard(MapLock);
  return &Map[G];
}
} // namespace

LoadGen::LoadGen(Server &Target, LoadGenOptions Opts)
    : Target(Target), Opts(std::move(Opts)) {
  assert(this->Opts.Connections > 0 && "need at least one connection");
}

void LoadGen::stop() {
  StopFlag.store(true, std::memory_order_release);
  std::shared_ptr<RunState> S;
  {
    std::lock_guard<std::mutex> Guard(ActiveLock);
    S = activeSlot(this)->lock();
  }
  if (S) {
    runtime::Synchronized Sync(S->Window);
    S->Window.notifyAll();
  }
}

LoadReport LoadGen::run() {
  assert(!Target.deterministic() &&
         "LoadGen drives real-mode servers; deterministic servers are "
         "pumped explicitly");
  auto S = std::make_shared<RunState>();
  S->KeepSamples = Opts.KeepSamples;
  S->Validate = Opts.Validate;
  if (S->KeepSamples)
    S->Samples.resize(Opts.Requests);
  {
    std::lock_guard<std::mutex> Guard(ActiveLock);
    *activeSlot(this) = S;
  }

  std::vector<std::unique_ptr<ClientConnection>> Conns;
  Conns.reserve(Opts.Connections);
  for (unsigned I = 0; I < Opts.Connections; ++I)
    Conns.push_back(Target.connect());

  const double IntervalNs =
      Opts.RatePerSec > 0.0 ? 1e9 / Opts.RatePerSec : 0.0;
  const uint64_t Start = wallNanos();
  uint64_t SentCount = 0;
  uint64_t MaxSendDelay = 0;

  for (uint64_t Seq = 0; Seq < Opts.Requests; ++Seq) {
    if (StopFlag.load(std::memory_order_acquire))
      break;

    // The intended send time is fixed by the open-loop schedule alone.
    uint64_t Scheduled =
        IntervalNs > 0.0
            ? Start + static_cast<uint64_t>(
                          static_cast<double>(Seq) * IntervalNs)
            : 0;

    // Pace to the schedule (sleep coarse, spin fine).
    if (IntervalNs > 0.0) {
      for (;;) {
        uint64_t Now = wallNanos();
        if (Now >= Scheduled)
          break;
        uint64_t Wait = Scheduled - Now;
        if (Wait > 200000)
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(Wait - 100000));
        else
          std::this_thread::yield();
      }
    }

    // In-flight window. Crucially this wait happens *after* Scheduled is
    // fixed: time spent stalled here (a backed-up server) lands in the
    // stalled requests' recorded latencies.
    if (Opts.MaxInFlight > 0) {
      runtime::Synchronized Sync(S->Window);
      S->Window.waitUntil([&] {
        return S->InFlight.load(std::memory_order_acquire) <
                   Opts.MaxInFlight ||
               StopFlag.load(std::memory_order_acquire);
      });
      if (StopFlag.load(std::memory_order_acquire))
        break;
    }

    uint64_t Sent = wallNanos();
    if (IntervalNs == 0.0)
      Scheduled = Sent; // unpaced: intended == actual
    MaxSendDelay = std::max(MaxSendDelay, Sent - Scheduled);

    Bytes Req = Opts.MakeRequest ? Opts.MakeRequest(Seq)
                                 : defaultRequest(Seq, Opts.PayloadBytes);

    S->InFlight.fetch_add(1, std::memory_order_relaxed);
    futures::Future<Bytes> Fut =
        Conns[static_cast<size_t>(Seq % Conns.size())]->call(
            std::move(Req), Opts.DeadlineNanos);
    ++SentCount;

    Fut.onComplete(
        futures::InlineExecutor::get(),
        [S, Seq, Scheduled, Sent](const futures::Try<Bytes> &R) {
          uint64_t Done = wallNanos();
          // Intended-time accounting: latency runs from the *scheduled*
          // send, so queueing delay behind a stall is never omitted.
          S->Hist.record(Done - Scheduled);
          if (R.isSuccess()) {
            S->Completed.fetch_add(1, std::memory_order_relaxed);
            if (!S->Validate || S->Validate(R.value()))
              S->Valid.fetch_add(1, std::memory_order_relaxed);
          } else {
            S->Failed.fetch_add(1, std::memory_order_relaxed);
          }
          if (S->KeepSamples)
            S->Samples[Seq] = {Scheduled, Sent, Done, R.isSuccess()};
          S->InFlight.fetch_sub(1, std::memory_order_release);
          runtime::Synchronized Sync(S->Window);
          S->Window.notifyAll();
        });
  }

  // A stopped run flushes by closing: drain-before-close resolves every
  // already-sent request (response or failure) before close() returns.
  if (StopFlag.load(std::memory_order_acquire))
    for (auto &C : Conns)
      C->close();

  {
    runtime::Synchronized Sync(S->Window);
    S->Window.waitUntil(
        [&] { return S->InFlight.load(std::memory_order_acquire) == 0; });
  }
  uint64_t End = wallNanos();

  for (auto &C : Conns)
    C->close();
  Conns.clear();

  LoadReport Report;
  Report.Service = Target.name();
  Report.Sent = SentCount;
  Report.Completed = S->Completed.load(std::memory_order_relaxed);
  Report.Failed = S->Failed.load(std::memory_order_relaxed);
  Report.Valid = S->Valid.load(std::memory_order_relaxed);
  Report.ElapsedNanos = End - Start;
  Report.Histogram = S->Hist;
  Report.P50 = S->Hist.valueAtQuantile(0.50);
  Report.P99 = S->Hist.valueAtQuantile(0.99);
  Report.P999 = S->Hist.valueAtQuantile(0.999);
  Report.MaxNanos = S->Hist.maxValue();
  Report.MaxSendDelayNanos = MaxSendDelay;
  if (S->KeepSamples) {
    // Drop slots never sent (stopped run): an unsent slot has DoneNs == 0.
    S->Samples.erase(std::remove_if(S->Samples.begin(), S->Samples.end(),
                                    [](const LoadSample &Smp) {
                                      return Smp.DoneNs == 0;
                                    }),
                     S->Samples.end());
    Report.Samples = std::move(S->Samples);
  }

  {
    std::lock_guard<std::mutex> Guard(ActiveLock);
    activeSlot(this)->reset();
  }
  publishLoadReport(Report);
  return Report;
}

//===----------------------------------------------------------------------===//
// Process-global report slot
//===----------------------------------------------------------------------===//

namespace {
std::mutex ReportLock;
std::atomic<uint64_t> ReportVersion{0};

LoadReport &reportSlot() {
  static LoadReport Slot;
  return Slot;
}
} // namespace

void ren::netsim::publishLoadReport(const LoadReport &R) {
  {
    std::lock_guard<std::mutex> Guard(ReportLock);
    LoadReport Copy = R;
    Copy.Samples.clear();
    reportSlot() = std::move(Copy);
  }
  ReportVersion.fetch_add(1, std::memory_order_release);
}

uint64_t ren::netsim::loadReportVersion() {
  return ReportVersion.load(std::memory_order_acquire);
}

LoadReport ren::netsim::lastLoadReport() {
  std::lock_guard<std::mutex> Guard(ReportLock);
  return reportSlot();
}
