//===- netsim/Reactor.h - Event-driven loopback reactor ---------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The readiness-driven core of the loopback network. Where the original
/// netsim spent one pump thread and one splice thread per connection, the
/// reactor runs a small fixed number of *shards*, each an event loop over
/// a Poller. A connection is a passive state machine: client threads push
/// wire frames onto its lock-free MPSC inbound queue (forkjoin/MpscQueue)
/// and deliver an edge-triggered readiness event; the owning shard drains
/// the queue in FIFO order, runs the request through the server handler,
/// and demuxes the response envelope back onto the future that the call
/// registered — no per-connection thread anywhere, so tens of thousands
/// of concurrent connections cost tens of megabytes, not tens of
/// thousands of stacks.
///
/// Edge-trigger protocol (per connection): a producer that pushes a frame
/// arms the connection with one exchange; only the false->true edge
/// enqueues a readiness node, so a flood of producers costs one poller
/// event. The shard disarms *before* its final emptiness re-check (with a
/// seq_cst fence against the producer's push+arm sequence), so a frame
/// that races the disarm is either seen by the re-check or re-arms and
/// re-notifies — never stranded.
///
/// Three mechanisms carry the reactor from the 10^4-connection regime
/// toward 10^5-10^6:
///
///  - *Budgeted batch draining*: a shard drains at most
///    ReactorOptions::DrainBudget frames per connection per round, then
///    requeues the connection behind the rest of the round's batch — one
///    chatty connection cannot starve the other 10^5 on its shard. A
///    requeued connection stays armed, so the seq_cst disarm/re-check
///    fence pair is paid once per *drained* connection, not once per
///    budget slice.
///
///  - *Handler offload*: each shard owns a small ForkJoinPool executor
///    seam. Handlers stay inline while cheap; when a connection's
///    per-connection latency EWMA crosses OffloadThresholdNanos, its
///    requests are dispatched to the executor and the connection is
///    parked (stays armed, not requeued) until the completion re-notifies
///    the poller — a slow tenant head-of-line-blocks only itself, never
///    its shard. FIFO per connection is preserved because at most one
///    offloaded frame is in flight and the queue is not touched behind
///    it. Offload is a no-op in deterministic mode (byte-identical sim).
///
///  - *Timer-wheel timeouts and culling*: each shard owns a hashed
///    hierarchical TimerWheel (O(1) schedule/cancel) advanced every poll
///    round — by the wall clock in real mode, by the virtual clock in sim
///    mode. It drives connection idle timeouts (idle connections are
///    *culled*: server-side closed, failed fast, and their memory
///    reclaimed once the client lets go) and request deadlines (surfaced
///    as failed futures). Culling is what keeps 10^5-10^6 mostly-idle
///    connections from pinning memory for the lifetime of the reactor.
///
/// Deterministic-simulation mode: constructed with
/// ReactorOptions::Deterministic, the reactor spawns no threads and runs
/// on SimPollers. A single driving thread issues calls and then pumps the
/// reactor explicitly; the pump picks the next ready connection with a
/// seeded RNG (exploring cross-connection orderings) while preserving
/// per-connection FIFO, and advances a virtual clock per frame. Timer
/// wheels run on the virtual clock, so timeout firing order is a pure
/// function of the seed and the schedule. Same seed, same schedule, same
/// virtual time — the proof substrate the differential and regression
/// tests in tests/netsim build on.
///
//===----------------------------------------------------------------------===//

#ifndef REN_NETSIM_REACTOR_H
#define REN_NETSIM_REACTOR_H

#include "forkjoin/ForkJoinPool.h"
#include "forkjoin/MpscQueue.h"
#include "futures/Future.h"
#include "netsim/Poller.h"
#include "netsim/TimerWheel.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ren {
namespace netsim {

/// A wire frame (defined here as well as NetSim.h so the two headers do
/// not depend on each other's larger halves).
using Bytes = std::vector<uint8_t>;

/// Handles one request payload and produces a response payload. With
/// handler offload enabled (the real-mode default), a handler may run on
/// an executor thread concurrently with other connections' handlers —
/// handlers that mutate shared state must synchronize, exactly as Finagle
/// service functions must.
using Handler = std::function<Bytes(const Bytes &)>;

class Reactor;

/// A queued wire frame: an intrusive MPSC node carrying the id-prefixed
/// envelope plus the promise the response demuxes onto (for close
/// markers, the promise acks that the drain finished). Owned by the queue
/// from push until the shard processes and frees it.
struct FrameNode : forkjoin::MpscNode {
  enum class Kind : uint8_t {
    Request,
    CloseMarker,
    /// Announces a new connection to its shard so the shard can schedule
    /// the idle timer. Only submitted when idle timeouts are enabled;
    /// carries no payload, expects no reply, advances no clock.
    Register,
  };
  Kind FrameKind = Kind::Request;
  /// Absolute deadline for Request frames (0 = none): the future fails
  /// with "request deadline exceeded" instead of completing late.
  uint64_t DeadlineNanos = 0;
  Bytes Wire;
  futures::Promise<Bytes> Reply;
};

/// One client<->server connection: a passive state machine owned by a
/// reactor shard. Thread-safe on the producer side (call/close may come
/// from any thread; in deterministic mode, from the single driving
/// thread); all Rx state below the marked line is touched only by the
/// owning shard.
class Connection {
public:
  ~Connection();

  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  /// Sends \p Request and returns a future response. After close() the
  /// call fails fast; a call racing close() may be failed by the shard
  /// with the same "connection closed" error. After an idle cull the
  /// call fails fast with "connection idle timeout".
  futures::Future<Bytes> call(Bytes Request);

  /// Like call(), but the response future fails with "request deadline
  /// exceeded" unless it completes within \p DeadlineAfterNanos
  /// (relative to now; virtual time in deterministic mode).
  futures::Future<Bytes> call(Bytes Request, uint64_t DeadlineAfterNanos);

  /// Drain-before-close: enqueues a close marker *behind* every frame
  /// already pushed and blocks until the shard has processed them all —
  /// requests queued before close() still get their responses, and only
  /// then does the connection close. Idempotent. In deterministic mode
  /// this pumps the simulation inline instead of blocking.
  void close();

  bool isOpen() const {
    return ClientOpen.load(std::memory_order_acquire);
  }

  /// False once the server side culled this connection for idleness.
  bool isServerOpen() const {
    return ServerOpen.load(std::memory_order_acquire);
  }

  uint32_t id() const { return ConnId; }

  /// Frames this connection's shard has fully processed (shard-private
  /// counter; read it only after the connection quiesced, e.g. post
  /// close()).
  uint64_t framesHandled() const { return FramesHandled; }

private:
  friend class Reactor;
  Connection(Reactor &Owner, unsigned ShardIndex, uint32_t ConnId);

  /// Pushes \p Frame and delivers the readiness edge if this push
  /// transitioned the connection empty -> non-empty.
  void submit(FrameNode *Frame);

  Reactor &Owner;
  const unsigned ShardIndex;
  const uint32_t ConnId;

  ReadyNode Node; ///< intrusive readiness event, enqueued at most once
  forkjoin::MpscQueue Inbound;
  std::atomic<bool> Armed{false};
  std::atomic<bool> ClientOpen{true};
  /// Cleared by the shard when the idle cull closes the server side.
  std::atomic<bool> ServerOpen{true};
  std::atomic<uint64_t> NextRequestId{1};
  /// EWMA of recent handler latencies (ns). Updated with relaxed atomics
  /// from the shard (inline runs) and executor threads (offloaded runs);
  /// the offload policy reads it per dequeue.
  std::atomic<uint64_t> EwmaNanos{0};

  // --- shard-private state machine below this line ---
  enum class RxState : uint8_t { Idle, Dispatching, Responding };
  RxState State = RxState::Idle;
  bool PeerClosed = false;
  /// Set by the idle cull: subsequent requests fail instead of running.
  bool Culled = false;
  /// Set once the shard has handed this connection to the graveyard
  /// (close marker processed or culled); guards double-retirement.
  bool Retired = false;
  /// Idle timer, embedded so arming a connection's timeout never
  /// allocates. Scheduled/cancelled/fired only by the owning shard.
  TimerNode IdleTimer;
  /// Timestamp of the last processed frame (shard clock), the idle
  /// timer's re-arm basis.
  uint64_t LastActivityNanos = 0;
  /// The response demux table: request id -> promise, registered when
  /// the shard reads the request header, erased when the response
  /// envelope comes back from the handler. Offloaded frames bypass it
  /// (their promise travels in the executor task).
  std::unordered_map<uint64_t, futures::Promise<Bytes>> Pending;
  uint64_t FramesHandled = 0;
};

/// Reactor construction parameters.
struct ReactorOptions {
  /// Event-loop shards; connections are assigned round-robin.
  unsigned Shards = 1;
  /// No threads: SimPollers plus an explicit pump with seeded event
  /// ordering and virtual time.
  bool Deterministic = false;
  /// Seed for the deterministic pump's event ordering.
  uint64_t Seed = 0x5eedc0de;
  /// Frames drained per connection per shard round before the connection
  /// is requeued behind the round's other work.
  unsigned DrainBudget = 32;
  /// Route slow handlers through the per-shard executor (real mode only;
  /// deterministic mode always runs inline).
  bool OffloadHandlers = true;
  /// Executor threads per shard when offload is enabled.
  unsigned OffloadThreads = 1;
  /// A connection whose handler-latency EWMA exceeds this offloads its
  /// requests instead of running them inline on the shard.
  uint64_t OffloadThresholdNanos = 20000;
  /// Cull connections idle longer than this (0 = never). Idle-culled
  /// connections fail fast on call() and their memory is reclaimed once
  /// the client drops its handle.
  uint64_t IdleTimeoutNanos = 0;
};

/// The reactor: shards, pollers, timer wheels, and the connection
/// registry.
class Reactor {
public:
  Reactor(Handler Handle, ReactorOptions Opts);
  ~Reactor();

  Reactor(const Reactor &) = delete;
  Reactor &operator=(const Reactor &) = delete;

  /// Opens a connection, assigning it to a shard round-robin.
  std::shared_ptr<Connection> open();

  /// Total request frames handled across all shards (racy snapshot while
  /// traffic is in flight, exact once quiesced).
  uint64_t requestsHandled() const;

  /// Connections currently in the registry: opened and neither closed
  /// nor culled-and-released. The cull path's memory claim is asserted
  /// against this (plus RSS in bench_netsim).
  size_t connectionsLive() const;

  unsigned shards() const { return static_cast<unsigned>(Shards.size()); }
  bool deterministic() const { return Opts.Deterministic; }

  //===--------------------------------------------------------------===//
  // Deterministic-simulation driving (Deterministic reactors only)
  //===--------------------------------------------------------------===//

  /// Processes up to \p MaxFrames frames in seeded-random cross-connection
  /// order (FIFO within each connection). \returns frames processed.
  size_t pump(size_t MaxFrames = SIZE_MAX);

  /// Pumps until no connection is ready. \returns frames processed.
  size_t runUntilIdle() { return pump(SIZE_MAX); }

  /// True when no frame is queued anywhere (sim mode).
  bool idle() const;

  /// The simulation's virtual clock: advances a deterministic amount per
  /// processed frame (kSimFrameNanos + size * kSimByteNanos).
  uint64_t virtualNanos() const { return SimNanos; }

  /// Advances the virtual clock by \p Nanos and fires every timer that
  /// became due — the sim-mode way to reach idle timeouts and request
  /// deadlines without queueing traffic.
  void advanceVirtualTime(uint64_t Nanos);

  static constexpr uint64_t kSimFrameNanos = 1000;
  static constexpr uint64_t kSimByteNanos = 2;

private:
  friend class Connection;

  struct Shard {
    std::unique_ptr<Poller> Events;
    std::unique_ptr<TimerWheel> Wheel;
    /// Executor seam for slow handlers (real mode, OffloadHandlers).
    std::unique_ptr<forkjoin::ForkJoinPool> Exec;
    std::thread Loop; ///< real mode only
    std::atomic<uint64_t> Handled{0};
    /// Shard clock, refreshed once per round (wall in real mode, the
    /// virtual clock in sim mode); timestamp basis for idle tracking and
    /// deadline pre-checks.
    uint64_t NowNanos = 0;
    /// Retired connections whose memory cannot be released yet: the
    /// client still holds the handle, or a late producer may still hold
    /// a raw pointer (Armed). Swept incrementally at the bottom of every
    /// round — a bounded slice per pass, resumed at SweepCursor, so a
    /// mass teardown (10^6 clients closing before dropping their
    /// handles) costs O(N) total instead of O(N^2).
    std::vector<std::shared_ptr<Connection>> Graveyard;
    size_t SweepCursor = 0;
    /// Expired-timer scratch for advanceTimers (avoids a per-round
    /// allocation).
    std::vector<TimerNode *> FiredScratch;
  };

  void shardLoop(Shard &S);

  /// Drains up to DrainBudget frames from \p C with the disarm/re-check
  /// protocol. \returns true when the connection must be requeued on the
  /// shard's run queue (budget exhausted with frames left, still armed);
  /// false when fully drained (disarmed) or parked on an offload.
  bool drainBudgeted(Shard &S, Connection &C);

  /// Processes one frame on \p C's state machine: decode, register the
  /// demux entry, dispatch the handler, encode, demux onto the future.
  /// Takes ownership of \p Frame.
  void processFrame(Shard &S, Connection &C, FrameNode *Frame);

  /// True when \p Frame should run on the shard's executor instead of
  /// inline (request frames on slow-EWMA connections, real mode only).
  bool shouldOffload(const Shard &S, const Connection &C,
                     const FrameNode *Frame) const;

  /// Hands \p Frame to the shard executor and parks \p C (stays armed;
  /// the completion re-notifies the poller). Takes ownership of \p Frame.
  void dispatchOffload(Shard &S, Connection &C, FrameNode *Frame);

  /// Executor-side continuation of dispatchOffload.
  void runOffloaded(Shard &S, Connection &C, FrameNode *Frame);

  /// Dispatches one expired timer (idle cull or request deadline).
  void fireTimer(Shard &S, TimerNode *T);

  /// Advances \p S's wheel to the shard clock and fires what expired.
  void advanceTimers(Shard &S);

  /// Server-side close for an idle connection: fail fast from now on,
  /// then retire.
  void cull(Shard &S, Connection &C);

  /// Moves \p C from the registry to \p S's graveyard (idempotent).
  void retire(Shard &S, Connection &C);

  /// Releases graveyard connections nobody can reach anymore.
  void sweepGraveyard(Shard &S);

  /// Folds \p SampleNanos into \p C's handler-latency EWMA.
  static void foldEwma(Connection &C, uint64_t SampleNanos);

  /// Sim mode: refill SimReady from the shards' SimPollers.
  void gatherSimReady();

  Handler Handle;
  ReactorOptions Opts;
  std::vector<std::unique_ptr<Shard>> Shards;

  std::atomic<uint32_t> NextConnId{1};
  std::atomic<unsigned> NextShard{0};

  /// Registry keeping connections alive while reachable: readiness nodes
  /// carry raw Connection pointers, so a connection must outlive any
  /// event that may still name it. Closed/culled connections move to
  /// their shard's graveyard and are released once the client handle is
  /// gone and the connection is disarmed.
  mutable std::mutex ConnLock;
  std::unordered_map<uint32_t, std::shared_ptr<Connection>> Registry;

  // Sim-mode state (single driving thread).
  Xoshiro256StarStar SimRng;
  uint64_t SimNanos = 0;
  std::vector<Connection *> SimReady;
};

} // namespace netsim
} // namespace ren

#endif // REN_NETSIM_REACTOR_H
