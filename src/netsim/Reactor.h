//===- netsim/Reactor.h - Event-driven loopback reactor ---------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The readiness-driven core of the loopback network. Where the original
/// netsim spent one pump thread and one splice thread per connection, the
/// reactor runs a small fixed number of *shards*, each an event loop over
/// a Poller. A connection is a passive state machine: client threads push
/// wire frames onto its lock-free MPSC inbound queue (forkjoin/MpscQueue)
/// and deliver an edge-triggered readiness event; the owning shard drains
/// the queue in FIFO order, runs the request through the server handler,
/// and demuxes the response envelope back onto the future that the call
/// registered — no per-connection thread anywhere, so tens of thousands
/// of concurrent connections cost tens of megabytes, not tens of
/// thousands of stacks.
///
/// Edge-trigger protocol (per connection): a producer that pushes a frame
/// arms the connection with one exchange; only the false->true edge
/// enqueues a readiness node, so a flood of producers costs one poller
/// event. The shard disarms *before* its final emptiness re-check (with a
/// seq_cst fence against the producer's push+arm sequence), so a frame
/// that races the disarm is either seen by the re-check or re-arms and
/// re-notifies — never stranded.
///
/// Deterministic-simulation mode: constructed with
/// ReactorOptions::Deterministic, the reactor spawns no threads and runs
/// on SimPollers. A single driving thread issues calls and then pumps the
/// reactor explicitly; the pump picks the next ready connection with a
/// seeded RNG (exploring cross-connection orderings) while preserving
/// per-connection FIFO, and advances a virtual clock per frame. Same
/// seed, same schedule, same virtual time — the proof substrate the
/// differential and regression tests in tests/netsim build on.
///
//===----------------------------------------------------------------------===//

#ifndef REN_NETSIM_REACTOR_H
#define REN_NETSIM_REACTOR_H

#include "forkjoin/MpscQueue.h"
#include "futures/Future.h"
#include "netsim/Poller.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ren {
namespace netsim {

/// A wire frame (defined here as well as NetSim.h so the two headers do
/// not depend on each other's larger halves).
using Bytes = std::vector<uint8_t>;

/// Handles one request payload and produces a response payload.
using Handler = std::function<Bytes(const Bytes &)>;

class Reactor;

/// A queued wire frame: an intrusive MPSC node carrying the id-prefixed
/// envelope plus the promise the response demuxes onto (for close
/// markers, the promise acks that the drain finished). Owned by the queue
/// from push until the shard processes and frees it.
struct FrameNode : forkjoin::MpscNode {
  enum class Kind : uint8_t { Request, CloseMarker };
  Kind FrameKind = Kind::Request;
  Bytes Wire;
  futures::Promise<Bytes> Reply;
};

/// One client<->server connection: a passive state machine owned by a
/// reactor shard. Thread-safe on the producer side (call/close may come
/// from any thread; in deterministic mode, from the single driving
/// thread); all Rx state below the marked line is touched only by the
/// owning shard.
class Connection {
public:
  ~Connection();

  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  /// Sends \p Request and returns a future response. After close() the
  /// call fails fast; a call racing close() may be failed by the shard
  /// with the same "connection closed" error.
  futures::Future<Bytes> call(Bytes Request);

  /// Drain-before-close: enqueues a close marker *behind* every frame
  /// already pushed and blocks until the shard has processed them all —
  /// requests queued before close() still get their responses, and only
  /// then does the connection close. Idempotent. In deterministic mode
  /// this pumps the simulation inline instead of blocking.
  void close();

  bool isOpen() const {
    return ClientOpen.load(std::memory_order_acquire);
  }

  uint32_t id() const { return ConnId; }

  /// Frames this connection's shard has fully processed (shard-private
  /// counter; read it only after the connection quiesced, e.g. post
  /// close()).
  uint64_t framesHandled() const { return FramesHandled; }

private:
  friend class Reactor;
  Connection(Reactor &Owner, unsigned ShardIndex, uint32_t ConnId);

  /// Pushes \p Frame and delivers the readiness edge if this push
  /// transitioned the connection empty -> non-empty.
  void submit(FrameNode *Frame);

  Reactor &Owner;
  const unsigned ShardIndex;
  const uint32_t ConnId;

  ReadyNode Node; ///< intrusive readiness event, enqueued at most once
  forkjoin::MpscQueue Inbound;
  std::atomic<bool> Armed{false};
  std::atomic<bool> ClientOpen{true};
  std::atomic<uint64_t> NextRequestId{1};

  // --- shard-private state machine below this line ---
  enum class RxState : uint8_t { Idle, Dispatching, Responding };
  RxState State = RxState::Idle;
  bool PeerClosed = false;
  /// The response demux table: request id -> promise, registered when
  /// the shard reads the request header, erased when the response
  /// envelope comes back from the handler.
  std::unordered_map<uint64_t, futures::Promise<Bytes>> Pending;
  uint64_t FramesHandled = 0;
};

/// Reactor construction parameters.
struct ReactorOptions {
  /// Event-loop shards; connections are assigned round-robin.
  unsigned Shards = 1;
  /// No threads: SimPollers plus an explicit pump with seeded event
  /// ordering and virtual time.
  bool Deterministic = false;
  /// Seed for the deterministic pump's event ordering.
  uint64_t Seed = 0x5eedc0de;
};

/// The reactor: shards, pollers, and the connection registry.
class Reactor {
public:
  Reactor(Handler Handle, ReactorOptions Opts);
  ~Reactor();

  Reactor(const Reactor &) = delete;
  Reactor &operator=(const Reactor &) = delete;

  /// Opens a connection, assigning it to a shard round-robin.
  std::shared_ptr<Connection> open();

  /// Total request frames handled across all shards (racy snapshot while
  /// traffic is in flight, exact once quiesced).
  uint64_t requestsHandled() const;

  unsigned shards() const { return static_cast<unsigned>(Shards.size()); }
  bool deterministic() const { return Opts.Deterministic; }

  //===--------------------------------------------------------------===//
  // Deterministic-simulation driving (Deterministic reactors only)
  //===--------------------------------------------------------------===//

  /// Processes up to \p MaxFrames frames in seeded-random cross-connection
  /// order (FIFO within each connection). \returns frames processed.
  size_t pump(size_t MaxFrames = SIZE_MAX);

  /// Pumps until no connection is ready. \returns frames processed.
  size_t runUntilIdle() { return pump(SIZE_MAX); }

  /// True when no frame is queued anywhere (sim mode).
  bool idle() const;

  /// The simulation's virtual clock: advances a deterministic amount per
  /// processed frame (kSimFrameNanos + size * kSimByteNanos).
  uint64_t virtualNanos() const { return SimNanos; }

  static constexpr uint64_t kSimFrameNanos = 1000;
  static constexpr uint64_t kSimByteNanos = 2;

private:
  friend class Connection;

  struct Shard {
    std::unique_ptr<Poller> Events;
    std::thread Loop; ///< real mode only
    std::atomic<uint64_t> Handled{0};
  };

  void shardLoop(Shard &S);

  /// Drains \p C's inbound queue with the disarm/re-check protocol.
  void drainConnection(Shard &S, Connection &C);

  /// Processes one frame on \p C's state machine: decode, register the
  /// demux entry, dispatch the handler, encode, demux onto the future.
  /// Takes ownership of \p Frame.
  void processFrame(Shard &S, Connection &C, FrameNode *Frame);

  /// Sim mode: refill SimReady from the shards' SimPollers.
  void gatherSimReady();

  Handler Handle;
  ReactorOptions Opts;
  std::vector<std::unique_ptr<Shard>> Shards;

  std::atomic<uint32_t> NextConnId{1};
  std::atomic<unsigned> NextShard{0};

  /// Registry keeping connections alive until reactor teardown: readiness
  /// nodes carry raw Connection pointers, so a connection must outlive
  /// any event that may still name it.
  mutable std::mutex ConnLock;
  std::vector<std::shared_ptr<Connection>> Conns;

  // Sim-mode state (single driving thread).
  Xoshiro256StarStar SimRng;
  uint64_t SimNanos = 0;
  std::vector<Connection *> SimReady;
};

} // namespace netsim
} // namespace ren

#endif // REN_NETSIM_REACTOR_H
