//===- netsim/NetSim.h - In-process loopback network ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process "network": byte-frame channels between client and server
/// endpoints, the substrate of finagle-http and finagle-chirper.
///
/// The paper encodes network benchmarks "as multiple threads that exercise
/// the network stack within a single process (using the loopback
/// interface)". We model the same structure: requests are serialized into
/// byte frames, queued through monitor-guarded channels (synch/wait/notify
/// metrics), handled by a server worker pool, and responses are demuxed
/// back into futures on a per-connection pump thread — the Finagle RPC
/// pipeline in miniature.
///
//===----------------------------------------------------------------------===//

#ifndef REN_NETSIM_NETSIM_H
#define REN_NETSIM_NETSIM_H

#include "futures/Future.h"
#include "runtime/Monitor.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ren {
namespace netsim {

/// A wire frame.
using Bytes = std::vector<uint8_t>;

/// Little-endian serialization cursor over a byte frame.
class ByteBuffer {
public:
  ByteBuffer() = default;
  explicit ByteBuffer(Bytes Data) : Data(std::move(Data)) {}

  void writeU32(uint32_t V);
  void writeU64(uint64_t V);
  void writeString(const std::string &S);

  uint32_t readU32();
  uint64_t readU64();
  std::string readString();

  /// Remaining unread bytes.
  size_t remaining() const { return Data.size() - ReadPos; }

  const Bytes &bytes() const { return Data; }
  Bytes takeBytes() { return std::move(Data); }

private:
  Bytes Data;
  size_t ReadPos = 0;
};

/// A blocking MPMC frame queue modelling one direction of a socket.
class Channel {
public:
  /// Enqueues a frame and wakes a receiver.
  void send(Bytes Frame);

  /// Dequeues a frame, blocking while empty. \returns false when the
  /// channel is closed and drained.
  bool recv(Bytes &FrameOut);

  /// Closes the channel: pending frames still drain, then recv fails.
  void close();

  size_t pending();

private:
  runtime::Monitor Lock;
  std::deque<Bytes> Frames;
  bool Closed = false;
};

/// Handles one request frame and produces a response frame.
using Handler = std::function<Bytes(const Bytes &)>;

class Server;

/// A client connection: request/response with future-based dispatch.
class ClientConnection {
public:
  ~ClientConnection();

  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  /// Sends \p Request and returns a future response.
  futures::Future<Bytes> call(Bytes Request);

  /// Closes the connection (idempotent).
  void close();

private:
  friend class Server;
  explicit ClientConnection(std::shared_ptr<Channel> ToServer);

  void pumpLoop();

  std::shared_ptr<Channel> ToServer;
  std::shared_ptr<Channel> FromServer;
  std::thread Pump;

  runtime::Monitor PendingLock;
  std::unordered_map<uint64_t, futures::Promise<Bytes>> Pending;
  uint64_t NextRequestId = 1;
  bool Open = true;
};

/// A server endpoint: a worker pool consuming request frames.
class Server {
public:
  /// Starts \p Workers handler threads for service \p Name.
  Server(std::string Name, Handler Handle, unsigned Workers);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Opens a connection to this server.
  std::unique_ptr<ClientConnection> connect();

  const std::string &name() const { return Name; }

  /// Total requests handled so far.
  uint64_t requestsHandled();

private:
  struct WireRequest {
    std::shared_ptr<Channel> ReplyTo;
    Bytes Frame;
  };

  void workerLoop();

  std::string Name;
  Handler Handle;

  runtime::Monitor QueueLock;
  std::deque<WireRequest> Queue;
  bool ShuttingDown = false;
  uint64_t Handled = 0;

  std::vector<std::thread> Workers;
  std::vector<std::thread> Splices;
};

} // namespace netsim
} // namespace ren

#endif // REN_NETSIM_NETSIM_H
