//===- netsim/NetSim.h - In-process loopback network ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process "network": byte-frame request/response between client and
/// server endpoints, the substrate of finagle-http and finagle-chirper.
///
/// The paper encodes network benchmarks "as multiple threads that exercise
/// the network stack within a single process (using the loopback
/// interface)". Since the reactor rewrite, the stack is readiness-driven:
/// requests are serialized into byte frames, pushed onto lock-free
/// per-connection MPSC queues, drained by a small number of reactor shard
/// event loops (see Reactor.h), and responses are demuxed back onto
/// futures — no per-connection threads, so connection counts scale to the
/// tens of thousands the Finagle workloads assume.
///
/// Server/ClientConnection keep the original public surface; ServerOptions
/// additionally exposes the shard count and the single-threaded
/// deterministic-simulation mode (seeded event ordering, virtual time)
/// that the differential test layer drives.
///
//===----------------------------------------------------------------------===//

#ifndef REN_NETSIM_NETSIM_H
#define REN_NETSIM_NETSIM_H

#include "futures/Future.h"
#include "runtime/Monitor.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ren {
namespace netsim {

/// A wire frame.
using Bytes = std::vector<uint8_t>;

/// Little-endian serialization cursor over a byte frame.
class ByteBuffer {
public:
  ByteBuffer() = default;
  explicit ByteBuffer(Bytes Data) : Data(std::move(Data)) {}

  void writeU32(uint32_t V);
  void writeU64(uint64_t V);
  void writeString(const std::string &S);

  uint32_t readU32();
  uint64_t readU64();
  std::string readString();

  /// Remaining unread bytes.
  size_t remaining() const { return Data.size() - ReadPos; }

  const Bytes &bytes() const { return Data; }
  Bytes takeBytes() { return std::move(Data); }

private:
  Bytes Data;
  size_t ReadPos = 0;
};

/// A blocking MPMC frame queue modelling one direction of a socket.
///
/// Retained from the thread-per-connection era: the reactor no longer
/// routes frames through monitor-guarded channels, but Channel remains
/// the simplest blocking conduit for tests and workloads that want
/// wait/notify traffic (and it pins the Monitor-based queue semantics the
/// original netsim was built on).
class Channel {
public:
  /// Enqueues a frame and wakes a receiver.
  void send(Bytes Frame);

  /// Dequeues a frame, blocking while empty. \returns false when the
  /// channel is closed and drained.
  bool recv(Bytes &FrameOut);

  /// Closes the channel: pending frames still drain, then recv fails.
  void close();

  size_t pending();

private:
  runtime::Monitor Lock;
  std::deque<Bytes> Frames;
  bool Closed = false;
};

/// Handles one request frame and produces a response frame.
using Handler = std::function<Bytes(const Bytes &)>;

class Connection;
class Reactor;
class Server;

/// Server construction parameters.
struct ServerOptions {
  /// Reactor event-loop shards (each one thread in real mode).
  unsigned Shards = 1;
  /// Deterministic-simulation mode: no threads; the caller drives the
  /// reactor with Server::pump / Server::runUntilIdle on a single thread
  /// under seeded event ordering and virtual time.
  bool Deterministic = false;
  /// Seed for the simulation's event-ordering RNG.
  uint64_t Seed = 0x5eedc0de;
  /// Frames a shard drains from one connection per round before the
  /// connection is requeued behind the round's other ready connections.
  unsigned DrainBudget = 32;
  /// Route slow handlers through the per-shard executor seam so they do
  /// not head-of-line-block their shard (real mode; deterministic mode
  /// always runs handlers inline for byte-identical simulation).
  bool OffloadHandlers = true;
  /// Executor threads per shard when offload is enabled.
  unsigned OffloadThreads = 1;
  /// A connection whose handler-latency EWMA exceeds this (ns) has its
  /// requests offloaded instead of run inline.
  uint64_t OffloadThresholdNanos = 20000;
  /// Cull connections idle longer than this many nanoseconds (0 =
  /// never). Culled connections fail fast on call() and their memory is
  /// reclaimed once the client drops its handle.
  uint64_t IdleTimeoutNanos = 0;
};

/// A client connection handle: request/response with future-based
/// dispatch. Thin owner of a reactor Connection.
class ClientConnection {
public:
  ~ClientConnection();

  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  /// Sends \p Request and returns a future response.
  futures::Future<Bytes> call(Bytes Request);

  /// Like call(), but the response future fails with "request deadline
  /// exceeded" unless it completes within \p DeadlineAfterNanos
  /// (relative; virtual time in deterministic mode).
  futures::Future<Bytes> call(Bytes Request, uint64_t DeadlineAfterNanos);

  /// False once the server culled this connection for idleness (calls
  /// fail fast with "connection idle timeout").
  bool isServerOpen() const;

  /// Closes the connection (idempotent). Drain-before-close: requests
  /// already queued are still handled and their responses delivered
  /// before the close completes.
  void close();

private:
  friend class Server;
  explicit ClientConnection(std::shared_ptr<Connection> Conn);

  std::shared_ptr<Connection> Conn;
};

/// A server endpoint: a sharded reactor running \p Handler.
class Server {
public:
  /// Starts a reactor with \p Shards event-loop shards for service
  /// \p Name. (Pre-reactor code passed a worker count here; shards play
  /// the same capacity role without per-connection threads.)
  Server(std::string Name, Handler Handle, unsigned Shards);

  /// Full-control constructor (shard count, deterministic mode, seed).
  Server(std::string Name, Handler Handle, ServerOptions Opts);

  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Opens a connection to this server. Connections must be closed
  /// before the server is destroyed.
  std::unique_ptr<ClientConnection> connect();

  const std::string &name() const { return Name; }

  /// Total requests handled so far (exact once traffic quiesces).
  uint64_t requestsHandled();

  /// Connections currently registered: opened and neither closed nor
  /// culled-and-released — the observable the idle-cull memory claim is
  /// tested against.
  size_t connectionsLive() const;

  /// Number of reactor shards backing this server.
  unsigned shards() const;

  /// True when constructed in deterministic-simulation mode.
  bool deterministic() const;

  //===--------------------------------------------------------------===//
  // Deterministic-simulation driving (Deterministic servers only)
  //===--------------------------------------------------------------===//

  /// Processes up to \p MaxFrames queued frames in seeded order.
  size_t pump(size_t MaxFrames = SIZE_MAX);

  /// Pumps until every queue is empty. \returns frames processed.
  size_t runUntilIdle();

  /// The simulation's virtual clock (deterministic per schedule).
  uint64_t virtualNanos() const;

  /// Advances the virtual clock by \p Nanos and fires every timer that
  /// came due — the sim-mode path to idle timeouts and request deadlines
  /// without queueing traffic.
  void advanceVirtualTime(uint64_t Nanos);

  /// True when nothing is queued (sim mode only).
  bool idle() const;

private:
  std::string Name;
  std::unique_ptr<Reactor> Core;
};

} // namespace netsim
} // namespace ren

#endif // REN_NETSIM_NETSIM_H
