//===- actors/ActorSystem.cpp ---------------------------------------------==//

#include "actors/ActorSystem.h"

using namespace ren;
using namespace ren::actors;

ActorSystem::ActorSystem(unsigned Parallelism)
    : PoolPtr(std::make_unique<forkjoin::ForkJoinPool>(Parallelism)) {}

ActorSystem::~ActorSystem() {
  // Stop the workers first; only then is it safe to destroy actors.
  PoolPtr.reset();
  // Break ActorRef cycles (actors holding refs to each other/themselves)
  // so the cells can actually be reclaimed.
  runtime::Synchronized Sync(CellsLock);
  for (auto &C : Cells)
    C->dropActor();
  Cells.clear();
}

void ActorSystem::notePending() { PendingMessages.getAndAdd(1); }

void ActorSystem::noteProcessed() {
  if (PendingMessages.getAndAdd(-1) == 1) {
    runtime::Synchronized Sync(QuiescenceMonitor);
    QuiescenceMonitor.notifyAll();
  }
}

void ActorSystem::awaitQuiescence() {
  runtime::Synchronized Sync(QuiescenceMonitor);
  // Re-check with a short timeout: the count is decremented outside the
  // monitor, so a notification can slip in between the check and the wait.
  while (PendingMessages.load(std::memory_order_acquire) != 0)
    QuiescenceMonitor.waitFor(/*Millis=*/1);
}
