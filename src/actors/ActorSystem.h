//===- actors/ActorSystem.h - Message-passing actors ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal actor framework modelling Akka / Reactors, the substrate of
/// the akka-uct and reactors benchmarks.
///
/// Faithful to the Akka execution model and its metric profile:
///  - mailboxes are lock-free MPSC structures; every enqueue is a counted
///    CAS (Metric::Atomic) — akka-uct's dominant metric in Table 7;
///  - an actor is scheduled onto the fork/join pool with a CAS on its
///    scheduling flag and processes up to a throughput batch of messages
///    per activation;
///  - idle pool workers park (Metric::Park);
///  - message delivery invokes the actor's virtual \c receive
///    (Metric::Method) and message envelopes are counted allocations.
///
//===----------------------------------------------------------------------===//

#ifndef REN_ACTORS_ACTORSYSTEM_H
#define REN_ACTORS_ACTORSYSTEM_H

#include "forkjoin/ForkJoinPool.h"
#include "futures/Future.h"
#include "runtime/Alloc.h"
#include "runtime/Atomic.h"
#include "runtime/Monitor.h"

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

namespace ren {
namespace actors {

class ActorSystem;
template <typename MsgT> class ActorRef;

namespace detail {

/// Type-erased base so the system can retain heterogeneous cells.
class CellBase {
public:
  virtual ~CellBase() = default;

  /// Destroys the contained actor instance. Called during system shutdown
  /// to break ActorRef reference cycles (actors routinely hold refs to
  /// each other and to themselves).
  virtual void dropActor() = 0;
};

} // namespace detail

/// Base class for user actors processing messages of type \p MsgT.
template <typename MsgT> class Actor {
public:
  using MessageType = MsgT;

  virtual ~Actor() = default;

  /// Handles one message. Runs single-threaded per actor (the actor
  /// invariant), but different actors run concurrently.
  virtual void receive(MsgT Message) = 0;

  /// The owning system (valid after spawn).
  ActorSystem &system() {
    assert(OwningSystem && "actor not yet spawned");
    return *OwningSystem;
  }

  /// This actor's own address (valid after spawn), as in Akka's
  /// context.self.
  const ActorRef<MsgT> &self() const {
    return Self;
  }

private:
  template <typename T> friend class Cell;
  friend class ActorSystem;
  ActorSystem *OwningSystem = nullptr;
  ActorRef<MsgT> Self;
};

/// The runtime cell binding an actor to its mailbox and scheduling state.
template <typename MsgT> class Cell : public detail::CellBase {
public:
  Cell(ActorSystem &System, runtime::Ref<Actor<MsgT>> Instance)
      : System(System), Instance(std::move(Instance)) {
    this->Instance->OwningSystem = &System;
  }

  ~Cell() override {
    // Drain any undelivered messages (system shut down mid-flight).
    Node *N = Head.getAndSet(nullptr);
    while (N) {
      Node *Next = N->Next;
      runtime::heap::destroy(N);
      N = Next;
    }
    while (Pending) {
      Node *Next = Pending->Next;
      runtime::heap::destroy(Pending);
      Pending = Next;
    }
  }

  void dropActor() override { Instance.reset(); }

  /// Installs the actor's own address (called once by spawn).
  void setSelf(const ActorRef<MsgT> &Ref) { Instance->Self = Ref; }

  /// Enqueues \p Message and schedules the actor if necessary.
  void tell(MsgT Message);

private:
  friend class ActorRef<MsgT>;
  friend class ActorSystem;

  struct Node {
    explicit Node(MsgT M) : Message(std::move(M)) {}
    MsgT Message;
    Node *Next = nullptr;
  };

  /// Messages processed per activation before rescheduling (Akka calls
  /// this the dispatcher throughput).
  static constexpr int kThroughput = 64;

  void schedule();
  void process();

  ActorSystem &System;
  runtime::Ref<Actor<MsgT>> Instance;
  // Treiber-stack mailbox head (newest first); reversed at consume time.
  runtime::Atomic<Node *> Head{nullptr};
  // Pending messages in arrival order, owned by the processing activation.
  Node *Pending = nullptr;
  runtime::Atomic<int> Scheduled{0};
};

/// A shareable handle used to send messages to an actor.
template <typename MsgT> class ActorRef {
public:
  ActorRef() = default;
  explicit ActorRef(std::shared_ptr<Cell<MsgT>> C) : CellPtr(std::move(C)) {}

  bool valid() const { return CellPtr != nullptr; }

  /// Asynchronously delivers \p Message (Akka's "tell" / "!").
  void tell(MsgT Message) const {
    assert(CellPtr && "tell on an empty ActorRef");
    CellPtr->tell(std::move(Message));
  }

  /// The ask pattern (Akka's "?"): sends a message built by
  /// \p MakeMessage from a reply promise and returns the future reply.
  /// The actor completes the promise it receives inside the message.
  template <typename ReplyT, typename MakeMessageT>
  futures::Future<ReplyT> ask(MakeMessageT MakeMessage) const {
    futures::Promise<ReplyT> Reply;
    tell(MakeMessage(Reply));
    return Reply.future();
  }

private:
  std::shared_ptr<Cell<MsgT>> CellPtr;
};

/// Owns the worker pool and the actor cells.
class ActorSystem {
public:
  /// Creates a system backed by \p Parallelism pool workers.
  explicit ActorSystem(unsigned Parallelism = 0);
  ~ActorSystem();

  ActorSystem(const ActorSystem &) = delete;
  ActorSystem &operator=(const ActorSystem &) = delete;

  /// Instantiates an actor and returns a ref to it.
  template <typename ActorT, typename... ArgTs>
  ActorRef<typename ActorT::MessageType> spawn(ArgTs &&...Args) {
    using MsgT = typename ActorT::MessageType;
    auto Instance = runtime::newObject<ActorT>(std::forward<ArgTs>(Args)...);
    auto CellPtr = runtime::newShared<Cell<MsgT>>(*this, std::move(Instance));
    ActorRef<MsgT> Ref(CellPtr);
    CellPtr->setSelf(Ref);
    {
      runtime::Synchronized Sync(CellsLock);
      Cells.push_back(CellPtr);
    }
    return Ref;
  }

  /// Blocks until no message is pending or being processed. Only
  /// meaningful once the workload's initial messages have been sent.
  void awaitQuiescence();

  forkjoin::ForkJoinPool &pool() { return *PoolPtr; }

private:
  template <typename T> friend class Cell;

  void notePending();
  void noteProcessed();

  runtime::Monitor CellsLock;
  std::vector<std::shared_ptr<detail::CellBase>> Cells;

  runtime::Atomic<long> PendingMessages{0};
  runtime::Monitor QuiescenceMonitor;

  // Held by pointer so the destructor can stop the workers *before*
  // tearing down cells (actors hold ActorRef cycles that dropActor breaks).
  std::unique_ptr<forkjoin::ForkJoinPool> PoolPtr;
};

template <typename MsgT> void Cell<MsgT>::tell(MsgT Message) {
  System.notePending();
  runtime::noteObjectAlloc(); // message envelope
  Node *N = runtime::heap::create<Node>(std::move(Message));
  // Lock-free push: CAS retry on the mailbox head.
  Node *OldHead = Head.load(std::memory_order_relaxed);
  do {
    N->Next = OldHead;
  } while (!Head.compareAndSwap(OldHead, N));
  schedule();
}

template <typename MsgT> void Cell<MsgT>::schedule() {
  // Fire-and-forget activation: nobody joins it (quiescence is tracked by
  // the message counter), so take the handle-free fast path.
  if (Scheduled.compareAndSet(0, 1))
    System.PoolPtr->forkDetached([this] { process(); });
}

template <typename MsgT> void Cell<MsgT>::process() {
  for (int Processed = 0; Processed < kThroughput; ++Processed) {
    if (!Pending) {
      // Grab the whole mailbox and restore arrival order.
      Node *Grabbed = Head.getAndSet(nullptr);
      while (Grabbed) {
        Node *Next = Grabbed->Next;
        Grabbed->Next = Pending;
        Pending = Grabbed;
        Grabbed = Next;
      }
    }
    if (!Pending)
      break;
    Node *N = Pending;
    Pending = N->Next;
    // Virtual dispatch into user code, counted like invokevirtual.
    runtime::virtualCall(Instance.get(), &Actor<MsgT>::receive,
                         std::move(N->Message));
    runtime::heap::destroy(N);
    System.noteProcessed();
  }

  // Deactivate, then re-check for messages that raced with deactivation.
  // Pending must be read *before* the release of Scheduled: activations
  // are serialized by the Scheduled flag, so the field is ours only until
  // that store — afterwards the next activation may already be mutating
  // it. A stale HadPending merely schedules a redundant (empty)
  // activation.
  bool HadPending = Pending != nullptr;
  Scheduled.store(0, std::memory_order_release);
  if (HadPending || Head.load(std::memory_order_acquire))
    schedule();
}

} // namespace actors
} // namespace ren

#endif // REN_ACTORS_ACTORSYSTEM_H
