//===- stats/Stats.cpp -----------------------------------------------------==//

#include "stats/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ren;
using namespace ren::stats;

double ren::stats::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double ren::stats::sampleVariance(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return Sum / static_cast<double>(Values.size() - 1);
}

double ren::stats::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of empty set");
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

Matrix ren::stats::standardize(const Matrix &X) {
  Matrix Y(X.Rows, X.Cols);
  for (size_t C = 0; C < X.Cols; ++C) {
    std::vector<double> Column(X.Rows);
    for (size_t R = 0; R < X.Rows; ++R)
      Column[R] = X.at(R, C);
    double M = mean(Column);
    double Sd = std::sqrt(sampleVariance(Column));
    for (size_t R = 0; R < X.Rows; ++R)
      Y.at(R, C) = Sd > 0.0 ? (X.at(R, C) - M) / Sd : 0.0;
  }
  return Y;
}

double PcaResult::varianceExplained(size_t K) const {
  double Total = 0.0, First = 0.0;
  for (size_t I = 0; I < Eigenvalues.size(); ++I) {
    Total += Eigenvalues[I];
    if (I < K)
      First += Eigenvalues[I];
  }
  return Total > 0.0 ? First / Total : 0.0;
}

PcaResult ren::stats::pca(const Matrix &Y) {
  size_t N = Y.Rows, K = Y.Cols;
  assert(N >= 2 && K >= 1 && "PCA needs at least two observations");

  // Covariance matrix (K x K).
  Matrix Cov(K, K);
  for (size_t A = 0; A < K; ++A)
    for (size_t B = 0; B < K; ++B) {
      double Sum = 0.0;
      for (size_t R = 0; R < N; ++R)
        Sum += Y.at(R, A) * Y.at(R, B);
      Cov.at(A, B) = Sum / static_cast<double>(N - 1);
    }

  // Cyclic Jacobi eigendecomposition: Cov = V diag(e) V^T.
  Matrix V(K, K);
  for (size_t I = 0; I < K; ++I)
    V.at(I, I) = 1.0;
  Matrix A = Cov;
  for (int Sweep = 0; Sweep < 100; ++Sweep) {
    double Off = 0.0;
    for (size_t P = 0; P < K; ++P)
      for (size_t Q = P + 1; Q < K; ++Q)
        Off += A.at(P, Q) * A.at(P, Q);
    if (Off < 1e-20)
      break;
    for (size_t P = 0; P < K; ++P)
      for (size_t Q = P + 1; Q < K; ++Q) {
        double Apq = A.at(P, Q);
        if (std::fabs(Apq) < 1e-15)
          continue;
        double Theta = (A.at(Q, Q) - A.at(P, P)) / (2.0 * Apq);
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;
        for (size_t I = 0; I < K; ++I) {
          double Aip = A.at(I, P), Aiq = A.at(I, Q);
          A.at(I, P) = C * Aip - S * Aiq;
          A.at(I, Q) = S * Aip + C * Aiq;
        }
        for (size_t I = 0; I < K; ++I) {
          double Api = A.at(P, I), Aqi = A.at(Q, I);
          A.at(P, I) = C * Api - S * Aqi;
          A.at(Q, I) = S * Api + C * Aqi;
        }
        for (size_t I = 0; I < K; ++I) {
          double Vip = V.at(I, P), Viq = V.at(I, Q);
          V.at(I, P) = C * Vip - S * Viq;
          V.at(I, Q) = S * Vip + C * Viq;
        }
      }
  }

  // Sort components by descending eigenvalue.
  std::vector<size_t> Order(K);
  for (size_t I = 0; I < K; ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t X, size_t Z) {
    return A.at(X, X) > A.at(Z, Z);
  });

  PcaResult Result;
  Result.Loadings = Matrix(K, K);
  Result.Eigenvalues.resize(K);
  for (size_t J = 0; J < K; ++J) {
    size_t Src = Order[J];
    Result.Eigenvalues[J] = std::max(0.0, A.at(Src, Src));
    // Sign convention: the largest-magnitude loading is positive.
    double MaxAbs = 0.0;
    double Sign = 1.0;
    for (size_t I = 0; I < K; ++I)
      if (std::fabs(V.at(I, Src)) > MaxAbs) {
        MaxAbs = std::fabs(V.at(I, Src));
        Sign = V.at(I, Src) >= 0 ? 1.0 : -1.0;
      }
    for (size_t I = 0; I < K; ++I)
      Result.Loadings.at(I, J) = Sign * V.at(I, Src);
  }

  // Scores: S = Y L.
  Result.Scores = Matrix(N, K);
  for (size_t R = 0; R < N; ++R)
    for (size_t J = 0; J < K; ++J) {
      double Sum = 0.0;
      for (size_t I = 0; I < K; ++I)
        Sum += Y.at(R, I) * Result.Loadings.at(I, J);
      Result.Scores.at(R, J) = Sum;
    }
  return Result;
}

namespace {

/// Regularized incomplete beta function I_x(a, b) by continued fraction
/// (Lentz), used for the t-distribution CDF.
double incompleteBeta(double A, double B, double X) {
  if (X <= 0.0)
    return 0.0;
  if (X >= 1.0)
    return 1.0;
  double LogBeta = std::lgamma(A + B) - std::lgamma(A) - std::lgamma(B) +
                   A * std::log(X) + B * std::log(1.0 - X);
  double Front = std::exp(LogBeta);

  // Modified-Lentz continued fraction for the incomplete beta function
  // (the classic betacf formulation).
  auto contFraction = [](double A0, double B0, double X0) {
    constexpr int MaxIter = 300;
    constexpr double Tiny = 1e-30;
    double Qab = A0 + B0, Qap = A0 + 1.0, Qam = A0 - 1.0;
    double C = 1.0;
    double D = 1.0 - Qab * X0 / Qap;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    D = 1.0 / D;
    double H = D;
    for (int M = 1; M <= MaxIter; ++M) {
      double M2 = 2.0 * M;
      double Aa = M * (B0 - M) * X0 / ((Qam + M2) * (A0 + M2));
      D = 1.0 + Aa * D;
      if (std::fabs(D) < Tiny)
        D = Tiny;
      C = 1.0 + Aa / C;
      if (std::fabs(C) < Tiny)
        C = Tiny;
      D = 1.0 / D;
      H *= D * C;
      Aa = -(A0 + M) * (Qab + M) * X0 / ((A0 + M2) * (Qap + M2));
      D = 1.0 + Aa * D;
      if (std::fabs(D) < Tiny)
        D = Tiny;
      C = 1.0 + Aa / C;
      if (std::fabs(C) < Tiny)
        C = Tiny;
      D = 1.0 / D;
      double Del = D * C;
      H *= Del;
      if (std::fabs(Del - 1.0) < 1e-12)
        break;
    }
    return H;
  };

  if (X < (A + 1.0) / (A + B + 2.0))
    return Front * contFraction(A, B, X) / A;
  return 1.0 - incompleteBeta(B, A, 1.0 - X);
}

/// Two-sided p-value of |t| with \p Df degrees of freedom.
double tTwoSidedP(double T, double Df) {
  double X = Df / (Df + T * T);
  return incompleteBeta(Df / 2.0, 0.5, X);
}

} // namespace

WelchResult ren::stats::welchTTest(const std::vector<double> &A,
                                   const std::vector<double> &B) {
  assert(A.size() >= 2 && B.size() >= 2 && "Welch needs n >= 2 per sample");
  double MeanA = mean(A), MeanB = mean(B);
  double VarA = sampleVariance(A), VarB = sampleVariance(B);
  double Na = static_cast<double>(A.size());
  double Nb = static_cast<double>(B.size());
  double SeSq = VarA / Na + VarB / Nb;

  WelchResult R;
  if (SeSq <= 0.0) {
    // Degenerate samples: identical means -> p = 1; else "infinitely"
    // significant.
    R.TStatistic = MeanA == MeanB ? 0.0 : 1e300;
    R.DegreesOfFreedom = Na + Nb - 2.0;
    R.PValue = MeanA == MeanB ? 1.0 : 0.0;
    return R;
  }
  R.TStatistic = (MeanA - MeanB) / std::sqrt(SeSq);
  double Num = SeSq * SeSq;
  double Den = (VarA / Na) * (VarA / Na) / (Na - 1.0) +
               (VarB / Nb) * (VarB / Nb) / (Nb - 1.0);
  R.DegreesOfFreedom = Num / Den;
  R.PValue = tTwoSidedP(R.TStatistic, R.DegreesOfFreedom);
  return R;
}

std::vector<double> ren::stats::winsorize(std::vector<double> Values,
                                          double Fraction) {
  assert(Fraction >= 0.0 && Fraction < 0.5 && "fraction must be in [0,.5)");
  if (Values.size() < 3 || Fraction == 0.0)
    return Values;
  std::vector<double> Sorted = Values;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Cut = static_cast<size_t>(
      Fraction * static_cast<double>(Sorted.size()));
  double Lo = Sorted[Cut];
  double Hi = Sorted[Sorted.size() - 1 - Cut];
  for (double &V : Values)
    V = std::clamp(V, Lo, Hi);
  return Values;
}

double ren::stats::tCriticalValue(double Df, double Alpha) {
  // Bisection on the two-sided p-value.
  double Lo = 0.0, Hi = 1e3;
  for (int Iter = 0; Iter < 200; ++Iter) {
    double Mid = (Lo + Hi) / 2.0;
    if (tTwoSidedP(Mid, Df) > Alpha)
      Lo = Mid;
    else
      Hi = Mid;
  }
  return (Lo + Hi) / 2.0;
}

std::pair<double, double>
ren::stats::meanConfidenceInterval(const std::vector<double> &Values,
                                   double Alpha) {
  assert(Values.size() >= 2 && "CI needs at least two samples");
  double M = mean(Values);
  double Se = std::sqrt(sampleVariance(Values) /
                        static_cast<double>(Values.size()));
  double T = tCriticalValue(static_cast<double>(Values.size() - 1), Alpha);
  return {M - T * Se, M + T * Se};
}
