//===- stats/Stats.h - Statistical toolkit (paper §4, §6) -------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistics the paper's evaluation relies on, implemented from
/// scratch: standardization and principal component analysis for the
/// diversity study (§4.2), Welch's t-test and winsorized filtering for the
/// optimization-impact study (§6 / supplemental §C), plus geometric means
/// and confidence intervals used throughout.
///
//===----------------------------------------------------------------------===//

#ifndef REN_STATS_STATS_H
#define REN_STATS_STATS_H

#include <cstddef>
#include <vector>

namespace ren {
namespace stats {

/// A dense row-major matrix.
struct Matrix {
  size_t Rows = 0;
  size_t Cols = 0;
  std::vector<double> Data;

  Matrix() = default;
  Matrix(size_t Rows, size_t Cols)
      : Rows(Rows), Cols(Cols), Data(Rows * Cols, 0.0) {}

  double &at(size_t R, size_t C) { return Data[R * Cols + C]; }
  double at(size_t R, size_t C) const { return Data[R * Cols + C]; }
};

/// Mean of \p Values (0 for empty input).
double mean(const std::vector<double> &Values);

/// Unbiased sample variance (n-1 denominator; 0 when n < 2).
double sampleVariance(const std::vector<double> &Values);

/// Geometric mean; all inputs must be positive.
double geometricMean(const std::vector<double> &Values);

/// Standardizes each column of \p X to zero mean and unit variance (the
/// paper's Y matrix, §4.2). Constant columns map to all-zeros.
Matrix standardize(const Matrix &X);

/// The result of a principal component analysis.
struct PcaResult {
  /// Loadings: Cols x Cols; loading of metric i on PC j at (i, j).
  Matrix Loadings;
  /// Scores: Rows x Cols; projection of each observation on the PCs.
  Matrix Scores;
  /// Eigenvalues (variance per component), descending.
  std::vector<double> Eigenvalues;

  /// Fraction of total variance explained by the first \p K components.
  double varianceExplained(size_t K) const;
};

/// PCA via eigendecomposition (cyclic Jacobi) of the covariance matrix of
/// \p Y (standardize first, per the paper's methodology). Components are
/// ordered by decreasing eigenvalue; loading signs are normalized so the
/// largest-magnitude loading of each component is positive.
PcaResult pca(const Matrix &Y);

/// Welch's two-sample t-test.
struct WelchResult {
  double TStatistic = 0.0;
  double DegreesOfFreedom = 0.0;
  double PValue = 1.0; ///< two-sided
};

/// Runs Welch's unequal-variance t-test on two samples (each n >= 2).
WelchResult welchTTest(const std::vector<double> &A,
                       const std::vector<double> &B);

/// Winsorizes: clamps values below the \p Fraction quantile and above the
/// (1 - \p Fraction) quantile to those quantiles (paper supplemental §C:
/// "Winsorized filtering is used to remove outliers").
std::vector<double> winsorize(std::vector<double> Values, double Fraction);

/// Student-t two-sided critical value approximation for the given
/// significance level (via the incomplete beta function).
double tCriticalValue(double DegreesOfFreedom, double Alpha);

/// A (lo, hi) confidence interval for the mean of \p Values at level
/// 1 - \p Alpha, using the t distribution.
std::pair<double, double> meanConfidenceInterval(
    const std::vector<double> &Values, double Alpha);

} // namespace stats
} // namespace ren

#endif // REN_STATS_STATS_H
