//===- trace/TraceSession.cpp ---------------------------------------------==//

#include "trace/TraceSession.h"

#include "support/Output.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>

using namespace ren;
using namespace ren::trace;

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

namespace {

unsigned log2Bucket(uint64_t Ns) {
  unsigned B = 0;
  while (Ns > 1 && B + 1 < 40) {
    Ns >>= 1;
    ++B;
  }
  return B;
}

} // namespace

void LatencyHistogram::add(uint64_t Ns) {
  ++Buckets[log2Bucket(Ns)];
  ++Count;
  TotalNs += Ns;
  MaxNs = std::max(MaxNs, Ns);
}

uint64_t LatencyHistogram::quantileNanos(double Q) const {
  if (Count == 0)
    return 0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Rank >= Count)
    Rank = Count - 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen > Rank)
      return uint64_t(1) << (I + 1); // upper edge of bucket I
  }
  return MaxNs;
}

//===----------------------------------------------------------------------===//
// Profile aggregation
//===----------------------------------------------------------------------===//

TraceProfile ren::trace::buildProfile(const std::vector<TraceEvent> &Events,
                                      uint64_t Dropped) {
  TraceProfile P;
  P.Events = Events.size();
  P.Dropped = Dropped;

  std::map<uint64_t, MonitorContention> Monitors;
  std::map<uint32_t, WorkerActivity> Workers;

  auto Worker = [&Workers](uint32_t Tid) -> WorkerActivity & {
    WorkerActivity &W = Workers[Tid];
    W.Tid = Tid;
    return W;
  };

  for (const TraceEvent &E : Events) {
    ++P.KindCounts[static_cast<unsigned>(E.Kind)];
    switch (E.Kind) {
    case EventKind::MonitorContended: {
      MonitorContention &M = Monitors[E.A];
      M.Monitor = E.A;
      ++M.Contended;
      M.TotalBlockedNs += E.Dur;
      M.MaxBlockedNs = std::max(M.MaxBlockedNs, E.Dur);
      P.MonitorBlocked.add(E.Dur);
      break;
    }
    case EventKind::MonitorInflate:
      ++P.MonitorInflations;
      break;
    case EventKind::Park:
      P.ParkLatency.add(E.Dur);
      break;
    case EventKind::CasFail:
      ++P.CasFailures;
      break;
    case EventKind::Bootstrap:
      ++P.Bootstraps;
      break;
    case EventKind::MhSimplify:
      ++P.MhSimplifies;
      break;
    case EventKind::FjFork:
      ++Worker(E.Tid).Forks;
      break;
    case EventKind::FjExternal:
      ++Worker(E.Tid).Overflows;
      break;
    case EventKind::FjSteal:
      ++Worker(E.Tid).Steals;
      break;
    case EventKind::FjIdle: {
      WorkerActivity &W = Worker(E.Tid);
      ++W.IdleParks;
      W.IdleNs += E.Dur;
      break;
    }
    case EventKind::TaskRun:
      ++P.TaskRuns;
      P.TaskQueueNsTotal += E.A;
      P.TaskQueueNsMax = std::max(P.TaskQueueNsMax, E.A);
      break;
    case EventKind::HeapReclaim:
      P.GcPause.add(E.Dur);
      break;
    default:
      break;
    }
  }

  // Steal events carry the victim worker index in B; we can only attribute
  // "stolen from" when the victim's own fork events identify its tid —
  // attribute by scanning steals a second time against the thief-reported
  // victim index. Victim indexes are pool-local, so this attribution is a
  // per-index tally rather than a per-thread one; expose it on the thief's
  // row (tasks this thread took from others) and leave Stolen keyed by
  // index-as-tid when that index maps to a registered row.
  for (const TraceEvent &E : Events)
    if (E.Kind == EventKind::FjSteal) {
      auto It = Workers.find(static_cast<uint32_t>(E.B));
      if (It != Workers.end())
        ++It->second.Stolen;
    }

  for (auto &[Addr, M] : Monitors)
    P.ContendedMonitors.push_back(M);
  std::sort(P.ContendedMonitors.begin(), P.ContendedMonitors.end(),
            [](const MonitorContention &L, const MonitorContention &R) {
              return L.TotalBlockedNs > R.TotalBlockedNs;
            });
  for (auto &[Tid, W] : Workers)
    P.Workers.push_back(W);
  return P;
}

std::string TraceProfile::summary() const {
  std::string Out;
  char Line[256];
  auto Emit = [&Out, &Line] { Out += Line; };

  std::snprintf(Line, sizeof(Line),
                "trace profile: %llu events (%llu dropped)\n",
                static_cast<unsigned long long>(Events),
                static_cast<unsigned long long>(Dropped));
  Emit();

  std::snprintf(Line, sizeof(Line),
                "  monitors: %llu uncontended, %llu contended acquires, "
                "%llu inflations\n",
                static_cast<unsigned long long>(
                    KindCounts[static_cast<unsigned>(
                        EventKind::MonitorAcquire)]),
                static_cast<unsigned long long>(
                    KindCounts[static_cast<unsigned>(
                        EventKind::MonitorContended)]),
                static_cast<unsigned long long>(MonitorInflations));
  Emit();

  size_t Top = std::min<size_t>(ContendedMonitors.size(), 5);
  for (size_t I = 0; I < Top; ++I) {
    const MonitorContention &M = ContendedMonitors[I];
    std::snprintf(Line, sizeof(Line),
                  "    #%zu monitor %#llx: %llu contended, blocked total "
                  "%.3f ms, max %.3f ms\n",
                  I + 1, static_cast<unsigned long long>(M.Monitor),
                  static_cast<unsigned long long>(M.Contended),
                  static_cast<double>(M.TotalBlockedNs) / 1e6,
                  static_cast<double>(M.MaxBlockedNs) / 1e6);
    Emit();
  }

  std::snprintf(Line, sizeof(Line),
                "  park: %llu parks, total %.3f ms, p50 ~%.3f ms, p99 "
                "~%.3f ms, max %.3f ms\n",
                static_cast<unsigned long long>(ParkLatency.Count),
                static_cast<double>(ParkLatency.TotalNs) / 1e6,
                static_cast<double>(ParkLatency.quantileNanos(0.5)) / 1e6,
                static_cast<double>(ParkLatency.quantileNanos(0.99)) / 1e6,
                static_cast<double>(ParkLatency.MaxNs) / 1e6);
  Emit();

  if (GcPause.Count > 0) {
    std::snprintf(Line, sizeof(Line),
                  "  heap: %llu reclaim passes, total %.3f ms, p99 ~%.3f "
                  "ms, max %.3f ms\n",
                  static_cast<unsigned long long>(GcPause.Count),
                  static_cast<double>(GcPause.TotalNs) / 1e6,
                  static_cast<double>(GcPause.quantileNanos(0.99)) / 1e6,
                  static_cast<double>(GcPause.MaxNs) / 1e6);
    Emit();
  }

  std::snprintf(Line, sizeof(Line),
                "  atomics: %llu CAS failures; idynamic: %llu bootstraps, "
                "%llu handles simplified\n",
                static_cast<unsigned long long>(CasFailures),
                static_cast<unsigned long long>(Bootstraps),
                static_cast<unsigned long long>(MhSimplifies));
  Emit();

  if (TaskRuns > 0) {
    std::snprintf(
        Line, sizeof(Line),
        "  executor: %llu tasks, queue latency mean %.3f ms, max %.3f ms\n",
        static_cast<unsigned long long>(TaskRuns),
        static_cast<double>(TaskQueueNsTotal) /
            static_cast<double>(TaskRuns) / 1e6,
        static_cast<double>(TaskQueueNsMax) / 1e6);
    Emit();
  }

  for (const WorkerActivity &W : Workers) {
    std::snprintf(Line, sizeof(Line),
                  "  worker tid %u: %llu forks, %llu steals, %llu stolen-"
                  "from, %llu overflows, %llu idle parks (%.3f ms idle)\n",
                  W.Tid, static_cast<unsigned long long>(W.Forks),
                  static_cast<unsigned long long>(W.Steals),
                  static_cast<unsigned long long>(W.Stolen),
                  static_cast<unsigned long long>(W.Overflows),
                  static_cast<unsigned long long>(W.IdleParks),
                  static_cast<double>(W.IdleNs) / 1e6);
    Emit();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Chrome trace_event export
//===----------------------------------------------------------------------===//

std::string ren::trace::toChromeJson(const std::vector<TraceEvent> &Events) {
  std::vector<const TraceEvent *> Sorted;
  Sorted.reserve(Events.size());
  for (const TraceEvent &E : Events)
    Sorted.push_back(&E);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const TraceEvent *L, const TraceEvent *R) {
                     return L->Ts < R->Ts;
                   });

  JsonWriter W;
  W.beginObject();
  W.key("displayTimeUnit");
  W.value("ms");
  W.key("traceEvents");
  W.beginArray();
  for (const TraceEvent *E : Sorted) {
    W.beginObject();
    W.key("name");
    W.value(E->Name && E->Name[0] ? E->Name : eventKindName(E->Kind));
    W.key("cat");
    W.value(eventKindName(E->Kind));
    W.key("ph");
    char Ph[2] = {static_cast<char>(E->Ph), 0};
    W.value(Ph);
    W.key("ts");
    W.value(static_cast<double>(E->Ts) / 1e3); // microseconds
    if (E->Ph == Phase::Complete) {
      W.key("dur");
      W.value(static_cast<double>(E->Dur) / 1e3);
    }
    W.key("pid");
    W.value(static_cast<uint64_t>(1));
    W.key("tid");
    W.value(static_cast<uint64_t>(E->Tid));
    W.key("args");
    W.beginObject();
    W.key("a");
    W.value(E->A);
    W.key("b");
    W.value(E->B);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
// TraceSession
//===----------------------------------------------------------------------===//

namespace {

/// Guards against overlapping sessions (their drains would steal each
/// other's events).
std::atomic<bool> GSessionActive{false};

} // namespace

TraceSession::~TraceSession() {
  if (Active)
    stop();
}

void TraceSession::start() {
  assert(!Active && "session already started");
  bool Expected = false;
  bool Won = GSessionActive.compare_exchange_strong(Expected, true);
  assert(Won && "another TraceSession is active");
  (void)Won;
  Events.clear();
  Dropped = 0;
  TraceRegistry::get().discardAll();
  Active = true;
  setEnabled(true);
}

void TraceSession::drain() {
  assert(Active && "drain outside start/stop");
  Dropped += TraceRegistry::get().drainAll(Events);
}

void TraceSession::stop() {
  if (!Active)
    return;
  setEnabled(false);
  Dropped += TraceRegistry::get().drainAll(Events);
  Active = false;
  GSessionActive.store(false);
}

bool TraceSession::writeChromeJson(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Json = chromeJson();
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  return std::fclose(F) == 0 && Ok;
}
