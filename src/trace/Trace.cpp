//===- trace/Trace.cpp ----------------------------------------------------==//

#include "trace/Trace.h"

#include "support/Clock.h"

#include <cassert>
#include <memory>
#include <mutex>
#include <unordered_set>

using namespace ren;
using namespace ren::trace;

std::atomic<bool> ren::trace::detail::GTraceEnabled{false};

const char *ren::trace::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::MonitorAcquire:
    return "monitor.acquire";
  case EventKind::MonitorContended:
    return "monitor.contended";
  case EventKind::MonitorWait:
    return "monitor.wait";
  case EventKind::MonitorNotify:
    return "monitor.notify";
  case EventKind::MonitorInflate:
    return "monitor.inflate";
  case EventKind::Park:
    return "park";
  case EventKind::Unpark:
    return "unpark";
  case EventKind::CasFail:
    return "cas.fail";
  case EventKind::Bootstrap:
    return "idynamic.bootstrap";
  case EventKind::MhSimplify:
    return "mh.simplify";
  case EventKind::FjFork:
    return "fj.fork";
  case EventKind::FjExternal:
    return "fj.external";
  case EventKind::FjSteal:
    return "fj.steal";
  case EventKind::FjIdle:
    return "fj.idle";
  case EventKind::TaskRun:
    return "pool.task";
  case EventKind::Iteration:
    return "iteration";
  case EventKind::Run:
    return "run";
  case EventKind::HeapReclaim:
    return "heap.reclaim";
  case EventKind::User:
    return "user";
  }
  assert(false && "unknown event kind");
  return "?";
}

uint64_t ren::trace::nowNanos() { return wallNanos(); }

void ren::trace::setEnabled(bool On) {
  detail::GTraceEnabled.store(On, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// TraceBuffer: seqlock-published single-writer ring.
//===----------------------------------------------------------------------===//

void TraceBuffer::push(EventKind K, Phase P, const char *Name, uint64_t Ts,
                       uint64_t Dur, uint64_t A, uint64_t B) {
  uint64_t I = Head.load(std::memory_order_relaxed);
  Slot &S = Slots[I & (kCapacity - 1)];
  // Invalidate, then publish the payload behind a release fence so a
  // concurrent reader that observes any new payload field is guaranteed to
  // also observe Seq != oldIndex+1 and reject the slot (seqlock protocol).
  S.Seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  S.Ts.store(Ts, std::memory_order_relaxed);
  S.Dur.store(Dur, std::memory_order_relaxed);
  S.A.store(A, std::memory_order_relaxed);
  S.B.store(B, std::memory_order_relaxed);
  S.Name.store(Name, std::memory_order_relaxed);
  S.KindPhase.store(static_cast<uint16_t>(static_cast<uint16_t>(K) << 8 |
                                          static_cast<uint8_t>(P)),
                    std::memory_order_relaxed);
  S.Seq.store(I + 1, std::memory_order_release);
  Head.store(I + 1, std::memory_order_release);
}

uint64_t TraceBuffer::drainInto(std::vector<TraceEvent> &Out) {
  uint64_t H = Head.load(std::memory_order_acquire);
  uint64_t Begin = Tail;
  uint64_t Dropped = 0;
  if (H - Begin > kCapacity) {
    // The writer lapped the cursor: everything older than one capacity has
    // been overwritten.
    Dropped += (H - kCapacity) - Begin;
    Begin = H - kCapacity;
  }
  for (uint64_t I = Begin; I < H; ++I) {
    Slot &S = Slots[I & (kCapacity - 1)];
    uint64_t Seq1 = S.Seq.load(std::memory_order_acquire);
    if (Seq1 != I + 1) {
      // Overwritten (or mid-overwrite) by a lapping writer.
      ++Dropped;
      continue;
    }
    TraceEvent E;
    E.Ts = S.Ts.load(std::memory_order_relaxed);
    E.Dur = S.Dur.load(std::memory_order_relaxed);
    E.A = S.A.load(std::memory_order_relaxed);
    E.B = S.B.load(std::memory_order_relaxed);
    E.Name = S.Name.load(std::memory_order_relaxed);
    uint16_t KP = S.KindPhase.load(std::memory_order_relaxed);
    E.Kind = static_cast<EventKind>(KP >> 8);
    E.Ph = static_cast<Phase>(static_cast<char>(KP & 0xff));
    E.Tid = Tid;
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t Seq2 = S.Seq.load(std::memory_order_relaxed);
    if (Seq2 != I + 1) {
      // Torn: the writer re-entered this slot while we copied it.
      ++Dropped;
      continue;
    }
    Out.push_back(E);
  }
  Tail = H;
  return Dropped;
}

void TraceBuffer::discard() { Tail = Head.load(std::memory_order_acquire); }

//===----------------------------------------------------------------------===//
// Registry: per-thread buffer registration and epoch-based reclamation.
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t kNeverEmpty = ~uint64_t(0);

/// A registered buffer plus its reclamation bookkeeping: the epoch in which
/// a retired buffer was first observed fully drained (kNeverEmpty until
/// then). It is freed only in a *later* epoch, so a drain that raced the
/// retirement can never touch freed memory.
struct BufferEntry {
  std::shared_ptr<TraceBuffer> Buffer;
  uint64_t EmptySinceEpoch = kNeverEmpty;
};

/// Internal registry state; leaked (never destroyed) so TLS destructors of
/// late-exiting threads can still reach it, mirroring MetricsRegistry.
struct RegistryState {
  std::mutex Lock;
  std::vector<BufferEntry> Buffers;
  uint64_t Epoch = 0;
  uint32_t NextTid = 1;
};

RegistryState &state() {
  static RegistryState *S = new RegistryState();
  return *S;
}

/// RAII TLS holder: keeps the shared buffer alive for the thread's
/// lifetime and flags it retired on thread exit (events already published
/// survive and are drained later; the registry reclaims the buffer once it
/// has been empty for a full epoch).
struct ThreadBufferHolder {
  std::shared_ptr<TraceBuffer> Buffer;

  ThreadBufferHolder() {
    RegistryState &S = state();
    std::lock_guard<std::mutex> Guard(S.Lock);
    Buffer = std::make_shared<TraceBuffer>(S.NextTid++);
    S.Buffers.push_back(BufferEntry{Buffer, kNeverEmpty});
  }

  ~ThreadBufferHolder() { Buffer->retire(); }
};

TraceBuffer &localBuffer() {
  thread_local ThreadBufferHolder Holder;
  return *Holder.Buffer;
}

} // namespace

void ren::trace::detail::emitAlways(EventKind K, Phase P, const char *Name,
                                    uint64_t Ts, uint64_t Dur, uint64_t A,
                                    uint64_t B) {
  if (Ts == 0)
    Ts = nowNanos();
  localBuffer().push(K, P, Name, Ts, Dur, A, B);
}

TraceRegistry &TraceRegistry::get() {
  static TraceRegistry *R = new TraceRegistry();
  return *R;
}

TraceBuffer &TraceRegistry::threadBuffer() { return localBuffer(); }

uint64_t TraceRegistry::drainAll(std::vector<TraceEvent> &Out) {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  ++S.Epoch;
  uint64_t Dropped = 0;
  for (size_t I = 0; I < S.Buffers.size();) {
    BufferEntry &E = S.Buffers[I];
    Dropped += E.Buffer->drainInto(Out);
    if (E.Buffer->retired() && E.Buffer->drained()) {
      if (E.EmptySinceEpoch == kNeverEmpty) {
        E.EmptySinceEpoch = S.Epoch;
      } else if (S.Epoch > E.EmptySinceEpoch) {
        // Epoch-based reclamation: retired, drained, and a full epoch has
        // passed since — no drain or writer can still reference it.
        S.Buffers.erase(S.Buffers.begin() + static_cast<long>(I));
        continue;
      }
    } else {
      E.EmptySinceEpoch = kNeverEmpty;
    }
    ++I;
  }
  return Dropped;
}

void TraceRegistry::discardAll() {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  for (BufferEntry &E : S.Buffers)
    E.Buffer->discard();
}

size_t TraceRegistry::bufferCount() {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  return S.Buffers.size();
}

uint64_t TraceRegistry::epoch() {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  return S.Epoch;
}

//===----------------------------------------------------------------------===//
// Name interning.
//===----------------------------------------------------------------------===//

namespace {

struct InternPool {
  std::mutex Lock;
  std::unordered_set<std::string> Names;
};

InternPool &internPool() {
  static InternPool *P = new InternPool();
  return *P;
}

} // namespace

const char *ren::trace::internName(const std::string &Name) {
  InternPool &P = internPool();
  std::lock_guard<std::mutex> Guard(P.Lock);
  // unordered_set nodes are address-stable across rehashes.
  return P.Names.insert(Name).first->c_str();
}
