//===- trace/TraceSession.h - Collection, export, profiling ----*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceSession: the collection side of ren::trace. A session enables
/// recording, periodically (or finally) drains every per-thread buffer,
/// and renders the result two ways:
///
///  - Chrome `trace_event` JSON, loadable in chrome://tracing or Perfetto,
///    for timeline inspection of contention windows and park storms;
///  - a compact TraceProfile: the top contended monitors (count / total /
///    max blocked time), a park-latency log2 histogram, per-worker
///    fork/steal/overflow/idle counts and executor task queue latencies —
///    the per-benchmark behavioural detail the companion evaluation paper
///    (arXiv:1903.10267) reads off DiSL traces.
///
//===----------------------------------------------------------------------===//

#ifndef REN_TRACE_TRACESESSION_H
#define REN_TRACE_TRACESESSION_H

#include "trace/Trace.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ren {
namespace trace {

/// Aggregate contention statistics for one monitor (keyed by address).
struct MonitorContention {
  uint64_t Monitor = 0;        ///< Monitor address (opaque id).
  uint64_t Contended = 0;      ///< Contended acquisitions.
  uint64_t TotalBlockedNs = 0; ///< Sum of blocked durations.
  uint64_t MaxBlockedNs = 0;   ///< Worst single blocked duration.
};

/// A log2-bucketed latency histogram (bucket i counts durations in
/// [2^i, 2^(i+1)) nanoseconds; bucket 0 also absorbs 0-1ns).
struct LatencyHistogram {
  std::array<uint64_t, 40> Buckets = {};
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t MaxNs = 0;

  void add(uint64_t Ns);

  /// Approximate quantile (0..1) from the bucket boundaries; returns the
  /// upper edge of the bucket containing the quantile, 0 when empty.
  uint64_t quantileNanos(double Q) const;
};

/// Per-thread fork/join and parking activity.
struct WorkerActivity {
  uint32_t Tid = 0;
  uint64_t Forks = 0;     ///< Tasks pushed onto the local deque.
  uint64_t Steals = 0;    ///< Successful steals performed by this thread.
  uint64_t Stolen = 0;    ///< Tasks stolen *from* this thread's deque.
  uint64_t Overflows = 0; ///< Tasks it pushed to the external queue.
  uint64_t IdleParks = 0; ///< Idle park episodes.
  uint64_t IdleNs = 0;    ///< Total idle-parked time.
};

/// The compact aggregate profile distilled from a drained event stream.
struct TraceProfile {
  std::vector<MonitorContention> ContendedMonitors; ///< Sorted, worst first.
  LatencyHistogram ParkLatency;
  LatencyHistogram MonitorBlocked;
  LatencyHistogram GcPause; ///< Managed-heap reclaim pass durations.
  std::vector<WorkerActivity> Workers; ///< Sorted by Tid.
  uint64_t MonitorInflations = 0; ///< Thin -> fat monitor transitions.
  uint64_t CasFailures = 0;
  uint64_t Bootstraps = 0;
  uint64_t MhSimplifies = 0; ///< Handles that took the direct-invoke path.
  uint64_t TaskRuns = 0;
  uint64_t TaskQueueNsTotal = 0;
  uint64_t TaskQueueNsMax = 0;
  std::array<uint64_t, kNumEventKinds> KindCounts = {};
  uint64_t Events = 0;
  uint64_t Dropped = 0;

  /// Human-readable multi-line summary (the --trace-summary output).
  std::string summary() const;
};

/// Builds the aggregate profile from a drained event stream.
TraceProfile buildProfile(const std::vector<TraceEvent> &Events,
                          uint64_t Dropped);

/// Renders events as a Chrome trace_event JSON document (object form, with
/// a "traceEvents" array sorted by timestamp). Timestamps are microseconds
/// as Chrome expects; sub-microsecond precision is kept as fractions.
std::string toChromeJson(const std::vector<TraceEvent> &Events);

/// One tracing window: start() enables recording (discarding stale events),
/// drain() incrementally collects, stop() disables and does a final drain.
/// At most one session may be active at a time.
class TraceSession {
public:
  TraceSession() = default;
  ~TraceSession();

  TraceSession(const TraceSession &) = delete;
  TraceSession &operator=(const TraceSession &) = delete;

  /// Discards previously published events and enables recording.
  void start();

  /// Collects newly published events from every thread buffer. Callable
  /// while writers are active.
  void drain();

  /// Disables recording and performs a final drain. Idempotent.
  void stop();

  bool active() const { return Active; }

  /// Events drained so far (sorted only on export).
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Records lost to ring laps or torn reads since start().
  uint64_t dropped() const { return Dropped; }

  /// Chrome trace JSON of everything drained so far.
  std::string chromeJson() const { return toChromeJson(Events); }

  /// Writes chromeJson() to \p Path. \returns false on I/O failure.
  bool writeChromeJson(const std::string &Path) const;

  /// Aggregate profile of everything drained so far.
  TraceProfile profile() const { return buildProfile(Events, Dropped); }

private:
  std::vector<TraceEvent> Events;
  uint64_t Dropped = 0;
  bool Active = false;
};

} // namespace trace
} // namespace ren

#endif // REN_TRACE_TRACESESSION_H
