//===- trace/Trace.h - Low-overhead per-thread event tracing ----*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead event tracer for the instrumented runtime substrates.
///
/// The paper's methodology rests on *observing* what the concurrency
/// primitives do; `ren::metrics` reproduces the aggregate counters but
/// discards the *when* and *who*. This layer records individual events —
/// contended monitor acquisitions with their blocked duration, park/unpark
/// latencies, CAS failures, fork/join steals, task queue latencies,
/// harness iteration boundaries — into per-thread lock-free ring buffers,
/// for export as Chrome `trace_event` JSON and contention profiles (see
/// trace/TraceSession.h).
///
/// Design constraints, in priority order:
///
///  1. *Disabled cost is one relaxed atomic load.* Every instrumentation
///     site guards on \c trace::enabled(); when tracing is off the whole
///     site is a relaxed load and a predictable branch — no timestamp, no
///     allocation, no store. A compile-time kill switch
///     (\c -DREN_TRACE_DISABLED, cmake option \c REN_TRACE_DISABLE) folds
///     the guard to \c false and lets the compiler delete the sites
///     entirely.
///  2. *Enabled recording never blocks and never allocates.* Each thread
///     owns a fixed-size ring buffer (single writer, no CAS on the hot
///     path); when the buffer laps an un-drained slot the old event is
///     overwritten and counted as dropped, never stalling the traced
///     thread. Event names are static strings (or interned once via
///     \c internName on cold paths).
///  3. *Draining is race-free, even concurrent with writers.* Slots are
///     seqlock-published (all-atomic fields, so the protocol is also
///     TSan-clean): the drain side validates each slot's sequence number
///     before and after copying it and discards torn reads as dropped.
///     Retired buffers of exited threads are kept registered and reclaimed
///     epoch-wise: a dead buffer is freed only one full drain epoch after
///     the drain that emptied it, so no drain can race a free.
///
//===----------------------------------------------------------------------===//

#ifndef REN_TRACE_TRACE_H
#define REN_TRACE_TRACE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ren {
namespace trace {

/// Compile-time kill switch: building with -DREN_TRACE_DISABLED removes
/// every instrumentation site at compile time.
#ifdef REN_TRACE_DISABLED
inline constexpr bool kTraceCompiled = false;
#else
inline constexpr bool kTraceCompiled = true;
#endif

/// What kind of runtime event a trace record describes.
enum class EventKind : uint8_t {
  MonitorAcquire,   ///< Uncontended monitor entry. A = monitor address.
  MonitorContended, ///< Contended entry; Dur = blocked ns. A = address.
  MonitorWait,      ///< Object.wait analogue; Dur = waited ns. A = address.
  MonitorNotify,    ///< notifyOne/notifyAll. A = address, B = all ? 1 : 0.
  MonitorInflate,   ///< Monitor entry queue went from empty to populated
                    ///< (thin -> fat transition). A = address.
  Park,             ///< Parker::park(For); Dur = parked ns. A = parker.
  Unpark,           ///< Parker::unpark. A = parker address.
  CasFail,          ///< A failed CAS (one retry-loop iteration). A = cell.
  Bootstrap,        ///< invokedynamic bootstrap; Dur = linkage ns. A = site.
  MhSimplify,       ///< Method handle transitioned to the direct-invoke
                    ///< path. A = handle, B = stored inline ? 1 : 0.
  FjFork,           ///< Task pushed onto a worker deque. A = worker index.
  FjExternal,       ///< Task overflowed to the external queue.
  FjSteal,          ///< Successful steal. A = thief index, B = victim index.
  FjIdle,           ///< Worker idle-parked; Dur = idle ns. A = worker index.
  TaskRun,          ///< Executor task; Dur = run ns, A = queue-latency ns.
  Iteration,        ///< Harness iteration span. A = index, B = warmup.
  Run,              ///< Harness whole-benchmark span.
  HeapReclaim,      ///< Managed-heap reclaim pass ("GC pause"); Dur =
                    ///< pause ns, A = slabs recycled, B = Rc destroyed.
  User,             ///< Free-form event for tests and ad-hoc probes.
};

/// Number of EventKind values (for histogram arrays).
inline constexpr unsigned kNumEventKinds = 19;

/// Short lower-case kind name ("monitor.acquire", "fj.steal", ...).
const char *eventKindName(EventKind K);

/// Converts an object's address into the opaque 64-bit id trace events
/// carry in their A/B arguments: one well-defined uintptr_t -> uint64_t
/// conversion shared by every instrumentation site.
inline uint64_t objectId(const void *O) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(O));
}

/// Chrome trace_event phase of a record.
enum class Phase : char {
  Instant = 'i',  ///< A point event.
  Complete = 'X', ///< A span with an explicit duration.
  Begin = 'B',    ///< Opens a span on the emitting thread.
  End = 'E',      ///< Closes the most recent open span on the thread.
};

/// One drained trace record.
struct TraceEvent {
  uint64_t Ts = 0;          ///< Wall-clock nanoseconds (event start).
  uint64_t Dur = 0;         ///< Span duration in nanoseconds (Complete).
  uint64_t A = 0;           ///< Kind-specific argument (see EventKind).
  uint64_t B = 0;           ///< Second kind-specific argument.
  const char *Name = "";    ///< Static or interned display name.
  EventKind Kind = EventKind::User;
  Phase Ph = Phase::Instant;
  uint32_t Tid = 0;         ///< Small sequential trace thread id.
};

/// A fixed-capacity single-writer ring buffer of trace records.
///
/// The owning thread appends with \c push; any thread may \c drainInto
/// under the registry lock. Publication is a per-slot seqlock over relaxed
/// atomic fields: \c push stores Seq=0, a release fence, the payload, then
/// Seq=index+1 (release); the reader validates Seq==index+1 before *and*
/// after copying the payload (with an acquire fence in between) and counts
/// mismatches — slots overwritten by a lapping writer mid-read — as
/// dropped rather than surfacing a torn record.
class TraceBuffer {
public:
  /// Slots per thread. 8192 events x 64B = 512KB per traced thread.
  static constexpr size_t kCapacity = 1 << 13;

  explicit TraceBuffer(uint32_t Tid) : Tid(Tid) {}
  TraceBuffer(const TraceBuffer &) = delete;
  TraceBuffer &operator=(const TraceBuffer &) = delete;

  /// The small sequential id of the owning thread.
  uint32_t tid() const { return Tid; }

  /// Appends one record. Must be called only by the owning thread. Never
  /// blocks, never allocates; laps overwrite the oldest un-drained slot.
  void push(EventKind K, Phase P, const char *Name, uint64_t Ts,
            uint64_t Dur, uint64_t A, uint64_t B);

  /// Copies every record published since the last drain into \p Out and
  /// advances the drain cursor. \returns the number of records lost since
  /// the last drain (overwritten by laps or torn mid-read). Must be called
  /// under the registry's drain lock (one drainer at a time); safe to run
  /// concurrently with the owner's \c push.
  uint64_t drainInto(std::vector<TraceEvent> &Out);

  /// Fast-forwards the drain cursor past everything published so far,
  /// discarding it. Registry-lock discipline as \c drainInto.
  void discard();

  /// True once the owning thread has exited.
  bool retired() const { return Retired.load(std::memory_order_acquire); }

  /// Marks the owning thread as exited (called from its TLS destructor).
  void retire() { Retired.store(true, std::memory_order_release); }

  /// True if every published record has been drained or discarded.
  bool drained() const {
    return Tail == Head.load(std::memory_order_acquire);
  }

private:
  /// All-atomic slot so concurrent drain/overwrite is TSan-clean; the Seq
  /// field carries the event's global index + 1 (0 = mid-write).
  struct Slot {
    std::atomic<uint64_t> Seq{0};
    std::atomic<uint64_t> Ts{0};
    std::atomic<uint64_t> Dur{0};
    std::atomic<uint64_t> A{0};
    std::atomic<uint64_t> B{0};
    std::atomic<const char *> Name{nullptr};
    std::atomic<uint16_t> KindPhase{0};
  };

  std::array<Slot, kCapacity> Slots;
  std::atomic<uint64_t> Head{0}; ///< Next write index (monotonic).
  uint64_t Tail = 0;             ///< Drain cursor (registry lock).
  std::atomic<bool> Retired{false};
  const uint32_t Tid;
};

namespace detail {

/// The runtime master switch (the REN_TRACE_ENABLED guard): instrumentation
/// sites poll it with one relaxed load. Mutated only via trace::setEnabled.
extern std::atomic<bool> GTraceEnabled;

/// Slow path of emit(): timestamps, finds the thread's buffer, pushes.
void emitAlways(EventKind K, Phase P, const char *Name, uint64_t Ts,
                uint64_t Dur, uint64_t A, uint64_t B);

} // namespace detail

/// True if tracing is compiled in and currently enabled. This is the whole
/// disabled-path cost: a single relaxed atomic load.
inline bool enabled() {
  if (!kTraceCompiled)
    return false;
  return detail::GTraceEnabled.load(std::memory_order_relaxed);
}

/// Turns event recording on or off (normally driven by TraceSession).
void setEnabled(bool On);

/// The tracer's time source: monotonic wall-clock nanoseconds, shared with
/// the harness so iteration spans and IterationRecord timings align.
uint64_t nowNanos();

/// Records an instant event (if tracing is enabled).
inline void instant(EventKind K, const char *Name, uint64_t A = 0,
                    uint64_t B = 0) {
  if (enabled())
    detail::emitAlways(K, Phase::Instant, Name, 0, 0, A, B);
}

/// Records a complete span that started at \p StartNs and lasted \p DurNs
/// (if tracing is enabled).
inline void span(EventKind K, const char *Name, uint64_t StartNs,
                 uint64_t DurNs, uint64_t A = 0, uint64_t B = 0) {
  if (enabled())
    detail::emitAlways(K, Phase::Complete, Name, StartNs, DurNs, A, B);
}

/// Records a Begin/End marker (chrome 'B'/'E'); pairs must balance on the
/// emitting thread.
inline void mark(EventKind K, Phase P, const char *Name, uint64_t A = 0,
                 uint64_t B = 0) {
  if (enabled())
    detail::emitAlways(K, P, Name, 0, 0, A, B);
}

/// Interns \p Name into a process-lifetime string pool and returns a
/// stable pointer usable as a TraceEvent name. Allocates on first sight of
/// a name — call only on cold paths (e.g. once per benchmark run).
const char *internName(const std::string &Name);

/// The process-global registry of per-thread trace buffers.
class TraceRegistry {
public:
  static TraceRegistry &get();

  /// The calling thread's buffer, registering it on first use.
  TraceBuffer &threadBuffer();

  /// Drains every registered buffer (live and retired) into \p Out.
  /// \returns total records dropped since the previous drain. Advances the
  /// reclamation epoch: retired buffers emptied in a *previous* epoch are
  /// freed here.
  uint64_t drainAll(std::vector<TraceEvent> &Out);

  /// Discards everything published so far in every buffer.
  void discardAll();

  /// Buffers currently registered (live + not-yet-reclaimed retired).
  size_t bufferCount();

  /// The current reclamation epoch (bumped by every drainAll).
  uint64_t epoch();

private:
  TraceRegistry() = default;
};

} // namespace trace
} // namespace ren

#endif // REN_TRACE_TRACE_H
