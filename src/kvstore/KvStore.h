//===- kvstore/KvStore.h - In-memory transactional store --------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory key-value store with striped locking, conservative
/// two-phase-locking transactions and a small property-graph layer — the
/// substrate of db-shootout (query processing, data structures) and
/// neo4j-analytics (analytical queries and transactions).
///
/// Concurrency structure mirrors the Java in-memory databases the paper
/// benchmarks: every stripe access is a synchronized section
/// (Metric::Synch), so db-shootout and neo4j-analytics are the
/// synchronization-heavy query workloads of Table 7.
///
//===----------------------------------------------------------------------===//

#ifndef REN_KVSTORE_KVSTORE_H
#define REN_KVSTORE_KVSTORE_H

#include "runtime/Alloc.h"
#include "runtime/Monitor.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ren {
namespace kvstore {

class SecondaryIndex;

/// A hash table sharded into independently locked stripes.
class Table {
public:
  /// Creates a table with \p Stripes lock stripes (rounded up to a power
  /// of two).
  explicit Table(unsigned Stripes = 16);

  /// Inserts or updates; \returns true if the key was new.
  bool put(uint64_t Key, std::string Value);

  /// Point lookup.
  std::optional<std::string> get(uint64_t Key);

  /// Removes a key. \returns true if it was present.
  bool remove(uint64_t Key);

  /// Number of stored keys.
  size_t size();

  /// Full scan: applies \p Fn to every entry, one stripe at a time (each
  /// stripe is visited under its lock).
  void scan(const std::function<void(uint64_t, const std::string &)> &Fn);

  unsigned stripeCount() const { return static_cast<unsigned>(Shards.size()); }

  /// Attaches a value index; subsequent puts/removes maintain it. Existing
  /// rows are indexed immediately. The index must outlive the table.
  void attachIndex(SecondaryIndex &Index);

private:
  friend class Database;
  SecondaryIndex *AttachedIndex = nullptr;

  struct Stripe {
    runtime::Monitor Lock;
    std::unordered_map<uint64_t, std::string> Map;
  };

  Stripe &stripeFor(uint64_t Key) {
    return *Shards[Key & (Shards.size() - 1)];
  }

  std::vector<std::unique_ptr<Stripe>> Shards;
};

/// A secondary index over a Table: value -> set of keys, maintained by
/// the table on every put/remove once attached (Table::attachIndex).
class SecondaryIndex {
public:
  /// Keys currently holding exactly \p Value.
  std::vector<uint64_t> lookup(const std::string &Value);

  /// Number of distinct indexed values.
  size_t distinctValues();

private:
  friend class Table;
  void onPut(uint64_t Key, const std::string &OldValue, bool HadOld,
             const std::string &NewValue);
  void onRemove(uint64_t Key, const std::string &OldValue);

  runtime::Monitor Lock;
  std::unordered_map<std::string, std::vector<uint64_t>> Map;
};

/// A database of named tables with conservative 2PL transactions.
class Database {
public:
  /// Creates (or returns) the table named \p Name.
  Table &table(const std::string &Name);

  /// One read or write of a transaction.
  struct Op {
    enum class Kind { Get, Put, Remove };
    Kind OpKind;
    std::string TableName;
    uint64_t Key;
    std::string Value; // for Put
  };

  /// The outcome of a committed transaction.
  struct TxnResult {
    /// Results of Get ops, in op order (nullopt = key absent).
    std::vector<std::optional<std::string>> Reads;
  };

  /// Executes \p Ops atomically under conservative two-phase locking: all
  /// stripes covering the key set are locked in a canonical global order
  /// (so transactions cannot deadlock), the ops run, and the locks are
  /// released. Transactions always commit (static 2PL has no aborts).
  TxnResult transact(const std::vector<Op> &Ops);

  /// Number of committed transactions.
  uint64_t commits();

private:
  runtime::Monitor CatalogLock;
  std::unordered_map<std::string, std::unique_ptr<Table>> Tables;
  runtime::Monitor StatsLock;
  uint64_t CommitCount = 0;
};

/// A property graph stored over striped node records — the Neo4j analogue.
class Graph {
public:
  explicit Graph(unsigned Stripes = 16);

  /// Adds a node with \p Label; returns its id.
  uint64_t addNode(std::string Label);

  /// Adds a directed edge.
  void addEdge(uint64_t From, uint64_t To);

  /// Sets a node property.
  void setProperty(uint64_t Node, const std::string &Key, int64_t Value);

  /// Reads a node property.
  std::optional<int64_t> getProperty(uint64_t Node, const std::string &Key);

  const std::string &labelOf(uint64_t Node);

  /// Out-neighbours of a node (copy).
  std::vector<uint64_t> neighbours(uint64_t Node);

  /// Number of nodes reachable from \p Start within \p MaxDepth hops
  /// (including the start node).
  size_t reachableWithin(uint64_t Start, unsigned MaxDepth);

  /// Unweighted shortest-path length from \p From to \p To, or nullopt.
  std::optional<unsigned> shortestPath(uint64_t From, uint64_t To);

  size_t nodeCount();

private:
  struct NodeRecord {
    std::string Label;
    std::vector<uint64_t> Out;
    std::unordered_map<std::string, int64_t> Props;
  };

  /// Node payloads live on the managed heap (runtime/Heap.h): the map
  /// holds substrate-backed refs, so graph churn exercises the allocator
  /// the benchmarks measure.
  struct Stripe {
    runtime::Monitor Lock;
    std::unordered_map<uint64_t, runtime::Ref<NodeRecord>> Nodes;
  };

  Stripe &stripeFor(uint64_t Node) {
    return *Shards[Node & (Shards.size() - 1)];
  }

  std::vector<std::unique_ptr<Stripe>> Shards;
  runtime::Monitor IdLock;
  uint64_t NextId = 0;
};

} // namespace kvstore
} // namespace ren

#endif // REN_KVSTORE_KVSTORE_H
