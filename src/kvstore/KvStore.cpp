//===- kvstore/KvStore.cpp ------------------------------------------------==//

#include "kvstore/KvStore.h"

#include "memsim/MemSim.h"
#include "runtime/Alloc.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace ren;
using namespace ren::kvstore;

static unsigned roundUpPowerOfTwo(unsigned X) {
  unsigned P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

Table::Table(unsigned Stripes) {
  unsigned N = roundUpPowerOfTwo(Stripes == 0 ? 1 : Stripes);
  for (unsigned I = 0; I < N; ++I)
    Shards.push_back(std::make_unique<Stripe>());
}

bool Table::put(uint64_t Key, std::string Value) {
  Stripe &S = stripeFor(Key);
  runtime::Synchronized Sync(S.Lock);
  runtime::noteObjectAlloc(); // the row object
  runtime::noteVirtualCall(); // the storage-engine dispatch
  if (AttachedIndex) {
    auto It = S.Map.find(Key);
    AttachedIndex->onPut(Key, It == S.Map.end() ? std::string() : It->second,
                         It != S.Map.end(), Value);
  }
  return S.Map.insert_or_assign(Key, std::move(Value)).second;
}

std::optional<std::string> Table::get(uint64_t Key) {
  Stripe &S = stripeFor(Key);
  runtime::Synchronized Sync(S.Lock);
  runtime::noteVirtualCall();
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return std::nullopt;
  memsim::traceData(&It->second, sizeof(It->second));
  return It->second;
}

bool Table::remove(uint64_t Key) {
  Stripe &S = stripeFor(Key);
  runtime::Synchronized Sync(S.Lock);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return false;
  if (AttachedIndex)
    AttachedIndex->onRemove(Key, It->second);
  S.Map.erase(It);
  return true;
}

void Table::attachIndex(SecondaryIndex &Index) {
  assert(!AttachedIndex && "table already indexed");
  AttachedIndex = &Index;
  scan([&](uint64_t Key, const std::string &Value) {
    Index.onPut(Key, std::string(), false, Value);
  });
}

std::vector<uint64_t> SecondaryIndex::lookup(const std::string &Value) {
  runtime::Synchronized Sync(Lock);
  runtime::noteVirtualCall();
  auto It = Map.find(Value);
  return It == Map.end() ? std::vector<uint64_t>() : It->second;
}

size_t SecondaryIndex::distinctValues() {
  runtime::Synchronized Sync(Lock);
  return Map.size();
}

void SecondaryIndex::onPut(uint64_t Key, const std::string &OldValue,
                           bool HadOld, const std::string &NewValue) {
  runtime::Synchronized Sync(Lock);
  if (HadOld) {
    auto &Old = Map[OldValue];
    Old.erase(std::remove(Old.begin(), Old.end(), Key), Old.end());
    if (Old.empty())
      Map.erase(OldValue);
  }
  Map[NewValue].push_back(Key);
}

void SecondaryIndex::onRemove(uint64_t Key, const std::string &OldValue) {
  runtime::Synchronized Sync(Lock);
  auto It = Map.find(OldValue);
  if (It == Map.end())
    return;
  It->second.erase(std::remove(It->second.begin(), It->second.end(), Key),
                   It->second.end());
  if (It->second.empty())
    Map.erase(It);
}

size_t Table::size() {
  size_t N = 0;
  for (auto &S : Shards) {
    runtime::Synchronized Sync(S->Lock);
    N += S->Map.size();
  }
  return N;
}

void Table::scan(
    const std::function<void(uint64_t, const std::string &)> &Fn) {
  for (auto &S : Shards) {
    runtime::Synchronized Sync(S->Lock);
    for (const auto &[Key, Value] : S->Map)
      Fn(Key, Value);
  }
}

//===----------------------------------------------------------------------===//
// Database
//===----------------------------------------------------------------------===//

Table &Database::table(const std::string &Name) {
  runtime::Synchronized Sync(CatalogLock);
  auto It = Tables.find(Name);
  if (It == Tables.end())
    It = Tables.emplace(Name, std::make_unique<Table>()).first;
  return *It->second;
}

Database::TxnResult Database::transact(const std::vector<Op> &Ops) {
  // Phase 0: resolve the stripe set.
  std::vector<Table::Stripe *> StripeSet;
  StripeSet.reserve(Ops.size());
  std::vector<Table *> OpTables;
  OpTables.reserve(Ops.size());
  for (const Op &O : Ops) {
    Table &T = table(O.TableName);
    OpTables.push_back(&T);
    StripeSet.push_back(&T.stripeFor(O.Key));
  }

  // Phase 1 (growing): lock distinct stripes in address order. A canonical
  // global order makes deadlock impossible (conservative 2PL).
  std::vector<Table::Stripe *> Ordered = StripeSet;
  std::sort(Ordered.begin(), Ordered.end());
  Ordered.erase(std::unique(Ordered.begin(), Ordered.end()), Ordered.end());
  for (Table::Stripe *S : Ordered)
    S->Lock.enter();

  // Execute under the locks.
  TxnResult Result;
  for (size_t I = 0; I < Ops.size(); ++I) {
    const Op &O = Ops[I];
    auto &Map = StripeSet[I]->Map;
    switch (O.OpKind) {
    case Op::Kind::Get: {
      auto It = Map.find(O.Key);
      Result.Reads.push_back(It == Map.end()
                                 ? std::nullopt
                                 : std::optional<std::string>(It->second));
      break;
    }
    case Op::Kind::Put:
      Map.insert_or_assign(O.Key, O.Value);
      break;
    case Op::Kind::Remove:
      Map.erase(O.Key);
      break;
    }
  }

  // Phase 2 (shrinking): release in reverse order.
  for (auto It = Ordered.rbegin(); It != Ordered.rend(); ++It)
    (*It)->Lock.exit();

  {
    runtime::Synchronized Sync(StatsLock);
    ++CommitCount;
  }
  return Result;
}

uint64_t Database::commits() {
  runtime::Synchronized Sync(StatsLock);
  return CommitCount;
}

//===----------------------------------------------------------------------===//
// Graph
//===----------------------------------------------------------------------===//

Graph::Graph(unsigned Stripes) {
  unsigned N = roundUpPowerOfTwo(Stripes == 0 ? 1 : Stripes);
  for (unsigned I = 0; I < N; ++I)
    Shards.push_back(std::make_unique<Stripe>());
}

uint64_t Graph::addNode(std::string Label) {
  uint64_t Id;
  {
    runtime::Synchronized Sync(IdLock);
    Id = NextId++;
  }
  auto Rec = runtime::newObject<NodeRecord>();
  Rec->Label = std::move(Label);
  Stripe &S = stripeFor(Id);
  runtime::Synchronized Sync(S.Lock);
  S.Nodes.emplace(Id, std::move(Rec));
  return Id;
}

void Graph::addEdge(uint64_t From, uint64_t To) {
  Stripe &S = stripeFor(From);
  runtime::Synchronized Sync(S.Lock);
  auto It = S.Nodes.find(From);
  assert(It != S.Nodes.end() && "edge from unknown node");
  It->second->Out.push_back(To);
}

void Graph::setProperty(uint64_t Node, const std::string &Key,
                        int64_t Value) {
  Stripe &S = stripeFor(Node);
  runtime::Synchronized Sync(S.Lock);
  auto It = S.Nodes.find(Node);
  assert(It != S.Nodes.end() && "property on unknown node");
  It->second->Props[Key] = Value;
}

std::optional<int64_t> Graph::getProperty(uint64_t Node,
                                          const std::string &Key) {
  Stripe &S = stripeFor(Node);
  runtime::Synchronized Sync(S.Lock);
  auto It = S.Nodes.find(Node);
  if (It == S.Nodes.end())
    return std::nullopt;
  auto PropIt = It->second->Props.find(Key);
  if (PropIt == It->second->Props.end())
    return std::nullopt;
  return PropIt->second;
}

const std::string &Graph::labelOf(uint64_t Node) {
  Stripe &S = stripeFor(Node);
  runtime::Synchronized Sync(S.Lock);
  auto It = S.Nodes.find(Node);
  assert(It != S.Nodes.end() && "label of unknown node");
  return It->second->Label;
}

std::vector<uint64_t> Graph::neighbours(uint64_t Node) {
  Stripe &S = stripeFor(Node);
  runtime::Synchronized Sync(S.Lock);
  runtime::noteVirtualCall();
  auto It = S.Nodes.find(Node);
  if (It == S.Nodes.end())
    return {};
  memsim::traceBuffer(It->second->Out.data(),
                      It->second->Out.size() * sizeof(uint64_t));
  runtime::noteArrayAlloc(); // the result copy
  return It->second->Out;
}

size_t Graph::reachableWithin(uint64_t Start, unsigned MaxDepth) {
  std::unordered_map<uint64_t, unsigned> Depth;
  std::deque<uint64_t> Frontier;
  Depth[Start] = 0;
  Frontier.push_back(Start);
  while (!Frontier.empty()) {
    uint64_t Node = Frontier.front();
    Frontier.pop_front();
    unsigned D = Depth[Node];
    if (D == MaxDepth)
      continue;
    for (uint64_t Next : neighbours(Node)) {
      if (Depth.count(Next))
        continue;
      Depth[Next] = D + 1;
      Frontier.push_back(Next);
    }
  }
  return Depth.size();
}

std::optional<unsigned> Graph::shortestPath(uint64_t From, uint64_t To) {
  std::unordered_map<uint64_t, unsigned> Depth;
  std::deque<uint64_t> Frontier;
  Depth[From] = 0;
  Frontier.push_back(From);
  while (!Frontier.empty()) {
    uint64_t Node = Frontier.front();
    Frontier.pop_front();
    if (Node == To)
      return Depth[Node];
    for (uint64_t Next : neighbours(Node)) {
      if (Depth.count(Next))
        continue;
      Depth[Next] = Depth[Node] + 1;
      Frontier.push_back(Next);
    }
  }
  return std::nullopt;
}

size_t Graph::nodeCount() {
  size_t N = 0;
  for (auto &S : Shards) {
    runtime::Synchronized Sync(S->Lock);
    N += S->Nodes.size();
  }
  return N;
}
