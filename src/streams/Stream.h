//===- streams/Stream.h - Data-parallel stream pipelines --------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Java 8 Streams analogue: declarative map/filter/flatMap/reduce/groupBy
/// pipelines, optionally evaluated in parallel on a fork/join pool — the
/// substrate of scrabble and streams-mnemonics.
///
/// Matching the JVM metric profile:
///  - every pipeline-stage lambda is created through runtime::bindLambda
///    (Metric::IDynamic) and applied through MethodHandle::invoke per
///    element (Metric::Method) — streams workloads are dispatch-heavy;
///  - stages materialize intermediate arrays, counted via noteArrayAlloc
///    (Table 2, footnote: "some data-parallel and streaming frameworks
///    allocate intermediate arrays");
///  - parallel evaluation splits the source across the fork/join pool.
///
/// Evaluation is eager stage-by-stage (each operation returns a new
/// materialized Stream), which keeps the framework small while preserving
/// the allocation and dispatch behaviour that matters for the metrics.
///
//===----------------------------------------------------------------------===//

#ifndef REN_STREAMS_STREAM_H
#define REN_STREAMS_STREAM_H

#include "forkjoin/ForkJoinPool.h"
#include "runtime/Alloc.h"
#include "runtime/MethodHandle.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ren {
namespace streams {

/// A materialized stream of values of type \p T.
template <typename T> class Stream {
public:
  /// Wraps a vector as a stream (copy counted as one array allocation).
  static Stream of(std::vector<T> Values) {
    runtime::noteArrayAlloc();
    Stream S;
    S.Data = std::move(Values);
    return S;
  }

  /// Integer ranges [Lo, Hi) (enabled only for integral T at call sites).
  static Stream range(T Lo, T Hi) {
    runtime::noteArrayAlloc();
    Stream S;
    S.Data.reserve(static_cast<size_t>(Hi - Lo));
    for (T I = Lo; I < Hi; ++I)
      S.Data.push_back(I);
    return S;
  }

  /// Switches subsequent stages to parallel evaluation on \p Pool.
  Stream &parallel(forkjoin::ForkJoinPool &Pool) {
    this->Pool = &Pool;
    return *this;
  }

  /// True if this stream evaluates stages in parallel.
  bool isParallel() const { return Pool != nullptr; }

  size_t size() const { return Data.size(); }

  /// Element-wise transformation.
  template <typename FnT> auto map(FnT Fn) {
    using U = std::invoke_result_t<FnT, const T &>;
    auto Handle = runtime::bindLambda<U(const T &)>(std::move(Fn));
    Stream<U> Out;
    Out.Pool = Pool;
    runtime::noteArrayAlloc();
    Out.Data.resize(Data.size());
    eachChunk([&](size_t Lo, size_t Hi) {
      for (size_t I = Lo; I < Hi; ++I)
        Out.Data[I] = Handle.invoke(Data[I]);
    });
    return Out;
  }

  /// Keeps elements satisfying \p Fn.
  template <typename FnT> Stream filter(FnT Fn) {
    auto Handle = runtime::bindLambda<bool(const T &)>(std::move(Fn));
    Stream Out;
    Out.Pool = Pool;
    runtime::noteArrayAlloc();
    std::vector<std::vector<T>> Parts = chunkResults<T>(
        [&](size_t Lo, size_t Hi, std::vector<T> &Part) {
          for (size_t I = Lo; I < Hi; ++I)
            if (Handle.invoke(Data[I]))
              Part.push_back(Data[I]);
        });
    for (auto &Part : Parts)
      Out.Data.insert(Out.Data.end(), std::make_move_iterator(Part.begin()),
                      std::make_move_iterator(Part.end()));
    return Out;
  }

  /// Expands each element into a sequence and concatenates.
  template <typename FnT> auto flatMap(FnT Fn) {
    using VecU = std::invoke_result_t<FnT, const T &>;
    using U = typename VecU::value_type;
    auto Handle = runtime::bindLambda<VecU(const T &)>(std::move(Fn));
    Stream<U> Out;
    Out.Pool = Pool;
    runtime::noteArrayAlloc();
    std::vector<std::vector<U>> Parts = chunkResults<U>(
        [&](size_t Lo, size_t Hi, std::vector<U> &Part) {
          for (size_t I = Lo; I < Hi; ++I) {
            VecU Expanded = Handle.invoke(Data[I]);
            runtime::noteArrayAlloc();
            Part.insert(Part.end(), std::make_move_iterator(Expanded.begin()),
                        std::make_move_iterator(Expanded.end()));
          }
        });
    for (auto &Part : Parts)
      Out.Data.insert(Out.Data.end(), std::make_move_iterator(Part.begin()),
                      std::make_move_iterator(Part.end()));
    return Out;
  }

  /// Folds the stream; \p Combine merges partial results in parallel mode.
  template <typename R, typename FoldT, typename CombineT>
  R reduce(R Init, FoldT Fold, CombineT Combine) {
    auto FoldH = runtime::bindLambda<R(R, const T &)>(std::move(Fold));
    if (!Pool || Data.size() < 2) {
      R Acc = Init;
      for (const T &V : Data)
        Acc = FoldH.invoke(std::move(Acc), V);
      return Acc;
    }
    auto CombineH = runtime::bindLambda<R(R, R)>(std::move(Combine));
    size_t Grain = grain();
    return Pool->template parallelReduce<R>(
        0, Data.size(), Grain,
        [&](size_t Lo, size_t Hi) {
          R Acc = Init;
          for (size_t I = Lo; I < Hi; ++I)
            Acc = FoldH.invoke(std::move(Acc), Data[I]);
          return Acc;
        },
        [&](R A, R B) { return CombineH.invoke(std::move(A), std::move(B)); });
  }

  /// Sequential fold without a combiner (sequential even in parallel mode).
  template <typename R, typename FoldT> R fold(R Init, FoldT Fold) {
    auto FoldH = runtime::bindLambda<R(R, const T &)>(std::move(Fold));
    R Acc = std::move(Init);
    for (const T &V : Data)
      Acc = FoldH.invoke(std::move(Acc), V);
    return Acc;
  }

  /// Groups elements by key (hash map of materialized groups).
  template <typename FnT> auto groupBy(FnT KeyFn) {
    using K = std::invoke_result_t<FnT, const T &>;
    auto Handle = runtime::bindLambda<K(const T &)>(std::move(KeyFn));
    std::unordered_map<K, std::vector<T>> Groups;
    runtime::noteObjectAlloc();
    for (const T &V : Data)
      Groups[Handle.invoke(V)].push_back(V);
    return Groups;
  }

  /// Applies \p Fn to every element (terminal).
  template <typename FnT> void forEach(FnT Fn) {
    auto Handle = runtime::bindLambda<void(const T &)>(std::move(Fn));
    eachChunk([&](size_t Lo, size_t Hi) {
      for (size_t I = Lo; I < Hi; ++I)
        Handle.invoke(Data[I]);
    });
  }

  /// Number of elements satisfying \p Fn.
  template <typename FnT> size_t countIf(FnT Fn) {
    auto Handle = runtime::bindLambda<bool(const T &)>(std::move(Fn));
    size_t N = 0;
    for (const T &V : Data)
      N += Handle.invoke(V) ? 1 : 0;
    return N;
  }

  /// Sorted copy of the stream.
  template <typename CmpT> Stream sorted(CmpT Cmp) {
    Stream Out = *this;
    runtime::noteArrayAlloc();
    std::stable_sort(Out.Data.begin(), Out.Data.end(), Cmp);
    return Out;
  }

  /// First \p N elements.
  Stream limit(size_t N) {
    Stream Out = *this;
    if (Out.Data.size() > N)
      Out.Data.resize(N);
    return Out;
  }

  /// Largest element under \p Cmp; stream must be non-empty.
  template <typename CmpT> T maxBy(CmpT Cmp) {
    assert(!Data.empty() && "maxBy on empty stream");
    return *std::max_element(Data.begin(), Data.end(), Cmp);
  }

  /// Terminal: moves the materialized elements out.
  std::vector<T> collect() { return std::move(Data); }

  /// Non-consuming view of the data (for tests).
  const std::vector<T> &view() const { return Data; }

private:
  template <typename U> friend class Stream;

  size_t grain() const {
    size_t G = Data.size() / (Pool ? 4 * Pool->parallelism() : 1);
    return G == 0 ? 1 : G;
  }

  /// Runs \p Body over index chunks, in parallel when a pool is attached.
  template <typename BodyT> void eachChunk(BodyT Body) {
    if (!Pool || Data.size() < 2) {
      if (!Data.empty())
        Body(0, Data.size());
      return;
    }
    Pool->parallelFor(0, Data.size(), grain(),
                      [&](size_t Lo, size_t Hi) { Body(Lo, Hi); });
  }

  /// Runs \p Body over chunks, collecting one partial vector per chunk in
  /// deterministic order regardless of scheduling.
  template <typename U, typename BodyT>
  std::vector<std::vector<U>> chunkResults(BodyT Body) {
    if (!Pool || Data.size() < 2) {
      std::vector<std::vector<U>> Parts(1);
      if (!Data.empty())
        Body(0, Data.size(), Parts[0]);
      return Parts;
    }
    size_t G = grain();
    size_t NumChunks = (Data.size() + G - 1) / G;
    std::vector<std::vector<U>> Parts(NumChunks);
    Pool->parallelFor(0, NumChunks, 1, [&](size_t CLo, size_t CHi) {
      for (size_t C = CLo; C < CHi; ++C) {
        size_t Lo = C * G;
        size_t Hi = std::min(Lo + G, Data.size());
        Body(Lo, Hi, Parts[C]);
      }
    });
    return Parts;
  }

  std::vector<T> Data;
  forkjoin::ForkJoinPool *Pool = nullptr;
};

} // namespace streams
} // namespace ren

#endif // REN_STREAMS_STREAM_H
