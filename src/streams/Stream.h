//===- streams/Stream.h - Fused data-parallel stream pipelines --*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Java 8 Streams analogue: declarative map/filter/flatMap/reduce/groupBy
/// pipelines, optionally evaluated in parallel on a fork/join pool — the
/// substrate of scrabble and streams-mnemonics.
///
/// Evaluation is *lazy and fused*: intermediate operations (map, filter,
/// flatMap) only record a pipeline stage; a terminal operation (collect,
/// reduce, groupBy, forEach, ...) drives every source element through the
/// whole stage chain in a single pass, with no intermediate array per
/// stage. The stage chain is a compile-time cons-list of small ops structs
/// (detail::MapOps<detail::FilterOps<detail::SourceOps<T>>> ...), so the
/// per-element path is fully visible to the compiler — the C++ analogue of
/// the method-handle-simplification JIT pass of paper §5.4, which collapses
/// the polymorphic lambda invoke chains of JVM streams into direct calls
/// and inlines them.
///
/// Matching the JVM metric profile:
///  - every pipeline-stage lambda is created through runtime::bindLambda
///    (Metric::IDynamic once per stage) and each stage also links a
///    runtime::MethodHandle, whose \c simplify() transition (MhSimplify
///    trace event) a terminal performs once when the pipeline is driven;
///  - Metric::Method is counted once per per-element stage application,
///    identical to invoking the handle per element; the fused interpreter
///    batches the counter update per index range (runtime::noteVirtualCall
///    with the accumulated count) exactly like the JIT hoists profile
///    counters out of a compiled loop;
///  - Metric::Array is counted only for *genuine* materializations: the
///    source wrap (of/range), per-element flatMap expansions, and the
///    terminal collect/sorted copies. Relative to the former eager
///    evaluator this removes one array per intermediate stage — the same
///    direction MHS moves the profile on the JVM;
///  - parallel evaluation splits the *source* index range across the
///    fork/join pool with size- and core-adaptive chunking (grain
///    targeting via ForkJoinPool::adviseGrain rather than fixed splits);
///    each chunk drives a private copy of the stage chain (stage counters
///    stay unsynchronized) and deterministic chunk indices preserve
///    element order. Parallel groupBy merges through a striped concurrent
///    combiner (hash-selected stripes, thin-lock bucket inserts,
///    chunk-indexed run stitching) and sorted() runs a stable parallel
///    merge sort — both reproduce the serial output exactly.
///
/// Streams are cheap non-owning views: the source vector is shared, so a
/// stream can be reused after a terminal (terminals do not consume).
///
//===----------------------------------------------------------------------===//

#ifndef REN_STREAMS_STREAM_H
#define REN_STREAMS_STREAM_H

#include "forkjoin/ForkJoinPool.h"
#include "runtime/Alloc.h"
#include "runtime/MethodHandle.h"
#include "runtime/Park.h"

#include <atomic>

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ren {
namespace streams {

namespace detail {

/// Stage-chain concept: each ops struct exposes
///  - \c InT / \c OutT — the source element type fed into the chain and the
///    element type this stage emits;
///  - \c apply(V, Sink) — pushes one source element through the chain,
///    invoking Sink(const OutT &) zero or more times;
///  - \c flush() — publishes the batched Metric::Method / Metric::Array
///    counts accumulated since the last flush (called once per index range);
///  - \c simplify() — transitions every stage's MethodHandle to the
///    direct-invoke state (called once by the terminal before driving).
///
/// Each stage holds both the concrete callable (the inlined target the
/// simplified call site dispatches to — a direct, compiler-visible call)
/// and the MethodHandle linked by bindLambda (the original polymorphic
/// site: its bootstrap/simplify lifecycle and trace events model §5.4).

/// A one-word test-and-test-and-set spin lock guarding one combiner
/// stripe. Stripe critical sections are a handful of hash-map operations,
/// so a short spin (with a yield fallback so oversubscribed and single-CPU
/// hosts make progress) beats any parked lock; the acquire/release pair is
/// a plain atomic protocol TSan understands directly.
class StripeLock {
public:
  void lock() {
    while (Locked.exchange(true, std::memory_order_acquire)) {
      unsigned Spins = 0;
      while (Locked.load(std::memory_order_relaxed))
        if (++Spins > 64) {
          std::this_thread::yield();
          Spins = 0;
        }
    }
  }
  void unlock() { Locked.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Locked{false};
};

/// The chain terminus: emits source elements unchanged.
template <typename T> struct SourceOps {
  using InT = T;
  using OutT = T;

  template <typename SinkT> void apply(const T &V, SinkT &&Sink) { Sink(V); }
  void flush() {}
  void simplify() const {}
};

/// Element-wise transformation stage.
template <typename PrevT, typename FnT, typename U> struct MapOps {
  using InT = typename PrevT::InT;
  using OutT = U;

  PrevT Prev;
  FnT Fn;
  runtime::MethodHandle<U(const typename PrevT::OutT &)> Handle;
  uint64_t Calls = 0;

  template <typename SinkT> void apply(const InT &V, SinkT &&Sink) {
    Prev.apply(V, [&](const typename PrevT::OutT &X) {
      ++Calls;
      Sink(Fn(X));
    });
  }

  void flush() {
    Prev.flush();
    if (Calls) {
      runtime::noteVirtualCall(Calls);
      Calls = 0;
    }
  }

  void simplify() const {
    Prev.simplify();
    Handle.simplify();
  }
};

/// Predicate stage: forwards elements satisfying the predicate.
template <typename PrevT, typename FnT> struct FilterOps {
  using InT = typename PrevT::InT;
  using OutT = typename PrevT::OutT;

  PrevT Prev;
  FnT Fn;
  runtime::MethodHandle<bool(const OutT &)> Handle;
  uint64_t Calls = 0;

  template <typename SinkT> void apply(const InT &V, SinkT &&Sink) {
    Prev.apply(V, [&](const OutT &X) {
      ++Calls;
      if (Fn(X))
        Sink(X);
    });
  }

  void flush() {
    Prev.flush();
    if (Calls) {
      runtime::noteVirtualCall(Calls);
      Calls = 0;
    }
  }

  void simplify() const {
    Prev.simplify();
    Handle.simplify();
  }
};

/// Expansion stage: each element becomes a sequence, emitted in order. The
/// per-element expansion vector is a genuine materialization and is counted
/// as an array allocation (batched like the dispatch counts).
template <typename PrevT, typename FnT, typename VecU> struct FlatMapOps {
  using InT = typename PrevT::InT;
  using OutT = typename VecU::value_type;

  PrevT Prev;
  FnT Fn;
  runtime::MethodHandle<VecU(const typename PrevT::OutT &)> Handle;
  uint64_t Calls = 0;
  uint64_t Arrays = 0;

  template <typename SinkT> void apply(const InT &V, SinkT &&Sink) {
    Prev.apply(V, [&](const typename PrevT::OutT &X) {
      ++Calls;
      VecU Expanded = Fn(X);
      ++Arrays;
      for (const OutT &E : Expanded)
        Sink(E);
    });
  }

  void flush() {
    Prev.flush();
    if (Calls) {
      runtime::noteVirtualCall(Calls);
      Calls = 0;
    }
    if (Arrays) {
      runtime::noteArrayAlloc(Arrays);
      Arrays = 0;
    }
  }

  void simplify() const {
    Prev.simplify();
    Handle.simplify();
  }
};

} // namespace detail

/// A lazy stream of values of type \p T: a shared source vector plus a
/// fused chain of pipeline stages (\p OpsT). Intermediate operations return
/// a new Stream with one more stage; terminals drive the chain. All
/// pipeline call sites build the type with \c auto.
template <typename T, typename OpsT = detail::SourceOps<T>> class Stream {
  using SrcT = typename OpsT::InT;

public:
  /// Wraps a vector as a stream (the copy into the shared source is the
  /// one materialization, counted as one array allocation).
  static Stream of(std::vector<T> Values) {
    runtime::noteArrayAlloc();
    return Stream(std::make_shared<const std::vector<T>>(std::move(Values)),
                  OpsT{}, nullptr, 0);
  }

  /// Integer ranges [Lo, Hi) (enabled only for integral T at call sites).
  /// Empty when Hi <= Lo.
  static Stream range(T Lo, T Hi) {
    runtime::noteArrayAlloc();
    std::vector<T> Values;
    if (Lo < Hi) {
      Values.reserve(static_cast<size_t>(Hi - Lo));
      for (T I = Lo; I < Hi; ++I)
        Values.push_back(I);
    }
    return Stream(std::make_shared<const std::vector<T>>(std::move(Values)),
                  OpsT{}, nullptr, 0);
  }

  /// Switches terminal evaluation of this pipeline to parallel on \p Pool.
  /// \p GrainHint pins the chunk size in source elements; 0 (the default)
  /// selects adaptive grain targeting (ForkJoinPool::adviseGrain sizes
  /// chunks to the workers actually available, floored so task overhead
  /// stays amortized). Tests and stress scenarios pass explicit tiny
  /// grains to maximize scheduler and combiner traffic.
  Stream &parallel(forkjoin::ForkJoinPool &Pool, size_t GrainHint = 0) {
    this->Pool = &Pool;
    this->GrainHint = GrainHint;
    return *this;
  }

  /// True if this stream evaluates terminals in parallel.
  bool isParallel() const { return Pool != nullptr; }

  /// Number of elements the pipeline produces. Free for a source stream;
  /// otherwise drives the pipeline (counting the stage dispatches it
  /// performs, like any terminal).
  size_t size() {
    if constexpr (std::is_same_v<OpsT, detail::SourceOps<T>>) {
      return Src->size();
    } else {
      Ops.simplify();
      size_t N = 0;
      runRange(Ops, 0, Src->size(), [&](const T &) { ++N; });
      return N;
    }
  }

  /// Element-wise transformation (lazy: appends a fused stage).
  template <typename FnT> auto map(FnT Fn) {
    using U = std::invoke_result_t<FnT, const T &>;
    auto Handle = runtime::bindLambda<U(const T &)>(Fn);
    using Ops2 = detail::MapOps<OpsT, FnT, U>;
    return Stream<U, Ops2>(Src, Ops2{Ops, std::move(Fn), std::move(Handle)},
                           Pool, GrainHint);
  }

  /// Keeps elements satisfying \p Fn (lazy: appends a fused stage).
  template <typename FnT> auto filter(FnT Fn) {
    auto Handle = runtime::bindLambda<bool(const T &)>(Fn);
    using Ops2 = detail::FilterOps<OpsT, FnT>;
    return Stream<T, Ops2>(Src, Ops2{Ops, std::move(Fn), std::move(Handle)},
                           Pool, GrainHint);
  }

  /// Expands each element into a sequence and concatenates (lazy).
  template <typename FnT> auto flatMap(FnT Fn) {
    using VecU = std::invoke_result_t<FnT, const T &>;
    using U = typename VecU::value_type;
    auto Handle = runtime::bindLambda<VecU(const T &)>(Fn);
    using Ops2 = detail::FlatMapOps<OpsT, FnT, VecU>;
    return Stream<U, Ops2>(Src, Ops2{Ops, std::move(Fn), std::move(Handle)},
                           Pool, GrainHint);
  }

  /// Terminal: folds the pipeline output; \p Combine merges partial
  /// results in parallel mode.
  template <typename R, typename FoldT, typename CombineT>
  R reduce(R Init, FoldT Fold, CombineT Combine) {
    auto FoldH = runtime::bindLambda<R(R, const T &)>(Fold);
    Ops.simplify();
    FoldH.simplify();
    size_t G = grain();
    size_t NumChunks = Src->empty() ? 0 : (Src->size() + G - 1) / G;
    if (!Pool || NumChunks < 2) {
      R Acc = std::move(Init);
      uint64_t FoldCalls = 0;
      runRange(Ops, 0, Src->size(), [&](const T &V) {
        ++FoldCalls;
        Acc = Fold(std::move(Acc), V);
      });
      runtime::noteVirtualCall(FoldCalls);
      return Acc;
    }
    auto CombineH = runtime::bindLambda<R(R, R)>(std::move(Combine));
    CombineH.simplify();
    std::vector<std::optional<R>> Parts(NumChunks);
    parallelChunks(NumChunks, G, Src->size(),
                   [&](size_t C, size_t Lo, size_t Hi) {
      OpsT Local = Ops;
      R Acc = Init;
      uint64_t FoldCalls = 0;
      runRange(Local, Lo, Hi, [&](const T &V) {
        ++FoldCalls;
        Acc = Fold(std::move(Acc), V);
      });
      runtime::noteVirtualCall(FoldCalls);
      Parts[C].emplace(std::move(Acc));
    });
    R Acc = std::move(*Parts[0]);
    for (size_t C = 1; C < NumChunks; ++C)
      Acc = CombineH.directInvoke(std::move(Acc), std::move(*Parts[C]));
    return Acc;
  }

  /// Terminal: sequential fold without a combiner (sequential even in
  /// parallel mode).
  template <typename R, typename FoldT> R fold(R Init, FoldT Fold) {
    auto FoldH = runtime::bindLambda<R(R, const T &)>(Fold);
    Ops.simplify();
    FoldH.simplify();
    R Acc = std::move(Init);
    uint64_t FoldCalls = 0;
    runRange(Ops, 0, Src->size(), [&](const T &V) {
      ++FoldCalls;
      Acc = Fold(std::move(Acc), V);
    });
    runtime::noteVirtualCall(FoldCalls);
    return Acc;
  }

  /// Terminal: groups pipeline output by key (hash map of materialized
  /// groups, one counted object). Parallel mode runs key extraction and
  /// grouping chunk-locally, publishes each chunk's per-key runs into a
  /// striped concurrent combiner (hash-selected stripe, thin-lock bucket
  /// insert — one lock acquisition per (chunk, key), never per element),
  /// and stitches every group's runs back together in chunk-index order,
  /// so within-group element order is identical to the serial build. The
  /// former chunk-order *serial* map build was the parallel-terminal merge
  /// bottleneck: it re-hashed every element on one thread.
  template <typename FnT> auto groupBy(FnT KeyFn) {
    using K = std::invoke_result_t<FnT, const T &>;
    auto Handle = runtime::bindLambda<K(const T &)>(KeyFn);
    using GroupsT = std::unordered_map<K, std::vector<T>>;
    runtime::noteObjectAlloc();
    Ops.simplify();
    Handle.simplify();
    GroupsT Groups;
    size_t G = grain();
    size_t NumChunks = Src->empty() ? 0 : (Src->size() + G - 1) / G;
    if (!Pool || NumChunks < 2) {
      uint64_t KeyCalls = 0;
      runRange(Ops, 0, Src->size(), [&](const T &V) {
        ++KeyCalls;
        Groups[KeyFn(V)].push_back(V);
      });
      runtime::noteVirtualCall(KeyCalls);
      return Groups;
    }
    /// One chunk's contribution to one group, tagged for order stitching.
    struct Run {
      size_t Chunk;
      std::vector<T> Elems;
    };
    /// Stripes are padded to a cache line so neighbouring locks never
    /// false-share. The combiner internals are VM-internal structures
    /// (uncounted), like the fork/join deques.
    struct alignas(64) Stripe {
      detail::StripeLock Lock;
      std::unordered_map<K, std::vector<Run>> Buckets;
    };
    const size_t NumStripes = stripeCount();
    std::vector<Stripe> Stripes(NumStripes);
    std::hash<K> Hasher;
    parallelChunks(NumChunks, G, Src->size(),
                   [&](size_t C, size_t Lo, size_t Hi) {
      OpsT Local = Ops;
      // Chunk-local grouping first: in-chunk per-key order is captured
      // lock-free; the stripe lock is then taken once per (chunk, key).
      std::unordered_map<K, std::vector<T>> LocalGroups;
      uint64_t KeyCalls = 0;
      runRange(Local, Lo, Hi, [&](const T &V) {
        ++KeyCalls;
        LocalGroups[KeyFn(V)].push_back(V);
      });
      runtime::noteVirtualCall(KeyCalls);
      for (auto &KV : LocalGroups) {
        Stripe &S = Stripes[Hasher(KV.first) & (NumStripes - 1)];
        S.Lock.lock();
        S.Buckets[KV.first].push_back(Run{C, std::move(KV.second)});
        S.Lock.unlock();
      }
    });
    // Stitch: stripes are disjoint key sets, so each one concatenates its
    // groups' runs in chunk-index order in parallel. The serial tail below
    // only splices map nodes (group headers) — it never re-hashes or moves
    // elements, which is what made the old merge serial-bottlenecked.
    std::vector<GroupsT> Stitched(NumStripes);
    parallelChunks(NumStripes, 1, NumStripes,
                   [&](size_t SI, size_t, size_t) {
      Stripe &S = Stripes[SI];
      GroupsT &Out = Stitched[SI];
      Out.reserve(S.Buckets.size());
      for (auto &KV : S.Buckets) {
        std::vector<Run> &Runs = KV.second;
        std::sort(Runs.begin(), Runs.end(),
                  [](const Run &A, const Run &B) { return A.Chunk < B.Chunk; });
        size_t Total = 0;
        for (const Run &R : Runs)
          Total += R.Elems.size();
        std::vector<T> Merged;
        Merged.reserve(Total);
        for (Run &R : Runs)
          for (T &E : R.Elems)
            Merged.push_back(std::move(E));
        Out.emplace(KV.first, std::move(Merged));
      }
    });
    size_t TotalKeys = 0;
    for (const GroupsT &M : Stitched)
      TotalKeys += M.size();
    Groups.reserve(TotalKeys);
    for (GroupsT &M : Stitched)
      while (!M.empty())
        Groups.insert(M.extract(M.begin()));
    return Groups;
  }

  /// Terminal: applies \p Fn to every pipeline output element.
  template <typename FnT> void forEach(FnT Fn) {
    auto Handle = runtime::bindLambda<void(const T &)>(Fn);
    Ops.simplify();
    Handle.simplify();
    size_t G = grain();
    size_t NumChunks = Src->empty() ? 0 : (Src->size() + G - 1) / G;
    if (!Pool || NumChunks < 2) {
      uint64_t Calls = 0;
      runRange(Ops, 0, Src->size(), [&](const T &V) {
        ++Calls;
        Fn(V);
      });
      runtime::noteVirtualCall(Calls);
      return;
    }
    parallelChunks(NumChunks, G, Src->size(),
                   [&](size_t, size_t Lo, size_t Hi) {
      OpsT Local = Ops;
      uint64_t Calls = 0;
      runRange(Local, Lo, Hi, [&](const T &V) {
        ++Calls;
        Fn(V);
      });
      runtime::noteVirtualCall(Calls);
    });
  }

  /// Terminal: number of pipeline output elements satisfying \p Fn.
  template <typename FnT> size_t countIf(FnT Fn) {
    auto Handle = runtime::bindLambda<bool(const T &)>(Fn);
    Ops.simplify();
    Handle.simplify();
    size_t N = 0;
    uint64_t Calls = 0;
    runRange(Ops, 0, Src->size(), [&](const T &V) {
      ++Calls;
      N += Fn(V) ? 1 : 0;
    });
    runtime::noteVirtualCall(Calls);
    return N;
  }

  /// Materializes the pipeline output sorted under \p Cmp (one counted
  /// array); the result is a fresh source stream, so chaining continues.
  /// Parallel mode runs a stable merge sort: grain-sized runs are
  /// stable_sort'ed concurrently, then pairwise std::inplace_merge rounds
  /// halve the run count until one sorted sequence remains. Every building
  /// block is stable, so the output is bit-identical to the serial
  /// stable_sort (equal elements keep source order).
  template <typename CmpT> auto sorted(CmpT Cmp) {
    runtime::noteArrayAlloc();
    std::vector<T> Out = gather();
    const size_t N = Out.size();
    // Sorting has plenty of work per element, but merge rounds touch the
    // whole array each pass — a larger grain floor than the streaming
    // terminals keeps the round count (and task overhead) down.
    size_t G = !Pool ? N
                     : (GrainHint ? GrainHint
                                  : Pool->adviseGrain(N, kSortMinGrain));
    if (!Pool || N < 2 || G >= N) {
      std::stable_sort(Out.begin(), Out.end(), Cmp);
    } else {
      size_t NumRuns = (N + G - 1) / G;
      parallelChunks(NumRuns, G, N, [&](size_t, size_t Lo, size_t Hi) {
        std::stable_sort(Out.begin() + static_cast<ptrdiff_t>(Lo),
                         Out.begin() + static_cast<ptrdiff_t>(Hi), Cmp);
      });
      for (size_t Width = G; Width < N; Width *= 2) {
        size_t NumPairs = (N + 2 * Width - 1) / (2 * Width);
        parallelChunks(NumPairs, 1, NumPairs, [&](size_t P, size_t, size_t) {
          size_t Lo = P * 2 * Width;
          size_t Mid = std::min(Lo + Width, N);
          size_t Hi = std::min(Lo + 2 * Width, N);
          if (Mid < Hi)
            std::inplace_merge(Out.begin() + static_cast<ptrdiff_t>(Lo),
                               Out.begin() + static_cast<ptrdiff_t>(Mid),
                               Out.begin() + static_cast<ptrdiff_t>(Hi), Cmp);
        });
      }
    }
    return Stream<T>(std::make_shared<const std::vector<T>>(std::move(Out)),
                     detail::SourceOps<T>{}, Pool, GrainHint);
  }

  /// First \p N pipeline output elements (short-circuits: stops driving
  /// the source once \p N outputs are produced); materializes the result
  /// as a fresh source stream (one counted array).
  auto limit(size_t N) {
    runtime::noteArrayAlloc();
    Ops.simplify();
    std::vector<T> Out;
    const std::vector<SrcT> &S = *Src;
    for (size_t I = 0; I < S.size() && Out.size() < N; ++I)
      Ops.apply(S[I], [&](const T &V) {
        if (Out.size() < N)
          Out.push_back(V);
      });
    Ops.flush();
    return Stream<T>(std::make_shared<const std::vector<T>>(std::move(Out)),
                     detail::SourceOps<T>{}, Pool, GrainHint);
  }

  /// Terminal: largest output element under \p Cmp (first of equal maxima);
  /// the pipeline must produce at least one element.
  template <typename CmpT> T maxBy(CmpT Cmp) {
    Ops.simplify();
    std::optional<T> Best;
    runRange(Ops, 0, Src->size(), [&](const T &V) {
      if (!Best || Cmp(*Best, V))
        Best = V;
    });
    assert(Best && "maxBy on empty stream");
    return std::move(*Best);
  }

  /// Terminal: materializes the pipeline output (one counted array).
  std::vector<T> collect() {
    runtime::noteArrayAlloc();
    return gather();
  }

private:
  template <typename, typename> friend class Stream;

  Stream(std::shared_ptr<const std::vector<SrcT>> Src, OpsT Ops,
         forkjoin::ForkJoinPool *Pool, size_t GrainHint)
      : Src(std::move(Src)), Ops(std::move(Ops)), Pool(Pool),
        GrainHint(GrainHint) {}

  /// Grain floor for the streaming terminals (reduce/groupBy/forEach/
  /// collect): below this many elements per chunk, task scheduling costs
  /// more than the chunk body on every substrate we measure.
  static constexpr size_t kMinGrain = 64;
  /// Grain floor for sorted(): each merge round sweeps the whole array,
  /// so runs start an order of magnitude coarser.
  static constexpr size_t kSortMinGrain = 1024;
  /// Stripe-count cap for the groupBy combiner.
  static constexpr size_t kMaxStripes = 64;

  /// Chunk size in source elements for this terminal: the explicit hint if
  /// the caller pinned one, otherwise adaptive grain targeting.
  size_t grain() const {
    if (!Pool)
      return Src->empty() ? 1 : Src->size();
    if (GrainHint)
      return GrainHint;
    return Pool->adviseGrain(Src->size(), kMinGrain);
  }

  /// Power-of-two stripe count for the groupBy combiner: enough stripes
  /// that concurrent chunk publications rarely collide (4 per worker),
  /// capped so the stitch pass stays cheap for small pools.
  size_t stripeCount() const {
    size_t Target = 4 * static_cast<size_t>(Pool->parallelism());
    size_t P = 8;
    while (P < Target && P < kMaxStripes)
      P <<= 1;
    return P;
  }

  /// Drives source indices [Lo, Hi) through ops instance \p O into \p Sink
  /// and flushes the batched stage counts.
  template <typename SinkT>
  void runRange(OpsT &O, size_t Lo, size_t Hi, SinkT &&Sink) {
    const std::vector<SrcT> &S = *Src;
    for (size_t I = Lo; I < Hi; ++I)
      O.apply(S[I], Sink);
    O.flush();
  }

  /// Invokes Body(Chunk, Lo, Hi) for each grain-\p G chunk of the index
  /// domain [0, N) on the pool (callers pass the source size, an
  /// output-array size, or a stripe/pair count). Chunk indices are
  /// deterministic, so per-chunk results concatenated in chunk order
  /// reproduce the serial element order.
  ///
  /// External callers (the common case: a benchmark thread driving a
  /// terminal) use a flat counted-completer scatter, the shape of
  /// java.util.concurrent's CountedCompleter that backs JVM parallel
  /// streams: every chunk is a detached task decrementing a completion
  /// latch, the caller runs chunk 0 itself and parks at most once. No
  /// blocking joins anywhere — a recursive join tree parks once per inner
  /// node when chunk bodies outlast the join spin (oversubscribed hosts),
  /// which dwarfs the chunk work itself. A caller that is already a pool
  /// worker must not park while tasks sit in its own deque, so it takes
  /// the recursive splitter, whose joins help.
  template <typename BodyT>
  void parallelChunks(size_t NumChunks, size_t G, size_t N, BodyT Body) {
    if (forkjoin::ForkJoinPool::onWorkerThread()) {
      Pool->parallelFor(0, NumChunks, 1, [&](size_t CLo, size_t CHi) {
        for (size_t C = CLo; C < CHi; ++C)
          Body(C, C * G, std::min(C * G + G, N));
      });
      return;
    }
    std::atomic<size_t> Remaining{NumChunks};
    std::atomic<bool> Done{false};
    runtime::Parker &Waiter = runtime::currentParker();
    // The caller may return — popping this frame, and Remaining/Done/
    // Waiter/Body/Finish with it — as soon as it observes Done == true
    // (its own Finish may race the last worker's, and park() can return
    // spuriously on a stale permit). The Done store must therefore be the
    // LAST access to this frame: the parker is hoisted into a local first
    // (release ordering keeps that read before the store), and parkers
    // are pool-allocated and never destroyed (see Park.h), so the unpark
    // after the store touches no freed memory even if the frame is gone.
    auto Finish = [&] {
      runtime::Parker &P = Waiter;
      if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Done.store(true, std::memory_order_release);
        P.unpark();
      }
    };
    for (size_t C = 1; C < NumChunks; ++C)
      Pool->forkDetached([&Body, &Finish, &N, C, G] {
        Body(C, C * G, std::min(C * G + G, N));
        Finish();
      });
    Body(0, 0, std::min(G, N));
    Finish();
    while (!Done.load(std::memory_order_acquire))
      Waiter.park();
  }

  /// Uncounted materialization shared by collect() and sorted().
  std::vector<T> gather() {
    Ops.simplify();
    std::vector<T> Out;
    size_t G = grain();
    size_t NumChunks = Src->empty() ? 0 : (Src->size() + G - 1) / G;
    if (!Pool || NumChunks < 2) {
      runRange(Ops, 0, Src->size(), [&](const T &V) { Out.push_back(V); });
      return Out;
    }
    std::vector<std::vector<T>> Parts(NumChunks);
    parallelChunks(NumChunks, G, Src->size(),
                   [&](size_t C, size_t Lo, size_t Hi) {
      OpsT Local = Ops;
      std::vector<T> &Part = Parts[C];
      runRange(Local, Lo, Hi, [&](const T &V) { Part.push_back(V); });
    });
    for (std::vector<T> &Part : Parts)
      Out.insert(Out.end(), std::make_move_iterator(Part.begin()),
                 std::make_move_iterator(Part.end()));
    return Out;
  }

  std::shared_ptr<const std::vector<SrcT>> Src;
  OpsT Ops;
  forkjoin::ForkJoinPool *Pool = nullptr;
  /// Explicit chunk size pinned by parallel(); 0 = adaptive.
  size_t GrainHint = 0;
};

} // namespace streams
} // namespace ren

#endif // REN_STREAMS_STREAM_H
