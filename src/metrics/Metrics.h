//===- metrics/Metrics.h - Characterizing metrics (paper §3) ----*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eleven characterizing metrics of Table 2 and their collection
/// machinery.
///
/// The paper instruments the JVM with DiSL to count dynamic executions of
/// concurrency primitives (synchronized sections, wait/notify, atomics,
/// parks), object-oriented primitives (object/array allocation, dynamic
/// dispatch) and invokedynamic, and samples CPU utilization and cache misses
/// externally. In this reproduction the instrumented runtime
/// (`ren::runtime`) bumps per-thread counter cells for the event metrics,
/// the cache simulator (`ren::memsim`) feeds the cachemiss metric, and CPU
/// utilization plus reference cycles are derived from process CPU time.
///
/// Counting is designed to be cheap enough to leave permanently enabled:
/// one relaxed atomic add on a thread-local cache line.
///
//===----------------------------------------------------------------------===//

#ifndef REN_METRICS_METRICS_H
#define REN_METRICS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ren {
namespace metrics {

/// The event-counter metrics of Table 2.
///
/// \c Cpu is not listed here because it is a derived quantity (see
/// MetricSnapshot::cpuUtilizationPercent) rather than an event count.
enum class Metric : unsigned {
  Synch,     ///< synchronized methods and blocks executed.
  Wait,      ///< Invocations of Object.wait() analogues.
  Notify,    ///< Invocations of notify()/notifyAll() analogues.
  Atomic,    ///< Atomic operations executed (CAS, fetch-add, ...).
  Park,      ///< Thread park operations.
  CacheMiss, ///< Cache misses (L1I+L1D+LLC+iTLB+dTLB), from ren::memsim.
  Object,    ///< Objects allocated.
  Array,     ///< Arrays allocated.
  Method,    ///< Virtual/interface/dynamic method invocations.
  IDynamic,  ///< invokedynamic analogues executed (MethodHandle creation
             ///< sites dispatched through the bootstrap path).
};

/// Number of event-counter metrics.
inline constexpr unsigned kNumCounters = 10;

/// Returns the short lower-case name used in the paper's tables.
const char *metricName(Metric M);

/// A per-thread block of counters.
///
/// Written only by the owning thread with relaxed atomics; read racily by
/// snapshots. The registry keeps cells alive after thread exit by folding
/// retired cells into a global tally.
struct CounterCell {
  std::array<std::atomic<uint64_t>, kNumCounters> Counts = {};

  void bump(Metric M, uint64_t Delta) {
    // Single-writer counter: only the owning thread writes, so a plain
    // load+store pair (no lock-prefixed RMW) is atomic enough — snapshot
    // readers see an untorn value, and no update can be lost. This keeps
    // the instrumented fast paths (monitor enter, CAS wrappers) free of an
    // extra hardware atomic per event.
    std::atomic<uint64_t> &C = Counts[static_cast<unsigned>(M)];
    C.store(C.load(std::memory_order_relaxed) + Delta,
            std::memory_order_relaxed);
  }
};

namespace detail {

/// The calling thread's cell, cached as a raw pointer so the hot count()
/// path is a TLS read + branch with no guard (constant-initialized TLS).
/// Cells are registry-owned and never deallocated, so the cached pointer
/// can never dangle.
inline thread_local CounterCell *TlsCell = nullptr;

/// Registers a cell for the calling thread, caches it in TlsCell and
/// returns it (out of line; runs once per thread).
CounterCell &registerThreadCell();

} // namespace detail

/// Increments metric \p M by \p Delta on the calling thread's cell.
inline void count(Metric M, uint64_t Delta = 1) {
  CounterCell *Cell = detail::TlsCell;
  if (!Cell)
    Cell = &detail::registerThreadCell();
  Cell->bump(M, Delta);
}

/// An aggregated view of all counters plus the derived time quantities.
///
/// Snapshots are absolute; experiments take a snapshot before and after a
/// measured region and subtract (see \c delta).
struct MetricSnapshot {
  std::array<uint64_t, kNumCounters> Counts = {};
  uint64_t ProcessCpuNanos = 0;
  uint64_t WallNanos = 0;

  uint64_t get(Metric M) const { return Counts[static_cast<unsigned>(M)]; }

  /// Reference cycles (paper §3.2): CPU time at nominal frequency.
  uint64_t referenceCycles() const;

  /// Average CPU utilization in percent of the whole machine, the paper's
  /// \c cpu metric ("average CPU utilization (user and kernel)").
  double cpuUtilizationPercent() const;

  /// Returns the component-wise difference \p End - \p Begin.
  static MetricSnapshot delta(const MetricSnapshot &Begin,
                              const MetricSnapshot &End);
};

/// The row format consumed by the PCA pipeline: the 11 metrics of Table 2
/// with the event counts normalized by reference cycles (paper §3.2) and
/// \c cpu reported as average utilization.
struct NormalizedMetrics {
  /// Event metrics in Metric order, as rates per reference cycle.
  std::array<double, kNumCounters> Rates = {};
  /// Average CPU utilization percentage.
  double Cpu = 0.0;

  double rate(Metric M) const { return Rates[static_cast<unsigned>(M)]; }

  /// Returns the 11 values in the canonical Table 2 order:
  /// synch, wait, notify, atomic, park, cpu, cachemiss, object, array,
  /// method, idynamic.
  std::array<double, 11> asVector() const;

  /// Canonical names matching \c asVector order.
  static std::array<std::string, 11> vectorNames();
};

/// Normalizes \p Delta (a snapshot difference) per paper §3.2.
NormalizedMetrics normalize(const MetricSnapshot &Delta);

/// Global registry of per-thread counter cells.
class MetricsRegistry {
public:
  /// Returns the singleton registry.
  static MetricsRegistry &get();

  /// Returns the calling thread's counter cell, registering it on first use.
  CounterCell &threadCell();

  /// Takes an aggregate snapshot across live and retired thread cells.
  MetricSnapshot snapshot();

private:
  MetricsRegistry() = default;
  struct Impl;
  Impl &impl();
};

} // namespace metrics
} // namespace ren

#endif // REN_METRICS_METRICS_H
