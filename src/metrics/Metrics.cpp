//===- metrics/Metrics.cpp ------------------------------------------------==//

#include "metrics/Metrics.h"

#include "support/Clock.h"

#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

using namespace ren;
using namespace ren::metrics;

const char *ren::metrics::metricName(Metric M) {
  switch (M) {
  case Metric::Synch:
    return "synch";
  case Metric::Wait:
    return "wait";
  case Metric::Notify:
    return "notify";
  case Metric::Atomic:
    return "atomic";
  case Metric::Park:
    return "park";
  case Metric::CacheMiss:
    return "cachemiss";
  case Metric::Object:
    return "object";
  case Metric::Array:
    return "array";
  case Metric::Method:
    return "method";
  case Metric::IDynamic:
    return "idynamic";
  }
  assert(false && "unknown metric");
  return "?";
}

namespace {

/// Internal registry state. Cells are heap-allocated and shared with the
/// owning thread via shared_ptr so that a cell outlives either side.
struct RegistryState {
  std::mutex Lock;
  std::vector<std::shared_ptr<CounterCell>> Cells;
};

RegistryState &state() {
  static RegistryState *S = new RegistryState();
  return *S;
}

/// RAII holder living in each thread's TLS; keeps the shared cell alive for
/// the thread's lifetime. The registry retains its own reference so counts
/// survive thread exit.
struct ThreadCellHolder {
  std::shared_ptr<CounterCell> Cell;

  ThreadCellHolder() : Cell(std::make_shared<CounterCell>()) {
    RegistryState &S = state();
    std::lock_guard<std::mutex> Guard(S.Lock);
    S.Cells.push_back(Cell);
  }
};

CounterCell &localCell() {
  thread_local ThreadCellHolder Holder;
  return *Holder.Cell;
}

} // namespace

CounterCell &ren::metrics::detail::registerThreadCell() {
  CounterCell &Cell = localCell();
  TlsCell = &Cell;
  return Cell;
}

MetricsRegistry &MetricsRegistry::get() {
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

CounterCell &MetricsRegistry::threadCell() { return localCell(); }

MetricSnapshot MetricsRegistry::snapshot() {
  MetricSnapshot Snap;
  RegistryState &S = state();
  {
    std::lock_guard<std::mutex> Guard(S.Lock);
    for (const auto &Cell : S.Cells)
      for (unsigned I = 0; I < kNumCounters; ++I)
        Snap.Counts[I] += Cell->Counts[I].load(std::memory_order_relaxed);
  }
  Snap.ProcessCpuNanos = processCpuNanos();
  Snap.WallNanos = wallNanos();
  return Snap;
}

uint64_t MetricSnapshot::referenceCycles() const {
  return cpuNanosToRefCycles(ProcessCpuNanos);
}

double MetricSnapshot::cpuUtilizationPercent() const {
  if (WallNanos == 0)
    return 0.0;
  double Busy = static_cast<double>(ProcessCpuNanos);
  double Capacity =
      static_cast<double>(WallNanos) * static_cast<double>(hardwareThreads());
  double Pct = 100.0 * Busy / Capacity;
  return Pct > 100.0 ? 100.0 : Pct;
}

MetricSnapshot MetricSnapshot::delta(const MetricSnapshot &Begin,
                                     const MetricSnapshot &End) {
  MetricSnapshot D;
  for (unsigned I = 0; I < kNumCounters; ++I) {
    assert(End.Counts[I] >= Begin.Counts[I] && "counters must not decrease");
    D.Counts[I] = End.Counts[I] - Begin.Counts[I];
  }
  D.ProcessCpuNanos = End.ProcessCpuNanos - Begin.ProcessCpuNanos;
  D.WallNanos = End.WallNanos - Begin.WallNanos;
  return D;
}

NormalizedMetrics ren::metrics::normalize(const MetricSnapshot &Delta) {
  NormalizedMetrics N;
  double RefCycles = static_cast<double>(Delta.referenceCycles());
  if (RefCycles <= 0.0)
    RefCycles = 1.0;
  for (unsigned I = 0; I < kNumCounters; ++I)
    N.Rates[I] = static_cast<double>(Delta.Counts[I]) / RefCycles;
  N.Cpu = Delta.cpuUtilizationPercent();
  return N;
}

std::array<double, 11> NormalizedMetrics::asVector() const {
  return {rate(Metric::Synch),    rate(Metric::Wait),
          rate(Metric::Notify),   rate(Metric::Atomic),
          rate(Metric::Park),     Cpu,
          rate(Metric::CacheMiss), rate(Metric::Object),
          rate(Metric::Array),    rate(Metric::Method),
          rate(Metric::IDynamic)};
}

std::array<std::string, 11> NormalizedMetrics::vectorNames() {
  return {"synch", "wait",   "notify", "atomic", "park",  "cpu",
          "cachemiss", "object", "array",  "method", "idynamic"};
}
