//===- rx/Observable.h - Push-based reactive streams ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reactive Extensions analogue (RxJava), the substrate of rx-scrabble:
/// cold push-based observables with map/filter/flatMap/reduce/take and an
/// \c observeOn asynchronous boundary.
///
/// Operator lambdas go through runtime::bindLambda / MethodHandle exactly
/// like the streams framework, so rx workloads exercise idynamic and
/// dynamic dispatch; \c observeOn hands events to an Executor through a
/// monitor-guarded queue (synch/wait/notify).
///
/// The push path is fused in the method-handle-simplification sense of
/// paper §5.4: each operator transitions its MethodHandle to the
/// direct-invoke state once per subscription (\c simplify, before any
/// element flows) and dispatches per element through \c directInvoke — one
/// counted monomorphic call, no transition check. Observer callbacks are
/// runtime::SmallFn rather than std::function, so the per-element
/// downstream hop is a single indirect call with no double indirection.
///
//===----------------------------------------------------------------------===//

#ifndef REN_RX_OBSERVABLE_H
#define REN_RX_OBSERVABLE_H

#include "futures/Future.h"
#include "runtime/MethodHandle.h"
#include "runtime/Monitor.h"

#include <cassert>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

namespace ren {
namespace rx {

/// The downstream side of a subscription. SmallFn copies share captured
/// state (operator chains hold their per-subscription state in explicit
/// shared cells anyway), so observers stay cheap to fan out.
template <typename T> struct Observer {
  runtime::SmallFn<void(const T &)> OnNext;
  runtime::SmallFn<void()> OnComplete;
};

/// A cold observable: each subscription re-runs the producer.
///
/// The producer is a SmallFn, whose copies share a *large* captured target
/// rather than deep-copying it as std::function would. A cold producer must
/// therefore not carry mutable captured state across subscriptions: create
/// per-subscription state inside the producer body (as fromVector/range and
/// every operator here do), or hold it in an explicit shared cell.
template <typename T> class Observable {
public:
  using SubscribeFn = runtime::SmallFn<void(Observer<T>)>;

  Observable() = default;

  /// Builds an observable from a raw producer function.
  static Observable create(SubscribeFn Producer) {
    Observable O;
    O.Producer = std::move(Producer);
    return O;
  }

  /// Emits every element of \p Values, then completes.
  static Observable fromVector(std::vector<T> Values) {
    return create([Values = std::move(Values)](Observer<T> Obs) {
      for (const T &V : Values)
        Obs.OnNext(V);
      Obs.OnComplete();
    });
  }

  /// Emits the integers [Lo, Hi).
  static Observable range(T Lo, T Hi) {
    return create([Lo, Hi](Observer<T> Obs) {
      for (T I = Lo; I < Hi; ++I)
        Obs.OnNext(I);
      Obs.OnComplete();
    });
  }

  /// Subscribes with explicit callbacks (terminal).
  void subscribe(runtime::SmallFn<void(const T &)> OnNext,
                 runtime::SmallFn<void()> OnComplete = [] {}) const {
    assert(Producer && "subscribe on an empty observable");
    Producer(Observer<T>{std::move(OnNext), std::move(OnComplete)});
  }

  /// Element-wise transformation.
  template <typename FnT> auto map(FnT Fn) const {
    using U = std::invoke_result_t<FnT, const T &>;
    auto Handle = runtime::bindLambda<U(const T &)>(std::move(Fn));
    Observable<U> Out;
    // The downstream observer is held in shared state: an upstream
    // observeOn boundary may keep emitting after this frame unwinds.
    Out.Producer = [Upstream = Producer, Handle](Observer<U> Obs) {
      Handle.simplify(); // Monomorphic from the first element on.
      auto Down = std::make_shared<Observer<U>>(std::move(Obs));
      Upstream(Observer<T>{
          [Down, Handle](const T &V) {
            Down->OnNext(Handle.directInvoke(V));
          },
          [Down] { Down->OnComplete(); }});
    };
    return Out;
  }

  /// Keeps matching elements.
  template <typename FnT> Observable filter(FnT Fn) const {
    auto Handle = runtime::bindLambda<bool(const T &)>(std::move(Fn));
    Observable Out;
    Out.Producer = [Upstream = Producer, Handle](Observer<T> Obs) {
      Handle.simplify();
      auto Down = std::make_shared<Observer<T>>(std::move(Obs));
      Upstream(Observer<T>{[Down, Handle](const T &V) {
                             if (Handle.directInvoke(V))
                               Down->OnNext(V);
                           },
                           [Down] { Down->OnComplete(); }});
    };
    return Out;
  }

  /// Maps each element to an inner observable and concatenates (RxJava's
  /// concatMap; sufficient for the synchronous workloads we model).
  template <typename FnT> auto flatMap(FnT Fn) const {
    using ObsU = std::invoke_result_t<FnT, const T &>;
    using U = typename ObsU::ValueType;
    auto Handle = runtime::bindLambda<ObsU(const T &)>(std::move(Fn));
    Observable<U> Out;
    Out.Producer = [Upstream = Producer, Handle](Observer<U> Obs) {
      Handle.simplify();
      auto Down = std::make_shared<Observer<U>>(std::move(Obs));
      Upstream(Observer<T>{[Down, Handle](const T &V) {
                             ObsU Inner = Handle.directInvoke(V);
                             Inner.subscribe(
                                 [Down](const U &IV) { Down->OnNext(IV); });
                           },
                           [Down] { Down->OnComplete(); }});
    };
    return Out;
  }

  /// Emits only the first \p N elements, then completes.
  Observable take(size_t N) const {
    Observable Out;
    Out.Producer = [Upstream = Producer, N](Observer<T> Obs) {
      struct TakeState {
        Observer<T> Down;
        size_t Seen = 0;
        bool Completed = false;
      };
      auto St = std::make_shared<TakeState>();
      St->Down = std::move(Obs);
      Upstream(Observer<T>{[St, N](const T &V) {
                             if (St->Seen < N) {
                               St->Down.OnNext(V);
                               ++St->Seen;
                             }
                             if (St->Seen == N && !St->Completed) {
                               St->Completed = true;
                               St->Down.OnComplete();
                             }
                           },
                           [St] {
                             if (!St->Completed) {
                               St->Completed = true;
                               St->Down.OnComplete();
                             }
                           }});
    };
    return Out;
  }

  /// Accumulates all elements into one value emitted at completion.
  template <typename R, typename FnT> Observable<R> reduce(R Init,
                                                           FnT Fold) const {
    auto Handle = runtime::bindLambda<R(R, const T &)>(std::move(Fold));
    Observable<R> Out;
    Out.Producer = [Upstream = Producer, Init, Handle](Observer<R> Obs) {
      Handle.simplify();
      struct ReduceState {
        Observer<R> Down;
        R Acc;
      };
      auto St = std::make_shared<ReduceState>();
      St->Down = std::move(Obs);
      St->Acc = Init;
      Upstream(Observer<T>{[St, Handle](const T &V) {
                             St->Acc =
                                 Handle.directInvoke(std::move(St->Acc), V);
                           },
                           [St] {
                             St->Down.OnNext(St->Acc);
                             St->Down.OnComplete();
                           }});
    };
    return Out;
  }

  /// Moves emission downstream onto \p Exec through a bounded-ish queue;
  /// the returned observable completes asynchronously.
  Observable observeOn(futures::Executor &Exec) const {
    Observable Out;
    Out.Producer = [Upstream = Producer, &Exec](Observer<T> Obs) {
      struct Queue {
        runtime::Monitor Lock;
        std::deque<T> Items;
        bool Done = false;
      };
      auto Q = std::make_shared<Queue>();
      Exec.execute([Q, Obs] {
        for (;;) {
          T Item;
          {
            runtime::Synchronized Sync(Q->Lock);
            Q->Lock.waitUntil(
                [&] { return !Q->Items.empty() || Q->Done; });
            if (Q->Items.empty() && Q->Done)
              break;
            Item = std::move(Q->Items.front());
            Q->Items.pop_front();
          }
          Obs.OnNext(Item);
        }
        Obs.OnComplete();
      });
      Upstream(Observer<T>{[Q](const T &V) {
                             runtime::Synchronized Sync(Q->Lock);
                             Q->Items.push_back(V);
                             Q->Lock.notifyAll();
                           },
                           [Q] {
                             runtime::Synchronized Sync(Q->Lock);
                             Q->Done = true;
                             Q->Lock.notifyAll();
                           }});
    };
    return Out;
  }

  /// Terminal: collects all emissions synchronously (blocking if the chain
  /// crosses an observeOn boundary).
  std::vector<T> blockingCollect() const {
    futures::Promise<int> Done;
    auto Sink = std::make_shared<std::vector<T>>();
    subscribe([Sink](const T &V) { Sink->push_back(V); },
              [Done]() mutable { Done.setValue(0); });
    Done.future().await();
    return std::move(*Sink);
  }

  /// Terminal: the single final value of a reduce chain.
  T blockingLast() const {
    std::vector<T> All = blockingCollect();
    assert(!All.empty() && "blockingLast on empty observable");
    return All.back();
  }

  using ValueType = T;

private:
  template <typename U> friend class Observable;

  SubscribeFn Producer;
};

} // namespace rx
} // namespace ren

#endif // REN_RX_OBSERVABLE_H
