//===- forkjoin/MpscQueue.h - Intrusive lock-free MPSC queue ----*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vyukov's intrusive multi-producer single-consumer queue, used as the
/// ForkJoinPool external-submission queue (the analogue of the pool's
/// shared submission WorkQueues). Producers enqueue with one wait-free
/// exchange + one store; the consumer side is lock-free and must be
/// externalized to one consumer at a time — ForkJoinPool guards it with a
/// non-blocking try-flag so any worker may drain but none ever waits.
///
/// Nodes are intrusive: anything queued derives from MpscNode. The queue
/// never allocates; a stub node embedded in the queue keeps push/pop
/// branch-light (the one subtle state is an in-flight push: the new node
/// is visible via the exchanged head before its predecessor's Next link is
/// written, during which pop() reports "empty-for-now" — callers re-check
/// after the producer's signal, so no task is ever stranded).
///
//===----------------------------------------------------------------------===//

#ifndef REN_FORKJOIN_MPSCQUEUE_H
#define REN_FORKJOIN_MPSCQUEUE_H

#include <atomic>

namespace ren {
namespace forkjoin {

/// Intrusive linkage for MpscQueue members.
struct MpscNode {
  std::atomic<MpscNode *> Next{nullptr};
};

/// The queue. Head is the producers' end (most recently pushed); Tail is
/// the consumer's cursor.
class MpscQueue {
public:
  MpscQueue() : Head(&Stub), Tail(&Stub) {}

  MpscQueue(const MpscQueue &) = delete;
  MpscQueue &operator=(const MpscQueue &) = delete;

  /// Multi-producer push: wait-free except for the single exchange.
  void push(MpscNode *N) {
    N->Next.store(nullptr, std::memory_order_relaxed);
    MpscNode *Prev = Head.exchange(N, std::memory_order_acq_rel);
    Prev->Next.store(N, std::memory_order_release);
  }

  /// Single-consumer pop in FIFO order; returns nullptr when empty *or*
  /// when the head push is still in flight (momentarily unlinked). Only
  /// one thread may call pop at a time.
  MpscNode *pop() {
    MpscNode *T = Tail;
    MpscNode *N = T->Next.load(std::memory_order_acquire);
    if (T == &Stub) {
      if (!N)
        return nullptr; // Empty.
      Tail = N;
      T = N;
      N = N->Next.load(std::memory_order_acquire);
    }
    if (N) {
      Tail = N;
      return T;
    }
    // T is the last linked node; if a push is in flight behind it, report
    // empty-for-now (the producer's completion signal re-triggers us).
    MpscNode *H = Head.load(std::memory_order_acquire);
    if (T != H)
      return nullptr;
    // Queue quiescent with one node: re-append the stub so T becomes
    // poppable, then re-read the link.
    push(&Stub);
    N = T->Next.load(std::memory_order_acquire);
    if (N) {
      Tail = N;
      return T;
    }
    return nullptr;
  }

  /// Consumer-side emptiness probe: false means definitely empty (no node
  /// linked, no push in flight); true means a node is linked *or* a push
  /// is mid-flight (visible head, unlinked Next). Only the consumer may
  /// call this — it reads the unsynchronized Tail cursor. The netsim
  /// reactor's edge-trigger disarm protocol re-checks with this after
  /// clearing a connection's readiness flag, so a frame racing the disarm
  /// is either drained or re-notified, never stranded.
  bool consumerMaybeNonEmpty() const {
    // Empty iff both ends sit on the stub: a non-stub Tail is an
    // unreturned node, and a non-stub Head behind a stub Tail is a linked
    // or mid-flight push.
    return Tail != &Stub || Head.load(std::memory_order_acquire) != &Stub;
  }

private:
  MpscNode Stub;
  alignas(64) std::atomic<MpscNode *> Head;
  alignas(64) MpscNode *Tail;
};

} // namespace forkjoin
} // namespace ren

#endif // REN_FORKJOIN_MPSCQUEUE_H
