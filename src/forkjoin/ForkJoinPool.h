//===- forkjoin/ForkJoinPool.h - Work-stealing fork/join pool ---*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free work-stealing fork/join pool modelling java.util.concurrent's
/// ForkJoinPool (Lea, "A Java Fork/Join Framework"), the substrate of the
/// fj-kmeans benchmark and the default executor of several others.
///
/// The scheduler hot path is allocation- and lock-minimal:
///
///  - each worker owns a growable Chase–Lev deque (ChaseLevDeque.h): LIFO
///    push/pop for the owner without CAS except on the last element,
///    FIFO CAS-claimed steals for thieves;
///  - a task is one intrusive object (TaskImpl): completion state word,
///    refcount and the callable live inline, so a fork performs exactly
///    one allocation — counted through the same instrumentation as
///    runtime::newShared (one Metric::Object per task);
///  - joins are event-driven: a joiner spins briefly, then CAS-registers a
///    stack-allocated wait node on the task's state word and parks; the
///    completing thread wakes exactly the registered waiters. Workers keep
///    helping (running other tasks) while they wait;
///  - idle workers spin briefly, then register on a Treiber stack of idle
///    workers; signalWork pops and unparks exactly one in O(1);
///  - external submissions go through a lock-free Vyukov MPSC queue.
///
/// Instrumentation semantics are preserved: idle workers park via the
/// counted runtime::Parker (Metric::Park), fork/steal/external/idle trace
/// events keep their kinds and arguments, and task allocation is counted
/// once per task. The deque and queue internals are deliberately *not*
/// counted — they model the VM-internal structures the paper's
/// instrumentation does not observe.
///
//===----------------------------------------------------------------------===//

#ifndef REN_FORKJOIN_FORKJOINPOOL_H
#define REN_FORKJOIN_FORKJOINPOOL_H

#include "forkjoin/ChaseLevDeque.h"
#include "forkjoin/MpscQueue.h"
#include "runtime/Alloc.h"
#include "runtime/Park.h"
#include "support/Check.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ren {
namespace forkjoin {

class ForkJoinPool;
template <typename T> class TaskRef;

/// Base class for pool tasks: intrusive refcount, single-word completion
/// state machine, and MPSC linkage for the external submission queue.
class TaskBase : public MpscNode {
public:
  TaskBase(const TaskBase &) = delete;
  TaskBase &operator=(const TaskBase &) = delete;

  /// Runs the task body exactly once, then publishes completion and wakes
  /// every parked joiner.
  void run();

  /// True once the task body has finished.
  bool isDone() const {
    return State.load(std::memory_order_acquire) == kDone;
  }

  /// Intrusive reference counting (TaskRef drives this).
  void retain() { RefCount.fetch_add(1, std::memory_order_relaxed); }
  void release() {
    if (RefCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete this;
  }

protected:
  TaskBase() = default;
  virtual ~TaskBase() = default;

  /// Subclasses implement the body.
  virtual void execute() = 0;

private:
  friend class ForkJoinPool;

  /// One parked joiner, stack-allocated in awaitDone. The completing
  /// thread copies the fields it needs, then sets Released (after which
  /// the waiter's frame may die) and finally unparks.
  struct WaitNode {
    runtime::Parker *P = nullptr;
    uintptr_t Next = 0;
    std::atomic<bool> Released{false};
  };

  /// State word values: kActive (running or pending, no waiters), kDone,
  /// or a WaitNode* (Treiber stack of parked joiners). WaitNodes are
  /// aligned, so their addresses never collide with kDone.
  static constexpr uintptr_t kActive = 0;
  static constexpr uintptr_t kDone = 1;

  /// Blocks until done; workers of \p Pool help run other tasks.
  void awaitDone(ForkJoinPool *Pool);

  std::atomic<uintptr_t> State{kActive};
  std::atomic<uint32_t> RefCount{1};
};

/// Intrusive smart pointer to a task; the handle type fork() returns.
template <typename T> class TaskRef {
public:
  TaskRef() = default;
  /// Wraps \p P; adopts the existing reference unless \p AddRef.
  explicit TaskRef(T *P, bool AddRef) : Ptr(P) {
    if (Ptr && AddRef)
      Ptr->retain();
  }
  TaskRef(const TaskRef &O) : Ptr(O.Ptr) {
    if (Ptr)
      Ptr->retain();
  }
  TaskRef(TaskRef &&O) noexcept : Ptr(O.Ptr) { O.Ptr = nullptr; }
  /// Upcasting conversions (e.g. TaskRef<Task<int>> -> TaskRef<TaskBase>).
  template <typename U,
            std::enable_if_t<std::is_convertible_v<U *, T *>, int> = 0>
  TaskRef(const TaskRef<U> &O) : Ptr(O.Ptr) {
    if (Ptr)
      Ptr->retain();
  }
  template <typename U,
            std::enable_if_t<std::is_convertible_v<U *, T *>, int> = 0>
  TaskRef(TaskRef<U> &&O) noexcept : Ptr(O.Ptr) {
    O.Ptr = nullptr;
  }
  TaskRef &operator=(TaskRef O) noexcept {
    std::swap(Ptr, O.Ptr);
    return *this;
  }
  ~TaskRef() {
    if (Ptr)
      Ptr->release();
  }

  T *get() const { return Ptr; }
  T *operator->() const {
    assert(Ptr && "dereference of empty TaskRef");
    return Ptr;
  }
  T &operator*() const { return *operator->(); }
  explicit operator bool() const { return Ptr != nullptr; }
  void reset() {
    if (Ptr)
      Ptr->release();
    Ptr = nullptr;
  }

private:
  template <typename U> friend class TaskRef;
  T *Ptr = nullptr;
};

/// The generic task handle.
using TaskHandle = TaskRef<TaskBase>;

/// A typed fork/join task holding its result.
template <typename T> class Task : public TaskBase {
public:
  /// Returns the result. Reading before completion is an API-misuse hard
  /// error in every build type (the value would be garbage).
  const T &result() const {
    REN_CHECK(isDone(), "Task<T>::result() read before completion");
    return Result;
  }

protected:
  T Result{};
};

/// void specialization: completion only.
template <> class Task<void> : public TaskBase {};

namespace detail {

/// The concrete task: the callable is stored inline in the task object
/// (exact-size small-buffer optimization — no std::function, no separate
/// control block), so one allocation covers task + state + body.
template <typename T, typename FnT> class TaskImpl final : public Task<T> {
public:
  explicit TaskImpl(FnT Body) : Body(std::move(Body)) {}

protected:
  void execute() override { this->Result = Body(); }

private:
  FnT Body;
};

template <typename FnT> class TaskImpl<void, FnT> final : public Task<void> {
public:
  explicit TaskImpl(FnT Body) : Body(std::move(Body)) {}

protected:
  void execute() override { Body(); }

private:
  FnT Body;
};

} // namespace detail

/// The work-stealing pool.
class ForkJoinPool {
public:
  /// Creates a pool with \p Parallelism worker threads (0 = hardware).
  explicit ForkJoinPool(unsigned Parallelism = 0);
  ~ForkJoinPool();

  ForkJoinPool(const ForkJoinPool &) = delete;
  ForkJoinPool &operator=(const ForkJoinPool &) = delete;

  unsigned parallelism() const { return NumWorkers; }

  /// Approximate number of workers currently parked on the idle stack — a
  /// relaxed scheduling hint, not a synchronized count. Bulk operations use
  /// it to size their task fan-out to the parallelism actually available
  /// (a saturated pool balances better with fewer, larger chunks).
  unsigned approxIdleWorkers() const {
    return IdleCount.load(std::memory_order_relaxed);
  }

  /// Grain (elements per chunk) advice for splitting a bulk operation of
  /// \p N elements, targeting kTasksPerWorker chunks per *available*
  /// worker (the caller plus the idle hint, clamped to the pool size) so
  /// steals can rebalance, floored at \p MinGrain so task overhead stays
  /// amortized, and never slicing finer than one element per chunk. A
  /// single-worker pool gets one chunk: there is nobody to rebalance onto.
  size_t adviseGrain(size_t N, size_t MinGrain) const {
    if (N == 0)
      return 1;
    if (parallelism() <= 1)
      return N; // One chunk: there is nobody to rebalance onto.
    // The idle hint is racy (workers park and wake concurrently); treating
    // it as a lower bound keeps the fan-out conservative when the pool is
    // saturated by other callers and full when it is quiescent.
    size_t Avail = std::min<size_t>(parallelism(), approxIdleWorkers() + 1);
    size_t TargetChunks = kTasksPerWorker * Avail;
    size_t G = (N + TargetChunks - 1) / TargetChunks;
    if (G < MinGrain)
      G = MinGrain;
    return G < 1 ? 1 : G;
  }

  /// Chunks-per-worker oversplit factor used by adviseGrain: enough slack
  /// for work stealing to even out skewed chunk costs, small enough that
  /// per-task overhead stays negligible (java.util.concurrent uses the
  /// same <<2 lead in its bulk-task sizing).
  static constexpr size_t kTasksPerWorker = 4;

  /// Forks \p Body as a task. From a worker thread it is pushed onto the
  /// worker's own deque; otherwise onto the external submission queue.
  template <typename FnT> auto fork(FnT Body) {
    using R = std::invoke_result_t<FnT>;
    auto *T = allocTask<R>(std::move(Body));
    T->retain(); // The scheduler's reference; released after run().
    TaskRef<Task<R>> Handle(T, /*AddRef=*/false);
    schedule(T);
    return Handle;
  }

  /// Fire-and-forget fork: no handle, so the fast path skips the handle's
  /// refcount round trip. The executor/actor dispatch paths use this.
  template <typename FnT> void forkDetached(FnT Body) {
    using R = std::invoke_result_t<FnT>;
    schedule(allocTask<R>(std::move(Body)));
  }

  /// Blocks until \p Handle completes; worker threads help by running
  /// other tasks while waiting ("join with helping").
  template <typename T> void join(const TaskRef<T> &Handle) {
    assert(Handle && "join on an empty TaskRef");
    Handle->awaitDone(this);
  }

  /// Forks \p Body and waits for its result.
  template <typename FnT> auto invoke(FnT Body) {
    auto T = fork(std::move(Body));
    join(T);
    if constexpr (!std::is_void_v<std::invoke_result_t<FnT>>)
      return T->result();
  }

  /// Recursive parallel-for over [Lo, Hi): splits until the range is at
  /// most \p Grain and runs \p Body(ChunkLo, ChunkHi) on the leaves.
  void parallelFor(size_t Lo, size_t Hi, size_t Grain,
                   const std::function<void(size_t, size_t)> &Body);

  /// Recursive parallel reduction: \p Leaf maps a chunk to a T, \p Combine
  /// merges two T values.
  template <typename T>
  T parallelReduce(size_t Lo, size_t Hi, size_t Grain,
                   const std::function<T(size_t, size_t)> &Leaf,
                   const std::function<T(T, T)> &Combine) {
    assert(Lo <= Hi && "invalid range");
    if (Hi - Lo <= Grain || parallelism() == 1)
      return Leaf(Lo, Hi);
    size_t Mid = Lo + (Hi - Lo) / 2;
    auto Right = fork([&] { return parallelReduce(Mid, Hi, Grain, Leaf,
                                                  Combine); });
    T Left = parallelReduce(Lo, Mid, Grain, Leaf, Combine);
    join(Right);
    return Combine(std::move(Left), Right->result());
  }

  /// True if the calling thread is a worker of any pool.
  static bool onWorkerThread();

  /// Runs one pending task if any is available (used by joins and tests).
  /// \returns true if a task was executed.
  bool helpOneTask();

private:
  friend class TaskBase;

  struct WorkerState;

  /// Allocates the single task object, counted like runtime::newShared.
  template <typename R, typename FnT> Task<R> *allocTask(FnT Body) {
    runtime::noteObjectAlloc();
    return new detail::TaskImpl<R, FnT>(std::move(Body));
  }

  void schedule(TaskBase *T);
  TaskBase *findWork(unsigned SelfIndex);
  TaskBase *tryPopExternal();
  void runTask(TaskBase *T) {
    T->run();
    T->release();
  }
  void workerLoop(unsigned Index);

  /// Pops one idle worker (if any) and unparks it. O(1).
  void signalWork();

  /// Registers worker \p Index on the idle stack unless already on it.
  /// \returns true if this call performed the registration.
  bool registerIdleWorker(unsigned Index);
  WorkerState *popIdleWorker();

  /// Cheap scheduler-state probe: true if any queue looks non-empty.
  /// Used between idle registration and park to close the wakeup race.
  bool hasQueuedWork() const;

  runtime::Parker &workerParker(unsigned Index);

  unsigned NumWorkers = 0;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  std::vector<std::thread> Threads;

  // External submissions: lock-free MPSC queue; consumers serialize with a
  // non-blocking try-flag; Size gives parkers an exact non-empty hint.
  MpscQueue External;
  std::atomic<size_t> ExternalSize{0};
  std::atomic<bool> ExternalPopBusy{false};

  // Treiber stack of idle workers: (tag << 32) | (worker index + 1), 0 for
  // empty. The tag is bumped by every successful head CAS, defeating ABA.
  std::atomic<uint64_t> IdleHead{0};

  // Relaxed mirror of the idle-stack population for adviseGrain: bumped on
  // successful registration, dropped on successful pop. Purely a hint — it
  // may lag the stack by a few workers and guards nothing.
  std::atomic<unsigned> IdleCount{0};

  std::atomic<bool> ShuttingDown{false};
};

} // namespace forkjoin
} // namespace ren

#endif // REN_FORKJOIN_FORKJOINPOOL_H
