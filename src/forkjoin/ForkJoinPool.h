//===- forkjoin/ForkJoinPool.h - Work-stealing fork/join pool ---*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing fork/join pool modelling java.util.concurrent's
/// ForkJoinPool (Lea, "A Java Fork/Join Framework"), the substrate of the
/// fj-kmeans benchmark and the default executor of several others.
///
/// Workers keep per-worker deques (LIFO for the owner, FIFO for thieves)
/// and park via the instrumented runtime::Parker when idle, so a fork/join
/// workload exhibits the paper's park-heavy profile. Task and future
/// allocation is counted through runtime::newShared.
///
//===----------------------------------------------------------------------===//

#ifndef REN_FORKJOIN_FORKJOINPOOL_H
#define REN_FORKJOIN_FORKJOINPOOL_H

#include "runtime/Alloc.h"
#include "runtime/Monitor.h"
#include "runtime/Park.h"

#include <atomic>
#include <cassert>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ren {
namespace forkjoin {

class ForkJoinPool;

/// Base class for pool tasks: completion latch + execution hook.
class TaskBase {
public:
  virtual ~TaskBase() = default;

  /// Runs the task body exactly once.
  void run();

  /// True once the task body has finished.
  bool isDone() const { return Done.load(std::memory_order_acquire); }

protected:
  /// Subclasses implement the body.
  virtual void execute() = 0;

private:
  friend class ForkJoinPool;
  void awaitDone(ForkJoinPool *Pool);

  std::atomic<bool> Done{false};
  runtime::Monitor DoneMonitor;
};

/// A typed fork/join task holding its result.
template <typename T> class Task : public TaskBase {
public:
  explicit Task(std::function<T()> Body) : Body(std::move(Body)) {}

  /// Returns the result; only valid once done.
  const T &result() const {
    assert(isDone() && "result read before completion");
    return Result;
  }

protected:
  void execute() override { Result = Body(); }

private:
  std::function<T()> Body;
  T Result{};
};

/// void specialization.
template <> class Task<void> : public TaskBase {
public:
  explicit Task(std::function<void()> Body) : Body(std::move(Body)) {}

protected:
  void execute() override { Body(); }

private:
  std::function<void()> Body;
};

/// The work-stealing pool.
class ForkJoinPool {
public:
  /// Creates a pool with \p Parallelism worker threads (0 = hardware).
  explicit ForkJoinPool(unsigned Parallelism = 0);
  ~ForkJoinPool();

  ForkJoinPool(const ForkJoinPool &) = delete;
  ForkJoinPool &operator=(const ForkJoinPool &) = delete;

  unsigned parallelism() const { return Workers.size(); }

  /// Forks \p Body as a task. From a worker thread it is pushed onto the
  /// worker's own deque; otherwise onto the external submission queue.
  template <typename FnT> auto fork(FnT Body) {
    using R = std::invoke_result_t<FnT>;
    auto T = runtime::newShared<Task<R>>(std::function<R()>(std::move(Body)));
    schedule(T);
    return T;
  }

  /// Blocks until \p T completes; worker threads help by running other
  /// tasks while waiting ("join with helping").
  void join(const std::shared_ptr<TaskBase> &T) { T->awaitDone(this); }

  /// Forks \p Body and waits for its result.
  template <typename FnT> auto invoke(FnT Body) {
    auto T = fork(std::move(Body));
    join(T);
    if constexpr (!std::is_void_v<std::invoke_result_t<FnT>>)
      return T->result();
  }

  /// Recursive parallel-for over [Lo, Hi): splits until the range is at
  /// most \p Grain and runs \p Body(ChunkLo, ChunkHi) on the leaves.
  void parallelFor(size_t Lo, size_t Hi, size_t Grain,
                   const std::function<void(size_t, size_t)> &Body);

  /// Recursive parallel reduction: \p Leaf maps a chunk to a T, \p Combine
  /// merges two T values.
  template <typename T>
  T parallelReduce(size_t Lo, size_t Hi, size_t Grain,
                   const std::function<T(size_t, size_t)> &Leaf,
                   const std::function<T(T, T)> &Combine) {
    assert(Lo <= Hi && "invalid range");
    if (Hi - Lo <= Grain || parallelism() == 1)
      return Leaf(Lo, Hi);
    size_t Mid = Lo + (Hi - Lo) / 2;
    auto Right = fork([&] { return parallelReduce(Mid, Hi, Grain, Leaf,
                                                  Combine); });
    T Left = parallelReduce(Lo, Mid, Grain, Leaf, Combine);
    join(Right);
    return Combine(std::move(Left), Right->result());
  }

  /// True if the calling thread is a worker of any pool.
  static bool onWorkerThread();

  /// Runs one pending task if any is available (used by joins and tests).
  /// \returns true if a task was executed.
  bool helpOneTask();

private:
  struct WorkerState;

  void schedule(std::shared_ptr<TaskBase> T);
  std::shared_ptr<TaskBase> findWork(unsigned SelfIndex);
  std::shared_ptr<TaskBase> popExternal();
  void workerLoop(unsigned Index);
  void signalWork();

  std::vector<std::unique_ptr<WorkerState>> Workers;
  std::vector<std::thread> Threads;

  runtime::Monitor ExternalLock;
  std::deque<std::shared_ptr<TaskBase>> ExternalQueue;

  std::atomic<bool> ShuttingDown{false};
};

} // namespace forkjoin
} // namespace ren

#endif // REN_FORKJOIN_FORKJOINPOOL_H
