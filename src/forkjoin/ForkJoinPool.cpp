//===- forkjoin/ForkJoinPool.cpp ------------------------------------------==//

#include "forkjoin/ForkJoinPool.h"

#include "support/Clock.h"
#include "trace/Trace.h"

#include <mutex>

using namespace ren;
using namespace ren::forkjoin;

namespace {

/// Identifies the worker context of the calling thread.
struct WorkerContext {
  ForkJoinPool *Pool = nullptr;
  unsigned Index = 0;
};

thread_local WorkerContext CurrentWorker;

} // namespace

/// Per-worker state: a deque (LIFO for the owner, FIFO for thieves) and a
/// parking slot. The deque lock is a plain mutex: it models the VM-internal
/// lock-free deque, which the paper's instrumentation does not count.
struct ForkJoinPool::WorkerState {
  std::mutex DequeLock;
  std::deque<std::shared_ptr<TaskBase>> Deque;
  runtime::Parker Park;
  std::atomic<bool> Idle{false};
};

void TaskBase::run() {
  assert(!isDone() && "task ran twice");
  execute();
  Done.store(true, std::memory_order_release);
  runtime::Synchronized Sync(DoneMonitor);
  DoneMonitor.notifyAll();
}

void TaskBase::awaitDone(ForkJoinPool *Pool) {
  while (!isDone()) {
    // Helping join: a *worker* of this pool runs other tasks instead of
    // blocking (otherwise recursive fork/join would deadlock). External
    // threads block, as in java.util.concurrent.
    if (Pool && CurrentWorker.Pool == Pool && Pool->helpOneTask())
      continue;
    runtime::Synchronized Sync(DoneMonitor);
    if (!isDone())
      DoneMonitor.waitFor(/*Millis=*/1);
  }
}

ForkJoinPool::ForkJoinPool(unsigned Parallelism) {
  if (Parallelism == 0)
    Parallelism = hardwareThreads();
  for (unsigned I = 0; I < Parallelism; ++I)
    Workers.push_back(std::make_unique<WorkerState>());
  for (unsigned I = 0; I < Parallelism; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ForkJoinPool::~ForkJoinPool() {
  ShuttingDown.store(true, std::memory_order_release);
  for (auto &W : Workers)
    W->Park.unpark();
  for (auto &T : Threads)
    T.join();
}

bool ForkJoinPool::onWorkerThread() { return CurrentWorker.Pool != nullptr; }

void ForkJoinPool::schedule(std::shared_ptr<TaskBase> T) {
  if (CurrentWorker.Pool == this) {
    WorkerState &W = *Workers[CurrentWorker.Index];
    {
      std::lock_guard<std::mutex> Guard(W.DequeLock);
      W.Deque.push_back(std::move(T));
    }
    trace::instant(trace::EventKind::FjFork, "fj.fork",
                   CurrentWorker.Index);
    signalWork();
    return;
  }
  {
    runtime::Synchronized Sync(ExternalLock);
    ExternalQueue.push_back(std::move(T));
  }
  // Submissions from outside the pool overflow to the shared external
  // queue — the analogue of ForkJoinPool's submission-queue path.
  trace::instant(trace::EventKind::FjExternal, "fj.external");
  signalWork();
}

void ForkJoinPool::signalWork() {
  for (auto &W : Workers) {
    if (W->Idle.load(std::memory_order_acquire)) {
      W->Park.unpark();
      return;
    }
  }
}

std::shared_ptr<TaskBase> ForkJoinPool::popExternal() {
  runtime::Synchronized Sync(ExternalLock);
  if (ExternalQueue.empty())
    return nullptr;
  auto T = std::move(ExternalQueue.front());
  ExternalQueue.pop_front();
  return T;
}

std::shared_ptr<TaskBase> ForkJoinPool::findWork(unsigned SelfIndex) {
  // 1. Own deque, LIFO.
  if (SelfIndex < Workers.size()) {
    WorkerState &Self = *Workers[SelfIndex];
    std::lock_guard<std::mutex> Guard(Self.DequeLock);
    if (!Self.Deque.empty()) {
      auto T = std::move(Self.Deque.back());
      Self.Deque.pop_back();
      return T;
    }
  }
  // 2. External submissions.
  if (auto T = popExternal())
    return T;
  // 3. Steal FIFO from any victim.
  for (size_t I = 0; I < Workers.size(); ++I) {
    if (I == SelfIndex)
      continue;
    WorkerState &Victim = *Workers[I];
    bool Stole = false;
    std::shared_ptr<TaskBase> T;
    {
      std::lock_guard<std::mutex> Guard(Victim.DequeLock);
      if (!Victim.Deque.empty()) {
        T = std::move(Victim.Deque.front());
        Victim.Deque.pop_front();
        Stole = true;
      }
    }
    if (Stole) {
      trace::instant(trace::EventKind::FjSteal, "fj.steal", SelfIndex, I);
      return T;
    }
  }
  return nullptr;
}

bool ForkJoinPool::helpOneTask() {
  unsigned SelfIndex =
      CurrentWorker.Pool == this ? CurrentWorker.Index : Workers.size();
  if (auto T = findWork(SelfIndex)) {
    T->run();
    return true;
  }
  return false;
}

void ForkJoinPool::workerLoop(unsigned Index) {
  CurrentWorker.Pool = this;
  CurrentWorker.Index = Index;
  WorkerState &Self = *Workers[Index];
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    if (auto T = findWork(Index)) {
      T->run();
      continue;
    }
    // Nothing to do: advertise idleness, re-check, then park briefly. The
    // re-check after setting Idle closes the lost-wakeup window against
    // signalWork.
    Self.Idle.store(true, std::memory_order_release);
    if (auto T = findWork(Index)) {
      Self.Idle.store(false, std::memory_order_release);
      T->run();
      continue;
    }
    uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
    Self.Park.parkFor(/*Millis=*/2);
    if (TraceT0)
      trace::span(trace::EventKind::FjIdle, "fj.idle", TraceT0,
                  trace::nowNanos() - TraceT0, Index);
    Self.Idle.store(false, std::memory_order_release);
  }
  CurrentWorker.Pool = nullptr;
}

void ForkJoinPool::parallelFor(
    size_t Lo, size_t Hi, size_t Grain,
    const std::function<void(size_t, size_t)> &Body) {
  assert(Lo <= Hi && "invalid range");
  if (Grain == 0)
    Grain = 1;
  if (Hi - Lo <= Grain || parallelism() == 1) {
    if (Lo != Hi)
      Body(Lo, Hi);
    return;
  }
  size_t Mid = Lo + (Hi - Lo) / 2;
  auto Right = fork([&] { parallelFor(Mid, Hi, Grain, Body); });
  parallelFor(Lo, Mid, Grain, Body);
  join(Right);
}
