//===- forkjoin/ForkJoinPool.cpp ------------------------------------------==//
//
// The lock-free scheduler paths. The wakeup protocol's correctness
// argument lives in DESIGN.md §9; the two load-bearing rules are
//
//  (1) every enqueue that can need a wakeup — an external MPSC push, or a
//      local deque push when the deque was (nearly) empty — is followed
//      by signalWork(), whose seq_cst fence orders the enqueue before the
//      idle-stack read. Pushes onto an already-deep deque may skip the
//      signal (as in java.util.concurrent): rule (2)'s rescan covers
//      them for workers going idle, successful steals re-signal while
//      the victim stays non-empty, and the owner never parks with its
//      own deque non-empty (both park sites pop it first); and
//  (2) every worker registers on the idle stack *before* its final
//      re-check of the queues, with a seq_cst registration CAS between
//      them. So for any enqueue/park race, either the producer observes
//      the registration (and unparks the worker), or the worker's
//      re-check observes the task. Parker permits make an early unpark
//      stick: an unpark delivered between re-check and park() is consumed
//      by that park(), which then returns immediately.
//
//===----------------------------------------------------------------------===//

#include "forkjoin/ForkJoinPool.h"

#include "support/Clock.h"
#include "trace/Trace.h"

using namespace ren;
using namespace ren::forkjoin;

namespace {

/// Identifies the worker context of the calling thread.
struct WorkerContext {
  ForkJoinPool *Pool = nullptr;
  unsigned Index = 0;
};

thread_local WorkerContext CurrentWorker;

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// One step of bounded exponential backoff: short pause bursts first,
/// yields after (so single-CPU hosts make progress while we spin).
inline void backoffStep(unsigned Round) {
  if (Round < 4) {
    for (unsigned I = 0; I < (8u << Round); ++I)
      cpuRelax();
  } else {
    std::this_thread::yield();
  }
}

/// Spin rounds before an idle worker registers and parks.
constexpr unsigned kIdleSpinRounds = 8;
/// Pure-spin iterations a joiner burns before arranging the parked wait.
constexpr unsigned kJoinSpins = 256;

constexpr uint64_t kIdleIndexMask = 0xFFFFFFFFull;

inline uint64_t bumpTag(uint64_t Head) {
  return ((Head >> 32) + 1) << 32;
}

} // namespace

/// Per-worker state: the Chase–Lev deque, the (instrumented) parking slot,
/// and the idle-stack linkage. Padded so one worker's deque indices never
/// share a cache line with a neighbour's.
struct alignas(64) ForkJoinPool::WorkerState {
  ChaseLevDeque<TaskBase> Deque;
  runtime::Parker Park;
  std::atomic<bool> OnIdleStack{false};
  std::atomic<uint64_t> IdleNext{0};
};

//===----------------------------------------------------------------------===//
// TaskBase: completion state machine
//===----------------------------------------------------------------------===//

void TaskBase::run() {
  assert(State.load(std::memory_order_relaxed) != kDone && "task ran twice");
  execute();
  // Publish the result and claim the waiter list in one exchange: release
  // so waiters' acquire of Released/State sees the body's writes, acquire
  // so we see the waiter nodes' fields.
  uintptr_t W = State.exchange(kDone, std::memory_order_acq_rel);
  while (W != kActive) {
    assert(W != kDone && "task completed twice");
    auto *N = reinterpret_cast<WaitNode *>(W);
    // Copy everything out of the node *before* releasing it: once
    // Released is set the waiter may return and pop its stack frame.
    W = N->Next;
    runtime::Parker *P = N->P;
    N->Released.store(true, std::memory_order_release);
    P->unpark();
  }
}

void TaskBase::awaitDone(ForkJoinPool *Pool) {
  if (isDone())
    return;
  const bool IsWorker = Pool && CurrentWorker.Pool == Pool;

  // Phase 1 — helping join: a *worker* of this pool runs other tasks
  // instead of blocking (otherwise recursive fork/join would starve).
  // External threads skip straight to the wait; as in java.util.concurrent
  // they block rather than execute pool tasks.
  if (IsWorker) {
    while (!isDone())
      if (!Pool->helpOneTask())
        break;
    if (isDone())
      return;
  }

  // Phase 2 — bounded spin: fork/join tasks are short; most joins whose
  // task is already executing complete within a few hundred cycles. After
  // a short pause burst, spin with yields: if the runner of the joined
  // task was preempted (oversubscribed or single-CPU hosts), pausing only
  // delays it, yielding hands it the CPU.
  for (unsigned I = 0; I < kJoinSpins; ++I) {
    if (isDone())
      return;
    if (I < 64)
      cpuRelax();
    else
      std::this_thread::yield();
  }

  // Phase 3 — event-driven wait: register a stack node on the task's
  // state word, then park until the completing thread releases us. A
  // worker keeps helping between parks and stays reachable through the
  // pool's idle stack, so scheduler wakeups (new work) and the completion
  // wakeup both land on the same parker.
  runtime::Parker &P = IsWorker
                           ? Pool->workerParker(CurrentWorker.Index)
                           : runtime::currentParker();
  WaitNode N;
  N.P = &P;
  uintptr_t S = State.load(std::memory_order_acquire);
  while (true) {
    if (S == kDone)
      return;
    N.Next = S;
    if (State.compare_exchange_weak(S, reinterpret_cast<uintptr_t>(&N),
                                    std::memory_order_release,
                                    std::memory_order_acquire))
      break;
  }
  while (!N.Released.load(std::memory_order_acquire)) {
    if (IsWorker) {
      if (Pool->helpOneTask())
        continue;
      Pool->registerIdleWorker(CurrentWorker.Index);
      if (Pool->hasQueuedWork())
        continue; // Re-check race: go help instead of parking.
    }
    P.park();
  }
  // A worker can leave the wait still registered on the idle stack (woken
  // by task completion, not by a scheduler signal). Its stale entry could
  // swallow one future signal while it computes, so pass the baton: most
  // often this pops (and thereby deregisters) the worker itself.
  if (IsWorker &&
      Pool->Workers[CurrentWorker.Index]->OnIdleStack.load(
          std::memory_order_acquire))
    Pool->signalWork();
}

//===----------------------------------------------------------------------===//
// ForkJoinPool
//===----------------------------------------------------------------------===//

ForkJoinPool::ForkJoinPool(unsigned Parallelism) {
  if (Parallelism == 0)
    Parallelism = hardwareThreads();
  NumWorkers = Parallelism;
  for (unsigned I = 0; I < Parallelism; ++I)
    Workers.push_back(std::make_unique<WorkerState>());
  for (unsigned I = 0; I < Parallelism; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ForkJoinPool::~ForkJoinPool() {
  ShuttingDown.store(true, std::memory_order_seq_cst);
  for (auto &W : Workers)
    W->Park.unpark();
  for (auto &T : Threads)
    T.join();
  // Drop tasks that never ran (submitted around shutdown). Their waiters,
  // if any, were user errors already (joining a task on a dying pool).
  for (auto &W : Workers)
    while (TaskBase *T = W->Deque.pop())
      T->release();
  while (TaskBase *T = tryPopExternal())
    T->release();
}

bool ForkJoinPool::onWorkerThread() { return CurrentWorker.Pool != nullptr; }

runtime::Parker &ForkJoinPool::workerParker(unsigned Index) {
  return Workers[Index]->Park;
}

void ForkJoinPool::schedule(TaskBase *T) {
  if (CurrentWorker.Pool == this) {
    ChaseLevDeque<TaskBase> &D = Workers[CurrentWorker.Index]->Deque;
    size_t Pre = D.sizeEstimate();
    D.push(T);
    trace::instant(trace::EventKind::FjFork, "fj.fork",
                   CurrentWorker.Index);
    // Signal only when the deque was (nearly) empty before the push, as
    // java.util.concurrent does: deeper deques were already signalled
    // for, any later idle registration rescans every queue (rule (2))
    // and sees them, and the owner itself never parks while its own
    // deque is non-empty (both park sites pop it first). Skipping the
    // signal elides its seq_cst fence from the fork fast path.
    if (Pre <= 1)
      signalWork();
    return;
  }
  // Submissions from outside the pool go to the shared MPSC queue — the
  // analogue of ForkJoinPool's submission-queue path. Size is bumped
  // before the push so a parking worker's re-check cannot under-count.
  ExternalSize.fetch_add(1, std::memory_order_release);
  External.push(T);
  trace::instant(trace::EventKind::FjExternal, "fj.external");
  signalWork();
}

void ForkJoinPool::signalWork() {
  // Order the caller's enqueue before the idle-stack read (rule (1) of
  // the wakeup protocol).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if ((IdleHead.load(std::memory_order_acquire) & kIdleIndexMask) == 0)
    return; // Nobody idle: the common fast path, one load.
  if (WorkerState *W = popIdleWorker())
    W->Park.unpark();
}

bool ForkJoinPool::registerIdleWorker(unsigned Index) {
  WorkerState &W = *Workers[Index];
  // Single registration at a time per worker: a popped-but-not-yet-woken
  // worker skips re-pushing (its pending unpark permit covers the park).
  if (W.OnIdleStack.exchange(true, std::memory_order_acq_rel))
    return false;
  uint64_t Head = IdleHead.load(std::memory_order_relaxed);
  while (true) {
    W.IdleNext.store(Head & kIdleIndexMask, std::memory_order_relaxed);
    uint64_t NewHead = bumpTag(Head) | (Index + 1);
    // seq_cst: the registration must be ordered before the caller's
    // subsequent queue re-check (rule (2) of the wakeup protocol).
    if (IdleHead.compare_exchange_weak(Head, NewHead,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      IdleCount.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

ForkJoinPool::WorkerState *ForkJoinPool::popIdleWorker() {
  uint64_t Head = IdleHead.load(std::memory_order_acquire);
  while (true) {
    uint64_t Idx = Head & kIdleIndexMask;
    if (Idx == 0)
      return nullptr;
    WorkerState &W = *Workers[Idx - 1];
    uint64_t Next = W.IdleNext.load(std::memory_order_relaxed);
    uint64_t NewHead = bumpTag(Head) | Next;
    // The tag bump makes a concurrent pop/re-push of the same worker fail
    // this CAS (ABA defense); a stale IdleNext read is then discarded.
    if (IdleHead.compare_exchange_weak(Head, NewHead,
                                       std::memory_order_seq_cst,
                                       std::memory_order_acquire)) {
      IdleCount.fetch_sub(1, std::memory_order_relaxed);
      W.OnIdleStack.store(false, std::memory_order_release);
      return &W;
    }
  }
}

bool ForkJoinPool::hasQueuedWork() const {
  if (ExternalSize.load(std::memory_order_acquire) > 0)
    return true;
  for (const auto &W : Workers)
    if (!W->Deque.emptyEstimate())
      return true;
  return false;
}

TaskBase *ForkJoinPool::tryPopExternal() {
  if (ExternalSize.load(std::memory_order_acquire) == 0)
    return nullptr;
  // One consumer at a time, but nobody ever waits: losers fall through to
  // stealing and come back on the next findWork.
  if (ExternalPopBusy.exchange(true, std::memory_order_acquire))
    return nullptr;
  MpscNode *N = External.pop();
  if (N)
    ExternalSize.fetch_sub(1, std::memory_order_release);
  ExternalPopBusy.store(false, std::memory_order_release);
  return static_cast<TaskBase *>(N);
}

TaskBase *ForkJoinPool::findWork(unsigned SelfIndex) {
  // 1. Own deque, LIFO (best locality; the task just forked).
  if (SelfIndex < NumWorkers)
    if (TaskBase *T = Workers[SelfIndex]->Deque.pop())
      return T;
  // 2. External submissions, FIFO.
  if (TaskBase *T = tryPopExternal())
    return T;
  // 3. Steal FIFO from a victim. An aborted steal (lost CAS) means the
  // victim still had work when we looked, so sweep once more before
  // reporting starvation.
  for (unsigned Round = 0; Round < 2; ++Round) {
    bool SawAbort = false;
    for (unsigned I = 1; I <= NumWorkers; ++I) {
      unsigned Victim = (SelfIndex + I) % NumWorkers;
      if (Victim == SelfIndex)
        continue;
      auto R = Workers[Victim]->Deque.steal();
      if (R.Item) {
        trace::instant(trace::EventKind::FjSteal, "fj.steal", SelfIndex,
                       Victim);
        // Signal propagation: if the victim still has queued tasks,
        // recruit another worker — forks past the first skip their own
        // signal, so thieves re-broadcast saturation.
        if (!Workers[Victim]->Deque.emptyEstimate())
          signalWork();
        return R.Item;
      }
      SawAbort |= R.Aborted;
    }
    if (!SawAbort)
      break;
  }
  return nullptr;
}

bool ForkJoinPool::helpOneTask() {
  unsigned SelfIndex =
      CurrentWorker.Pool == this ? CurrentWorker.Index : NumWorkers;
  if (TaskBase *T = findWork(SelfIndex)) {
    runTask(T);
    return true;
  }
  return false;
}

void ForkJoinPool::workerLoop(unsigned Index) {
  CurrentWorker.Pool = this;
  CurrentWorker.Index = Index;
  WorkerState &Self = *Workers[Index];
  unsigned SpinRound = 0;
  while (true) {
    if (ShuttingDown.load(std::memory_order_acquire))
      break;
    if (TaskBase *T = findWork(Index)) {
      SpinRound = 0;
      runTask(T);
      continue;
    }
    // Idle: bounded exponential spin first — steal-heavy phases hand out
    // new work within microseconds, far cheaper than a park round trip.
    if (SpinRound < kIdleSpinRounds) {
      backoffStep(SpinRound++);
      continue;
    }
    // Event-driven park. ORDER MATTERS: register on the idle stack
    // *before* the final re-check. A producer that misses our
    // registration published its task before our re-check (seq_cst), so
    // one side always sees the other; flipping these two steps reopens
    // the classic lost-wakeup window (regression-tested by
    // ForkJoinStress.ExternalSubmitWakesParkedWorkers).
    registerIdleWorker(Index);
    if (TaskBase *T = findWork(Index)) {
      // We consumed work while (possibly still) registered: hand the
      // potentially swallowed signal to the next idler.
      signalWork();
      SpinRound = 0;
      runTask(T);
      continue;
    }
    if (ShuttingDown.load(std::memory_order_acquire))
      break;
    uint64_t TraceT0 = trace::enabled() ? trace::nowNanos() : 0;
    Self.Park.park();
    if (TraceT0)
      trace::span(trace::EventKind::FjIdle, "fj.idle", TraceT0,
                  trace::nowNanos() - TraceT0, Index);
    SpinRound = 0;
  }
  CurrentWorker.Pool = nullptr;
}

void ForkJoinPool::parallelFor(
    size_t Lo, size_t Hi, size_t Grain,
    const std::function<void(size_t, size_t)> &Body) {
  assert(Lo <= Hi && "invalid range");
  if (Grain == 0)
    Grain = 1;
  if (Hi - Lo <= Grain || parallelism() == 1) {
    if (Lo != Hi)
      Body(Lo, Hi);
    return;
  }
  size_t Mid = Lo + (Hi - Lo) / 2;
  auto Right = fork([&] { parallelFor(Mid, Hi, Grain, Body); });
  parallelFor(Lo, Mid, Grain, Body);
  join(Right);
}
