//===- forkjoin/ChaseLevDeque.h - Lock-free work-stealing deque -*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically-growing Chase–Lev work-stealing deque (Chase & Lev,
/// "Dynamic Circular Work-Stealing Deque", SPAA'05) with the C11 memory
/// orderings of Lê, Pop, Cohen & Zappa Nardelli ("Correct and Efficient
/// Work-Stealing for Weak Memory Models", PPoPP'13).
///
/// One thread — the owner — pushes and pops at the bottom in LIFO order;
/// any number of thieves steal from the top in FIFO order. The owner's
/// push/pop are CAS-free except when the deque holds a single element,
/// where owner and thieves race on one compare-exchange over Top. This is
/// the substrate java.util.concurrent.ForkJoinPool hides inside its
/// WorkQueue; like the VM-internal deque it models, it is deliberately
/// *not* routed through the counted runtime::Atomic wrappers — the paper's
/// instrumentation does not observe the pool's own bookkeeping.
///
/// Memory-ordering argument (the load-bearing subtleties; DESIGN.md §9
/// carries the longer version):
///
///  - push: the element store is relaxed but sequenced before a release
///    fence and the relaxed Bottom store. A thief that observes the new
///    Bottom through its acquire load sees the element store.
///  - pop: Bottom is lowered with a relaxed store, then a seq_cst fence
///    orders that store before the Top load. Symmetrically, steal's
///    seq_cst fence orders its Top read before its Bottom read. These two
///    fences are what prevents the owner and a thief from both taking the
///    *last* element without noticing each other: in any interleaving at
///    least one of them observes the other's index update and falls into
///    the CAS on Top, which arbitrates.
///  - steal: the buffer pointer and the element are read *before* the
///    claiming CAS on Top; the element is only used if that CAS wins.
///    A lost CAS means the slot was concurrently taken and the read value
///    is discarded (returned as Aborted, never dereferenced).
///  - grow: the owner allocates a ring of twice the capacity, copies the
///    live window [Top, Bottom), and publishes it with a release store of
///    the buffer pointer. Retired rings are kept on a chain owned by the
///    deque and freed only in the destructor, so a thief that loaded the
///    old ring pointer can still safely read a slot from it: the slot's
///    content at any index < the Bottom it observed is unchanged by the
///    copy, and the claiming CAS on Top still arbitrates ownership.
///
//===----------------------------------------------------------------------===//

#ifndef REN_FORKJOIN_CHASELEVDEQUE_H
#define REN_FORKJOIN_CHASELEVDEQUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace ren {
namespace forkjoin {

/// A growable single-owner / multi-thief deque of \p T pointers.
template <typename T> class ChaseLevDeque {
public:
  /// Result of a steal attempt. Aborted (lost the claiming CAS or raced a
  /// concurrent resize) is distinct from Empty so callers can choose to
  /// retry the victim instead of concluding it has no work.
  struct StealResult {
    T *Item = nullptr;
    bool Aborted = false;
  };

  explicit ChaseLevDeque(uint64_t InitialCapacity = 64)
      : Buf(new Ring(roundUpPow2(InitialCapacity))) {}

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  ~ChaseLevDeque() {
    Ring *R = Buf.load(std::memory_order_relaxed);
    while (R) {
      Ring *Prev = R->Prev;
      delete R;
      R = Prev;
    }
  }

  /// Owner-only: pushes \p Item at the bottom, growing the ring if full.
  /// Never blocks; no CAS on this path.
  void push(T *Item) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    Ring *R = Buf.load(std::memory_order_relaxed);
    if (B - Tp > static_cast<int64_t>(R->Capacity) - 1)
      R = grow(R, Tp, B);
    R->put(B, Item);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pops the most recently pushed item (LIFO), or nullptr if
  /// the deque is empty. CAS-free except when one element remains.
  T *pop() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *R = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_relaxed);
    T *Item = nullptr;
    if (Tp <= B) {
      Item = R->get(B);
      if (Tp == B) {
        // Single element left: race the thieves on Top.
        if (!Top.compare_exchange_strong(Tp, Tp + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed))
          Item = nullptr;
        Bottom.store(B + 1, std::memory_order_relaxed);
      }
    } else {
      // Already empty; undo the speculative decrement.
      Bottom.store(B + 1, std::memory_order_relaxed);
    }
    return Item;
  }

  /// Any thread: attempts to steal the oldest item (FIFO). A lost race is
  /// reported as Aborted with a null Item.
  StealResult steal() {
    StealResult Res;
    int64_t Tp = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (Tp < B) {
      Ring *R = Buf.load(std::memory_order_acquire);
      T *Item = R->get(Tp);
      if (!Top.compare_exchange_strong(Tp, Tp + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        Res.Aborted = true;
        return Res;
      }
      Res.Item = Item;
    }
    return Res;
  }

  /// Racy size estimate (exact when quiescent; never negative).
  size_t sizeEstimate() const {
    int64_t B = Bottom.load(std::memory_order_acquire);
    int64_t Tp = Top.load(std::memory_order_acquire);
    return B > Tp ? static_cast<size_t>(B - Tp) : 0;
  }

  /// Racy emptiness estimate (used by pre-park re-checks; a false "empty"
  /// is tolerated only because the signalling protocol re-examines it).
  bool emptyEstimate() const { return sizeEstimate() == 0; }

  /// Number of ring growths performed (owner-read; for tests and traces).
  uint64_t growCount() const {
    return Grows.load(std::memory_order_relaxed);
  }

  /// Current ring capacity.
  uint64_t capacity() const {
    return Buf.load(std::memory_order_acquire)->Capacity;
  }

private:
  struct Ring {
    explicit Ring(uint64_t Cap)
        : Capacity(Cap), Mask(Cap - 1),
          Slots(new std::atomic<T *>[Cap]) {}
    ~Ring() { delete[] Slots; }

    T *get(int64_t I) const {
      return Slots[static_cast<uint64_t>(I) & Mask].load(
          std::memory_order_relaxed);
    }
    void put(int64_t I, T *Item) {
      Slots[static_cast<uint64_t>(I) & Mask].store(
          Item, std::memory_order_relaxed);
    }

    const uint64_t Capacity;
    const uint64_t Mask;
    std::atomic<T *> *Slots;
    Ring *Prev = nullptr; ///< Retired predecessor (freed in ~ChaseLevDeque).
  };

  static uint64_t roundUpPow2(uint64_t V) {
    uint64_t P = 1;
    while (P < V)
      P <<= 1;
    return P < 2 ? 2 : P;
  }

  /// Owner-only: doubles the ring, copying the live window. The old ring
  /// stays reachable (and readable by in-flight thieves) until destruction.
  Ring *grow(Ring *Old, int64_t Tp, int64_t B) {
    Ring *R = new Ring(Old->Capacity * 2);
    for (int64_t I = Tp; I < B; ++I)
      R->put(I, Old->get(I));
    R->Prev = Old;
    Buf.store(R, std::memory_order_release);
    Grows.fetch_add(1, std::memory_order_relaxed);
    return R;
  }

  // Top (thief end) and Bottom (owner end) on separate cache lines so
  // steals do not invalidate the owner's push/pop line.
  alignas(64) std::atomic<int64_t> Top{0};
  alignas(64) std::atomic<int64_t> Bottom{0};
  alignas(64) std::atomic<Ring *> Buf;
  std::atomic<uint64_t> Grows{0};
};

} // namespace forkjoin
} // namespace ren

#endif // REN_FORKJOIN_CHASELEVDEQUE_H
