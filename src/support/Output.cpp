//===- support/Output.cpp -------------------------------------------------==//

#include "support/Output.h"

#include "support/Format.h"

#include <cassert>

using namespace ren;

void CsvWriter::addRow(const std::vector<std::string> &Cells) {
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (I != 0)
      Buffer.push_back(',');
    const std::string &Cell = Cells[I];
    bool NeedsQuote = Cell.find_first_of(",\"\n") != std::string::npos;
    if (!NeedsQuote) {
      Buffer += Cell;
      continue;
    }
    Buffer.push_back('"');
    for (char C : Cell) {
      if (C == '"')
        Buffer.push_back('"');
      Buffer.push_back(C);
    }
    Buffer.push_back('"');
  }
  Buffer.push_back('\n');
}

void JsonWriter::maybeComma() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Buffer.push_back(',');
    NeedComma.back() = true;
  }
}

void JsonWriter::escapeInto(const std::string &Text) {
  Buffer.push_back('"');
  for (char C : Text) {
    switch (C) {
    case '"':
      Buffer += "\\\"";
      break;
    case '\\':
      Buffer += "\\\\";
      break;
    case '\n':
      Buffer += "\\n";
      break;
    case '\t':
      Buffer += "\\t";
      break;
    case '\r':
      Buffer += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Buffer += Hex;
      } else {
        Buffer.push_back(C);
      }
    }
  }
  Buffer.push_back('"');
}

void JsonWriter::beginObject() {
  maybeComma();
  Buffer.push_back('{');
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  assert(!NeedComma.empty() && "unbalanced endObject");
  NeedComma.pop_back();
  Buffer.push_back('}');
}

void JsonWriter::beginArray() {
  maybeComma();
  Buffer.push_back('[');
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  assert(!NeedComma.empty() && "unbalanced endArray");
  NeedComma.pop_back();
  Buffer.push_back(']');
}

void JsonWriter::key(const std::string &Name) {
  maybeComma();
  escapeInto(Name);
  Buffer.push_back(':');
  PendingKey = true;
}

void JsonWriter::value(const std::string &Text) {
  maybeComma();
  escapeInto(Text);
}

void JsonWriter::value(const char *Text) { value(std::string(Text)); }

void JsonWriter::value(double Number) {
  maybeComma();
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Number);
  Buffer += Buf;
}

void JsonWriter::value(uint64_t Number) {
  maybeComma();
  Buffer += std::to_string(Number);
}

void JsonWriter::value(int64_t Number) {
  maybeComma();
  Buffer += std::to_string(Number);
}

void JsonWriter::value(bool Flag) {
  maybeComma();
  Buffer += Flag ? "true" : "false";
}
