//===- support/Clock.h - Wall/CPU clocks and stopwatches --------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time sources used by the harness and by the reference-cycle substitution.
///
/// The paper normalizes all metrics by *reference cycles*: machine cycles at
/// a constant nominal frequency (Section 3.2). Hardware PMUs are neither
/// portable nor deterministic, so this reproduction defines reference cycles
/// as per-thread CPU time multiplied by a fixed nominal frequency
/// (kNominalHz). This preserves the paper's key property: the measure is
/// independent of frequency scaling and comparable across benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef REN_SUPPORT_CLOCK_H
#define REN_SUPPORT_CLOCK_H

#include <cstdint>

namespace ren {

/// Nominal CPU frequency used to convert CPU time into reference cycles.
/// The experimental setup in the paper used a 2.1 GHz Xeon; we keep the same
/// constant so reported magnitudes land in a familiar range.
inline constexpr double kNominalHz = 2.1e9;

/// Returns monotonic wall-clock time in nanoseconds.
uint64_t wallNanos();

/// Returns CPU time consumed by the calling thread, in nanoseconds.
uint64_t threadCpuNanos();

/// Returns CPU time consumed by the whole process, in nanoseconds.
uint64_t processCpuNanos();

/// Returns the number of online hardware threads (at least 1).
unsigned hardwareThreads();

/// Converts thread CPU nanoseconds into reference cycles.
inline uint64_t cpuNanosToRefCycles(uint64_t Nanos) {
  return static_cast<uint64_t>(static_cast<double>(Nanos) * kNominalHz / 1e9);
}

/// A simple wall-clock stopwatch.
class Stopwatch {
public:
  Stopwatch() : StartNs(wallNanos()) {}

  /// Restarts the stopwatch.
  void reset() { StartNs = wallNanos(); }

  /// Returns elapsed wall time in nanoseconds.
  uint64_t elapsedNanos() const { return wallNanos() - StartNs; }

  /// Returns elapsed wall time in milliseconds as a double.
  double elapsedMillis() const {
    return static_cast<double>(elapsedNanos()) / 1e6;
  }

private:
  uint64_t StartNs;
};

} // namespace ren

#endif // REN_SUPPORT_CLOCK_H
