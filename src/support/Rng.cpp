//===- support/Rng.cpp ----------------------------------------------------==//

#include "support/Rng.h"

#include <cmath>

using namespace ren;

double Xoshiro256StarStar::sqrtOf(double X) { return std::sqrt(X); }
double Xoshiro256StarStar::logOf(double X) { return std::log(X); }
