//===- support/Format.cpp -------------------------------------------------==//

#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace ren;

std::string ren::fixed(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string ren::scientific(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*E", Precision, Value);
  return Buf;
}

std::string ren::signedPercent(double Fraction) {
  double Pct = Fraction * 100.0;
  char Buf[64];
  // The paper prints "+0%"/"-0%" for sub-percent effects; keep that style.
  std::snprintf(Buf, sizeof(Buf), "%+.0f%%", Pct);
  return Buf;
}

std::string ren::humanBytes(uint64_t Bytes) {
  static const char *Suffixes[] = {"B", "KB", "MB", "GB", "TB"};
  double Value = static_cast<double>(Bytes);
  int Index = 0;
  while (Value >= 1024.0 && Index < 4) {
    Value /= 1024.0;
    ++Index;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f%s", Value, Suffixes[Index]);
  return Buf;
}

std::string ren::groupedInt(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Result.push_back(' ');
    Result.push_back(*It);
    ++Count;
  }
  return std::string(Result.rbegin(), Result.rend());
}

std::string ren::padLeft(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

std::string ren::padRight(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return Text + std::string(Width - Text.size(), ' ');
}
