//===- support/Table.h - Console table rendering ----------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal console table used by the bench binaries to print the paper's
/// tables (Table 3, Table 4, Tables 7-16, ...) in an aligned, readable form.
///
//===----------------------------------------------------------------------===//

#ifndef REN_SUPPORT_TABLE_H
#define REN_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace ren {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> Headers)
      : Header(std::move(Headers)) {}

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table to a string (trailing newline included).
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows; // empty vector == separator
};

} // namespace ren

#endif // REN_SUPPORT_TABLE_H
