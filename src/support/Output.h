//===- support/Output.h - CSV and JSON result writers ----------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight CSV and JSON writers for machine-readable harness output.
/// The Renaissance harness can emit results as CSV/JSON; so can ours.
///
//===----------------------------------------------------------------------===//

#ifndef REN_SUPPORT_OUTPUT_H
#define REN_SUPPORT_OUTPUT_H

#include <string>
#include <vector>

namespace ren {

/// Incrementally builds CSV text with proper quoting.
class CsvWriter {
public:
  /// Appends one row; cells containing commas/quotes/newlines are quoted.
  void addRow(const std::vector<std::string> &Cells);

  /// Returns the document built so far.
  const std::string &str() const { return Buffer; }

private:
  std::string Buffer;
};

/// A tiny streaming JSON writer (objects, arrays, scalars) with escaping.
///
/// Usage mirrors a SAX-style writer:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("benchmark"); W.value("scrabble");
///   W.key("times"); W.beginArray(); W.value(1.5); W.endArray();
///   W.endObject();
/// \endcode
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(const std::string &Name);
  void value(const std::string &Text);
  void value(const char *Text);
  void value(double Number);
  void value(uint64_t Number);
  void value(int64_t Number);
  void value(int Number) { value(static_cast<int64_t>(Number)); }
  void value(bool Flag);

  /// Returns the document built so far.
  const std::string &str() const { return Buffer; }

private:
  void maybeComma();
  void escapeInto(const std::string &Text);

  std::string Buffer;
  // Tracks whether a value has already been emitted at each nesting level.
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

} // namespace ren

#endif // REN_SUPPORT_OUTPUT_H
