//===- support/Table.cpp --------------------------------------------------==//

#include "support/Table.h"

#include "support/Format.h"

#include <cassert>

using namespace ren;

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

void TextTable::addSeparator() { Rows.emplace_back(); }

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Line += "  ";
      // Left-align the first column (names), right-align numbers.
      Line += I == 0 ? padRight(Row[I], Widths[I]) : padLeft(Row[I], Widths[I]);
    }
    return Line + "\n";
  };

  std::string Out = renderRow(Header);
  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;
  Out += std::string(TotalWidth >= 2 ? TotalWidth - 2 : 0, '-') + "\n";
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      Out += std::string(TotalWidth >= 2 ? TotalWidth - 2 : 0, '-') + "\n";
      continue;
    }
    Out += renderRow(Row);
  }
  return Out;
}
