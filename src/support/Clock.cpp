//===- support/Clock.cpp --------------------------------------------------==//

#include "support/Clock.h"

#include <ctime>
#include <thread>

using namespace ren;

static uint64_t readClock(clockid_t Id) {
  timespec Ts;
  clock_gettime(Id, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(Ts.tv_nsec);
}

uint64_t ren::wallNanos() { return readClock(CLOCK_MONOTONIC); }

uint64_t ren::threadCpuNanos() { return readClock(CLOCK_THREAD_CPUTIME_ID); }

uint64_t ren::processCpuNanos() { return readClock(CLOCK_PROCESS_CPUTIME_ID); }

unsigned ren::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}
