//===- support/Check.h - Always-on invariant checks -------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// REN_CHECK: an assert that survives release builds. The library uses
/// plain assert() for internal invariants, but API-misuse errors that
/// would otherwise turn into silent undefined behaviour (e.g. reading a
/// fork/join task's result before it completed) must fail loudly in every
/// build type.
///
//===----------------------------------------------------------------------===//

#ifndef REN_SUPPORT_CHECK_H
#define REN_SUPPORT_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace ren {
namespace support {

[[noreturn]] inline void checkFailed(const char *Cond, const char *Msg,
                                     const char *File, int Line) {
  std::fprintf(stderr, "REN_CHECK failed: %s (%s) at %s:%d\n", Cond, Msg,
               File, Line);
  std::fflush(stderr);
  std::abort();
}

} // namespace support
} // namespace ren

/// Aborts (in every build type) with a diagnostic if \p Cond is false.
#define REN_CHECK(Cond, Msg)                                                 \
  do {                                                                       \
    if (!(Cond))                                                             \
      ::ren::support::checkFailed(#Cond, Msg, __FILE__, __LINE__);           \
  } while (0)

#endif // REN_SUPPORT_CHECK_H
