//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generators used by every workload.
///
/// The paper's benchmark-selection goals (Section 2.1) require *deterministic
/// execution*: the control flow of a benchmark must not depend on entropy
/// sources such as the current time. All data generators in this repository
/// therefore draw from the explicitly seeded generators in this file.
///
//===----------------------------------------------------------------------===//

#ifndef REN_SUPPORT_RNG_H
#define REN_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ren {

/// SplitMix64: a tiny, fast, high-quality 64-bit generator.
///
/// Primarily used to seed Xoshiro256StarStar and for cheap per-thread
/// streams. Passes BigCrush when used as a standalone generator.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: the default workload generator.
///
/// The JVM workloads in the paper mostly rely on java.util.Random; we use a
/// stronger generator with the same "explicit constant seed" discipline.
class Xoshiro256StarStar {
public:
  /// Creates a generator whose four state words are derived from \p Seed via
  /// SplitMix64, as recommended by the xoshiro authors.
  explicit Xoshiro256StarStar(uint64_t Seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed value in [0, Bound).
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    // Lemire-style rejection-free multiply-shift is overkill here; a simple
    // rejection loop keeps the distribution exactly uniform.
    uint64_t Threshold = (0ULL - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniformly distributed int in [Lo, Hi] inclusive.
  int64_t nextInt(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(
                    nextBounded(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a standard-normal deviate (Marsaglia polar method).
  double nextGaussian() {
    if (HaveSpare) {
      HaveSpare = false;
      return Spare;
    }
    double U, V, S;
    do {
      U = 2.0 * nextDouble() - 1.0;
      V = 2.0 * nextDouble() - 1.0;
      S = U * U + V * V;
    } while (S >= 1.0 || S == 0.0);
    double Mul = sqrtOf(-2.0 * logOf(S) / S);
    Spare = V * Mul;
    HaveSpare = true;
    return U * Mul;
  }

  /// Returns true with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBounded(I)]);
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }
  // Indirections so the header does not pull in <cmath> for every user.
  static double sqrtOf(double X);
  static double logOf(double X);

  uint64_t State[4];
  bool HaveSpare = false;
  double Spare = 0.0;
};

} // namespace ren

#endif // REN_SUPPORT_RNG_H
