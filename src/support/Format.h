//===- support/Format.h - Small string formatting helpers ------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers shared by reporters and bench binaries.
///
//===----------------------------------------------------------------------===//

#ifndef REN_SUPPORT_FORMAT_H
#define REN_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace ren {

/// Formats \p Value with \p Precision digits after the decimal point.
std::string fixed(double Value, int Precision = 2);

/// Formats \p Value in scientific notation with \p Precision digits,
/// matching the paper's Table 7 style (e.g. "4.27E+05").
std::string scientific(double Value, int Precision = 2);

/// Formats \p Value as a signed percentage ("+24%" / "-3%").
std::string signedPercent(double Fraction);

/// Formats a byte count with a binary-unit suffix ("6.87MB").
std::string humanBytes(uint64_t Bytes);

/// Formats \p Value with thousands separators ("5 144 959 612", paper style).
std::string groupedInt(uint64_t Value);

/// Left-pads \p Text with spaces to \p Width columns.
std::string padLeft(const std::string &Text, size_t Width);

/// Right-pads \p Text with spaces to \p Width columns.
std::string padRight(const std::string &Text, size_t Width);

} // namespace ren

#endif // REN_SUPPORT_FORMAT_H
