//===- ckmodel/CkModel.cpp -------------------------------------------------==//

#include "ckmodel/CkModel.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>
#include <unordered_set>

using namespace ren;
using namespace ren::ckmodel;

void ClassGraph::add(ClassDecl Decl) {
  if (Index.count(Decl.Name))
    return;
  Index[Decl.Name] = Classes.size();
  Classes.push_back(std::move(Decl));
}

void ClassGraph::merge(const ClassGraph &Other) {
  for (const ClassDecl &C : Other.Classes)
    add(C);
}

double ren::ckmodel::lcomFromSeed(unsigned NumMethods, unsigned NumFields,
                                  uint64_t Seed) {
  if (NumMethods < 2 || NumFields == 0)
    return 0.0;
  // Deterministic access matrix: method m accesses ~2 fields chosen by a
  // SplitMix stream.
  SplitMix64 Rng(Seed);
  std::vector<uint64_t> AccessMask(NumMethods, 0);
  for (unsigned M = 0; M < NumMethods; ++M) {
    unsigned Accesses = 1 + static_cast<unsigned>(Rng.next() % 3);
    for (unsigned A = 0; A < Accesses; ++A)
      AccessMask[M] |= 1ull << (Rng.next() % std::min(NumFields, 63u));
  }
  long Sharing = 0, Disjoint = 0;
  for (unsigned A = 0; A < NumMethods; ++A)
    for (unsigned B = A + 1; B < NumMethods; ++B) {
      if (AccessMask[A] & AccessMask[B])
        ++Sharing;
      else
        ++Disjoint;
    }
  return static_cast<double>(std::max(0l, Disjoint - Sharing));
}

std::vector<CkValues> ClassGraph::computeAll() const {
  std::vector<CkValues> Out(Classes.size());

  // NOC: immediate children.
  std::unordered_map<std::string, unsigned> Children;
  for (const ClassDecl &C : Classes)
    if (!C.Base.empty())
      ++Children[C.Base];

  // DIT by walking base chains (bounded to avoid cycles).
  auto depthOf = [&](const ClassDecl &C) {
    unsigned Depth = 1; // below the implicit root (java.lang.Object)
    const ClassDecl *Cur = &C;
    for (int Hop = 0; Hop < 64; ++Hop) {
      if (Cur->Base.empty())
        break;
      auto It = Index.find(Cur->Base);
      if (It == Index.end()) {
        ++Depth; // base outside the graph still adds a level
        break;
      }
      ++Depth;
      Cur = &Classes[It->second];
    }
    return Depth;
  };

  for (size_t I = 0; I < Classes.size(); ++I) {
    const ClassDecl &C = Classes[I];
    CkValues &V = Out[I];
    V.Wmc = C.NumMethods;
    V.Dit = depthOf(C);
    V.Noc = Children.count(C.Name) ? Children.at(C.Name) : 0;
    std::unordered_set<std::string> Coupled(C.UsedClasses.begin(),
                                            C.UsedClasses.end());
    if (!C.Base.empty())
      Coupled.insert(C.Base);
    Coupled.erase(C.Name);
    V.Cbo = static_cast<double>(Coupled.size());
    V.Rfc = C.NumMethods + C.ExternalMethodsCalled;
    V.Lcom = lcomFromSeed(C.NumMethods, C.NumFields, C.LcomSeed);
  }
  return Out;
}

CkSummary ClassGraph::summarize() const {
  CkSummary S;
  S.NumClasses = Classes.size();
  std::vector<CkValues> All = computeAll();
  for (const CkValues &V : All) {
    S.Sum.Wmc += V.Wmc;
    S.Sum.Dit += V.Dit;
    S.Sum.Cbo += V.Cbo;
    S.Sum.Noc += V.Noc;
    S.Sum.Rfc += V.Rfc;
    S.Sum.Lcom += V.Lcom;
  }
  if (!All.empty()) {
    double N = static_cast<double>(All.size());
    S.Average = {S.Sum.Wmc / N, S.Sum.Dit / N, S.Sum.Cbo / N,
                 S.Sum.Noc / N, S.Sum.Rfc / N, S.Sum.Lcom / N};
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Module inventory
//===----------------------------------------------------------------------===//

namespace {

/// Population parameters of one module's class set.
struct ModuleProfile {
  unsigned NumClasses;
  double MeanMethods;   // geometric-ish mean of methods per class
  double SubclassRate;  // probability a class extends another in-module
  double MeanCoupling;  // mean |UsedClasses|
  double MeanExtCalls;  // mean external methods called
};

/// Profiles are sized so per-benchmark loaded-class totals land in the
/// paper's Table 5 ballpark (Renaissance benchmarks load the most).
ModuleProfile profileFor(const std::string &Module) {
  if (Module == "jdkbase")
    return {1400, 12.0, 0.45, 12.0, 13.0};
  if (Module == "runtime")
    return {180, 11.0, 0.30, 11.0, 12.0};
  if (Module == "forkjoin")
    return {160, 12.5, 0.35, 12.5, 13.0};
  if (Module == "actors")
    return {300, 13.0, 0.40, 13.5, 13.0};
  if (Module == "stm")
    return {220, 12.0, 0.35, 12.5, 12.0};
  if (Module == "futures")
    return {260, 12.5, 0.45, 13.0, 12.5};
  if (Module == "rx")
    return {340, 13.5, 0.50, 13.5, 13.0};
  if (Module == "streams")
    return {320, 13.0, 0.45, 13.5, 13.0};
  if (Module == "netsim")
    return {420, 12.0, 0.40, 14.0, 13.0};
  if (Module == "kvstore")
    return {380, 13.0, 0.35, 13.5, 13.5};
  if (Module == "harness")
    return {120, 11.5, 0.25, 12.0, 12.0};
  if (Module == "mlalgos")
    return {900, 14.5, 0.40, 14.0, 15.0};
  if (Module == "scala-stdlib")
    return {950, 16.0, 0.55, 13.5, 16.0};
  if (Module == "app-small")
    return {350, 12.0, 0.35, 12.5, 12.5};
  if (Module == "app-large")
    return {1600, 13.5, 0.40, 13.5, 14.0};
  assert(false && "unknown module profile");
  return {100, 12.0, 0.3, 12.0, 12.0};
}

uint64_t hashName(const std::string &Name) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Name)
    H = (H ^ static_cast<uint8_t>(C)) * 1099511628211ULL;
  return H;
}

ClassGraph generateModule(const std::string &Module) {
  ModuleProfile P = profileFor(Module);
  Xoshiro256StarStar Rng(hashName(Module));
  ClassGraph G;
  std::vector<std::string> Names;
  for (unsigned I = 0; I < P.NumClasses; ++I)
    Names.push_back(Module + ".C" + std::to_string(I));
  for (unsigned I = 0; I < P.NumClasses; ++I) {
    ClassDecl C;
    C.Name = Names[I];
    // Methods: geometric-ish around the mean with a heavy-ish tail.
    double Draw = -std::log(1.0 - Rng.nextDouble());
    C.NumMethods = std::max(
        1u, static_cast<unsigned>(P.MeanMethods * 0.6 +
                                  Draw * P.MeanMethods * 0.45));
    C.NumFields = 2 + static_cast<unsigned>(Rng.nextBounded(28));
    if (I > 0 && Rng.nextDouble() < P.SubclassRate)
      C.Base = Names[Rng.nextBounded(I)];
    unsigned Coupling = static_cast<unsigned>(
        P.MeanCoupling * (0.5 + Rng.nextDouble()));
    for (unsigned K = 0; K < Coupling && P.NumClasses > 1; ++K) {
      unsigned Target = static_cast<unsigned>(
          Rng.nextBounded(P.NumClasses));
      if (Names[Target] != C.Name)
        C.UsedClasses.push_back(Names[Target]);
    }
    C.ExternalMethodsCalled = static_cast<unsigned>(
        P.MeanExtCalls * (0.5 + Rng.nextDouble()));
    C.LcomSeed = hashName(C.Name);
    G.add(std::move(C));
  }
  return G;
}

} // namespace

const ClassGraph &ren::ckmodel::moduleClasses(const std::string &Module) {
  static std::mutex Lock;
  static std::unordered_map<std::string, ClassGraph> *Cache =
      new std::unordered_map<std::string, ClassGraph>();
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Cache->find(Module);
  if (It == Cache->end())
    It = Cache->emplace(Module, generateModule(Module)).first;
  return It->second;
}

std::vector<std::string>
ren::ckmodel::modulesOf(const std::string &SuiteName,
                        const std::string &BenchmarkName) {
  std::vector<std::string> Mods = {"jdkbase", "harness", "runtime"};
  auto addApp = [&](const char *Scale) { Mods.push_back(Scale); };

  if (SuiteName == "renaissance") {
    // Renaissance workloads stack several frameworks (paper §7.1: they
    // load by far the most classes, Table 5).
    const std::string &N = BenchmarkName;
    Mods.push_back("forkjoin");
    if (N == "akka-uct" || N == "reactors")
      Mods.insert(Mods.end(), {"actors", "app-small"});
    else if (N == "als" || N == "chi-square" || N == "dec-tree" ||
             N == "log-regression" || N == "naive-bayes" ||
             N == "movie-lens" || N == "page-rank")
      Mods.insert(Mods.end(), {"mlalgos", "streams", "app-large"});
    else if (N == "db-shootout" || N == "neo4j-analytics")
      Mods.insert(Mods.end(), {"kvstore", "app-large"});
    else if (N == "dotty")
      Mods.insert(Mods.end(), {"scala-stdlib", "app-small"});
    else if (N == "finagle-chirper" || N == "finagle-http")
      Mods.insert(Mods.end(), {"netsim", "futures", "app-large"});
    else if (N == "future-genetic")
      Mods.insert(Mods.end(), {"futures", "app-small"});
    else if (N == "philosophers" || N == "stm-bench7")
      Mods.insert(Mods.end(), {"stm", "app-small"});
    else if (N == "rx-scrabble")
      Mods.insert(Mods.end(), {"rx", "app-small"});
    else if (N == "scrabble" || N == "streams-mnemonics")
      Mods.insert(Mods.end(), {"streams", "app-small"});
    else
      addApp("app-small");
    return Mods;
  }
  if (SuiteName == "dacapo") {
    const std::string &N = BenchmarkName;
    if (N == "eclipse" || N == "tomcat" || N == "tradebeans" ||
        N == "tradesoap" || N == "jython")
      addApp("app-large");
    else
      addApp("app-small");
    if (N == "h2" || N == "tradebeans" || N == "tradesoap")
      Mods.push_back("kvstore");
    return Mods;
  }
  if (SuiteName == "scalabench") {
    Mods.push_back("scala-stdlib");
    if (BenchmarkName == "actors")
      Mods.push_back("actors");
    if (BenchmarkName == "scalatest" || BenchmarkName == "specs" ||
        BenchmarkName == "scalac")
      addApp("app-large");
    else
      addApp("app-small");
    return Mods;
  }
  // SPECjvm2008: small kernels over the base library; derby adds the db.
  if (BenchmarkName == "derby")
    Mods.push_back("kvstore");
  if (BenchmarkName.rfind("compiler.", 0) == 0 ||
      BenchmarkName.rfind("xml.", 0) == 0 ||
      BenchmarkName == "serial")
    addApp("app-small");
  return Mods;
}

ClassGraph
ren::ckmodel::classesForBenchmark(const std::string &SuiteName,
                                  const std::string &BenchmarkName) {
  ClassGraph G;
  for (const std::string &M : modulesOf(SuiteName, BenchmarkName))
    G.merge(moduleClasses(M));
  return G;
}
