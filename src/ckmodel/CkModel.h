//===- ckmodel/CkModel.h - Chidamber-Kemerer metrics (paper §7) -*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chidamber & Kemerer object-oriented complexity suite (WMC, DIT,
/// NOC, CBO, RFC, LCOM) computed over a class graph, plus the per-suite
/// class inventory used to reproduce §7's Tables 4/5 and 8-11.
///
/// The paper runs the `ckjm` tool over the classes each JVM benchmark
/// loads. Our substitution computes the same metric definitions over class
/// graphs describing this repository's own frameworks and workloads: every
/// module contributes a deterministic population of class descriptions
/// (inheritance, method counts, coupling, and a seeded method-field access
/// matrix for LCOM), and each benchmark "loads" the union of the modules
/// it links — mirroring how class loading determined the paper's per-
/// benchmark class sets.
///
//===----------------------------------------------------------------------===//

#ifndef REN_CKMODEL_CKMODEL_H
#define REN_CKMODEL_CKMODEL_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ren {
namespace ckmodel {

/// One class in the graph.
struct ClassDecl {
  std::string Name;
  std::string Base; ///< empty = direct subclass of the root
  unsigned NumMethods = 1;
  unsigned NumFields = 1;
  /// Distinct other classes this class is coupled to (calls, field types,
  /// signatures) — CBO counts these plus the base class.
  std::vector<std::string> UsedClasses;
  /// Distinct external methods called by this class's methods (RFC adds
  /// these to the declared method count).
  unsigned ExternalMethodsCalled = 0;
  /// Seed of the deterministic method-field access matrix used for LCOM.
  uint64_t LcomSeed = 1;
};

/// Computed CK metrics of one class.
struct CkValues {
  double Wmc = 0;  ///< weighted methods per class (method count)
  double Dit = 0;  ///< depth of inheritance tree
  double Cbo = 0;  ///< coupling between object classes
  double Noc = 0;  ///< number of immediate children
  double Rfc = 0;  ///< response for a class
  double Lcom = 0; ///< lack of cohesion in methods
};

/// Aggregates over a class set (one benchmark's loaded classes).
struct CkSummary {
  size_t NumClasses = 0;
  CkValues Sum;
  CkValues Average;
};

/// A collection of classes with CK computation.
class ClassGraph {
public:
  /// Adds a class (duplicate names are merged by keeping the first).
  void add(ClassDecl Decl);

  /// Merges another graph into this one.
  void merge(const ClassGraph &Other);

  size_t size() const { return Classes.size(); }
  const std::vector<ClassDecl> &classes() const { return Classes; }

  /// Computes the six CK metrics for every class.
  std::vector<CkValues> computeAll() const;

  /// Computes sums and averages over all classes.
  CkSummary summarize() const;

private:
  std::vector<ClassDecl> Classes;
  std::unordered_map<std::string, size_t> Index;
};

/// Computes LCOM from a seeded method-field access matrix: the number of
/// method pairs sharing no field minus the pairs sharing at least one,
/// floored at zero (the classic CK definition).
double lcomFromSeed(unsigned NumMethods, unsigned NumFields, uint64_t Seed);

/// Deterministic class population for one source module of this repository
/// ("runtime", "forkjoin", "actors", "stm", "futures", "rx", "streams",
/// "netsim", "kvstore", "harness", "jdkbase", plus per-suite application
/// packages). Generated once and cached.
const ClassGraph &moduleClasses(const std::string &ModuleName);

/// The modules a benchmark links (its "loaded classes" universe).
std::vector<std::string> modulesOf(const std::string &SuiteName,
                                   const std::string &BenchmarkName);

/// The merged class graph a benchmark loads.
ClassGraph classesForBenchmark(const std::string &SuiteName,
                               const std::string &BenchmarkName);

} // namespace ckmodel
} // namespace ren

#endif // REN_CKMODEL_CKMODEL_H
