//===- futures/Future.cpp -------------------------------------------------==//

#include "futures/Future.h"

using namespace ren::futures;

InlineExecutor &InlineExecutor::get() {
  static InlineExecutor *E = new InlineExecutor();
  return *E;
}
