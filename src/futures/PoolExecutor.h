//===- futures/PoolExecutor.h - Fork/join-backed executor -------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Executor that runs continuations on a ForkJoinPool, the analogue of
/// Twitter's FuturePool over the JVM common pool.
///
//===----------------------------------------------------------------------===//

#ifndef REN_FUTURES_POOLEXECUTOR_H
#define REN_FUTURES_POOLEXECUTOR_H

#include "forkjoin/ForkJoinPool.h"
#include "futures/Future.h"
#include "trace/Trace.h"

namespace ren {
namespace futures {

/// Dispatches work onto a fork/join pool without waiting for completion.
///
/// When tracing is enabled, each dispatched task is wrapped so the tracer
/// records a "pool.task" span: its duration is the task's run time and its
/// argument the queue latency (submit-to-start nanoseconds) — the executor
/// saturation signal the futures-heavy workloads (finagle-*) live or die
/// by. Disabled cost is one relaxed load per dispatch.
class PoolExecutor : public Executor {
public:
  explicit PoolExecutor(forkjoin::ForkJoinPool &Pool) : Pool(Pool) {}

  void execute(std::function<void()> Work) override {
    // forkDetached: dispatches are fire-and-forget, so skip the join
    // handle and its refcount round trip — the task object is the only
    // allocation.
    if (trace::enabled()) {
      uint64_t SubmitNs = trace::nowNanos();
      Pool.forkDetached([SubmitNs, Work = std::move(Work)] {
        uint64_t StartNs = trace::nowNanos();
        Work();
        trace::span(trace::EventKind::TaskRun, "pool.task", StartNs,
                    trace::nowNanos() - StartNs, StartNs - SubmitNs);
      });
      return;
    }
    Pool.forkDetached(std::move(Work));
  }

  /// Runs \p Body on the pool and exposes the result as a Future. A void
  /// body yields Future<int> completing with 0 (Try<void> does not exist).
  /// Routed through execute() so async tasks get the same trace spans.
  template <typename FnT> auto async(FnT Body) {
    using R0 = std::invoke_result_t<FnT>;
    using R = std::conditional_t<std::is_void_v<R0>, int, R0>;
    Promise<R> P;
    execute([P, Body = std::move(Body)]() mutable {
      if constexpr (std::is_void_v<R0>) {
        Body();
        P.setValue(0);
      } else {
        P.setValue(Body());
      }
    });
    return P.future();
  }

private:
  forkjoin::ForkJoinPool &Pool;
};

} // namespace futures
} // namespace ren

#endif // REN_FUTURES_POOLEXECUTOR_H
