//===- futures/PoolExecutor.h - Fork/join-backed executor -------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Executor that runs continuations on a ForkJoinPool, the analogue of
/// Twitter's FuturePool over the JVM common pool.
///
//===----------------------------------------------------------------------===//

#ifndef REN_FUTURES_POOLEXECUTOR_H
#define REN_FUTURES_POOLEXECUTOR_H

#include "forkjoin/ForkJoinPool.h"
#include "futures/Future.h"

namespace ren {
namespace futures {

/// Dispatches work onto a fork/join pool without waiting for completion.
class PoolExecutor : public Executor {
public:
  explicit PoolExecutor(forkjoin::ForkJoinPool &Pool) : Pool(Pool) {}

  void execute(std::function<void()> Work) override {
    Pool.fork(std::move(Work));
  }

  /// Runs \p Body on the pool and exposes the result as a Future. A void
  /// body yields Future<int> completing with 0 (Try<void> does not exist).
  template <typename FnT> auto async(FnT Body) {
    using R0 = std::invoke_result_t<FnT>;
    using R = std::conditional_t<std::is_void_v<R0>, int, R0>;
    Promise<R> P;
    Pool.fork([P, Body = std::move(Body)]() mutable {
      if constexpr (std::is_void_v<R0>) {
        Body();
        P.setValue(0);
      } else {
        P.setValue(Body());
      }
    });
    return P.future();
  }

private:
  forkjoin::ForkJoinPool &Pool;
};

} // namespace futures
} // namespace ren

#endif // REN_FUTURES_POOLEXECUTOR_H
