//===- futures/Future.h - Futures and promises ------------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composable futures and promises modelling com.twitter.util (the Finagle
/// substrate) and java.util.concurrent.CompletableFuture.
///
/// Instrumentation mirrors what the equivalent JVM code exhibits:
///  - completion is a CAS state transition (Metric::Atomic) — Twitter
///    futures are lock-free state machines, which is why finagle-chirper
///    is the most atomic-heavy benchmark in the suite (Fig 2);
///  - combinator lambdas are created through runtime::bindLambda
///    (Metric::IDynamic) and invoked through MethodHandle (Metric::Method);
///  - blocking \c await uses a Monitor guarded block (Metric::Wait).
///
//===----------------------------------------------------------------------===//

#ifndef REN_FUTURES_FUTURE_H
#define REN_FUTURES_FUTURE_H

#include "runtime/Alloc.h"
#include "runtime/Atomic.h"
#include "runtime/MethodHandle.h"
#include "runtime/Monitor.h"

#include <cassert>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ren {
namespace futures {

/// Where continuations run.
class Executor {
public:
  virtual ~Executor() = default;

  /// Runs \p Work, possibly asynchronously.
  virtual void execute(std::function<void()> Work) = 0;
};

/// Runs continuations on the completing thread.
class InlineExecutor : public Executor {
public:
  void execute(std::function<void()> Work) override { Work(); }

  /// Returns the shared inline executor.
  static InlineExecutor &get();
};

/// The result of a fallible asynchronous computation: a value or an error
/// message (our no-exceptions analogue of Twitter's Try/Throw).
template <typename T> class Try {
public:
  static Try success(T Value) {
    Try R;
    R.Ok = true;
    R.Val = std::move(Value);
    return R;
  }

  static Try failure(std::string Message) {
    Try R;
    R.Ok = false;
    R.Error = std::move(Message);
    return R;
  }

  bool isSuccess() const { return Ok; }
  bool isFailure() const { return !Ok; }

  const T &value() const {
    assert(Ok && "value() on a failed Try");
    return Val;
  }

  const std::string &error() const {
    assert(!Ok && "error() on a successful Try");
    return Error;
  }

private:
  bool Ok = false;
  T Val{};
  std::string Error;
};

namespace detail {

/// Shared state between a Promise and its Futures.
template <typename T> class FutureState {
public:
  /// SmallFn rather than std::function: completion chains hop through one
  /// indirect call per continuation, and small callbacks stay heap-free.
  /// Unlike std::function, SmallFn copies of a *large* target share it
  /// (no deep copy on the heap path) — callbacks must be stateless or keep
  /// mutable state in explicit shared cells, which every continuation the
  /// framework builds already does.
  using Callback = runtime::SmallFn<void(const Try<T> &)>;

  /// Attempts the pending->completed transition. \returns false if the
  /// state was already completed.
  bool tryComplete(Try<T> Result) {
    std::vector<Callback> ToRun;
    {
      std::lock_guard<std::mutex> Guard(Lock);
      if (Completed.load(std::memory_order_acquire) != 0)
        return false;
      // Write the value BEFORE publishing the completed flag: readers
      // check the flag without the lock, so the release-CAS below is what
      // makes the value visible to them.
      Value = std::move(Result);
      // The counted CAS: the lock-free transition the JVM code performs.
      // It cannot fail here — we hold the lock and checked the flag.
      [[maybe_unused]] bool Won = Completed.compareAndSet(0, 1);
      assert(Won && "completion raced despite the lock");
      ToRun.swap(Callbacks);
    }
    for (Callback &Cb : ToRun)
      Cb(Value);
    runtime::Synchronized Sync(WaitMonitor);
    WaitMonitor.notifyAll();
    return true;
  }

  /// Registers \p Cb, running it immediately if already completed.
  void onComplete(Callback Cb) {
    {
      std::lock_guard<std::mutex> Guard(Lock);
      if (Completed.load(std::memory_order_acquire) == 0) {
        Callbacks.push_back(std::move(Cb));
        return;
      }
    }
    Cb(Value);
  }

  bool isCompleted() const {
    return Completed.load(std::memory_order_acquire) != 0;
  }

  /// Blocks until completed (guarded block), then returns the result.
  const Try<T> &await() {
    if (!isCompleted()) {
      runtime::Synchronized Sync(WaitMonitor);
      WaitMonitor.waitUntil([this] { return isCompleted(); });
    }
    return Value;
  }

  /// Non-blocking peek; only valid once completed.
  const Try<T> &peek() const {
    assert(isCompleted() && "peek before completion");
    return Value;
  }

private:
  runtime::Atomic<int> Completed{0};
  std::mutex Lock;
  Try<T> Value{Try<T>::failure("pending")};
  std::vector<Callback> Callbacks;
  runtime::Monitor WaitMonitor;
};

} // namespace detail

template <typename T> class Promise;

/// A read handle on an eventually-available value.
template <typename T> class Future {
public:
  Future() = default;

  /// An already-successful future.
  static Future value(T V) {
    Future F = makePending();
    F.State->tryComplete(Try<T>::success(std::move(V)));
    return F;
  }

  /// An already-failed future.
  static Future failed(std::string Error) {
    Future F = makePending();
    F.State->tryComplete(Try<T>::failure(std::move(Error)));
    return F;
  }

  bool valid() const { return State != nullptr; }
  bool isCompleted() const { return State && State->isCompleted(); }

  /// Blocks until completion and returns the Try.
  const Try<T> &await() const {
    assert(State && "await on invalid future");
    return State->await();
  }

  /// Blocks and returns the value; the computation must have succeeded.
  /// The reference lives as long as this future's shared state — bind the
  /// future to a variable before calling get() on it (calling get() on a
  /// temporary future dangles at the end of the full expression).
  const T &get() const {
    const Try<T> &R = await();
    assert(R.isSuccess() && "get() on failed future");
    return R.value();
  }

  /// Registers a raw completion callback on \p Exec.
  void onComplete(Executor &Exec,
                  runtime::SmallFn<void(const Try<T> &)> Cb) const {
    assert(State && "onComplete on invalid future");
    State->onComplete([&Exec, Cb = std::move(Cb)](const Try<T> &R) {
      // Copy the result: an asynchronous executor may outlive the source
      // future's state.
      Exec.execute([Cb, R]() { Cb(R); });
    });
  }

  /// Transforms the successful value; failures propagate. The user lambda
  /// is a counted invokedynamic lambda, as on the JVM.
  template <typename FnT>
  auto map(FnT Fn, Executor &Exec = InlineExecutor::get()) const {
    using U = std::invoke_result_t<FnT, const T &>;
    auto Handle = runtime::bindLambda<U(const T &)>(std::move(Fn));
    Future<U> Out = Future<U>::makePending();
    auto OutState = Out.State;
    State->onComplete([&Exec, Handle, OutState](const Try<T> &R) {
      Exec.execute([Handle, OutState, R] {
        if (R.isFailure())
          OutState->tryComplete(Try<U>::failure(R.error()));
        else
          OutState->tryComplete(Try<U>::success(Handle.invoke(R.value())));
      });
    });
    return Out;
  }

  /// Monadic bind: chains an asynchronous continuation.
  template <typename FnT>
  auto flatMap(FnT Fn, Executor &Exec = InlineExecutor::get()) const {
    using FutU = std::invoke_result_t<FnT, const T &>;
    using U = typename FutU::ValueType;
    auto Handle = runtime::bindLambda<FutU(const T &)>(std::move(Fn));
    Future<U> Out = Future<U>::makePending();
    auto OutState = Out.State;
    State->onComplete([&Exec, Handle, OutState](const Try<T> &R) {
      Exec.execute([Handle, OutState, R] {
        if (R.isFailure()) {
          OutState->tryComplete(Try<U>::failure(R.error()));
          return;
        }
        FutU Next = Handle.invoke(R.value());
        Next.onComplete(InlineExecutor::get(), [OutState](const Try<U> &R2) {
          OutState->tryComplete(R2);
        });
      });
    });
    return Out;
  }

  /// Maps a failure back to a value; successes pass through.
  template <typename FnT>
  Future<T> recover(FnT Fn, Executor &Exec = InlineExecutor::get()) const {
    auto Handle = runtime::bindLambda<T(const std::string &)>(std::move(Fn));
    Future<T> Out = makePending();
    auto OutState = Out.State;
    State->onComplete([&Exec, Handle, OutState](const Try<T> &R) {
      Exec.execute([Handle, OutState, R] {
        if (R.isSuccess())
          OutState->tryComplete(R);
        else
          OutState->tryComplete(Try<T>::success(Handle.invoke(R.error())));
      });
    });
    return Out;
  }

  using ValueType = T;

private:
  friend class Promise<T>;
  template <typename U> friend class Future;

  static Future makePending() {
    Future F;
    F.State = runtime::newShared<detail::FutureState<T>>();
    return F;
  }

  std::shared_ptr<detail::FutureState<T>> State;
};

/// The write handle paired with a Future.
template <typename T> class Promise {
public:
  Promise() : Fut(Future<T>::makePending()) {}

  /// Returns the read side.
  Future<T> future() const { return Fut; }

  /// Completes successfully; asserts single completion.
  void setValue(T Value) {
    bool First = trySuccess(std::move(Value));
    assert(First && "promise completed twice");
    (void)First;
  }

  /// Completes with an error; asserts single completion.
  void setFailure(std::string Error) {
    bool First = Fut.State->tryComplete(Try<T>::failure(std::move(Error)));
    assert(First && "promise completed twice");
    (void)First;
  }

  /// Race-tolerant completion. \returns true if this call won.
  bool trySuccess(T Value) {
    return Fut.State->tryComplete(Try<T>::success(std::move(Value)));
  }

  /// Race-tolerant failure. \returns true if this call won.
  bool tryFailure(std::string Error) {
    return Fut.State->tryComplete(Try<T>::failure(std::move(Error)));
  }

private:
  Future<T> Fut;
};

/// Collects a vector of futures into a future vector, failing on the first
/// failure (Twitter's Future.collect).
template <typename T>
Future<std::vector<T>> collectAll(const std::vector<Future<T>> &Futures) {
  struct Collector {
    explicit Collector(size_t N) : Results(N), Remaining(N) {}
    std::vector<T> Results;
    runtime::Atomic<long> Remaining;
    Promise<std::vector<T>> Done;
  };
  auto C = runtime::newShared<Collector>(Futures.size());
  if (Futures.empty()) {
    C->Done.setValue({});
    return C->Done.future();
  }
  for (size_t I = 0; I < Futures.size(); ++I) {
    Futures[I].onComplete(InlineExecutor::get(), [C, I](const Try<T> &R) {
      if (R.isFailure()) {
        C->Done.tryFailure(R.error());
        return;
      }
      C->Results[I] = R.value();
      if (C->Remaining.decrementAndGet() == 0)
        C->Done.trySuccess(std::move(C->Results));
    });
  }
  return C->Done.future();
}

} // namespace futures
} // namespace ren

#endif // REN_FUTURES_FUTURE_H
