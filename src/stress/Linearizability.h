//===- stress/Linearizability.h - History checking --------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Brute-force linearizability and sequential-consistency checking for
/// small concurrent histories (Wing & Gong / Lincheck style).
///
/// Stress scenarios record each operation as an interval: a logical
/// invocation timestamp taken when the operation starts and a response
/// timestamp taken when it returns, plus the operation name, argument(s)
/// and observed return value. The checker then searches for a sequential
/// ordering of the operations that
///
///  - matches a user-supplied sequential specification of the data type
///    (a fold over an int64 state), and
///  - respects per-thread program order, and (for linearizability only)
///  - respects the real-time order: an operation that *responded* before
///    another was *invoked* must come first.
///
/// The search is exponential in the worst case but memoizes on
/// (taken-set, state), which keeps the small histories used by the stress
/// tests (≤ ~16 operations) instantaneous. We target the repo's concurrent
/// primitives — \c runtime::Atomic<T>, \c Monitor guarded sections and the
/// STM's transactional variables — whose sequential specs are one-liners.
///
//===----------------------------------------------------------------------===//

#ifndef REN_STRESS_LINEARIZABILITY_H
#define REN_STRESS_LINEARIZABILITY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ren {
namespace stress {

/// One completed operation in a concurrent history.
struct Op {
  unsigned Thread = 0;       ///< Recording thread (program order key).
  std::string Name;          ///< Operation name, e.g. "getAndAdd".
  int64_t Arg = 0;           ///< Primary argument (0 if none).
  int64_t Arg2 = 0;          ///< Secondary argument (e.g. CAS desired).
  int64_t Ret = 0;           ///< Observed return value (0 if none).
  uint64_t InvokeTs = 0;     ///< Logical time the operation started.
  uint64_t ResponseTs = 0;   ///< Logical time the operation returned.
};

/// Thread-safe recorder stamping operations with a global logical clock.
///
/// Usage inside an actor:
/// \code
///   uint64_t T0 = Hist.invoke();
///   int64_t Old = Counter.getAndAdd(1);
///   Hist.record(Actor, "getAndAdd", 1, 0, Old, T0);
/// \endcode
///
/// The logical clock is a single atomic counter: if op A's response stamp
/// is below op B's invocation stamp then A really did respond before B was
/// invoked, so orderings derived from it are sound for linearizability.
class History {
public:
  /// Returns an invocation timestamp. Call immediately before the op.
  uint64_t invoke() {
    return Clock.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Records a completed operation; stamps its response time now.
  void record(unsigned Thread, std::string Name, int64_t Arg, int64_t Arg2,
              int64_t Ret, uint64_t InvokeTs) {
    uint64_t ResponseTs = Clock.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> Guard(Lock);
    Ops.push_back({0, std::move(Name), Arg, Arg2, Ret, InvokeTs, ResponseTs});
    Ops.back().Thread = Thread;
  }

  /// Snapshot of all recorded operations.
  std::vector<Op> ops() const {
    std::lock_guard<std::mutex> Guard(Lock);
    return Ops;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Guard(Lock);
    return Ops.size();
  }

  /// Clears the history for the next repetition (not thread-safe against
  /// concurrent recording; call from the control thread only).
  void clear() {
    std::lock_guard<std::mutex> Guard(Lock);
    Ops.clear();
    Clock.store(0, std::memory_order_release);
  }

private:
  std::atomic<uint64_t> Clock{0};
  mutable std::mutex Lock;
  std::vector<Op> Ops;
};

/// A sequential specification of the data type under test: an initial
/// int64 state and a transition function returning the return value the
/// sequential type would produce (nullopt if \p Name is unknown).
struct SequentialSpec {
  using State = int64_t;
  std::function<State()> Initial;
  std::function<std::optional<int64_t>(State &S, const Op &O)> Apply;
};

/// True iff \p Ops has a linearization: a total order matching \p Spec
/// that respects both program order and real-time order.
bool isLinearizable(const std::vector<Op> &Ops, const SequentialSpec &Spec);

/// True iff \p Ops is sequentially consistent: like \c isLinearizable but
/// only program order is respected (real-time order may be violated).
/// Every linearizable history is sequentially consistent, not vice versa.
bool isSequentiallyConsistent(const std::vector<Op> &Ops,
                              const SequentialSpec &Spec);

/// Renders \p Ops for failure messages, one operation per line.
std::string formatHistory(const std::vector<Op> &Ops);

// Canned sequential specs for the primitives the stress tests target.

/// An atomic counter: "getAndAdd"(d) returns the old value, "get" returns
/// the current value — the spec of runtime::Atomic<int64_t>::getAndAdd.
SequentialSpec counterSpec(int64_t Initial = 0);

/// A read/write register: "write"(v) returns 0, "read" returns the value.
SequentialSpec registerSpec(int64_t Initial = 0);

/// A CAS register: "read" returns the value, "cas"(expected, desired)
/// returns 1 and stores on match else 0 — the spec of compareAndSet.
SequentialSpec casRegisterSpec(int64_t Initial = 0);

} // namespace stress
} // namespace ren

#endif // REN_STRESS_LINEARIZABILITY_H
