//===- stress/Stress.cpp - Concurrency stress harness ---------------------==//

#include "stress/Stress.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <thread>

using namespace ren;
using namespace ren::stress;

const char *ren::stress::outcomeClassName(OutcomeClass C) {
  switch (C) {
  case OutcomeClass::Acceptable:
    return "acceptable";
  case OutcomeClass::Interesting:
    return "interesting";
  case OutcomeClass::Forbidden:
    return "forbidden";
  }
  return "unknown";
}

StressScenario::~StressScenario() = default;

void InterleavingNudge::pause() {
  // 1-in-8 pauses become a scheduler yield: a yield can move the thread to
  // the end of its run queue, which shifts the race window by whole quanta
  // instead of a handful of cycles.
  if (Rng.nextBounded(8) == 0) {
    std::this_thread::yield();
    return;
  }
  uint64_t Iters = Rng.nextBounded(MaxSpinIters + 1);
  volatile uint64_t Sink = 0;
  for (uint64_t I = 0; I < Iters; ++I)
    Sink = Sink + 1;
}

void SpinBarrier::arriveAndWait() {
  uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Parties) {
    // Last arrival: reset the count and open the next generation.
    Arrived.store(0, std::memory_order_relaxed);
    Generation.store(Gen + 1, std::memory_order_release);
    return;
  }
  unsigned Spins = 0;
  while (Generation.load(std::memory_order_acquire) == Gen) {
    if (++Spins >= 1024) {
      Spins = 0;
      std::this_thread::yield();
    }
  }
}

uint64_t StressReport::trials() const {
  uint64_t Total = 0;
  for (const OutcomeCount &C : Histogram)
    Total += C.Count;
  return Total;
}

uint64_t StressReport::countOf(OutcomeClass Class) const {
  uint64_t Total = 0;
  for (const OutcomeCount &C : Histogram)
    if (C.Class == Class)
      Total += C.Count;
  return Total;
}

std::string StressReport::summary() const {
  std::string Out = "[" + ScenarioName + "] " + std::to_string(trials()) +
                    " trials, seed=" + std::to_string(Seed) + " — " +
                    (passed() ? "PASSED" : "FAILED") + "\n";
  for (const OutcomeCount &C : Histogram) {
    Out += "  " + padRight(C.Outcome, 24) + " " +
           padLeft(outcomeClassName(C.Class), 11) + " " +
           padLeft(std::to_string(C.Count), 10);
    if (!C.Note.empty())
      Out += "  (" + C.Note + ")";
    Out += "\n";
  }
  return Out;
}

StressReport StressRunner::run(StressScenario &S) {
  const unsigned NumActors = S.actors();
  assert(NumActors > 0 && "scenario needs at least one actor");
  const unsigned Reps = std::max(1u, Opts.Repetitions);

  // Two barriers, each synchronizing the control thread plus all actors:
  // StartBarrier aligns the beginning of the concurrent phase (after
  // prepare), EndBarrier marks its end (before observe).
  SpinBarrier StartBarrier(NumActors + 1);
  SpinBarrier EndBarrier(NumActors + 1);

  auto actorSeed = [this](unsigned Rep, unsigned Actor) {
    // Distinct, deterministic stream per (rep, actor); SplitMix64 scrambles
    // the structured input so consecutive reps do not correlate.
    SplitMix64 SM(Opts.Seed ^ (uint64_t(Rep) << 20) ^ Actor);
    return SM.next();
  };

  std::vector<std::thread> Actors;
  Actors.reserve(NumActors);
  for (unsigned A = 0; A < NumActors; ++A) {
    Actors.emplace_back([&, A] {
      InterleavingNudge Nudge(actorSeed(0, A), Opts.MaxSpinIters);
      for (unsigned Rep = 0; Rep < Reps; ++Rep) {
        Nudge.reseed(actorSeed(Rep, A));
        StartBarrier.arriveAndWait();
        // The pre-operation nudge staggers actor starts by a random few
        // dozen cycles — enough to slide the operations across each
        // other's critical regions over many repetitions.
        Nudge.pause();
        S.run(A, Nudge);
        EndBarrier.arriveAndWait();
      }
    });
  }

  std::map<std::string, uint64_t> Counts;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    S.prepare();
    StartBarrier.arriveAndWait();
    EndBarrier.arriveAndWait();
    ++Counts[S.observe()];
  }
  for (std::thread &T : Actors)
    T.join();

  OutcomeSpec Spec = S.spec();
  std::vector<OutcomeCount> Histogram;
  Histogram.reserve(Counts.size());
  for (const auto &[Outcome, Count] : Counts) {
    OutcomeCount Row;
    Row.Outcome = Outcome;
    Row.Class = Spec.classify(Outcome);
    Row.Count = Count;
    Row.Note = Spec.noteFor(Outcome);
    Histogram.push_back(std::move(Row));
  }
  std::sort(Histogram.begin(), Histogram.end(),
            [](const OutcomeCount &L, const OutcomeCount &R) {
              return L.Count > R.Count;
            });
  return StressReport(S.name(), Opts.Seed, std::move(Histogram));
}
