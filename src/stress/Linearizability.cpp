//===- stress/Linearizability.cpp - History checking ----------------------==//

#include "stress/Linearizability.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

using namespace ren;
using namespace ren::stress;

namespace {

/// The Wing & Gong search. Operations are grouped per thread in program
/// order (by invocation time — within a thread ops are sequential, so
/// invocation order IS program order). At each step the candidates are the
/// next-unconsumed op of each thread; under the real-time constraint a
/// candidate is only eligible if no unconsumed op responded before it was
/// invoked (i.e. it is "minimal" in the interval order).
class Searcher {
public:
  Searcher(const std::vector<Op> &Ops, const SequentialSpec &Spec,
           bool RealTime)
      : Spec(Spec), RealTime(RealTime) {
    // Group per thread, program order.
    for (const Op &O : Ops) {
      if (O.Thread >= PerThread.size())
        PerThread.resize(O.Thread + 1);
      PerThread[O.Thread].push_back(O);
    }
    for (std::vector<Op> &Thread : PerThread)
      std::sort(Thread.begin(), Thread.end(),
                [](const Op &L, const Op &R) {
                  return L.InvokeTs < R.InvokeTs;
                });
    Total = Ops.size();
    assert(Total <= 24 && "history too large for brute-force checking");
  }

  bool search() {
    std::vector<size_t> Next(PerThread.size(), 0);
    return step(Next, 0, Spec.Initial());
  }

private:
  bool step(std::vector<size_t> &Next, size_t Taken, int64_t State) {
    if (Taken == Total)
      return true;
    if (!Visited.insert(key(Next, State)).second)
      return false;

    // Real-time minimality bound: the earliest response among unconsumed
    // ops. An op invoked after that response cannot be linearized next.
    uint64_t MinResponse = ~uint64_t(0);
    if (RealTime)
      for (size_t T = 0; T < PerThread.size(); ++T)
        for (size_t I = Next[T]; I < PerThread[T].size(); ++I)
          MinResponse = std::min(MinResponse, PerThread[T][I].ResponseTs);

    for (size_t T = 0; T < PerThread.size(); ++T) {
      if (Next[T] >= PerThread[T].size())
        continue;
      const Op &Candidate = PerThread[T][Next[T]];
      if (RealTime && Candidate.InvokeTs > MinResponse)
        continue;
      int64_t NewState = State;
      std::optional<int64_t> Expected = Spec.Apply(NewState, Candidate);
      assert(Expected && "operation unknown to the sequential spec");
      if (Expected && *Expected == Candidate.Ret) {
        ++Next[T];
        if (step(Next, Taken + 1, NewState))
          return true;
        --Next[T];
      }
    }
    return false;
  }

  /// Memo key: the per-thread positions plus the model state. Two search
  /// nodes with equal keys explore identical futures.
  std::pair<std::vector<size_t>, int64_t> key(const std::vector<size_t> &Next,
                                              int64_t State) const {
    return {Next, State};
  }

  const SequentialSpec &Spec;
  const bool RealTime;
  std::vector<std::vector<Op>> PerThread;
  size_t Total = 0;
  std::set<std::pair<std::vector<size_t>, int64_t>> Visited;
};

} // namespace

bool ren::stress::isLinearizable(const std::vector<Op> &Ops,
                                 const SequentialSpec &Spec) {
  return Searcher(Ops, Spec, /*RealTime=*/true).search();
}

bool ren::stress::isSequentiallyConsistent(const std::vector<Op> &Ops,
                                           const SequentialSpec &Spec) {
  return Searcher(Ops, Spec, /*RealTime=*/false).search();
}

std::string ren::stress::formatHistory(const std::vector<Op> &Ops) {
  std::string Out;
  for (const Op &O : Ops) {
    Out += "  t" + std::to_string(O.Thread) + " [" +
           std::to_string(O.InvokeTs) + "," + std::to_string(O.ResponseTs) +
           "] " + O.Name + "(" + std::to_string(O.Arg);
    if (O.Arg2 != 0)
      Out += ", " + std::to_string(O.Arg2);
    Out += ") -> " + std::to_string(O.Ret) + "\n";
  }
  return Out;
}

SequentialSpec ren::stress::counterSpec(int64_t Initial) {
  SequentialSpec Spec;
  Spec.Initial = [Initial] { return Initial; };
  Spec.Apply = [](int64_t &S, const Op &O) -> std::optional<int64_t> {
    if (O.Name == "getAndAdd") {
      int64_t Old = S;
      S += O.Arg;
      return Old;
    }
    if (O.Name == "get")
      return S;
    return std::nullopt;
  };
  return Spec;
}

SequentialSpec ren::stress::registerSpec(int64_t Initial) {
  SequentialSpec Spec;
  Spec.Initial = [Initial] { return Initial; };
  Spec.Apply = [](int64_t &S, const Op &O) -> std::optional<int64_t> {
    if (O.Name == "write") {
      S = O.Arg;
      return 0;
    }
    if (O.Name == "read")
      return S;
    return std::nullopt;
  };
  return Spec;
}

SequentialSpec ren::stress::casRegisterSpec(int64_t Initial) {
  SequentialSpec Spec;
  Spec.Initial = [Initial] { return Initial; };
  Spec.Apply = [](int64_t &S, const Op &O) -> std::optional<int64_t> {
    if (O.Name == "read")
      return S;
    if (O.Name == "cas") {
      if (S == O.Arg) {
        S = O.Arg2;
        return 1;
      }
      return 0;
    }
    if (O.Name == "write") {
      S = O.Arg;
      return 0;
    }
    return std::nullopt;
  };
  return Spec;
}
