//===- stress/Outcome.h - Outcome spec DSL for stress scenarios -*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The jcstress-style outcome specification DSL.
///
/// A stress scenario does not assert inside its actors — concurrent
/// interleavings legitimately produce several different results, and a
/// single flaky assert conveys nothing about frequency. Instead the
/// scenario declares, up front, which observed outcomes are ACCEPTABLE
/// (correct), which are INTERESTING (correct but worth surfacing, e.g. a
/// rare interleaving the scenario exists to provoke), and which are
/// FORBIDDEN (a correctness bug such as a lost update or a torn read).
/// The StressRunner then reports a frequency histogram classified against
/// this spec; a scenario fails iff a forbidden outcome was ever observed.
///
/// Unlisted outcomes are forbidden by default — an outcome nobody thought
/// of is exactly the kind of result a stress test exists to flag — unless
/// the spec opts out with \c acceptUnlisted.
///
//===----------------------------------------------------------------------===//

#ifndef REN_STRESS_OUTCOME_H
#define REN_STRESS_OUTCOME_H

#include <string>
#include <utility>
#include <vector>

namespace ren {
namespace stress {

/// Classification of one observed outcome of a stress scenario.
enum class OutcomeClass {
  Acceptable,  ///< Allowed result of a correct implementation.
  Interesting, ///< Allowed, but notable — reported prominently.
  Forbidden,   ///< Must never occur; any occurrence fails the scenario.
};

/// Short lower-case name ("acceptable", "interesting", "forbidden").
const char *outcomeClassName(OutcomeClass C);

/// Declarative map from outcome strings to their classification.
///
/// \code
///   OutcomeSpec Spec;
///   Spec.accept("1, 2", "both CASes in order")
///       .accept("2, 1", "reversed order")
///       .interesting("1, 1", "both saw the initial value, one CAS failed")
///       .forbid("0, 0", "lost update");
/// \endcode
class OutcomeSpec {
public:
  /// Declares \p Outcome as acceptable. \returns *this for chaining.
  OutcomeSpec &accept(std::string Outcome, std::string Note = "") {
    return add(std::move(Outcome), OutcomeClass::Acceptable, std::move(Note));
  }

  /// Declares \p Outcome as interesting (allowed, surfaced in reports).
  OutcomeSpec &interesting(std::string Outcome, std::string Note = "") {
    return add(std::move(Outcome), OutcomeClass::Interesting,
               std::move(Note));
  }

  /// Declares \p Outcome as forbidden.
  OutcomeSpec &forbid(std::string Outcome, std::string Note = "") {
    return add(std::move(Outcome), OutcomeClass::Forbidden, std::move(Note));
  }

  /// Makes outcomes not listed in the spec acceptable instead of the
  /// default-forbidden policy. Use sparingly: it weakens the scenario.
  OutcomeSpec &acceptUnlisted() {
    UnlistedClass = OutcomeClass::Acceptable;
    return *this;
  }

  /// Classifies \p Outcome against the declared entries.
  OutcomeClass classify(const std::string &Outcome) const {
    for (const Entry &E : Entries)
      if (E.Outcome == Outcome)
        return E.Class;
    return UnlistedClass;
  }

  /// Returns the note attached to \p Outcome ("" if none or unlisted).
  const std::string &noteFor(const std::string &Outcome) const {
    static const std::string kEmpty;
    for (const Entry &E : Entries)
      if (E.Outcome == Outcome)
        return E.Note;
    return kEmpty;
  }

  /// True if \p Outcome appears explicitly in the spec.
  bool lists(const std::string &Outcome) const {
    for (const Entry &E : Entries)
      if (E.Outcome == Outcome)
        return true;
    return false;
  }

  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    std::string Outcome;
    OutcomeClass Class;
    std::string Note;
  };

  OutcomeSpec &add(std::string Outcome, OutcomeClass Class,
                   std::string Note) {
    Entries.push_back({std::move(Outcome), Class, std::move(Note)});
    return *this;
  }

  std::vector<Entry> Entries;
  OutcomeClass UnlistedClass = OutcomeClass::Forbidden;
};

} // namespace stress
} // namespace ren

#endif // REN_STRESS_OUTCOME_H
