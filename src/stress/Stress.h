//===- stress/Stress.h - Concurrency stress harness -------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A jcstress/Lincheck-style concurrency stress harness for the runtime
/// substrates (`ren::runtime`, `ren::forkjoin`, `ren::stm`, `ren::actors`).
///
/// The paper's central claim is that Renaissance workloads exercise
/// concurrency primitives far more heavily than prior suites; this harness
/// is the correctness gate that claim rests on. A \c StressScenario defines
/// a small multi-threaded interaction: per-repetition state in \c prepare,
/// one concurrent operation per actor in \c run, and an arbiter \c observe
/// that renders the final state as an outcome string. The \c StressRunner
/// executes the scenario for N short repetitions with
/// barrier-aligned actor starts and randomized yield/spin nudges injected
/// around the operations (seeded, so a failing seed reproduces), and
/// histograms the observed outcomes against the scenario's \c OutcomeSpec.
///
/// Unlike a flaky assert, the report says *how often* each interleaving
/// happened — and a forbidden outcome observed even once is a bug.
///
//===----------------------------------------------------------------------===//

#ifndef REN_STRESS_STRESS_H
#define REN_STRESS_STRESS_H

#include "stress/Outcome.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ren {
namespace stress {

/// Per-actor interleaving randomizer.
///
/// Each actor thread receives a nudge seeded from (runner seed, repetition,
/// actor index). The runner pauses once before invoking the actor body;
/// scenario code may additionally call \c pause between its own operations
/// to widen the explored interleaving space — this is the jcstress trick of
/// perturbing thread timing without instrumenting the code under test.
class InterleavingNudge {
public:
  explicit InterleavingNudge(uint64_t Seed, unsigned MaxSpinIters = 128)
      : Rng(Seed), MaxSpinIters(MaxSpinIters) {}

  /// Re-seeds the nudge (called by the runner between repetitions).
  void reseed(uint64_t Seed) { Rng = Xoshiro256StarStar(Seed); }

  /// Injects a randomized delay: a spin of 0..MaxSpinIters iterations,
  /// occasionally replaced by a scheduler yield (which is what actually
  /// migrates the race window across quanta).
  void pause();

  /// Uniform value in [0, Bound) for scenarios that randomize their own
  /// operation order.
  uint64_t nextBounded(uint64_t Bound) { return Rng.nextBounded(Bound); }

private:
  Xoshiro256StarStar Rng;
  unsigned MaxSpinIters;
};

/// A user-defined stress scenario (one concurrent interaction).
///
/// Lifecycle per repetition: \c prepare on the control thread, then all
/// actors \c run concurrently (barrier-aligned), then \c observe on the
/// control thread after every actor finished.
class StressScenario {
public:
  virtual ~StressScenario();

  /// Scenario name for reports.
  virtual std::string name() const = 0;

  /// Number of concurrent actor threads.
  virtual unsigned actors() const = 0;

  /// Resets the scenario state for one repetition. Runs alone.
  virtual void prepare() = 0;

  /// Executes actor \p Index's operation. Runs concurrently with every
  /// other actor; must not block indefinitely.
  virtual void run(unsigned Index, InterleavingNudge &Nudge) = 0;

  /// Renders the final state as an outcome string. Runs alone.
  virtual std::string observe() = 0;

  /// The acceptable / interesting / forbidden outcome sets.
  virtual OutcomeSpec spec() const = 0;
};

/// One histogram row of a stress report.
struct OutcomeCount {
  std::string Outcome;
  OutcomeClass Class = OutcomeClass::Acceptable;
  uint64_t Count = 0;
  std::string Note;
};

/// The result of running one scenario: an outcome frequency histogram
/// classified against the scenario's spec.
class StressReport {
public:
  StressReport() = default;
  StressReport(std::string ScenarioName, uint64_t Seed,
               std::vector<OutcomeCount> Histogram)
      : ScenarioName(std::move(ScenarioName)), Seed(Seed),
        Histogram(std::move(Histogram)) {}

  const std::string &scenario() const { return ScenarioName; }

  /// The runner seed (reported so failures reproduce).
  uint64_t seed() const { return Seed; }

  /// Histogram rows, most frequent first.
  const std::vector<OutcomeCount> &counts() const { return Histogram; }

  /// Total repetitions executed.
  uint64_t trials() const;

  /// Repetitions that produced an outcome of class \p C.
  uint64_t countOf(OutcomeClass C) const;

  /// Repetitions that hit a forbidden outcome (0 for a correct subject).
  uint64_t forbiddenCount() const {
    return countOf(OutcomeClass::Forbidden);
  }

  /// Distinct outcomes observed.
  size_t distinctOutcomes() const { return Histogram.size(); }

  /// True iff no forbidden outcome was ever observed.
  bool passed() const { return forbiddenCount() == 0; }

  /// Human-readable table: one row per outcome with class, count, note.
  std::string summary() const;

private:
  std::string ScenarioName;
  uint64_t Seed = 0;
  std::vector<OutcomeCount> Histogram;
};

/// Executes stress scenarios and histograms their outcomes.
class StressRunner {
public:
  struct Options {
    /// Short repetitions, each a fresh prepare/run*/observe cycle.
    unsigned Repetitions = 1000;
    /// Base seed for the interleaving nudges; a report's seed field echoes
    /// this so a failing run can be replayed exactly.
    uint64_t Seed = 0x5eed0c0ffeeULL;
    /// Upper bound of the random spin injected per pause.
    unsigned MaxSpinIters = 128;
  };

  StressRunner() = default;
  explicit StressRunner(Options RunOptions) : Opts(RunOptions) {}

  /// Runs \p S for Options::Repetitions repetitions and returns the
  /// classified outcome histogram. Actor threads are spawned once and
  /// reused across repetitions; every repetition starts all actors on a
  /// spinning barrier so their operations genuinely overlap.
  StressReport run(StressScenario &S);

private:
  Options Opts = Options();
};

/// A reusable sense-reversing spin barrier aligning actor starts.
///
/// Spinning (with periodic yields) rather than blocking: the whole point
/// of barrier alignment is that all actors leave the barrier within a few
/// cycles of each other, which a mutex/condvar barrier cannot guarantee.
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned Parties) : Parties(Parties) {}

  /// Blocks until all parties arrive, then releases them together.
  void arriveAndWait();

private:
  const unsigned Parties;
  std::atomic<unsigned> Arrived{0};
  std::atomic<uint64_t> Generation{0};
};

} // namespace stress
} // namespace ren

#endif // REN_STRESS_STRESS_H
