//===- harness/Harness.h - Benchmark harness (paper §2.2) -------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark harness: registry, warmup/steady-state protocol, plugin
/// interface, and reporters.
///
/// Mirrors the Renaissance harness described in §2.2: benchmarks run as
/// repeated operations inside one process; execution before the configured
/// warmup count is *warm-up*, the rest is *steady-state* and is what every
/// experiment in this repository measures. Custom measurement plugins can
/// "latch onto benchmark execution events" — our MetricsPlugin collects the
/// Table 2 metrics exactly that way.
///
//===----------------------------------------------------------------------===//

#ifndef REN_HARNESS_HARNESS_H
#define REN_HARNESS_HARNESS_H

#include "metrics/Metrics.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ren {
namespace harness {

/// Which suite a benchmark belongs to (paper §4.1).
enum class Suite { Renaissance, DaCapo, ScalaBench, SpecJvm2008 };

/// Short lower-case suite name ("renaissance", "dacapo", ...).
const char *suiteName(Suite S);

/// Static description of one benchmark.
struct BenchmarkInfo {
  std::string Name;
  Suite BenchmarkSuite = Suite::Renaissance;
  std::string Description;
  std::string Focus; ///< Table 1 "Focus" column.
  unsigned WarmupIterations = 2;
  unsigned MeasuredIterations = 3;
};

/// A runnable benchmark. Lifecycle: setUp, N x runIteration, tearDown.
class Benchmark {
public:
  virtual ~Benchmark();

  /// Static metadata.
  virtual BenchmarkInfo info() const = 0;

  /// One-time setup (data generation, service start).
  virtual void setUp() {}

  /// One benchmark operation; its wall time is the measured quantity.
  virtual void runIteration() = 0;

  /// One-time teardown.
  virtual void tearDown() {}

  /// A checksum-style result for validation; must be deterministic across
  /// runs for a fixed configuration (paper goal: deterministic execution).
  virtual uint64_t checksum() const { return 0; }
};

/// Observer latching onto benchmark execution events (paper §2.2).
class Plugin {
public:
  virtual ~Plugin();

  virtual void beforeRun(const BenchmarkInfo &) {}
  virtual void beforeIteration(const BenchmarkInfo &, unsigned /*Index*/,
                               bool /*Warmup*/) {}
  virtual void afterIteration(const BenchmarkInfo &, unsigned /*Index*/,
                              bool /*Warmup*/, uint64_t /*Nanos*/) {}
  virtual void afterRun(const BenchmarkInfo &) {}
};

/// Timing record of one operation.
struct IterationRecord {
  unsigned Index = 0;
  bool Warmup = false;
  uint64_t Nanos = 0;
};

/// The outcome of one benchmark run.
struct RunResult {
  BenchmarkInfo Info;
  std::vector<IterationRecord> Iterations;
  /// Metric delta covering exactly the steady-state iterations.
  metrics::MetricSnapshot SteadyDelta;
  uint64_t Checksum = 0;

  /// Mean steady-state operation time in nanoseconds.
  double meanSteadyNanos() const;

  /// Normalized Table 2 metrics for the steady state.
  metrics::NormalizedMetrics normalized() const {
    return metrics::normalize(SteadyDelta);
  }
};

/// The process-global benchmark registry.
class Registry {
public:
  using Factory = std::function<std::unique_ptr<Benchmark>()>;

  static Registry &get();

  /// Registers a factory; names must be unique.
  void add(Factory MakeBenchmark);

  /// All registered benchmark names, in registration order, optionally
  /// filtered by suite.
  std::vector<std::string> names() const;
  std::vector<std::string> names(Suite S) const;

  /// Instantiates a benchmark by name (first match across suites; names
  /// are unique within a suite). Asserts the name exists.
  std::unique_ptr<Benchmark> create(const std::string &Name) const;

  /// Instantiates a suite-qualified benchmark (e.g. the paper has a
  /// "sunflow" in both DaCapo and SPECjvm2008).
  std::unique_ptr<Benchmark> create(Suite S, const std::string &Name) const;

  /// True if \p Name is registered in any suite.
  bool contains(const std::string &Name) const;

  /// True if \p Name is registered in suite \p S.
  bool contains(Suite S, const std::string &Name) const;

  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    BenchmarkInfo Info;
    Factory MakeBenchmark;
  };
  std::vector<Entry> Entries;
};

/// Runs benchmarks through the warmup/steady-state protocol with plugins.
class Runner {
public:
  /// Overrides applied to every run (0 = keep the benchmark's default).
  struct Options {
    unsigned WarmupOverride = 0;
    unsigned MeasuredOverride = 0;
    bool TraceMemory = true; ///< enable the cache simulator during runs
  };

  Runner() = default;
  explicit Runner(Options RunOptions) : Opts(RunOptions) {}

  /// Attaches a plugin (not owned).
  Runner &addPlugin(Plugin &P) {
    Plugins.push_back(&P);
    return *this;
  }

  /// Runs \p B through its full lifecycle.
  RunResult run(Benchmark &B);

  /// Looks up \p Name in the registry and runs it.
  RunResult runByName(const std::string &Name);

private:
  Options Opts = Options();
  std::vector<Plugin *> Plugins;
};

/// Renders a set of run results as a CSV document (one row per iteration).
std::string toCsv(const std::vector<RunResult> &Results);

/// Renders a set of run results as a JSON document.
std::string toJson(const std::vector<RunResult> &Results);

} // namespace harness
} // namespace ren

#endif // REN_HARNESS_HARNESS_H
