//===- harness/Harness.cpp ------------------------------------------------==//

#include "harness/Harness.h"

#include "memsim/MemSim.h"
#include "support/Clock.h"
#include "support/Output.h"

#include <algorithm>

using namespace ren;
using namespace ren::harness;

Benchmark::~Benchmark() = default;
Plugin::~Plugin() = default;

const char *ren::harness::suiteName(Suite S) {
  switch (S) {
  case Suite::Renaissance:
    return "renaissance";
  case Suite::DaCapo:
    return "dacapo";
  case Suite::ScalaBench:
    return "scalabench";
  case Suite::SpecJvm2008:
    return "specjvm2008";
  }
  assert(false && "unknown suite");
  return "?";
}

double RunResult::meanSteadyNanos() const {
  double Sum = 0.0;
  unsigned Count = 0;
  for (const IterationRecord &R : Iterations) {
    if (R.Warmup)
      continue;
    Sum += static_cast<double>(R.Nanos);
    ++Count;
  }
  return Count == 0 ? 0.0 : Sum / Count;
}

Registry &Registry::get() {
  static Registry *R = new Registry();
  return *R;
}

void Registry::add(Factory MakeBenchmark) {
  std::unique_ptr<Benchmark> Probe = MakeBenchmark();
  Entry E;
  E.Info = Probe->info();
  E.MakeBenchmark = std::move(MakeBenchmark);
  assert(!contains(E.Info.BenchmarkSuite, E.Info.Name) &&
         "duplicate benchmark name within a suite");
  Entries.push_back(std::move(E));
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> Names;
  Names.reserve(Entries.size());
  for (const Entry &E : Entries)
    Names.push_back(E.Info.Name);
  return Names;
}

std::vector<std::string> Registry::names(Suite S) const {
  std::vector<std::string> Names;
  for (const Entry &E : Entries)
    if (E.Info.BenchmarkSuite == S)
      Names.push_back(E.Info.Name);
  return Names;
}

bool Registry::contains(const std::string &Name) const {
  return std::any_of(Entries.begin(), Entries.end(),
                     [&](const Entry &E) { return E.Info.Name == Name; });
}

bool Registry::contains(Suite S, const std::string &Name) const {
  return std::any_of(Entries.begin(), Entries.end(), [&](const Entry &E) {
    return E.Info.BenchmarkSuite == S && E.Info.Name == Name;
  });
}

std::unique_ptr<Benchmark> Registry::create(Suite S,
                                            const std::string &Name) const {
  for (const Entry &E : Entries)
    if (E.Info.BenchmarkSuite == S && E.Info.Name == Name)
      return E.MakeBenchmark();
  assert(false && "unknown suite-qualified benchmark name");
  return nullptr;
}

std::unique_ptr<Benchmark> Registry::create(const std::string &Name) const {
  for (const Entry &E : Entries)
    if (E.Info.Name == Name)
      return E.MakeBenchmark();
  assert(false && "unknown benchmark name");
  return nullptr;
}

RunResult Runner::run(Benchmark &B) {
  RunResult Result;
  Result.Info = B.info();
  unsigned Warmup = Opts.WarmupOverride ? Opts.WarmupOverride
                                        : Result.Info.WarmupIterations;
  unsigned Measured = Opts.MeasuredOverride ? Opts.MeasuredOverride
                                            : Result.Info.MeasuredIterations;

  for (Plugin *P : Plugins)
    P->beforeRun(Result.Info);

  if (Opts.TraceMemory)
    memsim::setGlobalTracing(true);

  B.setUp();

  metrics::MetricSnapshot SteadyBegin;
  unsigned Total = Warmup + Measured;
  for (unsigned I = 0; I < Total; ++I) {
    bool IsWarmup = I < Warmup;
    if (I == Warmup)
      SteadyBegin = metrics::MetricsRegistry::get().snapshot();
    for (Plugin *P : Plugins)
      P->beforeIteration(Result.Info, I, IsWarmup);
    uint64_t Begin = wallNanos();
    B.runIteration();
    uint64_t Nanos = wallNanos() - Begin;
    Result.Iterations.push_back(IterationRecord{I, IsWarmup, Nanos});
    for (Plugin *P : Plugins)
      P->afterIteration(Result.Info, I, IsWarmup, Nanos);
  }
  metrics::MetricSnapshot SteadyEnd = metrics::MetricsRegistry::get().snapshot();
  if (Warmup == Total) // no measured iterations
    SteadyBegin = SteadyEnd;
  Result.SteadyDelta =
      metrics::MetricSnapshot::delta(SteadyBegin, SteadyEnd);

  Result.Checksum = B.checksum();
  B.tearDown();

  if (Opts.TraceMemory)
    memsim::setGlobalTracing(false);

  for (Plugin *P : Plugins)
    P->afterRun(Result.Info);
  return Result;
}

RunResult Runner::runByName(const std::string &Name) {
  std::unique_ptr<Benchmark> B = Registry::get().create(Name);
  return run(*B);
}

std::string ren::harness::toCsv(const std::vector<RunResult> &Results) {
  CsvWriter W;
  W.addRow({"benchmark", "suite", "iteration", "warmup", "nanos"});
  for (const RunResult &R : Results)
    for (const IterationRecord &I : R.Iterations)
      W.addRow({R.Info.Name, suiteName(R.Info.BenchmarkSuite),
                std::to_string(I.Index), I.Warmup ? "true" : "false",
                std::to_string(I.Nanos)});
  return W.str();
}

std::string ren::harness::toJson(const std::vector<RunResult> &Results) {
  JsonWriter W;
  W.beginArray();
  for (const RunResult &R : Results) {
    W.beginObject();
    W.key("benchmark");
    W.value(R.Info.Name);
    W.key("suite");
    W.value(suiteName(R.Info.BenchmarkSuite));
    W.key("checksum");
    W.value(static_cast<uint64_t>(R.Checksum));
    W.key("mean_steady_nanos");
    W.value(R.meanSteadyNanos());
    W.key("iterations");
    W.beginArray();
    for (const IterationRecord &I : R.Iterations) {
      W.beginObject();
      W.key("index");
      W.value(static_cast<uint64_t>(I.Index));
      W.key("warmup");
      W.value(I.Warmup);
      W.key("nanos");
      W.value(static_cast<uint64_t>(I.Nanos));
      W.endObject();
    }
    W.endArray();
    W.key("metrics");
    W.beginObject();
    {
      auto Norm = R.normalized();
      auto Names = metrics::NormalizedMetrics::vectorNames();
      auto Values = Norm.asVector();
      for (size_t I = 0; I < Names.size(); ++I) {
        W.key(Names[I]);
        W.value(Values[I]);
      }
    }
    W.endObject();
    W.endObject();
  }
  W.endArray();
  return W.str();
}
