//===- harness/Plugins.h - Stock measurement plugins ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ready-made plugins for the harness's §2.2 plugin interface. The paper's
/// conclusion proposes the suite for GC and profiler studies; the
/// AllocationRatePlugin is the natural first tool for that direction: it
/// tracks per-iteration object/array allocation against wall time, the
/// quantity GC research starts from.
///
//===----------------------------------------------------------------------===//

#ifndef REN_HARNESS_PLUGINS_H
#define REN_HARNESS_PLUGINS_H

#include "harness/Harness.h"
#include "netsim/LoadGen.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace ren {
namespace harness {

/// Records per-iteration allocation counts and rates.
class AllocationRatePlugin : public Plugin {
public:
  struct IterationAllocation {
    std::string Benchmark;
    unsigned Iteration = 0;
    bool Warmup = false;
    uint64_t Objects = 0;
    uint64_t Arrays = 0;
    uint64_t Nanos = 0;

    /// Objects per millisecond of operation time.
    double objectsPerMs() const {
      return Nanos == 0 ? 0.0
                        : static_cast<double>(Objects) /
                              (static_cast<double>(Nanos) / 1e6);
    }
  };

  void beforeIteration(const BenchmarkInfo &, unsigned, bool) override {
    Before = metrics::MetricsRegistry::get().snapshot();
  }

  void afterIteration(const BenchmarkInfo &Info, unsigned Index,
                      bool Warmup, uint64_t Nanos) override {
    metrics::MetricSnapshot After =
        metrics::MetricsRegistry::get().snapshot();
    metrics::MetricSnapshot Delta =
        metrics::MetricSnapshot::delta(Before, After);
    IterationAllocation Rec;
    Rec.Benchmark = Info.Name;
    Rec.Iteration = Index;
    Rec.Warmup = Warmup;
    Rec.Objects = Delta.get(metrics::Metric::Object);
    Rec.Arrays = Delta.get(metrics::Metric::Array);
    Rec.Nanos = Nanos;
    Records.push_back(std::move(Rec));
  }

  const std::vector<IterationAllocation> &records() const {
    return Records;
  }

  /// Mean steady-state allocation rate (objects/ms) across all recorded
  /// benchmarks (0 when nothing was recorded).
  double meanSteadyObjectsPerMs() const {
    double Sum = 0.0;
    unsigned Count = 0;
    for (const IterationAllocation &R : Records) {
      if (R.Warmup)
        continue;
      Sum += R.objectsPerMs();
      ++Count;
    }
    return Count == 0 ? 0.0 : Sum / Count;
  }

private:
  metrics::MetricSnapshot Before;
  std::vector<IterationAllocation> Records;
};

/// Emits harness lifecycle events into the tracer and keeps a local record
/// of per-iteration spans.
///
/// Each benchmark run becomes a Begin/End "run" pair named after the
/// benchmark (interned once per run), and every iteration a Begin/End
/// "iteration" pair with the index and warmup flag as args — all on the
/// harness thread, so the pairs nest and balance per tid, which is what
/// chrome://tracing requires to draw them as stacked spans. The recorded
/// spans use the tracer's clock (the same wallNanos the Runner times
/// iterations with), so Span durations bound IterationRecord::Nanos from
/// above: the span additionally covers only the Runner's own bookkeeping
/// between the plugin hooks and the timed region.
class TracePlugin : public Plugin {
public:
  struct IterationSpan {
    std::string Benchmark;
    unsigned Index = 0;
    bool Warmup = false;
    uint64_t BeginNs = 0;
    uint64_t EndNs = 0;

    uint64_t durationNanos() const { return EndNs - BeginNs; }
  };

  void beforeRun(const BenchmarkInfo &Info) override {
    RunName = trace::internName(Info.Name);
    trace::mark(trace::EventKind::Run, trace::Phase::Begin, RunName);
  }

  void beforeIteration(const BenchmarkInfo &Info, unsigned Index,
                       bool Warmup) override {
    Open.Benchmark = Info.Name;
    Open.Index = Index;
    Open.Warmup = Warmup;
    Open.BeginNs = trace::nowNanos();
    trace::mark(trace::EventKind::Iteration, trace::Phase::Begin,
                "iteration", Index, Warmup);
  }

  void afterIteration(const BenchmarkInfo &, unsigned Index, bool Warmup,
                      uint64_t) override {
    trace::mark(trace::EventKind::Iteration, trace::Phase::End, "iteration",
                Index, Warmup);
    Open.EndNs = trace::nowNanos();
    Spans.push_back(Open);
  }

  void afterRun(const BenchmarkInfo &) override {
    trace::mark(trace::EventKind::Run, trace::Phase::End, RunName);
    RunName = "run";
  }

  /// Per-iteration spans recorded so far (kept even when tracing is off).
  const std::vector<IterationSpan> &spans() const { return Spans; }

private:
  const char *RunName = "run";
  IterationSpan Open;
  std::vector<IterationSpan> Spans;
};

/// Attaches open-loop load-generator results to benchmark iterations.
///
/// A network benchmark that drives a netsim LoadGen publishes its report
/// process-globally (publishLoadReport — LoadGen::run does it
/// automatically). This plugin snapshots the publication counter around
/// each iteration and records one entry per iteration that published,
/// surfacing coordinated-omission-safe p50/p99/p999 latency and sustained
/// requests/sec alongside the harness's own timings — no plumbing from
/// the benchmark body required.
class NetLatencyPlugin : public Plugin {
public:
  struct IterationLoad {
    std::string Benchmark;
    unsigned Iteration = 0;
    bool Warmup = false;
    std::string Service;
    uint64_t Completed = 0;
    uint64_t Failed = 0;
    uint64_t P50Nanos = 0;
    uint64_t P99Nanos = 0;
    uint64_t P999Nanos = 0;
    uint64_t MaxNanos = 0;
    double SustainedRps = 0.0;
  };

  void beforeIteration(const BenchmarkInfo &, unsigned, bool) override {
    VersionBefore = netsim::loadReportVersion();
  }

  void afterIteration(const BenchmarkInfo &Info, unsigned Index,
                      bool Warmup, uint64_t) override {
    if (netsim::loadReportVersion() == VersionBefore)
      return; // iteration ran no load generator
    netsim::LoadReport R = netsim::lastLoadReport();
    IterationLoad Rec;
    Rec.Benchmark = Info.Name;
    Rec.Iteration = Index;
    Rec.Warmup = Warmup;
    Rec.Service = R.Service;
    Rec.Completed = R.Completed;
    Rec.Failed = R.Failed;
    Rec.P50Nanos = R.P50;
    Rec.P99Nanos = R.P99;
    Rec.P999Nanos = R.P999;
    Rec.MaxNanos = R.MaxNanos;
    Rec.SustainedRps = R.sustainedRps();
    Records.push_back(std::move(Rec));
  }

  const std::vector<IterationLoad> &records() const { return Records; }

  /// Mean steady-state p99 latency in nanoseconds across recorded
  /// iterations (0 when nothing was recorded).
  double meanSteadyP99Nanos() const {
    double Sum = 0.0;
    unsigned Count = 0;
    for (const IterationLoad &R : Records) {
      if (R.Warmup)
        continue;
      Sum += static_cast<double>(R.P99Nanos);
      ++Count;
    }
    return Count == 0 ? 0.0 : Sum / Count;
  }

private:
  uint64_t VersionBefore = 0;
  std::vector<IterationLoad> Records;
};

} // namespace harness
} // namespace ren

#endif // REN_HARNESS_PLUGINS_H
