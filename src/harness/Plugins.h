//===- harness/Plugins.h - Stock measurement plugins ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ready-made plugins for the harness's §2.2 plugin interface. The paper's
/// conclusion proposes the suite for GC and profiler studies; the
/// AllocationRatePlugin is the natural first tool for that direction: it
/// tracks per-iteration object/array allocation against wall time, the
/// quantity GC research starts from.
///
//===----------------------------------------------------------------------===//

#ifndef REN_HARNESS_PLUGINS_H
#define REN_HARNESS_PLUGINS_H

#include "harness/Harness.h"

#include <string>
#include <vector>

namespace ren {
namespace harness {

/// Records per-iteration allocation counts and rates.
class AllocationRatePlugin : public Plugin {
public:
  struct IterationAllocation {
    std::string Benchmark;
    unsigned Iteration = 0;
    bool Warmup = false;
    uint64_t Objects = 0;
    uint64_t Arrays = 0;
    uint64_t Nanos = 0;

    /// Objects per millisecond of operation time.
    double objectsPerMs() const {
      return Nanos == 0 ? 0.0
                        : static_cast<double>(Objects) /
                              (static_cast<double>(Nanos) / 1e6);
    }
  };

  void beforeIteration(const BenchmarkInfo &, unsigned, bool) override {
    Before = metrics::MetricsRegistry::get().snapshot();
  }

  void afterIteration(const BenchmarkInfo &Info, unsigned Index,
                      bool Warmup, uint64_t Nanos) override {
    metrics::MetricSnapshot After =
        metrics::MetricsRegistry::get().snapshot();
    metrics::MetricSnapshot Delta =
        metrics::MetricSnapshot::delta(Before, After);
    IterationAllocation Rec;
    Rec.Benchmark = Info.Name;
    Rec.Iteration = Index;
    Rec.Warmup = Warmup;
    Rec.Objects = Delta.get(metrics::Metric::Object);
    Rec.Arrays = Delta.get(metrics::Metric::Array);
    Rec.Nanos = Nanos;
    Records.push_back(std::move(Rec));
  }

  const std::vector<IterationAllocation> &records() const {
    return Records;
  }

  /// Mean steady-state allocation rate (objects/ms) across all recorded
  /// benchmarks (0 when nothing was recorded).
  double meanSteadyObjectsPerMs() const {
    double Sum = 0.0;
    unsigned Count = 0;
    for (const IterationAllocation &R : Records) {
      if (R.Warmup)
        continue;
      Sum += R.objectsPerMs();
      ++Count;
    }
    return Count == 0 ? 0.0 : Sum / Count;
  }

private:
  metrics::MetricSnapshot Before;
  std::vector<IterationAllocation> Records;
};

} // namespace harness
} // namespace ren

#endif // REN_HARNESS_PLUGINS_H
