//===- harness/Plugins.h - Stock measurement plugins ------------*- C++ -*-===//
//
// Part of Renaissance-C++, a reproduction of the PLDI'19 Renaissance paper.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ready-made plugins for the harness's §2.2 plugin interface. The paper's
/// conclusion proposes the suite for GC and profiler studies; the
/// AllocationRatePlugin is the natural first tool for that direction: it
/// tracks per-iteration object/array allocation against wall time, the
/// quantity GC research starts from.
///
//===----------------------------------------------------------------------===//

#ifndef REN_HARNESS_PLUGINS_H
#define REN_HARNESS_PLUGINS_H

#include "harness/Harness.h"
#include "netsim/LoadGen.h"
#include "runtime/Heap.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace ren {
namespace harness {

/// Records per-iteration allocation counts and rates.
class AllocationRatePlugin : public Plugin {
public:
  struct IterationAllocation {
    std::string Benchmark;
    unsigned Iteration = 0;
    bool Warmup = false;
    uint64_t Objects = 0;
    uint64_t Arrays = 0;
    uint64_t Nanos = 0;

    /// Objects per millisecond of operation time.
    double objectsPerMs() const {
      return Nanos == 0 ? 0.0
                        : static_cast<double>(Objects) /
                              (static_cast<double>(Nanos) / 1e6);
    }
  };

  void beforeIteration(const BenchmarkInfo &, unsigned, bool) override {
    Before = metrics::MetricsRegistry::get().snapshot();
  }

  void afterIteration(const BenchmarkInfo &Info, unsigned Index,
                      bool Warmup, uint64_t Nanos) override {
    metrics::MetricSnapshot After =
        metrics::MetricsRegistry::get().snapshot();
    metrics::MetricSnapshot Delta =
        metrics::MetricSnapshot::delta(Before, After);
    IterationAllocation Rec;
    Rec.Benchmark = Info.Name;
    Rec.Iteration = Index;
    Rec.Warmup = Warmup;
    Rec.Objects = Delta.get(metrics::Metric::Object);
    Rec.Arrays = Delta.get(metrics::Metric::Array);
    Rec.Nanos = Nanos;
    Records.push_back(std::move(Rec));
  }

  const std::vector<IterationAllocation> &records() const {
    return Records;
  }

  /// Mean steady-state allocation rate (objects/ms) across all recorded
  /// benchmarks (0 when nothing was recorded).
  double meanSteadyObjectsPerMs() const {
    double Sum = 0.0;
    unsigned Count = 0;
    for (const IterationAllocation &R : Records) {
      if (R.Warmup)
        continue;
      Sum += R.objectsPerMs();
      ++Count;
    }
    return Count == 0 ? 0.0 : Sum / Count;
  }

private:
  metrics::MetricSnapshot Before;
  std::vector<IterationAllocation> Records;
};

/// Emits harness lifecycle events into the tracer and keeps a local record
/// of per-iteration spans.
///
/// Each benchmark run becomes a Begin/End "run" pair named after the
/// benchmark (interned once per run), and every iteration a Begin/End
/// "iteration" pair with the index and warmup flag as args — all on the
/// harness thread, so the pairs nest and balance per tid, which is what
/// chrome://tracing requires to draw them as stacked spans. The recorded
/// spans use the tracer's clock (the same wallNanos the Runner times
/// iterations with), so Span durations bound IterationRecord::Nanos from
/// above: the span additionally covers only the Runner's own bookkeeping
/// between the plugin hooks and the timed region.
class TracePlugin : public Plugin {
public:
  struct IterationSpan {
    std::string Benchmark;
    unsigned Index = 0;
    bool Warmup = false;
    uint64_t BeginNs = 0;
    uint64_t EndNs = 0;

    uint64_t durationNanos() const { return EndNs - BeginNs; }
  };

  void beforeRun(const BenchmarkInfo &Info) override {
    RunName = trace::internName(Info.Name);
    trace::mark(trace::EventKind::Run, trace::Phase::Begin, RunName);
  }

  void beforeIteration(const BenchmarkInfo &Info, unsigned Index,
                       bool Warmup) override {
    Open.Benchmark = Info.Name;
    Open.Index = Index;
    Open.Warmup = Warmup;
    Open.BeginNs = trace::nowNanos();
    trace::mark(trace::EventKind::Iteration, trace::Phase::Begin,
                "iteration", Index, Warmup);
  }

  void afterIteration(const BenchmarkInfo &, unsigned Index, bool Warmup,
                      uint64_t) override {
    trace::mark(trace::EventKind::Iteration, trace::Phase::End, "iteration",
                Index, Warmup);
    Open.EndNs = trace::nowNanos();
    Spans.push_back(Open);
  }

  void afterRun(const BenchmarkInfo &) override {
    trace::mark(trace::EventKind::Run, trace::Phase::End, RunName);
    RunName = "run";
  }

  /// Per-iteration spans recorded so far (kept even when tracing is off).
  const std::vector<IterationSpan> &spans() const { return Spans; }

private:
  const char *RunName = "run";
  IterationSpan Open;
  std::vector<IterationSpan> Spans;
};

/// Attaches open-loop load-generator results to benchmark iterations.
///
/// A network benchmark that drives a netsim LoadGen publishes its report
/// process-globally (publishLoadReport — LoadGen::run does it
/// automatically). This plugin snapshots the publication counter around
/// each iteration and records one entry per iteration that published,
/// surfacing coordinated-omission-safe p50/p99/p999 latency and sustained
/// requests/sec alongside the harness's own timings — no plumbing from
/// the benchmark body required.
class NetLatencyPlugin : public Plugin {
public:
  struct IterationLoad {
    std::string Benchmark;
    unsigned Iteration = 0;
    bool Warmup = false;
    std::string Service;
    uint64_t Completed = 0;
    uint64_t Failed = 0;
    uint64_t P50Nanos = 0;
    uint64_t P99Nanos = 0;
    uint64_t P999Nanos = 0;
    uint64_t MaxNanos = 0;
    double SustainedRps = 0.0;
  };

  void beforeIteration(const BenchmarkInfo &, unsigned, bool) override {
    VersionBefore = netsim::loadReportVersion();
  }

  void afterIteration(const BenchmarkInfo &Info, unsigned Index,
                      bool Warmup, uint64_t) override {
    if (netsim::loadReportVersion() == VersionBefore)
      return; // iteration ran no load generator
    netsim::LoadReport R = netsim::lastLoadReport();
    IterationLoad Rec;
    Rec.Benchmark = Info.Name;
    Rec.Iteration = Index;
    Rec.Warmup = Warmup;
    Rec.Service = R.Service;
    Rec.Completed = R.Completed;
    Rec.Failed = R.Failed;
    Rec.P50Nanos = R.P50;
    Rec.P99Nanos = R.P99;
    Rec.P999Nanos = R.P999;
    Rec.MaxNanos = R.MaxNanos;
    Rec.SustainedRps = R.sustainedRps();
    Records.push_back(std::move(Rec));
  }

  const std::vector<IterationLoad> &records() const { return Records; }

  /// Mean steady-state p99 latency in nanoseconds across recorded
  /// iterations (0 when nothing was recorded).
  double meanSteadyP99Nanos() const {
    double Sum = 0.0;
    unsigned Count = 0;
    for (const IterationLoad &R : Records) {
      if (R.Warmup)
        continue;
      Sum += static_cast<double>(R.P99Nanos);
      ++Count;
    }
    return Count == 0 ? 0.0 : Sum / Count;
  }

private:
  uint64_t VersionBefore = 0;
  std::vector<IterationLoad> Records;
};

/// Records per-iteration managed-heap behaviour: allocation volume, slab
/// traffic, and reclaim ("GC") pauses from the runtime/Heap.h substrate.
///
/// The paper's conclusion proposes the suite for GC studies; this plugin
/// closes the loop on the managed-heap rework by exposing the substrate's
/// pause/occupancy counters through the §2.2 plugin interface, the same
/// way AllocationRatePlugin exposes the object counts. With ForceReclaim
/// set, the plugin drives a reclaim pass after every iteration (outside
/// the timed region) so deferred work — orphaned slabs, zero-count Rc
/// objects — is attributed to the iteration that produced it, like a
/// forced young-collection between harness iterations.
class GcPausePlugin : public Plugin {
public:
  struct IterationHeap {
    std::string Benchmark;
    unsigned Iteration = 0;
    bool Warmup = false;
    uint64_t Nanos = 0;

    /// Interval delta (HeapStats::delta semantics: counters subtract,
    /// SlabsInUse/Epoch carry the end-of-iteration value).
    runtime::heap::HeapStats Delta;

    /// Live bytes at the iteration boundary (after the optional forced
    /// reclaim), not an interval quantity.
    uint64_t LiveBytesAfter = 0;
    double OccupancyAfter = 0.0;

    /// Allocated block bytes per millisecond of operation time.
    double bytesPerMs() const {
      return Nanos == 0 ? 0.0
                        : static_cast<double>(Delta.BytesAllocated) /
                              (static_cast<double>(Nanos) / 1e6);
    }
  };

  explicit GcPausePlugin(bool ForceReclaim = false)
      : ForceReclaim(ForceReclaim) {}

  void beforeIteration(const BenchmarkInfo &, unsigned, bool) override {
    Before = runtime::heap::stats();
  }

  void afterIteration(const BenchmarkInfo &Info, unsigned Index,
                      bool Warmup, uint64_t Nanos) override {
    if (ForceReclaim)
      runtime::heap::reclaim();
    runtime::heap::HeapStats After = runtime::heap::stats();
    IterationHeap Rec;
    Rec.Benchmark = Info.Name;
    Rec.Iteration = Index;
    Rec.Warmup = Warmup;
    Rec.Nanos = Nanos;
    Rec.Delta = runtime::heap::HeapStats::delta(Before, After);
    Rec.LiveBytesAfter = After.bytesLive();
    Rec.OccupancyAfter = After.slabOccupancyPercent();
    Records.push_back(std::move(Rec));
  }

  const std::vector<IterationHeap> &records() const { return Records; }

  /// Total reclaim-pause nanoseconds across recorded steady-state
  /// iterations (the "GC time" a pause study starts from).
  uint64_t steadyReclaimNanos() const {
    uint64_t Total = 0;
    for (const IterationHeap &R : Records)
      if (!R.Warmup)
        Total += R.Delta.ReclaimTotalNanos;
    return Total;
  }

private:
  bool ForceReclaim;
  runtime::heap::HeapStats Before;
  std::vector<IterationHeap> Records;
};

} // namespace harness
} // namespace ren

#endif // REN_HARNESS_PLUGINS_H
